module petscfun3d

go 1.22
