# Tier-1+ gate: formatting, vet, the domain lint suite (cmd/fun3dlint),
# and the full test suite under the race detector (the threaded flux
# path and the message-passing solver in internal/dist are the
# interesting customers). CI and pre-commit both run `make verify`.

GOFILES := $(shell find . -name '*.go' -not -path './related/*')

.PHONY: verify fmt vet lint test race bench chaos threads ortho

verify: fmt vet lint race

fmt:
	@out="$$(gofmt -l $(GOFILES))"; \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

# Wall-time guard on the static gate: the whole suite runs in a few
# seconds, so a generous ceiling only trips if an analyzer has gotten
# pathologically slow (quadratic blowup, runaway fixpoint) — analyzer
# growth must not quietly bloat the verify gate. Mirrored by
# TestLintSuiteWallTime in internal/lint.
LINT_TIMEOUT := 300s

lint:
	timeout $(LINT_TIMEOUT) go run ./cmd/fun3dlint ./... || \
		{ st=$$?; if [ $$st -eq 124 ]; then echo "fun3dlint exceeded the $(LINT_TIMEOUT) wall-time budget"; fi; exit $$st; }

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench . -benchtime 1x -run '^$$' ./...
	go run ./cmd/benchtables -experiment table3measured -size medium | tee BENCH_scatterwait.txt

# Chaos gate: the fault-injection soak — the faults/mpi/dist suites
# under the race detector with a widened seed grid (the soak asserts
# bitwise-identical residual histories under every seed, and that
# injected panics and stalls produce structured errors, never hangs) —
# followed by the measured η_impl-vs-skew sweep as a smoke test.
chaos:
	FUN3D_CHAOS_SEEDS=1,2,3 go test -race -count=1 ./internal/faults ./internal/mpi ./internal/dist
	go run ./cmd/benchtables -experiment chaos -size small | tee BENCH_chaos.txt

# Threads gate: the node-level worker-pool determinism grid — the pool
# primitives' own suite, then the bitwise tri-solve/SpMV/reduction grids
# and the hybrid ranks×threads soak — under the race detector, followed
# by the measured thread-scaling sweep and the gather-corrected Table 5
# model, teed into the BENCH_threads.txt record.
threads:
	go test -race -count=1 ./internal/par
	go test -race -count=1 -run 'Par|Thread|Bitwise|Level|Determin' ./internal/sparse ./internal/ilu ./internal/euler ./internal/krylov ./internal/dist
	go run ./cmd/benchtables -experiment threads -size medium | tee BENCH_threads.txt
	go run ./cmd/benchtables -experiment table5 -size small | tee -a BENCH_threads.txt

# Ortho gate: the fused multi-vector kernel determinism grid — MDot/
# MAxpy bitwise against the per-vector reference across worker counts,
# the batched-reduction GMRES suites, and the hybrid soak — under the
# race detector, followed by the measured mgs/cgs/cgs2 orthogonalization
# study, teed into the BENCH_ortho.txt record.
ortho:
	go test -race -count=1 ./internal/par
	go test -race -count=1 -run 'MDot|MAxpy|MReduce|Ortho|Reduction|GMRES|Hybrid' ./internal/krylov ./internal/mpi ./internal/dist ./internal/experiments
	go run ./cmd/benchtables -experiment ortho -size medium | tee BENCH_ortho.txt
