# Tier-1+ gate: formatting, vet, and the full test suite under the race
# detector (the threaded flux path and the message-passing solver in
# internal/dist are the interesting customers). CI and pre-commit both
# run `make verify`.

GOFILES := $(shell find . -name '*.go' -not -path './related/*')

.PHONY: verify fmt vet test race bench

verify: fmt vet race

fmt:
	@out="$$(gofmt -l $(GOFILES))"; \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench . -benchtime 1x -run '^$$' ./...
