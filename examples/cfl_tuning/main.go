// CFL tuning: the paper's Figure 5 in miniature — the effect of the
// initial CFL number on pseudo-transient convergence. Aggressive
// initial CFL shortens the induction phase on smooth flows; the SER
// power law then drives the timestep toward infinity either way.
package main

import (
	"fmt"
	"log"

	petscfun3d "petscfun3d"
)

func main() {
	log.SetFlags(0)
	for _, cfl0 := range []float64{1, 5, 10, 25, 50, 100} {
		cfg := petscfun3d.DefaultConfig()
		cfg.TargetVertices = 5000
		cfg.Newton.CFL0 = cfl0
		cfg.Newton.RelTol = 1e-8
		cfg.Newton.MaxSteps = 200
		res, err := petscfun3d.Solve(cfg)
		if err != nil {
			log.Fatal(err)
		}
		status := "converged"
		if !res.Newton.Converged {
			status = "NOT converged"
		}
		fmt.Printf("CFL0=%6.1f: %3d steps, %4d linear its, %s (final residual %.2e)\n",
			cfl0, len(res.Newton.Steps), res.Newton.TotalLinearIts, status, res.Newton.FinalRnorm)
	}
	fmt.Println("\n(Full residual-vs-step series: `benchtables -experiment figure5`.)")
}
