// Quickstart: solve a steady incompressible Euler flow over the
// synthetic wing mesh and print the convergence history — the minimal
// use of the petscfun3d public API.
package main

import (
	"fmt"
	"log"

	petscfun3d "petscfun3d"
)

func main() {
	log.SetFlags(0)
	cfg := petscfun3d.DefaultConfig()
	cfg.TargetVertices = 5000
	cfg.Newton.RelTol = 1e-8

	res, err := petscfun3d.Solve(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d vertices, %d edges\n",
		res.Problem.Mesh.NumVertices(), res.Problem.Mesh.NumEdges())
	fmt.Printf("%6s %14s %12s %8s\n", "step", "residual", "CFL", "lin its")
	for _, st := range res.Newton.Steps {
		fmt.Printf("%6d %14.6e %12.1f %8d\n", st.Index, st.Rnorm, st.CFL, st.LinearIts)
	}
	fmt.Printf("\nconverged=%v in %v (%v per pseudo-timestep)\n",
		res.Newton.Converged, res.WallTime.Round(1e6), res.PerStep.Round(1e6))
}
