// Viscous flow: the solver with Galerkin-type momentum diffusion (the
// laminar Navier-Stokes mode). Sweeps the viscosity coefficient and
// reports the steady state's velocity-gradient energy Σ w_ij |Δu_ij|²,
// which diffusion monotonically damps — and that the ψNKS solver
// converges robustly throughout.
package main

import (
	"fmt"
	"log"

	petscfun3d "petscfun3d"
)

func main() {
	log.SetFlags(0)
	for _, mu := range []float64{0, 0.005, 0.02, 0.08} {
		cfg := petscfun3d.DefaultConfig()
		cfg.TargetVertices = 4000
		cfg.Viscosity = mu
		cfg.Newton.RelTol = 1e-7
		cfg.Newton.MaxSteps = 80
		res, err := petscfun3d.Solve(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Newton.Converged {
			log.Fatalf("mu=%g: did not converge", mu)
		}
		// Velocity-gradient energy of the steady state: sum over mesh
		// edges of |Δu|²/|Δx|², a discrete measure diffusion damps.
		b := res.Problem.Sys.B()
		m := res.Problem.Mesh
		var energy float64
		for _, e := range m.Edges {
			dx := m.Coords[e.B].X - m.Coords[e.A].X
			dy := m.Coords[e.B].Y - m.Coords[e.A].Y
			dz := m.Coords[e.B].Z - m.Coords[e.A].Z
			dist2 := dx*dx + dy*dy + dz*dz
			for c := 1; c <= 3; c++ {
				du := res.FinalQ[int(e.B)*b+c] - res.FinalQ[int(e.A)*b+c]
				energy += du * du / dist2
			}
		}
		fmt.Printf("mu=%6.3f: %2d steps, %3d linear its, gradient energy %.1f\n",
			mu, len(res.Newton.Steps), res.Newton.TotalLinearIts, energy)
	}
	fmt.Println("\nDiffusion damps the velocity gradients; the inviscid (mu=0) flow")
	fmt.Println("has the sharpest acceleration around the wing taper.")
}
