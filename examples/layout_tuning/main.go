// Layout tuning: the paper's Table 1 in miniature. Toggles field
// interlacing and edge reordering on real solves and reports measured
// wall time per pseudo-timestep — the data-layout tuning story of
// section 2.1 on your own hardware.
package main

import (
	"fmt"
	"log"

	petscfun3d "petscfun3d"
)

func main() {
	log.SetFlags(0)
	type variant struct {
		name         string
		rcm          bool
		edgeOrdering string
	}
	variants := []variant{
		{"baseline (no RCM, colored edges)", false, "colored"},
		{"RCM vertices, colored edges", true, "colored"},
		{"no RCM, sorted edges", false, "sorted"},
		{"RCM vertices + sorted edges", true, "sorted"},
	}
	var base float64
	for i, v := range variants {
		cfg := petscfun3d.DefaultConfig()
		cfg.TargetVertices = 8000
		cfg.RCM = v.rcm
		cfg.EdgeOrdering = v.edgeOrdering
		cfg.Newton.RelTol = 1e-6
		res, err := petscfun3d.Solve(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Newton.Converged {
			log.Fatalf("%s: did not converge", v.name)
		}
		per := res.PerStep.Seconds()
		if i == 0 {
			base = per
		}
		fmt.Printf("%-36s %10.1f ms/step   ratio %.2f\n",
			v.name, per*1e3, base/per)
	}
	fmt.Println("\n(The full six-way sweep with structural blocking and the")
	fmt.Println(" simulated cache counters is `benchtables -experiment table1`")
	fmt.Println(" and `-experiment figure3`.)")
}
