// Scaling study: a fixed-size mesh solved on growing virtual rank
// counts, reporting the paper's Table 3 efficiency decomposition
// η_overall = η_alg · η_impl. Real iteration counts drive the
// algorithmic factor; the virtual machine's wait/scatter/reduce
// accounting drives the implementation factor.
package main

import (
	"fmt"
	"log"

	petscfun3d "petscfun3d"
)

func main() {
	log.SetFlags(0)
	ranksList := []int{4, 8, 16, 32, 64}
	type row struct {
		ranks   int
		its     int
		seconds float64
		pctSync float64
		pctScat float64
	}
	var rows []row
	for _, ranks := range ranksList {
		cfg := petscfun3d.DefaultConfig()
		cfg.TargetVertices = 10000
		cfg.Ranks = ranks
		cfg.FillLevel = 1
		cfg.Profile = petscfun3d.ASCIRed
		cfg.Newton.RelTol = 1e-6
		out, err := petscfun3d.SolveParallel(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if !out.Newton.Converged {
			log.Fatalf("ranks=%d: did not converge", ranks)
		}
		rows = append(rows, row{
			ranks:   ranks,
			its:     out.Newton.TotalLinearIts,
			seconds: out.Report.Elapsed,
			pctSync: out.Report.PctWait,
			pctScat: out.Report.PctScatter,
		})
	}
	base := rows[0]
	fmt.Printf("%6s %6s %9s %8s | %9s %7s %7s | %7s %8s\n",
		"ranks", "its", "time", "speedup", "η_overall", "η_alg", "η_impl", "%sync", "%scatter")
	for _, r := range rows {
		speedup := base.seconds / r.seconds
		overall := speedup / (float64(r.ranks) / float64(base.ranks))
		alg := float64(base.its) / float64(r.its)
		fmt.Printf("%6d %6d %8.2fs %8.2f | %9.2f %7.2f %7.2f | %7.1f %8.1f\n",
			r.ranks, r.its, r.seconds, speedup, overall, alg, overall/alg, r.pctSync, r.pctScat)
	}
}
