package petscfun3d

import (
	"math"
	"testing"
)

// Integration tests of the public facade: the full pipeline from Config
// to converged flow, sequential and parallel, exactly as a downstream
// user would drive it.

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.TargetVertices = 1500
	cfg.Newton.RelTol = 1e-6
	cfg.Newton.MaxSteps = 60
	return cfg
}

func TestPublicSolve(t *testing.T) {
	res, err := Solve(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Newton.Converged {
		t.Fatalf("not converged: %g -> %g", res.Newton.InitialRnorm, res.Newton.FinalRnorm)
	}
	if res.Problem.Mesh.NumVertices() < 500 {
		t.Errorf("unexpectedly small mesh: %d", res.Problem.Mesh.NumVertices())
	}
}

func TestPublicSolveParallelDeterministic(t *testing.T) {
	cfg := tinyConfig()
	cfg.Ranks = 4
	a, err := SolveParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Newton.TotalLinearIts != b.Newton.TotalLinearIts {
		t.Errorf("iteration counts differ across identical runs: %d vs %d",
			a.Newton.TotalLinearIts, b.Newton.TotalLinearIts)
	}
	if math.Abs(a.Report.Elapsed-b.Report.Elapsed) > 1e-12*a.Report.Elapsed {
		t.Errorf("modeled times differ across identical runs: %g vs %g",
			a.Report.Elapsed, b.Report.Elapsed)
	}
	if a.Newton.FinalRnorm != b.Newton.FinalRnorm {
		t.Errorf("residuals differ across identical runs")
	}
}

func TestPublicBuildOnly(t *testing.T) {
	cfg := tinyConfig()
	cfg.Ranks = 3
	p, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Part.NParts != 3 {
		t.Errorf("partition has %d parts", p.Part.NParts)
	}
	if len(p.Halos) != 3 {
		t.Errorf("halos missing")
	}
}

func TestPublicFluxPhaseTime(t *testing.T) {
	cfg := tinyConfig()
	t1, err := FluxPhaseTime(cfg, 4, 1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := FluxPhaseTime(cfg, 4, 1, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if t2 >= t1 {
		t.Errorf("second thread did not help: %g vs %g", t2, t1)
	}
	if _, err := FluxPhaseTime(cfg, 4, 2, 2, 5); err == nil {
		t.Error("2 ranks x 2 threads accepted")
	}
	if _, err := FluxPhaseTime(cfg, 1, 1, 1, 5); err == nil {
		t.Error("single node accepted")
	}
}

func TestPublicProfiles(t *testing.T) {
	for _, name := range []string{"ASCI Red", "Cray T3E", "Blue Pacific", "Origin 2000"} {
		p, err := ProfileByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ProfileByName(%q): %v, %v", name, p.Name, err)
		}
	}
	if ASCIRed.ProcsPerNode != 2 {
		t.Error("ASCI Red should have two processors per node")
	}
}

func TestPublicCompressibleSecondOrder(t *testing.T) {
	cfg := tinyConfig()
	cfg.System = "compressible"
	cfg.SwitchOrderAt = 1e-2
	cfg.Newton.CFL0 = 5
	cfg.Newton.MaxSteps = 120
	res, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Newton.Converged {
		t.Fatalf("compressible order-continuation run failed: %g -> %g in %d steps",
			res.Newton.InitialRnorm, res.Newton.FinalRnorm, len(res.Newton.Steps))
	}
}
