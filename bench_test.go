package petscfun3d

// One testing.B benchmark per table and figure of the paper's
// evaluation, driving the same generators as cmd/benchtables at the
// smoke-test scale (run the binary with -size medium for the scale
// recorded in EXPERIMENTS.md). Kernel-level companions measure the
// specific effects (layout, blocking, precision) with real wall time.

import (
	"encoding/json"
	"os"
	"sync"
	"testing"

	"petscfun3d/internal/dist"
	"petscfun3d/internal/experiments"
	"petscfun3d/internal/ilu"
	"petscfun3d/internal/mesh"
	"petscfun3d/internal/mpi"
	"petscfun3d/internal/partition"
	"petscfun3d/internal/prof"
	"petscfun3d/internal/sparse"
)

// TestPhaseProfileBaseline runs one profiled solve and writes the
// measured phase report to BENCH_phases.json — the baseline the perf
// trajectory tracks (see EXPERIMENTS.md). It also asserts the profiler's
// core invariant on a real workload: the exclusive phase seconds sum to
// the tracked wall time.
func TestPhaseProfileBaseline(t *testing.T) {
	prof.Default.Reset()
	prof.Default.Enable()
	defer prof.Default.Disable()
	cfg := DefaultConfig()
	cfg.TargetVertices = 3000
	cfg.Newton.MaxSteps = 30
	out, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof.Default.Disable()
	rep := prof.Default.Report(0)
	var sum float64
	for _, st := range rep.Phases {
		sum += st.Seconds
	}
	wall := out.WallTime.Seconds()
	if sum < 0.9*wall || sum > 1.1*wall {
		t.Errorf("phase seconds sum %.4fs, wall time %.4fs — want within 10%%", sum, wall)
	}

	// Fold a small distributed solve's per-rank profilers in (after the
	// wall-time invariant above, which only holds for the
	// single-goroutine sequential run) so the baseline records the
	// overlapped-halo taxonomy: scatter_pack, scatter_wait, interior,
	// boundary.
	dres, err := experiments.Table3MeasuredStudy(1200, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	prof.Default.Merge(dres.Prof)

	// Fold a threaded solve in (assembled operator so the matvec phase
	// runs the striped SpMV) so the baseline records the node-level
	// worker attribution on the pooled phases: tri_solve, matvec, and
	// the Krylov reductions all carry threads=2, bitwise identical to
	// the sequential run by the pool's determinism contract.
	prof.Default.Enable()
	tcfg := DefaultConfig()
	tcfg.TargetVertices = 3000
	tcfg.Newton.MaxSteps = 30
	tcfg.Newton.AssembledOperator = true
	tcfg.Threads = 2
	if _, err := Solve(tcfg); err != nil {
		t.Fatal(err)
	}
	prof.Default.Disable()
	f, err := os.Create("BENCH_phases.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// The baseline layout (sorted phases, identity fields split from the
	// rounded samples) keeps re-records from churning lines whose
	// measurements did not really move.
	if err := prof.WriteBaselineJSON(f, prof.Default.Report(0)); err != nil {
		t.Fatal(err)
	}

	// The emitted profile must stay within the canonical phase taxonomy
	// (the names internal/machine and the lint suite's profspan analyzer
	// are built around); a drifting name would silently detach the
	// measured tables from the model.
	data, err := os.ReadFile("BENCH_phases.json")
	if err != nil {
		t.Fatal(err)
	}
	var written struct {
		Phases []struct {
			Phase string `json:"phase"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(data, &written); err != nil {
		t.Fatalf("BENCH_phases.json does not parse: %v", err)
	}
	if len(written.Phases) == 0 {
		t.Fatal("BENCH_phases.json has no phases")
	}
	for _, p := range written.Phases {
		if !prof.IsPhaseName(p.Phase) {
			t.Errorf("BENCH_phases.json phase %q is outside the canonical taxonomy %v", p.Phase, prof.PhaseNames())
		}
	}
}

func BenchmarkTable1LayoutSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(experiments.Small, "incompressible"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2PrecisionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(experiments.Small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3ScalingStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(experiments.Small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4SchwarzSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(experiments.Small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5HybridSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(experiments.Small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2MachineSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(experiments.Small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3MissCounters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(experiments.Small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4PartitionerSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(experiments.Small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5CFLSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(experiments.Small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMissModelSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MissModel(experiments.Small); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Kernel-level companions: the individual effects, in real time. ---

func benchMatrix(b *testing.B, blockSize int) (*sparse.BCSR, sparse.Graph) {
	b.Helper()
	m, err := mesh.GenerateWingN(12000)
	if err != nil {
		b.Fatal(err)
	}
	m = m.Renumber(mesh.RCM(m))
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	a := sparse.BlockPattern(g, blockSize)
	a.FillDeterministic(42)
	return a, g
}

// Table 1 mechanism: SpMV under the four layout/blocking combinations.
func BenchmarkSpMVInterlacedBlocked(b *testing.B) {
	a, _ := benchMatrix(b, 4)
	x := make([]float64, a.N())
	y := make([]float64, a.N())
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(int64(a.NNZ()*8 + a.NNZBlocks()*4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(x, y)
	}
}

func BenchmarkSpMVInterlacedScalar(b *testing.B) {
	a, _ := benchMatrix(b, 4)
	c := a.ToCSR()
	x := make([]float64, c.N)
	y := make([]float64, c.N)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(int64(c.NNZ() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MulVec(x, y)
	}
}

func BenchmarkSpMVNonInterlacedScalar(b *testing.B) {
	a, g := benchMatrix(b, 4)
	c := sparse.Permute(a.ToCSR(), sparse.LayoutPerm(g.NV, 4, sparse.NonInterlaced))
	x := make([]float64, c.N)
	y := make([]float64, c.N)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(int64(c.NNZ() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MulVec(x, y)
	}
}

// Table 2 mechanism: triangular solve with double vs single factors.
func BenchmarkTriangularSolveDouble(b *testing.B) {
	a, _ := benchMatrix(b, 4)
	f, err := ilu.Factor(a, ilu.Options{Level: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, a.N())
	y := make([]float64, a.N())
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(f.SolveBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Solve(x, y)
	}
}

func BenchmarkTriangularSolveSingle(b *testing.B) {
	a, _ := benchMatrix(b, 4)
	f, err := ilu.Factor(a, ilu.Options{Level: 1, SinglePrecision: true})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, a.N())
	y := make([]float64, a.N())
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(f.SolveBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Solve(x, y)
	}
}

// Figure 3 mechanism: the flux loop under sorted vs colored edges.
func benchFlux(b *testing.B, ordering string) {
	cfg := DefaultConfig()
	// Large enough that the vertex arrays exceed the last-level cache;
	// at small sizes modern caches hide the colored ordering's damage.
	cfg.TargetVertices = 400000
	cfg.EdgeOrdering = ordering
	p, err := Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	q := p.Disc.FreestreamVector()
	r := make([]float64, p.Disc.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Disc.Residual(q, r)
	}
}

func BenchmarkFluxSortedEdges(b *testing.B)  { benchFlux(b, "sorted") }
func BenchmarkFluxColoredEdges(b *testing.B) { benchFlux(b, "colored") }

// Overlapped-halo mechanism: the distributed MulVec with the
// nonblocking exchange hidden behind interior rows, against the
// blocking pre-overlap baseline. The halo_s/op metric is the slowest
// rank's halo cost per product — scatter_wait+scatter_pack when
// overlapped, the whole blocking scatter otherwise — so the two
// benchmarks give the before/after scatter-wait comparison directly.
//
// Caveat for few-core hosts: rank goroutines time-slice, so a rank
// blocked in scatter_wait is charged its peers' serialized interior
// compute, which a back-to-back MulVec loop maximizes. The solver-level
// record (make bench tees benchtables -experiment table3measured, where
// the wait hides real preconditioner desync) is the authoritative
// before/after comparison; this pair isolates the kernel on hosts with
// a core per rank.
func benchDistMulVec(b *testing.B, noOverlap bool) {
	a, g := benchMatrix(b, 4)
	part, err := partition.KWay(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	var mu sync.Mutex
	var maxHalo float64
	b.ResetTimer()
	err = mpi.Run(4, func(c *mpi.Comm) error {
		dm, err := dist.NewMatrix(c, a, part.Part)
		if err != nil {
			return err
		}
		dm.NoOverlap = noOverlap
		pp := prof.New()
		pp.Enable()
		dm.Prof = pp
		bs := a.B
		lx := make([]float64, dm.LocalN())
		ly := make([]float64, dm.LocalN())
		for li := range dm.Owned {
			for k := 0; k < bs; k++ {
				lx[li*bs+k] = 1
			}
		}
		for i := 0; i < b.N; i++ {
			if err := dm.MulVec(lx, ly); err != nil {
				return err
			}
		}
		cat := pp.CategorySeconds()
		halo := cat["scatter"] + cat["wait"]
		mu.Lock()
		if halo > maxHalo {
			maxHalo = halo
		}
		mu.Unlock()
		return nil
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(maxHalo/float64(b.N), "halo_s/op")
}

func BenchmarkDistMulVecOverlapped(b *testing.B) { benchDistMulVec(b, false) }
func BenchmarkDistMulVecBlocking(b *testing.B)   { benchDistMulVec(b, true) }
