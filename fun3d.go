// Package petscfun3d is a Go reproduction of the PETSc-FUN3D system of
// Gropp, Kaushik, Keyes & Smith, "Performance Modeling and Tuning of an
// Unstructured Mesh CFD Application" (SC 2000): a pseudo-transient
// Newton-Krylov-Schwarz solver for three-dimensional Euler flow on
// unstructured tetrahedral meshes, together with the memory-centric
// performance models and the virtual parallel machine used to reproduce
// the paper's tuning studies.
//
// The package is a facade over the repo's internal packages. A minimal
// solve:
//
//	cfg := petscfun3d.DefaultConfig()
//	cfg.TargetVertices = 22677
//	res, err := petscfun3d.Solve(cfg)
//
// Parallel performance studies run the same numerics while modeling
// execution on a virtual machine:
//
//	cfg.Ranks = 128
//	cfg.Profile = petscfun3d.ASCIRed
//	out, err := petscfun3d.SolveParallel(cfg)
//	fmt.Println(out.Report.Elapsed, out.Report.PctWait)
package petscfun3d

import (
	"petscfun3d/internal/core"
	"petscfun3d/internal/experiments"
	"petscfun3d/internal/faults"
	"petscfun3d/internal/perfmodel"
)

// Config selects the mesh, flow system, discretization, solver
// parameters, preconditioner, and (for parallel studies) the partition
// and machine profile. See core.Config for field documentation.
type Config = core.Config

// Problem is the assembled mesh/discretization/partition bundle.
type Problem = core.Problem

// SequentialResult is the outcome of Solve.
type SequentialResult = core.SequentialResult

// ParallelResult is the outcome of SolveParallel.
type ParallelResult = core.ParallelResult

// Profile describes a machine node for the performance model.
type Profile = perfmodel.Profile

// The machine profiles of the paper's platforms.
var (
	ASCIRed     = perfmodel.ASCIRed
	CrayT3E     = perfmodel.CrayT3E
	BluePacific = perfmodel.BluePacific
	Origin2000  = perfmodel.Origin2000
)

// DefaultConfig returns a small incompressible problem on one rank.
func DefaultConfig() Config { return core.DefaultConfig() }

// Build assembles the mesh, discretization, and partition for cfg
// without solving.
func Build(cfg Config) (*Problem, error) { return core.Build(cfg) }

// Solve runs the ψNKS steady-state solve in one address space and
// reports real wall-clock times.
func Solve(cfg Config) (*SequentialResult, error) { return core.RunSequential(cfg) }

// SolveParallel runs the same numerics domain-decomposed over cfg.Ranks
// virtual ranks, reporting the modeled parallel execution profile
// (elapsed time, efficiency factors, communication breakdown).
func SolveParallel(cfg Config) (*ParallelResult, error) { return core.RunParallel(cfg) }

// FluxPhaseTime models the hybrid-parallelism experiment of the paper's
// Table 5: the flux phase on `nodes` nodes using either a second MPI
// rank or a second thread per node. See core.FluxPhaseTime.
func FluxPhaseTime(cfg Config, nodes, procsPerNode, threads, evals int) (float64, error) {
	return core.FluxPhaseTime(cfg, nodes, procsPerNode, threads, evals)
}

// ProfileByName looks up a built-in machine profile ("ASCI Red",
// "Cray T3E", "Blue Pacific", "Origin 2000").
func ProfileByName(name string) (Profile, error) { return perfmodel.ProfileByName(name) }

// FaultProfile names a canned fault-injection schedule for chaos runs
// (jitter, delay, stall, panic, mixed — see internal/faults).
type FaultProfile = faults.Profile

// ChaosResult is the measured η_impl-vs-injected-skew table produced by
// ChaosSweep: the distributed GMRES solved fault-free, then once per
// seed under a deterministic fault plan, with the implementation
// efficiency read off the wall clocks. Faults are timing-only, so every
// row converges in the fault-free iteration count (asserted).
type ChaosResult = experiments.ChaosSweepResult

// FaultProfiles lists the fault profiles ChaosSweep accepts.
func FaultProfiles() []FaultProfile { return faults.Profiles() }

// ChaosSweep runs the chaos sweep on the deterministic wing-mesh system
// with nv vertices at procs virtual ranks: one distributed solve per
// seed under the profile's fault plan, reduced against the fault-free
// baseline. The fun3d binary's -chaos-seed flag is the CLI spelling of
// the same study on the real first-order Jacobian.
func ChaosSweep(nv, procs int, profile FaultProfile, seeds []int64) (*ChaosResult, error) {
	return experiments.ChaosSweepStudy(nv, procs, profile, seeds)
}
