package euler

import (
	"fmt"
	"math"
)

// Second-order spatial accuracy: unstructured MUSCL — weighted
// least-squares vertex gradients (exact for linear fields, the approach
// of unstructured codes like FUN3D), optional Barth-Jespersen limiting,
// and linear extrapolation of the two states to the edge midpoint.

// buildLSQ precomputes the inverse normal matrices of the weighted
// least-squares gradient problem: for vertex v with edge vectors d_j and
// weights w_j = 1/|d_j|², M_v = Σ w_j d_j d_jᵀ, stored as Minv (row-major
// 3×3 per vertex).
func (d *Discretization) buildLSQ() error {
	nv := d.M.NumVertices()
	d.lsqInv = make([]float64, nv*9)
	for v := 0; v < nv; v++ {
		var m [9]float64
		xv := d.M.Coords[v]
		for _, w := range d.M.Neighbors(v) {
			dx := sub3(d.M.Coords[w], xv)
			wt := 1.0 / dot3(dx, dx)
			c := [3]float64{dx.X, dx.Y, dx.Z}
			for r := 0; r < 3; r++ {
				for s := 0; s < 3; s++ {
					m[r*3+s] += wt * c[r] * c[s]
				}
			}
		}
		inv, ok := invert3(m)
		if !ok {
			return fmt.Errorf("euler: vertex %d has degenerate LSQ stencil", v)
		}
		copy(d.lsqInv[v*9:v*9+9], inv[:])
	}
	return nil
}

// invert3 inverts a row-major 3×3 matrix.
func invert3(m [9]float64) ([9]float64, bool) {
	a, b, c := m[0], m[1], m[2]
	e, f, g := m[3], m[4], m[5]
	h, i, j := m[6], m[7], m[8]
	det := a*(f*j-g*i) - b*(e*j-g*h) + c*(e*i-f*h)
	if math.Abs(det) < 1e-300 {
		return [9]float64{}, false
	}
	inv := [9]float64{
		f*j - g*i, c*i - b*j, b*g - c*f,
		g*h - e*j, a*j - c*h, c*e - a*g,
		e*i - f*h, b*h - a*i, a*f - b*e,
	}
	for k := range inv {
		inv[k] /= det
	}
	return inv, true
}

// computeGradients fills d.grad with weighted least-squares gradients of
// every component.
func (d *Discretization) computeGradients(q []float64) {
	b := d.Sys.B()
	nv := d.M.NumVertices()
	var qv, qw [5]float64
	rhs := make([]float64, b*3)
	for v := 0; v < nv; v++ {
		d.gather(q, int32(v), qv[:b])
		for i := range rhs {
			rhs[i] = 0
		}
		xv := d.M.Coords[v]
		for _, w := range d.M.Neighbors(v) {
			dx := sub3(d.M.Coords[w], xv)
			wt := 1.0 / dot3(dx, dx)
			d.gather(q, w, qw[:b])
			for c := 0; c < b; c++ {
				dq := wt * (qw[c] - qv[c])
				rhs[c*3+0] += dq * dx.X
				rhs[c*3+1] += dq * dx.Y
				rhs[c*3+2] += dq * dx.Z
			}
		}
		inv := d.lsqInv[v*9 : v*9+9]
		g := d.grad[v*b*3 : (v+1)*b*3]
		for c := 0; c < b; c++ {
			rx, ry, rz := rhs[c*3], rhs[c*3+1], rhs[c*3+2]
			g[c*3+0] = inv[0]*rx + inv[1]*ry + inv[2]*rz
			g[c*3+1] = inv[3]*rx + inv[4]*ry + inv[5]*rz
			g[c*3+2] = inv[6]*rx + inv[7]*ry + inv[8]*rz
		}
	}
}

// computeLimiters fills d.alpha with Barth-Jespersen limiter factors in
// [0, 1] per vertex and component, so reconstructed edge-midpoint values
// stay within the min/max of the vertex's neighborhood.
func (d *Discretization) computeLimiters(q []float64) {
	b := d.Sys.B()
	nv := d.M.NumVertices()
	qmin := make([]float64, nv*b)
	qmax := make([]float64, nv*b)
	var qv [5]float64
	for v := int32(0); v < int32(nv); v++ {
		d.gather(q, v, qv[:b])
		for c := 0; c < b; c++ {
			qmin[int(v)*b+c] = qv[c]
			qmax[int(v)*b+c] = qv[c]
		}
	}
	var qa, qb [5]float64
	for _, e := range d.edges {
		d.gather(q, e.a, qa[:b])
		d.gather(q, e.b, qb[:b])
		for c := 0; c < b; c++ {
			ia, ib := int(e.a)*b+c, int(e.b)*b+c
			if qb[c] < qmin[ia] {
				qmin[ia] = qb[c]
			}
			if qb[c] > qmax[ia] {
				qmax[ia] = qb[c]
			}
			if qa[c] < qmin[ib] {
				qmin[ib] = qa[c]
			}
			if qa[c] > qmax[ib] {
				qmax[ib] = qa[c]
			}
		}
	}
	for i := range d.alpha {
		d.alpha[i] = 1
	}
	limit := func(v int32, qv []float64, delta float64, c int) {
		i := int(v)*b + c
		var bound float64
		switch {
		case delta > 1e-14:
			bound = (qmax[i] - qv[c]) / delta
		case delta < -1e-14:
			bound = (qmin[i] - qv[c]) / delta
		default:
			return
		}
		if bound < d.alpha[i] {
			if bound < 0 {
				bound = 0
			}
			d.alpha[i] = bound
		}
	}
	for _, e := range d.edges {
		d.gather(q, e.a, qa[:b])
		d.gather(q, e.b, qb[:b])
		xm := scale3(add3(d.M.Coords[e.a], d.M.Coords[e.b]), 0.5)
		da := sub3(xm, d.M.Coords[e.a])
		db := sub3(xm, d.M.Coords[e.b])
		ga := d.grad[int(e.a)*b*3 : (int(e.a)+1)*b*3]
		gb := d.grad[int(e.b)*b*3 : (int(e.b)+1)*b*3]
		for c := 0; c < b; c++ {
			limit(e.a, qa[:b], ga[c*3]*da.X+ga[c*3+1]*da.Y+ga[c*3+2]*da.Z, c)
			limit(e.b, qb[:b], gb[c*3]*db.X+gb[c*3+1]*db.Y+gb[c*3+2]*db.Z, c)
		}
	}
}

// reconstruct extrapolates the endpoint states to the edge midpoint.
func (d *Discretization) reconstruct(e edgeData, qa, qb, ql, qr []float64) {
	b := d.Sys.B()
	xm := scale3(add3(d.M.Coords[e.a], d.M.Coords[e.b]), 0.5)
	da := sub3(xm, d.M.Coords[e.a])
	db := sub3(xm, d.M.Coords[e.b])
	ga := d.grad[int(e.a)*b*3 : (int(e.a)+1)*b*3]
	gb := d.grad[int(e.b)*b*3 : (int(e.b)+1)*b*3]
	for c := 0; c < b; c++ {
		aa, ab := 1.0, 1.0
		if d.Opts.Limit {
			aa = d.alpha[int(e.a)*b+c]
			ab = d.alpha[int(e.b)*b+c]
		}
		ql[c] = qa[c] + aa*(ga[c*3]*da.X+ga[c*3+1]*da.Y+ga[c*3+2]*da.Z)
		qr[c] = qb[c] + ab*(gb[c*3]*db.X+gb[c*3+1]*db.Y+gb[c*3+2]*db.Z)
	}
}
