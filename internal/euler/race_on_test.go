//go:build race

package euler

// See race_off_test.go.
const raceDetectorEnabled = true
