package euler

import (
	"fmt"
	"sync"

	"petscfun3d/internal/mesh"
	"petscfun3d/internal/prof"
	"petscfun3d/internal/sparse"
)

// fluxWorkspace is the per-sweep scratch for one flux traversal: the
// gathered endpoint states, the reconstructed face states, and the flux
// and its scratch. The arrays live here — not as locals in the sweep —
// because they are passed to System interface methods, which makes
// stack locals escape to the heap inside the hot loops (the codegen
// budget forbids that). Workspaces are borrowed from a pool because the
// distributed ranks run as goroutines over one shared Discretization.
type fluxWorkspace struct {
	qa, qb, ql, qr, flux, scratch [5]float64
}

// edgeData is one edge of the flux loop: endpoints and the directed dual
// face area, kept together so the loop can run in any edge order.
type edgeData struct {
	a, b int32
	n    mesh.Vec3
}

// Options configures a Discretization.
type Options struct {
	// Order is the spatial order of the convective flux: 1 (first-order
	// upwind) or 2 (limited linear reconstruction). The preconditioner
	// Jacobian is always assembled first-order, as in the paper.
	Order int
	// Layout is the storage layout of state and residual vectors.
	Layout sparse.Layout
	// EdgeOrdering names the flux-loop edge order: "sorted" (the paper's
	// cache-friendly reordering, default), "natural" (as generated), or
	// "colored" (the original FUN3D vector-machine ordering).
	EdgeOrdering string
	// Limit enables the Barth-Jespersen limiter for Order 2.
	Limit bool
	// Viscosity, when positive, adds a Galerkin (P1 finite-element)
	// Laplacian of the momentum components with coefficient μ — the
	// "Galerkin-type diffusion" of the FUN3D discretization, making the
	// solver a laminar Navier-Stokes code (with free-slip walls).
	Viscosity float64
}

// Discretization is the edge-based finite-volume spatial discretization
// of a System on a mesh.
type Discretization struct {
	M    *mesh.Mesh
	Geo  *Geometry
	Sys  System
	Opts Options

	edges []edgeData
	// Second-order workspace.
	grad   []float64 // nv*b*3, least-squares gradients
	alpha  []float64 // nv*b, limiter factors
	lsqInv []float64 // nv*9, precomputed LSQ normal-matrix inverses
	// Viscous edge weights (when Opts.Viscosity > 0).
	diffW []float64
	// Private residual scratch for ResidualParallel, one per extra
	// thread, grown lazily to the largest thread count seen.
	privRes [][]float64
	// Reusable worker-pool task of ResidualParallel; field re-pointing
	// keeps the threaded sweep allocation-free in steady state.
	fluxT fluxTask
	// Cached freestream state for the boundary sweep (System.Freestream
	// allocates a fresh vector per call).
	infState []float64
	// Flux-sweep scratch states, pooled so concurrent sweeps (the
	// distributed ranks share one Discretization) each borrow their own.
	wsPool sync.Pool
}

// getWS borrows a flux workspace; pair with putWS when the sweep ends.
func (d *Discretization) getWS() *fluxWorkspace {
	if w, ok := d.wsPool.Get().(*fluxWorkspace); ok {
		return w
	}
	return &fluxWorkspace{} // one workspace per concurrent sweep, recycled through the pool thereafter
}

func (d *Discretization) putWS(w *fluxWorkspace) { d.wsPool.Put(w) }

// NewDiscretization builds a discretization. geo may be nil, in which
// case the geometry is computed.
func NewDiscretization(m *mesh.Mesh, geo *Geometry, sys System, opts Options) (*Discretization, error) {
	if opts.Order != 1 && opts.Order != 2 {
		return nil, fmt.Errorf("euler: order %d not supported (want 1 or 2)", opts.Order)
	}
	if geo == nil {
		var err error
		geo, err = BuildGeometry(m)
		if err != nil {
			return nil, err
		}
	}
	d := &Discretization{M: m, Geo: geo, Sys: sys, Opts: opts}
	// Materialize edges+normals in the requested iteration order.
	order := make([]int, m.NumEdges())
	for i := range order {
		order[i] = i
	}
	switch opts.EdgeOrdering {
	case "", "sorted", "natural":
		// The mesh's edge list is already sorted by (A, B).
	case "colored":
		// The vector-machine baseline: edges in as-generated (scrambled)
		// order, greedily colored so no color class repeats a vertex.
		colored, _ := mesh.ColorEdges(mesh.ScrambleEdges(m.Edges, 12345), m.NumVertices())
		index := make(map[mesh.Edge]int, m.NumEdges())
		for i, e := range m.Edges {
			index[e] = i
		}
		for i, e := range colored {
			order[i] = index[e]
		}
	default:
		return nil, fmt.Errorf("euler: unknown edge ordering %q", opts.EdgeOrdering)
	}
	d.edges = make([]edgeData, m.NumEdges())
	for i, oi := range order {
		e := m.Edges[oi]
		d.edges[i] = edgeData{a: e.A, b: e.B, n: geo.Normals[oi]}
	}
	b := sys.B()
	if opts.Order == 2 {
		d.grad = make([]float64, m.NumVertices()*b*3)
		d.alpha = make([]float64, m.NumVertices()*b)
		if err := d.buildLSQ(); err != nil {
			return nil, err
		}
	}
	if opts.Viscosity < 0 {
		return nil, fmt.Errorf("euler: negative viscosity %g", opts.Viscosity)
	}
	if opts.Viscosity > 0 {
		if err := d.buildDiffusionWeights(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// N returns the number of scalar unknowns.
func (d *Discretization) N() int { return d.M.NumVertices() * d.Sys.B() }

// idx maps (vertex, component) to the scalar index under the layout.
func (d *Discretization) idx(v int32, c int) int {
	return sparse.ScalarIndex(d.Opts.Layout, d.M.NumVertices(), d.Sys.B(), int(v), c)
}

// gather copies vertex v's state into dst. The interlaced fast path is
// kept small enough to inline into the flux sweeps; the strided layouts
// go through the out-of-line helper. len(dst) carries the block size so
// the fast path needs no interface call.
func (d *Discretization) gather(q []float64, v int32, dst []float64) {
	if d.Opts.Layout != sparse.Interlaced {
		d.gatherStrided(q, v, dst)
		return
	}
	copy(dst, q[int(v)*len(dst):])
}

// gatherStrided is kept out of line (a call to an inlinable function is
// charged its full body cost, which would push gather past the inlining
// budget; a plain call is cheaper to the inliner).
//
//go:noinline
func (d *Discretization) gatherStrided(q []float64, v int32, dst []float64) {
	for c := range dst {
		dst[c] = q[d.idx(v, c)]
	}
}

// scatterAdd accumulates src into vertex v's residual with sign. Split
// like gather so the interlaced path inlines into the flux sweeps.
func (d *Discretization) scatterAdd(r []float64, v int32, src []float64, sign float64) {
	if d.Opts.Layout != sparse.Interlaced {
		d.scatterAddStrided(r, v, src, sign)
		return
	}
	b := len(src)
	rs := r[int(v)*b : int(v)*b+b]
	for c, s := range src {
		rs[c] += sign * s
	}
}

func (d *Discretization) scatterAddStrided(r []float64, v int32, src []float64, sign float64) {
	for c := range src {
		r[d.idx(v, c)] += sign * src[c]
	}
}

// FreestreamVector returns a state vector with every vertex at the
// freestream state, in the discretization's layout.
func (d *Discretization) FreestreamVector() []float64 {
	q := make([]float64, d.N())
	inf := d.Sys.Freestream()
	for v := int32(0); v < int32(d.M.NumVertices()); v++ {
		for c, val := range inf {
			q[d.idx(v, c)] = val
		}
	}
	return q
}

// Residual evaluates the steady residual r(q): the net convective flux
// out of every control volume, including the weak farfield and slip-wall
// boundary fluxes. r must have length N().
func (d *Discretization) Residual(q, r []float64) {
	sp := prof.Begin(prof.PhaseFlux)
	b := d.Sys.B()
	rs := r[:d.N()] // bce: one range check here; the zero loop then indexes the tied slice unchecked
	for i := range rs {
		rs[i] = 0
	}
	if d.Opts.Order == 2 {
		gsp := prof.Begin(prof.PhaseGradient)
		d.computeGradients(q)
		if d.Opts.Limit {
			d.computeLimiters(q)
		}
		gsp.End(d.gradientFlops(), d.gradientBytes())
	}
	ws := d.getWS()
	qa, qb, ql, qr := ws.qa[:b], ws.qb[:b], ws.ql[:b], ws.qr[:b]
	flux, scratch := ws.flux[:b], ws.scratch[:b]
	secondOrder := d.Opts.Order == 2
	for _, e := range d.edges {
		d.gather(q, e.a, qa) //lint:bce-ok the gathered row offset is data-dependent through the edge endpoint
		d.gather(q, e.b, qb) //lint:bce-ok the gathered row offset is data-dependent through the edge endpoint
		la, ra := qa, qb
		if secondOrder {
			d.reconstruct(e, qa, qb, ql, qr)
			la, ra = ql, qr
		}
		NumFlux(d.Sys, la, ra, e.n, flux, scratch)
		d.scatterAdd(r, e.a, flux, +1)
		d.scatterAdd(r, e.b, flux, -1)
	}
	d.putWS(ws)
	if d.Opts.Viscosity > 0 {
		d.addDiffusion(q, r)
	}
	d.boundaryResidual(q, r)
	sp.End(d.SweepFlops(), d.SweepBytes())
}

// boundaryResidual adds the boundary closure fluxes.
func (d *Discretization) boundaryResidual(q, r []float64) {
	b := d.Sys.B()
	if d.infState == nil {
		d.infState = d.Sys.Freestream()
	}
	inf := d.infState // cached: Freestream allocates its state vector on every call
	ws := d.getWS()
	qi, flux, scratch := ws.qa[:b], ws.flux[:b], ws.scratch[:b]
	bk := d.M.BKind
	ba := d.Geo.BoundaryArea[:len(bk)] // bce: ties len(ba) to len(bk); the vertex index serves both unchecked
	for v, kind := range bk {
		if kind == mesh.BNone {
			continue
		}
		s := ba[v]
		d.gather(q, int32(v), qi) //lint:bce-ok the gathered row offset is v*b, a product prove cannot relate to len(q)
		switch kind {
		case mesh.BInflow, mesh.BOutflow:
			// Weak characteristic farfield: upwind flux against the
			// freestream ghost state.
			NumFlux(d.Sys, qi, inf, s, flux, scratch)
		case mesh.BWall:
			d.wallFlux(qi, s, flux)
		}
		d.scatterAdd(r, int32(v), flux, +1)
	}
	d.putWS(ws)
}

// wallFlux is the impermeable slip-wall flux: pressure force only.
func (d *Discretization) wallFlux(q []float64, s mesh.Vec3, out []float64) {
	switch sys := d.Sys.(type) {
	case *Incompressible:
		p := q[0]
		out[0] = 0
		out[1] = p * s.X
		out[2] = p * s.Y
		out[3] = p * s.Z
	case *Compressible:
		p := sys.Pressure(q)
		out[0] = 0
		out[1] = p * s.X
		out[2] = p * s.Y
		out[3] = p * s.Z
		out[4] = 0
	default:
		//lint:panic-ok internal invariant: the system enum is validated when the problem is configured
		panic("euler: wallFlux: unknown system")
	}
}

// TimeScales returns, for each vertex, the sum of spectral radii over its
// control-volume faces; the local pseudo-timestep is then
// Δt_v = CFL · Volume_v / TimeScales_v.
func (d *Discretization) TimeScales(q []float64) []float64 {
	b := d.Sys.B()
	out := make([]float64, d.M.NumVertices())
	ws := d.getWS()
	qa, qb := ws.qa[:b], ws.qb[:b]
	for _, e := range d.edges {
		d.gather(q, e.a, qa) //lint:bce-ok the gathered row offset is data-dependent through the edge endpoint
		d.gather(q, e.b, qb) //lint:bce-ok the gathered row offset is data-dependent through the edge endpoint
		lam := d.Sys.SpectralRadius(qa, e.n)
		if l2 := d.Sys.SpectralRadius(qb, e.n); l2 > lam {
			lam = l2
		}
		out[e.a] += lam //lint:bce-ok the accumulation scatters through the edge endpoints; both are data-dependent
		out[e.b] += lam //lint:bce-ok the accumulation scatters through the edge endpoints; both are data-dependent
	}
	bk := d.M.BKind
	ba := d.Geo.BoundaryArea[:len(bk)] // bce: ties len(ba) to len(bk); the vertex index serves both unchecked
	outv := out[:len(bk)]              // bce: ties len(outv) to len(bk) the same way
	for v, kind := range bk {
		if kind == mesh.BNone {
			continue
		}
		d.gather(q, int32(v), qa) //lint:bce-ok the gathered row offset is v*b, a product prove cannot relate to len(q)
		outv[v] += d.Sys.SpectralRadius(qa, ba[v])
	}
	// Viscous stiffness: the diffusion operator's diagonal weight joins
	// the pseudo-timestep scale so the continuation stays robust when
	// diffusion dominates convection.
	if d.Opts.Viscosity > 0 {
		mu := d.Opts.Viscosity
		edges := d.edges
		dw := d.diffW[:len(edges)] // bce: ties len(dw) to the edge range; the ei index is then unchecked
		for ei, e := range edges {
			w := mu * dw[ei]
			if w < 0 {
				w = -w
			}
			out[e.a] += w //lint:bce-ok the accumulation scatters through the edge endpoints; both are data-dependent
			out[e.b] += w //lint:bce-ok the accumulation scatters through the edge endpoints; both are data-dependent
		}
	}
	d.putWS(ws)
	return out
}
