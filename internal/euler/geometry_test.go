package euler

import (
	"math"
	"testing"

	"petscfun3d/internal/mesh"
)

// singleTetMesh builds a mesh of one tetrahedron with the given vertex
// order (to exercise both orientations of the hex-split output).
func singleTetMesh(t *testing.T, order [4]int32) *mesh.Mesh {
	t.Helper()
	m := &mesh.Mesh{
		Coords: []mesh.Vec3{
			{X: 0, Y: 0, Z: 0},
			{X: 1, Y: 0, Z: 0},
			{X: 0, Y: 1, Z: 0},
			{X: 0, Y: 0, Z: 1},
		},
		Boundary: make([]bool, 4),
		BKind:    make([]mesh.BoundaryKind, 4),
		BNormal:  make([]mesh.Vec3, 4),
		Tets:     [][4]int32{order},
	}
	// All four vertices are on the boundary of a single tet.
	for v := range m.Boundary {
		m.Boundary[v] = true
		m.BKind[v] = mesh.BWall
	}
	rebuild(t, m)
	return m
}

// rebuild regenerates connectivity via Renumber with the identity (the
// package-internal buildConnectivity is not exported).
func rebuild(t *testing.T, m *mesh.Mesh) {
	t.Helper()
	*m = *m.Renumber(mesh.Identity(4))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryOrientationIndependent(t *testing.T) {
	// The unit tet has volume 1/6 regardless of the vertex order handed
	// to the generator (negative-orientation tets are flipped, not
	// rejected).
	pos := singleTetMesh(t, [4]int32{0, 1, 2, 3})
	neg := singleTetMesh(t, [4]int32{1, 0, 2, 3})
	gp, err := BuildGeometry(pos)
	if err != nil {
		t.Fatal(err)
	}
	gn, err := BuildGeometry(neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gp.TotalVolume-1.0/6.0) > 1e-12 {
		t.Errorf("volume %g, want 1/6", gp.TotalVolume)
	}
	if math.Abs(gp.TotalVolume-gn.TotalVolume) > 1e-12 {
		t.Errorf("orientation changed total volume: %g vs %g", gp.TotalVolume, gn.TotalVolume)
	}
	// Edge normals have identical magnitudes under either orientation.
	for i := range gp.Normals {
		if math.Abs(norm3(gp.Normals[i])-norm3(gn.Normals[i])) > 1e-12 {
			t.Errorf("edge %d normal magnitude differs between orientations", i)
		}
	}
	// Dual volumes split the tet equally (by symmetry of the split, each
	// vertex gets a quarter).
	for v, vol := range gp.Volumes {
		if math.Abs(vol-1.0/24.0) > 1e-12 {
			t.Errorf("vertex %d dual volume %g, want 1/24", v, vol)
		}
	}
}

func TestGeometryNormalsScaleWithMesh(t *testing.T) {
	// Doubling all coordinates scales areas by 4 and volumes by 8.
	small := singleTetMesh(t, [4]int32{0, 1, 2, 3})
	big := singleTetMesh(t, [4]int32{0, 1, 2, 3})
	for v := range big.Coords {
		big.Coords[v] = mesh.Vec3{X: 2 * big.Coords[v].X, Y: 2 * big.Coords[v].Y, Z: 2 * big.Coords[v].Z}
	}
	gs, err := BuildGeometry(small)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := BuildGeometry(big)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gb.TotalVolume-8*gs.TotalVolume) > 1e-12 {
		t.Errorf("volume scaling: %g vs 8*%g", gb.TotalVolume, gs.TotalVolume)
	}
	for i := range gs.Normals {
		if math.Abs(norm3(gb.Normals[i])-4*norm3(gs.Normals[i])) > 1e-12 {
			t.Errorf("edge %d area scaling wrong", i)
		}
	}
}
