//go:build !race

package euler

// raceDetectorEnabled reports whether the race detector is compiled in.
// Under -race, sync.Pool deliberately drops items to expose races, so
// steady-state allocation tests are skipped there.
const raceDetectorEnabled = false
