package euler

import (
	"math"
	"testing"
	"testing/quick"

	"petscfun3d/internal/mesh"
	"petscfun3d/internal/sparse"
)

func testMesh(t testing.TB, nx, ny, nz int) *mesh.Mesh {
	t.Helper()
	m, err := mesh.GenerateWing(mesh.DefaultWingSpec(nx, ny, nz))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGeometryVolumesPositive(t *testing.T) {
	m := testMesh(t, 7, 6, 5)
	g, err := BuildGeometry(m)
	if err != nil {
		t.Fatal(err)
	}
	for v, vol := range g.Volumes {
		if vol <= 0 {
			t.Fatalf("vertex %d has nonpositive dual volume %g", v, vol)
		}
	}
	if g.TotalVolume <= 0 {
		t.Fatal("nonpositive total volume")
	}
	// Dual volumes partition the mesh volume: compare against direct tet
	// volume sum.
	var direct float64
	for _, tet := range m.Tets {
		p := [4]mesh.Vec3{m.Coords[tet[0]], m.Coords[tet[1]], m.Coords[tet[2]], m.Coords[tet[3]]}
		direct += math.Abs(tetVolume(p))
	}
	if math.Abs(direct-g.TotalVolume) > 1e-12*direct {
		t.Errorf("total volume %g != tet sum %g", g.TotalVolume, direct)
	}
}

func TestGeometryClosure(t *testing.T) {
	// Interior control volumes are closed: their BoundaryArea must be
	// numerically zero. Boundary vertices must have outward-pointing
	// closure areas.
	m := testMesh(t, 8, 7, 6)
	g, err := BuildGeometry(m)
	if err != nil {
		t.Fatal(err)
	}
	scale := math.Pow(g.TotalVolume/float64(m.NumVertices()), 2.0/3.0)
	for v := 0; v < m.NumVertices(); v++ {
		ba := norm3(g.BoundaryArea[v])
		if m.BKind[v] == mesh.BNone {
			if ba > 1e-10*scale {
				t.Fatalf("interior vertex %d closure defect %g", v, ba)
			}
		} else {
			if ba < 1e-12 {
				t.Fatalf("boundary vertex %d has zero closure area", v)
			}
			// Outward: positive dot with the stored outward unit normal.
			if dot3(g.BoundaryArea[v], m.BNormal[v]) <= 0 {
				t.Fatalf("boundary vertex %d closure area points inward", v)
			}
		}
	}
	// Global closure: all boundary areas sum to zero over a closed mesh.
	var total mesh.Vec3
	for v := range g.BoundaryArea {
		total = add3(total, g.BoundaryArea[v])
	}
	if norm3(total) > 1e-9 {
		t.Errorf("global boundary closure defect %g", norm3(total))
	}
}

func systems() []System {
	return []System{NewIncompressible(), NewCompressible()}
}

// perturbedState returns freestream plus a smooth perturbation, a
// physically valid state for both systems.
func perturbedState(sys System, seed float64) []float64 {
	q := append([]float64(nil), sys.Freestream()...)
	for c := range q {
		q[c] += 0.05 * math.Sin(seed+float64(c))
	}
	return q
}

func TestNumFluxConsistency(t *testing.T) {
	n := mesh.Vec3{X: 0.3, Y: -0.2, Z: 0.5}
	for _, sys := range systems() {
		b := sys.B()
		q := perturbedState(sys, 1.7)
		want := make([]float64, b)
		sys.PhysFlux(q, n, want)
		got := make([]float64, b)
		scratch := make([]float64, b)
		NumFlux(sys, q, q, n, got, scratch)
		for c := 0; c < b; c++ {
			if math.Abs(got[c]-want[c]) > 1e-13 {
				t.Errorf("%s: NumFlux(q,q) component %d = %g, want %g", sys.Name(), c, got[c], want[c])
			}
		}
	}
}

func TestPhysJacobianMatchesFiniteDifference(t *testing.T) {
	n := mesh.Vec3{X: 0.4, Y: 0.1, Z: -0.3}
	for _, sys := range systems() {
		b := sys.B()
		q := perturbedState(sys, 0.9)
		jac := make([]float64, b*b)
		sys.PhysJacobian(q, n, jac)
		f0 := make([]float64, b)
		f1 := make([]float64, b)
		sys.PhysFlux(q, n, f0)
		const h = 1e-7
		for c := 0; c < b; c++ {
			qp := append([]float64(nil), q...)
			qp[c] += h
			sys.PhysFlux(qp, n, f1)
			for r := 0; r < b; r++ {
				fd := (f1[r] - f0[r]) / h
				if math.Abs(fd-jac[r*b+c]) > 1e-5*(1+math.Abs(fd)) {
					t.Errorf("%s: dF%d/dq%d analytic %g, fd %g", sys.Name(), r, c, jac[r*b+c], fd)
				}
			}
		}
	}
}

func TestSpectralRadiusPositive(t *testing.T) {
	n := mesh.Vec3{X: 1, Y: 2, Z: -2}
	for _, sys := range systems() {
		q := sys.Freestream()
		if sr := sys.SpectralRadius(q, n); sr <= 0 {
			t.Errorf("%s: spectral radius %g", sys.Name(), sr)
		}
	}
}

func newDisc(t testing.TB, m *mesh.Mesh, sys System, opts Options) *Discretization {
	t.Helper()
	d, err := NewDiscretization(m, nil, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFreestreamInteriorResidualZero(t *testing.T) {
	// At uniform freestream the interior residual vanishes (fluxes of a
	// constant state telescope around closed control volumes).
	m := testMesh(t, 8, 6, 5)
	for _, sys := range systems() {
		d := newDisc(t, m, sys, Options{Order: 1})
		q := d.FreestreamVector()
		r := make([]float64, d.N())
		d.Residual(q, r)
		b := sys.B()
		for v := 0; v < m.NumVertices(); v++ {
			if m.BKind[v] != mesh.BNone {
				continue
			}
			for c := 0; c < b; c++ {
				if math.Abs(r[v*b+c]) > 1e-10 {
					t.Fatalf("%s: interior vertex %d comp %d residual %g", sys.Name(), v, c, r[v*b+c])
				}
			}
		}
		// And the wing taper forces nonzero residual somewhere on the
		// walls (freestream does not satisfy slip there) so the problem
		// is nontrivial.
		max := 0.0
		for _, x := range r {
			if math.Abs(x) > max {
				max = math.Abs(x)
			}
		}
		if max < 1e-8 {
			t.Errorf("%s: freestream is a steady state; problem trivial", sys.Name())
		}
	}
}

// smoothState builds a nonuniform but smooth state in the interlaced
// layout for Jacobian and layout tests.
func smoothState(d *Discretization) []float64 {
	q := d.FreestreamVector()
	b := d.Sys.B()
	for v := 0; v < d.M.NumVertices(); v++ {
		x := d.M.Coords[v]
		for c := 0; c < b; c++ {
			q[v*b+c] += 0.05 * math.Sin(1.3*x.X+0.7*x.Y-0.9*x.Z+float64(c))
		}
	}
	return q
}

func TestAssembledJacobianMatchesFiniteDifference(t *testing.T) {
	// The assembled Jacobian freezes the upwind dissipation coefficient
	// (the standard approximation), so it is exact only where the state
	// jump across a face is zero. At a *uniform* state every interior
	// face has zero jump, making interior rows exact to FD error; rows of
	// boundary vertices retain the (small) frozen-λ error from the
	// farfield jump, checked loosely.
	m := testMesh(t, 5, 4, 4)
	for _, sys := range systems() {
		d := newDisc(t, m, sys, Options{Order: 1})
		q := d.FreestreamVector()
		b := sys.B()
		for i := range q {
			q[i] *= 0.97 // uniform, but not the freestream itself
			q[i] += 0.01
		}
		a := d.JacobianPattern()
		if err := d.AssembleJacobian(q, a); err != nil {
			t.Fatal(err)
		}
		n := d.N()
		// Directional derivative check: A*w vs (R(q+hw)-R(q))/h for a
		// fixed direction w.
		w := make([]float64, n)
		for i := range w {
			w[i] = math.Sin(float64(i)*0.37 + 0.2)
		}
		aw := make([]float64, n)
		a.MulVec(w, aw)
		r0 := make([]float64, n)
		r1 := make([]float64, n)
		d.Residual(q, r0)
		h := 1e-7
		qp := append([]float64(nil), q...)
		for i := range qp {
			qp[i] += h * w[i]
		}
		d.Residual(qp, r1)
		worstInterior, worstAll := 0.0, 0.0
		for i := 0; i < n; i++ {
			fd := (r1[i] - r0[i]) / h
			diff := math.Abs(fd - aw[i])
			if diff > worstAll {
				worstAll = diff
			}
			if m.BKind[i/b] == mesh.BNone && diff > worstInterior {
				worstInterior = diff
			}
		}
		if worstInterior > 5e-5 {
			t.Errorf("%s: interior Jacobian vs FD worst diff %g", sys.Name(), worstInterior)
		}
		if worstAll > 2e-2 {
			t.Errorf("%s: boundary Jacobian vs FD worst diff %g", sys.Name(), worstAll)
		}
	}
}

func TestLSQGradientsExactForLinearField(t *testing.T) {
	m := testMesh(t, 6, 5, 5)
	sys := NewIncompressible()
	d := newDisc(t, m, sys, Options{Order: 2})
	b := sys.B()
	// q_c = c + 2x - 3y + 0.5z
	q := make([]float64, d.N())
	for v := 0; v < m.NumVertices(); v++ {
		x := m.Coords[v]
		for c := 0; c < b; c++ {
			q[v*b+c] = float64(c) + 2*x.X - 3*x.Y + 0.5*x.Z
		}
	}
	d.computeGradients(q)
	for v := 0; v < m.NumVertices(); v++ {
		for c := 0; c < b; c++ {
			g := d.grad[v*b*3+c*3 : v*b*3+c*3+3]
			if math.Abs(g[0]-2) > 1e-9 || math.Abs(g[1]+3) > 1e-9 || math.Abs(g[2]-0.5) > 1e-9 {
				t.Fatalf("vertex %d comp %d gradient %v, want (2,-3,0.5)", v, c, g)
			}
		}
	}
}

func TestLimiterBounds(t *testing.T) {
	m := testMesh(t, 6, 5, 4)
	sys := NewIncompressible()
	d := newDisc(t, m, sys, Options{Order: 2, Limit: true})
	q := smoothState(d)
	d.computeGradients(q)
	d.computeLimiters(q)
	for i, a := range d.alpha {
		if a < 0 || a > 1 {
			t.Fatalf("alpha[%d] = %g outside [0,1]", i, a)
		}
	}
}

func TestSecondOrderResidualDiffersFromFirst(t *testing.T) {
	m := testMesh(t, 6, 5, 4)
	sys := NewIncompressible()
	d1 := newDisc(t, m, sys, Options{Order: 1})
	d2 := newDisc(t, m, sys, Options{Order: 2})
	q := smoothState(d1)
	r1 := make([]float64, d1.N())
	r2 := make([]float64, d2.N())
	d1.Residual(q, r1)
	d2.Residual(q, r2)
	var diff float64
	for i := range r1 {
		diff += math.Abs(r1[i] - r2[i])
	}
	if diff < 1e-8 {
		t.Error("second-order residual identical to first-order on smooth nonlinear state")
	}
}

func TestResidualIndependentOfEdgeOrdering(t *testing.T) {
	m := testMesh(t, 6, 5, 4)
	for _, sys := range systems() {
		ds := newDisc(t, m, sys, Options{Order: 1, EdgeOrdering: "sorted"})
		dc := newDisc(t, m, sys, Options{Order: 1, EdgeOrdering: "colored"})
		q := smoothState(ds)
		rs := make([]float64, ds.N())
		rc := make([]float64, dc.N())
		ds.Residual(q, rs)
		dc.Residual(q, rc)
		for i := range rs {
			if math.Abs(rs[i]-rc[i]) > 1e-11 {
				t.Fatalf("%s: residual differs at %d under edge reordering: %g vs %g",
					sys.Name(), i, rs[i], rc[i])
			}
		}
	}
}

func TestResidualLayoutEquivalence(t *testing.T) {
	m := testMesh(t, 6, 5, 4)
	sys := NewCompressible()
	di := newDisc(t, m, sys, Options{Order: 1, Layout: sparse.Interlaced})
	dn := newDisc(t, m, sys, Options{Order: 1, Layout: sparse.NonInterlaced})
	qi := smoothState(di)
	qn := sparse.ConvertLayout(qi, m.NumVertices(), sys.B(), sparse.Interlaced, sparse.NonInterlaced)
	ri := make([]float64, di.N())
	rn := make([]float64, dn.N())
	di.Residual(qi, ri)
	dn.Residual(qn, rn)
	riConv := sparse.ConvertLayout(ri, m.NumVertices(), sys.B(), sparse.Interlaced, sparse.NonInterlaced)
	for i := range rn {
		if math.Abs(rn[i]-riConv[i]) > 1e-11 {
			t.Fatalf("layouts disagree at %d: %g vs %g", i, rn[i], riConv[i])
		}
	}
}

func TestTimeScalesPositive(t *testing.T) {
	m := testMesh(t, 6, 5, 4)
	for _, sys := range systems() {
		d := newDisc(t, m, sys, Options{Order: 1})
		q := d.FreestreamVector()
		ts := d.TimeScales(q)
		for v, s := range ts {
			if s <= 0 {
				t.Fatalf("%s: vertex %d time scale %g", sys.Name(), v, s)
			}
		}
	}
}

func TestNewDiscretizationRejectsBadOptions(t *testing.T) {
	m := testMesh(t, 4, 3, 3)
	if _, err := NewDiscretization(m, nil, NewIncompressible(), Options{Order: 3}); err == nil {
		t.Error("order 3 accepted")
	}
	if _, err := NewDiscretization(m, nil, NewIncompressible(), Options{Order: 1, EdgeOrdering: "zigzag"}); err == nil {
		t.Error("unknown edge ordering accepted")
	}
}

func TestAssembleJacobianRejectsMismatch(t *testing.T) {
	m := testMesh(t, 4, 3, 3)
	d := newDisc(t, m, NewIncompressible(), Options{Order: 1})
	q := d.FreestreamVector()
	bad := sparse.NewBCSRPattern(3, 4, [][]int32{{0}, {1}, {2}})
	if err := d.AssembleJacobian(q, bad); err == nil {
		t.Error("mismatched matrix accepted")
	}
	dn := newDisc(t, m, NewIncompressible(), Options{Order: 1, Layout: sparse.NonInterlaced})
	if err := dn.AssembleJacobian(q, dn.JacobianPattern()); err == nil {
		t.Error("noninterlaced assembly accepted")
	}
}

func BenchmarkResidualOrder1Sorted(b *testing.B) {
	m := testMesh(b, 16, 13, 10)
	d := newDisc(b, m, NewIncompressible(), Options{Order: 1, EdgeOrdering: "sorted"})
	q := d.FreestreamVector()
	r := make([]float64, d.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Residual(q, r)
	}
}

func BenchmarkResidualOrder1Colored(b *testing.B) {
	m := testMesh(b, 16, 13, 10)
	d := newDisc(b, m, NewIncompressible(), Options{Order: 1, EdgeOrdering: "colored"})
	q := d.FreestreamVector()
	r := make([]float64, d.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Residual(q, r)
	}
}

func TestNumFluxConservationProperty(t *testing.T) {
	// Conservation across a face: H(qL, qR, S) == -H(qR, qL, -S), so the
	// two adjacent control volumes exchange exactly opposite fluxes.
	for _, sys := range systems() {
		b := sys.B()
		f := func(seed uint8, sx, sy, sz int8) bool {
			n := mesh.Vec3{X: float64(sx) / 16, Y: float64(sy) / 16, Z: float64(sz) / 16}
			if n.X == 0 && n.Y == 0 && n.Z == 0 {
				n.X = 0.5
			}
			qL := perturbedState(sys, float64(seed))
			qR := perturbedState(sys, float64(seed)+2.5)
			h1 := make([]float64, b)
			h2 := make([]float64, b)
			scratch := make([]float64, b)
			NumFlux(sys, qL, qR, n, h1, scratch)
			NumFlux(sys, qR, qL, mesh.Vec3{X: -n.X, Y: -n.Y, Z: -n.Z}, h2, scratch)
			for c := 0; c < b; c++ {
				if math.Abs(h1[c]+h2[c]) > 1e-12*(1+math.Abs(h1[c])) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", sys.Name(), err)
		}
	}
}
