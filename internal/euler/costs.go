package euler

// First-order flop and memory-traffic estimates of the discretization's
// kernels. They live here, next to the kernels they describe, so the
// virtual-machine cost model (internal/core) and the measured wall-clock
// profiler (internal/prof) account the same work with the same
// constants. The counts need only be right to first order: the model's
// scaling shapes come from how they distribute over ranks, and the
// profiler's roofline ratios from their order of magnitude.

// EdgeFluxFlops estimates floating-point operations per edge of one flux
// evaluation: two physical flux evaluations, two spectral radii, and the
// dissipation/accumulation arithmetic, all O(b).
func EdgeFluxFlops(b int) int64 { return int64(24*b + 50) }

// FluxTrafficBytes estimates the memory traffic of one flux evaluation
// over a subdomain with nvLocal vertices and edgesLocal edges: with the
// cache-friendly (interlaced, edge-sorted) layouts the paper's code
// uses, vertex state/residual/coordinate data is read from cache after
// its first touch, so traffic is one sweep over the vertex arrays plus
// the streaming read of the edge normals. This keeps the flux phase
// instruction-bound rather than memory-bound — the paper's explicit
// observation, and the premise of its hybrid-threading study.
func FluxTrafficBytes(nvLocal, b int, edgesLocal int64) int64 {
	return int64(nvLocal)*int64(8*(2*b+3)) + edgesLocal*24
}

// EdgeSubsetFlops estimates the floating-point work of a ResidualEdges
// pass over nEdges edges: the same per-edge flux arithmetic as the full
// sweep.
func EdgeSubsetFlops(nEdges, b int) int64 {
	return int64(nEdges) * EdgeFluxFlops(b)
}

// EdgeSubsetBytes estimates the memory traffic of a ResidualEdges pass:
// two state gathers, two residual read-modify-writes, and the streamed
// edge normal per edge. Subset sweeps visit vertices in partition
// order, so no whole-array reuse is assumed (unlike FluxTrafficBytes).
func EdgeSubsetBytes(nEdges, b int) int64 {
	return int64(nEdges) * int64(8*(2*b+2*2*b)+24)
}

// PrivateGatherFlops is the floating-point work of summing the extra
// redundant private residual arrays of a threaded sweep into the shared
// residual: one add per entry per extra worker.
func PrivateGatherFlops(extra, n int64) int64 { return extra * n }

// PrivateGatherBytes is the memory traffic of the same gather: per
// entry, a read-modify-write of the shared residual (8 bytes in, 8
// bytes out) plus a streaming read of the private copy (8 bytes) — 24
// bytes per entry per extra worker.
func PrivateGatherBytes(extra, n int64) int64 { return 24 * extra * n }

// JacobianAssemblyFlops estimates per-edge work of the analytical
// first-order Jacobian: two b×b physical Jacobians plus block
// accumulation.
func JacobianAssemblyFlops(b int) int64 { return int64(12 * b * b) }

// JacobianAssemblyBytes estimates per-edge traffic of assembly: four
// b×b block read-modify-writes.
func JacobianAssemblyBytes(b int) int64 { return int64(4 * 2 * 8 * b * b) }

// SweepFlops is the flop count of one residual evaluation on this
// discretization.
func (d *Discretization) SweepFlops() int64 {
	return int64(len(d.edges)) * EdgeFluxFlops(d.Sys.B())
}

// SweepBytes is the memory traffic of one residual evaluation on this
// discretization.
func (d *Discretization) SweepBytes() int64 {
	return FluxTrafficBytes(d.M.NumVertices(), d.Sys.B(), int64(len(d.edges)))
}

// gradientFlops estimates the least-squares gradient (+limiter) pass:
// each edge is visited from both endpoints with O(b) arithmetic, plus
// the per-vertex 3×3 back-substitutions.
func (d *Discretization) gradientFlops() int64 {
	b := int64(d.Sys.B())
	e := int64(len(d.edges))
	nv := int64(d.M.NumVertices())
	return 2*e*8*b + nv*18*b
}

// gradientBytes estimates the gradient pass traffic: one sweep over the
// state, one write of the gradients (3 per component), the LSQ inverses,
// and the streamed coordinates.
func (d *Discretization) gradientBytes() int64 {
	b := int64(d.Sys.B())
	nv := int64(d.M.NumVertices())
	return nv * (8*b + 24*b + 72 + 24)
}

// jacobianFlops is the flop count of one Jacobian assembly.
func (d *Discretization) jacobianFlops() int64 {
	return int64(len(d.edges)) * JacobianAssemblyFlops(d.Sys.B())
}

// jacobianBytes is the memory traffic of one Jacobian assembly.
func (d *Discretization) jacobianBytes() int64 {
	return int64(len(d.edges)) * JacobianAssemblyBytes(d.Sys.B())
}
