package euler

import (
	"math"
	"testing"

	"petscfun3d/internal/sparse"
)

func TestDiffusionZeroForConstantField(t *testing.T) {
	// The Laplacian of a constant field is zero everywhere (the viscous
	// term must not disturb uniform flow).
	m := testMesh(t, 7, 6, 5)
	sys := NewIncompressible()
	dv := newDisc(t, m, sys, Options{Order: 1, Viscosity: 0.1})
	d0 := newDisc(t, m, sys, Options{Order: 1})
	q := dv.FreestreamVector()
	rv := make([]float64, dv.N())
	r0 := make([]float64, d0.N())
	dv.Residual(q, rv)
	d0.Residual(q, r0)
	for i := range rv {
		if math.Abs(rv[i]-r0[i]) > 1e-12 {
			t.Fatalf("viscous term nonzero on constant field at %d: %g", i, rv[i]-r0[i])
		}
	}
}

func TestDiffusionZeroForLinearFieldInterior(t *testing.T) {
	// The P1 Laplacian annihilates linear fields at interior vertices
	// (exactness of linear finite elements).
	m := testMesh(t, 7, 6, 5)
	sys := NewIncompressible()
	b := sys.B()
	dv := newDisc(t, m, sys, Options{Order: 1, Viscosity: 1.0})
	d0 := newDisc(t, m, sys, Options{Order: 1})
	q := make([]float64, dv.N())
	for v := 0; v < m.NumVertices(); v++ {
		x := m.Coords[v]
		for c := 0; c < b; c++ {
			q[v*b+c] = 0.3 + 1.7*x.X - 0.4*x.Y + 0.9*x.Z
		}
	}
	rv := make([]float64, dv.N())
	r0 := make([]float64, d0.N())
	dv.Residual(q, rv)
	d0.Residual(q, r0)
	for v := 0; v < m.NumVertices(); v++ {
		if m.Boundary[v] {
			continue
		}
		for c := 1; c <= 3; c++ {
			if diff := math.Abs(rv[v*b+c] - r0[v*b+c]); diff > 1e-9 {
				t.Fatalf("interior vertex %d comp %d: viscous term %g on linear field", v, c, diff)
			}
		}
	}
}

func TestDiffusionIsDissipative(t *testing.T) {
	// With the solver convention V dq/dτ = −R(q), kinetic energy decays
	// when u·R_visc(u) >= 0 (R_visc = K u with K positive semidefinite).
	m := testMesh(t, 6, 5, 4)
	sys := NewIncompressible()
	b := sys.B()
	dv := newDisc(t, m, sys, Options{Order: 1, Viscosity: 0.5})
	d0 := newDisc(t, m, sys, Options{Order: 1})
	q := smoothState(dv)
	rv := make([]float64, dv.N())
	r0 := make([]float64, d0.N())
	dv.Residual(q, rv)
	d0.Residual(q, r0)
	var dot float64
	for v := 0; v < m.NumVertices(); v++ {
		for c := 1; c <= 3; c++ {
			i := v*b + c
			dot += q[i] * (rv[i] - r0[i])
		}
	}
	if dot < -1e-10 {
		t.Errorf("viscous dynamics not dissipative: u·R_visc = %g < 0", dot)
	}
	if dot == 0 {
		t.Error("viscous operator had no effect on a smooth state")
	}
}

func TestViscousJacobianMatchesFiniteDifference(t *testing.T) {
	// The viscous term is linear, so the Jacobian with viscosity must
	// remain FD-consistent (interior rows, uniform state — same setup as
	// the inviscid Jacobian test).
	m := testMesh(t, 5, 4, 4)
	sys := NewIncompressible()
	d := newDisc(t, m, sys, Options{Order: 1, Viscosity: 0.2})
	q := d.FreestreamVector()
	for i := range q {
		q[i] = q[i]*0.95 + 0.02
	}
	a := d.JacobianPattern()
	if err := d.AssembleJacobian(q, a); err != nil {
		t.Fatal(err)
	}
	n := d.N()
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Cos(float64(i) * 0.41)
	}
	aw := make([]float64, n)
	a.MulVec(w, aw)
	r0 := make([]float64, n)
	r1 := make([]float64, n)
	d.Residual(q, r0)
	h := 1e-7
	qp := append([]float64(nil), q...)
	for i := range qp {
		qp[i] += h * w[i]
	}
	d.Residual(qp, r1)
	b := sys.B()
	worstInterior := 0.0
	for i := 0; i < n; i++ {
		if m.Boundary[i/b] {
			continue
		}
		fd := (r1[i] - r0[i]) / h
		if diff := math.Abs(fd - aw[i]); diff > worstInterior {
			worstInterior = diff
		}
	}
	if worstInterior > 1e-4 {
		t.Errorf("viscous Jacobian vs FD worst interior diff %g", worstInterior)
	}
}

func TestViscositySmoothsSolution(t *testing.T) {
	// A viscous steady state has smaller velocity extremes than the
	// inviscid one (diffusion damps gradients). Indirect but cheap:
	// compare residuals of the inviscid steady state under viscosity.
	m := testMesh(t, 6, 5, 4)
	sys := NewIncompressible()
	dv := newDisc(t, m, sys, Options{Order: 1, Viscosity: 0.05})
	q := smoothState(dv)
	rv := make([]float64, dv.N())
	dv.Residual(q, rv)
	if sparse.Norm2(rv) == 0 {
		t.Error("viscous residual identically zero on nonuniform state")
	}
}

func TestNegativeViscosityRejected(t *testing.T) {
	m := testMesh(t, 4, 3, 3)
	if _, err := NewDiscretization(m, nil, NewIncompressible(), Options{Order: 1, Viscosity: -1}); err == nil {
		t.Error("negative viscosity accepted")
	}
}
