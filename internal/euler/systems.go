package euler

import (
	"math"

	"petscfun3d/internal/mesh"
)

// System abstracts the two flow models over which the discretization,
// Jacobian assembly, and solver layers are generic.
type System interface {
	// Name identifies the system ("incompressible"/"compressible").
	Name() string
	// B returns the number of unknowns per mesh point (4 or 5).
	B() int
	// PhysFlux evaluates the physical flux through directed area S,
	// F(q)·S, into out (length B).
	PhysFlux(q []float64, s mesh.Vec3, out []float64)
	// PhysJacobian evaluates d(F(q)·S)/dq into j (row-major B×B).
	PhysJacobian(q []float64, s mesh.Vec3, j []float64)
	// SpectralRadius returns the largest characteristic speed through S
	// (scaled by |S|), used for upwind dissipation and timestep limits.
	SpectralRadius(q []float64, s mesh.Vec3) float64
	// Freestream returns the farfield reference state.
	Freestream() []float64
}

// Incompressible is the incompressible Euler system in Chorin's
// artificial-compressibility form: unknowns (p, u, v, w), with the
// continuity equation ∂p/∂τ + β ∇·u = 0. Four unknowns per vertex —
// 90,708 DOFs on the paper's 22,677-vertex mesh.
type Incompressible struct {
	// Beta is the artificial compressibility parameter (O(1)–O(10)).
	Beta float64
	// U0 is the inflow/freestream velocity magnitude along +x.
	U0 float64
}

// NewIncompressible returns the system with customary parameters.
func NewIncompressible() *Incompressible { return &Incompressible{Beta: 4, U0: 1} }

// Name implements System.
func (s *Incompressible) Name() string { return "incompressible" }

// B implements System.
func (s *Incompressible) B() int { return 4 }

// Freestream implements System.
func (s *Incompressible) Freestream() []float64 { return []float64{0, s.U0, 0, 0} }

// PhysFlux implements System.
func (s *Incompressible) PhysFlux(q []float64, n mesh.Vec3, out []float64) {
	p, u, v, w := q[0], q[1], q[2], q[3]
	theta := u*n.X + v*n.Y + w*n.Z
	out[0] = s.Beta * theta
	out[1] = u*theta + p*n.X
	out[2] = v*theta + p*n.Y
	out[3] = w*theta + p*n.Z
}

// PhysJacobian implements System.
func (s *Incompressible) PhysJacobian(q []float64, n mesh.Vec3, j []float64) {
	u, v, w := q[1], q[2], q[3]
	theta := u*n.X + v*n.Y + w*n.Z
	// Row 0: continuity.
	j[0], j[1], j[2], j[3] = 0, s.Beta*n.X, s.Beta*n.Y, s.Beta*n.Z
	// Row 1: x-momentum.
	j[4], j[5], j[6], j[7] = n.X, theta+u*n.X, u*n.Y, u*n.Z
	// Row 2: y-momentum.
	j[8], j[9], j[10], j[11] = n.Y, v*n.X, theta+v*n.Y, v*n.Z
	// Row 3: z-momentum.
	j[12], j[13], j[14], j[15] = n.Z, w*n.X, w*n.Y, theta+w*n.Z
}

// SpectralRadius implements System: |θ| + sqrt(θ² + β|S|²), the largest
// eigenvalue of the artificial-compressibility flux Jacobian.
func (s *Incompressible) SpectralRadius(q []float64, n mesh.Vec3) float64 {
	theta := q[1]*n.X + q[2]*n.Y + q[3]*n.Z
	s2 := n.X*n.X + n.Y*n.Y + n.Z*n.Z
	return math.Abs(theta) + math.Sqrt(theta*theta+s.Beta*s2)
}

// Compressible is the compressible Euler system with conservative
// unknowns (ρ, ρu, ρv, ρw, E). Five unknowns per vertex — 113,385 DOFs
// on the paper's 22,677-vertex mesh.
type Compressible struct {
	// Gamma is the ratio of specific heats.
	Gamma float64
	// Mach is the freestream Mach number (flow along +x).
	Mach float64
}

// NewCompressible returns the system with air's γ and a transonic-free
// Mach 0.5 freestream (the paper's incompressible-regime Euler study
// avoids shocks; a smooth subsonic flow matches that setting).
func NewCompressible() *Compressible { return &Compressible{Gamma: 1.4, Mach: 0.5} }

// Name implements System.
func (s *Compressible) Name() string { return "compressible" }

// B implements System.
func (s *Compressible) B() int { return 5 }

// Freestream implements System: ρ=1, p chosen so the sound speed is 1,
// velocity Mach along +x.
func (s *Compressible) Freestream() []float64 {
	rho := 1.0
	p := 1.0 / s.Gamma // c = sqrt(γp/ρ) = 1
	u := s.Mach
	e := p/(s.Gamma-1) + 0.5*rho*u*u
	return []float64{rho, rho * u, 0, 0, e}
}

// Pressure returns the thermodynamic pressure of state q.
func (s *Compressible) Pressure(q []float64) float64 {
	rho := q[0]
	ke := 0.5 * (q[1]*q[1] + q[2]*q[2] + q[3]*q[3]) / rho
	return (s.Gamma - 1) * (q[4] - ke)
}

// PhysFlux implements System.
func (s *Compressible) PhysFlux(q []float64, n mesh.Vec3, out []float64) {
	rho := q[0]
	u, v, w := q[1]/rho, q[2]/rho, q[3]/rho
	p := s.Pressure(q)
	vn := u*n.X + v*n.Y + w*n.Z
	out[0] = rho * vn
	out[1] = q[1]*vn + p*n.X
	out[2] = q[2]*vn + p*n.Y
	out[3] = q[3]*vn + p*n.Z
	out[4] = (q[4] + p) * vn
}

// PhysJacobian implements System (the standard analytical Euler flux
// Jacobian for an unnormalized direction vector).
func (s *Compressible) PhysJacobian(q []float64, n mesh.Vec3, j []float64) {
	g1 := s.Gamma - 1
	rho := q[0]
	u, v, w := q[1]/rho, q[2]/rho, q[3]/rho
	vn := u*n.X + v*n.Y + w*n.Z
	phi := 0.5 * g1 * (u*u + v*v + w*w)
	p := s.Pressure(q)
	h := (q[4] + p) / rho // total enthalpy
	// Row 0.
	j[0], j[1], j[2], j[3], j[4] = 0, n.X, n.Y, n.Z, 0
	// Row 1.
	j[5] = phi*n.X - u*vn
	j[6] = vn + (2-s.Gamma)*u*n.X
	j[7] = u*n.Y - g1*v*n.X
	j[8] = u*n.Z - g1*w*n.X
	j[9] = g1 * n.X
	// Row 2.
	j[10] = phi*n.Y - v*vn
	j[11] = v*n.X - g1*u*n.Y
	j[12] = vn + (2-s.Gamma)*v*n.Y
	j[13] = v*n.Z - g1*w*n.Y
	j[14] = g1 * n.Y
	// Row 3.
	j[15] = phi*n.Z - w*vn
	j[16] = w*n.X - g1*u*n.Z
	j[17] = w*n.Y - g1*v*n.Z
	j[18] = vn + (2-s.Gamma)*w*n.Z
	j[19] = g1 * n.Z
	// Row 4.
	j[20] = (phi - h) * vn
	j[21] = h*n.X - g1*u*vn
	j[22] = h*n.Y - g1*v*vn
	j[23] = h*n.Z - g1*w*vn
	j[24] = s.Gamma * vn
}

// SpectralRadius implements System: |u·S| + c|S|.
func (s *Compressible) SpectralRadius(q []float64, n mesh.Vec3) float64 {
	rho := q[0]
	vn := (q[1]*n.X + q[2]*n.Y + q[3]*n.Z) / rho
	p := s.Pressure(q)
	if p < 1e-12 {
		p = 1e-12
	}
	c := math.Sqrt(s.Gamma * p / rho)
	return math.Abs(vn) + c*norm3(n)
}

// NumFlux evaluates the local Lax-Friedrichs (Rusanov) numerical flux
// between states qL and qR through directed area S into out:
// H = ½(F(qL)+F(qR))·S − ½ λ (qR − qL), with λ the larger spectral
// radius. First-order upwinding; the second-order scheme reconstructs
// qL/qR before calling it.
func NumFlux(sys System, qL, qR []float64, n mesh.Vec3, out, scratch []float64) {
	b := sys.B()
	sys.PhysFlux(qL, n, out)
	sys.PhysFlux(qR, n, scratch)
	lam := sys.SpectralRadius(qL, n)
	if r := sys.SpectralRadius(qR, n); r > lam {
		lam = r
	}
	for c := 0; c < b; c++ {
		out[c] = 0.5*(out[c]+scratch[c]) - 0.5*lam*(qR[c]-qL[c])
	}
}
