package euler

import "petscfun3d/internal/mesh"

// Distributed-residual entry points: the edge loop split by vertex
// ownership so a partitioned caller (internal/dist) can overlap the
// ghost-state exchange with the interior edges. These helpers carry no
// profiler spans of their own — each rank runs on its own goroutine
// with its own profiler, and the process-wide prof.Default assumes
// single-goroutine nesting — so the caller brackets them.

// SplitEdges partitions the flux edges by the ownership predicate:
// interior edges have both endpoints owned (computable before any ghost
// state arrives), frontier edges have exactly one owned endpoint (they
// read the neighbor's ghost state and contribute to the owned
// endpoint's residual). Edges with no owned endpoint are dropped — they
// contribute nothing to this rank's residual rows. Plan-time only.
func (d *Discretization) SplitEdges(owned func(int32) bool) (interior, frontier []int32) {
	for ei := range d.edges {
		e := &d.edges[ei]
		oa, ob := owned(e.a), owned(e.b)
		switch {
		case oa && ob:
			interior = append(interior, int32(ei)) //lint:alloc-ok one-time plan construction at partition setup
		case oa || ob:
			frontier = append(frontier, int32(ei)) //lint:alloc-ok one-time plan construction at partition setup
		}
	}
	return interior, frontier
}

// EdgeEndpoints returns the endpoints of flux edge ei (in the
// discretization's iteration order), so a partitioned caller can plan
// its ghost set without duplicating the edge list.
func (d *Discretization) EdgeEndpoints(ei int32) (a, b int32) {
	e := &d.edges[ei]
	return e.a, e.b
}

// ResidualEdges accumulates the first-order convective flux of the
// listed edges into r without zeroing it first, so a caller can sweep
// disjoint edge subsets in separate passes (interior while the halo is
// in flight, frontier after). Reconstruction, limiting, and diffusion
// are not applied — the distributed residual path is first-order, as
// the preconditioner side of the paper's solver is.
func (d *Discretization) ResidualEdges(q, r []float64, edges []int32) {
	b := d.Sys.B()
	var qa, qb, flux, scratch [5]float64
	for _, ei := range edges {
		e := &d.edges[ei]
		d.gather(q, e.a, qa[:b])
		d.gather(q, e.b, qb[:b])
		NumFlux(d.Sys, qa[:b], qb[:b], e.n, flux[:b], scratch[:b])
		d.scatterAdd(r, e.a, flux[:b], +1)
		d.scatterAdd(r, e.b, flux[:b], -1)
	}
}

// BoundaryResidualMasked adds the boundary closure fluxes (weak
// farfield and slip wall) for owned vertices only. owned must have
// length NumVertices.
func (d *Discretization) BoundaryResidualMasked(q, r []float64, owned []bool) {
	b := d.Sys.B()
	inf := d.Sys.Freestream()
	var qi, flux, scratch [5]float64
	for v := int32(0); v < int32(d.M.NumVertices()); v++ {
		if !owned[v] {
			continue
		}
		kind := d.M.BKind[v]
		if kind == mesh.BNone {
			continue
		}
		s := d.Geo.BoundaryArea[v]
		d.gather(q, v, qi[:b])
		switch kind {
		case mesh.BInflow, mesh.BOutflow:
			NumFlux(d.Sys, qi[:b], inf, s, flux[:b], scratch[:b])
		case mesh.BWall:
			d.wallFlux(qi[:b], s, flux[:b])
		}
		d.scatterAdd(r, v, flux[:b], +1)
	}
}
