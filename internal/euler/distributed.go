package euler

import "petscfun3d/internal/mesh"

// Distributed-residual entry points: the edge loop split by vertex
// ownership so a partitioned caller (internal/dist) can overlap the
// ghost-state exchange with the interior edges. These helpers carry no
// profiler spans of their own — each rank runs on its own goroutine
// with its own profiler, and the process-wide prof.Default assumes
// single-goroutine nesting — so the caller brackets them.

// SplitEdges partitions the flux edges by the ownership predicate:
// interior edges have both endpoints owned (computable before any ghost
// state arrives), frontier edges have exactly one owned endpoint (they
// read the neighbor's ghost state and contribute to the owned
// endpoint's residual). Edges with no owned endpoint are dropped — they
// contribute nothing to this rank's residual rows. Plan-time only.
func (d *Discretization) SplitEdges(owned func(int32) bool) (interior, frontier []int32) {
	for ei := range d.edges {
		e := &d.edges[ei]
		oa, ob := owned(e.a), owned(e.b)
		switch {
		case oa && ob:
			interior = append(interior, int32(ei)) //lint:alloc-ok one-time plan construction at partition setup
		case oa || ob:
			frontier = append(frontier, int32(ei)) //lint:alloc-ok one-time plan construction at partition setup
		}
	}
	return interior, frontier
}

// EdgeEndpoints returns the endpoints of flux edge ei (in the
// discretization's iteration order), so a partitioned caller can plan
// its ghost set without duplicating the edge list.
func (d *Discretization) EdgeEndpoints(ei int32) (a, b int32) {
	e := &d.edges[ei]
	return e.a, e.b
}

// ResidualEdges accumulates the first-order convective flux of the
// listed edges into r without zeroing it first, so a caller can sweep
// disjoint edge subsets in separate passes (interior while the halo is
// in flight, frontier after). Reconstruction, limiting, and diffusion
// are not applied — the distributed residual path is first-order, as
// the preconditioner side of the paper's solver is.
func (d *Discretization) ResidualEdges(q, r []float64, edges []int32) {
	b := d.Sys.B()
	ws := d.getWS()
	qa, qb, flux, scratch := ws.qa[:b], ws.qb[:b], ws.flux[:b], ws.scratch[:b]
	for _, ei := range edges {
		e := &d.edges[ei]    //lint:bce-ok the edge subset holds data-dependent indices into the full edge table
		d.gather(q, e.a, qa) //lint:bce-ok the gathered row offset is data-dependent through the edge endpoint
		d.gather(q, e.b, qb) //lint:bce-ok the gathered row offset is data-dependent through the edge endpoint
		NumFlux(d.Sys, qa, qb, e.n, flux, scratch)
		d.scatterAdd(r, e.a, flux, +1)
		d.scatterAdd(r, e.b, flux, -1)
	}
	d.putWS(ws)
}

// BoundaryResidualMasked adds the boundary closure fluxes (weak
// farfield and slip wall) for owned vertices only. owned must have
// length NumVertices.
func (d *Discretization) BoundaryResidualMasked(q, r []float64, owned []bool) {
	b := d.Sys.B()
	inf := d.Sys.Freestream()
	ws := d.getWS()
	qi, flux, scratch := ws.qa[:b], ws.flux[:b], ws.scratch[:b]
	bk := d.M.BKind
	ow := owned[:len(bk)]              // bce: ties len(ow) to len(bk); the vertex index serves both unchecked
	ba := d.Geo.BoundaryArea[:len(bk)] // bce: ties len(ba) to len(bk) the same way
	for v, kind := range bk {
		if !ow[v] {
			continue
		}
		if kind == mesh.BNone {
			continue
		}
		s := ba[v]
		d.gather(q, int32(v), qi) //lint:bce-ok the gathered row offset is v*b, a product prove cannot relate to len(q)
		switch kind {
		case mesh.BInflow, mesh.BOutflow:
			NumFlux(d.Sys, qi, inf, s, flux, scratch)
		case mesh.BWall:
			d.wallFlux(qi, s, flux)
		}
		d.scatterAdd(r, int32(v), flux, +1)
	}
	d.putWS(ws)
}
