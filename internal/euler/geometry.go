// Package euler implements the edge-based finite-volume discretization of
// the three-dimensional Euler equations on unstructured tetrahedral
// meshes, in incompressible (artificial compressibility, four unknowns
// per vertex) and compressible (five unknowns) form — the two flow models
// of the FUN3D application reimplemented by the paper. It provides
// first-order and limited second-order convective fluxes, boundary
// conditions, and the analytical first-order flux Jacobian used to build
// the preconditioner matrix.
package euler

import (
	"fmt"
	"math"

	"petscfun3d/internal/mesh"
)

// Geometry holds the node-centered finite-volume metrics of a mesh: the
// median-dual directed face area of every edge and the dual control
// volume of every vertex.
type Geometry struct {
	// Normals[e] is the directed area vector of edge e's dual face,
	// oriented from Edges[e].A toward Edges[e].B.
	Normals []mesh.Vec3
	// Volumes[v] is the dual (control) volume of vertex v.
	Volumes []float64
	// BoundaryArea[v] is the outward directed area closing vertex v's
	// control volume on the domain boundary (zero for interior vertices).
	// It follows from the closure identity: the outward areas of a closed
	// control volume sum to zero.
	BoundaryArea []mesh.Vec3
	// TotalVolume is the sum of the dual volumes (= mesh volume).
	TotalVolume float64
}

// BuildGeometry computes median-dual metrics for m. For every
// tetrahedron and each of its six edges, the dual face piece is the pair
// of triangles spanned by the edge midpoint, the centroids of the two
// tet faces containing the edge, and the tet centroid; its area vector
// is accumulated onto the edge with orientation A→B. Dual volumes take a
// quarter of each tet's volume per vertex.
func BuildGeometry(m *mesh.Mesh) (*Geometry, error) {
	g := &Geometry{
		Normals: make([]mesh.Vec3, m.NumEdges()),
		Volumes: make([]float64, m.NumVertices()),
	}
	edgeIndex := make(map[mesh.Edge]int32, m.NumEdges())
	for i, e := range m.Edges {
		edgeIndex[e] = int32(i)
	}
	for ti, t := range m.Tets {
		p := [4]mesh.Vec3{m.Coords[t[0]], m.Coords[t[1]], m.Coords[t[2]], m.Coords[t[3]]}
		vol := tetVolume(p)
		if vol <= 0 {
			// Flip orientation rather than reject: the generator's hex
			// split can produce either handedness.
			vol = -vol
		}
		if vol == 0 {
			return nil, fmt.Errorf("euler: tet %d degenerate (zero volume)", ti)
		}
		for c := 0; c < 4; c++ {
			g.Volumes[t[c]] += vol / 4
		}
		centroid := scale3(add3(add3(p[0], p[1]), add3(p[2], p[3])), 0.25)
		// The two faces containing edge (i, j) are the faces omitting j's
		// and i's opposite vertices; enumerate edges as index pairs.
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				va, vb := t[a], t[b]
				// Other two vertices of the tet.
				var others [2]int
				no := 0
				for c := 0; c < 4; c++ {
					if c != a && c != b {
						others[no] = c
						no++
					}
				}
				mid := scale3(add3(p[a], p[b]), 0.5)
				f1 := scale3(add3(add3(p[a], p[b]), p[others[0]]), 1.0/3.0)
				f2 := scale3(add3(add3(p[a], p[b]), p[others[1]]), 1.0/3.0)
				// Dual face = triangles (mid, f1, centroid), (mid, centroid, f2).
				s := add3(triArea(mid, f1, centroid), triArea(mid, centroid, f2))
				// Orient from the lower-numbered endpoint to the higher.
				lo, hi := va, vb
				if lo > hi {
					lo, hi = hi, lo
				}
				dir := sub3(m.Coords[hi], m.Coords[lo])
				if dot3(s, dir) < 0 {
					s = scale3(s, -1)
				}
				ei, ok := edgeIndex[mesh.Edge{A: lo, B: hi}]
				if !ok {
					return nil, fmt.Errorf("euler: tet %d edge (%d,%d) missing from edge list", ti, lo, hi)
				}
				g.Normals[ei] = add3(g.Normals[ei], s)
			}
		}
	}
	for _, v := range g.Volumes {
		g.TotalVolume += v
	}
	// Boundary closure: BoundaryArea_v = -(sum of outward edge-face
	// areas). Interior vertices close to (numerically) zero.
	g.BoundaryArea = make([]mesh.Vec3, m.NumVertices())
	for ei, e := range m.Edges {
		s := g.Normals[ei]
		g.BoundaryArea[e.A] = sub3(g.BoundaryArea[e.A], s)
		g.BoundaryArea[e.B] = add3(g.BoundaryArea[e.B], s)
	}
	return g, nil
}

func tetVolume(p [4]mesh.Vec3) float64 {
	a := sub3(p[1], p[0])
	b := sub3(p[2], p[0])
	c := sub3(p[3], p[0])
	return dot3(a, cross3(b, c)) / 6
}

func triArea(a, b, c mesh.Vec3) mesh.Vec3 {
	return scale3(cross3(sub3(b, a), sub3(c, a)), 0.5)
}

func add3(a, b mesh.Vec3) mesh.Vec3 { return mesh.Vec3{X: a.X + b.X, Y: a.Y + b.Y, Z: a.Z + b.Z} }
func sub3(a, b mesh.Vec3) mesh.Vec3 { return mesh.Vec3{X: a.X - b.X, Y: a.Y - b.Y, Z: a.Z - b.Z} }
func scale3(a mesh.Vec3, s float64) mesh.Vec3 {
	return mesh.Vec3{X: a.X * s, Y: a.Y * s, Z: a.Z * s}
}
func dot3(a, b mesh.Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }
func cross3(a, b mesh.Vec3) mesh.Vec3 {
	return mesh.Vec3{
		X: a.Y*b.Z - a.Z*b.Y,
		Y: a.Z*b.X - a.X*b.Z,
		Z: a.X*b.Y - a.Y*b.X,
	}
}
func norm3(a mesh.Vec3) float64 { return math.Sqrt(dot3(a, a)) }
