package euler

import (
	"fmt"

	"petscfun3d/internal/mesh"
	"petscfun3d/internal/prof"
	"petscfun3d/internal/sparse"
)

// JacobianPattern allocates the BCSR matrix with the sparsity of the
// first-order flux Jacobian (vertex graph plus diagonal).
func (d *Discretization) JacobianPattern() *sparse.BCSR {
	g := sparse.Graph{NV: d.M.NumVertices(), XAdj: d.M.XAdj, Adj: d.M.Adj}
	return sparse.BlockPattern(g, d.Sys.B())
}

// AssembleJacobian fills a (which must have JacobianPattern's sparsity)
// with the analytical Jacobian of the *first-order* residual at state q,
// regardless of the discretization's flux order: as in the paper, the
// preconditioner matrix is always built from the first-order analytical
// Jacobian while the (possibly second-order) operator is applied
// matrix-free.
//
// Requires the interlaced layout (blocks only make sense there).
func (d *Discretization) AssembleJacobian(q []float64, a *sparse.BCSR) error {
	if d.Opts.Layout != sparse.Interlaced {
		return fmt.Errorf("euler: AssembleJacobian requires interlaced layout")
	}
	b := d.Sys.B()
	if a.NB != d.M.NumVertices() || a.B != b {
		return fmt.Errorf("euler: Jacobian matrix is %dx%d blocks of %d, want %d of %d",
			a.NB, a.NB, a.B, d.M.NumVertices(), b)
	}
	sp := prof.Begin(prof.PhaseJacobian)
	defer sp.End(d.jacobianFlops(), d.jacobianBytes())
	for i := range a.Val {
		a.Val[i] = 0
	}
	bb := b * b
	var qa, qb [5]float64
	jl := make([]float64, bb)
	jr := make([]float64, bb)
	addBlock := func(i, j int32, blk []float64, sign float64) error {
		dst, ok := a.BlockAt(int(i), int(j))
		if !ok {
			return fmt.Errorf("euler: Jacobian block (%d,%d) missing from pattern", i, j)
		}
		for k := range blk {
			dst[k] += sign * blk[k]
		}
		return nil
	}
	for _, e := range d.edges {
		d.gather(q, e.a, qa[:b])
		d.gather(q, e.b, qb[:b])
		lam := d.Sys.SpectralRadius(qa[:b], e.n)
		if l2 := d.Sys.SpectralRadius(qb[:b], e.n); l2 > lam {
			lam = l2
		}
		// dH/dqa = ½ A(qa)·S + ½λI ; dH/dqb = ½ A(qb)·S − ½λI
		// (dissipation coefficient frozen, the standard approximation).
		d.Sys.PhysJacobian(qa[:b], e.n, jl)
		d.Sys.PhysJacobian(qb[:b], e.n, jr)
		for k := range jl {
			jl[k] *= 0.5
			jr[k] *= 0.5
		}
		for c := 0; c < b; c++ {
			jl[c*b+c] += 0.5 * lam
			jr[c*b+c] -= 0.5 * lam
		}
		// r_a += H, r_b -= H.
		if err := addBlock(e.a, e.a, jl, +1); err != nil {
			return err
		}
		if err := addBlock(e.a, e.b, jr, +1); err != nil {
			return err
		}
		if err := addBlock(e.b, e.a, jl, -1); err != nil {
			return err
		}
		if err := addBlock(e.b, e.b, jr, -1); err != nil {
			return err
		}
	}
	// Boundary fluxes.
	inf := d.Sys.Freestream()
	for v := int32(0); v < int32(d.M.NumVertices()); v++ {
		kind := d.M.BKind[v]
		if kind == mesh.BNone {
			continue
		}
		s := d.Geo.BoundaryArea[v]
		d.gather(q, v, qa[:b])
		dst, ok := a.BlockAt(int(v), int(v))
		if !ok {
			return fmt.Errorf("euler: missing diagonal block %d", v)
		}
		switch kind {
		case mesh.BInflow, mesh.BOutflow:
			lam := d.Sys.SpectralRadius(qa[:b], s)
			if l2 := d.Sys.SpectralRadius(inf, s); l2 > lam {
				lam = l2
			}
			d.Sys.PhysJacobian(qa[:b], s, jl)
			for k := range jl {
				dst[k] += 0.5 * jl[k]
			}
			for c := 0; c < b; c++ {
				dst[c*b+c] += 0.5 * lam
			}
		case mesh.BWall:
			d.wallJacobian(qa[:b], s, jl)
			for k := range jl {
				dst[k] += jl[k]
			}
		}
	}
	if d.Opts.Viscosity > 0 {
		d.addDiffusionJacobian(a)
	}
	return nil
}

// wallJacobian computes d(wallFlux)/dq into j (row-major b×b).
func (d *Discretization) wallJacobian(q []float64, s mesh.Vec3, j []float64) {
	b := d.Sys.B()
	for k := range j[:b*b] {
		j[k] = 0
	}
	switch sys := d.Sys.(type) {
	case *Incompressible:
		// Momentum rows depend only on p (component 0).
		j[1*b+0] = s.X
		j[2*b+0] = s.Y
		j[3*b+0] = s.Z
	case *Compressible:
		g1 := sys.Gamma - 1
		rho := q[0]
		u, v, w := q[1]/rho, q[2]/rho, q[3]/rho
		phi := 0.5 * g1 * (u*u + v*v + w*w)
		dp := [5]float64{phi, -g1 * u, -g1 * v, -g1 * w, g1}
		for c := 0; c < 5; c++ {
			j[1*b+c] = s.X * dp[c]
			j[2*b+c] = s.Y * dp[c]
			j[3*b+c] = s.Z * dp[c]
		}
	default:
		//lint:panic-ok internal invariant: the system enum is validated when the problem is configured
		panic("euler: wallJacobian: unknown system")
	}
}
