package euler

import (
	"math"
	"testing"
)

func TestResidualParallelMatchesSequential(t *testing.T) {
	m := testMesh(t, 9, 7, 6)
	for _, sys := range systems() {
		d := newDisc(t, m, sys, Options{Order: 1})
		q := smoothState(d)
		rs := make([]float64, d.N())
		d.Residual(q, rs)
		for _, nt := range []int{1, 2, 3, 4, 7} {
			rp := make([]float64, d.N())
			if err := d.ResidualParallel(q, rp, nt); err != nil {
				t.Fatalf("%s nthreads=%d: %v", sys.Name(), nt, err)
			}
			for i := range rs {
				if math.Abs(rs[i]-rp[i]) > 1e-11 {
					t.Fatalf("%s nthreads=%d: residual differs at %d: %g vs %g",
						sys.Name(), nt, i, rs[i], rp[i])
				}
			}
		}
	}
}

func TestResidualParallelValidation(t *testing.T) {
	m := testMesh(t, 5, 4, 4)
	d2 := newDisc(t, m, NewIncompressible(), Options{Order: 2})
	q := d2.FreestreamVector()
	r := make([]float64, d2.N())
	if err := d2.ResidualParallel(q, r, 2); err == nil {
		t.Error("second-order parallel residual accepted")
	}
	d1 := newDisc(t, m, NewIncompressible(), Options{Order: 1})
	if err := d1.ResidualParallel(q, r, 0); err == nil {
		t.Error("0 threads accepted")
	}
}

func BenchmarkResidualThreads1(b *testing.B) { benchThreads(b, 1) }
func BenchmarkResidualThreads2(b *testing.B) { benchThreads(b, 2) }
func BenchmarkResidualThreads4(b *testing.B) { benchThreads(b, 4) }

func benchThreads(b *testing.B, nt int) {
	m := testMesh(b, 20, 16, 12)
	d := newDisc(b, m, NewIncompressible(), Options{Order: 1})
	q := d.FreestreamVector()
	r := make([]float64, d.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ResidualParallel(q, r, nt); err != nil {
			b.Fatal(err)
		}
	}
}
