package euler

import (
	"math"
	"testing"
)

func TestResidualParallelMatchesSequential(t *testing.T) {
	m := testMesh(t, 9, 7, 6)
	for _, sys := range systems() {
		d := newDisc(t, m, sys, Options{Order: 1})
		q := smoothState(d)
		rs := make([]float64, d.N())
		d.Residual(q, rs)
		for _, nt := range []int{1, 2, 3, 4, 7} {
			rp := make([]float64, d.N())
			if err := d.ResidualParallel(q, rp, nt); err != nil {
				t.Fatalf("%s nthreads=%d: %v", sys.Name(), nt, err)
			}
			for i := range rs {
				if math.Abs(rs[i]-rp[i]) > 1e-11 {
					t.Fatalf("%s nthreads=%d: residual differs at %d: %g vs %g",
						sys.Name(), nt, i, rs[i], rp[i])
				}
			}
		}
	}
}

// TestResidualParallelSingleThreadExact: with one thread the parallel
// path sweeps the edges in the sequential order into the caller's
// buffer, so it must match Residual bit for bit (with more threads the
// chunk partial sums reassociate the additions, which only exact-sum
// accumulation could make bitwise identical).
func TestResidualParallelSingleThreadExact(t *testing.T) {
	m := testMesh(t, 9, 7, 6)
	for _, sys := range systems() {
		d := newDisc(t, m, sys, Options{Order: 1})
		q := smoothState(d)
		rs := make([]float64, d.N())
		d.Residual(q, rs)
		rp := make([]float64, d.N())
		if err := d.ResidualParallel(q, rp, 1); err != nil {
			t.Fatal(err)
		}
		for i := range rs {
			if rs[i] != rp[i] {
				t.Fatalf("%s: nthreads=1 differs bitwise at %d: %v vs %v", sys.Name(), i, rs[i], rp[i])
			}
		}
	}
}

// TestResidualParallelDeterministic: repeated calls at a fixed thread
// count reuse the discretization's scratch buffers and must reproduce
// the result bit for bit — the scratch is zeroed, not assumed clean.
func TestResidualParallelDeterministic(t *testing.T) {
	m := testMesh(t, 8, 6, 5)
	d := newDisc(t, m, NewIncompressible(), Options{Order: 1})
	q := smoothState(d)
	first := make([]float64, d.N())
	if err := d.ResidualParallel(q, first, 4); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		// Vary the thread count in between so stale buffers from other
		// shapes are around, then come back to 4.
		tmp := make([]float64, d.N())
		if err := d.ResidualParallel(q, tmp, 2+trial); err != nil {
			t.Fatal(err)
		}
		r := make([]float64, d.N())
		if err := d.ResidualParallel(q, r, 4); err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if r[i] != first[i] {
				t.Fatalf("trial %d: nondeterministic at %d: %v vs %v", trial, i, r[i], first[i])
			}
		}
	}
}

func TestResidualParallelValidation(t *testing.T) {
	m := testMesh(t, 5, 4, 4)
	d2 := newDisc(t, m, NewIncompressible(), Options{Order: 2})
	q := d2.FreestreamVector()
	r := make([]float64, d2.N())
	if err := d2.ResidualParallel(q, r, 2); err == nil {
		t.Error("second-order parallel residual accepted")
	}
	d1 := newDisc(t, m, NewIncompressible(), Options{Order: 1})
	if err := d1.ResidualParallel(q, r, 0); err == nil {
		t.Error("0 threads accepted")
	}
}

func BenchmarkResidualThreads1(b *testing.B) { benchThreads(b, 1) }
func BenchmarkResidualThreads2(b *testing.B) { benchThreads(b, 2) }
func BenchmarkResidualThreads4(b *testing.B) { benchThreads(b, 4) }

func benchThreads(b *testing.B, nt int) {
	m := testMesh(b, 20, 16, 12)
	d := newDisc(b, m, NewIncompressible(), Options{Order: 1})
	q := d.FreestreamVector()
	r := make([]float64, d.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ResidualParallel(q, r, nt); err != nil {
			b.Fatal(err)
		}
	}
}
