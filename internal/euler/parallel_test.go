package euler

import (
	"math"
	"sync"
	"testing"

	"petscfun3d/internal/par"
)

func TestResidualParallelMatchesSequential(t *testing.T) {
	m := testMesh(t, 9, 7, 6)
	for _, sys := range systems() {
		d := newDisc(t, m, sys, Options{Order: 1})
		q := smoothState(d)
		rs := make([]float64, d.N())
		d.Residual(q, rs)
		for _, nt := range []int{1, 2, 3, 4, 7} {
			p := par.New(nt)
			rp := make([]float64, d.N())
			if err := d.ResidualParallel(q, rp, p); err != nil {
				t.Fatalf("%s nthreads=%d: %v", sys.Name(), nt, err)
			}
			p.Close()
			for i := range rs {
				if math.Abs(rs[i]-rp[i]) > 1e-11 {
					t.Fatalf("%s nthreads=%d: residual differs at %d: %g vs %g",
						sys.Name(), nt, i, rs[i], rp[i])
				}
			}
		}
	}
}

// TestResidualParallelSingleThreadExact: with one worker (or a nil
// pool) the parallel path sweeps the edges in the sequential order into
// the caller's buffer, so it must match Residual bit for bit (with more
// workers the stripe partial sums reassociate the additions, which only
// exact-sum accumulation could make bitwise identical).
func TestResidualParallelSingleThreadExact(t *testing.T) {
	m := testMesh(t, 9, 7, 6)
	for _, sys := range systems() {
		d := newDisc(t, m, sys, Options{Order: 1})
		q := smoothState(d)
		rs := make([]float64, d.N())
		d.Residual(q, rs)
		for _, p := range []*par.Pool{nil, par.New(1)} {
			rp := make([]float64, d.N())
			if err := d.ResidualParallel(q, rp, p); err != nil {
				t.Fatal(err)
			}
			p.Close()
			for i := range rs {
				if rs[i] != rp[i] {
					t.Fatalf("%s: one worker differs bitwise at %d: %v vs %v", sys.Name(), i, rs[i], rp[i])
				}
			}
		}
	}
}

// TestResidualParallelDeterministic: repeated calls at a fixed worker
// count reuse the discretization's scratch buffers and must reproduce
// the result bit for bit — the scratch is zeroed, not assumed clean.
func TestResidualParallelDeterministic(t *testing.T) {
	m := testMesh(t, 8, 6, 5)
	d := newDisc(t, m, NewIncompressible(), Options{Order: 1})
	q := smoothState(d)
	p4 := par.New(4)
	defer p4.Close()
	first := make([]float64, d.N())
	if err := d.ResidualParallel(q, first, p4); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		// Vary the worker count in between so stale buffers from other
		// shapes are around, then come back to 4.
		pv := par.New(2 + trial)
		tmp := make([]float64, d.N())
		if err := d.ResidualParallel(q, tmp, pv); err != nil {
			t.Fatal(err)
		}
		pv.Close()
		r := make([]float64, d.N())
		if err := d.ResidualParallel(q, r, p4); err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if r[i] != first[i] {
				t.Fatalf("trial %d: nondeterministic at %d: %v vs %v", trial, i, r[i], first[i])
			}
		}
	}
}

func TestResidualParallelValidation(t *testing.T) {
	m := testMesh(t, 5, 4, 4)
	d2 := newDisc(t, m, NewIncompressible(), Options{Order: 2})
	q := d2.FreestreamVector()
	r := make([]float64, d2.N())
	if err := d2.ResidualParallel(q, r, nil); err == nil {
		t.Error("second-order parallel residual accepted")
	}
}

// TestResidualParallelDistinctDiscretizationsRace: concurrent threaded
// sweeps on distinct Discretizations (each with its own pool) are
// allowed and must not race or corrupt each other — the containment the
// distributed ranks rely on.
func TestResidualParallelDistinctDiscretizationsRace(t *testing.T) {
	m := testMesh(t, 7, 5, 4)
	const goroutines = 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := newDisc(t, m, NewIncompressible(), Options{Order: 1})
			q := smoothState(d)
			want := make([]float64, d.N())
			d.Residual(q, want)
			p := par.New(1 + g%3)
			defer p.Close()
			r := make([]float64, d.N())
			for rep := 0; rep < 5; rep++ {
				if err := d.ResidualParallel(q, r, p); err != nil {
					errs[g] = err
					return
				}
				for i := range r {
					if math.Abs(want[i]-r[i]) > 1e-11 {
						t.Errorf("goroutine %d rep %d: differs at %d", g, rep, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestResidualParallelSteadyStateAllocs: once the private arrays and
// pooled workspaces are warm, repeated threaded sweeps do not allocate.
func TestResidualParallelSteadyStateAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race mode drops sync.Pool items by design")
	}
	m := testMesh(t, 8, 6, 5)
	d := newDisc(t, m, NewIncompressible(), Options{Order: 1})
	q := smoothState(d)
	r := make([]float64, d.N())
	p := par.New(4)
	defer p.Close()
	for i := 0; i < 3; i++ { // warm up private arrays and the workspace pool
		if err := d.ResidualParallel(q, r, p); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(20, func() {
		if err := d.ResidualParallel(q, r, p); err != nil {
			t.Fatal(err)
		}
	}); avg > 0.2 {
		t.Fatalf("ResidualParallel allocates %.2f objects per sweep", avg)
	}
}

func BenchmarkResidualThreads1(b *testing.B) { benchThreads(b, 1) }
func BenchmarkResidualThreads2(b *testing.B) { benchThreads(b, 2) }
func BenchmarkResidualThreads4(b *testing.B) { benchThreads(b, 4) }

func benchThreads(b *testing.B, nt int) {
	m := testMesh(b, 20, 16, 12)
	d := newDisc(b, m, NewIncompressible(), Options{Order: 1})
	q := d.FreestreamVector()
	r := make([]float64, d.N())
	p := par.New(nt)
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ResidualParallel(q, r, p); err != nil {
			b.Fatal(err)
		}
	}
}
