package euler

import (
	"fmt"
	"sync"
)

// ResidualParallel evaluates the residual with nthreads goroutines
// splitting the edge loop — the shared-memory instruction-level
// parallelism the paper studies for the flux phase (Table 5). Because
// two threads may touch the same vertex's residual, each thread
// accumulates into a private copy of the residual vector and the copies
// are summed afterwards — precisely the "redundant work arrays ...
// required by the lack of a vector-reduce in OpenMP (version 1)" whose
// gather cost the paper discusses. Boundary fluxes are applied by the
// calling goroutine.
//
// First-order fluxes only (the paper threads only the flux phase).
func (d *Discretization) ResidualParallel(q, r []float64, nthreads int) error {
	if d.Opts.Order != 1 {
		return fmt.Errorf("euler: ResidualParallel supports first-order fluxes only")
	}
	if nthreads < 1 {
		return fmt.Errorf("euler: nthreads %d < 1", nthreads)
	}
	n := d.N()
	for i := range r[:n] {
		r[i] = 0
	}
	b := d.Sys.B()
	// Private residual arrays (the redundant work arrays).
	priv := make([][]float64, nthreads)
	for t := range priv {
		if t == 0 {
			priv[t] = r[:n]
		} else {
			priv[t] = make([]float64, n)
		}
	}
	var wg sync.WaitGroup
	chunk := (len(d.edges) + nthreads - 1) / nthreads
	for t := 0; t < nthreads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > len(d.edges) {
			hi = len(d.edges)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(t, lo, hi int) {
			defer wg.Done()
			rr := priv[t]
			var qa, qb, flux, scratch [5]float64
			for _, e := range d.edges[lo:hi] {
				d.gather(q, e.a, qa[:b])
				d.gather(q, e.b, qb[:b])
				NumFlux(d.Sys, qa[:b], qb[:b], e.n, flux[:b], scratch[:b])
				d.scatterAdd(rr, e.a, flux[:b], +1)
				d.scatterAdd(rr, e.b, flux[:b], -1)
			}
		}(t, lo, hi)
	}
	wg.Wait()
	// Gather: sum the private arrays (memory-bandwidth-bound, the cost
	// that can offset the threading benefit).
	for t := 1; t < nthreads; t++ {
		pt := priv[t]
		for i := 0; i < n; i++ {
			r[i] += pt[i]
		}
	}
	d.boundaryResidual(q, r)
	return nil
}
