package euler

import (
	"fmt"

	"petscfun3d/internal/par"
	"petscfun3d/internal/prof"
)

// ResidualParallel evaluates the residual with the pool's workers
// splitting the edge loop — the shared-memory parallelism the paper
// studies for the flux phase (Table 5). Because two workers may touch
// the same vertex's residual, each worker accumulates into a private
// copy of the residual vector and the copies are summed afterwards —
// precisely the "redundant work arrays ... required by the lack of a
// vector-reduce in OpenMP (version 1)" whose gather cost the paper
// discusses. Boundary fluxes are applied by the calling goroutine.
//
// The private arrays are scratch buffers kept on the Discretization and
// sized lazily to the largest worker count seen, so repeated calls on
// the Table 5 hot path do not re-allocate O(n·threads) memory; as a
// consequence, concurrent ResidualParallel calls on the same
// Discretization are not allowed (concurrent calls on distinct
// Discretizations are fine). A nil pool runs the whole sweep inline.
//
// First-order fluxes only (the paper threads only the flux phase).
func (d *Discretization) ResidualParallel(q, r []float64, p *par.Pool) error {
	if d.Opts.Order != 1 {
		return fmt.Errorf("euler: ResidualParallel supports first-order fluxes only")
	}
	nw := p.Workers()
	sp := prof.Begin(prof.PhaseFlux)
	prof.NoteThreads(prof.PhaseFlux, nw)
	n := d.N()
	for i := range r[:n] {
		r[i] = 0
	}
	// Private residual arrays (the redundant work arrays) for workers
	// 1..nw-1; worker 0 accumulates directly into r. Reused across
	// calls, grown lazily; each worker zeroes its own buffer so the
	// clearing cost is parallelized along with the flux work.
	for len(d.privRes) < nw-1 {
		d.privRes = append(d.privRes, make([]float64, n)) //lint:alloc-ok grown once to the worker count, then reused across residual sweeps
	}
	t := &d.fluxT
	t.d, t.q, t.r = d, q, r
	p.Run(t)
	t.q, t.r = nil, nil
	// Gather: sum the private arrays (memory-bandwidth-bound, the cost
	// that can offset the threading benefit).
	gatherPrivate(r[:n], d.privRes[:nw-1])
	d.boundaryResidual(q, r)
	// The gather adds one read-modify-write sweep of the shared residual
	// plus a streaming read of each private copy per extra worker.
	extra := int64(nw - 1)
	sp.End(d.SweepFlops()+PrivateGatherFlops(extra, int64(n)),
		d.SweepBytes()+PrivateGatherBytes(extra, int64(n)))
	return nil
}

// fluxTask is the reusable worker-pool task of ResidualParallel: one
// contiguous edge stripe per worker, fluxes accumulated into the
// worker's own residual array through a pooled workspace (stack locals
// passed to System methods would escape inside the sweep).
type fluxTask struct {
	d    *Discretization
	q, r []float64
}

// RunShard implements par.Task.
func (t *fluxTask) RunShard(w, nw int) {
	d := t.d
	n := d.N()
	b := d.Sys.B()
	rr := t.r[:n]
	if w > 0 {
		rr = d.privRes[w-1][:n]
		for i := range rr {
			rr[i] = 0
		}
	}
	ne := len(d.edges)
	lo, hi := ne*w/nw, ne*(w+1)/nw
	ws := d.getWS()
	qa, qb := ws.qa[:b], ws.qb[:b]
	flux, scratch := ws.flux[:b], ws.scratch[:b]
	edges := d.edges[lo:hi] // hoisted: the stripe bound check runs once, not per edge
	for _, e := range edges {
		d.gather(t.q, e.a, qa) //lint:bce-ok the gathered row offset is data-dependent through the edge endpoint
		d.gather(t.q, e.b, qb) //lint:bce-ok the gathered row offset is data-dependent through the edge endpoint
		NumFlux(d.Sys, qa, qb, e.n, flux, scratch)
		d.scatterAdd(rr, e.a, flux, +1)
		d.scatterAdd(rr, e.b, flux, -1)
	}
	d.putWS(ws)
}

// gatherPrivate sums the redundant private residual arrays into the
// shared residual — the bandwidth-bound reduction Table 5 charges
// against the threading benefit. Each entry is one add over a
// read-modify-write of r plus a streaming read of the private copy.
func gatherPrivate(r []float64, priv [][]float64) {
	for _, pt := range priv {
		pt = pt[:len(r)] // bce: ties len(pt) to len(r); the range index serves both unchecked
		for i := range r {
			r[i] += pt[i]
		}
	}
}
