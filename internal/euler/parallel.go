package euler

import (
	"fmt"
	"sync"

	"petscfun3d/internal/prof"
)

// ResidualParallel evaluates the residual with nthreads goroutines
// splitting the edge loop — the shared-memory instruction-level
// parallelism the paper studies for the flux phase (Table 5). Because
// two threads may touch the same vertex's residual, each thread
// accumulates into a private copy of the residual vector and the copies
// are summed afterwards — precisely the "redundant work arrays ...
// required by the lack of a vector-reduce in OpenMP (version 1)" whose
// gather cost the paper discusses. Boundary fluxes are applied by the
// calling goroutine.
//
// The private arrays are scratch buffers kept on the Discretization and
// sized lazily to the largest thread count seen, so repeated calls on
// the Table 5 hot path do not re-allocate O(n·threads) memory; as a
// consequence, concurrent ResidualParallel calls on the same
// Discretization are not allowed (concurrent calls on distinct
// Discretizations are fine).
//
// First-order fluxes only (the paper threads only the flux phase).
func (d *Discretization) ResidualParallel(q, r []float64, nthreads int) error {
	if d.Opts.Order != 1 {
		return fmt.Errorf("euler: ResidualParallel supports first-order fluxes only")
	}
	if nthreads < 1 {
		return fmt.Errorf("euler: nthreads %d < 1", nthreads)
	}
	sp := prof.Begin(prof.PhaseFlux)
	n := d.N()
	for i := range r[:n] {
		r[i] = 0
	}
	b := d.Sys.B()
	chunk := (len(d.edges) + nthreads - 1) / nthreads
	// Threads whose edge range is empty (chunk*t >= len(edges)) are
	// skipped entirely: they get no goroutine, no scratch buffer, and no
	// term in the gather below.
	active := nthreads
	if chunk > 0 {
		if a := (len(d.edges) + chunk - 1) / chunk; a < active {
			active = a
		}
	} else {
		active = 0
	}
	// Private residual arrays (the redundant work arrays) for threads
	// 1..active-1; thread 0 accumulates directly into r. Reused across
	// calls, grown lazily; each worker zeroes its own buffer so the
	// clearing cost is parallelized along with the flux work.
	for len(d.privRes) < active-1 {
		d.privRes = append(d.privRes, make([]float64, n)) //lint:alloc-ok grown once to the worker count, then reused across residual sweeps
	}
	var wg sync.WaitGroup
	for t := 0; t < active; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > len(d.edges) {
			hi = len(d.edges)
		}
		rr := r[:n]
		if t > 0 {
			rr = d.privRes[t-1][:n]
		}
		wg.Add(1)
		go func(t, lo, hi int, rr []float64) { //lint:alloc-ok worker fork: a handful of closures per sweep, amortized over the whole edge range
			defer wg.Done()
			if t > 0 {
				for i := range rr {
					rr[i] = 0
				}
			}
			var qa, qb, flux, scratch [5]float64
			for _, e := range d.edges[lo:hi] {
				d.gather(q, e.a, qa[:b])
				d.gather(q, e.b, qb[:b])
				NumFlux(d.Sys, qa[:b], qb[:b], e.n, flux[:b], scratch[:b])
				d.scatterAdd(rr, e.a, flux[:b], +1)
				d.scatterAdd(rr, e.b, flux[:b], -1)
			}
		}(t, lo, hi, rr)
	}
	wg.Wait()
	// Gather: sum the private arrays (memory-bandwidth-bound, the cost
	// that can offset the threading benefit).
	for t := 1; t < active; t++ {
		pt := d.privRes[t-1]
		for i := 0; i < n; i++ {
			r[i] += pt[i]
		}
	}
	d.boundaryResidual(q, r)
	// The gather adds one read+add sweep over the residual per extra
	// thread on top of the sweep's own traffic.
	extra := int64(active - 1)
	if extra < 0 {
		extra = 0
	}
	sp.End(d.SweepFlops()+extra*int64(n), d.SweepBytes()+extra*int64(16*n))
	return nil
}
