package euler

import "petscfun3d/internal/mesh"

// Galerkin-type diffusion, per the paper's description of FUN3D
// ("second-order flux-limited characteristics-based convection schemes
// and Galerkin-type diffusion"): the P1 finite-element Laplacian on the
// tetrahedral mesh, applied to the momentum components as a laminar
// viscous term. For linear basis functions on a tet with volume V and
// inward area-scaled face normals N_i (opposite vertex i),
// ∇φ_i = N_i/(3V), so the stiffness coupling is
//
//	K_ij = ∫ ∇φ_i·∇φ_j dV = N_i·N_j / (9V).
//
// Row sums vanish (ΣN_i = 0), so the operator reduces to an edge loop:
// r_i += μ Σ_edges w_ij (q_j − q_i) with w_ij = ΣK_ij (negative for
// well-shaped tets). The solver's residual convention is
// V dq/dτ = −R(q), so R_visc = +K q makes the dynamics dissipative.

// buildDiffusionWeights computes the per-edge stiffness weights, aligned
// with d.edges (the discretization's iteration order).
func (d *Discretization) buildDiffusionWeights() error {
	m := d.M
	weights := make(map[mesh.Edge]float64, m.NumEdges())
	for _, t := range m.Tets {
		p := [4]mesh.Vec3{m.Coords[t[0]], m.Coords[t[1]], m.Coords[t[2]], m.Coords[t[3]]}
		vol := tetVolume(p)
		if vol < 0 {
			vol = -vol
		}
		// Inward area normals: N_i = -(outward normal of face opposite i).
		var n [4]mesh.Vec3
		for i := 0; i < 4; i++ {
			// Face opposite vertex i: the other three vertices.
			var f [3]mesh.Vec3
			k := 0
			for c := 0; c < 4; c++ {
				if c != i {
					f[k] = p[c]
					k++
				}
			}
			a := cross3(sub3(f[1], f[0]), sub3(f[2], f[0]))
			// Orient toward vertex i.
			if dot3(a, sub3(p[i], f[0])) < 0 {
				a = scale3(a, -1)
			}
			n[i] = scale3(a, 0.5)
		}
		inv := 1.0 / (9 * vol)
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				lo, hi := t[i], t[j]
				if lo > hi {
					lo, hi = hi, lo
				}
				// w_ij = K_ij: the edge form r_i += w_ij (q_j - q_i)
				// then equals (K q)_i by the zero-row-sum identity.
				weights[mesh.Edge{A: lo, B: hi}] += dot3(n[i], n[j]) * inv
			}
		}
	}
	d.diffW = make([]float64, len(d.edges))
	for ei, e := range d.edges {
		d.diffW[ei] = weights[mesh.Edge{A: e.a, B: e.b}]
	}
	return nil
}

// diffusiveComponents returns which state components receive the
// viscous term (the momentum components of either system).
func (d *Discretization) diffusiveComponents() []int {
	// Both systems store the three momentum-like components at indices
	// 1..3 (velocity for incompressible, momentum density for
	// compressible).
	return []int{1, 2, 3}
}

// addDiffusion accumulates the viscous residual μ Σ w_ij (q_j − q_i)
// for the diffusive components.
func (d *Discretization) addDiffusion(q, r []float64) {
	mu := d.Opts.Viscosity
	comps := d.diffusiveComponents()
	var qa, qb [5]float64
	b := d.Sys.B()
	var delta [5]float64
	for ei, e := range d.edges {
		w := mu * d.diffW[ei]
		if w == 0 {
			continue
		}
		d.gather(q, e.a, qa[:b])
		d.gather(q, e.b, qb[:b])
		for c := range delta[:b] {
			delta[c] = 0
		}
		for _, c := range comps {
			delta[c] = w * (qb[c] - qa[c])
		}
		// r_a += w (q_b - q_a); r_b += w (q_a - q_b).
		d.scatterAdd(r, e.a, delta[:b], +1)
		d.scatterAdd(r, e.b, delta[:b], -1)
	}
}

// addDiffusionJacobian adds the (linear, exact) viscous coupling to the
// assembled Jacobian: dr_a/dq_b += w I_momentum, dr_a/dq_a -= w I_m, etc.
func (d *Discretization) addDiffusionJacobian(a interface {
	BlockAt(i, j int) ([]float64, bool)
}) {
	mu := d.Opts.Viscosity
	comps := d.diffusiveComponents()
	b := d.Sys.B()
	add := func(i, j int32, w float64) {
		blk, ok := a.BlockAt(int(i), int(j))
		if !ok {
			return
		}
		for _, c := range comps {
			blk[c*b+c] += w
		}
	}
	for ei, e := range d.edges {
		w := mu * d.diffW[ei]
		if w == 0 {
			continue
		}
		// r_a += w(q_b - q_a): d/dq_b = +w, d/dq_a = -w.
		add(e.a, e.b, w)
		add(e.a, e.a, -w)
		// r_b += w(q_a - q_b).
		add(e.b, e.a, w)
		add(e.b, e.b, -w)
	}
}
