package mpi

import (
	"fmt"
	"math"
	"testing"
)

func TestRunRejectsZeroSize(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Error("size 0 accepted")
	}
}

func TestRankAndSize(t *testing.T) {
	seen := make([]bool, 5)
	err := Run(5, func(c *Comm) error {
		if c.Size() != 5 {
			return fmt.Errorf("size %d", c.Size())
		}
		seen[c.Rank()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d never ran", r)
		}
	}
}

func TestSendRecvRing(t *testing.T) {
	const n = 6
	err := Run(n, func(c *Comm) error {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		c.Send(next, 7, []float64{float64(c.Rank())})
		got, err := c.Recv(prev, 7)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != float64(prev) {
			return fmt.Errorf("rank %d got %v from %d", c.Rank(), got, prev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{1, 2, 3}
			c.Send(1, 0, buf)
			buf[0] = 99 // must not affect the receiver
			c.Barrier()
			return nil
		}
		c.Barrier()
		got, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if got[0] != 1 {
			return fmt.Errorf("send aliased caller buffer: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagMismatch(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{1})
			return nil
		}
		if _, err := c.Recv(0, 4); err == nil {
			return fmt.Errorf("tag mismatch not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSumAndMax(t *testing.T) {
	const n = 7
	err := Run(n, func(c *Comm) error {
		s := c.AllReduceSum(float64(c.Rank() + 1))
		if s != n*(n+1)/2 {
			return fmt.Errorf("sum %g", s)
		}
		m := c.AllReduceMax(float64(c.Rank()))
		if m != n-1 {
			return fmt.Errorf("max %g", m)
		}
		// Repeated reductions must not interfere.
		for i := 0; i < 20; i++ {
			got := c.AllReduceSum(1)
			if got != n {
				return fmt.Errorf("iteration %d: sum %g", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceFloatAccuracy(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		x := 0.1 * float64(c.Rank()+1)
		s := c.AllReduceSum(x)
		if math.Abs(s-1.0) > 1e-12 {
			return fmt.Errorf("sum %g", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	// After a barrier, all pre-barrier sends must be receivable.
	err := Run(3, func(c *Comm) error {
		for to := 0; to < 3; to++ {
			if to != c.Rank() {
				c.Send(to, 1, []float64{float64(c.Rank())})
			}
		}
		c.Barrier()
		for from := 0; from < 3; from++ {
			if from == c.Rank() {
				continue
			}
			got, err := c.Recv(from, 1)
			if err != nil {
				return err
			}
			if got[0] != float64(from) {
				return fmt.Errorf("got %v from %d", got, from)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Errorf("error not propagated: %v", err)
	}
}
