package mpi

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestRunRejectsZeroSize(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Error("size 0 accepted")
	}
}

func TestRankAndSize(t *testing.T) {
	seen := make([]bool, 5)
	err := Run(5, func(c *Comm) error {
		if c.Size() != 5 {
			return fmt.Errorf("size %d", c.Size())
		}
		seen[c.Rank()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d never ran", r)
		}
	}
}

func TestSendRecvRing(t *testing.T) {
	const n = 6
	err := Run(n, func(c *Comm) error {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		c.Send(next, 7, []float64{float64(c.Rank())})
		got, err := c.Recv(prev, 7)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != float64(prev) {
			return fmt.Errorf("rank %d got %v from %d", c.Rank(), got, prev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{1, 2, 3}
			c.Send(1, 0, buf)
			buf[0] = 99 // must not affect the receiver
			c.Barrier()
			return nil
		}
		c.Barrier()
		got, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if got[0] != 1 {
			return fmt.Errorf("send aliased caller buffer: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagMismatch(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{1})
			return nil
		}
		if _, err := c.Recv(0, 4); err == nil {
			return fmt.Errorf("tag mismatch not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSumAndMax(t *testing.T) {
	const n = 7
	err := Run(n, func(c *Comm) error {
		s := c.AllReduceSum(float64(c.Rank() + 1))
		if s != n*(n+1)/2 {
			return fmt.Errorf("sum %g", s)
		}
		m := c.AllReduceMax(float64(c.Rank()))
		if m != n-1 {
			return fmt.Errorf("max %g", m)
		}
		// Repeated reductions must not interfere.
		for i := 0; i < 20; i++ {
			got := c.AllReduceSum(1)
			if got != n {
				return fmt.Errorf("iteration %d: sum %g", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSumVec(t *testing.T) {
	const n = 5
	err := Run(n, func(c *Comm) error {
		// Batched vector sums must be bitwise identical to the scalar
		// collective per element, and repeated mixed-width calls (the
		// growing Hessenberg column) must not interfere across
		// generations or with interleaved scalar reductions.
		for k := 1; k <= 9; k++ {
			x := make([]float64, k)
			for i := range x {
				x[i] = 0.1*float64(c.Rank()+1) + float64(i)*1e-3
			}
			want := make([]float64, k)
			for i := range want {
				want[i] = c.AllReduceSum(x[i])
			}
			out := make([]float64, k)
			c.AllReduceSumVec(x, out)
			for i := range want {
				if out[i] != want[i] {
					return fmt.Errorf("k=%d out[%d]=%x, want %x", k, i, out[i], want[i])
				}
			}
			// Aliased form: out == x.
			c.AllReduceSumVec(x, x)
			for i := range want {
				if x[i] != want[i] {
					return fmt.Errorf("aliased k=%d x[%d]=%x, want %x", k, i, x[i], want[i])
				}
			}
			if s := c.AllReduceSum(1); s != n {
				return fmt.Errorf("interleaved scalar sum %g", s)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceFloatAccuracy(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		x := 0.1 * float64(c.Rank()+1)
		s := c.AllReduceSum(x)
		if math.Abs(s-1.0) > 1e-12 {
			return fmt.Errorf("sum %g", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	// After a barrier, all pre-barrier sends must be receivable.
	err := Run(3, func(c *Comm) error {
		for to := 0; to < 3; to++ {
			if to != c.Rank() {
				c.Send(to, 1, []float64{float64(c.Rank())})
			}
		}
		c.Barrier()
		for from := 0; from < 3; from++ {
			if from == c.Rank() {
				continue
			}
			got, err := c.Recv(from, 1)
			if err != nil {
				return err
			}
			if got[0] != float64(from) {
				return fmt.Errorf("got %v from %d", got, from)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Errorf("error not propagated: %v", err)
	}
}

// TestManyOutstandingSendsPerPair is the regression test for the fabric
// sizing bug: the channel capacity was hard-coded to 8, so any pattern
// with more than 8 outstanding sends toward one peer deadlocked
// silently. The default capacity now derives from the communicator
// size; every rank pushes well past the old limit before anyone
// receives.
func TestManyOutstandingSendsPerPair(t *testing.T) {
	const size = 2
	const msgs = 12 // > 8, the old hard-coded capacity
	err := Run(size, func(c *Comm) error {
		peer := 1 - c.Rank()
		for k := 0; k < msgs; k++ {
			c.Send(peer, 100+Tag(k), []float64{float64(c.Rank()), float64(k)})
		}
		for k := 0; k < msgs; k++ {
			got, err := c.Recv(peer, 100+Tag(k))
			if err != nil {
				return err
			}
			if len(got) != 2 || got[0] != float64(peer) || got[1] != float64(k) {
				return fmt.Errorf("rank %d message %d: payload %v", c.Rank(), k, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExplicitChanCap sizes the fabric explicitly and exchanges a
// window deeper than blocking sends could otherwise absorb.
func TestExplicitChanCap(t *testing.T) {
	const size = 3
	const msgs = 40
	err := Run(size, func(c *Comm) error {
		for q := 0; q < size; q++ {
			if q == c.Rank() {
				continue
			}
			for k := 0; k < msgs; k++ {
				c.Send(q, Tag(k), []float64{float64(k)})
			}
		}
		for q := 0; q < size; q++ {
			if q == c.Rank() {
				continue
			}
			for k := 0; k < msgs; k++ {
				got, err := c.Recv(q, Tag(k))
				if err != nil {
					return err
				}
				if len(got) != 1 || got[0] != float64(k) {
					return fmt.Errorf("rank %d from %d msg %d: %v", c.Rank(), q, k, got)
				}
			}
		}
		return nil
	}, Options{ChanCap: msgs})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefaultChanCapGrowsWithSize(t *testing.T) {
	if DefaultChanCap(2) < 16 {
		t.Errorf("DefaultChanCap(2) = %d, want >= 16", DefaultChanCap(2))
	}
	if DefaultChanCap(64) <= DefaultChanCap(2) {
		t.Error("default capacity does not grow with communicator size")
	}
}

func TestRunOptionValidation(t *testing.T) {
	noop := func(c *Comm) error { return nil }
	if err := Run(2, noop, Options{ChanCap: -1}); err == nil {
		t.Error("negative ChanCap accepted")
	}
	if err := Run(2, noop, Options{}, Options{}); err == nil {
		t.Error("two Options accepted")
	}
}

// TestISendIRecvCompletionOrdering posts a window of nonblocking sends
// and receives and completes them out of order: messages must still
// match in posting order per pair (the MPI FIFO guarantee), regardless
// of the order Waits are issued in.
func TestISendIRecvCompletionOrdering(t *testing.T) {
	const window = 10
	err := Run(2, func(c *Comm) error {
		peer := 1 - c.Rank()
		sends := make([]*Request, window)
		recvs := make([]*Request, window)
		for k := 0; k < window; k++ {
			sends[k] = c.ISend(peer, 7, []float64{float64(k)})
			recvs[k] = c.IRecv(peer, 7)
		}
		// Complete the receives back to front: request k must still
		// carry the k-th posted payload.
		for k := window - 1; k >= 0; k-- {
			got, err := recvs[k].Wait()
			if err != nil {
				return err
			}
			if len(got) != 1 || got[0] != float64(k) {
				return fmt.Errorf("rank %d recv %d: payload %v, want [%d]", c.Rank(), k, got, k)
			}
		}
		for _, s := range sends {
			if _, err := s.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestISendBufferReusable asserts ISend's copy-at-post semantics: the
// caller may scribble on the buffer immediately after posting.
func TestISendBufferReusable(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		peer := 1 - c.Rank()
		buf := []float64{42}
		req := c.ISend(peer, 1, buf)
		buf[0] = -1 // must not affect the in-flight payload
		got, err := c.Recv(peer, 1)
		if err != nil {
			return err
		}
		if got[0] != 42 {
			return fmt.Errorf("payload mutated after ISend: %v", got)
		}
		_, err = req.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIRecvInterleavesWithBlockingRecv mixes IRecv and Recv on the same
// pair: posting-order matching must hold across both forms.
func TestIRecvInterleavesWithBlockingRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		peer := 1 - c.Rank()
		for k := 0; k < 4; k++ {
			c.Send(peer, Tag(k), []float64{float64(10 + k)})
		}
		r0 := c.IRecv(peer, 0)
		v1, err := c.Recv(peer, 1)
		if err != nil {
			return err
		}
		r2 := c.IRecv(peer, 2)
		v3, err := c.Recv(peer, 3)
		if err != nil {
			return err
		}
		v0, err := r0.Wait()
		if err != nil {
			return err
		}
		v2, err := r2.Wait()
		if err != nil {
			return err
		}
		for i, v := range [][]float64{v0, v1, v2, v3} {
			if len(v) != 1 || v[0] != float64(10+i) {
				return fmt.Errorf("rank %d slot %d: %v", c.Rank(), i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvTagMismatchReportsPayload: the mismatch error must name both
// tags and the length of the dropped payload, and flag the stream as
// poisoned (the message is consumed, so later receives misalign).
func TestRecvTagMismatchReportsPayload(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 5, []float64{1, 2, 3})
			return nil
		}
		_, err := c.Recv(0, 9)
		if err == nil {
			return fmt.Errorf("tag mismatch accepted")
		}
		msg := err.Error()
		for _, want := range []string{"tag 9", "tag 5", "3-value payload", "poisoned"} {
			if !strings.Contains(msg, want) {
				return fmt.Errorf("error %q missing %q", msg, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIRecvTagMismatch: the nonblocking receive surfaces the same
// poisoned-pair error through Wait.
func TestIRecvTagMismatch(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 5, []float64{1})
			return nil
		}
		_, err := c.IRecv(0, 6).Wait()
		if err == nil || !strings.Contains(err.Error(), "poisoned") {
			return fmt.Errorf("IRecv tag mismatch not surfaced: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
