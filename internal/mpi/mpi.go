// Package mpi is a small message-passing runtime over goroutines and
// channels — the repository's executable stand-in for MPI. Where
// internal/machine *models* a distributed machine's time, this package
// *runs* rank programs concurrently with real point-to-point messages,
// reductions, and barriers, so the domain-decomposed algorithms can be
// validated end-to-end against their sequential counterparts
// (internal/dist builds a distributed solver on top).
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// message is a tagged payload between two ranks.
type message struct {
	tag  Tag
	data []float64
}

// Comm is one rank's endpoint of a communicator.
type Comm struct {
	rank int
	size int
	w    *world
}

// pairState orders the traffic of one directed (from, to) pair: the
// channel carries the payloads, and the send/recv ticket chains
// serialize concurrent nonblocking operations so messages always match
// in posting order (the FIFO guarantee real MPI gives per communicator
// pair).
type pairState struct {
	ch chan message
	// sendTail / recvTail are the completion signals of the most
	// recently posted send / receive on this pair; the next operation
	// waits for them before touching the channel. Guarded by mu.
	mu       sync.Mutex
	sendTail chan struct{}
	recvTail chan struct{}
}

// world holds the shared channel fabric.
type world struct {
	size  int
	pairs []*pairState // pairs[from*size+to] carries messages from->to
	// reduction fabric: one slot per rank, guarded rendezvous.
	redMu   sync.Mutex
	redCond *sync.Cond
	redVals []float64
	redIn   int
	redOut  int
	redRes  float64
	redGen  int
}

// Options configures the communicator fabric. The zero value asks for
// defaults.
type Options struct {
	// ChanCap is the per-pair channel capacity — the number of sends a
	// rank can complete toward one peer before the peer receives any of
	// them. 0 derives a default from the communicator size. Blocking
	// Send deadlocks once a pair holds ChanCap undelivered messages
	// (ISend does not: its delivery goroutine blocks instead of the
	// rank), so patterns with deep outstanding-send windows should size
	// the fabric explicitly.
	ChanCap int
}

// DefaultChanCap returns the per-pair buffer depth used when Options
// leaves ChanCap zero: deep enough that every rank can have several
// collective-free exchange rounds in flight toward one peer, and grows
// with the communicator so all-to-all bursts (size-1 sends per rank) fit.
func DefaultChanCap(size int) int {
	c := 4 * size
	if c < 16 {
		c = 16
	}
	return c
}

// Run executes f on `size` ranks concurrently and waits for all of them.
// The first non-nil error is returned (all ranks still run to
// completion; a rank erroring early while others wait on communication
// from it will deadlock, as real MPI does — keep rank programs SPMD).
// Optional Options size the channel fabric (at most one may be given).
func Run(size int, f func(c *Comm) error, opts ...Options) error {
	if size < 1 {
		return fmt.Errorf("mpi: size %d < 1", size)
	}
	if len(opts) > 1 {
		return fmt.Errorf("mpi: Run takes at most one Options, got %d", len(opts))
	}
	var o Options
	if len(opts) == 1 {
		o = opts[0]
	}
	if o.ChanCap < 0 {
		return fmt.Errorf("mpi: negative ChanCap %d", o.ChanCap)
	}
	if o.ChanCap == 0 {
		o.ChanCap = DefaultChanCap(size)
	}
	w := &world{size: size}
	w.redCond = sync.NewCond(&w.redMu)
	w.redVals = make([]float64, size)
	w.pairs = make([]*pairState, size*size)
	closed := make(chan struct{})
	close(closed)
	for i := range w.pairs {
		//lint:alloc-ok one-time fabric construction at communicator startup
		ch := make(chan message, o.ChanCap)
		w.pairs[i] = &pairState{ch: ch, sendTail: closed, recvTail: closed}
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) { //lint:alloc-ok one goroutine per rank at communicator startup
			defer wg.Done()
			errs[rank] = f(&Comm{rank: rank, size: size, w: w})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Rank returns this rank's id in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// takeSendSlot reserves the next send turn on the pair, returning the
// previous turn's completion signal and the channel to close when this
// turn's message is in the fabric.
func (p *pairState) takeSendSlot() (prev, done chan struct{}) {
	done = make(chan struct{})
	p.mu.Lock()
	prev, p.sendTail = p.sendTail, done
	p.mu.Unlock()
	return prev, done
}

// takeRecvSlot reserves the next receive turn on the pair.
func (p *pairState) takeRecvSlot() (prev, done chan struct{}) {
	done = make(chan struct{})
	p.mu.Lock()
	prev, p.recvTail = p.recvTail, done
	p.mu.Unlock()
	return prev, done
}

// Request is an outstanding nonblocking operation (ISend or IRecv).
// Wait blocks until the operation completes; for a receive it returns
// the payload. Wait may be called more than once (later calls return
// the same result) and from the posting rank's goroutine only.
type Request struct {
	done chan struct{}
	data []float64 // receive payload (nil for sends)
	err  error

	// Deferred operations race a helper goroutine (progress when Wait
	// comes late or never) against Wait itself (no scheduling handoff
	// when it comes first); claimed arbitrates, run performs the op and
	// closes done.
	claimed int32
	run     func()
}

// claim returns true exactly once per request.
func (r *Request) claim() bool { return atomic.CompareAndSwapInt32(&r.claimed, 0, 1) }

// Wait blocks until the operation completes. For an IRecv it returns
// the received payload; for an ISend the data slice is nil. If the
// operation has not started yet, Wait performs it on the calling
// goroutine — on oversubscribed cores this skips the scheduling handoff
// to a starved helper goroutine.
func (r *Request) Wait() ([]float64, error) {
	if r.run != nil && r.claim() {
		r.run()
	}
	<-r.done
	return r.data, r.err
}

// Send delivers a copy of data to rank `to` with the given tag. It
// blocks while the pair already holds Options.ChanCap undelivered
// messages; use ISend for communication/computation overlap or deep
// outstanding-send windows.
func (c *Comm) Send(to int, tag Tag, data []float64) {
	cp := make([]float64, len(data))
	copy(cp, data)
	p := c.w.pairs[c.rank*c.size+to]
	prev, done := p.takeSendSlot()
	<-prev
	p.ch <- message{tag: tag, data: cp}
	close(done)
}

// ISend posts a nonblocking send of a copy of data to rank `to`; the
// caller may reuse data immediately. Delivery proceeds in posting order
// per pair; Wait returns once the message is in the fabric (not
// necessarily received, as with MPI's buffered sends). ISend never
// deadlocks on fabric capacity — when the pair is free and the fabric
// has room the message is delivered inline (an "eager" send), otherwise
// a background goroutine absorbs the wait.
func (c *Comm) ISend(to int, tag Tag, data []float64) *Request {
	cp := make([]float64, len(data))
	copy(cp, data)
	p := c.w.pairs[c.rank*c.size+to]
	prev, done := p.takeSendSlot()
	req := &Request{done: done}
	// Eager path: if the previous send on this pair already completed
	// and the channel has spare capacity, deliver without spawning a
	// goroutine. On oversubscribed cores spawned delivery goroutines can
	// be starved behind compute-bound ranks, which would stall the
	// receiving peer's Wait for a scheduling quantum.
	select {
	case <-prev:
		select {
		case p.ch <- message{tag: tag, data: cp}:
			close(done)
			return req
		default:
		}
	default:
	}
	req.run = func() {
		<-prev
		p.ch <- message{tag: tag, data: cp}
		close(done)
	}
	go func() {
		<-prev
		if req.claim() {
			req.run()
		}
	}()
	return req
}

// Recv receives the next message from rank `from`; the tag must match
// (messages between a pair are ordered, so SPMD programs with matching
// send/recv sequences never mismatch).
//
// A tag mismatch is a protocol error that poisons the pair: the
// mismatched message has already been consumed from the ordered stream
// and is dropped (the error reports its tag and payload length), so
// every later receive on the pair would see a shifted stream. Treat the
// communicator as unusable after a non-nil error and tear the run down.
func (c *Comm) Recv(from int, tag Tag) ([]float64, error) {
	p := c.w.pairs[from*c.size+c.rank]
	prev, done := p.takeRecvSlot()
	<-prev
	m := <-p.ch
	close(done)
	return checkTag(m, c.rank, from, tag)
}

// IRecv posts a nonblocking receive of the next message from rank
// `from`. Receives match sends in posting order per pair (also relative
// to blocking Recv calls). Wait returns the payload, or the Recv tag
// mismatch error (see Recv for the poisoned-pair semantics).
func (c *Comm) IRecv(from int, tag Tag) *Request {
	p := c.w.pairs[from*c.size+c.rank]
	prev, done := p.takeRecvSlot()
	req := &Request{done: done}
	req.run = func() {
		<-prev
		m := <-p.ch
		req.data, req.err = checkTag(m, c.rank, from, tag)
		close(done)
	}
	go func() {
		// Progress even if Wait is never called (e.g. a blocking Recv
		// posted after this IRecv waits on its completion); the claim
		// keeps exactly one of helper and Wait on the channel.
		<-prev
		if req.claim() {
			req.run()
		}
	}()
	return req
}

// checkTag validates a received message's tag.
func checkTag(m message, rank, from int, tag Tag) ([]float64, error) {
	if m.tag != tag {
		return nil, fmt.Errorf(
			"mpi: rank %d expected tag %d from %d, got tag %d (%d-value payload dropped; the pair's message stream is poisoned — later receives will misalign)",
			rank, tag, from, m.tag, len(m.data))
	}
	return m.data, nil
}

// AllReduceSum returns the sum of x across all ranks (a synchronizing
// collective).
func (c *Comm) AllReduceSum(x float64) float64 {
	return c.allReduce(x, func(vals []float64) float64 {
		var s float64
		for _, v := range vals {
			s += v
		}
		return s
	})
}

// AllReduceMax returns the maximum of x across all ranks.
func (c *Comm) AllReduceMax(x float64) float64 {
	return c.allReduce(x, func(vals []float64) float64 {
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m
	})
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() { c.allReduce(0, func([]float64) float64 { return 0 }) }

// allReduce is a generation-counted rendezvous: every rank deposits a
// value; the last one in computes the result; everyone leaves together.
func (c *Comm) allReduce(x float64, combine func([]float64) float64) float64 {
	w := c.w
	w.redMu.Lock()
	defer w.redMu.Unlock()
	// Wait for the previous reduction to fully drain.
	for w.redOut > 0 {
		w.redCond.Wait()
	}
	gen := w.redGen
	w.redVals[c.rank] = x
	w.redIn++
	if w.redIn == w.size {
		w.redRes = combine(w.redVals)
		w.redIn = 0
		w.redOut = w.size
		w.redGen++
		w.redCond.Broadcast()
	} else {
		for w.redGen == gen {
			w.redCond.Wait()
		}
	}
	res := w.redRes
	w.redOut--
	if w.redOut == 0 {
		w.redCond.Broadcast()
	}
	return res
}
