// Package mpi is a small message-passing runtime over goroutines and
// channels — the repository's executable stand-in for MPI. Where
// internal/machine *models* a distributed machine's time, this package
// *runs* rank programs concurrently with real point-to-point messages,
// reductions, and barriers, so the domain-decomposed algorithms can be
// validated end-to-end against their sequential counterparts
// (internal/dist builds a distributed solver on top).
//
// The runtime is hardened for chaos runs (internal/faults): a deadlock
// watchdog turns a quiesced-but-unfinished world into a structured
// WorldError with per-rank blocked-operation state instead of a hung
// test; a rank panic is contained, cancels the world, and surfaces as a
// WorldError naming the rank and its in-flight requests; and a rank
// returning early — with an error, or with nonblocking requests still
// in flight — cancels the world so its peers fail loudly instead of
// blocking forever on the ticket chains.
package mpi

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"petscfun3d/internal/faults"
)

// message is a tagged payload between two ranks.
type message struct {
	tag  Tag
	data []float64
}

// Comm is one rank's endpoint of a communicator.
type Comm struct {
	rank int
	size int
	w    *world
}

// pairState orders the traffic of one directed (from, to) pair: the
// channel carries the payloads, and the send/recv ticket chains
// serialize concurrent nonblocking operations so messages always match
// in posting order (the FIFO guarantee real MPI gives per communicator
// pair).
type pairState struct {
	ch chan message
	// sendTail / recvTail are the completion signals of the most
	// recently posted send / receive on this pair; the next operation
	// waits for them before touching the channel. Guarded by mu.
	mu       sync.Mutex
	sendTail chan struct{}
	recvTail chan struct{}
}

// opKind classifies the blocking operation a rank is inside, for the
// watchdog's per-rank state report.
type opKind uint8

const (
	opIdle opKind = iota
	opSend
	opRecv
	opWaitSend
	opWaitRecv
	opReduce
	opGather
	opDone
)

var opKindNames = [...]string{
	opIdle:     "idle (computing)",
	opSend:     "send",
	opRecv:     "recv",
	opWaitSend: "wait isend",
	opWaitRecv: "wait irecv",
	opReduce:   "allreduce/barrier",
	opGather:   "allgather",
	opDone:     "done",
}

// rankOp is one rank's last-recorded operation; formatted lazily, so
// recording it costs a struct assignment, not an allocation.
type rankOp struct {
	kind opKind
	peer int
	tag  Tag
}

func (o rankOp) String() string {
	switch o.kind {
	case opSend, opWaitSend:
		return fmt.Sprintf("%s->%d tag %d", opKindNames[o.kind], o.peer, o.tag)
	case opRecv, opWaitRecv:
		return fmt.Sprintf("%s<-%d tag %d", opKindNames[o.kind], o.peer, o.tag)
	default:
		return opKindNames[o.kind]
	}
}

// RankState is one rank's last-known state inside a failed world.
type RankState struct {
	Rank     int
	Op       string // last recorded operation ("recv<-1 tag 2", "done", ...)
	InFlight int    // nonblocking requests posted but not completed
}

// WorldError is the structured failure of a world: the watchdog firing,
// a rank panicking, or a rank abandoning in-flight requests. It names
// the offending rank (−1 when the failure is not rank-specific) and
// carries every rank's last-known operation state, so a failed chaos
// run reads like a stack dump instead of a hung test.
type WorldError struct {
	Reason     string      // what killed the world
	Rank       int         // offending rank, or -1
	PanicValue any         // recovered panic payload, when a rank panicked
	Ranks      []RankState // per-rank state captured at failure time
}

func (e *WorldError) Error() string {
	var sb strings.Builder
	sb.WriteString("mpi: ")
	sb.WriteString(e.Reason)
	for _, r := range e.Ranks {
		fmt.Fprintf(&sb, "; rank %d: %s", r.Rank, r.Op)
		if r.InFlight > 0 {
			fmt.Fprintf(&sb, " (%d requests in flight)", r.InFlight)
		}
	}
	return sb.String()
}

// ErrAborted is wrapped by every error a rank receives because the
// world was cancelled out from under it (by the watchdog, a peer's
// panic, or a peer's early exit). Rank programs should propagate it;
// Run reports the root cause, not these secondary failures.
var ErrAborted = errors.New("mpi: world aborted")

// worldAbort is the sentinel panic that unwinds a rank blocked in an
// operation with no error return (Send, AllReduce, Barrier) once the
// world is cancelled; Run's containment converts it back into an
// ErrAborted-wrapped error and never lets it escape.
type worldAbort struct{}

// world holds the shared channel fabric.
type world struct {
	size   int
	pairs  []*pairState // pairs[from*size+to] carries messages from->to
	faults *faults.Plan // nil when no fault injection is armed

	// Failure machinery: stop closes exactly once with cause set first;
	// progress counts completed operations (the watchdog's liveness
	// signal); inflight counts each rank's posted-but-incomplete
	// requests; stat records each rank's last blocking operation.
	stop     chan struct{}
	stopOnce sync.Once
	cause    *WorldError
	progress atomic.Int64
	inflight []atomic.Int64
	stMu     sync.Mutex
	stat     []rankOp

	// Reduction fabric: a generation-counted rendezvous shared by the
	// reductions and AllGather (SPMD programs call collectives in the
	// same order, so one generation counter serves both). Results are
	// double-buffered by generation parity, so a rank re-entering the
	// next collective never waits on — or races with — a slow peer
	// still reading the previous generation's slot.
	redMu   sync.Mutex
	redCond *sync.Cond
	aborted bool
	redIn   int
	redGen  int64
	redVals []float64
	redRes  [2]float64
	vecVals [][]float64
	vecRes  [2][]float64
	gatVals [][]float64
	gatRes  [2][][]float64
}

// DefaultWatchdogTimeout is the no-progress window after which an
// unfinished world is declared deadlocked when Options does not set
// one. It is deliberately generous: plan construction at large mesh
// sizes legitimately computes for a long time between operations.
const DefaultWatchdogTimeout = 90 * time.Second

// Options configures the communicator fabric. The zero value asks for
// defaults.
type Options struct {
	// ChanCap is the per-pair channel capacity — the number of sends a
	// rank can complete toward one peer before the peer receives any of
	// them. 0 derives a default from the communicator size. Blocking
	// Send deadlocks once a pair holds ChanCap undelivered messages
	// (ISend does not: its delivery goroutine blocks instead of the
	// rank), so patterns with deep outstanding-send windows should size
	// the fabric explicitly.
	ChanCap int
	// WatchdogTimeout arms the deadlock watchdog: a world that makes no
	// progress (no message delivered or received, no collective
	// completed, no rank finished) for this long while ranks are still
	// running is cancelled with a WorldError reporting every rank's
	// blocked operation. 0 selects DefaultWatchdogTimeout; negative
	// disables the watchdog (a hung `go test` is then the caller's
	// problem again).
	WatchdogTimeout time.Duration
	// Faults, when non-nil, injects the plan's deterministic timing
	// faults (and at most one panic) into every send, receive, and
	// reduction. Run arms the plan; a Plan is single-use.
	Faults *faults.Plan
}

// DefaultChanCap returns the per-pair buffer depth used when Options
// leaves ChanCap zero: deep enough that every rank can have several
// collective-free exchange rounds in flight toward one peer, and grows
// with the communicator so all-to-all bursts (size-1 sends per rank) fit.
func DefaultChanCap(size int) int {
	c := 4 * size
	if c < 16 {
		c = 16
	}
	return c
}

// Run executes f on `size` ranks concurrently and waits for all of them.
// The first non-nil error is returned, with secondary cancellation
// errors suppressed in favor of the root cause. A rank that errors,
// panics, or returns with nonblocking requests still in flight cancels
// the world: its peers' blocked operations fail with ErrAborted-wrapped
// errors instead of deadlocking, and a contained panic or abandoned
// request surfaces as a *WorldError. Optional Options size the fabric,
// tune the deadlock watchdog, and arm fault injection (at most one
// Options may be given).
func Run(size int, f func(c *Comm) error, opts ...Options) error {
	if size < 1 {
		return fmt.Errorf("mpi: size %d < 1", size)
	}
	if len(opts) > 1 {
		return fmt.Errorf("mpi: Run takes at most one Options, got %d", len(opts))
	}
	var o Options
	if len(opts) == 1 {
		o = opts[0]
	}
	if o.ChanCap < 0 {
		return fmt.Errorf("mpi: negative ChanCap %d", o.ChanCap)
	}
	if o.ChanCap == 0 {
		o.ChanCap = DefaultChanCap(size)
	}
	if o.WatchdogTimeout == 0 {
		o.WatchdogTimeout = DefaultWatchdogTimeout
	}
	if o.Faults != nil {
		if err := o.Faults.Arm(size); err != nil {
			return err
		}
	}
	w := &world{size: size, faults: o.Faults, stop: make(chan struct{})}
	w.redCond = sync.NewCond(&w.redMu)
	w.redVals = make([]float64, size)
	w.vecVals = make([][]float64, size)
	w.gatVals = make([][]float64, size)
	w.inflight = make([]atomic.Int64, size)
	w.stat = make([]rankOp, size)
	w.pairs = make([]*pairState, size*size)
	closed := make(chan struct{})
	close(closed)
	for i := range w.pairs {
		//lint:alloc-ok one-time fabric construction at communicator startup
		ch := make(chan message, o.ChanCap)
		w.pairs[i] = &pairState{ch: ch, sendTail: closed, recvTail: closed}
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) { //lint:alloc-ok one goroutine per rank at communicator startup
			defer wg.Done()
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				w.setOp(rank, rankOp{kind: opDone})
				w.progress.Add(1)
				if _, ok := r.(worldAbort); ok {
					errs[rank] = w.abortErr()
					return
				}
				// Genuine rank panic: contain it, cancel the world, and
				// make this rank's error the structured root cause.
				we := &WorldError{
					Reason:     fmt.Sprintf("rank %d panicked: %v", rank, r),
					Rank:       rank,
					PanicValue: r,
				}
				w.cancel(we)
				errs[rank] = we
			}()
			err := f(&Comm{rank: rank, size: size, w: w})
			if n := w.inflight[rank].Load(); n > 0 && err == nil {
				// A silently leaked request blocks the peer forever on
				// the pair's ticket chain; fail loudly instead.
				err = &WorldError{
					Reason: fmt.Sprintf("rank %d returned with %d nonblocking requests still in flight; Wait on every Request before returning", rank, n),
					Rank:   rank,
				}
			}
			errs[rank] = err
			w.setOp(rank, rankOp{kind: opDone})
			w.progress.Add(1)
			if err != nil {
				w.cancel(&WorldError{
					Reason: fmt.Sprintf("rank %d failed: %v", rank, err),
					Rank:   rank,
				})
			}
		}(r)
	}
	watchdogDone := make(chan struct{})
	if o.WatchdogTimeout > 0 {
		go w.watchdog(o.WatchdogTimeout, watchdogDone)
	}
	wg.Wait()
	close(watchdogDone)
	// Root cause first: a rank's own error beats the secondary
	// ErrAborted failures cancellation spread to its peers.
	var aborted error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrAborted) {
			if aborted == nil {
				aborted = err
			}
			continue
		}
		return err
	}
	if aborted != nil {
		// Every failing rank failed *because* the world was cancelled;
		// report the cancellation's cause (e.g. the watchdog report).
		if w.cause != nil {
			return w.cause
		}
		return aborted
	}
	return nil
}

// watchdog cancels a world that makes no progress for a full timeout
// while ranks are still running, reporting every rank's last blocked
// operation. Sampling at timeout/8 bounds the detection latency at
// 9/8·timeout without a timer per operation.
func (w *world) watchdog(timeout time.Duration, done chan struct{}) {
	tick := timeout / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	last := w.progress.Load()
	var stale time.Duration
	for {
		select {
		case <-done:
			return
		case <-w.stop:
			return
		case <-ticker.C:
		}
		cur := w.progress.Load()
		if cur != last {
			last, stale = cur, 0
			continue
		}
		stale += tick
		if stale < timeout {
			continue
		}
		w.cancel(&WorldError{
			Reason: fmt.Sprintf("deadlock watchdog: no progress for %v with unfinished ranks", stale.Round(time.Millisecond)),
			Rank:   -1,
		})
		return
	}
}

// cancel records the root cause and wakes every blocked operation; only
// the first caller wins.
func (w *world) cancel(cause *WorldError) {
	w.stopOnce.Do(func() {
		if cause.Ranks == nil {
			cause.Ranks = w.snapshot()
		}
		w.cause = cause
		close(w.stop)
		w.redMu.Lock()
		w.aborted = true
		w.redCond.Broadcast()
		w.redMu.Unlock()
	})
}

// snapshot captures every rank's last-known operation state.
func (w *world) snapshot() []RankState {
	w.stMu.Lock()
	defer w.stMu.Unlock()
	out := make([]RankState, w.size)
	for r := range out {
		out[r] = RankState{Rank: r, Op: w.stat[r].String(), InFlight: int(w.inflight[r].Load())}
	}
	return out
}

// setOp records rank's current blocking operation for the watchdog
// report.
func (w *world) setOp(rank int, op rankOp) {
	w.stMu.Lock()
	w.stat[rank] = op
	w.stMu.Unlock()
}

// abortErr returns the ErrAborted-wrapped secondary error a blocked
// operation fails with after cancellation.
func (w *world) abortErr() error {
	reason := "cancelled"
	if w.cause != nil {
		reason = w.cause.Reason
	}
	return fmt.Errorf("%w (%s)", ErrAborted, reason)
}

// beforeOp consults the fault plan at an operation entry on the rank's
// own goroutine, applying injected jitter/stalls and raising the plan's
// injected panic.
func (w *world) beforeOp(rank int) {
	if w.faults != nil && w.faults.BeforeOp(rank) {
		//lint:panic-ok deterministic fault injection: Run's containment converts this panic into a structured WorldError
		panic(faults.InjectedPanic{Rank: rank, Seed: w.faults.Seed})
	}
}

// waitTicket blocks until the previous operation on a pair's ticket
// chain completes, or fails once the world is cancelled.
func (w *world) waitTicket(prev chan struct{}) error {
	select {
	case <-prev:
		return nil
	default:
	}
	select {
	case <-prev:
		return nil
	case <-w.stop:
		return w.abortErr()
	}
}

// putMsg places m in the pair's channel, blocking while the fabric is
// full but failing instead of blocking forever once the world is
// cancelled.
func (w *world) putMsg(p *pairState, m message) error {
	select {
	case p.ch <- m:
		w.progress.Add(1)
		return nil
	default:
	}
	select {
	case p.ch <- m:
		w.progress.Add(1)
		return nil
	case <-w.stop:
		return w.abortErr()
	}
}

// takeMsg receives the next message from the pair's channel, failing
// once the world is cancelled.
func (w *world) takeMsg(p *pairState) (message, error) {
	select {
	case m := <-p.ch:
		w.progress.Add(1)
		return m, nil
	default:
	}
	select {
	case m := <-p.ch:
		w.progress.Add(1)
		return m, nil
	case <-w.stop:
		return message{}, w.abortErr()
	}
}

// Protect runs f and converts the unwind of a cancelled no-error-return
// operation (Send, AllReduce, Barrier — which cannot report the world's
// cancellation themselves) into the ErrAborted-wrapped error it stands
// for. Drivers that want to abort gracefully — close profiler spans,
// return a partial result — wrap their fallible sections in Protect;
// without it the unwind propagates to Run's containment and the rank's
// partial state is lost. Foreign panics pass through unchanged.
func (c *Comm) Protect(f func() error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(worldAbort); ok {
			err = c.w.abortErr()
			return
		}
		//lint:panic-ok re-raising a foreign panic unchanged; only the runtime's own abort unwind is absorbed
		panic(r)
	}()
	return f()
}

// Rank returns this rank's id in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// takeSendSlot reserves the next send turn on the pair, returning the
// previous turn's completion signal and the channel to close when this
// turn's message is in the fabric.
func (p *pairState) takeSendSlot() (prev, done chan struct{}) {
	done = make(chan struct{})
	p.mu.Lock()
	prev, p.sendTail = p.sendTail, done
	p.mu.Unlock()
	return prev, done
}

// takeRecvSlot reserves the next receive turn on the pair.
func (p *pairState) takeRecvSlot() (prev, done chan struct{}) {
	done = make(chan struct{})
	p.mu.Lock()
	prev, p.recvTail = p.recvTail, done
	p.mu.Unlock()
	return prev, done
}

// Request is an outstanding nonblocking operation (ISend or IRecv).
// Wait blocks until the operation completes; for a receive it returns
// the payload. Wait may be called more than once (later calls return
// the same result) and from the posting rank's goroutine only.
type Request struct {
	w    *world
	rank int
	op   rankOp // the posted operation, for the watchdog report
	done chan struct{}
	data []float64 // receive payload (nil for sends)
	err  error

	// Deferred operations race a helper goroutine (progress when Wait
	// comes late or never) against Wait itself (no scheduling handoff
	// when it comes first); claimed arbitrates, run performs the op and
	// closes done.
	claimed int32
	run     func()
}

// claim returns true exactly once per request.
func (r *Request) claim() bool { return atomic.CompareAndSwapInt32(&r.claimed, 0, 1) }

// complete marks the operation finished and releases the ticket chain.
func (r *Request) complete() {
	r.w.inflight[r.rank].Add(-1)
	close(r.done)
}

// fail records err and completes the request.
func (r *Request) fail(err error) {
	r.err = err
	r.complete()
}

// Wait blocks until the operation completes. For an IRecv it returns
// the received payload; for an ISend the data slice is nil. If the
// operation has not started yet, Wait performs it on the calling
// goroutine — on oversubscribed cores this skips the scheduling handoff
// to a starved helper goroutine. Once the world is cancelled, Wait
// fails with an ErrAborted-wrapped error instead of blocking forever.
func (r *Request) Wait() ([]float64, error) {
	if r.run != nil && r.claim() {
		r.run()
	}
	select {
	case <-r.done:
		return r.data, r.err
	default:
	}
	r.w.setOp(r.rank, r.op)
	select {
	case <-r.done:
		r.w.setOp(r.rank, rankOp{kind: opIdle})
		return r.data, r.err
	case <-r.w.stop:
		r.w.setOp(r.rank, rankOp{kind: opIdle})
		return nil, r.w.abortErr()
	}
}

// Send delivers a copy of data to rank `to` with the given tag. It
// blocks while the pair already holds Options.ChanCap undelivered
// messages; use ISend for communication/computation overlap or deep
// outstanding-send windows. Once the world is cancelled a blocked Send
// unwinds (Run reports the cancellation cause) instead of deadlocking.
func (c *Comm) Send(to int, tag Tag, data []float64) {
	w := c.w
	w.beforeOp(c.rank)
	cp := make([]float64, len(data))
	copy(cp, data)
	p := w.pairs[c.rank*c.size+to]
	prev, done := p.takeSendSlot()
	w.setOp(c.rank, rankOp{kind: opSend, peer: to, tag: tag})
	if err := w.waitTicket(prev); err != nil {
		//lint:panic-ok Send has no error return; the worldAbort sentinel unwinds the cancelled rank and Run converts it to an error
		panic(worldAbort{})
	}
	if w.faults != nil {
		if d := w.faults.MessageDelay(c.rank, to); d > 0 {
			time.Sleep(d)
		}
	}
	if err := w.putMsg(p, message{tag: tag, data: cp}); err != nil {
		//lint:panic-ok Send has no error return; the worldAbort sentinel unwinds the cancelled rank and Run converts it to an error
		panic(worldAbort{})
	}
	close(done)
	w.setOp(c.rank, rankOp{kind: opIdle})
}

// ISend posts a nonblocking send of a copy of data to rank `to`; the
// caller may reuse data immediately. Delivery proceeds in posting order
// per pair; Wait returns once the message is in the fabric (not
// necessarily received, as with MPI's buffered sends). ISend never
// deadlocks on fabric capacity — when the pair is free and the fabric
// has room the message is delivered inline (an "eager" send), otherwise
// a background goroutine absorbs the wait.
func (c *Comm) ISend(to int, tag Tag, data []float64) *Request {
	w := c.w
	w.beforeOp(c.rank)
	cp := make([]float64, len(data))
	copy(cp, data)
	p := w.pairs[c.rank*c.size+to]
	prev, done := p.takeSendSlot()
	req := &Request{w: w, rank: c.rank, done: done, op: rankOp{kind: opWaitSend, peer: to, tag: tag}}
	w.inflight[c.rank].Add(1)
	var delay time.Duration
	if w.faults != nil {
		delay = w.faults.MessageDelay(c.rank, to)
	}
	// Eager path: if the previous send on this pair already completed,
	// the channel has spare capacity, and no wire delay is scheduled,
	// deliver without spawning a goroutine. On oversubscribed cores
	// spawned delivery goroutines can be starved behind compute-bound
	// ranks, which would stall the receiving peer's Wait for a
	// scheduling quantum.
	if delay == 0 {
		select {
		case <-prev:
			select {
			case p.ch <- message{tag: tag, data: cp}:
				w.progress.Add(1)
				req.complete()
				return req
			default:
			}
		default:
		}
	}
	req.run = func() {
		if err := w.waitTicket(prev); err != nil {
			req.fail(err)
			return
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		if err := w.putMsg(p, message{tag: tag, data: cp}); err != nil {
			req.fail(err)
			return
		}
		req.complete()
	}
	go func() {
		select {
		case <-prev:
		case <-w.stop:
		}
		if req.claim() {
			req.run()
		}
	}()
	return req
}

// Recv receives the next message from rank `from`; the tag must match
// (messages between a pair are ordered, so SPMD programs with matching
// send/recv sequences never mismatch).
//
// A tag mismatch is a protocol error that poisons the pair: the
// mismatched message has already been consumed from the ordered stream
// and is dropped (the error reports its tag and payload length), so
// every later receive on the pair would see a shifted stream. Treat the
// communicator as unusable after a non-nil error and tear the run down.
func (c *Comm) Recv(from int, tag Tag) ([]float64, error) {
	w := c.w
	w.beforeOp(c.rank)
	p := w.pairs[from*c.size+c.rank]
	prev, done := p.takeRecvSlot()
	w.setOp(c.rank, rankOp{kind: opRecv, peer: from, tag: tag})
	defer w.setOp(c.rank, rankOp{kind: opIdle})
	if err := w.waitTicket(prev); err != nil {
		return nil, err
	}
	m, err := w.takeMsg(p)
	if err != nil {
		return nil, err
	}
	close(done)
	return checkTag(m, c.rank, from, tag)
}

// IRecv posts a nonblocking receive of the next message from rank
// `from`. Receives match sends in posting order per pair (also relative
// to blocking Recv calls). Wait returns the payload, or the Recv tag
// mismatch error (see Recv for the poisoned-pair semantics).
func (c *Comm) IRecv(from int, tag Tag) *Request {
	w := c.w
	w.beforeOp(c.rank)
	p := w.pairs[from*c.size+c.rank]
	prev, done := p.takeRecvSlot()
	req := &Request{w: w, rank: c.rank, done: done, op: rankOp{kind: opWaitRecv, peer: from, tag: tag}}
	w.inflight[c.rank].Add(1)
	req.run = func() {
		if err := w.waitTicket(prev); err != nil {
			req.fail(err)
			return
		}
		m, err := w.takeMsg(p)
		if err != nil {
			req.fail(err)
			return
		}
		req.data, req.err = checkTag(m, c.rank, from, tag)
		req.complete()
	}
	go func() {
		// Progress even if Wait is never called (e.g. a blocking Recv
		// posted after this IRecv waits on its completion); the claim
		// keeps exactly one of helper and Wait on the channel.
		select {
		case <-prev:
		case <-w.stop:
		}
		if req.claim() {
			req.run()
		}
	}()
	return req
}

// checkTag validates a received message's tag.
func checkTag(m message, rank, from int, tag Tag) ([]float64, error) {
	if m.tag != tag {
		return nil, fmt.Errorf(
			"mpi: rank %d expected tag %d from %d, got tag %d (%d-value payload dropped; the pair's message stream is poisoned — later receives will misalign)",
			rank, tag, from, m.tag, len(m.data))
	}
	return m.data, nil
}

// AllReduceSum returns the sum of x across all ranks (a synchronizing
// collective). The combine always runs in rank order, so the float
// accumulation is deterministic regardless of arrival order.
func (c *Comm) AllReduceSum(x float64) float64 {
	return c.allReduce(x, func(vals []float64) float64 {
		var s float64
		for _, v := range vals {
			s += v
		}
		return s
	})
}

// AllReduceSumVec sums x elementwise across all ranks into out
// (out[i] = Σ over ranks of that rank's x[i]) in ONE synchronizing
// collective for the whole vector — the batched reduction behind the
// fused orthogonalization, collapsing a Hessenberg column's worth of
// global syncs into a single rendezvous. Every rank must pass the same
// length, and out must hold it. Per element the combine runs in
// ascending rank order — exactly AllReduceSum's accumulation — so each
// out[i] is bitwise identical to AllReduceSum(x[i]) called on its own.
// out may alias x: the deposited slices are read only by the combine,
// which completes before any rank of the generation returns.
func (c *Comm) AllReduceSumVec(x, out []float64) {
	w := c.w
	w.beforeOp(c.rank)
	w.setOp(c.rank, rankOp{kind: opReduce})
	w.rendezvous(
		func() { w.vecVals[c.rank] = x },
		func(gen int64) {
			k := len(x) // SPMD: every rank deposited this length
			res := w.vecRes[gen&1]
			if cap(res) < k {
				// The result slot grows once to the largest vector seen,
				// then is reused: the steady state allocates nothing.
				res = make([]float64, k)
			}
			res = res[:k]
			for i := range res {
				var s float64
				for _, v := range w.vecVals {
					s += v[i]
				}
				res[i] = s
			}
			w.vecRes[gen&1] = res
			for r := range w.vecVals {
				w.vecVals[r] = nil
			}
		},
		func(gen int64) { copy(out, w.vecRes[gen&1]) },
	)
	w.setOp(c.rank, rankOp{kind: opIdle})
}

// AllReduceMax returns the maximum of x across all ranks.
func (c *Comm) AllReduceMax(x float64) float64 {
	return c.allReduce(x, func(vals []float64) float64 {
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m
	})
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() { c.allReduce(0, func([]float64) float64 { return 0 }) }

// allReduce deposits x, lets the last rank in combine all deposits, and
// returns the completed generation's result.
func (c *Comm) allReduce(x float64, combine func([]float64) float64) float64 {
	w := c.w
	w.beforeOp(c.rank)
	w.setOp(c.rank, rankOp{kind: opReduce})
	var res float64
	w.rendezvous(
		func() { w.redVals[c.rank] = x },
		func(gen int64) { w.redRes[gen&1] = combine(w.redVals) },
		func(gen int64) { res = w.redRes[gen&1] },
	)
	w.setOp(c.rank, rankOp{kind: opIdle})
	return res
}

// AllGather deposits this rank's values and returns every rank's
// deposit, indexed by rank (a collective; every rank must call it with
// the same generation discipline as the reductions). The returned
// slices are copies snapped when the generation completed, shared by
// all ranks of that generation — treat them as read-only. The caller's
// x is copied before AllGather returns, so it may be reused
// immediately. Used for plan-time negotiation (who talks to whom), not
// on hot paths.
func (c *Comm) AllGather(x []float64) [][]float64 {
	w := c.w
	w.beforeOp(c.rank)
	w.setOp(c.rank, rankOp{kind: opGather})
	var out [][]float64
	w.rendezvous(
		func() { w.gatVals[c.rank] = x },
		func(gen int64) {
			snap := make([][]float64, w.size)
			for r, v := range w.gatVals {
				cp := make([]float64, len(v)) //lint:alloc-ok plan-time collective, one snapshot per generation
				copy(cp, v)
				snap[r] = cp
				w.gatVals[r] = nil
			}
			w.gatRes[gen&1] = snap
		},
		func(gen int64) { out = w.gatRes[gen&1] },
	)
	w.setOp(c.rank, rankOp{kind: opIdle})
	return out
}

// rendezvous runs one generation of the collective fabric: deposit this
// rank's contribution, have the last rank in combine the generation,
// and read the result before returning. Results are double-buffered by
// generation parity: a slot is overwritten only two generations later,
// which — because every rank reads generation g before depositing for
// g+1 — cannot happen before every reader of g is done. A slow rank
// still waking up to read generation g therefore never observes
// generation g+1's value, and fast ranks never block on its exit (the
// old single-slot fabric serialized on a full drain of every reader,
// which amplified injected jitter by an extra synchronization per
// collective).
func (w *world) rendezvous(deposit func(), combine func(gen int64), read func(gen int64)) {
	w.redMu.Lock()
	defer w.redMu.Unlock()
	if w.aborted {
		//lint:panic-ok collectives have no error return; the worldAbort sentinel unwinds the cancelled rank and Run converts it to an error
		panic(worldAbort{})
	}
	gen := w.redGen
	deposit()
	w.redIn++
	if w.redIn == w.size {
		combine(gen)
		w.redIn = 0
		w.redGen++
		w.progress.Add(1)
		w.redCond.Broadcast()
	} else {
		for w.redGen == gen {
			w.redCond.Wait()
			if w.aborted {
				//lint:panic-ok collectives have no error return; the worldAbort sentinel unwinds the cancelled rank and Run converts it to an error
				panic(worldAbort{})
			}
		}
	}
	read(gen)
}
