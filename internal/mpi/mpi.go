// Package mpi is a small message-passing runtime over goroutines and
// channels — the repository's executable stand-in for MPI. Where
// internal/machine *models* a distributed machine's time, this package
// *runs* rank programs concurrently with real point-to-point messages,
// reductions, and barriers, so the domain-decomposed algorithms can be
// validated end-to-end against their sequential counterparts
// (internal/dist builds a distributed solver on top).
package mpi

import (
	"fmt"
	"sync"
)

// message is a tagged payload between two ranks.
type message struct {
	tag  int
	data []float64
}

// Comm is one rank's endpoint of a communicator.
type Comm struct {
	rank int
	size int
	w    *world
}

// world holds the shared channel fabric.
type world struct {
	size int
	// chans[from*size+to] carries messages from->to.
	chans []chan message
	// reduction fabric: one slot per rank, guarded rendezvous.
	redMu   sync.Mutex
	redCond *sync.Cond
	redVals []float64
	redIn   int
	redOut  int
	redRes  float64
	redGen  int
}

// Run executes f on `size` ranks concurrently and waits for all of them.
// The first non-nil error is returned (all ranks still run to
// completion; a rank erroring early while others wait on communication
// from it will deadlock, as real MPI does — keep rank programs SPMD).
func Run(size int, f func(c *Comm) error) error {
	if size < 1 {
		return fmt.Errorf("mpi: size %d < 1", size)
	}
	w := &world{size: size}
	w.redCond = sync.NewCond(&w.redMu)
	w.redVals = make([]float64, size)
	w.chans = make([]chan message, size*size)
	for i := range w.chans {
		// Buffered so symmetric neighbor exchanges (everyone sends, then
		// everyone receives) cannot deadlock.
		w.chans[i] = make(chan message, 8)
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = f(&Comm{rank: rank, size: size, w: w})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Rank returns this rank's id in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// Send delivers a copy of data to rank `to` with the given tag.
func (c *Comm) Send(to, tag int, data []float64) {
	cp := make([]float64, len(data))
	copy(cp, data)
	c.w.chans[c.rank*c.size+to] <- message{tag: tag, data: cp}
}

// Recv receives the next message from rank `from`; the tag must match
// (messages between a pair are ordered, so SPMD programs with matching
// send/recv sequences never mismatch).
func (c *Comm) Recv(from, tag int) ([]float64, error) {
	m := <-c.w.chans[from*c.size+c.rank]
	if m.tag != tag {
		return nil, fmt.Errorf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, from, m.tag)
	}
	return m.data, nil
}

// AllReduceSum returns the sum of x across all ranks (a synchronizing
// collective).
func (c *Comm) AllReduceSum(x float64) float64 {
	return c.allReduce(x, func(vals []float64) float64 {
		var s float64
		for _, v := range vals {
			s += v
		}
		return s
	})
}

// AllReduceMax returns the maximum of x across all ranks.
func (c *Comm) AllReduceMax(x float64) float64 {
	return c.allReduce(x, func(vals []float64) float64 {
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m
	})
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() { c.allReduce(0, func([]float64) float64 { return 0 }) }

// allReduce is a generation-counted rendezvous: every rank deposits a
// value; the last one in computes the result; everyone leaves together.
func (c *Comm) allReduce(x float64, combine func([]float64) float64) float64 {
	w := c.w
	w.redMu.Lock()
	defer w.redMu.Unlock()
	// Wait for the previous reduction to fully drain.
	for w.redOut > 0 {
		w.redCond.Wait()
	}
	gen := w.redGen
	w.redVals[c.rank] = x
	w.redIn++
	if w.redIn == w.size {
		w.redRes = combine(w.redVals)
		w.redIn = 0
		w.redOut = w.size
		w.redGen++
		w.redCond.Broadcast()
	} else {
		for w.redGen == gen {
			w.redCond.Wait()
		}
	}
	res := w.redRes
	w.redOut--
	if w.redOut == 0 {
		w.redCond.Broadcast()
	}
	return res
}
