package mpi

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"petscfun3d/internal/faults"
)

// TestWatchdogReportsDeadlock deadlocks two ranks on purpose (each
// receives a message the other never sends) and requires the watchdog
// to cancel the world with a per-rank state report instead of hanging
// the test binary.
func TestWatchdogReportsDeadlock(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		peer := 1 - c.Rank()
		_, err := c.Recv(peer, TagHalo)
		return err
	}, Options{WatchdogTimeout: 100 * time.Millisecond})
	var we *WorldError
	if !errors.As(err, &we) {
		t.Fatalf("want *WorldError, got %v", err)
	}
	if we.Rank != -1 {
		t.Errorf("watchdog error blames rank %d, want -1", we.Rank)
	}
	if !strings.Contains(we.Error(), "watchdog") {
		t.Errorf("error does not mention the watchdog: %v", we)
	}
	if len(we.Ranks) != 2 {
		t.Fatalf("state report covers %d ranks, want 2", len(we.Ranks))
	}
	for _, rs := range we.Ranks {
		if !strings.Contains(rs.Op, "recv") {
			t.Errorf("rank %d state %q does not show the blocked recv", rs.Rank, rs.Op)
		}
	}
}

// TestWatchdogToleratesSlowCompute: a long compute pause without
// communication must not trip the watchdog as long as it is shorter
// than the timeout.
func TestWatchdogToleratesSlowCompute(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			time.Sleep(60 * time.Millisecond)
			c.Send(1, TagHalo, []float64{1})
			return nil
		}
		_, err := c.Recv(0, TagHalo)
		return err
	}, Options{WatchdogTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatalf("watchdog fired on a slow-but-live world: %v", err)
	}
}

// TestPanicContainment: one rank's panic must cancel the world and
// surface as a structured error naming the rank — peers blocked in
// receives unwind instead of deadlocking.
func TestPanicContainment(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaboom")
		}
		// Ranks 0 and 2 wait for a message rank 1 will never send.
		_, err := c.Recv(1, TagHalo)
		return err
	}, Options{WatchdogTimeout: 5 * time.Second})
	var we *WorldError
	if !errors.As(err, &we) {
		t.Fatalf("want *WorldError, got %v", err)
	}
	if we.Rank != 1 {
		t.Errorf("blamed rank %d, want 1", we.Rank)
	}
	if we.PanicValue != "kaboom" {
		t.Errorf("panic value %v, want kaboom", we.PanicValue)
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("error does not say panicked: %v", err)
	}
}

// TestInjectedPanicStructuredError: the faults plan's panic profile must
// come back as a structured world error naming the seed-chosen rank,
// never a hung or crashed test.
func TestInjectedPanicStructuredError(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		plan := faults.NewPlan(seed, faults.ProfilePanic)
		err := Run(4, func(c *Comm) error {
			// Enough collectives that every rank passes the panic window.
			for i := 0; i < 80; i++ {
				c.AllReduceSum(float64(c.Rank()))
			}
			return nil
		}, Options{Faults: plan, WatchdogTimeout: 10 * time.Second})
		var we *WorldError
		if !errors.As(err, &we) {
			t.Fatalf("seed %d: want *WorldError, got %v", seed, err)
		}
		ip, ok := we.PanicValue.(faults.InjectedPanic)
		if !ok {
			t.Fatalf("seed %d: panic value %T, want faults.InjectedPanic", seed, we.PanicValue)
		}
		if ip.Rank != we.Rank || ip.Seed != seed {
			t.Errorf("seed %d: injected panic %+v vs blamed rank %d", seed, ip, we.Rank)
		}
		if !strings.Contains(err.Error(), "injected panic") {
			t.Errorf("seed %d: error does not identify the injection: %v", seed, err)
		}
	}
}

// TestEarlyReturnWithInflightRequests is the satellite-1 regression: a
// rank returning nil with a nonblocking request still in flight used to
// strand its peer on the ticket chain forever; now it must fail loudly.
func TestEarlyReturnWithInflightRequests(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.IRecv(1, TagHalo) // never waited, never matched
			return nil
		}
		return nil
	}, Options{WatchdogTimeout: 5 * time.Second})
	var we *WorldError
	if !errors.As(err, &we) {
		t.Fatalf("want *WorldError, got %v", err)
	}
	if we.Rank != 0 {
		t.Errorf("blamed rank %d, want 0", we.Rank)
	}
	if !strings.Contains(err.Error(), "in flight") {
		t.Errorf("error does not mention the in-flight request: %v", err)
	}
}

// TestRankErrorCancelsWorld: a rank returning an error must cancel the
// world so a peer blocked on it unwinds, and Run must still report the
// original error verbatim rather than the peer's secondary abort.
func TestRankErrorCancelsWorld(t *testing.T) {
	boom := errors.New("boom")
	start := time.Now()
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		_, err := c.Recv(1, TagHalo) // blocked until cancellation
		return err
	}, Options{WatchdogTimeout: 30 * time.Second})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("cancellation took %v; the peer sat blocked", e)
	}
}

// TestSendUnblocksOnCancel: a Send blocked on a full fabric must unwind
// once the world is cancelled (it has no error return; the abort is
// absorbed by Run).
func TestSendUnblocksOnCancel(t *testing.T) {
	boom := errors.New("peer gave up")
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; ; i++ { // fill the pair until Send blocks
				c.Send(1, TagHalo, []float64{float64(i)})
			}
		}
		time.Sleep(20 * time.Millisecond) // let rank 0 hit the full fabric
		return boom
	}, Options{ChanCap: 2, WatchdogTimeout: 30 * time.Second})
	if !errors.Is(err, boom) {
		t.Fatalf("want the peer's error, got %v", err)
	}
}

// TestReductionGenerationsUnderJitter is the satellite-2 regression: a
// rank re-entering the collective fabric while a jitter-delayed rank is
// still reading the previous generation must never observe the wrong
// generation's value. The double-buffered result slots make this safe
// without serializing on a full drain; the race detector plus the exact
// per-round values check both directions.
func TestReductionGenerationsUnderJitter(t *testing.T) {
	const rounds = 300
	for seed := int64(1); seed <= 3; seed++ {
		plan := faults.NewPlan(seed, faults.ProfileJitter)
		plan.JitterEvery = 2 // jitter hard: every other operation sleeps
		plan.JitterMax = 50 * time.Microsecond
		err := Run(4, func(c *Comm) error {
			for i := 0; i < rounds; i++ {
				x := float64(i*10 + c.Rank())
				sum := c.AllReduceSum(x)
				wantSum := float64(4*10*i + 0 + 1 + 2 + 3)
				if sum != wantSum {
					return fmt.Errorf("round %d rank %d: sum %v, want %v (wrong generation observed)", i, c.Rank(), sum, wantSum)
				}
				max := c.AllReduceMax(x)
				if want := float64(i*10 + 3); max != want {
					return fmt.Errorf("round %d rank %d: max %v, want %v", i, c.Rank(), max, want)
				}
				if i%32 == 0 {
					c.Barrier()
				}
			}
			return nil
		}, Options{Faults: plan, WatchdogTimeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestAllGather checks the gather collective all halo negotiation rides
// on: every rank sees every deposit, indexed by rank, repeatedly, and
// may reuse its buffer immediately after the call.
func TestAllGather(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		buf := make([]float64, c.Rank()+1)
		for round := 0; round < 50; round++ {
			for i := range buf {
				buf[i] = float64(100*round + 10*c.Rank() + i)
			}
			got := c.AllGather(buf)
			for i := range buf { // reuse immediately: gathered copies must not alias
				buf[i] = -1
			}
			if len(got) != 3 {
				return fmt.Errorf("gathered %d ranks", len(got))
			}
			for r, vals := range got {
				if len(vals) != r+1 {
					return fmt.Errorf("round %d: rank %d deposit has %d values, want %d", round, r, len(vals), r+1)
				}
				for i, v := range vals {
					if want := float64(100*round + 10*r + i); v != want {
						return fmt.Errorf("round %d: got[%d][%d] = %v, want %v", round, r, i, v, want)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChaosTimingFaultsPreserveMessaging soaks the point-to-point plus
// collective protocol under mixed timing faults: payloads and match
// order must be exactly what the fault-free run produces.
func TestChaosTimingFaultsPreserveMessaging(t *testing.T) {
	run := func(plan *faults.Plan) ([]float64, error) {
		sums := make([]float64, 4)
		var opts Options
		opts.WatchdogTimeout = 30 * time.Second
		if plan != nil {
			opts.Faults = plan
		}
		err := Run(4, func(c *Comm) error {
			left := (c.Rank() + 3) % 4
			right := (c.Rank() + 1) % 4
			acc := float64(c.Rank())
			for i := 0; i < 40; i++ {
				rr := c.IRecv(right, TagHalo)
				sr := c.ISend(left, TagHalo, []float64{acc, float64(i)})
				got, err := rr.Wait()
				if err != nil {
					return err
				}
				if _, err := sr.Wait(); err != nil {
					return err
				}
				acc = got[0] + 1
				if got[1] != float64(i) {
					return fmt.Errorf("rank %d round %d: matched message from round %v", c.Rank(), i, got[1])
				}
				acc = c.AllReduceSum(acc) / 4
			}
			sums[c.Rank()] = acc
			return nil
		}, opts)
		return sums, err
	}
	clean, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		plan := faults.NewPlan(seed, faults.ProfileMixed)
		plan.StallLen = 2 * time.Millisecond
		chaos, err := run(plan)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for r := range clean {
			if chaos[r] != clean[r] {
				t.Fatalf("seed %d rank %d: %v != fault-free %v (timing faults changed numerics)", seed, r, chaos[r], clean[r])
			}
		}
		skew := plan.SkewSeconds()
		var total float64
		for _, s := range skew {
			total += s
		}
		if total <= 0 {
			t.Errorf("seed %d: mixed profile injected no skew", seed)
		}
	}
}

// TestStallProfileCompletes: a stalled rank is slow, not dead — the
// watchdog must not shoot it and the run must finish clean.
func TestStallProfileCompletes(t *testing.T) {
	plan := faults.NewPlan(9, faults.ProfileStall)
	plan.StallLen = 20 * time.Millisecond
	err := Run(2, func(c *Comm) error {
		for i := 0; i < 80; i++ {
			c.AllReduceSum(1)
		}
		return nil
	}, Options{Faults: plan, WatchdogTimeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("stall profile killed the run: %v", err)
	}
	var skew float64
	for _, s := range plan.SkewSeconds() {
		skew += s
	}
	if skew < plan.StallLen.Seconds()*0.99 {
		t.Errorf("stall skew %v below the injected %v", skew, plan.StallLen)
	}
}

// TestReusedFaultPlanRejected: a Plan blurs two worlds' accounting if
// reused; Run must refuse it.
func TestReusedFaultPlanRejected(t *testing.T) {
	plan := faults.NewPlan(1, faults.ProfileNone)
	if err := Run(2, func(c *Comm) error { return nil }, Options{Faults: plan}); err != nil {
		t.Fatal(err)
	}
	err := Run(2, func(c *Comm) error { return nil }, Options{Faults: plan})
	if err == nil || !strings.Contains(err.Error(), "armed") {
		t.Fatalf("reused plan accepted: %v", err)
	}
}
