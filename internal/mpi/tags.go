package mpi

// Tag classifies point-to-point messages. Tags are a protocol contract,
// not free-form integers: a send posted with one tag and matched by a
// receive expecting another poisons the pair's ordered stream (see
// Recv), so every tag in the repository lives in the registry below and
// the tagconst analyzer (internal/lint) rejects ad-hoc literals and
// runtime-computed tags outside it. Constructing a Tag anywhere but
// this file is a lint finding; tests may convert freely.
type Tag int

// The tag registry: one constant per wire protocol. Each tag must be
// used by at least one send site and one receive site (or flow into a
// plan constructor that posts both sides) — tagconst reports
// asymmetric use, since a one-sided tag is how communicator pairs get
// poisoned.
const (
	// TagPlan carries halo plan negotiation: the need-lists ranks
	// exchange at partition setup (dist.negotiateHalo).
	TagPlan Tag = 1 + iota
	// TagHalo carries ghost scatter payloads: the packed boundary
	// values of the persistent halo exchange (dist.Halo).
	TagHalo
)
