package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"

	"petscfun3d/internal/ilu"
	"petscfun3d/internal/krylov"
	"petscfun3d/internal/mesh"
	"petscfun3d/internal/par"
	"petscfun3d/internal/prof"
	"petscfun3d/internal/sparse"
)

// OrthoRow is one (restart, mechanism, threads) cell of the measured
// orthogonalization study: iteration/traffic/synchronization counts for
// a fixed-length GMRES run plus best-of-reps wall seconds.
type OrthoRow struct {
	Restart    int
	Mechanism  string
	Threads    int
	Iterations int
	InnerProds int
	Reductions int
	// RoundsPerIt is synchronizing reduction rounds per inner iteration
	// (pool barriers here; global reduction rounds in internal/dist) —
	// the latency term the fused one-pass mechanisms collapse.
	RoundsPerIt float64
	// BytesPerIt is the measured PhaseOrtho memory traffic per inner
	// iteration, from the profiler's cost-formula charges.
	BytesPerIt float64
	// BytesFactor is mgs's BytesPerIt over this row's — the traffic
	// reduction the fusion buys at the same restart and thread count.
	BytesFactor float64
	SolveSec    float64
	// Speedup is mgs's SolveSec over this row's, same restart+threads.
	Speedup float64
}

// OrthoResult is the measured one-pass orthogonalization study: the
// same fixed-work GMRES solve run under mgs (per-vector modified
// Gram-Schmidt), cgs (fused one-pass MDot/MAxpy classical
// Gram-Schmidt), and cgs2 (cgs with selective DGKS reorthogonalization)
// across a thread × restart grid. Every pooled configuration is checked
// bitwise against its own single-thread run before it is timed — the
// fused kernels' determinism contract — so the study fails rather than
// report a speedup that changed the arithmetic.
type OrthoResult struct {
	Vertices int
	B        int
	Cores    int
	Reps     int
	Rows     []OrthoRow
}

// Ortho runs the measured orthogonalization-mechanism scaling study.
func Ortho(size Size) (*OrthoResult, error) {
	nv := pick(size, 2000, 22677, 90000)
	reps := pick(size, 3, 5, 5)
	return OrthoStudy(nv, reps, []int{1, 2, 4, 8}, []int{10, 30})
}

// OrthoStudy runs GMRES(restart) with ILU(0) on one deterministic
// wing-mesh problem (interlaced b=4 BCSR) for every mechanism × thread
// × restart cell. RelTol is zero, so every cell performs exactly
// 2×restart inner iterations — identical vector-kernel work — and the
// traffic and synchronization columns compare like against like.
func OrthoStudy(nv, reps int, workers, restarts []int) (*OrthoResult, error) {
	m, err := mesh.GenerateWingN(nv)
	if err != nil {
		return nil, err
	}
	m = m.Renumber(mesh.RCM(m))
	const b = 4
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	a := sparse.BlockPattern(g, b)
	a.FillDeterministic(101)
	f, err := ilu.Factor(a, ilu.Options{Level: 0})
	if err != nil {
		return nil, err
	}
	n := a.N()
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i) * 0.19)
	}
	x := make([]float64, n)
	res := &OrthoResult{Vertices: m.NumVertices(), B: b,
		Cores: runtime.GOMAXPROCS(0), Reps: reps}

	solve := func(p *par.Pool, restart int, mech string) (krylov.Stats, error) {
		op := krylov.OperatorFunc(func(x, y []float64) { a.MulVecPar(p, x, y) })
		pc := krylov.PrecondFunc(func(r, z []float64) { f.SolvePar(p, r, z) })
		for i := range x {
			x[i] = 0
		}
		// RelTol 0 never converges: the run is a fixed two full restart
		// cycles of orthogonalization work, not a convergence race.
		return krylov.Solve(op, pc, rhs, x, krylov.Options{
			Restart: restart, MaxIters: 2 * restart, RelTol: 0,
			Orthogonalization: mech, Pool: p,
		})
	}
	// orthoBytes reads the profiler's cumulative PhaseOrtho traffic; the
	// measurement below takes a before/after difference so an
	// already-enabled profiler (benchtables -profile-json) keeps its
	// accumulated history.
	orthoBytes := func() int64 {
		for _, st := range prof.Default.Report(0).Phases {
			if st.Phase == prof.PhaseOrtho.String() {
				return st.Bytes
			}
		}
		return 0
	}

	type cell struct{ restart, threads int }
	mgsBytes := map[cell]float64{}
	mgsSec := map[cell]float64{}
	for _, restart := range restarts {
		for _, mech := range []string{"mgs", "cgs", "cgs2"} {
			// Single-thread reference for the bitwise determinism check.
			ref, err := solve(nil, restart, mech)
			if err != nil {
				return nil, err
			}
			refX := append([]float64(nil), x...)
			for _, nt := range workers {
				var p *par.Pool
				if nt > 1 {
					p = par.New(nt)
				}
				st, err := solve(p, restart, mech)
				if err != nil {
					p.Close()
					return nil, err
				}
				if st.Iterations != ref.Iterations || st.Reductions != ref.Reductions {
					p.Close()
					return nil, fmt.Errorf("experiments: %s restart=%d at %d threads took %d iterations / %d reductions, single-thread took %d / %d",
						mech, restart, nt, st.Iterations, st.Reductions, ref.Iterations, ref.Reductions)
				}
				for i := range refX {
					if x[i] != refX[i] {
						p.Close()
						return nil, fmt.Errorf("experiments: %s restart=%d solution at %d threads differs bitwise from single-thread at %d",
							mech, restart, nt, i)
					}
				}
				wasEnabled := prof.Default.Enabled()
				if !wasEnabled {
					prof.Default.Enable()
				}
				before := orthoBytes()
				if _, err := solve(p, restart, mech); err != nil {
					p.Close()
					return nil, err
				}
				bytes := orthoBytes() - before
				if !wasEnabled {
					prof.Default.Disable()
				}
				sec := bestOf(reps, func() {
					_, _ = solve(p, restart, mech) // validated above; the timing loop repeats the same call
				})
				p.Close()
				res.Rows = append(res.Rows, OrthoRow{
					Restart: restart, Mechanism: mech, Threads: nt,
					Iterations: st.Iterations, InnerProds: st.InnerProds,
					Reductions:  st.Reductions,
					RoundsPerIt: float64(st.Reductions) / float64(st.Iterations),
					BytesPerIt:  float64(bytes) / float64(st.Iterations),
					SolveSec:    sec,
				})
			}
		}
	}
	for i := range res.Rows {
		r := &res.Rows[i]
		c := cell{r.Restart, r.Threads}
		if r.Mechanism == "mgs" {
			mgsBytes[c], mgsSec[c] = r.BytesPerIt, r.SolveSec
		}
	}
	for i := range res.Rows {
		r := &res.Rows[i]
		c := cell{r.Restart, r.Threads}
		r.BytesFactor = mgsBytes[c] / r.BytesPerIt
		r.Speedup = mgsSec[c] / r.SolveSec
	}
	return res, nil
}

// Render formats the measured orthogonalization study.
func (t *OrthoResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "One-pass orthogonalization (measured) — %d vertices, b=%d, GMRES+ILU(0), RelTol=0 (fixed 2×restart iterations), best of %d, %d host cores, bitwise-checked across threads before timing\n",
		t.Vertices, t.B, t.Reps, t.Cores)
	last := -1
	for _, r := range t.Rows {
		if r.Restart != last {
			fmt.Fprintf(&sb, "restart=%d\n", r.Restart)
			fmt.Fprintf(&sb, "%5s %7s | %5s %6s %6s %6s | %11s %6s | %9s %5s\n",
				"mech", "threads", "iters", "dots", "rounds", "rnd/it", "ortho B/it", "vs mgs", "sec", "spd")
			last = r.Restart
		}
		fmt.Fprintf(&sb, "%5s %7d | %5d %6d %6d %6.2f | %11.0f %5.2fx | %8.4fs %5.2f\n",
			r.Mechanism, r.Threads, r.Iterations, r.InnerProds, r.Reductions,
			r.RoundsPerIt, r.BytesPerIt, r.BytesFactor, r.SolveSec, r.Speedup)
	}
	sb.WriteString("mgs streams the work vector per basis vector and synchronizes j+2 times per iteration;\n" +
		"cgs/cgs2 make one fused MDot pass and one fused MAxpy sweep (cgs2 adds a selective DGKS\n" +
		"pass), so traffic and barrier counts — the paper's reduction/latency terms — collapse.\n")
	return sb.String()
}

// WriteCSV writes the study as plot-ready CSV.
func (t *OrthoResult) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			d(r.Restart), r.Mechanism, d(r.Threads), d(r.Iterations), d(r.InnerProds),
			d(r.Reductions), f(r.RoundsPerIt), f(r.BytesPerIt), f(r.BytesFactor),
			f(r.SolveSec), f(r.Speedup),
		})
	}
	return writeCSV(w, []string{"restart", "mechanism", "threads", "iterations", "inner_prods",
		"reductions", "rounds_per_it", "ortho_bytes_per_it", "bytes_factor_vs_mgs",
		"solve_sec", "speedup_vs_mgs"}, rows)
}
