package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV writers: each figure-type result can dump its series as CSV for
// external plotting (benchtables -csv <dir> writes one file per
// experiment).

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(x float64) string { return strconv.FormatFloat(x, 'g', 10, 64) }
func d(x int) string     { return strconv.Itoa(x) }

// WriteCSV emits the layout sweep.
func (t *Table1Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%v", r.Interlacing), fmt.Sprintf("%v", r.Blocking), fmt.Sprintf("%v", r.Reordering),
			f(r.PerStep.Seconds()), f(r.Ratio), f(r.Modeled), f(r.ModeledRatio),
		})
	}
	return writeCSV(w, []string{"interlacing", "blocking", "reordering",
		"measured_s", "measured_ratio", "modeled_s", "modeled_ratio"}, rows)
}

// WriteCSV emits the miss counters.
func (fig *Figure3Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(fig.Rows))
	for _, r := range fig.Rows {
		rows = append(rows, []string{r.Label, strconv.FormatUint(r.TLBMisses, 10),
			strconv.FormatUint(r.L2Misses, 10)})
	}
	return writeCSV(w, []string{"variant", "tlb_misses", "l2_misses"}, rows)
}

// WriteCSV emits the scaling study (Table 3 / Figure 1 series).
func (t *Table3Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			d(r.Procs), d(r.VerticesPerProc), d(r.LinearIts), f(r.Seconds),
			f(r.Speedup), f(r.EffOverall), f(r.EffAlg), f(r.EffImpl),
			f(r.PctReductions), f(r.PctImplicitSync), f(r.PctScatters),
			f(r.DataPerItGB), f(r.EffBWPerNodeMBs), f(r.Gflops),
		})
	}
	return writeCSV(w, []string{"procs", "verts_per_proc", "linear_its", "seconds",
		"speedup", "eff_overall", "eff_alg", "eff_impl",
		"pct_reductions", "pct_implicit_sync", "pct_scatters",
		"gb_per_it", "eff_mbs_per_node", "gflops"}, rows)
}

// WriteCSV emits the machine comparison series.
func (fig *Figure2Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, st := range fig.Studies {
		for _, r := range st.Rows {
			rows = append(rows, []string{st.Profile, d(r.Procs), f(r.Gflops), f(r.Seconds)})
		}
	}
	return writeCSV(w, []string{"machine", "procs", "gflops", "seconds"}, rows)
}

// WriteCSV emits the partitioner comparison.
func (fig *Figure4Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for i := range fig.KWay.Rows {
		k, p := fig.KWay.Rows[i], fig.PWay.Rows[i]
		rows = append(rows, []string{d(k.Procs), f(k.Seconds), f(k.Speedup),
			f(p.Seconds), f(p.Speedup), d(k.LinearIts), d(p.LinearIts)})
	}
	return writeCSV(w, []string{"procs", "kway_seconds", "kway_speedup",
		"pway_seconds", "pway_speedup", "kway_its", "pway_its"}, rows)
}

// WriteCSV emits the residual histories, one column per CFL series.
func (fig *Figure5Result) WriteCSV(w io.Writer) error {
	header := []string{"step"}
	maxLen := 0
	for _, s := range fig.Series {
		header = append(header, fmt.Sprintf("cfl_%g", s.CFL0))
		if len(s.Residuals) > maxLen {
			maxLen = len(s.Residuals)
		}
	}
	rows := make([][]string, 0, maxLen)
	for i := 0; i < maxLen; i++ {
		row := []string{d(i)}
		for _, s := range fig.Series {
			if i < len(s.Residuals) {
				row = append(row, f(s.Residuals[i]))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	return writeCSV(w, header, rows)
}
