package experiments

import (
	"strings"
	"testing"

	"petscfun3d/internal/faults"
)

func TestChaosSweepShape(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("chaos sweep study is too slow under the race detector")
	}
	seeds := []int64{1, 2}
	res, err := ChaosSweepStudy(1200, 2, faults.ProfileMixed, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if res.CleanSeconds <= 0 || res.CleanIts <= 0 {
		t.Fatalf("clean baseline measured nothing: %+v", res)
	}
	if len(res.Rows) != len(seeds) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(seeds))
	}
	for i, row := range res.Rows {
		if row.Seed != seeds[i] {
			t.Errorf("row %d seed %d, want %d", i, row.Seed, seeds[i])
		}
		// The invariant ChaosEfficiency asserts internally: faults never
		// change numerics, so every run matches the clean iteration count.
		if row.LinearIts != res.CleanIts {
			t.Errorf("row %d iterations %d != clean %d", i, row.LinearIts, res.CleanIts)
		}
		if row.Seconds <= 0 || row.EtaImpl <= 0 {
			t.Errorf("row %d measured nothing: %+v", i, row)
		}
		// The mixed profile always injects some skew at 2 ranks over a
		// full GMRES solve's worth of operations.
		if row.SkewMaxSec <= 0 || row.SkewSumSec < row.SkewMaxSec {
			t.Errorf("row %d skew accounting inconsistent: max %g sum %g", i, row.SkewMaxSec, row.SkewSumSec)
		}
		if row.WaitMaxSec < 0 || row.WaitAvgSec > row.WaitMaxSec*(1+1e-12) {
			t.Errorf("row %d wait accounting inconsistent: max %g avg %g", i, row.WaitMaxSec, row.WaitAvgSec)
		}
	}
	if out := res.Render(); !strings.Contains(out, "η_impl") {
		t.Errorf("render missing header: %q", out)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != len(seeds)+2 {
		t.Errorf("csv has %d lines, want %d", lines, len(seeds)+2)
	}
}

func TestChaosSweepRejectsPanicProfile(t *testing.T) {
	_, err := ChaosSweepStudy(600, 2, faults.ProfilePanic, []int64{1})
	if err == nil || !strings.Contains(err.Error(), "panic profile") {
		t.Fatalf("panic profile accepted: %v", err)
	}
}
