package experiments

import (
	"fmt"
	"strings"

	"petscfun3d/internal/cachesim"
	"petscfun3d/internal/mesh"
	"petscfun3d/internal/sparse"
)

// Figure3Row is one bar group of the paper's Figure 3: simulated TLB and
// secondary-cache misses for a layout combination.
type Figure3Row struct {
	Label       string
	Interlacing bool
	Blocking    bool
	Reordering  bool
	TLBMisses   uint64
	L2Misses    uint64
}

// Figure3Result reproduces Figure 3 with the trace-driven cache/TLB
// simulator standing in for the R10000 hardware counters: one flux sweep
// plus one Jacobian SpMV per combination.
type Figure3Result struct {
	Vertices int
	Rows     []Figure3Row
}

// Figure3 runs the miss-count sweep for the incompressible system (b=4,
// as in the paper's 22,677-vertex incompressible case).
//
// The simulated hierarchy's capacities are chosen so the ratio of cache
// (and TLB) capacity to the flux kernel's working set matches the
// paper's platform: FUN3D carries ~45 auxiliary doubles per vertex
// against our lean 11, so the R10000's 4 MB L2 / 64-entry TLB are scaled
// to 1 MB / 64 entries at the 22,677-vertex size (and proportionally at
// the smoke-test size). One step traces four flux sweeps per Jacobian
// SpMV — in the matrix-free solver the flux phase runs once per matvec
// and dominates, as it does in the paper's profile.
func Figure3(size Size) (*Figure3Result, error) {
	nv := pick(size, 2500, 22677, 22677)
	m, err := mesh.GenerateWingN(nv)
	if err != nil {
		return nil, err
	}
	h := &cachesim.Hierarchy{
		L1:  cachesim.MustCache("L1", pick(size, 8<<10, 32<<10, 32<<10), 32, 2),
		L2:  cachesim.MustCache("L2", pick(size, 96<<10, 1<<20, 1<<20), 128, 2),
		TLB: cachesim.MustCache("TLB", pick(size, 8, 64, 64)*16<<10, 16<<10, pick(size, 8, 64, 64)),
	}
	const fluxSweeps = 4
	m = m.Renumber(mesh.RCM(m))
	b := 4
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	res := &Figure3Result{Vertices: m.NumVertices()}
	combos := []struct {
		label                 string
		inter, block, reorder bool
	}{
		{"NOER/noninterlaced", false, false, false},
		{"NOER/interlaced", true, false, false},
		{"NOER/interlaced+blocked", true, true, false},
		{"reordered/noninterlaced", false, false, true},
		{"reordered/interlaced", true, false, true},
		{"reordered/interlaced+blocked", true, true, true},
	}
	sorted := mesh.SortEdges(m.Edges)
	colored, _ := mesh.ColorEdges(mesh.ScrambleEdges(m.Edges, 12345), m.NumVertices())
	for _, c := range combos {
		h.Reset()
		as := cachesim.NewAddressSpace()
		layout := sparse.NonInterlaced
		if c.inter {
			layout = sparse.Interlaced
		}
		edges := colored
		if c.reorder {
			edges = sorted
		}
		floc := cachesim.PlaceFlux(as, m.NumVertices(), b, layout)
		for s := 0; s < fluxSweeps; s++ {
			cachesim.TraceFlux(h, edges, floc)
		}
		if c.block {
			a := sparse.BlockPattern(g, b)
			cachesim.TraceBCSRSpMV(h, a, cachesim.PlaceBCSR(as, a, false))
		} else {
			a := sparse.ScalarPattern(g, b, layout)
			cachesim.TraceCSRSpMV(h, a, cachesim.PlaceCSR(as, a))
		}
		cnt := h.Counters()
		res.Rows = append(res.Rows, Figure3Row{
			Label: c.label, Interlacing: c.inter, Blocking: c.block, Reordering: c.reorder,
			TLBMisses: cnt.TLBMisses, L2Misses: cnt.L2Misses,
		})
	}
	return res, nil
}

// Render formats the simulated miss counts.
func (f *Figure3Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3 — simulated TLB and L2 misses, %d vertices (four flux sweeps + one SpMV)\n", f.Vertices)
	fmt.Fprintf(&sb, "%-30s %15s %15s\n", "variant", "TLB misses", "L2 misses")
	for _, r := range f.Rows {
		fmt.Fprintf(&sb, "%-30s %15d %15d\n", r.Label, r.TLBMisses, r.L2Misses)
	}
	return sb.String()
}
