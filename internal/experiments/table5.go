package experiments

import (
	"fmt"
	"strings"

	"petscfun3d/internal/core"
	"petscfun3d/internal/perfmodel"
)

// Table5Row is one node count of the paper's Table 5.
type Table5Row struct {
	Nodes    int
	Threads1 float64 // 1 thread/node (baseline), seconds
	Threads2 float64 // 2 OpenMP-style threads/node
	MPI1     float64 // 1 MPI rank/node (same as Threads1 baseline structure)
	MPI2     float64 // 2 MPI ranks/node
}

// Table5Result reproduces Table 5: function (flux) evaluations only,
// exploiting the node's second processor by threading versus by a second
// MPI rank, on the ASCI Red profile. At small node counts the two are
// comparable (threads pay the private-array gather); at large node
// counts threads win because doubling the rank count inflates redundant
// surface work and message counts.
type Table5Result struct {
	Vertices int
	Evals    int
	Rows     []Table5Row
}

// Table5 runs the hybrid-programming-model comparison.
func Table5(size Size) (*Table5Result, error) {
	nv := pick(size, 4000, 45000, 180000)
	nodes := pick(size, []int{8, 32}, []int{64, 256, 512}, []int{256, 2560, 3072})
	evals := pick(size, 20, 100, 100)
	res := &Table5Result{Evals: evals}
	for _, n := range nodes {
		cfg := core.DefaultConfig()
		cfg.TargetVertices = nv
		cfg.Profile = perfmodel.ASCIRed
		row := Table5Row{Nodes: n}
		var err error
		if row.Threads1, err = core.FluxPhaseTime(cfg, n, 1, 1, evals); err != nil {
			return nil, err
		}
		if row.Threads2, err = core.FluxPhaseTime(cfg, n, 1, 2, evals); err != nil {
			return nil, err
		}
		row.MPI1 = row.Threads1
		if row.MPI2, err = core.FluxPhaseTime(cfg, n, 2, 1, evals); err != nil {
			return nil, err
		}
		p, err := core.Build(cfg)
		if err != nil {
			return nil, err
		}
		res.Vertices = p.Mesh.NumVertices()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the result like the paper's Table 5.
func (t *Table5Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 5 — flux phase only (%d evals), %d vertices, ASCI Red profile (modeled)\n",
		t.Evals, t.Vertices)
	fmt.Fprintf(&sb, "%6s | %22s | %22s\n", "", "MPI/OpenMP thr/node", "MPI procs/node")
	fmt.Fprintf(&sb, "%6s | %10s %10s | %10s %10s\n", "Nodes", "1", "2", "1", "2")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%6d | %9.3fs %9.3fs | %9.3fs %9.3fs\n",
			r.Nodes, r.Threads1, r.Threads2, r.MPI1, r.MPI2)
	}
	return sb.String()
}
