package experiments

import (
	"fmt"
	"strings"

	"petscfun3d/internal/core"
	"petscfun3d/internal/perfmodel"
)

// Table4Cell is one (overlap, fill, procs) configuration.
type Table4Cell struct {
	Procs     int
	Fill      int
	Overlap   int
	Seconds   float64 // modeled
	LinearIts int
}

// Table4Result reproduces Table 4: the additive Schwarz design space —
// subdomain overlap 0..2 crossed with ILU fill level 0..2 at several
// processor counts, GMRES(20). Overlap and fill cut iteration counts but
// cost memory, communication, and per-iteration work; the paper finds
// ILU(1) with zero overlap best at scale.
type Table4Result struct {
	Vertices int
	Cells    []Table4Cell
}

// Table4 runs the sweep on the ASCI Red profile.
func Table4(size Size) (*Table4Result, error) {
	nv := pick(size, 3000, 30000, 89000)
	procs := pick(size, []int{4, 8}, []int{16, 32, 64}, []int{16, 32, 64})
	res := &Table4Result{}
	for _, fill := range []int{0, 1, 2} {
		for _, p := range procs {
			for _, ov := range []int{0, 1, 2} {
				cfg := core.DefaultConfig()
				cfg.TargetVertices = nv
				cfg.Ranks = p
				cfg.Profile = perfmodel.ASCIRed
				cfg.FillLevel = fill
				cfg.Overlap = ov
				cfg.Newton.Krylov.Restart = 20
				cfg.Newton.RelTol = 1e-6
				cfg.Newton.MaxSteps = pick(size, 40, 60, 60)
				out, err := core.RunParallel(cfg)
				if err != nil {
					return nil, err
				}
				res.Vertices = out.Problem.Mesh.NumVertices()
				res.Cells = append(res.Cells, Table4Cell{
					Procs: p, Fill: fill, Overlap: ov,
					Seconds:   out.Report.Elapsed,
					LinearIts: out.Newton.TotalLinearIts,
				})
			}
		}
	}
	return res, nil
}

// Cell returns the cell for (procs, fill, overlap), nil when absent.
func (t *Table4Result) Cell(procs, fill, overlap int) *Table4Cell {
	for i := range t.Cells {
		c := &t.Cells[i]
		if c.Procs == procs && c.Fill == fill && c.Overlap == overlap {
			return c
		}
	}
	return nil
}

// Render formats the sweep in the paper's three-panel layout.
func (t *Table4Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 4 — ASM overlap × ILU fill, %d vertices, GMRES(20), ASCI Red profile (modeled)\n", t.Vertices)
	procsSeen := []int{}
	for _, c := range t.Cells {
		found := false
		for _, p := range procsSeen {
			if p == c.Procs {
				found = true
			}
		}
		if !found {
			procsSeen = append(procsSeen, c.Procs)
		}
	}
	for _, fill := range []int{0, 1, 2} {
		fmt.Fprintf(&sb, "ILU(%d):\n", fill)
		fmt.Fprintf(&sb, "  %6s", "Procs")
		for _, ov := range []int{0, 1, 2} {
			fmt.Fprintf(&sb, " | %10s %7s", fmt.Sprintf("ovl=%d time", ov), "its")
		}
		sb.WriteString("\n")
		for _, p := range procsSeen {
			fmt.Fprintf(&sb, "  %6d", p)
			for _, ov := range []int{0, 1, 2} {
				if c := t.Cell(p, fill, ov); c != nil {
					fmt.Fprintf(&sb, " | %9.1fs %7d", c.Seconds, c.LinearIts)
				} else {
					fmt.Fprintf(&sb, " | %10s %7s", "—", "—")
				}
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
