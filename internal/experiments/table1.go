package experiments

import (
	"fmt"
	"strings"
	"time"

	"petscfun3d/internal/cachesim"
	"petscfun3d/internal/euler"
	"petscfun3d/internal/ilu"
	"petscfun3d/internal/mesh"
	"petscfun3d/internal/sparse"
)

// Table1Row is one layout-enhancement combination of the paper's Table 1.
type Table1Row struct {
	Interlacing bool
	Blocking    bool
	Reordering  bool
	// PerStep is the measured wall-clock time of one representative
	// pseudo-timestep of kernel work on the host.
	PerStep time.Duration
	Ratio   float64 // baseline measured time / this measured time
	// Modeled is the same step's time on the paper's 250 MHz R10000,
	// from the trace-driven simulator and per-miss penalties — the
	// paper's memory-centric model. Modern hosts hide part of the
	// locality effects behind large caches; the modeled column restores
	// the era's balance.
	Modeled      float64
	ModeledRatio float64
}

// Table1Result reproduces Table 1 for one flow system: one flux
// evaluation plus a fixed number of Jacobian SpMVs and preconditioner
// triangular solves per step, under each combination of field
// interlacing, structural blocking, and edge reordering — measured on
// the host and modeled on the R10000.
type Table1Result struct {
	System   string
	Vertices int
	Rows     []Table1Row
}

// layoutVariant bundles the kernels of one enhancement combination.
type layoutVariant struct {
	flux    func()
	spmv    func()
	trisolv func()
	trace   func(h *cachesim.Hierarchy, fluxEvals, sweeps int)
}

// Table1 measures the layout-enhancement sweep. The paper's six rows are
// reported in its order: baseline; I; I+B; R; I+R; I+B+R.
func Table1(size Size, system string) (*Table1Result, error) {
	nv := pick(size, 2000, 22677, 90000)
	// The paper's profile: the flux phase is ~60% of runtime, the solve
	// kernels the rest. One representative step is therefore several
	// flux sweeps plus a couple of SpMV+triangular-solve pairs.
	fluxEvals := pick(size, 3, 8, 8)
	sweeps := pick(size, 1, 2, 2) // SpMV+solve pairs per step
	reps := pick(size, 2, 7, 7)
	m, err := mesh.GenerateWingN(nv)
	if err != nil {
		return nil, err
	}
	m = m.Renumber(mesh.RCM(m))
	var sys euler.System
	switch system {
	case "incompressible":
		sys = euler.NewIncompressible()
	case "compressible":
		sys = euler.NewCompressible()
	default:
		return nil, fmt.Errorf("experiments: unknown system %q", system)
	}
	res := &Table1Result{System: system, Vertices: m.NumVertices()}
	combos := []struct{ inter, block, reorder bool }{
		{false, false, false},
		{true, false, false},
		{true, true, false},
		{false, false, true},
		{true, false, true},
		{true, true, true},
	}
	h := table1Hierarchy(size)
	pen := cachesim.R10000Penalties()
	for _, c := range combos {
		v, err := buildVariant(m, sys, c.inter, c.block, c.reorder)
		if err != nil {
			return nil, err
		}
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			for f := 0; f < fluxEvals; f++ {
				v.flux()
			}
			for s := 0; s < sweeps; s++ {
				v.spmv()
				v.trisolv()
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		h.Reset()
		v.trace(h, fluxEvals, sweeps)
		res.Rows = append(res.Rows, Table1Row{
			Interlacing: c.inter, Blocking: c.block, Reordering: c.reorder,
			PerStep: best,
			Modeled: pen.Seconds(h.Counters()),
		})
	}
	for i := range res.Rows {
		res.Rows[i].Ratio = res.Rows[0].PerStep.Seconds() / res.Rows[i].PerStep.Seconds()
		res.Rows[i].ModeledRatio = res.Rows[0].Modeled / res.Rows[i].Modeled
	}
	return res, nil
}

// table1Hierarchy matches Figure 3's scaling rationale: capacities sized
// so capacity-to-working-set ratios track the paper's platform.
func table1Hierarchy(size Size) *cachesim.Hierarchy {
	tlb := pick(size, 8, 64, 64)
	return &cachesim.Hierarchy{
		L1:  cachesim.MustCache("L1", pick(size, 8<<10, 32<<10, 32<<10), 32, 2),
		L2:  cachesim.MustCache("L2", pick(size, 96<<10, 1<<20, 1<<20), 128, 2),
		TLB: cachesim.MustCache("TLB", tlb*16<<10, 16<<10, tlb),
	}
}

func buildVariant(m *mesh.Mesh, sys euler.System, inter, block, reorder bool) (*layoutVariant, error) {
	b := sys.B()
	layout := sparse.NonInterlaced
	if inter {
		layout = sparse.Interlaced
	}
	ordering := "colored"
	if reorder {
		ordering = "sorted"
	}
	d, err := euler.NewDiscretization(m, nil, sys, euler.Options{
		Order: 1, Layout: layout, EdgeOrdering: ordering,
	})
	if err != nil {
		return nil, err
	}
	q := d.FreestreamVector()
	r := make([]float64, d.N())
	v := &layoutVariant{flux: func() { d.Residual(q, r) }}

	// Edge stream for the trace, mirroring the discretization's order.
	traceEdges := mesh.SortEdges(m.Edges)
	if !reorder {
		traceEdges, _ = mesh.ColorEdges(mesh.ScrambleEdges(m.Edges, 12345), m.NumVertices())
	}

	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	x := make([]float64, m.NumVertices()*b)
	y := make([]float64, m.NumVertices()*b)
	for i := range x {
		x[i] = 1 + float64(i%7)
	}
	var spmvA *sparse.BCSR // blocked path
	var spmvC *sparse.CSR  // scalar path
	var fact *ilu.Factorization
	switch {
	case block:
		if !inter {
			return nil, fmt.Errorf("experiments: blocking requires interlacing")
		}
		a := sparse.BlockPattern(g, b)
		a.FillDeterministic(7)
		f, err := ilu.Factor(a, ilu.Options{Level: 0})
		if err != nil {
			return nil, err
		}
		spmvA, fact = a, f
		v.spmv = func() { a.MulVec(x, y) }
		v.trisolv = func() { f.Solve(x, y) }
	default:
		blk := sparse.BlockPattern(g, b)
		blk.FillDeterministic(7)
		a := blk.ToCSR()
		if !inter {
			a = sparse.Permute(a, sparse.LayoutPerm(g.NV, b, sparse.NonInterlaced))
		}
		f, err := ilu.Factor(a.ToBCSR1(), ilu.Options{Level: 0})
		if err != nil {
			return nil, err
		}
		spmvC, fact = a, f
		v.spmv = func() { a.MulVec(x, y) }
		v.trisolv = func() { f.Solve(x, y) }
	}
	v.trace = func(h *cachesim.Hierarchy, fluxEvals, sweeps int) {
		as := cachesim.NewAddressSpace()
		floc := cachesim.PlaceFlux(as, m.NumVertices(), b, layout)
		for f := 0; f < fluxEvals; f++ {
			cachesim.TraceFlux(h, traceEdges, floc)
		}
		if spmvA != nil {
			mloc := cachesim.PlaceBCSR(as, spmvA, false)
			iloc := cachesim.PlaceILU(as, fact.NB, fact.B, fact.NNZBlocks(), fact.BytesPerValue())
			for s := 0; s < sweeps; s++ {
				cachesim.TraceBCSRSpMV(h, spmvA, mloc)
				cachesim.TraceILUSolve(h, fact.RowPtr, fact.ColIdx, fact.NB, fact.B, iloc)
			}
		} else {
			mloc := cachesim.PlaceCSR(as, spmvC)
			iloc := cachesim.PlaceILU(as, fact.NB, fact.B, fact.NNZBlocks(), fact.BytesPerValue())
			for s := 0; s < sweeps; s++ {
				cachesim.TraceCSRSpMV(h, spmvC, mloc)
				cachesim.TraceILUSolve(h, fact.RowPtr, fact.ColIdx, fact.NB, fact.B, iloc)
			}
		}
	}
	return v, nil
}

// Render formats the result like the paper's Table 1, with both the
// host-measured and the R10000-modeled columns.
func (t *Table1Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1 — layout enhancements, %s, %d vertices (1 CPU)\n", t.System, t.Vertices)
	fmt.Fprintf(&sb, "%-12s %-9s %-10s | %12s %7s | %13s %7s\n",
		"Interlacing", "Blocking", "Reordering", "measured", "ratio", "R10000 model", "ratio")
	mark := func(b bool) string {
		if b {
			return "x"
		}
		return ""
	}
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-12s %-9s %-10s | %12v %7.2f | %12.3fs %7.2f\n",
			mark(r.Interlacing), mark(r.Blocking), mark(r.Reordering),
			r.PerStep.Round(time.Microsecond), r.Ratio, r.Modeled, r.ModeledRatio)
	}
	return sb.String()
}
