package experiments

import (
	"strings"
	"testing"
)

func TestAblationShape(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("serial experiment driver; too slow under -race (see race_off_test.go)")
	}
	res, err := Ablation(Small)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Baseline.Converged {
		t.Fatal("baseline did not converge")
	}
	if len(res.Rows) < 8 {
		t.Fatalf("only %d rows", len(res.Rows))
	}
	seen := map[string]bool{}
	for _, r := range res.Rows {
		seen[r.Parameter] = true
		if !r.Converged {
			t.Errorf("%s=%s did not converge", r.Parameter, r.Value)
		}
		if r.LinearIts <= 0 || r.FluxEvals <= 0 {
			t.Errorf("%s=%s: empty counters", r.Parameter, r.Value)
		}
	}
	for _, p := range []string{"gmres-restart", "inner-rtol", "ser-exponent", "jacobian-lag", "ilu-fill"} {
		if !seen[p] {
			t.Errorf("parameter %s missing from sweep", p)
		}
	}
	// Tighter inner tolerance must not increase Newton steps, and looser
	// must not decrease linear iterations below... (effects are problem
	// dependent; assert only internal consistency here).
	if !strings.Contains(res.Render(), "ablation") {
		t.Error("render missing header")
	}
}
