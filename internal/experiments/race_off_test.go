//go:build !race

package experiments

// raceDetectorEnabled mirrors the -race build flag for tests: the full
// experiment generators are serial drivers whose 10-20x race slowdown
// would blow the test-binary timeout without exercising any
// concurrency, so the slowest shape tests skip under -race (the
// threaded and message-passing code paths get their race coverage in
// internal/euler, internal/mpi, and internal/dist).
const raceDetectorEnabled = false
