package experiments

import (
	"fmt"
	"strings"

	"petscfun3d/internal/core"
)

// AblationRow is one parameter setting of the ψNKS tuning sweep.
type AblationRow struct {
	Parameter string
	Value     string
	Steps     int
	LinearIts int
	FluxEvals int
	Converged bool
}

// AblationResult sweeps the section 2.4 algorithmic parameters the
// paper's tables do not dedicate a figure to: GMRES restart dimension,
// inner (Krylov) convergence tolerance, the SER exponent, and the
// preconditioner-Jacobian refresh lag. Each is varied alone around the
// baseline; the cost currency is the paper's own (pseudo-timesteps,
// linear iterations, and fine-grid flux evaluations).
type AblationResult struct {
	Vertices int
	Baseline AblationRow
	Rows     []AblationRow
}

// Ablation runs the single-parameter sweeps on the incompressible wing.
func Ablation(size Size) (*AblationResult, error) {
	nv := pick(size, 2500, 22677, 22677)
	run := func(mutate func(*core.Config), param, value string) (AblationRow, error) {
		cfg := core.DefaultConfig()
		cfg.TargetVertices = nv
		cfg.Newton.RelTol = 1e-8
		cfg.Newton.MaxSteps = 200
		if mutate != nil {
			mutate(&cfg)
		}
		out, err := core.RunSequential(cfg)
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Parameter: param, Value: value,
			Steps:     len(out.Newton.Steps),
			LinearIts: out.Newton.TotalLinearIts,
			FluxEvals: out.Newton.TotalFluxEvals,
			Converged: out.Newton.Converged,
		}, nil
	}
	res := &AblationResult{}
	base, err := run(nil, "baseline", "restart=20 rtol=1e-2 p=1.0 lag=1")
	if err != nil {
		return nil, err
	}
	res.Baseline = base
	p, err := core.Build(core.Config{TargetVertices: nv, System: "incompressible", Order: 1, Ranks: 1})
	if err != nil {
		return nil, err
	}
	res.Vertices = p.Mesh.NumVertices()

	type knob struct {
		param  string
		value  string
		mutate func(*core.Config)
	}
	knobs := []knob{
		{"gmres-restart", "10", func(c *core.Config) { c.Newton.Krylov.Restart = 10 }},
		{"gmres-restart", "30", func(c *core.Config) { c.Newton.Krylov.Restart = 30 }},
		{"inner-rtol", "1e-3", func(c *core.Config) { c.Newton.Krylov.RelTol = 1e-3 }},
		{"inner-rtol", "1e-1", func(c *core.Config) { c.Newton.Krylov.RelTol = 1e-1 }},
		{"ser-exponent", "0.75", func(c *core.Config) { c.Newton.SERExponent = 0.75 }},
		{"ser-exponent", "1.5", func(c *core.Config) { c.Newton.SERExponent = 1.5 }},
		{"jacobian-lag", "2", func(c *core.Config) { c.Newton.JacobianLag = 2 }},
		{"jacobian-lag", "4", func(c *core.Config) { c.Newton.JacobianLag = 4 }},
		{"ilu-fill", "1", func(c *core.Config) { c.FillLevel = 1 }},
		{"order-continuation", "switch@1e-2", func(c *core.Config) { c.SwitchOrderAt = 1e-2 }},
		{"orthogonalization", "cgs", func(c *core.Config) { c.Newton.Krylov.Orthogonalization = "cgs" }},
		{"operator", "assembled", func(c *core.Config) { c.Newton.AssembledOperator = true }},
	}
	for _, k := range knobs {
		row, err := run(k.mutate, k.param, k.value)
		if err != nil {
			return nil, fmt.Errorf("%s=%s: %w", k.param, k.value, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the sweep.
func (a *AblationResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ψNKS parameter ablation (section 2.4), %d vertices, incompressible\n", a.Vertices)
	fmt.Fprintf(&sb, "%-18s %-14s | %6s %8s %8s %s\n", "parameter", "value", "steps", "lin its", "flux ev", "conv")
	rows := append([]AblationRow{a.Baseline}, a.Rows...)
	for _, r := range rows {
		conv := "yes"
		if !r.Converged {
			conv = "NO"
		}
		fmt.Fprintf(&sb, "%-18s %-14s | %6d %8d %8d %s\n",
			r.Parameter, r.Value, r.Steps, r.LinearIts, r.FluxEvals, conv)
	}
	return sb.String()
}
