package experiments

import (
	"strings"
	"testing"
)

// TestThreadsShape: the scaling study runs at smoke scale, its
// correctness gates (bitwise tri-solve/SpMV/dot, deterministic flux)
// pass, and the result carries the level-schedule statistics.
func TestThreadsShape(t *testing.T) {
	r, err := ThreadsStudy(600, 2, 2, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(r.Rows))
	}
	if r.Rows[0].Threads != 1 || r.Rows[0].FluxSpeed != 1 || r.Rows[0].TriSpeed != 1 {
		t.Fatalf("baseline row malformed: %+v", r.Rows[0])
	}
	for _, row := range r.Rows {
		if row.FluxSec <= 0 || row.TriSolveSec <= 0 || row.SpMVSec <= 0 || row.DotSec <= 0 {
			t.Fatalf("threads=%d: nonpositive timing %+v", row.Threads, row)
		}
	}
	st := r.Levels
	if st.Rows != r.Vertices || st.FwdLevels < 1 || st.BwdLevels < 1 || st.MaxWidth < 1 {
		t.Fatalf("level stats malformed: %+v", st)
	}
	out := r.Render()
	if !strings.Contains(out, "thread scaling") || !strings.Contains(out, "level schedule") {
		t.Fatalf("render missing headers:\n%s", out)
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != 4 {
		t.Fatalf("csv has %d lines, want 4:\n%s", got, sb.String())
	}
}
