package experiments

import (
	"strings"
	"testing"
)

func TestTable2Shape(t *testing.T) {
	res, err := Table2(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range res.Rows {
		if r.LinearSingle <= 0 || r.LinearDouble <= 0 {
			t.Fatalf("procs=%d: nonpositive linear times", r.Procs)
		}
		// The paper's headline: single-precision storage makes the
		// bandwidth-bound linear solve substantially faster.
		if r.LinearSingle >= r.LinearDouble {
			t.Errorf("procs=%d: single %g not faster than double %g",
				r.Procs, r.LinearSingle, r.LinearDouble)
		}
		if r.TotalSingle >= r.TotalDouble {
			t.Errorf("procs=%d: overall single %g not faster than double %g",
				r.Procs, r.TotalSingle, r.TotalDouble)
		}
		// And the linear solve is a fraction of the total.
		if r.LinearDouble >= r.TotalDouble {
			t.Errorf("procs=%d: linear time exceeds total", r.Procs)
		}
	}
	if !strings.Contains(res.Render(), "Table 2") {
		t.Error("render missing header")
	}
}

func TestTable3Shape(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("serial experiment driver; too slow under -race (see race_off_test.go)")
	}
	res, err := Table3(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Fatal("too few rows")
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.Speedup != 1 || first.EffOverall != 1 {
		t.Error("base row not normalized")
	}
	if last.Speedup <= 1 {
		t.Errorf("no speedup at %d ranks: %g", last.Procs, last.Speedup)
	}
	if last.EffOverall >= 1 {
		t.Errorf("overall efficiency did not degrade: %g", last.EffOverall)
	}
	if last.EffAlg >= 1 {
		t.Errorf("algorithmic efficiency did not degrade: %g", last.EffAlg)
	}
	if last.LinearIts <= first.LinearIts {
		t.Errorf("iterations did not grow: %d -> %d", first.LinearIts, last.LinearIts)
	}
	// Communication volume grows with rank count (the paper: 2.0 GB at
	// 128 ranks to 5.3 GB at 1024).
	if last.DataPerItGB <= first.DataPerItGB {
		t.Errorf("halo volume did not grow: %g -> %g", first.DataPerItGB, last.DataPerItGB)
	}
	out := res.Render()
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "η_overall") {
		t.Error("render incomplete")
	}
	if !strings.Contains(res.Figure1Render(), "Figure 1") {
		t.Error("figure 1 render missing")
	}
}

func TestFigure2Shape(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("serial experiment driver; too slow under -race (see race_off_test.go)")
	}
	res, err := Figure2(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Studies) != 3 {
		t.Fatalf("got %d studies", len(res.Studies))
	}
	names := map[string]bool{}
	for _, st := range res.Studies {
		names[st.Profile] = true
		for _, r := range st.Rows {
			if r.Gflops <= 0 || r.Seconds <= 0 {
				t.Errorf("%s ranks=%d: nonpositive metrics", st.Profile, r.Procs)
			}
		}
	}
	if !names["ASCI Red"] || !names["Cray T3E"] || !names["Blue Pacific"] {
		t.Error("missing a machine")
	}
	if !strings.Contains(res.Render(), "Figure 2") {
		t.Error("render missing header")
	}
}

func TestFigure4KWayWinsAtScale(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("serial experiment driver; too slow under -race (see race_off_test.go)")
	}
	res, err := Figure4(Small)
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.KWay.Rows)
	if n == 0 || len(res.PWay.Rows) != n {
		t.Fatal("mismatched studies")
	}
	// At the largest rank count, k-way should not be slower than p-way
	// (the paper's effect: fragmented perfectly-balanced partitions
	// converge slower).
	k, p := res.KWay.Rows[n-1], res.PWay.Rows[n-1]
	if k.LinearIts > p.LinearIts {
		t.Logf("note: kway its %d > pway its %d at %d ranks (can happen at smoke scale)",
			k.LinearIts, p.LinearIts, k.Procs)
	}
	if !strings.Contains(res.Render(), "Figure 4") {
		t.Error("render missing header")
	}
}

func TestFigure5Shape(t *testing.T) {
	res, err := Figure5(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) < 2 {
		t.Fatal("too few series")
	}
	for _, s := range res.Series {
		if !s.Converged {
			t.Errorf("CFL0=%g did not converge", s.CFL0)
		}
		if len(s.Residuals) < 2 {
			t.Errorf("CFL0=%g: no history", s.CFL0)
		}
		// Monotone-ish: final residual far below initial.
		if s.Residuals[len(s.Residuals)-1] > 1e-6*s.Residuals[0] {
			t.Errorf("CFL0=%g: weak reduction", s.CFL0)
		}
	}
	// Largest CFL converges in the fewest steps on this smooth problem.
	first, last := res.Series[0], res.Series[len(res.Series)-1]
	if last.CFL0 <= first.CFL0 {
		t.Fatal("series not ordered by CFL")
	}
	if last.Steps >= first.Steps {
		t.Errorf("CFL0=%g took %d steps, CFL0=%g took %d; aggressive CFL should win",
			last.CFL0, last.Steps, first.CFL0, first.Steps)
	}
	if !strings.Contains(res.Render(), "Figure 5") {
		t.Error("render missing header")
	}
}

func TestTable4Shape(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("serial experiment driver; too slow under -race (see race_off_test.go)")
	}
	res, err := Table4(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2*3*3 {
		t.Fatalf("got %d cells, want 18", len(res.Cells))
	}
	for _, procs := range []int{4, 8} {
		c00 := res.Cell(procs, 0, 0)
		c01 := res.Cell(procs, 0, 1)
		c10 := res.Cell(procs, 1, 0)
		if c00 == nil || c01 == nil || c10 == nil {
			t.Fatal("missing cells")
		}
		// Overlap reduces iterations; fill reduces iterations.
		if c01.LinearIts > c00.LinearIts {
			t.Errorf("procs=%d: overlap increased iterations %d -> %d",
				procs, c00.LinearIts, c01.LinearIts)
		}
		if c10.LinearIts > c00.LinearIts {
			t.Errorf("procs=%d: fill increased iterations %d -> %d",
				procs, c00.LinearIts, c10.LinearIts)
		}
	}
	if !strings.Contains(res.Render(), "Table 4") {
		t.Error("render missing header")
	}
}

func TestTable5Shape(t *testing.T) {
	res, err := Table5(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatal("too few rows")
	}
	for _, r := range res.Rows {
		// Using the second processor must help, both ways.
		if r.Threads2 >= r.Threads1 {
			t.Errorf("nodes=%d: threads2 %g not faster than 1 %g", r.Nodes, r.Threads2, r.Threads1)
		}
		if r.MPI2 >= r.MPI1 {
			t.Errorf("nodes=%d: mpi2 %g not faster than 1 %g", r.Nodes, r.MPI2, r.MPI1)
		}
	}
	// At the largest node count threads should beat the second MPI rank
	// (the paper's crossover).
	last := res.Rows[len(res.Rows)-1]
	if last.Threads2 > last.MPI2 {
		t.Errorf("nodes=%d: threads %g slower than MPI-2 %g at scale",
			last.Nodes, last.Threads2, last.MPI2)
	}
	if !strings.Contains(res.Render(), "Table 5") {
		t.Error("render missing header")
	}
}

func TestMissModelShape(t *testing.T) {
	res, err := MissModel(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatal("too few rows")
	}
	sawZero, sawPositive := false, false
	var prev float64 = -1
	for _, r := range res.Rows {
		if r.Span < res.CacheDoubleWords {
			if r.Bound != 0 {
				t.Errorf("span %d below capacity has bound %g", r.Span, r.Bound)
			}
			sawZero = true
		}
		if r.Bound > 0 {
			sawPositive = true
		}
		if r.Bound < prev {
			t.Error("bound not monotone in span")
		}
		prev = r.Bound
	}
	if !sawZero || !sawPositive {
		t.Error("sweep did not cross the capacity threshold")
	}
	// Where the bound is zero, simulated conflict misses should be small
	// relative to the access count; where positive, simulation shows
	// real conflict misses too.
	for _, r := range res.Rows {
		if r.Bound > 0 && r.Simulated == 0 {
			t.Errorf("span %d: bound %g but no simulated misses", r.Span, r.Bound)
		}
	}
	if !strings.Contains(res.Render(), "Equations") {
		t.Error("render missing header")
	}
}
