package experiments

import "testing"

func TestTable3MeasuredShape(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("measured scaling study is too slow under the race detector")
	}
	res, err := Table3MeasuredStudy(1200, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.BlockingScatterMaxSec) != 2 ||
		len(res.BlockingScatterAvgSec) != 2 || len(res.WaitMaxFloorSec) != 2 ||
		len(res.BlockingScatterMaxFloorSec) != 2 {
		t.Fatalf("column lengths inconsistent: %+v", res)
	}
	base := res.Rows[0]
	if base.Procs != 2 || base.Speedup != 1 || base.EffOverall != 1 {
		t.Errorf("base row not normalized: %+v", base)
	}
	for i, r := range res.Rows {
		if r.LinearIts <= 0 || r.Seconds <= 0 {
			t.Errorf("row %d measured nothing: %+v", i, r)
		}
		if r.WaitMaxSec <= 0 {
			t.Errorf("row %d recorded no scatter_wait", i)
		}
		if r.PackMaxSec <= 0 {
			t.Errorf("row %d recorded no scatter_pack", i)
		}
		// The decomposition must close.
		if diff := r.EffAlg*r.EffImpl - r.EffOverall; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("row %d: eff_alg*eff_impl != eff_overall (%g)", i, diff)
		}
		if res.BlockingScatterMaxSec[i] <= 0 {
			t.Errorf("row %d blocking baseline recorded no scatter", i)
		}
		if f := res.WaitMaxFloorSec[i]; f <= 0 || f > r.WaitMaxSec*(1+1e-12) {
			t.Errorf("row %d wait floor %g vs chosen-rep max %g", i, f, r.WaitMaxSec)
		}
		if f := res.BlockingScatterMaxFloorSec[i]; f <= 0 || f > res.BlockingScatterMaxSec[i]*(1+1e-12) {
			t.Errorf("row %d blocking floor %g vs chosen-rep max %g", i, f, res.BlockingScatterMaxSec[i])
		}
	}
	if out := res.Render(); len(out) == 0 {
		t.Error("empty render")
	}
}
