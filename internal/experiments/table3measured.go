package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"petscfun3d/internal/dist"
	"petscfun3d/internal/ilu"
	"petscfun3d/internal/mesh"
	"petscfun3d/internal/mpi"
	"petscfun3d/internal/partition"
	"petscfun3d/internal/perfmodel"
	"petscfun3d/internal/prof"
	"petscfun3d/internal/sparse"
)

// Table3MeasuredResult is the measured counterpart of Table 3: the
// η_overall = η_alg · η_impl decomposition computed from real wall-clock
// per-rank phase timings of the distributed GMRES (internal/dist on the
// goroutine MPI runtime), not the virtual-machine model. Each rank
// count is solved twice — once with the overlapped halo exchange and
// once with the blocking pre-overlap scatter — so the table also shows
// the measured scatter-wait shrinking strictly below the old blocking
// scatter total.
type Table3MeasuredResult struct {
	Vertices int
	B        int
	Rows     []perfmodel.EfficiencyRow
	// BlockingScatterMaxSec[i] is the blocking baseline's slowest-rank
	// scatter total (pack + wire + implicit-synchronization wait folded
	// together) at Rows[i].Procs; BlockingScatterAvgSec[i] the mean over
	// ranks. Both come from the baseline's best (lowest slowest-rank
	// total) rep.
	BlockingScatterMaxSec []float64
	BlockingScatterAvgSec []float64
	// WaitMaxFloorSec[i] and BlockingScatterMaxFloorSec[i] are the
	// noise floors — min over reps of the slowest-rank phase cost — of
	// the overlapped scatter_wait and the blocking scatter. The floors
	// are the robust overlapped-vs-blocking comparison: a single rep's
	// max can be inflated by whichever rank the scheduler descheduled
	// worst, and that tail noise exceeds the structural gap.
	WaitMaxFloorSec            []float64
	BlockingScatterMaxFloorSec []float64
	// Prof holds the merged per-rank profilers of each rank count's
	// chosen overlapped rep, so callers can fold the measured
	// scatter_pack / scatter_wait / interior / boundary phases into a
	// larger profile report (fun3d -profile-json does).
	Prof *prof.Profiler
}

// Table3Measured runs the measured efficiency decomposition at the
// canonical rank counts.
func Table3Measured(size Size) (*Table3MeasuredResult, error) {
	nv := pick(size, 1500, 45000, 180000)
	return Table3MeasuredStudy(nv, []int{2, 4, 8})
}

// Table3MeasuredStudy solves one deterministic wing-mesh system (BCSR,
// b=4, block Jacobi ILU(0), k-way partitions) at each rank count and
// reduces the per-rank phase timings into the Table 3 columns.
func Table3MeasuredStudy(nv int, ranks []int) (*Table3MeasuredResult, error) {
	m, err := mesh.GenerateWingN(nv)
	if err != nil {
		return nil, err
	}
	m = m.Renumber(mesh.RCM(m))
	const b = 4
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	a := sparse.BlockPattern(g, b)
	a.FillDeterministic(101)
	rhs := make([]float64, a.N())
	for i := range rhs {
		rhs[i] = math.Sin(float64(i) * 0.19)
	}
	return MeasuredEfficiency(a, g, rhs, ranks)
}

// MeasuredEfficiency is the matrix-level entry point of the measured
// Table 3: it partitions g, solves a·x = rhs with the distributed GMRES
// at each rank count — overlapped, then again with the blocking
// baseline scatter — and reduces the measured per-rank phase timings
// into the efficiency decomposition. fun3d's -profile-json path calls
// it with the real first-order Jacobian.
func MeasuredEfficiency(a *sparse.BCSR, g sparse.Graph, rhs []float64, ranks []int) (*Table3MeasuredResult, error) {
	res := &Table3MeasuredResult{Vertices: g.NV, B: a.B, Prof: prof.New()}
	var runs []perfmodel.MeasuredRun
	var err error
	for _, p := range ranks {
		part, err := partition.KWay(g, p)
		if err != nil {
			return nil, err
		}
		over, its, overFloor, overProf, err := solveMeasured(a, part.Part, rhs, p, false, measureReps)
		if err != nil {
			return nil, err
		}
		runs = append(runs, perfmodel.MeasuredRun{Procs: p, LinearIts: its, Ranks: over})
		res.WaitMaxFloorSec = append(res.WaitMaxFloorSec, overFloor["scatter_wait"])
		res.Prof.Merge(overProf)
		block, _, blockFloor, _, err := solveMeasured(a, part.Part, rhs, p, true, measureReps)
		if err != nil {
			return nil, err
		}
		var maxScatter, sumScatter float64
		for _, r := range block {
			sumScatter += r["scatter"]
			if r["scatter"] > maxScatter {
				maxScatter = r["scatter"]
			}
		}
		res.BlockingScatterMaxSec = append(res.BlockingScatterMaxSec, maxScatter)
		res.BlockingScatterAvgSec = append(res.BlockingScatterAvgSec, sumScatter/float64(p))
		res.BlockingScatterMaxFloorSec = append(res.BlockingScatterMaxFloorSec, blockFloor["scatter"])
	}
	res.Rows, err = perfmodel.DecomposeEfficiency(runs)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// measureReps is how many times each configuration is solved; the rep
// with the smallest slowest-rank total is kept. The solve is
// deterministic, so repeated runs differ only in scheduler and GC
// noise — taking the minimum filters descheduling outliers, which
// matters when the rank goroutines time-slice on few cores.
const measureReps = 5

// solveMeasured runs one distributed GMRES reps times with a profiler
// per rank and returns the least-noisy (lowest slowest-rank total)
// rep's per-rank phase self-seconds, the iteration count, each phase's
// noise floor (the min over reps of the slowest rank's self-seconds in
// that phase), and the chosen rep's merged rank profilers.
func solveMeasured(a *sparse.BCSR, part []int32, rhs []float64, nranks int, noOverlap bool, reps int) ([]perfmodel.RankPhases, int, map[string]float64, *prof.Profiler, error) {
	var best []perfmodel.RankPhases
	var bestProf *prof.Profiler
	bestT := math.Inf(1)
	var bestIts int
	floor := map[string]float64{}
	for rep := 0; rep < reps; rep++ {
		ranks, its, merged, err := solveOnce(a, part, rhs, nranks, noOverlap, mpi.Options{})
		if err != nil {
			return nil, 0, nil, nil, err
		}
		var maxT float64
		repMax := map[string]float64{}
		for _, r := range ranks {
			for ph, v := range r {
				if v > repMax[ph] {
					repMax[ph] = v
				}
			}
			if t := r.Seconds(); t > maxT {
				maxT = t
			}
		}
		for ph, v := range repMax {
			if prev, ok := floor[ph]; !ok || v < prev {
				floor[ph] = v
			}
		}
		if maxT < bestT {
			bestT, best, bestIts, bestProf = maxT, ranks, its, merged
		}
	}
	return best, bestIts, floor, bestProf, nil
}

// solveOnce is a single profiled distributed solve; it returns the
// per-rank phase self-seconds, the iteration count, and the rank
// profilers merged into one. mopts configures the fabric — the chaos
// sweep passes a fault plan, the clean paths pass the zero Options.
func solveOnce(a *sparse.BCSR, part []int32, rhs []float64, nranks int, noOverlap bool, mopts mpi.Options) ([]perfmodel.RankPhases, int, *prof.Profiler, error) {
	profs := make([]*prof.Profiler, nranks)
	for i := range profs {
		profs[i] = prof.New()
		profs[i].Enable()
	}
	var its int
	var itsMu sync.Mutex
	b := a.B
	err := mpi.Run(nranks, func(c *mpi.Comm) error {
		dm, err := dist.NewMatrix(c, a, part)
		if err != nil {
			return err
		}
		dm.Prof = profs[c.Rank()]
		dm.NoOverlap = noOverlap
		solve, err := dm.BlockJacobi(ilu.Options{Level: 0})
		if err != nil {
			return err
		}
		lb := make([]float64, dm.LocalN())
		lx := make([]float64, dm.LocalN())
		for li, gr := range dm.Owned {
			copy(lb[li*b:(li+1)*b], rhs[int(gr)*b:(int(gr)+1)*b])
		}
		st, err := dist.GMRES(dm, solve, lb, lx, dist.GMRESOptions{Restart: 30, MaxIters: 500, RelTol: 1e-8})
		if err != nil {
			return err
		}
		if !st.Converged {
			return fmt.Errorf("experiments: distributed GMRES did not converge at %d ranks (res %g)", nranks, st.ResidualNorm)
		}
		itsMu.Lock()
		its = st.Iterations
		itsMu.Unlock()
		return nil
	}, mopts)
	if err != nil {
		return nil, 0, nil, err
	}
	merged := prof.New()
	out := make([]perfmodel.RankPhases, nranks)
	for i, pp := range profs {
		merged.Merge(pp)
		ph := perfmodel.RankPhases{}
		for _, st := range pp.Report(0).Phases {
			ph[st.Phase] = st.Seconds
		}
		out[i] = ph
	}
	return out, its, merged, nil
}

// Render formats the measured Table 3.
func (t *Table3MeasuredResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 3 (measured) — efficiency decomposition, %d vertices, b=%d, BJacobi+ILU(0), overlapped halo exchange\n",
		t.Vertices, t.B)
	fmt.Fprintf(&sb, "%6s %6s %10s %8s | %9s %7s %7s | %9s %9s %9s | %9s %9s %7s\n",
		"Procs", "Its", "Time", "Speedup", "η_overall", "η_alg", "η_impl",
		"wait max", "wait avg", "pack max", "wait flr", "blk flr", "imbal")
	for i, r := range t.Rows {
		fmt.Fprintf(&sb, "%6d %6d %9.4fs %8.2f | %9.2f %7.2f %7.2f | %8.4fs %8.4fs %8.4fs | %8.4fs %8.4fs %7.2f\n",
			r.Procs, r.LinearIts, r.Seconds, r.Speedup, r.EffOverall, r.EffAlg, r.EffImpl,
			r.WaitMaxSec, r.WaitAvgSec, r.PackMaxSec,
			t.WaitMaxFloorSec[i], t.BlockingScatterMaxFloorSec[i], r.Imbalance)
	}
	sb.WriteString("wait = scatter_wait (the paper's implicit-synchronization sink). flr = min over reps of the\n" +
		"slowest rank's phase cost (scheduler-noise floor); blk flr is the blocking baseline's whole scatter\n" +
		"at the same rank count, which the overlapped wait floor undercuts.\n")
	return sb.String()
}

// WriteCSV writes the measured decomposition as plot-ready CSV.
func (t *Table3MeasuredResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "procs,its,seconds,speedup,eff_overall,eff_alg,eff_impl,wait_max_sec,wait_avg_sec,pack_max_sec,wait_max_floor_sec,blocking_scatter_max_sec,blocking_scatter_avg_sec,blocking_scatter_max_floor_sec,imbalance"); err != nil {
		return err
	}
	for i, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g\n",
			r.Procs, r.LinearIts, r.Seconds, r.Speedup, r.EffOverall, r.EffAlg, r.EffImpl,
			r.WaitMaxSec, r.WaitAvgSec, r.PackMaxSec, t.WaitMaxFloorSec[i],
			t.BlockingScatterMaxSec[i], t.BlockingScatterAvgSec[i],
			t.BlockingScatterMaxFloorSec[i], r.Imbalance); err != nil {
			return err
		}
	}
	return nil
}
