package experiments

import (
	"fmt"
	"strings"

	"petscfun3d/internal/cachesim"
	"petscfun3d/internal/perfmodel"
)

// MissModelRow compares the paper's conflict-miss bound (equations (1)
// and (2)) against trace-driven simulation for one matrix bandwidth.
type MissModelRow struct {
	N         int
	Span      int // matrix bandwidth β (or N for the noninterlaced read)
	Bound     float64
	Simulated uint64
}

// MissModelResult validates the analytical model: for banded matrices of
// growing bandwidth crossing the cache capacity, the bound of equation
// (2) must (a) be zero below capacity, (b) grow once β exceeds capacity,
// and (c) upper-bound (within its resolution) the simulated non-
// compulsory misses on the vector x.
type MissModelResult struct {
	CacheDoubleWords int
	LineDoubleWords  int
	Rows             []MissModelRow
}

// MissModel sweeps bandwidth β for an N-row banded scalar matrix against
// a direct-mapped cache (the model's worst-case conflict assumption).
func MissModel(size Size) (*MissModelResult, error) {
	n := pick(size, 16384, 65536, 131072)
	cacheBytes := pick(size, 16<<10, 64<<10, 128<<10)
	lineBytes := 128
	res := &MissModelResult{
		CacheDoubleWords: cacheBytes / 8,
		LineDoubleWords:  lineBytes / 8,
	}
	spans := []int{
		res.CacheDoubleWords / 4,
		res.CacheDoubleWords / 2,
		res.CacheDoubleWords,
		res.CacheDoubleWords * 3 / 2,
		res.CacheDoubleWords * 2,
		res.CacheDoubleWords * 3,
	}
	for _, span := range spans {
		if span >= n {
			continue
		}
		bound := perfmodel.ConflictMissBound(n, span, res.CacheDoubleWords, res.LineDoubleWords)
		sim := simulateBandedSpMVXMisses(n, span, cacheBytes, lineBytes)
		res.Rows = append(res.Rows, MissModelRow{
			N: n, Span: span, Bound: bound, Simulated: sim,
		})
	}
	return res, nil
}

// simulateBandedSpMVXMisses traces only the x-vector accesses of an SpMV
// on a banded matrix (half-bandwidth span/2, a few diagonals sampled
// across the band) through a direct-mapped cache, returning misses
// beyond the compulsory ones.
func simulateBandedSpMVXMisses(n, span, cacheBytes, lineBytes int) uint64 {
	c := cachesim.MustCache("dm", cacheBytes, lineBytes, 1)
	as := cachesim.NewAddressSpace()
	xBase := as.Alloc(n*8, 64)
	half := span / 2
	// Sample 9 diagonals spread across the band (degree ~ unstructured
	// CFD row density); the exact count scales both bound inputs and
	// trace equally.
	offsets := []int{-half, -3 * half / 4, -half / 2, -half / 4, 0, half / 4, half / 2, 3 * half / 4, half}
	for i := 0; i < n; i++ {
		for _, off := range offsets {
			j := i + off
			if j < 0 || j >= n {
				continue
			}
			c.Access(xBase + uint64(j)*8)
		}
	}
	// Compulsory misses: one per distinct line of x.
	compulsory := uint64((n*8 + lineBytes - 1) / lineBytes)
	if c.Misses <= compulsory {
		return 0
	}
	return c.Misses - compulsory
}

// Render formats the model-vs-simulation comparison.
func (m *MissModelResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Equations (1)/(2) — conflict-miss bound vs simulated x-vector misses\n")
	fmt.Fprintf(&sb, "cache %d doublewords, line %d doublewords, direct-mapped\n",
		m.CacheDoubleWords, m.LineDoubleWords)
	fmt.Fprintf(&sb, "%8s %10s | %14s %14s\n", "N", "span β", "bound", "simulated")
	for _, r := range m.Rows {
		fmt.Fprintf(&sb, "%8d %10d | %14.0f %14d\n", r.N, r.Span, r.Bound, r.Simulated)
	}
	return sb.String()
}
