package experiments

import (
	"fmt"
	"strings"

	"petscfun3d/internal/core"
	"petscfun3d/internal/perfmodel"
)

// Table2Row is one processor count of the paper's Table 2.
type Table2Row struct {
	Procs        int
	LinearDouble float64 // modeled linear-solve seconds, float64 factors
	LinearSingle float64 // modeled linear-solve seconds, float32 factors
	TotalDouble  float64 // modeled overall seconds
	TotalSingle  float64
}

// Table2Result reproduces Table 2: single- vs double-precision storage
// of the ILU preconditioner on an Origin 2000 profile. The triangular
// solves are memory-bandwidth bound, so halving the stored bytes should
// nearly halve the linear-solve time while leaving convergence intact.
type Table2Result struct {
	Vertices int
	Rows     []Table2Row
}

// Table2 runs the precision sweep.
func Table2(size Size) (*Table2Result, error) {
	nv := pick(size, 3000, 30000, 89000)
	procs := pick(size, []int{4, 8}, []int{16, 32, 64, 120}, []int{16, 32, 64, 120})
	res := &Table2Result{}
	for _, p := range procs {
		row := Table2Row{Procs: p}
		for _, single := range []bool{false, true} {
			cfg := core.DefaultConfig()
			cfg.TargetVertices = nv
			cfg.Ranks = p
			cfg.Profile = perfmodel.Origin2000
			cfg.FillLevel = 0
			cfg.SinglePrecision = single
			cfg.Newton.RelTol = 1e-6
			cfg.Newton.MaxSteps = pick(size, 40, 60, 60)
			out, err := core.RunParallel(cfg)
			if err != nil {
				return nil, err
			}
			res.Vertices = out.Problem.Mesh.NumVertices()
			if single {
				row.LinearSingle = out.LinearSolveSeconds
				row.TotalSingle = out.Report.Elapsed
			} else {
				row.LinearDouble = out.LinearSolveSeconds
				row.TotalDouble = out.Report.Elapsed
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the result like the paper's Table 2.
func (t *Table2Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2 — preconditioner storage precision, %d vertices, Origin 2000 profile (modeled)\n", t.Vertices)
	fmt.Fprintf(&sb, "%6s | %12s %12s | %12s %12s\n", "Procs",
		"LinSolve f64", "LinSolve f32", "Overall f64", "Overall f32")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%6d | %11.2fs %11.2fs | %11.2fs %11.2fs\n",
			r.Procs, r.LinearDouble, r.LinearSingle, r.TotalDouble, r.TotalSingle)
	}
	return sb.String()
}
