package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseSize(t *testing.T) {
	for _, s := range []string{"small", "medium", "large"} {
		sz, err := ParseSize(s)
		if err != nil || sz.String() != s {
			t.Errorf("ParseSize(%q) = %v, %v", s, sz, err)
		}
	}
	if _, err := ParseSize("huge"); err == nil {
		t.Error("unknown size accepted")
	}
}

func TestTable1ShapeIncompressible(t *testing.T) {
	res, err := Table1(Small, "incompressible")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(res.Rows))
	}
	if res.Rows[0].Ratio != 1 {
		t.Errorf("baseline ratio = %g", res.Rows[0].Ratio)
	}
	// The fully enhanced variant must beat the baseline.
	last := res.Rows[5]
	if !last.Interlacing || !last.Blocking || !last.Reordering {
		t.Fatal("row order wrong")
	}
	if last.Ratio <= 1 {
		t.Errorf("full enhancements ratio %.2f not > 1", last.Ratio)
	}
	if !strings.Contains(res.Render(), "Table 1") {
		t.Error("render missing header")
	}
}

func TestTable1RejectsUnknownSystem(t *testing.T) {
	if _, err := Table1(Small, "plasma"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestFigure3Shape(t *testing.T) {
	res, err := Figure3(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	byLabel := map[string]Figure3Row{}
	for _, r := range res.Rows {
		byLabel[r.Label] = r
		if r.TLBMisses == 0 || r.L2Misses == 0 {
			t.Errorf("%s: zero miss counts", r.Label)
		}
	}
	// Edge reordering must slash TLB misses (the paper: two orders of
	// magnitude; we require a decisive factor).
	noer := byLabel["NOER/interlaced"]
	reord := byLabel["reordered/interlaced"]
	if reord.TLBMisses*3 >= noer.TLBMisses {
		t.Errorf("reordering TLB %d not well below NOER %d", reord.TLBMisses, noer.TLBMisses)
	}
	// Interlacing must cut L2 misses against noninterlaced.
	nonint := byLabel["reordered/noninterlaced"]
	if reord.L2Misses >= nonint.L2Misses {
		t.Errorf("interlaced L2 %d not below noninterlaced %d", reord.L2Misses, nonint.L2Misses)
	}
	// The fully enhanced variant has the fewest misses overall.
	best := byLabel["reordered/interlaced+blocked"]
	for _, r := range res.Rows {
		if r.Label == best.Label {
			continue
		}
		if best.L2Misses > r.L2Misses && best.TLBMisses > r.TLBMisses {
			t.Errorf("fully enhanced beaten by %s on both counters", r.Label)
		}
	}
	if !strings.Contains(res.Render(), "Figure 3") {
		t.Error("render missing header")
	}
}

func TestCSVWriters(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("serial experiment driver; too slow under -race (see race_off_test.go)")
	}
	var buf bytes.Buffer
	t1, err := Table1(Small, "incompressible")
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 7 {
		t.Errorf("table1 csv has %d lines, want 7", lines)
	}
	f3, err := Figure3(Small)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f3.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "variant,tlb_misses,l2_misses") {
		t.Error("figure3 csv header wrong")
	}
	f5, err := Figure5(Small)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f5.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cfl_") {
		t.Error("figure5 csv missing series columns")
	}
}
