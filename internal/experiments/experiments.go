// Package experiments regenerates every table and figure of the paper's
// evaluation on the repo's substrates. Each experiment returns a
// structured result plus a formatted rendering; cmd/benchtables drives
// them and EXPERIMENTS.md records paper-vs-measured comparisons.
//
// Experiments run at three sizes. Small is a smoke-test scale used by
// the test suite; Medium is the recorded scale of EXPERIMENTS.md;
// Large approaches the paper's mesh sizes where single-host time
// permits. Mesh sizes are scaled down from the paper's 22,677 / 357,900
// / 2.8M vertices with the rank counts scaled alongside so that
// vertices-per-rank ratios (which drive the convergence and
// communication behavior) stay comparable.
package experiments

import "fmt"

// Size selects the experiment scale.
type Size int

const (
	// Small is the smoke-test scale (seconds).
	Small Size = iota
	// Medium is the recorded scale of EXPERIMENTS.md (minutes).
	Medium
	// Large approaches the paper's scale (tens of minutes).
	Large
)

// ParseSize converts a -size flag value.
func ParseSize(s string) (Size, error) {
	switch s {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	}
	return Small, fmt.Errorf("experiments: unknown size %q (want small|medium|large)", s)
}

// String implements fmt.Stringer.
func (s Size) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return fmt.Sprintf("Size(%d)", int(s))
}

// pick returns the value for the size.
func pick[T any](s Size, small, medium, large T) T {
	switch s {
	case Medium:
		return medium
	case Large:
		return large
	default:
		return small
	}
}
