package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"petscfun3d/internal/faults"
	"petscfun3d/internal/mesh"
	"petscfun3d/internal/mpi"
	"petscfun3d/internal/partition"
	"petscfun3d/internal/sparse"
)

// ChaosSweepResult is the chaos extension of the measured Table 3: the
// same distributed solve run under deterministic fault plans of
// increasing seed, with the measured implementation efficiency
// η_impl = T_clean / T_chaos set against the skew each plan injected.
//
// At a fixed rank count the algorithmic factor η_alg cancels exactly —
// the sweep *asserts* every chaos run converges in the same linear
// iteration count as the fault-free run (faults move clocks, never
// numerics), so any lost time is pure implementation efficiency: the
// injected virtual-clock skew surfacing as implicit-synchronization
// wait, the paper's Table 3 mechanism made measurable on demand.
type ChaosSweepResult struct {
	Vertices int
	B        int
	Procs    int
	Profile  faults.Profile
	// CleanSeconds is the fault-free slowest-rank total (best of
	// measureReps); CleanIts its linear iteration count; CleanWaitMaxSec
	// its slowest-rank scatter_wait.
	CleanSeconds    float64
	CleanIts        int
	CleanWaitMaxSec float64
	Rows            []ChaosRow
}

// ChaosRow is one seed's run.
type ChaosRow struct {
	Seed       int64   `json:"seed"`
	SkewMaxSec float64 `json:"skew_max_sec"` // slowest rank's injected sleep total
	SkewSumSec float64 `json:"skew_sum_sec"` // injected sleep summed over ranks
	Seconds    float64 `json:"seconds"`      // slowest rank's total phase time
	EtaImpl    float64 `json:"eta_impl"`     // CleanSeconds / Seconds
	LinearIts  int     `json:"linear_its"`   // must equal the clean run's
	WaitMaxSec float64 `json:"wait_max_sec"` // max over ranks of scatter_wait
	WaitAvgSec float64 `json:"wait_avg_sec"` // mean over ranks of scatter_wait
}

// chaosReps runs each seed a few times and keeps the median-free best
// (lowest slowest-rank total): the injected skew is identical across
// reps — the plan is deterministic — so the minimum isolates it from
// scheduler noise the same way measureReps does for the clean runs.
const chaosReps = 3

// ChaosSweep runs the canonical chaos sweep: the measured distributed
// GMRES at 4 ranks under the mixed fault profile across a small seed
// grid.
func ChaosSweep(size Size) (*ChaosSweepResult, error) {
	nv := pick(size, 1500, 45000, 180000)
	return ChaosSweepStudy(nv, 4, faults.ProfileMixed, []int64{1, 2, 3, 4})
}

// ChaosSweepStudy builds the deterministic wing-mesh system (the same
// construction as Table3MeasuredStudy) and sweeps the fault seeds at
// one rank count.
func ChaosSweepStudy(nv, procs int, profile faults.Profile, seeds []int64) (*ChaosSweepResult, error) {
	m, err := mesh.GenerateWingN(nv)
	if err != nil {
		return nil, err
	}
	m = m.Renumber(mesh.RCM(m))
	const b = 4
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	a := sparse.BlockPattern(g, b)
	a.FillDeterministic(101)
	rhs := make([]float64, a.N())
	for i := range rhs {
		rhs[i] = math.Sin(float64(i) * 0.19)
	}
	return ChaosEfficiency(a, g, rhs, procs, profile, seeds)
}

// ChaosEfficiency is the matrix-level entry point (fun3d's -chaos-seed
// path calls it with the real first-order Jacobian): solve a·x = rhs
// with the distributed GMRES fault-free, then once per seed under the
// profile's fault plan, and reduce the timings into the η_impl-vs-skew
// table. Any seed whose iteration count differs from the fault-free
// run fails the sweep — that would mean the faults changed numerics,
// which the runtime guarantees they cannot.
func ChaosEfficiency(a *sparse.BCSR, g sparse.Graph, rhs []float64, procs int, profile faults.Profile, seeds []int64) (*ChaosSweepResult, error) {
	if _, err := faults.ParseProfile(string(profile)); err != nil {
		return nil, err
	}
	if profile == faults.ProfilePanic {
		return nil, fmt.Errorf("experiments: the panic profile kills the run by design; the chaos soak tests cover it")
	}
	part, err := partition.KWay(g, procs)
	if err != nil {
		return nil, err
	}
	res := &ChaosSweepResult{Vertices: g.NV, B: a.B, Procs: procs, Profile: profile}
	cleanRanks, cleanIts, _, _, err := solveMeasured(a, part.Part, rhs, procs, false, measureReps)
	if err != nil {
		return nil, err
	}
	res.CleanIts = cleanIts
	for _, r := range cleanRanks {
		if t := r.Seconds(); t > res.CleanSeconds {
			res.CleanSeconds = t
		}
		if w := r["scatter_wait"]; w > res.CleanWaitMaxSec {
			res.CleanWaitMaxSec = w
		}
	}
	if res.CleanSeconds <= 0 {
		return nil, fmt.Errorf("experiments: clean run measured no time")
	}
	for _, seed := range seeds {
		row := ChaosRow{Seed: seed, Seconds: math.Inf(1)}
		for rep := 0; rep < chaosReps; rep++ {
			plan := faults.NewPlan(seed, profile)
			ranks, its, _, err := solveOnce(a, part.Part, rhs, procs, false, mpi.Options{Faults: plan})
			if err != nil {
				return nil, fmt.Errorf("experiments: chaos run seed %d: %w", seed, err)
			}
			if its != cleanIts {
				return nil, fmt.Errorf("experiments: seed %d converged in %d iterations vs fault-free %d — injected faults changed numerics", seed, its, cleanIts)
			}
			var maxT, waitMax, waitSum float64
			for _, r := range ranks {
				if t := r.Seconds(); t > maxT {
					maxT = t
				}
				w := r["scatter_wait"]
				waitSum += w
				if w > waitMax {
					waitMax = w
				}
			}
			if maxT >= row.Seconds {
				continue
			}
			row.Seconds = maxT
			row.LinearIts = its
			row.WaitMaxSec = waitMax
			row.WaitAvgSec = waitSum / float64(procs)
			var skewMax, skewSum float64
			for _, s := range plan.SkewSeconds() {
				skewSum += s
				if s > skewMax {
					skewMax = s
				}
			}
			row.SkewMaxSec = skewMax
			row.SkewSumSec = skewSum
		}
		row.EtaImpl = res.CleanSeconds / row.Seconds
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the chaos sweep table.
func (r *ChaosSweepResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Chaos sweep — measured η_impl vs injected skew, %d vertices, b=%d, %d ranks, profile %s\n",
		r.Vertices, r.B, r.Procs, r.Profile)
	fmt.Fprintf(&sb, "fault-free: %.4fs, %d linear its, wait max %.4fs\n", r.CleanSeconds, r.CleanIts, r.CleanWaitMaxSec)
	fmt.Fprintf(&sb, "%6s %6s %10s %8s | %10s %10s | %10s %10s\n",
		"Seed", "Its", "Time", "η_impl", "skew max", "skew sum", "wait max", "wait avg")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%6d %6d %9.4fs %8.2f | %9.4fs %9.4fs | %9.4fs %9.4fs\n",
			row.Seed, row.LinearIts, row.Seconds, row.EtaImpl,
			row.SkewMaxSec, row.SkewSumSec, row.WaitMaxSec, row.WaitAvgSec)
	}
	sb.WriteString("Every row converges in the fault-free iteration count (asserted): faults perturb timing, never\n" +
		"numerics, so η_alg ≡ 1 and the efficiency lost is pure implementation — injected clock skew\n" +
		"absorbed by the implicit-synchronization wait, the paper's Table 3 mechanism on demand.\n")
	return sb.String()
}

// WriteCSV writes the sweep as plot-ready CSV.
func (r *ChaosSweepResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# clean: procs=%d seconds=%g its=%d wait_max_sec=%g profile=%s\n",
		r.Procs, r.CleanSeconds, r.CleanIts, r.CleanWaitMaxSec, r.Profile); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "seed,its,seconds,eta_impl,skew_max_sec,skew_sum_sec,wait_max_sec,wait_avg_sec"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%g,%g,%g,%g,%g,%g\n",
			row.Seed, row.LinearIts, row.Seconds, row.EtaImpl,
			row.SkewMaxSec, row.SkewSumSec, row.WaitMaxSec, row.WaitAvgSec); err != nil {
			return err
		}
	}
	return nil
}
