package experiments

import (
	"fmt"
	"strings"

	"petscfun3d/internal/core"
	"petscfun3d/internal/perfmodel"
)

// Table3Row is one rank count of the paper's Table 3 (plus the Figure 1
// per-step metrics derived from the same run).
type Table3Row struct {
	Procs           int
	VerticesPerProc int
	LinearIts       int
	Seconds         float64 // modeled execution time
	Speedup         float64
	EffOverall      float64
	EffAlg          float64
	EffImpl         float64
	PctReductions   float64
	PctImplicitSync float64
	PctScatters     float64
	DataPerItGB     float64 // halo bytes per matvec, all ranks
	EffBWPerNodeMBs float64
	Gflops          float64
	Steps           int
}

// Table3Result reproduces Table 3's scalability-bottleneck study: a
// fixed-size mesh solved at increasing rank counts on the ASCI Red
// profile, block Jacobi + ILU(1), with the efficiency decomposition
// η_overall = η_alg · η_impl. Real iteration counts drive η_alg; the
// machine model's wait/scatter/reduce accounting drives η_impl.
type Table3Result struct {
	Vertices int
	Profile  string
	Rows     []Table3Row
}

// ScalingStudy runs the fixed-size scaling sweep on one machine profile
// with the given partitioner; it underlies Table 3, Figure 1, Figure 2,
// and Figure 4.
func ScalingStudy(size Size, prof perfmodel.Profile, partitioner string, ranks []int) (*Table3Result, error) {
	nv := pick(size, 4000, 45000, 180000)
	res := &Table3Result{Profile: prof.Name}
	for _, p := range ranks {
		cfg := core.DefaultConfig()
		cfg.TargetVertices = nv
		cfg.Ranks = p
		cfg.Profile = prof
		cfg.Partitioner = partitioner
		cfg.FillLevel = 1
		cfg.Overlap = 0
		cfg.Newton.RelTol = 1e-6
		cfg.Newton.MaxSteps = pick(size, 40, 60, 60)
		out, err := core.RunParallel(cfg)
		if err != nil {
			return nil, err
		}
		res.Vertices = out.Problem.Mesh.NumVertices()
		rep := out.Report
		res.Rows = append(res.Rows, Table3Row{
			Procs:           p,
			VerticesPerProc: res.Vertices / p,
			LinearIts:       out.Newton.TotalLinearIts,
			Seconds:         rep.Elapsed,
			PctReductions:   rep.PctReduce,
			PctImplicitSync: rep.PctWait,
			PctScatters:     rep.PctScatter,
			DataPerItGB:     float64(out.HaloBytesPerExchange) / 1e9,
			EffBWPerNodeMBs: rep.EffectiveBandwidth / float64(p) / 1e6,
			Gflops:          rep.Gflops,
			Steps:           len(out.Newton.Steps),
		})
	}
	// Efficiency decomposition relative to the first rank count.
	base := res.Rows[0]
	for i := range res.Rows {
		r := &res.Rows[i]
		r.Speedup = base.Seconds / r.Seconds
		r.EffOverall = r.Speedup / (float64(r.Procs) / float64(base.Procs))
		r.EffAlg = float64(base.LinearIts) / float64(r.LinearIts)
		r.EffImpl = r.EffOverall / r.EffAlg
	}
	return res, nil
}

// Table3 runs the canonical Table 3 configuration.
func Table3(size Size) (*Table3Result, error) {
	ranks := pick(size, []int{4, 8, 16}, []int{32, 64, 128, 192, 256}, []int{128, 256, 512, 768, 1024})
	return ScalingStudy(size, perfmodel.ASCIRed, "kway", ranks)
}

// Render formats both panels of the paper's Table 3.
func (t *Table3Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 3 — scalability bottlenecks, %d vertices, %s profile, BJacobi+ILU(1) (modeled)\n",
		t.Vertices, t.Profile)
	fmt.Fprintf(&sb, "%6s %6s %9s %8s | %9s %7s %7s\n",
		"Procs", "Its", "Time", "Speedup", "η_overall", "η_alg", "η_impl")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%6d %6d %8.1fs %8.2f | %9.2f %7.2f %7.2f\n",
			r.Procs, r.LinearIts, r.Seconds, r.Speedup, r.EffOverall, r.EffAlg, r.EffImpl)
	}
	fmt.Fprintf(&sb, "\n%6s | %8s %8s %8s | %10s %12s\n",
		"Procs", "%reduc", "%sync", "%scatter", "GB/it", "eff MB/s/node")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%6d | %8.1f %8.1f %8.1f | %10.4f %12.2f\n",
			r.Procs, r.PctReductions, r.PctImplicitSync, r.PctScatters, r.DataPerItGB, r.EffBWPerNodeMBs)
	}
	return sb.String()
}

// Figure1Render renders the Figure 1 view of a scaling study: the five
// parallel metrics per node count.
func (t *Table3Result) Figure1Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 1 — fixed-size scaling, %d vertices, %s profile (modeled)\n", t.Vertices, t.Profile)
	fmt.Fprintf(&sb, "%6s %10s %10s %10s %10s %10s %8s\n",
		"Nodes", "verts/node", "time", "time/step", "Gflop/s", "speedup", "η_impl")
	for _, r := range t.Rows {
		perStep := r.Seconds
		if r.Steps > 0 {
			perStep = r.Seconds / float64(r.Steps)
		}
		fmt.Fprintf(&sb, "%6d %10d %9.1fs %9.2fs %10.2f %10.2f %8.2f\n",
			r.Procs, r.VerticesPerProc, r.Seconds, perStep, r.Gflops, r.Speedup, r.EffImpl)
	}
	return sb.String()
}

// Figure2Result holds the three-machine comparison of Figure 2.
type Figure2Result struct {
	Studies []*Table3Result
}

// Figure2 runs the scaling sweep on the ASCI Red, Blue Pacific, and
// Cray T3E profiles.
func Figure2(size Size) (*Figure2Result, error) {
	ranks := pick(size, []int{4, 8, 16}, []int{32, 64, 128, 256}, []int{128, 256, 512, 1024})
	out := &Figure2Result{}
	for _, prof := range []perfmodel.Profile{perfmodel.ASCIRed, perfmodel.BluePacific, perfmodel.CrayT3E} {
		st, err := ScalingStudy(size, prof, "kway", ranks)
		if err != nil {
			return nil, err
		}
		out.Studies = append(out.Studies, st)
	}
	return out, nil
}

// Render formats Gflop/s and execution time per machine.
func (f *Figure2Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 2 — Gflop/s and execution time across machines (modeled)\n")
	for _, st := range f.Studies {
		fmt.Fprintf(&sb, "  %s:\n", st.Profile)
		fmt.Fprintf(&sb, "    %6s %10s %10s\n", "Nodes", "Gflop/s", "time")
		for _, r := range st.Rows {
			fmt.Fprintf(&sb, "    %6d %10.2f %9.1fs\n", r.Procs, r.Gflops, r.Seconds)
		}
	}
	return sb.String()
}

// Figure4Result holds the partitioner comparison of Figure 4.
type Figure4Result struct {
	KWay *Table3Result
	PWay *Table3Result
}

// Figure4 compares k-way (connected, mildly imbalanced) and p-way
// (perfectly balanced, possibly fragmented) partitions on the Cray T3E
// profile.
func Figure4(size Size) (*Figure4Result, error) {
	ranks := pick(size, []int{4, 8, 16, 32}, []int{32, 64, 128, 256}, []int{128, 256, 512, 1024})
	k, err := ScalingStudy(size, perfmodel.CrayT3E, "kway", ranks)
	if err != nil {
		return nil, err
	}
	p, err := ScalingStudy(size, perfmodel.CrayT3E, "pway", ranks)
	if err != nil {
		return nil, err
	}
	return &Figure4Result{KWay: k, PWay: p}, nil
}

// Render formats relative speedups of the two partitioners.
func (f *Figure4Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4 — partitioner comparison, %d vertices, Cray T3E profile (modeled)\n", f.KWay.Vertices)
	fmt.Fprintf(&sb, "%6s | %10s %8s | %10s %8s\n", "Procs", "kway time", "speedup", "pway time", "speedup")
	for i := range f.KWay.Rows {
		k, p := f.KWay.Rows[i], f.PWay.Rows[i]
		fmt.Fprintf(&sb, "%6d | %9.1fs %8.2f | %9.1fs %8.2f\n",
			k.Procs, k.Seconds, k.Speedup, p.Seconds, p.Speedup)
	}
	return sb.String()
}
