package experiments

import (
	"fmt"
	"strings"

	"petscfun3d/internal/mesh"
	"petscfun3d/internal/perfmodel"
	"petscfun3d/internal/sparse"
)

// SpMVBoundRow compares the reference-[10] achievable bounds for one
// format/precision on one machine.
type SpMVBoundRow struct {
	Machine      string
	Format       string
	BWBoundMF    float64 // Mflop/s permitted by memory bandwidth
	InstrBoundMF float64 // Mflop/s permitted by instruction issue
	MemoryBound  bool
}

// SpMVBoundResult reproduces the companion paper's analysis the text
// leans on: sparse matrix-vector product is memory-bandwidth limited on
// every platform, and structural blocking / reduced precision raise the
// bound. (These are the analytical underpinnings of Tables 1 and 2.)
type SpMVBoundResult struct {
	Vertices int
	Rows     []SpMVBoundRow
}

// SpMVBounds evaluates the bounds for the Jacobian of the incompressible
// system on the experiment mesh across the era machine profiles.
func SpMVBounds(size Size) (*SpMVBoundResult, error) {
	nv := pick(size, 2500, 22677, 22677)
	m, err := mesh.GenerateWingN(nv)
	if err != nil {
		return nil, err
	}
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	blk := sparse.BlockPattern(g, 4)
	nnzb := blk.NNZBlocks()
	shapes := []struct {
		name  string
		shape perfmodel.SpMVShape
	}{
		{"CSR f64", perfmodel.CSRShape(blk.N(), blk.NNZ())},
		{"BCSR4 f64", perfmodel.BCSRShape(blk.NB, nnzb, 4)},
		{"BCSR4 f32", perfmodel.SpMVShape{N: blk.N(), NNZ: blk.NNZ(), NNZBlocks: nnzb, ValBytes: 4}},
	}
	res := &SpMVBoundResult{Vertices: m.NumVertices()}
	for _, prof := range perfmodel.Profiles() {
		for _, s := range shapes {
			_, memBound := prof.SpMVBound(s.shape)
			res.Rows = append(res.Rows, SpMVBoundRow{
				Machine:      prof.Name,
				Format:       s.name,
				BWBoundMF:    prof.SpMVBandwidthBound(s.shape) / 1e6,
				InstrBoundMF: prof.SpMVInstructionBound(s.shape) / 1e6,
				MemoryBound:  memBound,
			})
		}
	}
	return res, nil
}

// Render formats the bounds table.
func (r *SpMVBoundResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SpMV achievable bounds (ref. [10] analysis), %d vertices, b=4 Jacobian\n", r.Vertices)
	fmt.Fprintf(&sb, "%-14s %-10s | %14s %16s %s\n", "machine", "format", "BW bound MF/s", "instr bound MF/s", "binding")
	for _, row := range r.Rows {
		binding := "instruction"
		if row.MemoryBound {
			binding = "memory"
		}
		fmt.Fprintf(&sb, "%-14s %-10s | %14.0f %16.0f %s\n",
			row.Machine, row.Format, row.BWBoundMF, row.InstrBoundMF, binding)
	}
	return sb.String()
}
