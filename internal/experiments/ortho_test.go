package experiments

import (
	"strings"
	"testing"
)

// TestOrthoShape: the orthogonalization study runs at smoke scale, its
// bitwise determinism gates pass across worker counts, and the fused
// mechanisms show the synchronization collapse the study exists to
// measure.
func TestOrthoShape(t *testing.T) {
	r, err := OrthoStudy(600, 2, []int{1, 2, 4}, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 { // 3 mechanisms x 3 worker counts x 1 restart
		t.Fatalf("got %d rows, want 9", len(r.Rows))
	}
	byMech := map[string]OrthoRow{}
	for _, row := range r.Rows {
		if row.Iterations != 12 || row.SolveSec <= 0 || row.BytesPerIt <= 0 {
			t.Fatalf("malformed row %+v", row)
		}
		if row.Threads == 1 {
			byMech[row.Mechanism] = row
		}
	}
	mgs, cgs, cgs2 := byMech["mgs"], byMech["cgs"], byMech["cgs2"]
	// mgs synchronizes once per inner product; the fused mechanisms
	// batch every projection into one MDot round (plus the norm).
	if mgs.Reductions != mgs.InnerProds {
		t.Fatalf("mgs reductions %d != inner products %d", mgs.Reductions, mgs.InnerProds)
	}
	if cgs.Reductions != 2*cgs.Iterations {
		t.Fatalf("cgs reductions %d, want 2 per iteration (%d)", cgs.Reductions, 2*cgs.Iterations)
	}
	if cgs2.Reductions < 2*cgs2.Iterations || cgs2.Reductions > 4*cgs2.Iterations {
		t.Fatalf("cgs2 reductions %d outside [2,4] per iteration (%d its)", cgs2.Reductions, cgs2.Iterations)
	}
	if cgs.BytesPerIt >= mgs.BytesPerIt {
		t.Fatalf("cgs ortho bytes/it %.0f not below mgs %.0f", cgs.BytesPerIt, mgs.BytesPerIt)
	}
	out := r.Render()
	if !strings.Contains(out, "One-pass orthogonalization") || !strings.Contains(out, "restart=6") {
		t.Fatalf("render missing headers:\n%s", out)
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != 10 {
		t.Fatalf("csv has %d lines, want 10:\n%s", got, sb.String())
	}
}
