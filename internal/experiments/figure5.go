package experiments

import (
	"fmt"
	"strings"

	"petscfun3d/internal/core"
)

// Figure5Series is the convergence history for one initial CFL number.
type Figure5Series struct {
	CFL0      float64
	Residuals []float64 // residual norm per pseudo-timestep (index 0 = initial)
	Steps     int
	Converged bool
}

// Figure5Result reproduces Figure 5: residual norm versus pseudo-
// timestep for a sweep of initial CFL numbers on the incompressible wing
// problem. Aggressive initial CFL shortens the induction period for this
// smooth flow, as the paper observes.
type Figure5Result struct {
	Vertices int
	Series   []Figure5Series
}

// Figure5 runs the CFL sweep.
func Figure5(size Size) (*Figure5Result, error) {
	nv := pick(size, 2000, 22677, 22677)
	cfls := pick(size, []float64{1, 10, 50}, []float64{1, 5, 10, 25, 50, 100}, []float64{1, 5, 10, 25, 50, 100})
	res := &Figure5Result{}
	for _, cfl := range cfls {
		cfg := core.DefaultConfig()
		cfg.TargetVertices = nv
		cfg.Newton.CFL0 = cfl
		cfg.Newton.RelTol = 1e-8
		cfg.Newton.MaxSteps = pick(size, 120, 200, 200)
		out, err := core.RunSequential(cfg)
		if err != nil {
			return nil, err
		}
		res.Vertices = out.Problem.Mesh.NumVertices()
		s := Figure5Series{CFL0: cfl, Converged: out.Newton.Converged}
		s.Residuals = append(s.Residuals, out.Newton.InitialRnorm)
		for _, st := range out.Newton.Steps {
			s.Residuals = append(s.Residuals, st.Rnorm)
		}
		s.Steps = len(out.Newton.Steps)
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Render formats the convergence histories as columns.
func (f *Figure5Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5 — residual norm vs pseudo-timestep by initial CFL, %d vertices\n", f.Vertices)
	sb.WriteString("  step |")
	maxLen := 0
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " %12s", fmt.Sprintf("CFL0=%g", s.CFL0))
		if len(s.Residuals) > maxLen {
			maxLen = len(s.Residuals)
		}
	}
	sb.WriteString("\n")
	for i := 0; i < maxLen; i++ {
		fmt.Fprintf(&sb, "%6d |", i)
		for _, s := range f.Series {
			if i < len(s.Residuals) {
				fmt.Fprintf(&sb, " %12.3e", s.Residuals[i])
			} else {
				fmt.Fprintf(&sb, " %12s", "—")
			}
		}
		sb.WriteString("\n")
	}
	sb.WriteString("steps to converge:")
	for _, s := range f.Series {
		conv := "∞"
		if s.Converged {
			conv = fmt.Sprintf("%d", s.Steps)
		}
		fmt.Fprintf(&sb, "  CFL0=%g: %s", s.CFL0, conv)
	}
	sb.WriteString("\n")
	return sb.String()
}
