package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"time"

	"petscfun3d/internal/euler"
	"petscfun3d/internal/ilu"
	"petscfun3d/internal/mesh"
	"petscfun3d/internal/par"
	"petscfun3d/internal/sparse"
)

// ThreadsRow is one worker count of the measured node-level thread
// scaling study: best-of-reps wall seconds for each threaded kernel and
// the speedup over the single-thread run of the same build.
type ThreadsRow struct {
	Threads     int
	FluxSec     float64 // euler.ResidualParallel (redundant-array sweep + gather)
	TriSolveSec float64 // ilu.Factorization.SolvePar (level-scheduled)
	SpMVSec     float64 // sparse.BCSR.MulVecPar (nonzero-balanced stripes)
	DotSec      float64 // par.Dot (fixed-shape segmented reduction)
	FluxSpeed   float64
	TriSpeed    float64
	SpMVSpeed   float64
	DotSpeed    float64
}

// ThreadsResult is the measured counterpart of the Table 5 threading
// column: real wall-clock scaling of the pooled kernels on one node,
// plus the level-set schedule statistics that bound the triangular
// solves' available parallelism. Every configuration is checked before
// it is timed — tri-solve, SpMV, and dot bitwise against the
// single-thread run; the flux sweep (whose private-array gather
// reassociates the sums by design) for run-to-run determinism and
// agreement with the sequential residual to rounding — so the
// experiment fails rather than report a speedup that changed the
// arithmetic beyond its contract.
type ThreadsResult struct {
	Vertices int
	B        int
	Sweeps   int
	// Cores is the host's available parallelism (GOMAXPROCS); measured
	// speedups are bounded by it, so a table recorded on a small host
	// reads as a determinism/overhead study rather than a scaling one.
	Cores  int
	Levels ilu.LevelStats
	Rows   []ThreadsRow
}

// Threads runs the measured node-level thread-scaling study.
func Threads(size Size) (*ThreadsResult, error) {
	nv := pick(size, 2000, 22677, 90000)
	sweeps := pick(size, 10, 40, 40)
	reps := pick(size, 3, 7, 7)
	return ThreadsStudy(nv, sweeps, reps, []int{1, 2, 4, 8})
}

// ThreadsStudy times the four threaded kernels on one deterministic
// wing-mesh problem (interlaced b=4 BCSR, ILU(0)) at each worker count.
func ThreadsStudy(nv, sweeps, reps int, workers []int) (*ThreadsResult, error) {
	m, err := mesh.GenerateWingN(nv)
	if err != nil {
		return nil, err
	}
	m = m.Renumber(mesh.RCM(m))
	sys := euler.NewIncompressible()
	d, err := euler.NewDiscretization(m, nil, sys, euler.Options{Order: 1, Layout: sparse.Interlaced})
	if err != nil {
		return nil, err
	}
	b := sys.B()
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	a := sparse.BlockPattern(g, b)
	a.FillDeterministic(101)
	f, err := ilu.Factor(a, ilu.Options{Level: 0})
	if err != nil {
		return nil, err
	}
	n := a.N()
	q := d.FreestreamVector()
	r := make([]float64, d.N())
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.19)
	}
	res := &ThreadsResult{Vertices: m.NumVertices(), B: b, Sweeps: sweeps,
		Cores: runtime.GOMAXPROCS(0), Levels: f.LevelStats()}

	// Single-thread reference outputs for the bitwise check.
	refR := make([]float64, d.N())
	if err := d.ResidualParallel(q, refR, nil); err != nil {
		return nil, err
	}
	refZ := make([]float64, n)
	f.SolvePar(nil, x, refZ)
	refY := make([]float64, n)
	a.MulVecPar(nil, x, refY)
	refDot := par.Dot(nil, x, refY)

	for _, nt := range workers {
		var p *par.Pool
		if nt > 1 {
			p = par.New(nt)
		}
		if err := d.ResidualParallel(q, r, p); err != nil {
			p.Close()
			return nil, err
		}
		r2 := make([]float64, d.N())
		if err := d.ResidualParallel(q, r2, p); err != nil {
			p.Close()
			return nil, err
		}
		f.SolvePar(p, x, z)
		a.MulVecPar(p, x, y)
		dot := par.Dot(p, x, y)
		for i := range refR {
			if r[i] != r2[i] {
				p.Close()
				return nil, fmt.Errorf("experiments: %d-thread flux residual is not deterministic at %d", nt, i)
			}
			if diff := math.Abs(r[i] - refR[i]); diff > 1e-12*(1+math.Abs(refR[i])) {
				p.Close()
				return nil, fmt.Errorf("experiments: %d-thread flux residual off by %g from sequential at %d", nt, diff, i)
			}
		}
		for i := range refZ {
			if z[i] != refZ[i] || y[i] != refY[i] {
				p.Close()
				return nil, fmt.Errorf("experiments: %d-thread solve/spmv differs from sequential at %d", nt, i)
			}
		}
		if dot != refDot {
			p.Close()
			return nil, fmt.Errorf("experiments: %d-thread dot %v differs from sequential %v", nt, dot, refDot)
		}
		row := ThreadsRow{Threads: nt}
		row.FluxSec = bestOf(reps, func() {
			for s := 0; s < sweeps; s++ {
				_ = d.ResidualParallel(q, r, p) // validated above; the timing loop repeats the same call
			}
		})
		row.TriSolveSec = bestOf(reps, func() {
			for s := 0; s < sweeps; s++ {
				f.SolvePar(p, x, z)
			}
		})
		row.SpMVSec = bestOf(reps, func() {
			for s := 0; s < sweeps; s++ {
				a.MulVecPar(p, x, y)
			}
		})
		row.DotSec = bestOf(reps, func() {
			for s := 0; s < sweeps; s++ {
				par.Dot(p, x, y)
			}
		})
		p.Close()
		res.Rows = append(res.Rows, row)
	}
	base := res.Rows[0]
	for i := range res.Rows {
		r := &res.Rows[i]
		r.FluxSpeed = base.FluxSec / r.FluxSec
		r.TriSpeed = base.TriSolveSec / r.TriSolveSec
		r.SpMVSpeed = base.SpMVSec / r.SpMVSec
		r.DotSpeed = base.DotSec / r.DotSec
	}
	return res, nil
}

// bestOf runs fn reps times and returns the best wall seconds. The
// kernels are deterministic, so the minimum filters scheduler and GC
// noise, which dominates at smoke-test sizes.
func bestOf(reps int, fn func()) float64 {
	best := math.Inf(1)
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		fn()
		if d := time.Since(start).Seconds(); d < best {
			best = d
		}
	}
	return best
}

// Render formats the measured scaling study.
func (t *ThreadsResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Node-level thread scaling (measured) — %d vertices, b=%d, %d sweeps per timing, %d host cores, checked against sequential before timing\n",
		t.Vertices, t.B, t.Sweeps, t.Cores)
	fmt.Fprintf(&sb, "ILU(0) level schedule: %d rows, %d fwd + %d bwd levels, max width %d, avg width %.1f\n",
		t.Levels.Rows, t.Levels.FwdLevels, t.Levels.BwdLevels, t.Levels.MaxWidth, t.Levels.AvgWidth)
	fmt.Fprintf(&sb, "%7s | %9s %5s | %9s %5s | %9s %5s | %9s %5s\n",
		"Threads", "flux", "spd", "tri-solve", "spd", "spmv", "spd", "dot", "spd")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%7d | %8.4fs %5.2f | %8.4fs %5.2f | %8.4fs %5.2f | %8.4fs %5.2f\n",
			r.Threads, r.FluxSec, r.FluxSpeed, r.TriSolveSec, r.TriSpeed,
			r.SpMVSec, r.SpMVSpeed, r.DotSec, r.DotSpeed)
	}
	sb.WriteString("flux pays the private-array gather (Table 5's threading tax); tri-solve is bounded by the\n" +
		"level schedule's width; spmv and dot are memory-bandwidth-bound at the node.\n")
	return sb.String()
}

// WriteCSV writes the scaling study as plot-ready CSV.
func (t *ThreadsResult) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			d(r.Threads), f(r.FluxSec), f(r.FluxSpeed), f(r.TriSolveSec), f(r.TriSpeed),
			f(r.SpMVSec), f(r.SpMVSpeed), f(r.DotSec), f(r.DotSpeed),
		})
	}
	return writeCSV(w, []string{"threads", "flux_sec", "flux_speedup", "trisolve_sec", "trisolve_speedup",
		"spmv_sec", "spmv_speedup", "dot_sec", "dot_speedup"}, rows)
}
