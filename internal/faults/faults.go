// Package faults is a deterministic, seedable fault-injection fabric
// for the goroutine MPI runtime: the chaos rig every distributed path
// is soaked under. A Plan derives, from one seed, a schedule of
// per-rank compute jitter (virtual-clock skew), per-pair message wire
// delays, one-shot rank stalls, and injected panics; internal/mpi
// consults the plan at every send, receive, and reduction. All faults
// perturb *timing* only — payloads, matching order (per-pair FIFO), and
// reduction combine order are untouched — so a correct protocol
// produces bitwise-identical numerics under any plan, and the chaos
// soak tests assert exactly that. The injected skew is also measurable
// (SkewSeconds), which turns a chaos run into a controlled wait-time
// amplifier for the paper's Table 3 implicit-synchronization column.
package faults

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Profile names a canned fault mix.
type Profile string

const (
	// ProfileNone injects nothing (an armed but inert plan).
	ProfileNone Profile = "none"
	// ProfileJitter injects per-rank compute jitter: a deterministic
	// subset of operations sleeps a hash-derived duration, skewing the
	// ranks' virtual clocks apart.
	ProfileJitter Profile = "jitter"
	// ProfileDelay injects per-pair wire delays: a deterministic subset
	// of messages is held back before delivery (FIFO order per pair is
	// preserved — only the clock moves).
	ProfileDelay Profile = "delay"
	// ProfileStall injects one long one-shot stall on one seed-chosen
	// rank at one seed-chosen operation — the descheduled-rank regime
	// the watchdog must tolerate (the stall is far below its timeout).
	ProfileStall Profile = "stall"
	// ProfilePanic injects a panic on one seed-chosen rank at one
	// seed-chosen operation; mpi.Run must contain it and return a
	// structured error naming the rank.
	ProfilePanic Profile = "panic"
	// ProfileMixed combines jitter, delay, and a stall.
	ProfileMixed Profile = "mixed"
)

// Profiles lists the canned profiles.
func Profiles() []Profile {
	return []Profile{ProfileNone, ProfileJitter, ProfileDelay, ProfileStall, ProfilePanic, ProfileMixed}
}

// ParseProfile validates a profile name (as given to -chaos-profile).
func ParseProfile(s string) (Profile, error) {
	for _, p := range Profiles() {
		if s == string(p) {
			return p, nil
		}
	}
	return "", fmt.Errorf("faults: unknown profile %q (want one of %v)", s, Profiles())
}

// Plan is the fault schedule for one mpi world. Construct it with
// NewPlan, hand it to mpi.Run via mpi.Options.Faults (Run arms it), and
// read SkewSeconds after the run. A Plan is single-use: arming it twice
// is an error, so one plan cannot blur two worlds' accounting.
//
// The knob fields may be tuned between NewPlan and the run; zero values
// take profile defaults at Arm time. All schedule decisions are pure
// hashes of (Seed, rank or pair, operation index), so the same plan
// configuration replays the same faults regardless of scheduling.
type Plan struct {
	Seed    int64
	Profile Profile

	// JitterEvery jitters one in N operations (0 = default 8).
	JitterEvery int
	// JitterMax caps one jitter sleep (0 = default 100µs).
	JitterMax time.Duration
	// DelayEvery delays one in N messages per pair (0 = default 8).
	DelayEvery int
	// DelayMax caps one wire delay (0 = default 200µs).
	DelayMax time.Duration
	// StallLen is the one-shot stall duration (0 = default 5ms). Keep it
	// far below the world's watchdog timeout: a stall is a slow rank,
	// not a dead one.
	StallLen time.Duration
	// StallWindow bounds the operation index at which the stall or
	// panic fires, drawn hash-uniformly from [0, StallWindow)
	// (0 = default 64).
	StallWindow int64

	// armed state (set once by Arm).
	size               int
	ops                []atomic.Int64 // per-rank operation counter
	pairSeq            []atomic.Int64 // per directed pair message counter
	skewNS             []atomic.Int64 // per-rank injected sleep total
	stallRank, stallOp int64
	panicRank, panicOp int64
	jitter, delay      bool
	stall, panicOn     bool
}

// NewPlan returns a plan for the given seed and profile with default
// knob values.
func NewPlan(seed int64, profile Profile) *Plan {
	return &Plan{Seed: seed, Profile: profile}
}

// Arm binds the plan to a communicator size and resolves knob defaults;
// mpi.Run calls it. A plan arms exactly once.
func (p *Plan) Arm(size int) error {
	if size < 1 {
		return fmt.Errorf("faults: arm with size %d < 1", size)
	}
	if p.size != 0 {
		return fmt.Errorf("faults: plan already armed (size %d); use one Plan per mpi.Run", p.size)
	}
	switch p.Profile {
	case ProfileNone, "":
	case ProfileJitter:
		p.jitter = true
	case ProfileDelay:
		p.delay = true
	case ProfileStall:
		p.stall = true
	case ProfilePanic:
		p.panicOn = true
	case ProfileMixed:
		p.jitter, p.delay, p.stall = true, true, true
	default:
		return fmt.Errorf("faults: unknown profile %q", p.Profile)
	}
	if p.JitterEvery == 0 {
		p.JitterEvery = 8
	}
	if p.JitterMax == 0 {
		p.JitterMax = 100 * time.Microsecond
	}
	if p.DelayEvery == 0 {
		p.DelayEvery = 8
	}
	if p.DelayMax == 0 {
		p.DelayMax = 200 * time.Microsecond
	}
	if p.StallLen == 0 {
		p.StallLen = 5 * time.Millisecond
	}
	if p.StallWindow == 0 {
		p.StallWindow = 64
	}
	p.size = size
	p.ops = make([]atomic.Int64, size)
	p.pairSeq = make([]atomic.Int64, size*size)
	p.skewNS = make([]atomic.Int64, size)
	p.stallRank = int64(p.hash(streamStall, 0) % uint64(size))
	p.stallOp = int64(p.hash(streamStall, 1) % uint64(p.StallWindow))
	p.panicRank = int64(p.hash(streamPanic, 0) % uint64(size))
	p.panicOp = int64(p.hash(streamPanic, 1) % uint64(p.StallWindow))
	return nil
}

// Size returns the armed communicator size (0 before Arm).
func (p *Plan) Size() int { return p.size }

// BeforeOp is the fabric's per-operation hook, called on rank's own
// goroutine at every send/receive/reduction entry. It applies the
// scheduled compute jitter and the one-shot stall (sleeping here, on
// the rank's clock), and reports whether this operation is the plan's
// injected panic point — the caller raises the panic so its runtime
// containment sees an ordinary rank panic.
func (p *Plan) BeforeOp(rank int) (panicNow bool) {
	if p == nil || p.size == 0 {
		return false
	}
	op := p.ops[rank].Add(1) - 1
	if p.panicOn && int64(rank) == p.panicRank && op == p.panicOp {
		return true
	}
	var d time.Duration
	if p.stall && int64(rank) == p.stallRank && op == p.stallOp {
		d += p.StallLen
	}
	if p.jitter {
		h := p.hash(streamJitter, uint64(rank)<<32|uint64(uint32(op)))
		if h%uint64(p.JitterEvery) == 0 {
			d += time.Duration((h >> 8) % uint64(p.JitterMax))
		}
	}
	if d > 0 {
		p.sleep(rank, d)
	}
	return false
}

// MessageDelay returns the wire delay scheduled for the next message
// posted from->to. The decision is made at posting time (posts to a
// pair are serialized on the sender's goroutine, so the sequence number
// is deterministic); the caller applies the sleep wherever delivery
// happens. The skew is charged to the sending rank here.
func (p *Plan) MessageDelay(from, to int) time.Duration {
	if p == nil || p.size == 0 || !p.delay {
		return 0
	}
	seq := p.pairSeq[from*p.size+to].Add(1) - 1
	h := p.hash(streamDelay, uint64(from*p.size+to)<<32|uint64(uint32(seq)))
	if h%uint64(p.DelayEvery) != 0 {
		return 0
	}
	d := time.Duration((h >> 8) % uint64(p.DelayMax))
	if d > 0 {
		p.skewNS[from].Add(int64(d))
	}
	return d
}

// sleep applies an injected delay on rank's clock and accounts it.
func (p *Plan) sleep(rank int, d time.Duration) {
	p.skewNS[rank].Add(int64(d))
	time.Sleep(d)
}

// SkewSeconds returns the total injected sleep per rank — the plan's
// measured virtual-clock skew, the independent variable of the chaos
// sweep's η_impl-vs-skew table.
func (p *Plan) SkewSeconds() []float64 {
	if p.size == 0 {
		return nil
	}
	out := make([]float64, p.size)
	for r := range out {
		out[r] = time.Duration(p.skewNS[r].Load()).Seconds()
	}
	return out
}

// Ops returns the per-rank operation counts consulted so far (test and
// report hook).
func (p *Plan) Ops() []int64 {
	if p.size == 0 {
		return nil
	}
	out := make([]int64, p.size)
	for r := range out {
		out[r] = p.ops[r].Load()
	}
	return out
}

// String describes the armed schedule.
func (p *Plan) String() string {
	if p.size == 0 {
		return fmt.Sprintf("faults: plan seed=%d profile=%s (unarmed)", p.Seed, p.Profile)
	}
	return fmt.Sprintf("faults: plan seed=%d profile=%s size=%d", p.Seed, p.Profile, p.size)
}

// InjectedPanic is the value the fabric panics with at the plan's
// injected panic point; mpi.Run's containment surfaces it inside the
// structured world error.
type InjectedPanic struct {
	Rank int
	Seed int64
}

func (ip InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic on rank %d (seed %d)", ip.Rank, ip.Seed)
}

// Hash streams keep the independent fault dimensions decorrelated.
const (
	streamJitter = 0x6a697474 // "jitt"
	streamDelay  = 0x64656c61 // "dela"
	streamStall  = 0x7374616c // "stal"
	streamPanic  = 0x70616e69 // "pani"
)

// hash is a splitmix64-style avalanche of (seed, stream, index): cheap,
// stateless, and fully deterministic under any goroutine interleaving.
func (p *Plan) hash(stream, index uint64) uint64 {
	x := uint64(p.Seed) ^ mix64(stream) ^ mix64(index+0x632be59bd9b4e019)
	return mix64(x)
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
