package faults

import (
	"testing"
	"time"
)

func TestArmOnce(t *testing.T) {
	p := NewPlan(7, ProfileJitter)
	if err := p.Arm(4); err != nil {
		t.Fatal(err)
	}
	if err := p.Arm(4); err == nil {
		t.Fatal("re-arming did not error")
	}
	if p.Size() != 4 {
		t.Fatalf("size %d", p.Size())
	}
}

func TestArmValidation(t *testing.T) {
	if err := NewPlan(1, ProfileNone).Arm(0); err == nil {
		t.Error("size 0 accepted")
	}
	if err := NewPlan(1, Profile("bogus")).Arm(2); err == nil {
		t.Error("bogus profile accepted")
	}
	if _, err := ParseProfile("bogus"); err == nil {
		t.Error("ParseProfile accepted bogus")
	}
	if pr, err := ParseProfile("mixed"); err != nil || pr != ProfileMixed {
		t.Errorf("ParseProfile(mixed) = %v, %v", pr, err)
	}
}

// TestDeterministicSchedule replays the same seed twice and requires an
// identical fault schedule — the property the bitwise chaos soak rests
// on.
func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) (panics []int, delays []time.Duration) {
		p := NewPlan(seed, ProfileMixed)
		p.StallLen = time.Nanosecond // keep the test fast
		p.JitterMax = time.Nanosecond
		if err := p.Arm(3); err != nil {
			t.Fatal(err)
		}
		for rank := 0; rank < 3; rank++ {
			for op := 0; op < 100; op++ {
				if p.BeforeOp(rank) {
					panics = append(panics, rank<<16|op)
				}
			}
		}
		for seq := 0; seq < 100; seq++ {
			delays = append(delays, p.MessageDelay(0, 1))
		}
		return panics, delays
	}
	p1, d1 := schedule(42)
	p2, d2 := schedule(42)
	if len(d1) != len(d2) {
		t.Fatal("delay schedule lengths differ")
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("delay %d differs: %v vs %v", i, d1[i], d2[i])
		}
	}
	if len(p1) != len(p2) {
		t.Fatalf("panic schedules differ: %v vs %v", p1, p2)
	}
	// ProfileMixed injects no panics.
	if len(p1) != 0 {
		t.Fatalf("mixed profile injected panics: %v", p1)
	}
}

func TestPanicProfileFiresExactlyOnce(t *testing.T) {
	p := NewPlan(11, ProfilePanic)
	if err := p.Arm(4); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for rank := 0; rank < 4; rank++ {
		for op := int64(0); op < p.StallWindow+8; op++ {
			if p.BeforeOp(rank) {
				fired++
			}
		}
	}
	if fired != 1 {
		t.Fatalf("panic fired %d times, want 1", fired)
	}
}

func TestSkewAccounting(t *testing.T) {
	p := NewPlan(3, ProfileStall)
	p.StallLen = time.Millisecond
	if err := p.Arm(2); err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 2; rank++ {
		for op := int64(0); op < p.StallWindow; op++ {
			p.BeforeOp(rank)
		}
	}
	skew := p.SkewSeconds()
	var total float64
	for _, s := range skew {
		total += s
	}
	want := time.Millisecond.Seconds()
	if total < want*0.99 || total > want*1.01 {
		t.Fatalf("stall skew %v, want ~%v", total, want)
	}
	ops := p.Ops()
	if ops[0] != p.StallWindow || ops[1] != p.StallWindow {
		t.Fatalf("op counts %v", ops)
	}
}

func TestNilAndUnarmedAreInert(t *testing.T) {
	var p *Plan
	if p.BeforeOp(0) || p.MessageDelay(0, 1) != 0 {
		t.Error("nil plan injected")
	}
	q := NewPlan(1, ProfilePanic)
	if q.BeforeOp(0) || q.MessageDelay(0, 1) != 0 {
		t.Error("unarmed plan injected")
	}
}
