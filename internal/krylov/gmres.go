// Package krylov implements the restarted GMRES(m) Krylov solver with
// right preconditioning and modified Gram-Schmidt orthogonalization —
// the linear solver inside every Newton step of the application. The
// operator is an interface, so both assembled matrices and the paper's
// matrix-free finite-difference Jacobian plug in.
package krylov

import (
	"fmt"
	"math"

	"petscfun3d/internal/par"
	"petscfun3d/internal/prof"
)

// Operator applies a linear map y = A x.
type Operator interface {
	Apply(x, y []float64)
}

// Preconditioner applies z = M⁻¹ r.
type Preconditioner interface {
	Apply(r, z []float64)
}

// OperatorFunc adapts a function to Operator.
type OperatorFunc func(x, y []float64)

// Apply implements Operator.
func (f OperatorFunc) Apply(x, y []float64) { f(x, y) }

// PrecondFunc adapts a function to Preconditioner.
type PrecondFunc func(r, z []float64)

// Apply implements Preconditioner.
func (f PrecondFunc) Apply(r, z []float64) { f(r, z) }

// Identity is the no-op preconditioner.
type Identity struct{}

// Apply implements Preconditioner.
func (Identity) Apply(r, z []float64) { copy(z, r) }

// Options configures a GMRES solve.
type Options struct {
	// Restart is the Krylov subspace dimension m of GMRES(m). The paper
	// uses 10-30 (GMRES(20) for Table 4).
	Restart int
	// MaxIters caps the total iterations across restarts (10 for the
	// smallest problems to 80 for the largest, per the paper).
	MaxIters int
	// RelTol is the relative residual convergence tolerance (the paper's
	// inner tolerance: 0.001-0.01).
	RelTol float64
	// AbsTol is the absolute residual tolerance.
	AbsTol float64
	// Orthogonalization selects the Gram-Schmidt variant: "mgs"
	// (modified, default — j+1 sequential inner products per iteration,
	// 2j+3 pool barriers), "cgs" (classical — all j+1 products from one
	// fused par.MDot pass over w and all subtractions from one par.MAxpy
	// sweep: 3 barriers and ~2.5× less memory traffic per iteration;
	// slightly less stable), or "cgs2" (classical with one selective
	// DGKS reorthogonalization pass — the pre-projection ‖w‖² rides the
	// same fused pass, and a second MDot/MAxpy round runs only when the
	// projection cancelled more than half of w's mass; CGS speed with
	// MGS-class orthogonality). The paper lists the orthogonalization
	// mechanism among the Krylov tunables.
	Orthogonalization string
	// Pool is the node-level worker pool for the solver's vector
	// reductions and updates (dot, norm, axpy). The reductions use a
	// fixed-shape segmented accumulation, so residual histories are
	// bitwise identical at every worker count; nil runs sequentially.
	Pool *par.Pool
}

// DefaultOptions mirror the paper's customary settings.
func DefaultOptions() Options {
	return Options{Restart: 20, MaxIters: 80, RelTol: 1e-2, AbsTol: 1e-30}
}

// Stats reports the work performed by a solve, the inputs of the
// parallel-cost model (each iteration costs one operator apply, one
// preconditioner apply, and ~m/2 inner products for orthogonalization).
// InnerProds counts n-length dot products computed; Reductions counts
// synchronizing reduction rounds (pool barriers here, global reductions
// in a distributed run) — "mgs" pays one round per product where the
// fused "cgs"/"cgs2" paths batch a whole column into one, which is
// exactly the distinction the parallel-cost model's reduction term
// needs.
type Stats struct {
	Iterations   int
	MatVecs      int
	PrecondApps  int
	InnerProds   int
	Reductions   int
	Restarts     int
	Converged    bool
	InitialNorm  float64
	ResidualNorm float64
}

// Solve runs right-preconditioned GMRES(m) on A x = b, updating x in
// place (its incoming value is the initial guess). Returns solve
// statistics; an error only for malformed inputs.
func Solve(a Operator, m Preconditioner, b, x []float64, opts Options) (Stats, error) {
	n := len(b)
	if len(x) != n {
		return Stats{}, fmt.Errorf("krylov: len(x)=%d, len(b)=%d", len(x), n)
	}
	if opts.Restart < 1 || opts.MaxIters < 1 {
		return Stats{}, fmt.Errorf("krylov: need positive Restart and MaxIters")
	}
	switch opts.Orthogonalization {
	case "", "mgs", "cgs", "cgs2":
	default:
		return Stats{}, fmt.Errorf("krylov: unknown orthogonalization %q", opts.Orthogonalization)
	}
	if m == nil {
		m = Identity{}
	}
	ksp := prof.Begin(prof.PhaseKrylov)
	defer ksp.End(0, 0)
	apply := func(x, y []float64) {
		sp := prof.Begin(prof.PhaseMatVec)
		a.Apply(x, y)
		sp.End(0, 0) // the operator's own phases (e.g. flux) carry the work
	}
	mr := opts.Restart
	var st Stats

	// Krylov basis and Hessenberg factorization workspace. One contiguous
	// slab per matrix keeps the setup allocations out of the fill loops
	// (no per-row make escaping from a hot-kernel loop) and the basis
	// rows adjacent in memory.
	v := make([][]float64, mr+1)
	vbuf := make([]float64, (mr+1)*n)
	for i := range v {
		v[i] = vbuf[i*n : (i+1)*n] //lint:bce-ok slab carve-up at solve setup runs mr+1 times per solve, not per sweep iteration; prove cannot reason about the i*n products
	}
	h := make([][]float64, mr+1) // h[i][j], i row (0..mr), j col (0..mr-1)
	hbuf := make([]float64, (mr+1)*mr)
	for i := range h {
		h[i] = hbuf[i*mr : (i+1)*mr] //lint:bce-ok slab carve-up at solve setup runs mr+1 times per solve, not per sweep iteration; prove cannot reason about the i*mr products
	}
	cs := make([]float64, mr)
	sn := make([]float64, mr)
	g := make([]float64, mr+1)
	y := make([]float64, mr)
	z := make([]float64, n)
	w := make([]float64, n)
	// Fused-orthogonalization workspace: one Hessenberg column of batched
	// dot results (hcol's extra slot carries the pre-projection ‖w‖² for
	// cgs2 — w itself rides the fused pass as the last vector of vlist),
	// and the negated coefficients MAxpy subtracts with.
	hcol := make([]float64, mr+2)
	hneg := make([]float64, mr+1)
	vlist := make([][]float64, mr+2)

	r := make([]float64, n)
	apply(x, r)
	st.MatVecs++
	for i := range r {
		r[i] = b[i] - r[i]
	}
	beta := par.Norm2(opts.Pool, r)
	st.InitialNorm = beta
	st.ResidualNorm = beta
	target := opts.RelTol * beta
	if opts.AbsTol > target {
		target = opts.AbsTol
	}
	if beta <= target {
		st.Converged = true
		return st, nil
	}

	for st.Iterations < opts.MaxIters {
		// Start (re)cycle.
		if st.Iterations > 0 {
			apply(x, r)
			st.MatVecs++
			for i := range r {
				r[i] = b[i] - r[i]
			}
			beta = par.Norm2(opts.Pool, r)
			st.Restarts++
			if beta <= target {
				st.ResidualNorm = beta
				st.Converged = true
				return st, nil
			}
		}
		inv := 1 / beta
		v0 := v[0][:len(r)] // bce: ties len(v0) to len(r); the range index serves both unchecked
		for i := range r {
			v0[i] = r[i] * inv
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		j := 0
		for ; j < mr && st.Iterations < opts.MaxIters; j++ {
			st.Iterations++
			// w = A M^{-1} v_j.
			m.Apply(v[j], z)
			st.PrecondApps++
			apply(z, w)
			st.MatVecs++
			osp := prof.Begin(prof.PhaseOrtho)
			prof.NoteThreads(prof.PhaseOrtho, opts.Pool.Workers())
			var wwPre float64
			switch opts.Orthogonalization {
			case "", "mgs":
				// Modified Gram-Schmidt: one reduction round per basis
				// vector, w streamed 2(j+1) times.
				for i, vi := range v[:j+1] {
					hij := par.Dot(opts.Pool, w, vi) //lint:bce-ok inlined kernel prologue length check, once per O(n) sweep
					h[i][j] = hij                    //lint:bce-ok one O(1) Hessenberg store per O(n) projection sweep; the row lengths are not provable
					st.InnerProds++
					st.Reductions++
					par.Axpy(opts.Pool, -hij, vi, w)
				}
			case "cgs":
				// Classical Gram-Schmidt on the fused kernels: all j+1
				// projections from ONE pass over w (one batched reduction
				// round), then one fused subtraction sweep. Same dots,
				// same segmented partials as the per-vector path —
				// bitwise identical to it — but w streams once per pass.
				par.MDot(opts.Pool, w, v[:j+1], hcol)
				st.InnerProds += j + 1
				st.Reductions++
				hc := hcol[:j+1]
				hn := hneg[:len(hc)] // bce: ties len(hn) to len(hc); the range index serves both unchecked
				for i, hij := range hc {
					h[i][j] = hij //lint:bce-ok one O(1) Hessenberg store per O(n) projection sweep; the row lengths are not provable
					hn[i] = -hij
				}
				par.MAxpy(opts.Pool, hneg, v[:j+1], w)
			case "cgs2":
				// Classical Gram-Schmidt with selective
				// reorthogonalization: the pre-projection ‖w‖² rides the
				// same fused pass (w itself is the last vector of the
				// batch), so the reorthogonalization decision below costs
				// no extra reduction round.
				vl := vlist[:j+2]
				copy(vl, v[:j+1])
				vl[j+1] = w
				par.MDot(opts.Pool, w, vl, hcol)
				st.InnerProds += j + 2
				st.Reductions++
				wwPre = hcol[j+1]
				hc := hcol[:j+1]
				hn := hneg[:len(hc)] // bce: ties len(hn) to len(hc); the range index serves both unchecked
				for i, hij := range hc {
					h[i][j] = hij //lint:bce-ok one O(1) Hessenberg store per O(n) projection sweep; the row lengths are not provable
					hn[i] = -hij
				}
				par.MAxpy(opts.Pool, hneg, v[:j+1], w)
			}
			h[j+1][j] = par.Norm2(opts.Pool, w)
			st.InnerProds++
			st.Reductions++
			reorth := false
			if opts.Orthogonalization == "cgs2" && h[j+1][j]*h[j+1][j] < 0.5*wwPre {
				// The projection cancelled more than half of w's mass
				// (‖w_after‖ < ‖w_before‖/√2, the DGKS criterion): one
				// full second Gram-Schmidt pass against the basis,
				// corrections folded into the Hessenberg column.
				reorth = true
				par.MDot(opts.Pool, w, v[:j+1], hcol)
				st.InnerProds += j + 1
				st.Reductions++
				hc := hcol[:j+1]
				hn := hneg[:len(hc)] // bce: ties len(hn) to len(hc); the range index serves both unchecked
				for i, cij := range hc {
					h[i][j] += cij //lint:bce-ok one O(1) Hessenberg update per O(n) correction sweep; the row lengths are not provable
					hn[i] = -cij
				}
				par.MAxpy(opts.Pool, hneg, v[:j+1], w)
				h[j+1][j] = par.Norm2(opts.Pool, w)
				st.InnerProds++
				st.Reductions++
			}
			if h[j+1][j] > 1e-300 {
				inv := 1 / h[j+1][j]
				vj := v[j+1][:len(w)] // bce: ties len(vj) to len(w); the range index serves both unchecked
				for i := range w {
					vj[i] = w[i] * inv
				}
			} else {
				// Happy breakdown: exact solution in this subspace.
				for i := range v[j+1] {
					v[j+1][i] = 0
				}
			}
			// The projections, subtractions, norm(s), and the basis
			// scale: all O(n) vector sweeps, charged per mechanism.
			osp.End(orthoFlopsFor(opts.Orthogonalization, j, n, reorth),
				orthoBytesFor(opts.Orthogonalization, j, n, reorth))
			// Apply accumulated Givens rotations to the new column.
			for i := 0; i < j; i++ {
				t := cs[i]*h[i][j] + sn[i]*h[i+1][j] //lint:bce-ok O(restart) Givens update down the Hessenberg column; row lengths are not provable and the loop is negligible next to the n-length sweeps
				h[i+1][j] = -sn[i]*h[i][j] + cs[i]*h[i+1][j]
				h[i][j] = t //lint:bce-ok O(restart) Givens update down the Hessenberg column; row lengths are not provable and the loop is negligible next to the n-length sweeps
			}
			// New rotation to zero h[j+1][j].
			denom := math.Hypot(h[j][j], h[j+1][j])
			if denom < 1e-300 {
				cs[j], sn[j] = 1, 0
			} else {
				cs[j] = h[j][j] / denom
				sn[j] = h[j+1][j] / denom
			}
			h[j][j] = cs[j]*h[j][j] + sn[j]*h[j+1][j]
			h[j+1][j] = 0
			g[j+1] = -sn[j] * g[j]
			g[j] = cs[j] * g[j]
			st.ResidualNorm = math.Abs(g[j+1])
			if st.ResidualNorm <= target {
				j++
				break
			}
		}
		// Solve the j×j triangular system into the preallocated y (every
		// entry of y[:j] is overwritten) and update x += M^{-1} V y.
		yj := y[:j] // bce: j never exceeds mr; one check here serves the back-substitution loops
		for i := j - 1; i >= 0; i-- {
			s := g[i]
			hi := h[i][:j] // bce: ties the row extent to j; prove then erases both checks in the k loop
			for k := i + 1; k < j; k++ {
				s -= hi[k] * yj[k]
			}
			if math.Abs(h[i][i]) < 1e-300 {
				y[i] = 0
			} else {
				y[i] = s / h[i][i]
			}
		}
		for i := range z {
			z[i] = 0
		}
		// z = V y in one fused read-modify-write sweep (bitwise identical
		// to the per-vector Axpy sequence, one barrier instead of j).
		par.MAxpy(opts.Pool, yj, v[:j], z)
		m.Apply(z, w)
		st.PrecondApps++
		par.Axpy(opts.Pool, 1, w, x)
		if st.ResidualNorm <= target {
			st.Converged = true
			return st, nil
		}
	}
	return st, nil
}
