package krylov

import (
	"math"
	"testing"

	"petscfun3d/internal/ilu"
	"petscfun3d/internal/mesh"
	"petscfun3d/internal/sparse"
)

func wingMatrix(t testing.TB, nx, ny, nz, b int, seed uint64) *sparse.BCSR {
	t.Helper()
	m, err := mesh.GenerateWing(mesh.DefaultWingSpec(nx, ny, nz))
	if err != nil {
		t.Fatal(err)
	}
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	a := sparse.BlockPattern(g, b)
	a.FillDeterministic(seed)
	return a
}

func residualNorm(a Operator, b, x []float64) float64 {
	r := make([]float64, len(b))
	a.Apply(x, r)
	var s float64
	for i := range r {
		d := b[i] - r[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestGMRESSolvesDiagonal(t *testing.T) {
	n := 50
	d := make([]float64, n)
	b := make([]float64, n)
	for i := range d {
		d[i] = float64(i%7) + 1
		b[i] = float64(i) - 20
	}
	a := OperatorFunc(func(x, y []float64) {
		for i := range x {
			y[i] = d[i] * x[i]
		}
	})
	x := make([]float64, n)
	st, err := Solve(a, nil, b, x, Options{Restart: 30, MaxIters: 200, RelTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("did not converge: %+v", st)
	}
	for i := range x {
		if math.Abs(x[i]-b[i]/d[i]) > 1e-8 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], b[i]/d[i])
		}
	}
}

func TestGMRESWithILUPreconditioner(t *testing.T) {
	a := wingMatrix(t, 6, 5, 4, 4, 21)
	n := a.N()
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.13)
	}
	f, err := ilu.Factor(a, ilu.Options{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	op := OperatorFunc(a.MulVec)
	pc := PrecondFunc(f.Solve)

	xNoPC := make([]float64, n)
	stNo, err := Solve(op, nil, b, xNoPC, Options{Restart: 20, MaxIters: 400, RelTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	xPC := make([]float64, n)
	stPC, err := Solve(op, pc, b, xPC, Options{Restart: 20, MaxIters: 400, RelTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !stPC.Converged {
		t.Fatalf("preconditioned solve failed: %+v", stPC)
	}
	if stPC.Iterations >= stNo.Iterations {
		t.Errorf("ILU preconditioning did not reduce iterations: %d vs %d", stPC.Iterations, stNo.Iterations)
	}
	if rn := residualNorm(op, b, xPC); rn > 1e-6*st0norm(b) {
		t.Errorf("true residual %g too large", rn)
	}
}

func st0norm(b []float64) float64 { return sparse.Norm2(b) }

func TestGMRESRestartedConverges(t *testing.T) {
	// Tiny restart forces multiple cycles but must still converge on a
	// well-conditioned system.
	a := wingMatrix(t, 5, 4, 4, 1, 31)
	n := a.N()
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	st, err := Solve(OperatorFunc(a.MulVec), nil, b, x, Options{Restart: 5, MaxIters: 500, RelTol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("restarted GMRES failed: %+v", st)
	}
	if st.Restarts == 0 {
		t.Error("expected at least one restart with m=5")
	}
	if rn := residualNorm(OperatorFunc(a.MulVec), b, x); rn > 1e-6*sparse.Norm2(b) {
		t.Errorf("true residual %g", rn)
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	a := wingMatrix(t, 4, 3, 3, 1, 41)
	n := a.N()
	x := make([]float64, n)
	st, err := Solve(OperatorFunc(a.MulVec), nil, make([]float64, n), x, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Iterations != 0 {
		t.Errorf("zero RHS should converge immediately: %+v", st)
	}
	for i := range x {
		if x[i] != 0 {
			t.Fatal("x perturbed on zero RHS")
		}
	}
}

func TestGMRESNonzeroInitialGuess(t *testing.T) {
	a := wingMatrix(t, 4, 4, 3, 2, 51)
	n := a.N()
	b := make([]float64, n)
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Cos(float64(i) * 0.21)
	}
	a.MulVec(want, b)
	x := make([]float64, n)
	for i := range x {
		x[i] = want[i] + 0.01*math.Sin(float64(i))
	}
	st, err := Solve(OperatorFunc(a.MulVec), nil, b, x, Options{Restart: 25, MaxIters: 300, RelTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("not converged: %+v", st)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestGMRESHonorsMaxIters(t *testing.T) {
	a := wingMatrix(t, 6, 5, 4, 4, 61)
	n := a.N()
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	st, err := Solve(OperatorFunc(a.MulVec), nil, b, x, Options{Restart: 10, MaxIters: 3, RelTol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations > 3 {
		t.Errorf("iterations %d exceed cap 3", st.Iterations)
	}
	if st.Converged {
		t.Error("should not converge to 1e-14 in 3 iterations")
	}
}

func TestGMRESInputValidation(t *testing.T) {
	a := OperatorFunc(func(x, y []float64) { copy(y, x) })
	if _, err := Solve(a, nil, make([]float64, 3), make([]float64, 4), DefaultOptions()); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Solve(a, nil, make([]float64, 3), make([]float64, 3), Options{Restart: 0, MaxIters: 5}); err == nil {
		t.Error("restart 0 accepted")
	}
}

func TestGMRESStatsAccounting(t *testing.T) {
	a := wingMatrix(t, 4, 4, 3, 1, 71)
	n := a.N()
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	st, err := Solve(OperatorFunc(a.MulVec), nil, b, x, Options{Restart: 15, MaxIters: 100, RelTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if st.MatVecs < st.Iterations {
		t.Errorf("matvecs %d < iterations %d", st.MatVecs, st.Iterations)
	}
	if st.PrecondApps < st.Iterations {
		t.Errorf("precond applies %d < iterations %d", st.PrecondApps, st.Iterations)
	}
	if st.InnerProds < st.Iterations {
		t.Errorf("inner products %d < iterations %d", st.InnerProds, st.Iterations)
	}
	if st.InitialNorm <= 0 {
		t.Error("initial norm not recorded")
	}
}

func BenchmarkGMRESILU1Wing(b *testing.B) {
	a := wingMatrix(b, 10, 8, 7, 4, 81)
	f, err := ilu.Factor(a, ilu.Options{Level: 1})
	if err != nil {
		b.Fatal(err)
	}
	n := a.N()
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, n)
		if _, err := Solve(OperatorFunc(a.MulVec), PrecondFunc(f.Solve), rhs, x,
			Options{Restart: 20, MaxIters: 60, RelTol: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCGSOrthogonalizationConverges(t *testing.T) {
	a := wingMatrix(t, 6, 5, 4, 4, 91)
	n := a.N()
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.11)
	}
	solve := func(orth string) (Stats, []float64) {
		x := make([]float64, n)
		st, err := Solve(OperatorFunc(a.MulVec), nil, b, x,
			Options{Restart: 25, MaxIters: 400, RelTol: 1e-9, Orthogonalization: orth})
		if err != nil {
			t.Fatal(err)
		}
		return st, x
	}
	stM, xM := solve("mgs")
	stC, xC := solve("cgs")
	if !stM.Converged || !stC.Converged {
		t.Fatalf("not converged: mgs=%v cgs=%v", stM.Converged, stC.Converged)
	}
	var worst float64
	for i := range xM {
		if d := math.Abs(xM[i] - xC[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Errorf("CGS and MGS solutions differ by %g", worst)
	}
	// Both mechanisms compute the same n-length dots per iteration; the
	// fused CGS path batches them into far fewer reduction rounds.
	if stC.InnerProds != stM.InnerProds {
		t.Errorf("CGS inner products %d != MGS %d", stC.InnerProds, stM.InnerProds)
	}
	if stC.Reductions >= stM.Reductions {
		t.Errorf("CGS reduction rounds %d not below MGS %d", stC.Reductions, stM.Reductions)
	}
	if _, err := Solve(OperatorFunc(a.MulVec), nil, b, make([]float64, n),
		Options{Restart: 5, MaxIters: 5, Orthogonalization: "householder"}); err == nil {
		t.Error("unknown orthogonalization accepted")
	}
}

// TestCGS2OrthogonalizationConverges: CGS with selective DGKS
// reorthogonalization matches the MGS solution and keeps the batched
// reduction count — the pre-projection norm rides the fused pass, so a
// non-reorthogonalizing iteration still costs exactly two rounds.
func TestCGS2OrthogonalizationConverges(t *testing.T) {
	a := wingMatrix(t, 6, 5, 4, 4, 91)
	n := a.N()
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.11)
	}
	solve := func(orth string) (Stats, []float64) {
		x := make([]float64, n)
		st, err := Solve(OperatorFunc(a.MulVec), nil, b, x,
			Options{Restart: 25, MaxIters: 400, RelTol: 1e-9, Orthogonalization: orth})
		if err != nil {
			t.Fatal(err)
		}
		return st, x
	}
	stM, xM := solve("mgs")
	st2, x2 := solve("cgs2")
	if !stM.Converged || !st2.Converged {
		t.Fatalf("not converged: mgs=%v cgs2=%v", stM.Converged, st2.Converged)
	}
	var worst float64
	for i := range xM {
		if d := math.Abs(xM[i] - x2[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Errorf("CGS2 and MGS solutions differ by %g", worst)
	}
	if st2.Reductions >= stM.Reductions {
		t.Errorf("CGS2 reduction rounds %d not below MGS %d", st2.Reductions, stM.Reductions)
	}
}

// TestReductionsAccounting pins the per-mechanism synchronizing-round
// arithmetic: MGS pays j+2 rounds at inner step j where the fused paths
// pay 2 (plus 2 per selective reorthogonalization for cgs2) — exactly
// the distinction the parallel-cost model's reduction term consumes.
func TestReductionsAccounting(t *testing.T) {
	a := wingMatrix(t, 5, 4, 4, 4, 37)
	n := a.N()
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Cos(float64(i) * 0.23)
	}
	solve := func(orth string) Stats {
		st, err := Solve(OperatorFunc(a.MulVec), nil, b, make([]float64, n),
			Options{Restart: 12, MaxIters: 60, RelTol: 1e-8, Orthogonalization: orth})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	// Per restart cycle the inner steps are j = 0..k-1; MGS pays
	// Σ(j+2) = k(k+3)/2 rounds over a full cycle, and the same partial
	// sum over a truncated last cycle. Recover the per-cycle step counts
	// from Iterations/Restarts and check the closed forms.
	mgsRounds := func(iters, restarts, restart int) int {
		rounds := 0
		left := iters
		for c := 0; c <= restarts; c++ {
			k := left
			if k > restart {
				k = restart
			}
			rounds += k * (k + 3) / 2
			left -= k
		}
		return rounds
	}
	stM := solve("mgs")
	if want := mgsRounds(stM.Iterations, stM.Restarts, 12); stM.Reductions != want {
		t.Errorf("mgs reductions=%d, want %d (iters=%d restarts=%d)",
			stM.Reductions, want, stM.Iterations, stM.Restarts)
	}
	if stM.InnerProds != stM.Reductions {
		t.Errorf("mgs must pay one round per product: products=%d rounds=%d",
			stM.InnerProds, stM.Reductions)
	}
	stC := solve("cgs")
	if want := 2 * stC.Iterations; stC.Reductions != want {
		t.Errorf("cgs reductions=%d, want %d (2 per iteration)", stC.Reductions, want)
	}
	st2 := solve("cgs2")
	if st2.Reductions < 2*st2.Iterations || st2.Reductions%2 != 0 {
		t.Errorf("cgs2 reductions=%d: want an even count >= %d (2 per iteration + 2 per reorth)",
			st2.Reductions, 2*st2.Iterations)
	}
	if st2.Reductions > 4*st2.Iterations {
		t.Errorf("cgs2 reductions=%d exceed the 2-pass ceiling %d", st2.Reductions, 4*st2.Iterations)
	}
}
