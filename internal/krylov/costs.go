package krylov

// Cost formulas for the GMRES phase spans (enforced by the costconst
// analyzer): one place holds the flop and traffic counts, so the
// profiler's roofline accounting cannot disagree with itself about what
// an orthogonalization step costs.

// orthoFlops and orthoBytes: modified Gram-Schmidt step j (0-based)
// over vectors of n scalars — j+1 projections (dot+axpy), the norm, and
// the basis scale, all O(n) vector sweeps.
func orthoFlops(j, n int) int64 { return (4*int64(j+1) + 3) * int64(n) }
func orthoBytes(j, n int) int64 { return (40*int64(j+1) + 32) * int64(n) }
