package krylov

// Cost formulas for the GMRES phase spans (enforced by the costconst
// analyzer): one place holds the flop and traffic counts, so the
// profiler's roofline accounting cannot disagree with itself about what
// an orthogonalization step costs.

// orthoFlops and orthoBytes: modified Gram-Schmidt step j (0-based)
// over vectors of n scalars — j+1 projections (dot+axpy), the norm, and
// the basis scale, all O(n) vector sweeps. Per projection MGS streams w
// through a 16-byte dot and a 24-byte axpy: 40(j+1) bytes per element
// before the norm (16) and scale (16).
func orthoFlops(j, n int) int64 { return (4*int64(j+1) + 3) * int64(n) }
func orthoBytes(j, n int) int64 { return (40*int64(j+1) + 32) * int64(n) }

// orthoFlopsCGS and orthoBytesCGS: fused classical Gram-Schmidt step j
// — the same 2(j+1)n projection flops and 2(j+1)n subtraction flops as
// MGS plus the norm (2n) and scale (n), but the traffic collapses: one
// MDot pass (8(j+2)n bytes: shared w plus j+1 basis loads), one MAxpy
// sweep (8(j+1)n + 16n), the norm (16n), and the scale (16n) —
// 16(j+1)+56 bytes per element against MGS's 40(j+1)+32.
func orthoFlopsCGS(j, n int) int64 { return (4*int64(j+1) + 3) * int64(n) }
func orthoBytesCGS(j, n int) int64 { return (16*int64(j+1) + 56) * int64(n) }

// orthoFlopsCGS2 and orthoBytesCGS2: the cgs2 base pass — CGS whose
// MDot batch carries w itself as one extra vector (the pre-projection
// ‖w‖² for the reorthogonalization decision): +2n flops and +8n bytes
// over plain CGS.
func orthoFlopsCGS2(j, n int) int64 { return (4*int64(j+1) + 5) * int64(n) }
func orthoBytesCGS2(j, n int) int64 { return (16*int64(j+1) + 64) * int64(n) }

// reorthFlops and reorthBytes: one full DGKS correction pass — a second
// MDot (2(j+1)n flops, 8(j+2)n bytes), a second MAxpy (2(j+1)n flops,
// (8(j+1)+16)n bytes), and the norm recomputation (2n flops, 16n bytes).
func reorthFlops(j, n int) int64 { return (4*int64(j+1) + 2) * int64(n) }
func reorthBytes(j, n int) int64 { return (16*int64(j+1) + 40) * int64(n) }

// orthoFlopsFor and orthoBytesFor dispatch the per-mechanism formulas
// for the orthogonalization span charge.
func orthoFlopsFor(mech string, j, n int, reorth bool) int64 {
	switch mech {
	case "cgs":
		return orthoFlopsCGS(j, n)
	case "cgs2":
		f := orthoFlopsCGS2(j, n)
		if reorth {
			f += reorthFlops(j, n)
		}
		return f
	}
	return orthoFlops(j, n)
}

func orthoBytesFor(mech string, j, n int, reorth bool) int64 {
	switch mech {
	case "cgs":
		return orthoBytesCGS(j, n)
	case "cgs2":
		b := orthoBytesCGS2(j, n)
		if reorth {
			b += reorthBytes(j, n)
		}
		return b
	}
	return orthoBytes(j, n)
}
