package cachesim

import (
	"testing"

	"petscfun3d/internal/mesh"
	"petscfun3d/internal/sparse"
)

func TestCacheGeometryErrors(t *testing.T) {
	if _, err := NewCache("x", 0, 32, 2); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewCache("x", 100, 32, 2); err == nil {
		t.Error("non-multiple size accepted")
	}
	if _, err := NewCache("x", 64, 32, 4); err == nil {
		t.Error("fewer lines than ways accepted")
	}
}

func TestCacheDirectMappedConflict(t *testing.T) {
	// Direct-mapped, 4 lines of 64 B: addresses 0 and 256 map to set 0.
	c := MustCache("dm", 256, 64, 1)
	c.Access(0)
	c.Access(256)
	c.Access(0)
	c.Access(256)
	if c.Misses != 4 {
		t.Errorf("conflict thrash: misses = %d, want 4", c.Misses)
	}
	// 2-way cache of the same size holds both lines.
	c2 := MustCache("2w", 256, 64, 2)
	c2.Access(0)
	c2.Access(256)
	c2.Access(0)
	c2.Access(256)
	if c2.Misses != 2 {
		t.Errorf("2-way: misses = %d, want 2 (compulsory only)", c2.Misses)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// Fully associative cache of 2 lines: A B A C must evict B, not A.
	c := MustCache("fa", 128, 64, 2)
	c.Access(0)       // A: miss
	c.Access(64)      // B: miss
	c.Access(0)       // A: hit (A becomes MRU)
	c.Access(2 << 10) // C: miss, evicts B
	if c.Misses != 3 {
		t.Fatalf("misses = %d, want 3", c.Misses)
	}
	if !c.Access(0) {
		t.Error("A should still be resident")
	}
	if c.Access(64) {
		t.Error("B should have been evicted")
	}
}

func TestCacheHitSequential(t *testing.T) {
	c := MustCache("seq", 1<<10, 64, 2)
	// 8 accesses within one line: 1 miss, 7 hits.
	for i := 0; i < 8; i++ {
		c.Access(uint64(i * 8))
	}
	if c.Misses != 1 || c.Accesses != 8 {
		t.Errorf("misses=%d accesses=%d, want 1/8", c.Misses, c.Accesses)
	}
	if got := c.MissRate(); got != 0.125 {
		t.Errorf("MissRate = %v, want 0.125", got)
	}
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 || c.MissRate() != 0 {
		t.Error("Reset did not clear counters")
	}
	if c.Access(0) {
		t.Error("Reset did not clear contents")
	}
}

func TestHierarchySpanningAccess(t *testing.T) {
	h := &Hierarchy{
		L1:  MustCache("L1", 1<<10, 32, 2),
		L2:  MustCache("L2", 8<<10, 128, 2),
		TLB: MustCache("TLB", 4*4<<10, 4<<10, 4),
	}
	// A 64-byte access spanning two 32-byte L1 lines.
	h.Access(0, 64)
	if h.L1.Accesses != 2 {
		t.Errorf("L1 accesses = %d, want 2", h.L1.Accesses)
	}
	if h.TLB.Accesses != 1 {
		t.Errorf("TLB accesses = %d, want 1", h.TLB.Accesses)
	}
	// An access crossing a page boundary touches two TLB entries.
	h.Reset()
	h.Access(4095, 2)
	if h.TLB.Accesses != 2 {
		t.Errorf("page-crossing TLB accesses = %d, want 2", h.TLB.Accesses)
	}
	h.Access(0, 0) // degenerate: no-op
	c := h.Counters()
	if c.Accesses != h.L1.Accesses {
		t.Error("Counters snapshot mismatched")
	}
}

func TestL2OnlyAccessedOnL1Miss(t *testing.T) {
	h := &Hierarchy{
		L1:  MustCache("L1", 1<<10, 32, 2),
		L2:  MustCache("L2", 8<<10, 128, 2),
		TLB: MustCache("TLB", 4*4<<10, 4<<10, 4),
	}
	h.Access(0, 8)
	h.Access(0, 8)
	if h.L2.Accesses != 1 {
		t.Errorf("L2 accesses = %d, want 1 (only the L1 miss)", h.L2.Accesses)
	}
}

// smallHierarchy returns a hierarchy small enough that a modest test mesh
// exhibits capacity behavior.
func smallHierarchy() *Hierarchy {
	return &Hierarchy{
		L1:  MustCache("L1", 2<<10, 32, 2),
		L2:  MustCache("L2", 32<<10, 128, 2),
		TLB: MustCache("TLB", 16*4<<10, 4<<10, 16),
	}
}

func buildTestMesh(t testing.TB) *mesh.Mesh {
	t.Helper()
	m, err := mesh.GenerateWing(mesh.DefaultWingSpec(14, 11, 9))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInterlacingReducesSpMVMisses(t *testing.T) {
	m := buildTestMesh(t)
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	b := 4
	inter := sparse.ScalarPattern(g, b, sparse.Interlaced)
	non := sparse.ScalarPattern(g, b, sparse.NonInterlaced)

	run := func(a *sparse.CSR) Counters {
		h := smallHierarchy()
		as := NewAddressSpace()
		loc := PlaceCSR(as, a)
		TraceCSRSpMV(h, a, loc)
		return h.Counters()
	}
	ci, cn := run(inter), run(non)
	if ci.Accesses != cn.Accesses {
		t.Fatalf("access counts differ: %d vs %d (same nnz expected)", ci.Accesses, cn.Accesses)
	}
	if ci.L2Misses >= cn.L2Misses {
		t.Errorf("interlaced L2 misses %d not < noninterlaced %d", ci.L2Misses, cn.L2Misses)
	}
	if ci.TLBMisses >= cn.TLBMisses {
		t.Errorf("interlaced TLB misses %d not < noninterlaced %d", ci.TLBMisses, cn.TLBMisses)
	}
}

func TestBlockingReducesIndexTraffic(t *testing.T) {
	m := buildTestMesh(t)
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	b := 4
	scalar := sparse.ScalarPattern(g, b, sparse.Interlaced)
	block := sparse.BlockPattern(g, b)

	hs, hb := smallHierarchy(), smallHierarchy()
	asS, asB := NewAddressSpace(), NewAddressSpace()
	TraceCSRSpMV(hs, scalar, PlaceCSR(asS, scalar))
	TraceBCSRSpMV(hb, block, PlaceBCSR(asB, block, false))
	cs, cb := hs.Counters(), hb.Counters()
	// Blocking issues far fewer accesses (one index per block, contiguous
	// block values) and should not increase L2 misses.
	if cb.Accesses >= cs.Accesses {
		t.Errorf("block accesses %d not < scalar %d", cb.Accesses, cs.Accesses)
	}
	if cb.L2Misses > cs.L2Misses {
		t.Errorf("block L2 misses %d > scalar %d", cb.L2Misses, cs.L2Misses)
	}
}

func TestSinglePrecisionHalvesValueTraffic(t *testing.T) {
	m := buildTestMesh(t)
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	block := sparse.BlockPattern(g, 4)
	run := func(single bool) Counters {
		h := smallHierarchy()
		as := NewAddressSpace()
		TraceBCSRSpMV(h, block, PlaceBCSR(as, block, single))
		return h.Counters()
	}
	cd, cs := run(false), run(true)
	if cs.L2Misses >= cd.L2Misses {
		t.Errorf("single-precision L2 misses %d not < double %d", cs.L2Misses, cd.L2Misses)
	}
}

func TestEdgeReorderingReducesFluxTLBMisses(t *testing.T) {
	m := buildTestMesh(t)
	colored, _ := mesh.ColorEdges(m.Edges, m.NumVertices())
	sorted := mesh.SortEdges(m.Edges)

	run := func(edges []mesh.Edge) Counters {
		h := smallHierarchy()
		as := NewAddressSpace()
		loc := PlaceFlux(as, m.NumVertices(), 4, sparse.Interlaced)
		TraceFlux(h, edges, loc)
		return h.Counters()
	}
	cc, cs := run(colored), run(sorted)
	if cs.TLBMisses*4 >= cc.TLBMisses {
		t.Errorf("sorted-edge TLB misses %d not <= 1/4 of colored %d", cs.TLBMisses, cc.TLBMisses)
	}
	if cs.L2Misses >= cc.L2Misses {
		t.Errorf("sorted-edge L2 misses %d not < colored %d", cs.L2Misses, cc.L2Misses)
	}
}

func TestAddressSpaceAlignmentAndDisjointness(t *testing.T) {
	as := NewAddressSpace()
	a := as.Alloc(100, 64)
	b := as.Alloc(10, 64)
	if a%64 != 0 || b%64 != 0 {
		t.Error("allocations not aligned")
	}
	if b < a+100 {
		t.Error("allocations overlap")
	}
	c := as.Alloc(8, 0) // default alignment
	if c%8 != 0 {
		t.Error("default alignment broken")
	}
}

func TestR10000Profiles(t *testing.T) {
	h := R10000()
	if h.L2.LineSize != 128 || h.TLB.Ways != 64 {
		t.Error("R10000 geometry unexpected")
	}
	s := ScaledR10000(16)
	if s.L2.Sets*s.L2.Ways*s.L2.LineSize >= h.L2.Sets*h.L2.Ways*h.L2.LineSize {
		t.Error("scaled hierarchy not smaller")
	}
	tiny := ScaledR10000(1 << 30)
	if tiny.L1.Sets < 1 || tiny.L2.Sets < 1 {
		t.Error("extreme scaling produced invalid caches")
	}
}

func BenchmarkTraceFluxSorted(b *testing.B) {
	m := buildTestMesh(b)
	sorted := mesh.SortEdges(m.Edges)
	for i := 0; i < b.N; i++ {
		h := smallHierarchy()
		as := NewAddressSpace()
		loc := PlaceFlux(as, m.NumVertices(), 4, sparse.Interlaced)
		TraceFlux(h, sorted, loc)
	}
}

func TestTraceILUSolveSinglePrecisionFewerMisses(t *testing.T) {
	m := buildTestMesh(t)
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	a := sparse.BlockPattern(g, 4)
	run := func(valBytes int) Counters {
		h := smallHierarchy()
		as := NewAddressSpace()
		loc := PlaceILU(as, a.NB, a.B, a.NNZBlocks(), valBytes)
		TraceILUSolve(h, a.RowPtr, a.ColIdx, a.NB, a.B, loc)
		return h.Counters()
	}
	c8, c4 := run(8), run(4)
	if c4.L2Misses >= c8.L2Misses {
		t.Errorf("float32 factors L2 misses %d not < float64 %d", c4.L2Misses, c8.L2Misses)
	}
}

func TestPenaltiesSeconds(t *testing.T) {
	p := Penalties{CyclesPerAccess: 1, L1MissCycles: 10, L2MissCycles: 100, TLBMissCycles: 70, ClockHz: 100}
	c := Counters{Accesses: 100, L1Misses: 10, L2Misses: 1, TLBMisses: 2}
	// cycles = 100 + 100 + 100 + 140 = 440; at 100 Hz -> 4.4 s.
	if got := p.Seconds(c); got != 4.4 {
		t.Errorf("Seconds = %g, want 4.4", got)
	}
	r := R10000Penalties()
	if r.ClockHz != 250e6 || r.L2MissCycles <= r.L1MissCycles {
		t.Error("R10000 penalties implausible")
	}
}
