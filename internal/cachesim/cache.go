// Package cachesim provides a trace-driven memory-hierarchy simulator —
// set-associative LRU caches and a TLB — standing in for the R10000
// hardware counters the paper uses in Figure 3. Kernels are replayed as
// address traces against a Hierarchy, which counts hits and misses at
// each level.
package cachesim

import "fmt"

// Cache is a set-associative cache with LRU replacement. A TLB is modeled
// as a Cache whose "line size" is the page size (typically fully
// associative: Ways = entries, one set).
type Cache struct {
	Name     string
	LineSize int // bytes per line (or page)
	Sets     int
	Ways     int

	// tags[s] holds the resident line tags of set s in MRU-first order.
	tags [][]uint64

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of the given total size in bytes. sizeBytes
// must be divisible by lineSize*ways.
func NewCache(name string, sizeBytes, lineSize, ways int) (*Cache, error) {
	if lineSize <= 0 || ways <= 0 || sizeBytes <= 0 {
		return nil, fmt.Errorf("cachesim: nonpositive cache geometry")
	}
	lines := sizeBytes / lineSize
	if lines*lineSize != sizeBytes {
		return nil, fmt.Errorf("cachesim: size %d not a multiple of line size %d", sizeBytes, lineSize)
	}
	sets := lines / ways
	if sets == 0 || sets*ways != lines {
		return nil, fmt.Errorf("cachesim: %d lines not divisible into %d ways", lines, ways)
	}
	c := &Cache{Name: name, LineSize: lineSize, Sets: sets, Ways: ways}
	c.tags = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, 0, ways)
	}
	return c, nil
}

// MustCache is NewCache that panics on error, for static configurations.
func MustCache(name string, sizeBytes, lineSize, ways int) *Cache {
	c, err := NewCache(name, sizeBytes, lineSize, ways)
	if err != nil {
		//lint:panic-ok Must-style constructor: panicking on an invalid static configuration is its documented contract
		panic(err)
	}
	return c
}

// Access touches the line containing addr, returning true on a hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	line := addr / uint64(c.LineSize)
	set := line % uint64(c.Sets)
	tags := c.tags[set]
	for i, t := range tags {
		if t == line {
			// Move to MRU position.
			copy(tags[1:i+1], tags[:i])
			tags[0] = line
			return true
		}
	}
	c.Misses++
	if len(tags) < c.Ways {
		tags = append(tags, 0)
	}
	copy(tags[1:], tags)
	tags[0] = line
	c.tags[set] = tags
	return false
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = c.tags[i][:0]
	}
	c.Accesses, c.Misses = 0, 0
}

// MissRate returns Misses/Accesses (zero when no accesses were made).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Hierarchy models the processor's data-memory path: an L1 cache, a
// unified L2 cache behind it, and a TLB consulted on every access.
type Hierarchy struct {
	L1  *Cache
	L2  *Cache
	TLB *Cache
}

// Counters is a snapshot of miss counts by level.
type Counters struct {
	Accesses  uint64
	L1Misses  uint64
	L2Misses  uint64
	TLBMisses uint64
}

// R10000 returns a hierarchy resembling the paper's 250 MHz MIPS R10000
// Origin 2000 node: 32 KB 2-way L1 with 32-byte lines, 4 MB 2-way L2 with
// 128-byte lines, 64-entry fully associative TLB over 16 KB pages.
func R10000() *Hierarchy {
	return &Hierarchy{
		L1:  MustCache("L1", 32<<10, 32, 2),
		L2:  MustCache("L2", 4<<20, 128, 2),
		TLB: MustCache("TLB", 64*16<<10, 16<<10, 64),
	}
}

// ScaledR10000 returns the R10000 hierarchy with capacities scaled by
// 1/scale (line and page sizes preserved). Experiments on meshes scaled
// down from the paper's sizes use a correspondingly scaled hierarchy so
// working-set-to-cache ratios match the original.
func ScaledR10000(scale int) *Hierarchy {
	if scale < 1 {
		scale = 1
	}
	l2 := 4 << 20 / scale
	if l2 < 4096 {
		l2 = 4096
	}
	l1 := 32 << 10 / scale
	if l1 < 1024 {
		l1 = 1024
	}
	tlbEntries := 64 / scale
	if tlbEntries < 4 {
		tlbEntries = 4
	}
	return &Hierarchy{
		L1:  MustCache("L1", l1, 32, 2),
		L2:  MustCache("L2", l2, 128, 2),
		TLB: MustCache("TLB", tlbEntries*16<<10, 16<<10, tlbEntries),
	}
}

// Access touches size bytes starting at addr: every cache line spanned is
// accessed in L1 (missing into L2), and every page spanned is accessed in
// the TLB.
func (h *Hierarchy) Access(addr uint64, size int) {
	if size <= 0 {
		return
	}
	first := addr / uint64(h.L1.LineSize)
	last := (addr + uint64(size) - 1) / uint64(h.L1.LineSize)
	for line := first; line <= last; line++ {
		a := line * uint64(h.L1.LineSize)
		if !h.L1.Access(a) {
			h.L2.Access(a)
		}
	}
	firstPg := addr / uint64(h.TLB.LineSize)
	lastPg := (addr + uint64(size) - 1) / uint64(h.TLB.LineSize)
	for pg := firstPg; pg <= lastPg; pg++ {
		h.TLB.Access(pg * uint64(h.TLB.LineSize))
	}
}

// Counters returns the current counter snapshot.
func (h *Hierarchy) Counters() Counters {
	return Counters{
		Accesses:  h.L1.Accesses,
		L1Misses:  h.L1.Misses,
		L2Misses:  h.L2.Misses,
		TLBMisses: h.TLB.Misses,
	}
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.TLB.Reset()
}

// Penalties converts miss counters into modeled execution time: a base
// cost per access (issue + hit latency, amortized over superscalar
// issue) plus per-event miss penalties, at a given clock.
type Penalties struct {
	CyclesPerAccess float64
	L1MissCycles    float64
	L2MissCycles    float64
	TLBMissCycles   float64
	ClockHz         float64
}

// R10000Penalties returns penalties resembling the paper's 250 MHz MIPS
// R10000: ~10-cycle L2 hit after an L1 miss, ~100-cycle memory access
// after an L2 miss, ~70-cycle software TLB refill.
func R10000Penalties() Penalties {
	return Penalties{
		CyclesPerAccess: 1,
		L1MissCycles:    10,
		L2MissCycles:    100,
		TLBMissCycles:   70,
		ClockHz:         250e6,
	}
}

// Seconds models the execution time of a trace with counters c.
func (p Penalties) Seconds(c Counters) float64 {
	cycles := p.CyclesPerAccess*float64(c.Accesses) +
		p.L1MissCycles*float64(c.L1Misses) +
		p.L2MissCycles*float64(c.L2Misses) +
		p.TLBMissCycles*float64(c.TLBMisses)
	return cycles / p.ClockHz
}

// AddressSpace hands out non-overlapping base addresses for the arrays of
// a simulated kernel.
type AddressSpace struct {
	next uint64
}

// NewAddressSpace returns an allocator starting at a page-aligned,
// nonzero base.
func NewAddressSpace() *AddressSpace { return &AddressSpace{next: 1 << 20} }

// Alloc reserves n bytes aligned to align (a power of two) and returns
// the base address.
func (s *AddressSpace) Alloc(n int, align int) uint64 {
	if align <= 0 {
		align = 8
	}
	a := uint64(align)
	s.next = (s.next + a - 1) &^ (a - 1)
	base := s.next
	s.next += uint64(n)
	return base
}
