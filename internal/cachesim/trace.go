package cachesim

import (
	"petscfun3d/internal/mesh"
	"petscfun3d/internal/sparse"
)

// This file replays the memory access patterns of the application's two
// dominant kernels — the edge-based flux loop and the sparse
// matrix-vector product — against a simulated hierarchy. The replays
// mirror the load/store sequences of the real kernels in
// internal/sparse and internal/euler, so the simulated counters respond
// to layout and ordering choices exactly as the R10000's hardware
// counters do in the paper's Figure 3.

const (
	sizeF64 = 8
	sizeF32 = 4
	sizeI32 = 4
)

// CSRLayout bundles the simulated base addresses of a CSR SpMV's arrays.
type CSRLayout struct {
	RowPtr, ColIdx, Val, X, Y uint64
}

// PlaceCSR allocates address ranges for the arrays of y = A x.
func PlaceCSR(as *AddressSpace, a *sparse.CSR) CSRLayout {
	return CSRLayout{
		RowPtr: as.Alloc((a.N+1)*sizeI32, 64),
		ColIdx: as.Alloc(a.NNZ()*sizeI32, 64),
		Val:    as.Alloc(a.NNZ()*sizeF64, 64),
		X:      as.Alloc(a.N*sizeF64, 64),
		Y:      as.Alloc(a.N*sizeF64, 64),
	}
}

// TraceCSRSpMV replays y = A x for a scalar CSR matrix.
func TraceCSRSpMV(h *Hierarchy, a *sparse.CSR, loc CSRLayout) {
	for i := 0; i < a.N; i++ {
		h.Access(loc.RowPtr+uint64(i)*sizeI32, 2*sizeI32)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			h.Access(loc.ColIdx+uint64(k)*sizeI32, sizeI32)
			h.Access(loc.Val+uint64(k)*sizeF64, sizeF64)
			h.Access(loc.X+uint64(a.ColIdx[k])*sizeF64, sizeF64)
		}
		h.Access(loc.Y+uint64(i)*sizeF64, sizeF64)
	}
}

// BCSRLayout bundles the simulated base addresses of a BCSR SpMV.
type BCSRLayout struct {
	RowPtr, ColIdx, Val, X, Y uint64
	valSize                   int
}

// PlaceBCSR allocates address ranges for a block SpMV. When single is
// true the value array is float32 (the paper's reduced-precision
// preconditioner storage).
func PlaceBCSR(as *AddressSpace, a *sparse.BCSR, single bool) BCSRLayout {
	vs := sizeF64
	if single {
		vs = sizeF32
	}
	return BCSRLayout{
		RowPtr:  as.Alloc((a.NB+1)*sizeI32, 64),
		ColIdx:  as.Alloc(a.NNZBlocks()*sizeI32, 64),
		Val:     as.Alloc(a.NNZ()*vs, 64),
		X:       as.Alloc(a.N()*sizeF64, 64),
		Y:       as.Alloc(a.N()*sizeF64, 64),
		valSize: vs,
	}
}

// TraceBCSRSpMV replays y = A x for a block CSR matrix: one index load
// per block, a contiguous B×B value read, and a contiguous B-wide x read
// (held in registers across the block's rows).
func TraceBCSRSpMV(h *Hierarchy, a *sparse.BCSR, loc BCSRLayout) {
	b := a.B
	bb := b * b
	for i := 0; i < a.NB; i++ {
		h.Access(loc.RowPtr+uint64(i)*sizeI32, 2*sizeI32)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			h.Access(loc.ColIdx+uint64(k)*sizeI32, sizeI32)
			h.Access(loc.Val+uint64(int(k)*bb*loc.valSize), bb*loc.valSize)
			h.Access(loc.X+uint64(int(a.ColIdx[k])*b)*sizeF64, b*sizeF64)
		}
		h.Access(loc.Y+uint64(i*b)*sizeF64, b*sizeF64)
	}
}

// ILULayout bundles the simulated base addresses of a block triangular
// solve over an ILU factorization's pattern.
type ILULayout struct {
	RowPtr, ColIdx, Val, InvDiag, B, X uint64
	valSize                            int
}

// PlaceILU allocates address ranges for a triangular solve over a factor
// with nb block rows of size b and nnzBlocks stored blocks; valBytes is
// 4 for single-precision factor storage, 8 for double.
func PlaceILU(as *AddressSpace, nb, b, nnzBlocks, valBytes int) ILULayout {
	return ILULayout{
		RowPtr:  as.Alloc((nb+1)*sizeI32, 64),
		ColIdx:  as.Alloc(nnzBlocks*sizeI32, 64),
		Val:     as.Alloc(nnzBlocks*b*b*valBytes, 64),
		InvDiag: as.Alloc(nb*b*b*valBytes, 64),
		B:       as.Alloc(nb*b*sizeF64, 64),
		X:       as.Alloc(nb*b*sizeF64, 64),
		valSize: valBytes,
	}
}

// TraceILUSolve replays the forward+backward block triangular solve:
// every stored factor block is read exactly once, plus the inverted
// diagonals and the right-hand-side/solution vectors — the memory-
// bandwidth-bound kernel of the paper's Table 2.
func TraceILUSolve(h *Hierarchy, rowPtr, colIdx []int32, nb, b int, loc ILULayout) {
	bb := b * b
	// Forward sweep (rows ascending), then backward (descending); the
	// same blocks are partitioned between the two sweeps, so tracing
	// each block once per solve at its row's position is faithful.
	for i := 0; i < nb; i++ {
		h.Access(loc.RowPtr+uint64(i)*sizeI32, 2*sizeI32)
		h.Access(loc.B+uint64(i*b)*sizeF64, b*sizeF64)
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			h.Access(loc.ColIdx+uint64(k)*sizeI32, sizeI32)
			h.Access(loc.Val+uint64(int(k)*bb*loc.valSize), bb*loc.valSize)
			h.Access(loc.X+uint64(int(colIdx[k])*b)*sizeF64, b*sizeF64)
		}
		h.Access(loc.InvDiag+uint64(i*bb*loc.valSize), bb*loc.valSize)
		h.Access(loc.X+uint64(i*b)*sizeF64, b*sizeF64)
	}
}

// FluxLayout bundles the simulated base addresses of the edge-based flux
// kernel's arrays.
type FluxLayout struct {
	Coords, State, Residual uint64
	nv, b                   int
	layout                  sparse.Layout
}

// PlaceFlux allocates address ranges for a flux evaluation over nv
// vertices with b unknowns per vertex under the given state-vector
// layout.
func PlaceFlux(as *AddressSpace, nv, b int, l sparse.Layout) FluxLayout {
	return FluxLayout{
		Coords:   as.Alloc(nv*3*sizeF64, 64),
		State:    as.Alloc(nv*b*sizeF64, 64),
		Residual: as.Alloc(nv*b*sizeF64, 64),
		nv:       nv, b: b, layout: l,
	}
}

// vertexData touches the b state (or residual) values of vertex v: one
// contiguous read when interlaced, b strided reads when noninterlaced.
func (loc FluxLayout) vertexData(h *Hierarchy, base uint64, v int) {
	if loc.layout == sparse.Interlaced {
		h.Access(base+uint64(v*loc.b)*sizeF64, loc.b*sizeF64)
		return
	}
	for c := 0; c < loc.b; c++ {
		h.Access(base+uint64(c*loc.nv+v)*sizeF64, sizeF64)
	}
}

// TraceFlux replays one pass of the edge-based flux loop over edges (in
// the order given): per edge, read both endpoints' coordinates and state
// and read-modify-write both endpoints' residuals.
func TraceFlux(h *Hierarchy, edges []mesh.Edge, loc FluxLayout) {
	for _, e := range edges {
		for _, v := range [2]int32{e.A, e.B} {
			h.Access(loc.Coords+uint64(v)*3*sizeF64, 3*sizeF64)
			loc.vertexData(h, loc.State, int(v))
		}
		for _, v := range [2]int32{e.A, e.B} {
			// Read-modify-write: two touches of the same locations.
			loc.vertexData(h, loc.Residual, int(v))
			loc.vertexData(h, loc.Residual, int(v))
		}
	}
}
