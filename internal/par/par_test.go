package par

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

type countTask struct {
	hits  []int32
	total atomic.Int32
}

func (t *countTask) RunShard(w, nw int) {
	t.hits[w]++
	t.total.Add(1)
}

func TestPoolRunsEveryWorkerOnce(t *testing.T) {
	for _, nw := range []int{1, 2, 4, 8} {
		p := New(nw)
		task := &countTask{hits: make([]int32, nw)}
		for rep := 0; rep < 3; rep++ {
			p.Run(task)
		}
		p.Close()
		if got := task.total.Load(); got != int32(3*nw) {
			t.Fatalf("nw=%d: %d shard runs, want %d", nw, got, 3*nw)
		}
		for w, h := range task.hits {
			if h != 3 {
				t.Fatalf("nw=%d: worker %d ran %d times, want 3", nw, w, h)
			}
		}
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool has %d workers", p.Workers())
	}
	task := &countTask{hits: make([]int32, 1)}
	p.Run(task)
	p.Close()
	if task.hits[0] != 1 {
		t.Fatalf("nil pool ran the shard %d times", task.hits[0])
	}
}

func TestDotBitwiseIdenticalAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 5, 63, 64, 65, 1000, 12345} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		want := Dot(nil, x, y)
		wantN := Norm2(nil, x)
		for _, nw := range []int{1, 2, 4, 8} {
			p := New(nw)
			for rep := 0; rep < 3; rep++ {
				if got := Dot(p, x, y); got != want {
					t.Fatalf("n=%d nw=%d rep=%d: Dot=%x, want %x", n, nw, rep, got, want)
				}
				if got := Norm2(p, x); got != wantN {
					t.Fatalf("n=%d nw=%d rep=%d: Norm2=%x, want %x", n, nw, rep, got, wantN)
				}
			}
			p.Close()
		}
	}
}

func TestAxpyBitwiseIdenticalAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 4321
	x := make([]float64, n)
	y0 := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y0[i] = rng.NormFloat64()
	}
	want := append([]float64(nil), y0...)
	Axpy(nil, 0.37, x, want)
	for _, nw := range []int{1, 2, 4, 8} {
		p := New(nw)
		y := append([]float64(nil), y0...)
		Axpy(p, 0.37, x, y)
		p.Close()
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("nw=%d: y[%d]=%x, want %x", nw, i, y[i], want[i])
			}
		}
	}
}

func TestStripesBalancedAndComplete(t *testing.T) {
	// Weighted rows: prefix like a RowPtr with skewed row sizes.
	prefix := []int32{0}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		w := int32(1 + rng.Intn(20))
		if i < 5 {
			w = 200 // a few heavy rows up front
		}
		prefix = append(prefix, prefix[len(prefix)-1]+w)
	}
	items := len(prefix) - 1
	total := prefix[items]
	for _, nw := range []int{1, 2, 3, 4, 8} {
		bounds := make([]int32, nw+1)
		Stripes(prefix, nw, bounds)
		if bounds[0] != 0 || bounds[nw] != int32(items) {
			t.Fatalf("nw=%d: bounds do not cover the items: %v", nw, bounds)
		}
		for w := 0; w < nw; w++ {
			if bounds[w] > bounds[w+1] {
				t.Fatalf("nw=%d: non-monotone bounds %v", nw, bounds)
			}
		}
		// Each stripe's weight stays within one max item weight of the
		// ideal share (the best a contiguous prefix partition can do).
		var maxItem int32
		for i := 0; i < items; i++ {
			if w := prefix[i+1] - prefix[i]; w > maxItem {
				maxItem = w
			}
		}
		ideal := float64(total) / float64(nw)
		for w := 0; w < nw; w++ {
			got := float64(prefix[bounds[w+1]] - prefix[bounds[w]])
			if got > ideal+float64(maxItem) {
				t.Fatalf("nw=%d stripe %d carries %.0f nnz, ideal %.0f, max item %d", nw, w, got, ideal, maxItem)
			}
		}
	}
}

type panicTask struct{ victim int }

func (t *panicTask) RunShard(w, nw int) {
	if w == t.victim {
		panic("shard boom")
	}
}

func TestWorkerPanicReRaisedOnCaller(t *testing.T) {
	p := New(4)
	defer p.Close()
	for _, victim := range []int{0, 2} {
		func() {
			defer func() {
				e := recover()
				if e == nil {
					t.Fatalf("victim=%d: panic not re-raised", victim)
				}
				if s, ok := e.(string); !ok || !strings.Contains(s, "shard boom") {
					t.Fatalf("victim=%d: unexpected panic payload %v", victim, e)
				}
			}()
			p.Run(&panicTask{victim: victim})
		}()
	}
	// The pool survives a panicked task.
	task := &countTask{hits: make([]int32, 4)}
	p.Run(task)
	if task.total.Load() != 4 {
		t.Fatalf("pool unusable after panic: %d shards ran", task.total.Load())
	}
}

// TestConcurrentPoolsRace exercises many pools concurrently on distinct
// data — the usage pattern of per-rank pools under the race detector.
func TestConcurrentPoolsRace(t *testing.T) {
	const pools = 8
	var wg sync.WaitGroup
	for g := 0; g < pools; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := New(1 + g%4)
			defer p.Close()
			rng := rand.New(rand.NewSource(int64(g)))
			x := make([]float64, 2048)
			y := make([]float64, 2048)
			for i := range x {
				x[i] = rng.Float64()
				y[i] = rng.Float64()
			}
			want := Dot(nil, x, y)
			for rep := 0; rep < 50; rep++ {
				if got := Dot(p, x, y); got != want {
					t.Errorf("pool %d rep %d: Dot drifted", g, rep)
					return
				}
				Axpy(p, 1e-9, x, y)
				want = Dot(nil, x, y)
			}
		}(g)
	}
	wg.Wait()
}

// TestRunSteadyStateAllocs pins the zero-allocation contract of the hot
// path: a reused task runs through the barrier without heap allocation,
// and so do the reduction primitives.
func TestRunSteadyStateAllocs(t *testing.T) {
	p := New(4)
	defer p.Close()
	task := &countTask{hits: make([]int32, 4)}
	p.Run(task) // warm up
	x := make([]float64, 4096)
	y := make([]float64, 4096)
	for i := range x {
		x[i] = float64(i%7) * 0.25
		y[i] = float64(i%5) * 0.5
	}
	var sink float64
	if avg := testing.AllocsPerRun(100, func() { p.Run(task) }); avg > 0 {
		t.Fatalf("Run allocates %.1f objects per barrier", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { sink += Dot(p, x, y) }); avg > 0 {
		t.Fatalf("Dot allocates %.1f objects per call", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { Axpy(p, 1e-12, x, y) }); avg > 0 {
		t.Fatalf("Axpy allocates %.1f objects per call", avg)
	}
	if math.IsNaN(sink) {
		t.Fatal("unreachable")
	}
}

// mustPanicWith runs f and asserts it panics with exactly msg — the
// named misuse messages are part of the package contract (the poollife
// static analyzer quotes them), so the assertion is verbatim.
func mustPanicWith(t *testing.T, msg string, f func()) {
	t.Helper()
	defer func() {
		e := recover()
		if e == nil {
			t.Fatalf("no panic; want %q", msg)
		}
		if s, ok := e.(string); !ok || s != msg {
			t.Fatalf("panic %v; want exactly %q", e, msg)
		}
	}()
	f()
}

// TestRunOnClosedPoolPanics pins the closed-pool misuse message for
// every pool width, including the no-goroutine single-worker pool.
func TestRunOnClosedPoolPanics(t *testing.T) {
	for _, nw := range []int{1, 4} {
		p := New(nw)
		p.Close()
		mustPanicWith(t, PanicRunClosed, func() {
			p.Run(&countTask{hits: make([]int32, nw)})
		})
	}
}

// nestedTask re-enters Run on its own pool from inside a shard — the
// barrier deadlock poollife forbids statically. The dynamic check must
// convert it into the named panic instead of hanging.
type nestedTask struct {
	p     *Pool
	inner countTask
}

func (t *nestedTask) RunShard(w, nw int) {
	if w == 0 {
		t.p.Run(&t.inner)
	}
}

func TestNestedRunPanics(t *testing.T) {
	for _, nw := range []int{1, 4} {
		p := New(nw)
		task := &nestedTask{p: p, inner: countTask{hits: make([]int32, nw)}}
		func() {
			defer func() {
				e := recover()
				if e == nil {
					t.Fatalf("nw=%d: nested Run did not panic", nw)
				}
				// Worker 0 is the caller for nw=1..n, so the nested
				// panic surfaces either directly or re-wrapped by the
				// outer barrier; the named message must survive both.
				if s, ok := e.(string); !ok || !strings.Contains(s, PanicNestedRun) {
					t.Fatalf("nw=%d: panic %v; want it to carry %q", nw, e, PanicNestedRun)
				}
			}()
			p.Run(task)
		}()
		// The pool survives the contained misuse.
		after := &countTask{hits: make([]int32, nw)}
		p.Run(after)
		if got := after.total.Load(); got != int32(nw) {
			t.Fatalf("nw=%d: pool unusable after nested-Run panic: %d shards ran", nw, got)
		}
		p.Close()
	}
}

// closeTask closes its own pool from inside a shard.
type closeTask struct{ p *Pool }

func (t *closeTask) RunShard(w, nw int) {
	if w == 0 {
		t.p.Close()
	}
}

func TestCloseDuringRunPanics(t *testing.T) {
	p := New(2)
	defer p.Close()
	func() {
		defer func() {
			e := recover()
			if e == nil {
				t.Fatal("Close during Run did not panic")
			}
			if s, ok := e.(string); !ok || !strings.Contains(s, PanicCloseDuringRun) {
				t.Fatalf("panic %v; want it to carry %q", e, PanicCloseDuringRun)
			}
		}()
		p.Run(&closeTask{p: p})
	}()
}
