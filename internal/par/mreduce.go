package par

// Fused multi-vector kernels — this package's VecMDot/VecMAXPY. The
// GMRES orthogonalization step computes j+1 inner products of the new
// work vector w against the whole Krylov basis and then subtracts the
// j+1 projections from w; done one basis vector at a time (Dot + Axpy
// per vector) the kernels stream w 2(j+1) times per iteration and pay
// 2(j+1) pool barriers. MDot computes every product in ONE pass over w
// (one barrier), MAxpy applies every subtraction in one
// read-modify-write sweep of w (one barrier) — the fusion PETSc reaches
// for once the vector kernels are bandwidth-bound.
//
// Determinism contract: MDot computes each inner product through its
// own fixed Segments-shape index-ordered reduction — the partials, the
// per-element accumulation order within a segment, and the ascending
// combine order are all exactly Dot's — so out[i] is bitwise identical
// to Dot(p, x, vs[i]) at every worker count. MAxpy applies the vectors
// in ascending index order per element with one rounding per
// multiply-add step, exactly the sequence Axpy(p, alphas[0], vs[0], y);
// Axpy(p, alphas[1], vs[1], y); ... performs, so y is bitwise identical
// to the per-vector sweep at every worker count.

// MDot fills out[i] = x · vs[i] for every vector of vs in one pass over
// x, each product through the fixed-shape segmented reduction (bitwise
// identical to Dot at any worker count, nil pool included). out must
// hold at least len(vs) entries; every vector of vs must have x's
// length. The pool's partial-sum scratch grows to the largest vs seen
// and is then reused, so the steady state allocates nothing.
func MDot(p *Pool, x []float64, vs [][]float64, out []float64) {
	k := len(vs)
	if k == 0 {
		return
	}
	if p == nil {
		// One worker, no pool scratch: the per-vector reference path
		// (same partials, same combine — bitwise identical to the fused
		// path, which exists to batch barriers and memory passes).
		var parts [Segments]float64
		for i, vi := range vs {
			dotSegments(x, vi, 0, Segments, &parts)
			out[i] = combine(&parts)
		}
		return
	}
	need := k * Segments
	if cap(p.mdotParts) < need {
		// Scratch grows once to the largest basis seen, then is reused:
		// the steady state allocates nothing.
		p.mdotParts = make([]float64, need)
	}
	parts := p.mdotParts[:need]
	if p.nw == 1 {
		mdotSegments(x, vs, 0, Segments, parts)
	} else {
		t := &p.mdotT
		t.x, t.vs, t.parts = x, vs, parts
		p.Run(t)
		t.x, t.vs, t.parts = nil, nil, nil
	}
	for i := range vs {
		out[i] = combineSeg(parts[i*Segments:])
	}
}

// MAxpy computes y += alphas[i]*vs[i] for every vector of vs in one
// read-modify-write sweep of y, striped elementwise across the workers.
// Per element the vectors are applied in ascending index order with one
// rounding per step — the exact arithmetic of the per-vector Axpy
// sequence — so y is bitwise identical to that sequence at every worker
// count. alphas must hold at least len(vs) coefficients; every vector
// of vs must have y's length.
func MAxpy(p *Pool, alphas []float64, vs [][]float64, y []float64) {
	if len(vs) == 0 {
		return
	}
	if p == nil || p.nw == 1 {
		maxpyRange(alphas, vs, y, 0, len(y))
		return
	}
	t := &p.maxpyT
	t.alphas, t.vs, t.y = alphas, vs, y
	p.Run(t)
	t.alphas, t.vs, t.y = nil, nil, nil
}

type mdotTask struct {
	x     []float64
	vs    [][]float64
	parts []float64 // len(vs)*Segments; parts[i*Segments+s] = segment s of x·vs[i]
}

func (t *mdotTask) RunShard(w, nw int) {
	mdotSegments(t.x, t.vs, w*Segments/nw, (w+1)*Segments/nw, t.parts)
}

// mdotSegments fills parts[i*Segments+s] for s in [s0,s1) with the
// per-segment partials of x·vs[i] for every vector, streaming each
// segment of x once across all vectors (four at a time). Segment
// bounds and per-element accumulation order are exactly dotSegments'.
func mdotSegments(x []float64, vs [][]float64, s0, s1 int, parts []float64) {
	n := len(x)
	for s := s0; s < s1; s++ {
		lo, hi := n*s/Segments, n*(s+1)/Segments
		xs := x[lo:hi]
		k := 0
		for ; k+4 <= len(vs); k += 4 {
			p0, p1, p2, p3 := mdotSeg4(xs, vs[k][lo:hi], vs[k+1][lo:hi], vs[k+2][lo:hi], vs[k+3][lo:hi])
			parts[(k+0)*Segments+s] = p0
			parts[(k+1)*Segments+s] = p1
			parts[(k+2)*Segments+s] = p2
			parts[(k+3)*Segments+s] = p3
		}
		for ; k < len(vs); k++ {
			parts[k*Segments+s] = mdotSeg1(xs, vs[k][lo:hi])
		}
	}
}

// mdotSeg4 returns the four segment partials x·y0..x·y3, each
// accumulated independently in ascending element order (one rounding
// per multiply-add, exactly dotSegments' arithmetic per vector).
func mdotSeg4(x, y0, y1, y2, y3 []float64) (float64, float64, float64, float64) {
	y0 = y0[:len(x)] // bce: ties len(y0..y3) to len(x); one index serves all five streams unchecked
	y1 = y1[:len(x)]
	y2 = y2[:len(x)]
	y3 = y3[:len(x)]
	var s0, s1, s2, s3 float64
	for i := range x {
		v := x[i]
		s0 += v * y0[i]
		s1 += v * y1[i]
		s2 += v * y2[i]
		s3 += v * y3[i]
	}
	return s0, s1, s2, s3
}

// mdotSeg1 is the remainder kernel: one segment partial of x·y.
func mdotSeg1(x, y []float64) float64 {
	y = y[:len(x)] // bce: ties len(y) to len(x); the index serves both streams unchecked
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// combineSeg folds the first Segments partials in ascending segment
// order — the same fold as combine, over a slice-carved scratch row.
func combineSeg(parts []float64) float64 {
	parts = parts[:Segments] // bce: fixes the extent; the range is unchecked
	var s float64
	for _, v := range parts {
		s += v
	}
	return s
}

type maxpyTask struct {
	alphas []float64
	vs     [][]float64
	y      []float64
}

func (t *maxpyTask) RunShard(w, nw int) {
	n := len(t.y)
	maxpyRange(t.alphas, t.vs, t.y, n*w/nw, n*(w+1)/nw)
}

// maxpyRange applies y[lo:hi] += Σ alphas[k]*vs[k][lo:hi], vectors in
// ascending index order per element, four at a time.
func maxpyRange(alphas []float64, vs [][]float64, y []float64, lo, hi int) {
	k := 0
	for ; k+4 <= len(vs); k += 4 {
		maxpy4(alphas[k], alphas[k+1], alphas[k+2], alphas[k+3],
			vs[k][lo:hi], vs[k+1][lo:hi], vs[k+2][lo:hi], vs[k+3][lo:hi], y[lo:hi])
	}
	for ; k < len(vs); k++ {
		axpyRange(alphas[k], vs[k][lo:hi], y[lo:hi])
	}
}

// maxpy4 computes y += a0*x0 + a1*x1 + a2*x2 + a3*x3 with one load and
// one store of y per element; each += step rounds exactly as the
// per-vector axpyRange compound assignment does, in the same vector
// order, so the result is bitwise identical to four sequential Axpys.
func maxpy4(a0, a1, a2, a3 float64, x0, x1, x2, x3, y []float64) {
	x0 = x0[:len(y)] // bce: ties len(x0..x3) to len(y); one index serves all five streams unchecked
	x1 = x1[:len(y)]
	x2 = x2[:len(y)]
	x3 = x3[:len(y)]
	for i := range y {
		s := y[i]
		s += a0 * x0[i]
		s += a1 * x1[i]
		s += a2 * x2[i]
		s += a3 * x3[i]
		y[i] = s
	}
}
