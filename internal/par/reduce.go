package par

import "math"

// Segments is the fixed shape of the deterministic reductions: a vector
// is always cut into exactly Segments index ranges (depending only on
// its length, never on the worker count), each range is summed in
// ascending element order, and the per-segment partials are combined in
// ascending segment order. Workers own contiguous runs of segments, so
// any worker count — including one — produces the exact same partials
// and therefore the exact same bitwise result. This is the
// detorder-clean, run-to-run-identical dot product the GMRES iteration
// decisions hang off.
const Segments = 64

// Dot returns the inner product of x and y via the fixed-shape
// segmented reduction. The result is identical for every worker count
// (a nil pool included), and identical across repeated runs.
func Dot(p *Pool, x, y []float64) float64 {
	if p == nil || p.nw == 1 {
		var parts [Segments]float64
		dotSegments(x, y, 0, Segments, &parts)
		return combine(&parts)
	}
	t := &p.dotT
	t.x, t.y, t.parts = x, y, &p.dotParts
	p.Run(t)
	t.x, t.y = nil, nil
	return combine(&p.dotParts)
}

// Norm2 returns the Euclidean norm of x, deterministic like Dot.
func Norm2(p *Pool, x []float64) float64 { return math.Sqrt(Dot(p, x, x)) }

// Axpy computes y += a*x, striped elementwise across the workers. Each
// element is written exactly once by its owning worker, so the result
// is bitwise identical to the sequential sweep at any worker count.
func Axpy(p *Pool, a float64, x, y []float64) {
	if p == nil || p.nw == 1 {
		axpyRange(a, x, y)
		return
	}
	t := &p.axpyT
	t.a, t.x, t.y = a, x, y
	p.Run(t)
	t.x, t.y = nil, nil
}

type dotTask struct {
	x, y  []float64
	parts *[Segments]float64
}

func (t *dotTask) RunShard(w, nw int) {
	dotSegments(t.x, t.y, w*Segments/nw, (w+1)*Segments/nw, t.parts)
}

// dotSegments fills parts[s0:s1] with the per-segment partial sums of
// x·y. Segment s covers elements [n*s/Segments, n*(s+1)/Segments) — a
// function of n alone — and is accumulated in ascending element order.
func dotSegments(x, y []float64, s0, s1 int, parts *[Segments]float64) {
	n := len(x)
	for s := s0; s < s1; s++ {
		xs := x[n*s/Segments : n*(s+1)/Segments]
		ys := y[n*s/Segments : n*(s+1)/Segments]
		ys = ys[:len(xs)] // bce: ties len(ys) to len(xs); the range index serves both streams unchecked
		var sum float64
		for i, v := range xs {
			sum += v * ys[i]
		}
		parts[s] = sum
	}
}

// combine folds the partials in ascending segment order — the one fixed
// combination order every worker count shares.
func combine(parts *[Segments]float64) float64 {
	var s float64
	for _, v := range parts {
		s += v
	}
	return s
}

type axpyTask struct {
	a    float64
	x, y []float64
}

func (t *axpyTask) RunShard(w, nw int) {
	n := len(t.x)
	axpyRange(t.a, t.x[n*w/nw:n*(w+1)/nw], t.y[n*w/nw:n*(w+1)/nw])
}

func axpyRange(a float64, x, y []float64) {
	y = y[:len(x)] // bce: ties len(y) to len(x); the range index serves both streams unchecked
	for i, v := range x {
		y[i] += a * v
	}
}
