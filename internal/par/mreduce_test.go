package par

import (
	"math"
	"math/rand"
	"testing"
)

// basisFor builds k deterministic pseudo-random vectors of length n
// plus one work vector.
func basisFor(seed int64, k, n int) (x []float64, vs [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	vs = make([][]float64, k)
	for j := range vs {
		vs[j] = make([]float64, n)
		for i := range vs[j] {
			vs[j][i] = rng.NormFloat64()
		}
	}
	return x, vs
}

// TestMDotBitwiseIdenticalToDot is the determinism grid of the fused
// multi-dot: every out[i] must equal Dot(p, x, vs[i]) bitwise at every
// worker count and every basis size (including the group-of-4 kernel's
// remainder lanes), nil pool included.
func TestMDotBitwiseIdenticalToDot(t *testing.T) {
	for _, n := range []int{0, 1, 5, 63, 64, 65, 1000, 12345} {
		for _, k := range []int{1, 2, 3, 4, 5, 8, 9} {
			x, vs := basisFor(int64(101*n+k), k, n)
			want := make([]float64, k)
			for i, vi := range vs {
				want[i] = Dot(nil, x, vi)
			}
			got := make([]float64, k)
			MDot(nil, x, vs, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("nil pool n=%d k=%d: out[%d]=%x, want %x", n, k, i, got[i], want[i])
				}
			}
			for _, nw := range []int{1, 2, 4, 8} {
				p := New(nw)
				for rep := 0; rep < 2; rep++ {
					for i := range got {
						got[i] = 0
					}
					MDot(p, x, vs, got)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("n=%d k=%d nw=%d rep=%d: out[%d]=%x, want %x", n, k, nw, rep, i, got[i], want[i])
						}
					}
				}
				p.Close()
			}
		}
	}
}

// TestMAxpyBitwiseIdenticalToAxpySequence: the fused multi-axpy must
// reproduce the sequential per-vector Axpy sweep bitwise — same
// per-element rounding sequence — at every worker count and basis size.
func TestMAxpyBitwiseIdenticalToAxpySequence(t *testing.T) {
	for _, n := range []int{0, 1, 5, 63, 64, 65, 1000, 12345} {
		for _, k := range []int{1, 2, 3, 4, 5, 8, 9} {
			y0, vs := basisFor(int64(311*n+k), k, n)
			alphas := make([]float64, k)
			rng := rand.New(rand.NewSource(int64(k + n)))
			for i := range alphas {
				alphas[i] = rng.NormFloat64()
			}
			want := append([]float64(nil), y0...)
			for i, vi := range vs {
				Axpy(nil, alphas[i], vi, want)
			}
			check := func(label string, p *Pool) {
				y := append([]float64(nil), y0...)
				MAxpy(p, alphas, vs, y)
				for i := range want {
					if y[i] != want[i] {
						t.Fatalf("%s n=%d k=%d: y[%d]=%x, want %x", label, n, k, i, y[i], want[i])
					}
				}
			}
			check("nil", nil)
			for _, nw := range []int{1, 2, 4, 8} {
				p := New(nw)
				check("pooled", p)
				p.Close()
			}
		}
	}
}

// TestMDotEmptyBasis: a zero-length basis is a no-op for both kernels.
func TestMDotEmptyBasis(t *testing.T) {
	p := New(2)
	defer p.Close()
	x := []float64{1, 2, 3}
	MDot(p, x, nil, nil)
	y := append([]float64(nil), x...)
	MAxpy(p, nil, nil, y)
	for i := range y {
		if y[i] != x[i] {
			t.Fatal("MAxpy with empty basis perturbed y")
		}
	}
}

// TestMDotScratchGrowsOnce: the pool's partial scratch follows the
// largest basis seen and is reused afterwards — after one warm call at
// the maximum width, the steady state allocates nothing for any width.
func TestMDotScratchGrowsOnce(t *testing.T) {
	p := New(4)
	defer p.Close()
	x, vs := basisFor(5, 9, 2048)
	out := make([]float64, 9)
	MDot(p, x, vs, out) // grows scratch to 9*Segments
	for _, k := range []int{1, 4, 9} {
		if avg := testing.AllocsPerRun(50, func() { MDot(p, x, vs[:k], out[:k]) }); avg > 0 {
			t.Fatalf("warm MDot k=%d allocates %.1f objects per call", k, avg)
		}
	}
}

// TestMReduceSteadyStateAllocs pins the zero-allocation contract of
// both fused kernels on a warmed pool.
func TestMReduceSteadyStateAllocs(t *testing.T) {
	p := New(4)
	defer p.Close()
	x, vs := basisFor(17, 8, 4096)
	alphas := make([]float64, 8)
	for i := range alphas {
		alphas[i] = 1e-12 * float64(i+1)
	}
	out := make([]float64, 8)
	MDot(p, x, vs, out) // warm the scratch
	var sink float64
	if avg := testing.AllocsPerRun(100, func() { MDot(p, x, vs, out); sink += out[0] }); avg > 0 {
		t.Fatalf("MDot allocates %.1f objects per call", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { MAxpy(p, alphas, vs, x) }); avg > 0 {
		t.Fatalf("MAxpy allocates %.1f objects per call", avg)
	}
	if math.IsNaN(sink) {
		t.Fatal("unreachable")
	}
}
