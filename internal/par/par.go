// Package par is the node-level worker-pool runtime behind the solver's
// shared-memory parallelism — the "threads within a rank" axis of the
// paper's hybrid MPI/OpenMP study (Table 5). A Pool owns a fixed set of
// persistent worker goroutines with a reusable barrier: running a task
// costs two channel operations per worker and zero steady-state heap
// allocation (no per-sweep goroutine forks, no closures), so the pool
// can sit inside the tightest solver loops — triangular solves, SpMV,
// dot products — without perturbing the roofline accounting.
//
// Every primitive in this package is deterministic by construction:
// work is partitioned by fixed owner-computes rules that depend only on
// the problem shape (never on scheduling), and reductions combine
// fixed-shape partials in ascending index order. Kernels that preserve
// the sequential per-element accumulation order (the level-scheduled
// ILU solve, the striped SpMV) are bitwise identical to their
// sequential counterparts at every worker count.
//
// A Pool serves one caller at a time: Run is a barrier for the calling
// goroutine, and the scratch carried by the reduction primitives is
// per-pool. Concurrent solver paths (e.g. the per-rank goroutines of
// internal/dist) each get their own Pool.
package par

import (
	"fmt"
	"sync"
)

// Task is one parallel region. RunShard is invoked once per worker with
// that worker's index and the total worker count; the task partitions
// its work by (worker, nworkers) with a deterministic owner-computes
// rule. Implementations are reused across runs (hot paths keep one task
// value alive and repoint its fields), so RunShard must not retain
// references past its return.
type Task interface {
	RunShard(worker, nworkers int)
}

// Pool misuse panics with one of these named messages, so tests (and
// the static poollife analyzer, which quotes them in its findings) can
// assert the exact failure instead of a hang: running a task on a
// closed pool, re-entering Run from inside a task of the same pool
// (the nested barrier can never complete — worker goroutines are
// already parked in the outer Run), and closing a pool with a Run in
// flight.
const (
	PanicRunClosed      = "par: Run on closed Pool"
	PanicNestedRun      = "par: nested Run on Pool"
	PanicCloseDuringRun = "par: Close during Run"
)

// Pool is a persistent set of worker goroutines with a reusable
// barrier. The zero value is not usable; call New. A nil *Pool is valid
// everywhere and behaves as one worker running inline.
type Pool struct {
	nw      int
	wake    []chan Task // one buffered channel per worker 1..nw-1
	wg      sync.WaitGroup
	panics  []any // per-worker recovered panic, re-raised on the caller
	closed  bool
	running bool // a Run is in flight; guards nested Run and Close misuse

	// Reusable task values and partial-sum scratch for the reduction
	// primitives in reduce.go and the fused multi-vector kernels in
	// mreduce.go; kept on the pool so the hot path never allocates
	// (mdotParts grows once to the largest basis seen, then is reused).
	// Their use is serialized by the pool's one-caller rule.
	dotT      dotTask
	axpyT     axpyTask
	mdotT     mdotTask
	maxpyT    maxpyTask
	dotParts  [Segments]float64
	mdotParts []float64
}

// New creates a pool of n workers (n < 1 is treated as 1). The calling
// goroutine participates as worker 0 of every Run, so a pool of n
// workers spawns n-1 goroutines. Close the pool when done.
func New(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{nw: n, panics: make([]any, n)}
	p.wake = make([]chan Task, n-1)
	for i := range p.wake {
		c := make(chan Task, 1) //lint:alloc-ok one wake channel per worker at pool construction
		p.wake[i] = c
		go p.worker(i+1, c)
	}
	return p
}

// Workers returns the pool's worker count; a nil pool has one.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.nw
}

// Close shuts the worker goroutines down. The pool must be idle (no Run
// in flight); closing mid-Run panics with PanicCloseDuringRun. Close is
// idempotent; closing a nil pool is a no-op.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	if p.running {
		//lint:panic-ok caller misuse: closing a pool with a Run in flight is a programming error, not a data condition
		panic(PanicCloseDuringRun)
	}
	p.closed = true
	for _, c := range p.wake {
		close(c)
	}
}

// Run executes t on every worker and returns when all shards finish —
// a full barrier for the caller, which itself runs shard 0. If any
// shard panicked, Run re-panics on the calling goroutine (lowest worker
// index wins) after the barrier, so panic containment that wraps the
// caller (e.g. the mpi runtime's per-rank recovery) still sees it.
func (p *Pool) Run(t Task) {
	if p == nil {
		t.RunShard(0, 1)
		return
	}
	if p.closed {
		//lint:panic-ok caller misuse: running a task on a closed pool is a programming error, not a data condition
		panic(PanicRunClosed)
	}
	if p.running {
		// A task re-entered Run on its own pool: the workers are parked
		// in the outer barrier, so the inner one can never complete.
		// Reads of the flag from worker shards are synchronized by the
		// wake-channel send; the caller's own shard shares its goroutine.
		//lint:panic-ok caller misuse: a nested barrier deadlocks; fail loudly instead of hanging
		panic(PanicNestedRun)
	}
	p.running = true
	if p.nw == 1 {
		p.shard(t, 0)
	} else {
		p.wg.Add(p.nw - 1)
		for _, c := range p.wake {
			c <- t
		}
		p.shard(t, 0)
		p.wg.Wait()
	}
	p.running = false
	for w, e := range p.panics {
		if e != nil {
			for i := range p.panics {
				p.panics[i] = nil
			}
			//lint:panic-ok re-raise of a worker shard's panic on the caller after the barrier; containment stays with the calling goroutine
			panic(fmt.Sprintf("par: worker %d panicked: %v", w, e))
		}
	}
}

// worker is the persistent loop of workers 1..nw-1.
func (p *Pool) worker(w int, c chan Task) {
	for t := range c {
		p.shard(t, w)
		p.wg.Done()
	}
}

// shard runs one worker's shard, capturing a panic into the worker's
// slot so the barrier always completes; Run re-raises it on the caller.
func (p *Pool) shard(t Task, w int) {
	defer p.catch(w)
	t.RunShard(w, p.nw)
}

func (p *Pool) catch(w int) {
	if e := recover(); e != nil {
		p.panics[w] = e
	}
}

// Stripes fills bounds[0:nw+1] with item boundaries balancing the
// monotone prefix-sum weight array: item i has weight
// prefix[i+1]-prefix[i], and stripe w covers items
// [bounds[w], bounds[w+1]) holding as close to total/nw weight as the
// prefix allows. With a matrix's RowPtr as the prefix this balances row
// stripes by nonzero count — the owner-computes partition of the
// threaded SpMV. The boundaries depend only on (prefix, nw), never on
// scheduling.
func Stripes(prefix []int32, nw int, bounds []int32) {
	items := len(prefix) - 1
	total := int64(prefix[items]) - int64(prefix[0])
	bounds[0] = 0
	for w := 1; w < nw; w++ {
		target := int64(prefix[0]) + total*int64(w)/int64(nw)
		// Binary search: smallest i with prefix[i] >= target.
		lo, hi := int(bounds[w-1]), items
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if int64(prefix[mid]) < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bounds[w] = int32(lo)
	}
	bounds[nw] = int32(items)
}
