package par

// Cost formulas for the fused multi-vector kernels (costsync pins the
// group-of-4 kernels' loop bodies to these marginals). The fusion is
// the point of the formulas: k separate Dots stream 16kn bytes where
// MDot streams 8(k+1)n — the shared vector x once — and k separate
// Axpys stream 24kn where MAxpy streams (8k+16)n — one read-modify-
// write of y.

// MDotFlops and MDotBytes: k inner products against one shared vector
// of n scalars in a single pass — 2k flops per element; one load of the
// shared vector plus one load per basis vector.
func MDotFlops(k, n int) int64 { return 2 * int64(k) * int64(n) }
func MDotBytes(k, n int) int64 { return 8 * int64(k+1) * int64(n) }

// MAxpyFlops and MAxpyBytes: k fused axpys into one vector of n
// scalars — 2k flops per element; one load per applied vector plus one
// read-modify-write (16 bytes) of the target.
func MAxpyFlops(k, n int) int64 { return 2 * int64(k) * int64(n) }
func MAxpyBytes(k, n int) int64 { return (8*int64(k) + 16) * int64(n) }
