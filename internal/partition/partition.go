// Package partition implements k-way graph partitioning for
// domain-decomposed solvers, with the two contrasting strategies of the
// paper's Figure 4: KWay (greedy BFS region growing with cut-reducing
// refinement — connected subdomains with mild imbalance, in the spirit of
// k-MeTiS) and PWay (the same followed by an exact-balance pass that may
// fragment subdomains — near-perfect balance in the spirit of p-MeTiS).
// The paper observes that the better-balanced p-MeTiS partitions lose at
// scale because disconnected subdomains degrade block-iterative
// convergence; here that effect emerges from the real solver.
package partition

import (
	"fmt"
	"sort"

	"petscfun3d/internal/sparse"
)

// Partition assigns each vertex of a graph to one of NParts parts.
type Partition struct {
	NParts int
	Part   []int32 // vertex -> part index
}

// Sizes returns the number of vertices in each part. Unassigned vertices
// (negative part, only possible mid-construction) are not counted.
func (p *Partition) Sizes() []int {
	s := make([]int, p.NParts)
	for _, q := range p.Part {
		if q >= 0 {
			s[q]++
		}
	}
	return s
}

// Imbalance returns max part size over mean part size (1.0 = perfect).
func (p *Partition) Imbalance() float64 {
	sizes := p.Sizes()
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	mean := float64(len(p.Part)) / float64(p.NParts)
	if mean == 0 {
		return 1
	}
	return float64(max) / mean
}

// EdgeCut returns the number of graph edges whose endpoints lie in
// different parts.
func (p *Partition) EdgeCut(g sparse.Graph) int {
	cut := 0
	for v := 0; v < g.NV; v++ {
		for _, w := range g.Adj[g.XAdj[v]:g.XAdj[v+1]] {
			if int32(v) < w && p.Part[v] != p.Part[w] {
				cut++
			}
		}
	}
	return cut
}

// Components returns, for each part, the number of connected components
// of the subgraph induced by that part. The paper attributes p-MeTiS's
// poorer convergence to parts with more than one component.
func (p *Partition) Components(g sparse.Graph) []int {
	comp := make([]int, p.NParts)
	seen := make([]bool, g.NV)
	stack := make([]int32, 0, 256)
	for v := 0; v < g.NV; v++ {
		if seen[v] {
			continue
		}
		part := p.Part[v]
		comp[part]++
		seen[v] = true
		stack = append(stack[:0], int32(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Adj[g.XAdj[u]:g.XAdj[u+1]] {
				if !seen[w] && p.Part[w] == part {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return comp
}

// Validate checks the structural sanity of the partition over g.
func (p *Partition) Validate(g sparse.Graph) error {
	if len(p.Part) != g.NV {
		return fmt.Errorf("partition: %d assignments for %d vertices", len(p.Part), g.NV)
	}
	for v, q := range p.Part {
		if q < 0 || int(q) >= p.NParts {
			return fmt.Errorf("partition: vertex %d assigned to invalid part %d", v, q)
		}
	}
	for q, s := range p.Sizes() {
		if s == 0 && g.NV >= p.NParts {
			return fmt.Errorf("partition: part %d empty", q)
		}
	}
	return nil
}

// KWay partitions g into nparts using greedy BFS region growing followed
// by a cut-reducing boundary refinement that keeps imbalance under ~3%.
// Parts are connected by construction (each grows as a single BFS
// region) except when leftover enclaves must be absorbed.
func KWay(g sparse.Graph, nparts int) (*Partition, error) {
	if nparts < 1 || nparts > g.NV {
		return nil, fmt.Errorf("partition: nparts %d outside [1, %d]", nparts, g.NV)
	}
	p := &Partition{NParts: nparts, Part: make([]int32, g.NV)}
	for i := range p.Part {
		p.Part[i] = -1
	}
	assignedCount := 0
	queue := make([]int32, 0, g.NV)
	for part := 0; part < nparts; part++ {
		remainingParts := nparts - part
		target := (g.NV - assignedCount + remainingParts - 1) / remainingParts
		seed := pickSeed(g, p.Part)
		if seed < 0 {
			break
		}
		queue = append(queue[:0], seed)
		p.Part[seed] = int32(part)
		grown := 1
		for head := 0; head < len(queue) && grown < target; head++ {
			v := queue[head]
			for _, w := range g.Adj[g.XAdj[v]:g.XAdj[v+1]] {
				if p.Part[w] < 0 {
					p.Part[w] = int32(part)
					queue = append(queue, w)
					grown++
					if grown >= target {
						break
					}
				}
			}
		}
		assignedCount += grown
	}
	// Absorb any unassigned enclaves into an adjacent part (the smallest).
	absorbUnassigned(g, p)
	rebalance(g, p, 1.06)
	refineCut(g, p, 1.06, 2*g.NV)
	return p, p.Validate(g)
}

// rebalance drives every part's size into [mean/tol, mean*tol] with
// local moves of boundary vertices between adjacent parts. BFS growth
// can strand tiny seeds or leave the last-grown parts overweight;
// cascaded boundary moves repair both without fragmenting parts.
func rebalance(g sparse.Graph, p *Partition, tol float64) {
	sizes := p.Sizes()
	mean := float64(g.NV) / float64(p.NParts)
	hi := int(mean * tol)
	lo := int(mean / tol)
	if hi < 1 {
		hi = 1
	}
	links := make(map[int32]int, 8)
	for iter := 0; iter < 8*g.NV; iter++ {
		// The most overweight and most starved parts this round.
		over, under := int32(-1), int32(-1)
		for q, s := range sizes {
			if s > hi && (over < 0 || s > sizes[over]) {
				over = int32(q)
			}
			if s < lo && (under < 0 || s < sizes[under]) {
				under = int32(q)
			}
		}
		if over < 0 && under < 0 {
			return
		}
		moved := false
		if over >= 0 {
			// Shed one boundary vertex of `over` to its smallest
			// adjacent part (most-linked vertex there, to keep parts
			// compact).
			var bestV, bestQ int32 = -1, -1
			bestScore := -1 << 30
			for v := 0; v < g.NV; v++ {
				if p.Part[v] != over {
					continue
				}
				for k := range links {
					delete(links, k)
				}
				for _, w := range g.Adj[g.XAdj[v]:g.XAdj[v+1]] {
					if q := p.Part[w]; q != over {
						links[q]++
					}
				}
				for q, l := range links {
					if sizes[q] >= sizes[over]-1 {
						continue
					}
					score := l*1000 - sizes[q]
					if score > bestScore {
						bestScore = score
						bestV, bestQ = int32(v), q
					}
				}
			}
			if bestV >= 0 {
				sizes[over]--
				sizes[bestQ]++
				p.Part[bestV] = bestQ
				moved = true
			}
		}
		if under >= 0 {
			// Grow the starved part by one vertex from its largest
			// adjacent part.
			var bestV int32 = -1
			bestScore := -1 << 30
			for v := 0; v < g.NV; v++ {
				q := p.Part[v]
				if q == under || sizes[q] <= sizes[under]+1 {
					continue
				}
				linksIn := 0
				for _, w := range g.Adj[g.XAdj[v]:g.XAdj[v+1]] {
					if p.Part[w] == under {
						linksIn++
					}
				}
				if linksIn == 0 {
					continue
				}
				score := linksIn*1000 + sizes[q]
				if score > bestScore {
					bestScore = score
					bestV = int32(v)
				}
			}
			if bestV >= 0 {
				sizes[p.Part[bestV]]--
				sizes[under]++
				p.Part[bestV] = under
				moved = true
			} else if !moved && sizes[under] <= 1 {
				// A starved part with no graph contact anywhere useful:
				// teleport its seed next to the largest part and keep
				// balancing there (rare; keeps no part permanently
				// starved).
				largest := int32(0)
				for q := range sizes {
					if sizes[q] > sizes[largest] {
						largest = int32(q)
					}
				}
				for v := 0; v < g.NV; v++ {
					if p.Part[v] == largest {
						sizes[largest]--
						sizes[under]++
						p.Part[v] = under
						moved = true
						break
					}
				}
			}
		}
		if !moved {
			return
		}
	}
}

// PWay partitions g into nparts with near-perfect vertex balance (sizes
// differ by at most one), at the cost of potentially disconnected parts:
// a KWay partition is driven to exact balance by moving vertices out of
// overfull parts, boundary-first but interior vertices when necessary.
func PWay(g sparse.Graph, nparts int) (*Partition, error) {
	p, err := KWay(g, nparts)
	if err != nil {
		return nil, err
	}
	exactBalance(g, p)
	// Light refinement that preserves exact balance: only swap-neutral
	// moves are allowed, so skip cut refinement entirely (the paper's
	// p-MeTiS likewise privileges balance over cut/connectivity).
	return p, p.Validate(g)
}

// pickSeed selects an unassigned vertex with the fewest unassigned
// neighbors (a boundary/corner vertex), which keeps grown regions
// compact.
func pickSeed(g sparse.Graph, part []int32) int32 {
	best := int32(-1)
	bestFree := 1 << 30
	for v := 0; v < g.NV; v++ {
		if part[v] >= 0 {
			continue
		}
		free := 0
		for _, w := range g.Adj[g.XAdj[v]:g.XAdj[v+1]] {
			if part[w] < 0 {
				free++
			}
		}
		if free < bestFree {
			bestFree = free
			best = int32(v)
			if free == 0 {
				break
			}
		}
	}
	return best
}

func absorbUnassigned(g sparse.Graph, p *Partition) {
	sizes := p.Sizes()
	for changed := true; changed; {
		changed = false
		for v := 0; v < g.NV; v++ {
			if p.Part[v] >= 0 {
				continue
			}
			bestPart := int32(-1)
			for _, w := range g.Adj[g.XAdj[v]:g.XAdj[v+1]] {
				if q := p.Part[w]; q >= 0 && (bestPart < 0 || sizes[q] < sizes[bestPart]) {
					bestPart = q
				}
			}
			if bestPart >= 0 {
				p.Part[v] = bestPart
				sizes[bestPart]++
				changed = true
			}
		}
	}
	// A totally isolated vertex (no assigned neighbor ever): put in part 0.
	for v := range p.Part {
		if p.Part[v] < 0 {
			p.Part[v] = 0
		}
	}
}

// refineCut greedily moves boundary vertices to the neighboring part
// where they have the most neighbors, when the move reduces the edge cut
// and keeps imbalance under maxImbalance. maxMoves bounds the work.
func refineCut(g sparse.Graph, p *Partition, maxImbalance float64, maxMoves int) {
	sizes := p.Sizes()
	mean := float64(g.NV) / float64(p.NParts)
	cap := int(mean * maxImbalance)
	if cap < 1 {
		cap = 1
	}
	gain := make(map[int32]int, 8)
	moves := 0
	for pass := 0; pass < 4 && moves < maxMoves; pass++ {
		improved := false
		for v := 0; v < g.NV && moves < maxMoves; v++ {
			home := p.Part[v]
			for k := range gain {
				delete(gain, k)
			}
			homeLinks := 0
			for _, w := range g.Adj[g.XAdj[v]:g.XAdj[v+1]] {
				q := p.Part[w]
				if q == home {
					homeLinks++
				} else {
					gain[q]++
				}
			}
			var bestPart int32 = -1
			bestGain := 0
			for q, links := range gain {
				if links-homeLinks > bestGain && sizes[q] < cap && sizes[home] > 1 {
					bestGain = links - homeLinks
					bestPart = q
				}
			}
			if bestPart >= 0 {
				sizes[home]--
				sizes[bestPart]++
				p.Part[v] = bestPart
				moves++
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// exactBalance moves vertices from overfull to underfull parts until all
// sizes are within one of each other. Boundary vertices adjacent to the
// destination are preferred; when none exist, arbitrary vertices of the
// overfull part are moved, which is what fragments parts.
func exactBalance(g sparse.Graph, p *Partition) {
	sizes := p.Sizes()
	type partSize struct {
		part int32
		size int
	}
	for iter := 0; iter < g.NV; iter++ {
		over := partSize{-1, -1}
		under := partSize{-1, g.NV + 1}
		for q, s := range sizes {
			if s > over.size {
				over = partSize{int32(q), s}
			}
			if s < under.size {
				under = partSize{int32(q), s}
			}
		}
		if over.size-under.size <= 1 {
			break
		}
		// Prefer a vertex of `over` adjacent to `under`.
		moved := int32(-1)
		for v := 0; v < g.NV; v++ {
			if p.Part[v] != over.part {
				continue
			}
			for _, w := range g.Adj[g.XAdj[v]:g.XAdj[v+1]] {
				if p.Part[w] == under.part {
					moved = int32(v)
					break
				}
			}
			if moved >= 0 {
				break
			}
		}
		if moved < 0 {
			// No boundary contact: move the vertex of `over` with the
			// fewest same-part neighbors (least connectivity damage —
			// but still potentially an interior island).
			bestLinks := 1 << 30
			for v := 0; v < g.NV; v++ {
				if p.Part[v] != over.part {
					continue
				}
				links := 0
				for _, w := range g.Adj[g.XAdj[v]:g.XAdj[v+1]] {
					if p.Part[w] == over.part {
						links++
					}
				}
				if links < bestLinks {
					bestLinks = links
					moved = int32(v)
				}
			}
		}
		if moved < 0 {
			break
		}
		sizes[over.part]--
		sizes[under.part]++
		p.Part[moved] = under.part
	}
}

// Halo describes the communication pattern of one part: the ghost
// vertices it reads from neighbors and the owned vertices it sends.
type Halo struct {
	// Ghosts[q] lists this part's ghost vertices owned by part q
	// (global vertex ids, sorted).
	Ghosts map[int32][]int32
	// Sends[q] lists this part's owned vertices needed by part q
	// (global vertex ids, sorted).
	Sends map[int32][]int32
}

// NumGhosts returns the total number of ghost vertices.
func (h *Halo) NumGhosts() int {
	n := 0
	for _, g := range h.Ghosts {
		n += len(g)
	}
	return n
}

// BuildHalos computes every part's halo for partition p over graph g.
func BuildHalos(g sparse.Graph, p *Partition) []Halo {
	halos := make([]Halo, p.NParts)
	for i := range halos {
		halos[i].Ghosts = make(map[int32][]int32)
		halos[i].Sends = make(map[int32][]int32)
	}
	type pair struct{ from, to int32 }
	seen := make(map[pair]map[int32]bool)
	for v := 0; v < g.NV; v++ {
		pv := p.Part[v]
		for _, w := range g.Adj[g.XAdj[v]:g.XAdj[v+1]] {
			pw := p.Part[w]
			if pv == pw {
				continue
			}
			// Part pv needs ghost w owned by pw.
			k := pair{pw, pv}
			if seen[k] == nil {
				seen[k] = make(map[int32]bool)
			}
			if !seen[k][w] {
				seen[k][w] = true
				halos[pv].Ghosts[pw] = append(halos[pv].Ghosts[pw], w)
				halos[pw].Sends[pv] = append(halos[pw].Sends[pv], w)
			}
		}
	}
	for i := range halos {
		for q := range halos[i].Ghosts {
			s := halos[i].Ghosts[q]
			sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		}
		for q := range halos[i].Sends {
			s := halos[i].Sends[q]
			sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		}
	}
	return halos
}
