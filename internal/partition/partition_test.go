package partition

import (
	"testing"
	"testing/quick"

	"petscfun3d/internal/mesh"
	"petscfun3d/internal/sparse"
)

func wingGraph(t testing.TB, nx, ny, nz int) sparse.Graph {
	t.Helper()
	m, err := mesh.GenerateWing(mesh.DefaultWingSpec(nx, ny, nz))
	if err != nil {
		t.Fatal(err)
	}
	return sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
}

func TestKWayBasics(t *testing.T) {
	g := wingGraph(t, 12, 10, 8)
	for _, np := range []int{1, 2, 4, 8, 16} {
		p, err := KWay(g, np)
		if err != nil {
			t.Fatalf("KWay(%d): %v", np, err)
		}
		if p.NParts != np {
			t.Fatalf("NParts = %d", p.NParts)
		}
		if imb := p.Imbalance(); imb > 1.3 {
			t.Errorf("KWay(%d) imbalance %.3f too high", np, imb)
		}
		sizes := p.Sizes()
		total := 0
		for _, s := range sizes {
			if s == 0 {
				t.Errorf("KWay(%d): empty part", np)
			}
			total += s
		}
		if total != g.NV {
			t.Errorf("KWay(%d): sizes sum %d != %d", np, total, g.NV)
		}
	}
}

func TestKWayMostlyConnected(t *testing.T) {
	g := wingGraph(t, 12, 10, 8)
	p, err := KWay(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	comps := p.Components(g)
	multi := 0
	for _, c := range comps {
		if c < 1 {
			t.Fatalf("part with %d components", c)
		}
		if c > 1 {
			multi++
		}
	}
	if multi > 2 {
		t.Errorf("KWay produced %d fragmented parts of 8", multi)
	}
}

func TestPWayBalanceBeatsKWay(t *testing.T) {
	g := wingGraph(t, 12, 10, 8)
	kp, err := KWay(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := PWay(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	// PWay must achieve near-perfect balance: sizes within one.
	sizes := pp.Sizes()
	lo, hi := g.NV, 0
	for _, s := range sizes {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi-lo > 1 {
		t.Errorf("PWay sizes spread %d..%d, want within 1", lo, hi)
	}
	if pp.Imbalance() > kp.Imbalance()+1e-9 {
		t.Errorf("PWay imbalance %.4f worse than KWay %.4f", pp.Imbalance(), kp.Imbalance())
	}
}

func TestEdgeCutSane(t *testing.T) {
	g := wingGraph(t, 10, 8, 7)
	p, err := KWay(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	cut := p.EdgeCut(g)
	totalEdges := len(g.Adj) / 2
	if cut <= 0 || cut >= totalEdges {
		t.Errorf("edge cut %d outside (0, %d)", cut, totalEdges)
	}
	// Single part: no cut.
	p1, _ := KWay(g, 1)
	if p1.EdgeCut(g) != 0 {
		t.Error("1-part cut nonzero")
	}
}

func TestComponentsCountsSingletons(t *testing.T) {
	// Hand-built graph: two disjoint triangles assigned to one part must
	// count as 2 components.
	xadj := []int32{0, 2, 4, 6, 8, 10, 12}
	adj := []int32{1, 2, 0, 2, 0, 1, 4, 5, 3, 5, 3, 4}
	g := sparse.Graph{NV: 6, XAdj: xadj, Adj: adj}
	p := &Partition{NParts: 1, Part: make([]int32, 6)}
	comps := p.Components(g)
	if comps[0] != 2 {
		t.Errorf("components = %d, want 2", comps[0])
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	g := wingGraph(t, 5, 4, 3)
	p := &Partition{NParts: 2, Part: make([]int32, g.NV)}
	p.Part[0] = 5 // invalid part
	if err := p.Validate(g); err == nil {
		t.Error("invalid part index accepted")
	}
	p2 := &Partition{NParts: 2, Part: make([]int32, 3)}
	if err := p2.Validate(g); err == nil {
		t.Error("wrong length accepted")
	}
	// All vertices in part 0 leaves part 1 empty.
	p3 := &Partition{NParts: 2, Part: make([]int32, g.NV)}
	if err := p3.Validate(g); err == nil {
		t.Error("empty part accepted")
	}
}

func TestKWayRejectsBadCounts(t *testing.T) {
	g := wingGraph(t, 4, 3, 3)
	if _, err := KWay(g, 0); err == nil {
		t.Error("nparts=0 accepted")
	}
	if _, err := KWay(g, g.NV+1); err == nil {
		t.Error("nparts>NV accepted")
	}
}

func TestBuildHalosSymmetric(t *testing.T) {
	g := wingGraph(t, 10, 8, 6)
	p, err := KWay(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	halos := BuildHalos(g, p)
	// Symmetry: part a's ghosts owned by b == part b's sends to a.
	for a := int32(0); a < int32(p.NParts); a++ {
		for b, ghosts := range halos[a].Ghosts {
			sends := halos[b].Sends[a]
			if len(sends) != len(ghosts) {
				t.Fatalf("halo asymmetry between %d and %d: %d vs %d", a, b, len(ghosts), len(sends))
			}
			for i := range sends {
				if sends[i] != ghosts[i] {
					t.Fatalf("halo lists differ between %d and %d", a, b)
				}
				if p.Part[sends[i]] != b {
					t.Fatalf("send list of %d contains vertex not owned by it", b)
				}
			}
		}
	}
	// Every cut edge's off-part endpoint is some ghost.
	totalGhosts := 0
	for i := range halos {
		totalGhosts += halos[i].NumGhosts()
	}
	if totalGhosts == 0 {
		t.Error("no ghosts in a 6-way partition")
	}
}

func TestHaloShrinksPerPartWithMoreParts(t *testing.T) {
	// Surface-to-volume: with more parts, ghosts per part grow as a
	// fraction of part size (the paper's communication-growth effect:
	// total communicated data rises with processor count).
	g := wingGraph(t, 14, 12, 9)
	tot := func(np int) int {
		p, err := KWay(g, np)
		if err != nil {
			t.Fatal(err)
		}
		halos := BuildHalos(g, p)
		n := 0
		for i := range halos {
			n += halos[i].NumGhosts()
		}
		return n
	}
	g4, g32 := tot(4), tot(32)
	if g32 <= g4 {
		t.Errorf("total ghosts should grow with parts: %d (4) vs %d (32)", g4, g32)
	}
}

func TestPWayFragmentsMoreAtScale(t *testing.T) {
	g := wingGraph(t, 14, 12, 9)
	np := 64
	kp, err := KWay(g, np)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := PWay(g, np)
	if err != nil {
		t.Fatal(err)
	}
	kc, pc := kp.Components(g), pp.Components(g)
	kExtra, pExtra := 0, 0
	for i := 0; i < np; i++ {
		kExtra += kc[i] - 1
		pExtra += pc[i] - 1
	}
	if pExtra < kExtra {
		t.Errorf("PWay extra components %d < KWay %d; balance pass should not reduce fragmentation", pExtra, kExtra)
	}
}

func BenchmarkKWay64(b *testing.B) {
	g := wingGraph(b, 20, 16, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KWay(g, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func TestKWayValidProperty(t *testing.T) {
	// Property: KWay yields a valid partition (all vertices assigned, no
	// empty part) for arbitrary part counts.
	g := wingGraph(t, 8, 7, 5)
	f := func(raw uint8) bool {
		np := int(raw)%48 + 1
		p, err := KWay(g, np)
		if err != nil {
			return false
		}
		return p.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
