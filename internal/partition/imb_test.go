package partition

import (
	"testing"

	"petscfun3d/internal/mesh"
	"petscfun3d/internal/sparse"
)

// TestKWayImbalanceSweep guards against the BFS-growth pathology where
// stranded seeds leave near-empty parts and the leftovers overload the
// last parts — the 64-rank anomaly found in the Table 3 study.
func TestKWayImbalanceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("45k-vertex sweep")
	}
	m, err := mesh.GenerateWingN(45000)
	if err != nil {
		t.Fatal(err)
	}
	m = m.Renumber(mesh.RCM(m))
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	for _, np := range []int{32, 64, 128, 192, 256} {
		p, err := KWay(g, np)
		if err != nil {
			t.Fatal(err)
		}
		sizes := p.Sizes()
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		t.Logf("np=%d imbalance=%.3f min=%d max=%d mean=%d", np, p.Imbalance(), min, max, g.NV/np)
		if p.Imbalance() > 1.30 {
			t.Errorf("np=%d: imbalance %.3f exceeds 1.30", np, p.Imbalance())
		}
		if min < g.NV/np/4 {
			t.Errorf("np=%d: starved part of %d vertices (mean %d)", np, min, g.NV/np)
		}
	}
}
