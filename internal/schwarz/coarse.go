package schwarz

import (
	"fmt"

	"petscfun3d/internal/ilu"
	"petscfun3d/internal/sparse"
)

// Two-level additive Schwarz: the paper lists "coarse grid usage" among
// the Schwarz parameters (section 2.4.3) and notes that asymptotic
// scalability requires a coarse space, though its own runs omit it
// because pseudo-timestepping keeps the conditioning manageable. This
// file supplies that optional level: a piecewise-constant-per-subdomain
// coarse space (aggregation R with one aggregate per subdomain and
// component), the Galerkin coarse operator R A Rᵀ, and an additive
// coarse correction applied alongside the subdomain solves.

// CoarseLevel is the aggregation coarse space over a partition.
type CoarseLevel struct {
	B      int
	nparts int
	agg    []int32 // block row -> aggregate (its part id)
	ac     *sparse.BCSR
	factor *ilu.Factorization
	rc     []float64
	zc     []float64
}

// NewCoarseLevel builds the Galerkin coarse operator for matrix a under
// partition part: aggregate j's basis vector is the indicator of part
// j's rows (per component), so A_c[p,q] = Σ blocks of A coupling part p
// to part q. The coarse problem (nparts·B unknowns) is factored with a
// high fill level — effectively a direct solve at these sizes.
func NewCoarseLevel(a *sparse.BCSR, part []int32, nparts int) (*CoarseLevel, error) {
	if len(part) != a.NB {
		return nil, fmt.Errorf("schwarz: coarse partition length %d for %d rows", len(part), a.NB)
	}
	c := &CoarseLevel{B: a.B, nparts: nparts, agg: part}
	// Coarse pattern: parts p, q coupled when any fine block couples them.
	coupled := make(map[int64]bool)
	rows := make([][]int32, nparts)
	bb := a.B * a.B
	for i := 0; i < a.NB; i++ {
		p := part[i]
		for _, j := range a.ColIdx[a.RowPtr[i]:a.RowPtr[i+1]] {
			q := part[j]
			k := int64(p)<<32 | int64(q)
			if !coupled[k] {
				coupled[k] = true
				rows[p] = append(rows[p], q) //lint:alloc-ok one-time coarse-pattern discovery at setup
			}
		}
	}
	c.ac = sparse.NewBCSRPattern(nparts, a.B, rows)
	for i := 0; i < a.NB; i++ {
		p := part[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			q := part[a.ColIdx[k]]
			dst, ok := c.ac.BlockAt(int(p), int(q))
			if !ok {
				return nil, fmt.Errorf("schwarz: coarse block (%d,%d) missing", p, q)
			}
			src := a.Val[int(k)*bb : (int(k)+1)*bb]
			for z := 0; z < bb; z++ {
				dst[z] += src[z]
			}
		}
	}
	// Factor the coarse matrix with enough fill to be (near-)exact.
	f, err := ilu.Factor(c.ac, ilu.Options{Level: nparts + 2})
	if err != nil {
		return nil, fmt.Errorf("schwarz: coarse factorization: %w", err)
	}
	c.factor = f
	c.rc = make([]float64, nparts*a.B)
	c.zc = make([]float64, nparts*a.B)
	return c, nil
}

// Apply adds the coarse correction Rᵀ A_c⁻¹ R r into z.
func (c *CoarseLevel) Apply(r, z []float64) {
	b := c.B
	for i := range c.rc {
		c.rc[i] = 0
	}
	// Restrict: rc[agg] += r[row].
	for i, p := range c.agg {
		for comp := 0; comp < b; comp++ {
			c.rc[int(p)*b+comp] += r[i*b+comp]
		}
	}
	c.factor.Solve(c.rc, c.zc)
	// Prolong: z[row] += zc[agg].
	for i, p := range c.agg {
		for comp := 0; comp < b; comp++ {
			z[i*b+comp] += c.zc[int(p)*b+comp]
		}
	}
}

// WithCoarse wraps the preconditioner with an additive coarse-level
// correction built from the same partition.
type WithCoarse struct {
	Fine   *Preconditioner
	Coarse *CoarseLevel
}

// NewTwoLevel builds the two-level preconditioner: subdomain solves per
// opts plus the aggregation coarse correction.
func NewTwoLevel(a *sparse.BCSR, part []int32, nparts int, opts Options) (*WithCoarse, error) {
	fine, err := New(a, part, nparts, opts)
	if err != nil {
		return nil, err
	}
	coarse, err := NewCoarseLevel(a, part, nparts)
	if err != nil {
		return nil, err
	}
	return &WithCoarse{Fine: fine, Coarse: coarse}, nil
}

// Apply implements krylov.Preconditioner.
func (w *WithCoarse) Apply(r, z []float64) {
	w.Fine.Apply(r, z)
	w.Coarse.Apply(r, z)
}
