// Package schwarz implements the domain-decomposition preconditioners of
// the paper: block Jacobi (zero overlap) and restricted additive Schwarz
// (RASM) with configurable overlap, with block ILU(k) as the subdomain
// solver. RASM applies the prolongation only to owned unknowns, which
// halves the communication of standard ASM — the variant the paper uses
// (section 2.4.3, citing Cai & Sarkis).
package schwarz

import (
	"fmt"

	"petscfun3d/internal/ilu"
	"petscfun3d/internal/par"
	"petscfun3d/internal/prof"
	"petscfun3d/internal/sparse"
)

// Options configures the preconditioner.
type Options struct {
	// Overlap is the number of BFS layers added to each subdomain
	// (0 = block Jacobi; Table 4 sweeps 0..2).
	Overlap int
	// ILU configures the subdomain solver (fill level, storage
	// precision).
	ILU ilu.Options
	// Pool is the node-level worker pool for the level-scheduled
	// subdomain triangular solves; nil solves sequentially. A non-nil
	// pool serves one solve at a time, so concurrent ApplySubdomain
	// calls (the virtual machine's per-rank accounting) require nil.
	Pool *par.Pool
}

// Subdomain is the solver state of one part: the owned and extended
// (owned + overlap) block rows, the extracted local matrix, and its
// ILU factorization.
type Subdomain struct {
	Owned    []int32 // global block rows owned by this part, sorted
	Extended []int32 // owned plus overlap layers, sorted
	Local    *sparse.BCSR
	Factor   *ilu.Factorization

	globalToLocal map[int32]int32
	rhs           []float64
	sol           []float64
}

// Preconditioner is a block Jacobi / RASM preconditioner over a
// partitioned global block matrix.
type Preconditioner struct {
	NB   int
	B    int
	Opts Options
	Subs []*Subdomain
}

// New builds the preconditioner for global matrix a partitioned by part
// (length a.NB, values in [0, nparts)).
func New(a *sparse.BCSR, part []int32, nparts int, opts Options) (*Preconditioner, error) {
	if len(part) != a.NB {
		return nil, fmt.Errorf("schwarz: partition length %d, matrix has %d block rows", len(part), a.NB)
	}
	if opts.Overlap < 0 {
		return nil, fmt.Errorf("schwarz: negative overlap %d", opts.Overlap)
	}
	sp := prof.Begin(prof.PhasePCSetup)
	defer sp.End(0, 0) // extraction only; the factorizations report their own work
	p := &Preconditioner{NB: a.NB, B: a.B, Opts: opts, Subs: make([]*Subdomain, nparts)}
	owned := make([][]int32, nparts)
	for i, q := range part {
		if q < 0 || int(q) >= nparts {
			return nil, fmt.Errorf("schwarz: row %d in invalid part %d", i, q)
		}
		owned[q] = append(owned[q], int32(i)) //lint:alloc-ok one-time partition of rows at preconditioner setup
	}
	for q := 0; q < nparts; q++ {
		sub, err := buildSubdomain(a, owned[q], opts)
		if err != nil {
			return nil, fmt.Errorf("schwarz: subdomain %d: %w", q, err)
		}
		p.Subs[q] = sub
	}
	return p, nil
}

func buildSubdomain(a *sparse.BCSR, owned []int32, opts Options) (*Subdomain, error) {
	if len(owned) == 0 {
		return nil, fmt.Errorf("empty subdomain")
	}
	s := &Subdomain{Owned: owned}
	// Expand by BFS layers over the block sparsity graph.
	in := make(map[int32]bool, len(owned)*2)
	for _, r := range owned {
		in[r] = true
	}
	frontier := append([]int32(nil), owned...)
	for layer := 0; layer < opts.Overlap; layer++ {
		var next []int32
		for _, r := range frontier {
			for _, j := range a.ColIdx[a.RowPtr[r]:a.RowPtr[r+1]] {
				if !in[j] {
					in[j] = true
					next = append(next, j) //lint:alloc-ok one-time BFS overlap expansion at subdomain setup
				}
			}
		}
		frontier = next
	}
	s.Extended = make([]int32, 0, len(in))
	for r := range in {
		s.Extended = append(s.Extended, r) //lint:alloc-ok appends into exact preallocated capacity at setup
	}
	sortInt32(s.Extended)
	s.globalToLocal = make(map[int32]int32, len(s.Extended))
	for li, r := range s.Extended {
		s.globalToLocal[r] = int32(li)
	}
	// Extract the local matrix: rows/cols restricted to Extended.
	rows := make([][]int32, len(s.Extended))
	for li, r := range s.Extended {
		for _, j := range a.ColIdx[a.RowPtr[r]:a.RowPtr[r+1]] {
			if lj, ok := s.globalToLocal[j]; ok {
				rows[li] = append(rows[li], lj) //lint:alloc-ok one-time local-matrix extraction at subdomain setup
			}
		}
	}
	s.Local = sparse.NewBCSRPattern(len(s.Extended), a.B, rows)
	bb := a.B * a.B
	for li, r := range s.Extended {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			j := a.ColIdx[k]
			lj, ok := s.globalToLocal[j]
			if !ok {
				continue
			}
			dst, ok := s.Local.BlockAt(li, int(lj))
			if !ok {
				return nil, fmt.Errorf("extraction lost block (%d,%d)", li, lj)
			}
			copy(dst, a.Val[int(k)*bb:(int(k)+1)*bb])
		}
	}
	var err error
	s.Factor, err = ilu.Factor(s.Local, opts.ILU)
	if err != nil {
		return nil, err
	}
	s.rhs = make([]float64, len(s.Extended)*a.B)
	s.sol = make([]float64, len(s.Extended)*a.B)
	return s, nil
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}

// applyCopyBytes is the restrict/prolong copy traffic of one
// preconditioner application: 32 bytes per owned scalar (zero-fill and
// accumulate of z, gather of r into the subdomain workspaces).
func (p *Preconditioner) applyCopyBytes() int64 { return int64(32 * p.NB * p.B) }

// Apply implements krylov.Preconditioner: z = M⁻¹ r via independent
// subdomain solves, restricted prolongation (owned unknowns only).
func (p *Preconditioner) Apply(r, z []float64) {
	sp := prof.Begin(prof.PhasePCApply)
	// Restrict/prolong copy traffic; the triangular solves inside report
	// their own flops and bytes.
	defer sp.End(0, p.applyCopyBytes())
	zs := z[:p.NB*p.B]
	for i := range zs {
		zs[i] = 0
	}
	for _, s := range p.Subs {
		p.ApplySubdomain(s, r, z)
	}
}

// ApplySubdomain performs one subdomain's restrict-solve-prolong. It is
// exposed so the virtual machine can account each subdomain's work to
// its rank; subdomains touch disjoint owned entries of z, so concurrent
// calls on distinct subdomains are safe when z is shared.
func (p *Preconditioner) ApplySubdomain(s *Subdomain, r, z []float64) {
	b := p.B
	for li, gr := range s.Extended {
		copy(s.rhs[li*b:li*b+b], r[int(gr)*b:int(gr)*b+b]) //lint:bce-ok restrict gathers through the subdomain row list; both offsets are data-dependent
	}
	s.Factor.SolvePar(p.Opts.Pool, s.rhs, s.sol)
	for _, gr := range s.Owned {
		li := s.globalToLocal[gr]
		copy(z[int(gr)*b:int(gr)*b+b], s.sol[int(li)*b:int(li)*b+b]) //lint:bce-ok prolong scatters through the owned row list and local index map; both offsets are data-dependent
	}
}

// GhostRows returns the number of non-owned block rows a subdomain reads
// (its overlap region) — communication volume for the cost model.
func (s *Subdomain) GhostRows() int { return len(s.Extended) - len(s.Owned) }

// SolveFlops returns the floating-point work of one subdomain apply.
func (s *Subdomain) SolveFlops() int64 { return s.Factor.SolveFlops() }

// SolveBytes returns the memory traffic of one subdomain apply.
func (s *Subdomain) SolveBytes() int64 { return s.Factor.SolveBytes() }

// FactorBlocks returns the number of stored blocks across all subdomain
// factors (the preconditioner's memory footprint).
func (p *Preconditioner) FactorBlocks() int {
	n := 0
	for _, s := range p.Subs {
		n += s.Factor.NNZBlocks()
	}
	return n
}
