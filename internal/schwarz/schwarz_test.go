package schwarz

import (
	"math"
	"testing"

	"petscfun3d/internal/ilu"
	"petscfun3d/internal/krylov"
	"petscfun3d/internal/mesh"
	"petscfun3d/internal/partition"
	"petscfun3d/internal/sparse"
)

type problem struct {
	a    *sparse.BCSR
	g    sparse.Graph
	rhs  []float64
	part *partition.Partition
}

func buildProblem(t testing.TB, nx, ny, nz, b, nparts int) *problem {
	t.Helper()
	m, err := mesh.GenerateWing(mesh.DefaultWingSpec(nx, ny, nz))
	if err != nil {
		t.Fatal(err)
	}
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	a := sparse.BlockPattern(g, b)
	a.FillDeterministic(91)
	p, err := partition.KWay(g, nparts)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, a.N())
	for i := range rhs {
		rhs[i] = math.Sin(float64(i) * 0.17)
	}
	return &problem{a: a, g: g, rhs: rhs, part: p}
}

func solveIts(t testing.TB, pr *problem, opts Options) int {
	t.Helper()
	pc, err := New(pr.a, pr.part.Part, pr.part.NParts, opts)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, pr.a.N())
	st, err := krylov.Solve(krylov.OperatorFunc(pr.a.MulVec), pc, pr.rhs, x,
		krylov.Options{Restart: 30, MaxIters: 500, RelTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("solve with %+v did not converge: %+v", opts, st)
	}
	// Verify the true residual, not just GMRES's recurrence.
	ax := make([]float64, pr.a.N())
	pr.a.MulVec(x, ax)
	var num, den float64
	for i := range ax {
		d := pr.rhs[i] - ax[i]
		num += d * d
		den += pr.rhs[i] * pr.rhs[i]
	}
	if math.Sqrt(num/den) > 1e-6 {
		t.Fatalf("true relative residual %g too large", math.Sqrt(num/den))
	}
	return st.Iterations
}

func TestSingleSubdomainEqualsGlobalILU(t *testing.T) {
	pr := buildProblem(t, 5, 4, 4, 4, 1)
	pc, err := New(pr.a, pr.part.Part, 1, Options{ILU: ilu.Options{Level: 0}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ilu.Factor(pr.a, ilu.Options{Level: 0})
	if err != nil {
		t.Fatal(err)
	}
	z1 := make([]float64, pr.a.N())
	z2 := make([]float64, pr.a.N())
	pc.Apply(pr.rhs, z1)
	f.Solve(pr.rhs, z2)
	for i := range z1 {
		if math.Abs(z1[i]-z2[i]) > 1e-12 {
			t.Fatalf("single-subdomain Schwarz differs from global ILU at %d: %g vs %g", i, z1[i], z2[i])
		}
	}
}

func TestMoreSubdomainsMoreIterations(t *testing.T) {
	// The paper's core algorithmic scalability effect: block-iterative
	// convergence degrades as the number of blocks grows.
	pr4 := buildProblem(t, 9, 8, 6, 4, 4)
	pr32 := buildProblem(t, 9, 8, 6, 4, 32)
	its4 := solveIts(t, pr4, Options{ILU: ilu.Options{Level: 0}})
	its32 := solveIts(t, pr32, Options{ILU: ilu.Options{Level: 0}})
	if its32 <= its4 {
		t.Errorf("iterations did not grow with subdomains: %d (4 parts) vs %d (32 parts)", its4, its32)
	}
}

func TestOverlapReducesIterations(t *testing.T) {
	pr := buildProblem(t, 9, 8, 6, 4, 16)
	its0 := solveIts(t, pr, Options{Overlap: 0, ILU: ilu.Options{Level: 0}})
	its1 := solveIts(t, pr, Options{Overlap: 1, ILU: ilu.Options{Level: 0}})
	if its1 > its0 {
		t.Errorf("overlap 1 iterations %d > overlap 0 %d", its1, its0)
	}
}

func TestFillReducesIterations(t *testing.T) {
	pr := buildProblem(t, 9, 8, 6, 4, 16)
	its0 := solveIts(t, pr, Options{ILU: ilu.Options{Level: 0}})
	its1 := solveIts(t, pr, Options{ILU: ilu.Options{Level: 1}})
	if its1 > its0 {
		t.Errorf("ILU(1) iterations %d > ILU(0) %d", its1, its0)
	}
}

func TestSinglePrecisionSubdomainsConverge(t *testing.T) {
	pr := buildProblem(t, 8, 7, 5, 4, 8)
	itsD := solveIts(t, pr, Options{ILU: ilu.Options{Level: 0}})
	itsS := solveIts(t, pr, Options{ILU: ilu.Options{Level: 0, SinglePrecision: true}})
	// The paper: single-precision preconditioner storage does not change
	// convergence materially (the preconditioner is approximate anyway).
	if diff := itsS - itsD; diff > itsD/4+2 {
		t.Errorf("single-precision iterations %d much worse than double %d", itsS, itsD)
	}
}

func TestGhostRowsGrowWithOverlap(t *testing.T) {
	pr := buildProblem(t, 8, 7, 5, 4, 8)
	pc0, err := New(pr.a, pr.part.Part, 8, Options{Overlap: 0, ILU: ilu.Options{Level: 0}})
	if err != nil {
		t.Fatal(err)
	}
	pc1, err := New(pr.a, pr.part.Part, 8, Options{Overlap: 1, ILU: ilu.Options{Level: 0}})
	if err != nil {
		t.Fatal(err)
	}
	g0, g1 := 0, 0
	for i := range pc0.Subs {
		g0 += pc0.Subs[i].GhostRows()
		g1 += pc1.Subs[i].GhostRows()
	}
	if g0 != 0 {
		t.Errorf("block Jacobi has %d ghost rows, want 0", g0)
	}
	if g1 <= 0 {
		t.Error("overlap 1 has no ghost rows")
	}
	if pc1.FactorBlocks() <= pc0.FactorBlocks() {
		t.Error("overlap did not grow factor storage")
	}
}

func TestNewValidation(t *testing.T) {
	pr := buildProblem(t, 4, 3, 3, 2, 2)
	if _, err := New(pr.a, pr.part.Part[:3], 2, Options{}); err == nil {
		t.Error("short partition accepted")
	}
	bad := append([]int32(nil), pr.part.Part...)
	bad[0] = 99
	if _, err := New(pr.a, bad, 2, Options{}); err == nil {
		t.Error("invalid part index accepted")
	}
	if _, err := New(pr.a, pr.part.Part, 2, Options{Overlap: -1}); err == nil {
		t.Error("negative overlap accepted")
	}
}

func TestSubdomainWorkEstimatesPositive(t *testing.T) {
	pr := buildProblem(t, 5, 4, 4, 4, 4)
	pc, err := New(pr.a, pr.part.Part, 4, Options{Overlap: 1, ILU: ilu.Options{Level: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range pc.Subs {
		if s.SolveFlops() <= 0 || s.SolveBytes() <= 0 {
			t.Errorf("subdomain %d: nonpositive work estimate", i)
		}
		if len(s.Owned) == 0 {
			t.Errorf("subdomain %d: no owned rows", i)
		}
	}
}

func BenchmarkApplyRASM1(b *testing.B) {
	pr := buildProblem(b, 10, 8, 7, 4, 16)
	pc, err := New(pr.a, pr.part.Part, 16, Options{Overlap: 1, ILU: ilu.Options{Level: 1}})
	if err != nil {
		b.Fatal(err)
	}
	z := make([]float64, pr.a.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc.Apply(pr.rhs, z)
	}
}

func solveItsWith(t testing.TB, pr *problem, pc krylov.Preconditioner) int {
	t.Helper()
	x := make([]float64, pr.a.N())
	st, err := krylov.Solve(krylov.OperatorFunc(pr.a.MulVec), pc, pr.rhs, x,
		krylov.Options{Restart: 30, MaxIters: 800, RelTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("solve did not converge")
	}
	return st.Iterations
}

// laplacianProblem builds a graph-Laplacian system (diag = degree + ε,
// off-diagonal = -1): barely diagonally dominant, with the slowly
// decaying global error modes that make one-level Schwarz degrade with
// subdomain count — exactly the regime the coarse space exists for.
func laplacianProblem(t testing.TB, nx, ny, nz, nparts int) *problem {
	t.Helper()
	m, err := mesh.GenerateWing(mesh.DefaultWingSpec(nx, ny, nz))
	if err != nil {
		t.Fatal(err)
	}
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	a := sparse.BlockPattern(g, 1)
	for i := 0; i < a.NB; i++ {
		deg := 0
		for _, j := range a.ColIdx[a.RowPtr[i]:a.RowPtr[i+1]] {
			if int(j) != i {
				blk, _ := a.BlockAt(i, int(j))
				blk[0] = -1
				deg++
			}
		}
		diag, _ := a.BlockAt(i, i)
		diag[0] = float64(deg) + 0.05
	}
	p, err := partition.KWay(g, nparts)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, a.N())
	for i := range rhs {
		rhs[i] = math.Sin(float64(i) * 0.17)
	}
	return &problem{a: a, g: g, rhs: rhs, part: p}
}

func TestCoarseLevelReducesIterationGrowth(t *testing.T) {
	// The coarse space damps the block-count dependence of convergence:
	// on a Laplacian with many subdomains, two-level Schwarz needs far
	// fewer iterations than single-level.
	pr := laplacianProblem(t, 10, 9, 7, 48)
	one, err := New(pr.a, pr.part.Part, 48, Options{ILU: ilu.Options{Level: 0}})
	if err != nil {
		t.Fatal(err)
	}
	two, err := NewTwoLevel(pr.a, pr.part.Part, 48, Options{ILU: ilu.Options{Level: 0}})
	if err != nil {
		t.Fatal(err)
	}
	itsOne := solveItsWith(t, pr, one)
	itsTwo := solveItsWith(t, pr, two)
	if itsTwo >= itsOne {
		t.Errorf("coarse level did not help: %d (two-level) vs %d (one-level)", itsTwo, itsOne)
	}
}

func TestCoarseLevelExactOnCoarseSpace(t *testing.T) {
	// For a residual constant within each subdomain (in the range of the
	// coarse space), the coarse correction solves the Galerkin system
	// exactly: A_c zc = rc reproduces rc when re-restricted.
	pr := buildProblem(t, 6, 5, 4, 2, 4)
	c, err := NewCoarseLevel(pr.a, pr.part.Part, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := 2
	r := make([]float64, pr.a.N())
	for i := 0; i < pr.a.NB; i++ {
		for comp := 0; comp < b; comp++ {
			r[i*b+comp] = float64(pr.part.Part[i]+1) * (1 + 0.5*float64(comp))
		}
	}
	z := make([]float64, pr.a.N())
	c.Apply(r, z)
	// z restricted through A must reproduce r's aggregate sums:
	// R A z = R r since z = R^T A_c^{-1} R r and A_c = R A R^T.
	az := make([]float64, pr.a.N())
	pr.a.MulVec(z, az)
	sums := make([]float64, 4*b)
	want := make([]float64, 4*b)
	for i := 0; i < pr.a.NB; i++ {
		p := pr.part.Part[i]
		for comp := 0; comp < b; comp++ {
			sums[int(p)*b+comp] += az[i*b+comp]
			want[int(p)*b+comp] += r[i*b+comp]
		}
	}
	for i := range sums {
		if math.Abs(sums[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
			t.Fatalf("coarse Galerkin identity violated at %d: %g vs %g", i, sums[i], want[i])
		}
	}
}

func TestCoarseLevelValidation(t *testing.T) {
	pr := buildProblem(t, 4, 3, 3, 2, 2)
	if _, err := NewCoarseLevel(pr.a, pr.part.Part[:3], 2); err == nil {
		t.Error("short partition accepted")
	}
}
