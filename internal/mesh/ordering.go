package mesh

import "sort"

// Ordering is a vertex permutation. Order[new] = old gives the old index
// of the vertex placed at position new; Perm[old] = new is its inverse.
type Ordering struct {
	Order []int32 // new position -> old index
	Perm  []int32 // old index -> new position
}

// NewOrdering builds an Ordering (and its inverse) from order, where
// order[new] = old.
func NewOrdering(order []int32) Ordering {
	perm := make([]int32, len(order))
	for n, o := range order {
		perm[o] = int32(n)
	}
	return Ordering{Order: order, Perm: perm}
}

// Identity returns the identity ordering on n vertices.
func Identity(n int) Ordering {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	return NewOrdering(order)
}

// RCM computes the Reverse Cuthill-McKee ordering of the mesh's vertex
// graph. RCM reduces the graph bandwidth, which the paper uses (together
// with edge sorting) to create spatial locality and cut cache and TLB
// misses. Disconnected components are each ordered from a
// pseudo-peripheral start vertex.
func RCM(m *Mesh) Ordering {
	n := m.NumVertices()
	order := make([]int32, 0, n)
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	for comp := 0; comp < n; comp++ {
		if visited[comp] {
			continue
		}
		start := pseudoPeripheral(m, int32(comp), visited)
		queue = queue[:0]
		queue = append(queue, start)
		visited[start] = true
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			order = append(order, v)
			// Append unvisited neighbors in increasing-degree order
			// (classic Cuthill-McKee tie-breaking).
			before := len(queue)
			for _, w := range m.Neighbors(int(v)) {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
			sortByDegree(m, queue[before:])
		}
	}
	// Reverse for RCM.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return NewOrdering(order)
}

func sortByDegree(m *Mesh, vs []int32) {
	sort.Slice(vs, func(i, j int) bool {
		di, dj := m.Degree(int(vs[i])), m.Degree(int(vs[j]))
		if di != dj {
			return di < dj
		}
		return vs[i] < vs[j]
	})
}

// pseudoPeripheral finds a vertex of (locally) maximal eccentricity in the
// component containing start, restricted to unvisited vertices, using the
// standard alternating-BFS heuristic.
func pseudoPeripheral(m *Mesh, start int32, visited []bool) int32 {
	cur := start
	curDepth := -1
	level := make(map[int32]int)
	for iter := 0; iter < 8; iter++ {
		for k := range level {
			delete(level, k)
		}
		frontier := []int32{cur}
		level[cur] = 0
		depth := 0
		var last int32 = cur
		lastDeg := m.Degree(int(cur))
		for len(frontier) > 0 {
			next := frontier[:0:0]
			for _, v := range frontier {
				for _, w := range m.Neighbors(int(v)) {
					if visited[w] {
						continue
					}
					if _, ok := level[w]; !ok {
						level[w] = level[v] + 1
						next = append(next, w)
						if level[w] > depth || (level[w] == depth && m.Degree(int(w)) < lastDeg) {
							depth = level[w]
							last = w
							lastDeg = m.Degree(int(w))
						}
					}
				}
			}
			frontier = next
		}
		if depth <= curDepth {
			break
		}
		curDepth = depth
		cur = last
	}
	return cur
}

// Renumber returns a new mesh with vertices permuted by ord: vertex
// ord.Order[new] of m becomes vertex new of the result. Tetrahedra and the
// derived edge list/adjacency are rebuilt in the new numbering, so the
// result's Edges are again in sorted (A < B, lexicographic) order.
func (m *Mesh) Renumber(ord Ordering) *Mesh {
	n := m.NumVertices()
	out := &Mesh{
		Coords:   make([]Vec3, n),
		Boundary: make([]bool, n),
		BKind:    make([]BoundaryKind, n),
		BNormal:  make([]Vec3, n),
		Tets:     make([][4]int32, len(m.Tets)),
	}
	for newIdx, oldIdx := range ord.Order {
		out.Coords[newIdx] = m.Coords[oldIdx]
		out.Boundary[newIdx] = m.Boundary[oldIdx]
		if m.BKind != nil {
			out.BKind[newIdx] = m.BKind[oldIdx]
			out.BNormal[newIdx] = m.BNormal[oldIdx]
		}
	}
	for ti, t := range m.Tets {
		for c := 0; c < 4; c++ {
			out.Tets[ti][c] = ord.Perm[t[c]]
		}
	}
	out.buildConnectivity()
	return out
}
