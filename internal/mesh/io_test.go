package mesh

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestMeshRoundTrip(t *testing.T) {
	orig := testWing(t, 6, 5, 4)
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != orig.NumVertices() || got.NumTets() != orig.NumTets() {
		t.Fatalf("sizes changed: %d/%d vs %d/%d",
			got.NumVertices(), got.NumTets(), orig.NumVertices(), orig.NumTets())
	}
	if got.NumEdges() != orig.NumEdges() {
		t.Errorf("edges changed: %d vs %d", got.NumEdges(), orig.NumEdges())
	}
	for v := 0; v < orig.NumVertices(); v++ {
		if got.Coords[v] != orig.Coords[v] {
			t.Fatalf("coords changed at %d", v)
		}
		if got.BKind[v] != orig.BKind[v] {
			t.Fatalf("boundary kind changed at %d", v)
		}
		if got.Boundary[v] != orig.Boundary[v] {
			t.Fatalf("boundary flag changed at %d", v)
		}
	}
	// Rebuilt boundary normals roughly agree with the generator's (both
	// outward unit vectors; face-weighted vs lattice-assigned, so allow
	// generous angular tolerance).
	for v := 0; v < orig.NumVertices(); v++ {
		if !orig.Boundary[v] {
			continue
		}
		n1, n2 := orig.BNormal[v], got.BNormal[v]
		dot := n1.X*n2.X + n1.Y*n2.Y + n1.Z*n2.Z
		if dot <= 0 {
			t.Fatalf("vertex %d: rebuilt normal points away from original (dot %g)", v, dot)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"wrongheader 1\n",
		"fun3dmesh 1\nvertices -3\n",
		"fun3dmesh 1\nvertices 1\n0 0 0 9\ntets 1\n0 0 0 0\n",
		"fun3dmesh 1\nvertices 2\n0 0 0 0\n1 0 0 0\ntets 1\n0 1 2 3\n",
		"fun3dmesh 1\nvertices 1\n0 0 zebra 0\ntets 1\n0 0 0 0\n",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRebuildBoundaryNormalsUnitLength(t *testing.T) {
	m := testWing(t, 5, 5, 4)
	m.RebuildBoundaryNormals()
	for v := 0; v < m.NumVertices(); v++ {
		n := m.BNormal[v]
		l := math.Sqrt(n.X*n.X + n.Y*n.Y + n.Z*n.Z)
		if m.Boundary[v] {
			if math.Abs(l-1) > 1e-12 {
				t.Fatalf("boundary vertex %d normal length %g", v, l)
			}
		}
	}
}
