package mesh

import (
	"testing"
	"testing/quick"
)

func testWing(t *testing.T, nx, ny, nz int) *Mesh {
	t.Helper()
	m, err := GenerateWing(DefaultWingSpec(nx, ny, nz))
	if err != nil {
		t.Fatalf("GenerateWing(%d,%d,%d): %v", nx, ny, nz, err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return m
}

func TestGenerateWingCounts(t *testing.T) {
	cases := []struct{ nx, ny, nz int }{
		{2, 2, 2}, {3, 3, 3}, {5, 4, 3}, {10, 8, 6},
	}
	for _, c := range cases {
		m := testWing(t, c.nx, c.ny, c.nz)
		wantV := c.nx * c.ny * c.nz
		if m.NumVertices() != wantV {
			t.Errorf("%dx%dx%d: vertices = %d, want %d", c.nx, c.ny, c.nz, m.NumVertices(), wantV)
		}
		wantT := 6 * (c.nx - 1) * (c.ny - 1) * (c.nz - 1)
		if m.NumTets() != wantT {
			t.Errorf("%dx%dx%d: tets = %d, want %d", c.nx, c.ny, c.nz, m.NumTets(), wantT)
		}
	}
}

func TestGenerateWingRejectsBadSpec(t *testing.T) {
	if _, err := GenerateWing(DefaultWingSpec(1, 3, 3)); err == nil {
		t.Error("expected error for nx=1")
	}
	spec := DefaultWingSpec(3, 3, 3)
	spec.Taper = 0
	if _, err := GenerateWing(spec); err == nil {
		t.Error("expected error for taper=0")
	}
	spec.Taper = 1.5
	if _, err := GenerateWing(spec); err == nil {
		t.Error("expected error for taper>1")
	}
}

func TestWingDegreeStatistics(t *testing.T) {
	m := testWing(t, 12, 10, 8)
	// Interior vertices of the 6-tet hex split have degree 14; the mean
	// over the whole mesh should land near the unstructured-CFD range the
	// paper assumes (~15 nonzeros per row).
	avg := m.AvgDegree()
	if avg < 9 || avg > 15 {
		t.Errorf("average degree %.2f outside expected range [9, 15]", avg)
	}
	if m.MaxDegree() > 20 {
		t.Errorf("max degree %d unexpectedly large", m.MaxDegree())
	}
}

func TestWingConnected(t *testing.T) {
	m := testWing(t, 6, 5, 4)
	seen := make([]bool, m.NumVertices())
	stack := []int32{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, w := range m.Neighbors(int(v)) {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	if count != m.NumVertices() {
		t.Errorf("mesh graph disconnected: reached %d of %d vertices", count, m.NumVertices())
	}
}

func TestGenerateWingN(t *testing.T) {
	for _, target := range []int{100, 1000, 22677} {
		m, err := GenerateWingN(target)
		if err != nil {
			t.Fatalf("GenerateWingN(%d): %v", target, err)
		}
		got := m.NumVertices()
		if got < target/3 || got > target*3 {
			t.Errorf("GenerateWingN(%d) produced %d vertices, outside 3x band", target, got)
		}
	}
	if _, err := GenerateWingN(1); err == nil {
		t.Error("expected error for tiny target")
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	m := testWing(t, 10, 9, 8)
	natBW := m.Bandwidth()
	rcm := m.Renumber(RCM(m))
	if err := rcm.Validate(); err != nil {
		t.Fatalf("renumbered mesh invalid: %v", err)
	}
	rcmBW := rcm.Bandwidth()
	// Natural ordering of a 10x9x8 lattice has bandwidth ~ nx*ny ≈ 90+;
	// RCM should not be worse and typically is comparable or better. The
	// important property for the paper is that RCM beats a *scrambled*
	// ordering decisively.
	if rcmBW > natBW {
		t.Errorf("RCM bandwidth %d worse than natural %d", rcmBW, natBW)
	}
	scrambled := m.Renumber(scrambleOrdering(m.NumVertices()))
	badBW := scrambled.Bandwidth()
	rescued := scrambled.Renumber(RCM(scrambled))
	if got := rescued.Bandwidth(); got*2 > badBW {
		t.Errorf("RCM bandwidth %d not < half of scrambled bandwidth %d", got, badBW)
	}
}

// scrambleOrdering returns a deterministic pseudo-random permutation.
func scrambleOrdering(n int) Ordering {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	state := uint64(0x9e3779b97f4a7c15)
	for i := n - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	return NewOrdering(order)
}

func TestOrderingInverse(t *testing.T) {
	ord := scrambleOrdering(257)
	for o := range ord.Perm {
		if ord.Order[ord.Perm[o]] != int32(o) {
			t.Fatalf("Order[Perm[%d]] = %d", o, ord.Order[ord.Perm[o]])
		}
	}
	id := Identity(31)
	for i, v := range id.Order {
		if int(v) != i || id.Perm[i] != int32(i) {
			t.Fatalf("Identity broken at %d", i)
		}
	}
}

func TestRenumberPreservesGraph(t *testing.T) {
	m := testWing(t, 5, 5, 4)
	ord := scrambleOrdering(m.NumVertices())
	rm := m.Renumber(ord)
	if rm.NumEdges() != m.NumEdges() {
		t.Fatalf("edge count changed: %d -> %d", m.NumEdges(), rm.NumEdges())
	}
	// Every original edge must map to an edge of the renumbered mesh.
	has := make(map[Edge]bool, rm.NumEdges())
	for _, e := range rm.Edges {
		has[e] = true
	}
	for _, e := range m.Edges {
		a, b := ord.Perm[e.A], ord.Perm[e.B]
		if a > b {
			a, b = b, a
		}
		if !has[Edge{a, b}] {
			t.Fatalf("edge (%d,%d) lost in renumbering", e.A, e.B)
		}
	}
	// Coordinates and boundary flags follow their vertices.
	for newIdx, oldIdx := range ord.Order {
		if rm.Coords[newIdx] != m.Coords[oldIdx] {
			t.Fatalf("coords not permuted at %d", newIdx)
		}
		if rm.Boundary[newIdx] != m.Boundary[oldIdx] {
			t.Fatalf("boundary flag not permuted at %d", newIdx)
		}
	}
}

func TestSortEdges(t *testing.T) {
	m := testWing(t, 6, 5, 4)
	_, classes := ColorEdges(m.Edges, m.NumVertices())
	colored, _ := ColorEdges(m.Edges, m.NumVertices())
	sorted := SortEdges(colored)
	for i := 1; i < len(sorted); i++ {
		if sorted[i].A < sorted[i-1].A ||
			(sorted[i].A == sorted[i-1].A && sorted[i].B < sorted[i-1].B) {
			t.Fatalf("SortEdges not sorted at %d", i)
		}
	}
	if len(sorted) != len(m.Edges) {
		t.Fatalf("SortEdges changed length")
	}
	_ = classes
}

func TestColorEdgesValid(t *testing.T) {
	m := testWing(t, 7, 6, 5)
	ordered, classes := ColorEdges(m.Edges, m.NumVertices())
	total := 0
	for _, c := range classes {
		total += c
	}
	if total != len(m.Edges) {
		t.Fatalf("class sizes sum to %d, want %d", total, len(m.Edges))
	}
	if !VerifyColoring(ordered, classes, m.NumVertices()) {
		t.Fatal("coloring invalid: a color class repeats a vertex")
	}
	// A valid edge coloring needs at least maxDegree colors.
	if len(classes) < m.MaxDegree() {
		t.Errorf("got %d colors, expected at least max degree %d", len(classes), m.MaxDegree())
	}
}

func TestColoredOrderingHasWorseLocality(t *testing.T) {
	m := testWing(t, 10, 8, 7)
	sorted := SortEdges(m.Edges)
	colored, _ := ColorEdges(m.Edges, m.NumVertices())
	rs := MeanReuseTime(sorted, m.NumVertices())
	rc := MeanReuseTime(colored, m.NumVertices())
	// The colored (vector-machine) ordering should have decisively worse
	// reuse times than the sorted ordering.
	if rs*3 > rc {
		t.Errorf("sorted reuse time %.1f not >=3x better than colored %.1f", rs, rc)
	}
}

func TestMeanReuseTimeDegenerate(t *testing.T) {
	if MeanReuseTime(nil, 4) != 0 {
		t.Error("MeanReuseTime(nil) should be 0")
	}
	if MeanReuseTime([]Edge{{0, 1}, {2, 3}}, 4) != 0 {
		t.Error("no vertex reused: reuse time should be 0")
	}
	// Edge repeated immediately: references A B A B, reuse time 2.
	if got := MeanReuseTime([]Edge{{0, 1}, {0, 1}}, 2); got != 2 {
		t.Errorf("MeanReuseTime of repeated edge = %v, want 2", got)
	}
}

func TestEdgeLocalityDegenerate(t *testing.T) {
	if EdgeLocality(nil) != 0 || EdgeLocality([]Edge{{0, 1}}) != 0 {
		t.Error("EdgeLocality of <2 edges should be 0")
	}
}

func TestBandwidthProperty(t *testing.T) {
	// Property: bandwidth is invariant under the identity and bounded by
	// n-1 under any permutation.
	m := testWing(t, 5, 4, 4)
	f := func(seed uint32) bool {
		ord := scrambleOrderingSeeded(m.NumVertices(), uint64(seed)+1)
		bw := m.Renumber(ord).Bandwidth()
		return bw >= 1 && bw <= m.NumVertices()-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func scrambleOrderingSeeded(n int, seed uint64) Ordering {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	state := seed
	for i := n - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	return NewOrdering(order)
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := testWing(t, 3, 3, 3)
	bad := *m
	bad.Tets = append([][4]int32{}, m.Tets...)
	bad.Tets[0] = [4]int32{0, 0, 1, 2}
	if err := bad.Validate(); err == nil {
		t.Error("repeated vertex in tet not caught")
	}
	bad.Tets[0] = [4]int32{0, 1, 2, 9999}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range vertex not caught")
	}
	bad2 := *m
	bad2.Edges = append([]Edge{}, m.Edges...)
	bad2.Edges[0] = Edge{5, 5}
	if err := bad2.Validate(); err == nil {
		t.Error("degenerate edge not caught")
	}
}

func BenchmarkGenerateWing22k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := GenerateWingN(22677)
		if err != nil {
			b.Fatal(err)
		}
		_ = m
	}
}

func BenchmarkRCM22k(b *testing.B) {
	m, err := GenerateWingN(22677)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RCM(m)
	}
}
