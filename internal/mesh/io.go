package mesh

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Mesh file I/O in a simple self-describing text format, so externally
// generated tetrahedral meshes (including real wing grids) can be fed to
// the solver and generated meshes can be archived:
//
//	fun3dmesh 1
//	vertices <nv>
//	<x> <y> <z> <bkind>     (nv lines; bkind: 0 none, 1 inflow, 2 outflow, 3 wall)
//	tets <nt>
//	<v0> <v1> <v2> <v3>     (nt lines)
//
// Connectivity (edges, adjacency) and boundary normals are rebuilt on
// read; boundary kinds are as stored.

// Write serializes the mesh.
func (m *Mesh) Write(w io.Writer) error {
	// bufio.Writer latches the first write error and every later write
	// is a no-op; Flush reports it, so intermediate results are
	// deliberately discarded.
	bw := bufio.NewWriter(w)
	_, _ = fmt.Fprintln(bw, "fun3dmesh 1")
	_, _ = fmt.Fprintf(bw, "vertices %d\n", m.NumVertices())
	for v := 0; v < m.NumVertices(); v++ {
		c := m.Coords[v]
		kind := BNone
		if m.BKind != nil {
			kind = m.BKind[v]
		}
		_, _ = fmt.Fprintf(bw, "%.17g %.17g %.17g %d\n", c.X, c.Y, c.Z, kind)
	}
	_, _ = fmt.Fprintf(bw, "tets %d\n", m.NumTets())
	for _, t := range m.Tets {
		_, _ = fmt.Fprintf(bw, "%d %d %d %d\n", t[0], t[1], t[2], t[3])
	}
	return bw.Flush()
}

// Read parses a mesh written by Write, rebuilding connectivity and
// estimating boundary normals from the boundary closure (see
// RebuildBoundaryNormals).
func Read(r io.Reader) (*Mesh, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	next := func() (string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" {
				return line, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	header, err := next()
	if err != nil {
		return nil, err
	}
	if header != "fun3dmesh 1" {
		return nil, fmt.Errorf("mesh: bad header %q", header)
	}
	line, err := next()
	if err != nil {
		return nil, err
	}
	var nv int
	if _, err := fmt.Sscanf(line, "vertices %d", &nv); err != nil || nv < 1 {
		return nil, fmt.Errorf("mesh: bad vertices line %q", line)
	}
	m := &Mesh{
		Coords:   make([]Vec3, nv),
		Boundary: make([]bool, nv),
		BKind:    make([]BoundaryKind, nv),
		BNormal:  make([]Vec3, nv),
	}
	for v := 0; v < nv; v++ {
		line, err := next()
		if err != nil {
			return nil, fmt.Errorf("mesh: vertex %d: %w", v, err)
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("mesh: vertex %d: want 4 fields, got %q", v, line)
		}
		var c Vec3
		if c.X, err = strconv.ParseFloat(f[0], 64); err != nil {
			return nil, fmt.Errorf("mesh: vertex %d: %w", v, err)
		}
		if c.Y, err = strconv.ParseFloat(f[1], 64); err != nil {
			return nil, fmt.Errorf("mesh: vertex %d: %w", v, err)
		}
		if c.Z, err = strconv.ParseFloat(f[2], 64); err != nil {
			return nil, fmt.Errorf("mesh: vertex %d: %w", v, err)
		}
		kind, err := strconv.Atoi(f[3])
		if err != nil || kind < 0 || kind > int(BWall) {
			return nil, fmt.Errorf("mesh: vertex %d: bad boundary kind %q", v, f[3])
		}
		m.Coords[v] = c
		m.BKind[v] = BoundaryKind(kind)
		m.Boundary[v] = kind != 0
	}
	line, err = next()
	if err != nil {
		return nil, err
	}
	var nt int
	if _, err := fmt.Sscanf(line, "tets %d", &nt); err != nil || nt < 1 {
		return nil, fmt.Errorf("mesh: bad tets line %q", line)
	}
	m.Tets = make([][4]int32, nt)
	for ti := 0; ti < nt; ti++ {
		line, err := next()
		if err != nil {
			return nil, fmt.Errorf("mesh: tet %d: %w", ti, err)
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("mesh: tet %d: want 4 fields, got %q", ti, line)
		}
		for c := 0; c < 4; c++ {
			x, err := strconv.Atoi(f[c])
			if err != nil || x < 0 || x >= nv {
				return nil, fmt.Errorf("mesh: tet %d: bad vertex %q", ti, f[c])
			}
			m.Tets[ti][c] = int32(x)
		}
	}
	m.buildConnectivity()
	m.RebuildBoundaryNormals()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// RebuildBoundaryNormals estimates the outward unit normal of every
// boundary vertex from the mesh's boundary faces: a face belongs to the
// boundary when its three vertices are all boundary-flagged and it is
// shared by exactly one tetrahedron. Each such face's outward area is
// accumulated to its vertices and normalized.
func (m *Mesh) RebuildBoundaryNormals() {
	if m.BNormal == nil {
		m.BNormal = make([]Vec3, m.NumVertices())
	}
	type face [3]int32
	canon := func(a, b, c int32) face {
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		return face{a, b, c}
	}
	count := map[face]int{}
	for _, t := range m.Tets {
		idx := [4][3]int{{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}}
		for _, f := range idx {
			count[canon(t[f[0]], t[f[1]], t[f[2]])]++
		}
	}
	acc := make([]Vec3, m.NumVertices())
	for _, t := range m.Tets {
		idx := [4][3]int{{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}}
		for fi, f := range idx {
			a, b, c := t[f[0]], t[f[1]], t[f[2]]
			if count[canon(a, b, c)] != 1 {
				continue
			}
			pa, pb, pc := m.Coords[a], m.Coords[b], m.Coords[c]
			nx := (pb.Y-pa.Y)*(pc.Z-pa.Z) - (pb.Z-pa.Z)*(pc.Y-pa.Y)
			ny := (pb.Z-pa.Z)*(pc.X-pa.X) - (pb.X-pa.X)*(pc.Z-pa.Z)
			nz := (pb.X-pa.X)*(pc.Y-pa.Y) - (pb.Y-pa.Y)*(pc.X-pa.X)
			// Orient outward: away from the tet's fourth (opposite)
			// vertex.
			opp := m.Coords[t[fi]]
			dx, dy, dz := pa.X-opp.X, pa.Y-opp.Y, pa.Z-opp.Z
			if nx*dx+ny*dy+nz*dz < 0 {
				nx, ny, nz = -nx, -ny, -nz
			}
			for _, v := range [3]int32{a, b, c} {
				acc[v].X += nx
				acc[v].Y += ny
				acc[v].Z += nz
			}
		}
	}
	for v := range acc {
		l := acc[v].X*acc[v].X + acc[v].Y*acc[v].Y + acc[v].Z*acc[v].Z
		if l > 0 && m.Boundary != nil && m.Boundary[v] {
			inv := 1 / math.Sqrt(l)
			m.BNormal[v] = Vec3{X: acc[v].X * inv, Y: acc[v].Y * inv, Z: acc[v].Z * inv}
		}
	}
}
