// Package mesh generates and manipulates three-dimensional unstructured
// tetrahedral meshes of the kind used by the FUN3D Euler solver: wing-like
// volumes discretized into tetrahedra, with the vertex adjacency graph,
// edge list, and the vertex/edge orderings studied in the paper
// (Reverse Cuthill-McKee vertex ordering, sorted edge ordering, and the
// vector-machine edge coloring that the original FUN3D code used).
package mesh

import (
	"fmt"
	"sort"
)

// Vec3 is a point in three-dimensional space.
type Vec3 struct {
	X, Y, Z float64
}

// Edge is an undirected mesh edge connecting vertices A and B.
// Construction guarantees A < B.
type Edge struct {
	A, B int32
}

// Mesh is an unstructured tetrahedral mesh together with its derived
// connectivity: the unique edge list and the vertex adjacency graph in
// compressed (CSR-like) form.
type Mesh struct {
	// Coords holds the position of each vertex.
	Coords []Vec3
	// Tets holds the four vertex indices of each tetrahedron.
	Tets [][4]int32
	// Edges is the unique undirected edge list, each with A < B.
	Edges []Edge
	// XAdj and Adj store the vertex adjacency graph: the neighbors of
	// vertex v are Adj[XAdj[v]:XAdj[v+1]], sorted ascending.
	XAdj []int32
	Adj  []int32
	// Boundary marks vertices on the domain boundary.
	Boundary []bool
	// BKind classifies boundary vertices for the flow solver; interior
	// vertices are BNone.
	BKind []BoundaryKind
	// BNormal is the outward unit normal at boundary vertices (zero for
	// interior vertices).
	BNormal []Vec3
}

// BoundaryKind classifies a vertex for boundary-condition purposes.
type BoundaryKind uint8

const (
	// BNone marks interior vertices.
	BNone BoundaryKind = iota
	// BInflow marks vertices where the velocity (or full state) is
	// prescribed.
	BInflow
	// BOutflow marks vertices where the pressure is prescribed.
	BOutflow
	// BWall marks impermeable slip-wall vertices.
	BWall
)

// NumVertices returns the number of vertices in the mesh.
func (m *Mesh) NumVertices() int { return len(m.Coords) }

// NumEdges returns the number of unique undirected edges.
func (m *Mesh) NumEdges() int { return len(m.Edges) }

// NumTets returns the number of tetrahedra.
func (m *Mesh) NumTets() int { return len(m.Tets) }

// Degree returns the number of neighbors of vertex v.
func (m *Mesh) Degree(v int) int { return int(m.XAdj[v+1] - m.XAdj[v]) }

// Neighbors returns the (sorted) adjacency list of vertex v.
// The returned slice aliases the mesh's storage and must not be modified.
func (m *Mesh) Neighbors(v int) []int32 { return m.Adj[m.XAdj[v]:m.XAdj[v+1]] }

// MaxDegree returns the largest vertex degree in the mesh.
func (m *Mesh) MaxDegree() int {
	max := 0
	for v := 0; v < m.NumVertices(); v++ {
		if d := m.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the mean vertex degree.
func (m *Mesh) AvgDegree() float64 {
	if m.NumVertices() == 0 {
		return 0
	}
	return float64(2*m.NumEdges()) / float64(m.NumVertices())
}

// Bandwidth returns the graph bandwidth max |u - v| over edges (u, v)
// in the current vertex numbering. The paper's cache-miss model (eq. 2)
// is parameterized by this quantity.
func (m *Mesh) Bandwidth() int {
	bw := 0
	for _, e := range m.Edges {
		if d := int(e.B - e.A); d > bw {
			bw = d
		}
	}
	return bw
}

// buildConnectivity derives Edges, XAdj, and Adj from Tets.
func (m *Mesh) buildConnectivity() {
	nv := len(m.Coords)
	// Collect the six edges of every tetrahedron, dedup via per-vertex
	// neighbor sets built in two passes (count, fill, sort, dedup).
	pairs := make([][2]int32, 0, 6*len(m.Tets))
	for _, t := range m.Tets {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				a, b := t[i], t[j]
				if a > b {
					a, b = b, a
				}
				pairs = append(pairs, [2]int32{a, b})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	m.Edges = m.Edges[:0]
	for i, p := range pairs {
		if i > 0 && p == pairs[i-1] {
			continue
		}
		m.Edges = append(m.Edges, Edge{p[0], p[1]})
	}
	// Adjacency from edges.
	deg := make([]int32, nv)
	for _, e := range m.Edges {
		deg[e.A]++
		deg[e.B]++
	}
	m.XAdj = make([]int32, nv+1)
	for v := 0; v < nv; v++ {
		m.XAdj[v+1] = m.XAdj[v] + deg[v]
	}
	m.Adj = make([]int32, m.XAdj[nv])
	pos := make([]int32, nv)
	copy(pos, m.XAdj[:nv])
	for _, e := range m.Edges {
		m.Adj[pos[e.A]] = e.B
		pos[e.A]++
		m.Adj[pos[e.B]] = e.A
		pos[e.B]++
	}
	for v := 0; v < nv; v++ {
		seg := m.Adj[m.XAdj[v]:m.XAdj[v+1]]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	}
}

// Validate checks structural invariants of the mesh and returns a
// descriptive error when one is violated. It is intended for tests and
// for guarding externally supplied meshes.
func (m *Mesh) Validate() error {
	nv := int32(len(m.Coords))
	for ti, t := range m.Tets {
		seen := map[int32]bool{}
		for _, v := range t {
			if v < 0 || v >= nv {
				return fmt.Errorf("mesh: tet %d references vertex %d outside [0,%d)", ti, v, nv)
			}
			if seen[v] {
				return fmt.Errorf("mesh: tet %d has repeated vertex %d", ti, v)
			}
			seen[v] = true
		}
	}
	for ei, e := range m.Edges {
		if e.A >= e.B {
			return fmt.Errorf("mesh: edge %d has A >= B (%d >= %d)", ei, e.A, e.B)
		}
		if e.B >= nv {
			return fmt.Errorf("mesh: edge %d references vertex %d outside mesh", ei, e.B)
		}
	}
	if len(m.XAdj) != int(nv)+1 {
		return fmt.Errorf("mesh: XAdj has length %d, want %d", len(m.XAdj), nv+1)
	}
	if int(m.XAdj[nv]) != len(m.Adj) {
		return fmt.Errorf("mesh: XAdj[last]=%d does not match len(Adj)=%d", m.XAdj[nv], len(m.Adj))
	}
	if len(m.Adj) != 2*len(m.Edges) {
		return fmt.Errorf("mesh: adjacency size %d is not twice edge count %d", len(m.Adj), len(m.Edges))
	}
	return nil
}
