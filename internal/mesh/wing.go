package mesh

import (
	"fmt"
	"math"
)

// WingSpec describes the synthetic swept-wing volume meshed by
// GenerateWing. The volume is a lattice of Nx×Ny×Nz vertices mapped onto a
// tapered, swept wing-like region (chordwise x, spanwise y, normal z),
// each hexahedral cell split into six tetrahedra. This stands in for the
// NASA ONERA M6 wing meshes of the paper: the performance studies depend
// only on the mesh's graph statistics (average degree ≈ 14, 3D
// surface-to-volume scaling), which the lattice-split-to-tets mesh shares.
type WingSpec struct {
	Nx, Ny, Nz int     // lattice dimensions (vertices per axis)
	Chord      float64 // root chord length
	Span       float64 // wing span
	Thickness  float64 // maximum thickness of the volume
	Taper      float64 // tip chord / root chord, in (0, 1]
	Sweep      float64 // leading-edge sweep as x-offset per unit span
}

// DefaultWingSpec returns a specification with geometry resembling the
// ONERA M6 planform (taper 0.56, 30 degrees sweep).
func DefaultWingSpec(nx, ny, nz int) WingSpec {
	return WingSpec{
		Nx: nx, Ny: ny, Nz: nz,
		Chord:     1.0,
		Span:      1.5,
		Thickness: 0.35,
		Taper:     0.56,
		Sweep:     0.58, // tan(30 degrees)
	}
}

// GenerateWing builds a tetrahedral mesh of the wing volume described by
// spec. The mesh has spec.Nx*spec.Ny*spec.Nz vertices in natural
// (lexicographic i-fastest) order.
func GenerateWing(spec WingSpec) (*Mesh, error) {
	nx, ny, nz := spec.Nx, spec.Ny, spec.Nz
	if nx < 2 || ny < 2 || nz < 2 {
		return nil, fmt.Errorf("mesh: wing lattice must be at least 2 in each dimension, got %dx%dx%d", nx, ny, nz)
	}
	if spec.Taper <= 0 || spec.Taper > 1 {
		return nil, fmt.Errorf("mesh: taper %g outside (0,1]", spec.Taper)
	}
	nv := nx * ny * nz
	m := &Mesh{
		Coords:   make([]Vec3, nv),
		Boundary: make([]bool, nv),
		BKind:    make([]BoundaryKind, nv),
		BNormal:  make([]Vec3, nv),
	}
	idx := func(i, j, k int) int32 { return int32(i + nx*(j+ny*k)) }
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				s := float64(j) / float64(ny-1) // spanwise fraction
				c := spec.Chord * (1 - (1-spec.Taper)*s)
				xi := float64(i) / float64(nx-1)
				zeta := float64(k)/float64(nz-1) - 0.5
				// Thickness envelope: parabolic chordwise profile so the
				// volume looks like a symmetric airfoil extrusion.
				t := spec.Thickness * (0.2 + 0.8*4*xi*(1-xi))
				v := idx(i, j, k)
				m.Coords[v] = Vec3{
					X: spec.Sweep*s*spec.Span + xi*c,
					Y: s * spec.Span,
					Z: zeta * t,
				}
				if i == 0 || i == nx-1 || j == 0 || j == ny-1 || k == 0 || k == nz-1 {
					m.Boundary[v] = true
					// Flow enters through the chordwise minimum face and
					// leaves through the maximum; all other faces are slip
					// walls. Inflow/outflow classification wins at edges
					// and corners so the flow problem is well posed.
					var n Vec3
					switch {
					case i == 0:
						m.BKind[v] = BInflow
						n = Vec3{-1, 0, 0}
					case i == nx-1:
						m.BKind[v] = BOutflow
						n = Vec3{1, 0, 0}
					default:
						m.BKind[v] = BWall
						if j == 0 {
							n.Y = -1
						}
						if j == ny-1 {
							n.Y = 1
						}
						if k == 0 {
							n.Z = -1
						}
						if k == nz-1 {
							n.Z = 1
						}
						// Normalize combined edge/corner normals.
						l := math.Sqrt(n.X*n.X + n.Y*n.Y + n.Z*n.Z)
						if l > 0 {
							n.X /= l
							n.Y /= l
							n.Z /= l
						}
					}
					m.BNormal[v] = n
				}
			}
		}
	}
	// Split every hex cell into six tetrahedra around the main diagonal
	// (v0, v6). This decomposition is conforming across neighboring cells.
	m.Tets = make([][4]int32, 0, 6*(nx-1)*(ny-1)*(nz-1))
	for k := 0; k < nz-1; k++ {
		for j := 0; j < ny-1; j++ {
			for i := 0; i < nx-1; i++ {
				v := [8]int32{
					idx(i, j, k), idx(i+1, j, k), idx(i+1, j+1, k), idx(i, j+1, k),
					idx(i, j, k+1), idx(i+1, j, k+1), idx(i+1, j+1, k+1), idx(i, j+1, k+1),
				}
				m.Tets = append(m.Tets,
					[4]int32{v[0], v[1], v[2], v[6]},
					[4]int32{v[0], v[2], v[3], v[6]},
					[4]int32{v[0], v[3], v[7], v[6]},
					[4]int32{v[0], v[7], v[4], v[6]},
					[4]int32{v[0], v[4], v[5], v[6]},
					[4]int32{v[0], v[5], v[1], v[6]},
				)
			}
		}
	}
	m.buildConnectivity()
	return m, nil
}

// GenerateWingN builds a wing mesh with approximately target vertices,
// choosing lattice dimensions with the roughly 2:1.3:1 aspect used by the
// default spec. The actual vertex count is within a modest factor of the
// request; callers needing the exact figure should use GenerateWing.
func GenerateWingN(target int) (*Mesh, error) {
	if target < 8 {
		return nil, fmt.Errorf("mesh: target vertex count %d too small", target)
	}
	// nx:ny:nz = 2:1.3:1 => nx*ny*nz = 2.6 u^3 with nz = u.
	u := math.Cbrt(float64(target) / 2.6)
	nz := int(math.Round(u))
	if nz < 2 {
		nz = 2
	}
	ny := int(math.Round(1.3 * u))
	if ny < 2 {
		ny = 2
	}
	nx := int(math.Round(2 * u))
	if nx < 2 {
		nx = 2
	}
	return GenerateWing(DefaultWingSpec(nx, ny, nz))
}
