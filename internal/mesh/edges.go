package mesh

import "sort"

// SortEdges returns a copy of the mesh's edges sorted in increasing order
// of the lower endpoint (ties broken by the upper endpoint). This is the
// edge reordering of the paper (section 2.1.3): it converts the edge-based
// flux loop into an effectively vertex-based loop that reuses vertex data
// while it is still cached, and — combined with a bandwidth-reducing
// vertex ordering such as RCM — keeps successive memory references closely
// spaced, slashing TLB misses.
func SortEdges(edges []Edge) []Edge {
	out := make([]Edge, len(edges))
	copy(out, edges)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// ColorEdges orders edges the way the original vector-oriented FUN3D code
// did: edges are greedily colored so that no two edges in the same color
// touch a common vertex (allowing vectorization without gather/scatter
// conflicts), then emitted color by color. Within a color, consecutive
// edges necessarily reference disjoint vertices, which is catastrophic for
// cache-line reuse and TLB locality on hierarchical-memory machines — the
// baseline the paper improves upon.
//
// nv is the number of vertices in the mesh. The returned classSizes gives
// the number of edges in each color class, in emission order.
func ColorEdges(edges []Edge, nv int) (ordered []Edge, classSizes []int) {
	// Greedy coloring: for each edge pick the smallest color not already
	// used by an edge incident to either endpoint.
	colorOf := make([]int, len(edges))
	// lastColorUse[v] is a bitset-ish map from vertex to set of colors in
	// use; degrees are small (≈14) so a slice of small int sets is fine.
	used := make([][]bool, nv)
	maxColor := 0
	for i, e := range edges {
		ua, ub := used[e.A], used[e.B]
		c := 0
		for {
			inA := c < len(ua) && ua[c]
			inB := c < len(ub) && ub[c]
			if !inA && !inB {
				break
			}
			c++
		}
		colorOf[i] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
		for _, v := range []int32{e.A, e.B} {
			for len(used[v]) <= c {
				used[v] = append(used[v], false)
			}
			used[v][c] = true
		}
	}
	// Bucket edges by color, preserving order within each color.
	counts := make([]int, maxColor)
	for _, c := range colorOf {
		counts[c]++
	}
	starts := make([]int, maxColor+1)
	for c := 0; c < maxColor; c++ {
		starts[c+1] = starts[c] + counts[c]
	}
	ordered = make([]Edge, len(edges))
	pos := make([]int, maxColor)
	copy(pos, starts[:maxColor])
	for i, e := range edges {
		c := colorOf[i]
		ordered[pos[c]] = e
		pos[c]++
	}
	return ordered, counts
}

// VerifyColoring checks that within each color class of the coloring that
// produced ordered (classes are contiguous runs given by class sizes),
// no vertex appears twice. Used by tests.
func VerifyColoring(ordered []Edge, classSizes []int, nv int) bool {
	seen := make([]int, nv)
	for i := range seen {
		seen[i] = -1
	}
	base := 0
	for ci, sz := range classSizes {
		for _, e := range ordered[base : base+sz] {
			if seen[e.A] == ci || seen[e.B] == ci {
				return false
			}
			seen[e.A] = ci
			seen[e.B] = ci
		}
		base += sz
	}
	return base == len(ordered)
}

// ScrambleEdges returns a deterministic pseudo-random permutation of the
// edge list. Meshes from real unstructured generators deliver edges in
// effectively arbitrary order; the synthetic wing generator's edges come
// out nearly sorted, so the "original FUN3D" baseline (no edge
// reordering) is modeled as a scrambled list — consecutive memory
// references far apart, exactly the behavior section 2.1.3 describes.
func ScrambleEdges(edges []Edge, seed uint64) []Edge {
	out := make([]Edge, len(edges))
	copy(out, edges)
	state := seed*2862933555777941757 + 3037000493
	for i := len(out) - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// MeanReuseTime measures temporal locality of an edge ordering: for the
// vertex reference stream A0,B0,A1,B1,... it returns the mean number of
// intervening references between successive references to the same
// vertex. Sorted edge orderings revisit each vertex's ~14 incident edges
// back to back (small reuse time, data still cached); colored orderings
// revisit a vertex only once per color class (reuse time on the order of
// edges/colors, data long since evicted) — exactly the effect the paper's
// Figure 3 observes in hardware counters.
func MeanReuseTime(edges []Edge, nv int) float64 {
	last := make([]int64, nv)
	for i := range last {
		last[i] = -1
	}
	var sum float64
	var count int64
	clock := int64(0)
	for _, e := range edges {
		for _, v := range [2]int32{e.A, e.B} {
			if last[v] >= 0 {
				sum += float64(clock - last[v])
				count++
			}
			last[v] = clock
			clock++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// EdgeLocality summarizes the memory-locality quality of an edge ordering:
// the mean absolute index distance between the endpoints of consecutive
// edges. Smaller values mean successive flux-loop iterations touch nearby
// vertex data.
func EdgeLocality(edges []Edge) float64 {
	if len(edges) < 2 {
		return 0
	}
	var sum float64
	for i := 1; i < len(edges); i++ {
		da := int64(edges[i].A) - int64(edges[i-1].A)
		if da < 0 {
			da = -da
		}
		db := int64(edges[i].B) - int64(edges[i-1].B)
		if db < 0 {
			db = -db
		}
		sum += float64(da + db)
	}
	return sum / float64(len(edges)-1)
}
