package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const mpiPath = "petscfun3d/internal/mpi"

// ReqWait keeps the nonblocking exchange protocol honest: every
// mpi.Request returned by ISend/IRecv must reach a Wait. A dropped
// Request leaks its progress goroutine and leaves a message in (or
// owed to) the fabric, which silently misaligns the pair's ordered
// stream — the failure corrupts later payloads instead of crashing, so
// the measured Table 3 numbers go wrong without any visible error.
//
// The pairing mirrors profspan's Begin/End logic:
//
//   - a Request bound to a local variable must be Waited on every path
//     out of the function (a deferred Wait, or a Wait with no escaping
//     return between post and Wait);
//   - a Request stored into a local slice/array/map must be Waited
//     somewhere in the same function, through an index expression or a
//     range over the container;
//   - a Request stored into a struct field (the persistent-plan idiom,
//     e.g. h.recvReq[pi] = ...) must have a Wait on that field
//     somewhere in the package;
//   - a Request returned to the caller is the caller's responsibility;
//   - any other use (dropped expression, blank assign, argument to an
//     untracked call) defeats the analysis and is a finding.
//
// Deliberate fire-and-forget posts carry //lint:wait-ok <reason>.
var ReqWait = &Analyzer{
	Name:      "reqwait",
	Doc:       "every mpi.ISend/IRecv Request reaches a Wait on all paths",
	Invariant: "The message-passing protocol completes: every `ISend`/`IRecv` request reaches a `Wait` on all control-flow paths.",
	Run:       runReqWait,
}

// isPostCall reports whether call posts a nonblocking operation.
func isPostCall(info *types.Info, call *ast.CallExpr) bool {
	return isMethodOn(info, call, mpiPath, "Comm", "ISend") ||
		isMethodOn(info, call, mpiPath, "Comm", "IRecv")
}

// isWaitCall reports whether call is mpi.(*Request).Wait.
func isWaitCall(info *types.Info, call *ast.CallExpr) bool {
	return isMethodOn(info, call, mpiPath, "Request", "Wait")
}

// lvalueBase unwraps index, slice, and star expressions down to the
// identifier or selector that names the storage, returning its object
// (a local/package variable or a struct field) and whether the base is
// a struct field.
func lvalueBase(info *types.Info, e ast.Expr) (types.Object, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			return obj, false
		case *ast.SelectorExpr:
			obj := info.Uses[x.Sel]
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				return obj, true
			}
			return obj, false
		default:
			return nil, false
		}
	}
}

func runReqWait(pass *Pass) {
	if pass.Pkg.Path == mpiPath {
		return // the fabric itself constructs and completes Requests
	}
	info := pass.Pkg.Info

	// Package-level pairing for persistent-plan stores: field → first
	// store position, and the set of fields Waited anywhere.
	type fieldStore struct {
		obj types.Object
		pos token.Pos
	}
	var stores []fieldStore
	waitedFields := map[types.Object]bool{}

	for _, f := range pass.Pkg.Files {
		eachFuncBody(f, func(body *ast.BlockStmt) {
			handled := map[*ast.CallExpr]bool{}

			// Classify every post by the statement shape around it.
			shallowInspect(body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
						return true
					}
					call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
					if !ok {
						return true
					}
					// reqs = append(reqs, c.ISend(...)): container
					// binding through the append builtin.
					if isBuiltinCall(info, call, "append") {
						for _, arg := range call.Args {
							pc, ok := ast.Unparen(arg).(*ast.CallExpr)
							if !ok || !isPostCall(info, pc) {
								continue
							}
							handled[pc] = true
							if obj, isField := lvalueBase(info, n.Lhs[0]); obj != nil && !isField {
								checkContainerWait(pass, body, obj, pc.Pos())
							} else {
								pass.ReportSuppressiblef(pc.Pos(), "wait-ok",
									"mpi request appended to an untrackable container; use a local slice so Wait pairing can be checked")
							}
						}
						return true
					}
					if !isPostCall(info, call) {
						return true
					}
					handled[call] = true
					switch lhs := ast.Unparen(n.Lhs[0]).(type) {
					case *ast.Ident:
						if lhs.Name == "_" {
							pass.ReportSuppressiblef(call.Pos(), "wait-ok",
								"mpi request discarded to blank; a dropped Request leaks its progress goroutine and a message")
							return true
						}
						obj := info.Defs[lhs]
						if obj == nil {
							obj = info.Uses[lhs]
						}
						if obj != nil {
							checkLocalWait(pass, body, obj, call.Pos())
						}
					default:
						obj, isField := lvalueBase(info, n.Lhs[0])
						if obj == nil {
							pass.ReportSuppressiblef(call.Pos(), "wait-ok",
								"mpi request stored through an untrackable expression; bind it to a variable or plan field so Wait pairing can be checked")
							return true
						}
						if isField {
							stores = append(stores, fieldStore{obj: obj, pos: call.Pos()})
						} else {
							checkContainerWait(pass, body, obj, call.Pos())
						}
					}
				case *ast.SelectorExpr:
					// c.ISend(...).Wait() — immediately completed.
					if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isPostCall(info, call) && n.Sel.Name == "Wait" {
						handled[call] = true
					}
				case *ast.ReturnStmt:
					// Returning the request hands the obligation to the
					// caller, which is analyzed where it binds the result.
					for _, res := range n.Results {
						if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isPostCall(info, call) {
							handled[call] = true
						}
					}
				}
				return true
			})

			// Record Waits on struct fields and flag the leftovers.
			shallowInspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isWaitCall(info, call) {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						if obj, isField := lvalueBase(info, sel.X); isField {
							waitedFields[obj] = true
						}
					}
					return true
				}
				if isPostCall(info, call) && !handled[call] {
					pass.ReportSuppressiblef(call.Pos(),
						"wait-ok", "mpi request result dropped or passed through an untracked expression; bind it so Wait pairing can be checked")
				}
				return true
			})
		})
	}

	for _, st := range stores {
		if !waitedFields[st.obj] {
			pass.ReportSuppressiblef(st.pos, "wait-ok",
				"mpi request stored in field %s is never Waited anywhere in the package; the plan leaks one request per exchange", st.obj.Name())
		}
	}
}

// waitReceiverMatches reports whether call is a Wait whose receiver
// resolves (through indexing) to one of the objects in objs.
func waitReceiverMatches(info *types.Info, call *ast.CallExpr, objs map[types.Object]bool) bool {
	if !isWaitCall(info, call) {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, _ := lvalueBase(info, sel.X)
	return obj != nil && objs[obj]
}

// checkLocalWait verifies the request bound to obj at postPos reaches a
// Wait on all paths out of body, mirroring profspan's span-closure
// logic: a deferred Wait always closes; otherwise any return between
// the post and the final Wait escapes with the request outstanding,
// unless the statement directly before the return performs the Wait.
func checkLocalWait(pass *Pass, body *ast.BlockStmt, obj types.Object, postPos token.Pos) {
	info := pass.Pkg.Info
	objs := map[types.Object]bool{obj: true}

	var deferred, found bool
	var lastWait token.Pos
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		if n == nil {
			return
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			walk(d.Call, true)
			return
		}
		if call, ok := n.(*ast.CallExpr); ok && waitReceiverMatches(info, call, objs) {
			found = true
			if inDefer {
				deferred = true
			}
			if call.End() > lastWait {
				lastWait = call.End()
			}
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n || m == nil {
				return m == n
			}
			walk(m, inDefer)
			return false
		})
	}
	walk(body, false)

	if !found {
		if returnsObj(info, body, objs) {
			return // handed to the caller, whose binding is analyzed there
		}
		pass.ReportSuppressiblef(postPos, "wait-ok",
			"mpi request is never Waited; the progress goroutine and its message leak")
		return
	}
	if deferred {
		return
	}
	shallowInspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= postPos || ret.Pos() >= lastWait {
			return true
		}
		if returnPrecededByWait(body, ret, info, objs) || returnReturnsObj(info, ret, objs) {
			return true
		}
		pass.ReportSuppressiblef(ret.Pos(), "wait-ok",
			"return may leave the mpi request posted at line %d un-Waited; Wait before returning or use defer",
			pass.Fset.Position(postPos).Line)
		return true
	})
}

// returnsObj reports whether any return statement in body hands one of
// objs to the caller.
func returnsObj(info *types.Info, body *ast.BlockStmt, objs map[types.Object]bool) bool {
	found := false
	shallowInspect(body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok && returnReturnsObj(info, ret, objs) {
			found = true
		}
		return !found
	})
	return found
}

// returnReturnsObj reports whether ret returns one of objs directly.
func returnReturnsObj(info *types.Info, ret *ast.ReturnStmt, objs map[types.Object]bool) bool {
	for _, res := range ret.Results {
		if id, ok := ast.Unparen(res).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				return true
			}
		}
	}
	return false
}

// returnPrecededByWait reports whether the statement immediately before
// ret in its enclosing statement list contains a Wait on one of objs.
func returnPrecededByWait(body *ast.BlockStmt, ret *ast.ReturnStmt, info *types.Info, objs map[types.Object]bool) bool {
	ok := false
	shallowInspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, st := range list {
			if st != ast.Stmt(ret) || i == 0 {
				continue
			}
			ast.Inspect(list[i-1], func(m ast.Node) bool {
				if call, isCall := m.(*ast.CallExpr); isCall && waitReceiverMatches(info, call, objs) {
					ok = true
				}
				return !ok
			})
		}
		return true
	})
	return ok
}

// checkContainerWait verifies a request stored into the local container
// obj (slice, array, or map) is Waited somewhere in body — either
// through an index expression over the container or through the value
// variable of a range over it. Containers get no path-sensitivity: one
// reachable Wait per container is the contract (the drain loop idiom).
func checkContainerWait(pass *Pass, body *ast.BlockStmt, obj types.Object, postPos token.Pos) {
	info := pass.Pkg.Info
	objs := map[types.Object]bool{obj: true}
	// Alias the value variables of ranges over the container:
	// for _, r := range reqs { r.Wait() }.
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		base, _ := lvalueBase(info, rng.X)
		if base == nil || !objs[base] {
			return true
		}
		if id, ok := rng.Value.(*ast.Ident); ok && id.Name != "_" {
			if vobj := info.Defs[id]; vobj != nil {
				objs[vobj] = true
			}
		}
		return true
	})
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && waitReceiverMatches(info, call, objs) {
			found = true
		}
		return !found
	})
	if !found {
		pass.ReportSuppressiblef(postPos, "wait-ok",
			"mpi request stored in %s is never Waited in this function; drain the container before returning", obj.Name())
	}
}
