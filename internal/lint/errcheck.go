package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck is the dropped-error and panic discipline: a call whose
// error result is discarded in an expression statement hides I/O and
// solver failures (the class of bug that silently truncates a mesh file
// or a profile report), and panic in library code takes down the whole
// solver where an error would let the driver report and continue.
// Panics asserting internal invariants or documented API misuse may
// carry a //lint:panic-ok <reason> pragma; command mains are exempt.
// Explicitly assigning to blank (`_ = f()`) is an acknowledged discard
// and is not flagged, nor are writes to error-free writers
// (strings.Builder, bytes.Buffer) whose Write methods are documented
// never to fail.
var ErrCheck = &Analyzer{
	Name:      "errcheck",
	Doc:       "no silently dropped error returns; no panic in library code",
	Invariant: "Measurements cannot be silently truncated: no dropped error returns, no `panic` in library code.",
	Run:       runErrCheck,
}

// droppedErrorExempt lists callees whose error results are universally
// ignored by convention (stdout prints from CLIs and examples).
var droppedErrorExempt = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

func runErrCheck(pass *Pass) {
	info := pass.Pkg.Info
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(n.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if returnsError(info, call, errType) && !exemptCallee(info, call) {
					pass.Reportf(n.Pos(), "error return silently dropped; handle it or assign to _ explicitly")
				}
			case *ast.CallExpr:
				if isBuiltinCall(info, n, "panic") && !pass.PanicExempt() {
					pass.ReportSuppressiblef(n.Pos(), "panic-ok",
						"panic in library code; return an error, or mark an invariant with //lint:panic-ok <reason>")
				}
			}
			return true
		})
	}
}

// returnsError reports whether call's result tuple contains an error.
func returnsError(info *types.Info, call *ast.CallExpr, errType types.Type) bool {
	tv, ok := info.Types[ast.Expr(call.Fun)]
	if !ok || tv.IsType() {
		return false // type conversion
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false // builtin
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			return true
		}
	}
	return false
}

func exemptCallee(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	qual := fn.Pkg().Path() + "." + fn.Name()
	if droppedErrorExempt[qual] {
		return true
	}
	// Methods on error-free writers (sb.WriteString and friends).
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && errFreeWriter(sig.Recv().Type()) {
		return true
	}
	// fmt.Fprint* into an error-free writer only fails if the writer
	// fails, which these writers cannot.
	switch qual {
	case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
		if len(call.Args) > 0 {
			if tv, ok := info.Types[call.Args[0]]; ok && errFreeWriter(tv.Type) {
				return true
			}
		}
	}
	return false
}

// errFreeWriter reports whether t is strings.Builder or bytes.Buffer
// (possibly behind a pointer): writers whose Write methods are
// documented never to return a non-nil error.
func errFreeWriter(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamedType(t, "strings", "Builder") || isNamedType(t, "bytes", "Buffer")
}
