package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// OwnWrite enforces the owner-computes discipline the pool runtime's
// determinism argument rests on (the paper's hybrid Table 5 mode, and
// the shared-write aliasing bugs Lange et al. document for hybrid
// MPI/OpenMP kernels): inside a pool task, every store to shared
// storage must land inside the shard's owned index domain. Concretely,
// in a RunShard body:
//
//   - an element write, copy, or pointer store whose target aliases
//     shared storage (task fields, package variables) is legal only
//     when some part of the lvalue derives from the worker index — a
//     stripe bound, a shard-derived subslice, a row from the shard's
//     row set — or when the write is pinned to one worker by an
//     equality guard (if w == 0 { ... });
//   - writes to shared scalars (task fields) race across shards unless
//     worker-pinned;
//   - shared maps may not be mutated at all (Go maps tolerate no
//     concurrent writers, owned keys or not);
//   - append to a shared slice reallocates shared storage mid-sweep;
//   - passing a shared slice/map/pointer to a callee without any
//     shard-derived argument hands the callee no owned range to stay
//     inside, so the analysis must assume it writes out of stripe.
//
// Deliberate exceptions (a helper that only reads its shared argument,
// storage that is per-worker by construction) carry
// //lint:own-ok <reason>.
var OwnWrite = &Analyzer{
	Name:      "ownwrite",
	Doc:       "pool-task writes to shared storage stay inside the shard's owned index domain",
	Invariant: "Threading is owner-computes (Table 5): every pool-task store to shared storage is indexed through the shard's owned range, so worker count moves work, never values.",
	Run:       runOwnWrite,
}

func runOwnWrite(pass *Pass) {
	info := pass.Pkg.Info
	for _, sc := range collectShards(pass) {
		checkShardWrites(pass, info, sc)
	}
}

func checkShardWrites(pass *Pass, info *types.Info, sc *shardCtx) {
	// isSharedRef reports whether e is a reference-typed expression
	// rooted at shared storage.
	isSharedRef := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok || !isRefType(tv.Type) {
			return false
		}
		return sc.sharedRoot(rootIdentObj(info, e))
	}

	reportWrite := func(lhs ast.Expr, pos token.Pos) {
		root := rootIdentObj(info, lhs)
		if !sc.sharedRoot(root) || sc.ownedAt(info, lhs, pos) {
			return
		}
		switch t := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			if tv, ok := info.Types[t.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return // map mutation reported separately, owned or not
				}
			}
			pass.ReportSuppressiblef(pos, "own-ok",
				"write to shared %s outside the shard's owned index domain; index through the stripe bounds or the shard's row set", root.Name())
		case *ast.SelectorExpr:
			pass.ReportSuppressiblef(pos, "own-ok",
				"write to shared field %s.%s races across shards; pin it to one worker (if w == 0) or move it to the caller", root.Name(), t.Sel.Name)
		default:
			pass.ReportSuppressiblef(pos, "own-ok",
				"write through shared %s outside the shard's owned index domain", root.Name())
		}
	}

	// reportMapWrite flags shared-map mutation regardless of ownership:
	// Go maps tolerate no concurrent writers.
	reportMapWrite := func(lhs ast.Expr, pos token.Pos) bool {
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			return false
		}
		tv, ok := info.Types[idx.X]
		if !ok {
			return false
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return false
		}
		if root := rootIdentObj(info, idx.X); sc.sharedRoot(root) {
			pass.ReportSuppressiblef(pos, "own-ok",
				"mutation of shared map %s inside a pool task; maps tolerate no concurrent writers — precompute on the caller or use per-shard storage", root.Name())
			return true
		}
		return false
	}

	ast.Inspect(sc.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				// An append whose base is shared reallocates storage other
				// shards hold, whatever slot the result lands in.
				if len(n.Lhs) == len(n.Rhs) {
					if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok && isBuiltinCall(info, call, "append") && len(call.Args) > 0 {
						if root := rootIdentObj(info, call.Args[0]); sc.sharedRoot(root) {
							pass.ReportSuppressiblef(n.Pos(), "own-ok",
								"append to shared slice %s inside a pool task reallocates storage other shards hold; size on the caller before Run", root.Name())
							continue
						}
					}
				}
				if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					continue // a plain rebinding writes the local slot, not shared storage
				}
				if reportMapWrite(lhs, n.Pos()) {
					continue
				}
				reportWrite(lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			if !reportMapWrite(n.X, n.Pos()) {
				reportWrite(n.X, n.Pos())
			}
		case *ast.CallExpr:
			switch {
			case isBuiltinCall(info, n, "copy"):
				if len(n.Args) == 2 {
					dst := n.Args[0]
					if root := rootIdentObj(info, dst); sc.sharedRoot(root) && !sc.ownedAt(info, dst, n.Pos()) {
						pass.ReportSuppressiblef(n.Pos(), "own-ok",
							"copy into shared %s outside the shard's owned index domain; copy into a shard-derived subslice", root.Name())
					}
				}
			case isBuiltinCall(info, n, "delete"):
				if len(n.Args) == 2 {
					if root := rootIdentObj(info, n.Args[0]); sc.sharedRoot(root) {
						pass.ReportSuppressiblef(n.Pos(), "own-ok",
							"delete from shared map %s inside a pool task; maps tolerate no concurrent writers", root.Name())
					}
				}
			case isBuiltinCall(info, n, "append"), isBuiltinCall(info, n, "len"),
				isBuiltinCall(info, n, "cap"), isBuiltinCall(info, n, "make"), isBuiltinCall(info, n, "new"):
				// handled above or harmless
			default:
				checkCallBoundary(pass, info, sc, n, isSharedRef)
			}
		}
		return true
	})
}

// checkCallBoundary applies the owned-range rule at call sites: a
// callee that receives shared mutable storage must also receive at
// least one shard-derived value (a stripe bound, an owned subslice, a
// row index) — otherwise it has no owned range to confine its writes
// and the analysis assumes the worst. Builtins and conversions are
// handled by the caller.
func checkCallBoundary(pass *Pass, info *types.Info, sc *shardCtx, call *ast.CallExpr, isSharedRef func(ast.Expr) bool) {
	switch calleeObject(info, call).(type) {
	case *types.TypeName, *types.Builtin, nil:
		return // conversion, builtin, or indirect call through an expression
	}
	if sc.guarded(call.Pos()) {
		return
	}
	exprs := append([]ast.Expr(nil), call.Args...)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		exprs = append(exprs, sel.X)
	}
	for _, e := range exprs {
		if mentionsAny(info, e, sc.owned) {
			return
		}
	}
	for _, arg := range call.Args {
		if isSharedRef(arg) {
			root := rootIdentObj(info, arg)
			pass.ReportSuppressiblef(call.Pos(), "own-ok",
				"shared %s passed to a callee with no shard-derived argument; the callee has no owned range to confine its writes", root.Name())
			return
		}
	}
}
