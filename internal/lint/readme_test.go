package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readmeAnalyzerRows extracts the analyzer→invariant table from the
// repository README: the rows following the "| Analyzer | Paper
// invariant |" header, as (name, invariant) pairs.
func readmeAnalyzerRows(t *testing.T) [][2]string {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	for i, ln := range lines {
		if strings.TrimSpace(ln) != "| Analyzer | Paper invariant |" {
			continue
		}
		var rows [][2]string
		for _, row := range lines[i+2:] { // skip the |---|---| separator
			row = strings.TrimSpace(row)
			if !strings.HasPrefix(row, "|") {
				break
			}
			parts := strings.Split(row, "|")
			if len(parts) != 4 {
				t.Fatalf("malformed analyzer table row %q", row)
			}
			name := strings.Trim(strings.TrimSpace(parts[1]), "`")
			rows = append(rows, [2]string{name, strings.TrimSpace(parts[2])})
		}
		return rows
	}
	t.Fatal("README.md has no analyzer table header")
	return nil
}

// TestREADMEAnalyzerTable pins the README's analyzer table to the
// registry: same analyzers, same reporting order, and cell text equal
// to the Invariant strings `fun3dlint -list` prints — one source of
// truth, asserted instead of drifting.
func TestREADMEAnalyzerTable(t *testing.T) {
	rows := readmeAnalyzerRows(t)
	reg := Analyzers()
	if len(rows) != len(reg) {
		t.Fatalf("README table has %d analyzers, registry has %d", len(rows), len(reg))
	}
	for i, a := range reg {
		if rows[i][0] != a.Name {
			t.Errorf("README row %d is %q, registry order says %q", i, rows[i][0], a.Name)
			continue
		}
		if rows[i][1] != a.Invariant {
			t.Errorf("README invariant for %s drifted from the registry:\n  README:   %s\n  registry: %s",
				a.Name, rows[i][1], a.Invariant)
		}
	}
}
