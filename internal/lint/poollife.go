package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"petscfun3d/internal/par"
)

// PoolLife enforces the pool runtime's lifecycle and scheduling
// discipline statically, mirroring the named panics the runtime raises
// dynamically (par.PanicRunClosed, par.PanicNestedRun) so the static
// and dynamic checks agree on the failure:
//
//   - no pool use after Close on any fall-through path: Run, SetPool,
//     and the reduction primitives (par.Dot/Norm2/Axpy) on a closed
//     pool panic at runtime; the analyzer tracks Close per function
//     with branch-sensitive dataflow (a Close inside an early-return
//     error branch does not poison the main path);
//   - no barrier re-entry from inside a task: Run, Close, or a
//     reduction primitive called in a RunShard body targets a pool
//     whose workers are parked in the outer barrier — deadlock, made
//     loud by the runtime's named panic;
//   - no scheduling primitives inside a task: goroutine spawns,
//     channel operations, select, and blocking MPI (Comm sends,
//     receives, reductions, barriers; Request.Wait; Halo exchanges)
//     stall every worker at the barrier — communication belongs to the
//     caller, between Runs;
//   - no iteration state left in a reused task: assigning a loop's
//     iteration variables into a task struct that is only Run after
//     the loop means every iteration but the last is silently dropped.
//
// Deliberate exceptions carry //lint:pool-ok <reason>.
var PoolLife = &Analyzer{
	Name:      "poollife",
	Doc:       "pool lifecycle and scheduling discipline: no use after Close, no barrier re-entry, no blocking inside tasks",
	Invariant: "Pool scheduling is structured: tasks never re-enter the barrier, block, or spawn; pools are never used after Close; reused tasks never carry stale iteration state.",
	Run:       runPoolLife,
}

func runPoolLife(pass *Pass) {
	info := pass.Pkg.Info
	for _, sc := range collectShards(pass) {
		checkShardScheduling(pass, info, sc)
	}
	for _, f := range pass.Pkg.Files {
		eachFuncBody(f, func(body *ast.BlockStmt) {
			lw := &lifeWalker{pass: pass, info: info}
			lw.walkStmts(body.List, map[types.Object]token.Pos{})
			checkLoopCapture(pass, info, body)
		})
	}
}

// poolFuncs are the package-level par primitives that re-enter Run on
// their pool argument.
var poolFuncs = map[string]bool{"Dot": true, "Norm2": true, "Axpy": true}

// isParFunc reports whether call invokes the named package-level
// function of internal/par.
func isParFunc(info *types.Info, call *ast.CallExpr, names map[string]bool) (string, bool) {
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != parPath || !names[fn.Name()] {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	return fn.Name(), true
}

// blockingMPICall names the blocking communication primitive call
// invokes, or "" if it is not one.
func blockingMPICall(info *types.Info, call *ast.CallExpr) string {
	for _, m := range []string{"Send", "Recv", "AllReduceSum", "AllReduceMax", "Barrier", "AllGather"} {
		if isMethodOn(info, call, mpiPath, "Comm", m) {
			return "Comm." + m
		}
	}
	if isMethodOn(info, call, mpiPath, "Request", "Wait") {
		return "Request.Wait"
	}
	for _, m := range []string{"Exchange", "Start", "Finish"} {
		if isMethodOn(info, call, distPath, "Halo", m) {
			return "Halo." + m
		}
	}
	return ""
}

// checkShardScheduling flags scheduling primitives inside a RunShard
// body: anything that blocks, spawns, or re-enters the barrier.
func checkShardScheduling(pass *Pass, info *types.Info, sc *shardCtx) {
	ast.Inspect(sc.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.ReportSuppressiblef(n.Pos(), "pool-ok",
				"goroutine spawned inside a pool task; shard work runs on the pool's own workers — spawn from the caller, between Runs")
			return false
		case *ast.SendStmt:
			pass.ReportSuppressiblef(n.Pos(), "pool-ok",
				"channel send inside a pool task can block the shard and stall every worker at the barrier")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.ReportSuppressiblef(n.Pos(), "pool-ok",
					"channel receive inside a pool task can block the shard and stall every worker at the barrier")
			}
		case *ast.SelectStmt:
			pass.ReportSuppressiblef(n.Pos(), "pool-ok",
				"select inside a pool task can block the shard and stall every worker at the barrier")
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pass.ReportSuppressiblef(n.Pos(), "pool-ok",
						"range over a channel inside a pool task can block the shard and stall every worker at the barrier")
				}
			}
		case *ast.CallExpr:
			switch {
			case isBuiltinCall(info, n, "close"):
				pass.ReportSuppressiblef(n.Pos(), "pool-ok",
					"channel close inside a pool task; channel lifecycle belongs to the caller, between Runs")
			case isMethodOn(info, n, parPath, "Pool", "Run"):
				pass.ReportSuppressiblef(n.Pos(), "pool-ok",
					"nested Run from inside a pool task: the workers are parked in the outer barrier, so the inner one deadlocks; the runtime panics with %q", par.PanicNestedRun)
			case isMethodOn(info, n, parPath, "Pool", "Close"):
				pass.ReportSuppressiblef(n.Pos(), "pool-ok",
					"Close from inside a pool task; the runtime panics with %q — close from the caller after the barrier", par.PanicCloseDuringRun)
			default:
				if name, ok := isParFunc(info, n, poolFuncs); ok {
					pass.ReportSuppressiblef(n.Pos(), "pool-ok",
						"par.%s re-enters Run on its pool from inside a task and deadlocks the barrier (the runtime panics with %q); reduce from the caller, between Runs", name, par.PanicNestedRun)
				} else if m := blockingMPICall(info, n); m != "" {
					pass.ReportSuppressiblef(n.Pos(), "pool-ok",
						"blocking %s inside a pool task stalls every worker at the barrier; communicate from the caller, between Runs", m)
				}
			}
		}
		return true
	})
}

// lifeWalker is the per-function use-after-Close dataflow: a
// branch-sensitive walk over the statement structure tracking which
// pool objects a non-deferred Close has retired on the current path.
// Function literals are analyzed independently (eachFuncBody), so the
// walker never descends into them.
type lifeWalker struct {
	pass *Pass
	info *types.Info
}

// poolUse returns the pool expression a call operates on (Run/Close
// receiver, reduction-primitive or SetPool first argument), or nil.
func (lw *lifeWalker) poolUse(call *ast.CallExpr) ast.Expr {
	switch {
	case isMethodOn(lw.info, call, parPath, "Pool", "Run"):
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
	case isMethodOn(lw.info, call, distPath, "Matrix", "SetPool"):
		if len(call.Args) == 1 {
			return call.Args[0]
		}
	default:
		if _, ok := isParFunc(lw.info, call, poolFuncs); ok && len(call.Args) > 0 {
			return call.Args[0]
		}
	}
	return nil
}

// checkUses reports pool uses under n whose root object is retired.
func (lw *lifeWalker) checkUses(n ast.Node, closed map[types.Object]token.Pos) {
	if n == nil || len(closed) == 0 {
		return
	}
	shallowInspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if e := lw.poolUse(call); e != nil {
			if obj := rootIdentObj(lw.info, e); obj != nil {
				if _, dead := closed[obj]; dead {
					lw.pass.ReportSuppressiblef(call.Pos(), "pool-ok",
						"pool %s used after Close on this path; the runtime panics with %q — move the Close after the last use (or defer it)", obj.Name(), par.PanicRunClosed)
				}
			}
		}
		return true
	})
}

// closeTarget returns the object whose pool a non-deferred
// Pool.Close expression statement retires, or nil.
func (lw *lifeWalker) closeTarget(s ast.Stmt) types.Object {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok || !isMethodOn(lw.info, call, parPath, "Pool", "Close") {
		return nil
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return rootIdentObj(lw.info, sel.X)
	}
	return nil
}

// terminatesPath reports whether s unconditionally leaves the current
// path (return, break/continue/goto, or a panic call).
func terminatesPath(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func copyClosed(m map[types.Object]token.Pos) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// walkStmts walks one statement list, mutating closed in place.
// Returns true if the list unconditionally leaves the enclosing path.
func (lw *lifeWalker) walkStmts(stmts []ast.Stmt, closed map[types.Object]token.Pos) bool {
	for _, s := range stmts {
		if lw.walkStmt(s, closed) {
			return true
		}
	}
	return false
}

func (lw *lifeWalker) walkStmt(s ast.Stmt, closed map[types.Object]token.Pos) bool {
	switch s := s.(type) {
	case *ast.DeferStmt:
		// Deferred Close runs at function exit, after every use.
		return false
	case *ast.AssignStmt:
		lw.checkUses(s, closed)
		// Rebinding a pool variable revives it (a fresh New, a nil).
		for _, lhs := range s.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := lw.info.Defs[id]; obj != nil {
					delete(closed, obj)
				} else if obj := lw.info.Uses[id]; obj != nil {
					delete(closed, obj)
				}
			}
		}
		return false
	case *ast.DeclStmt:
		lw.checkUses(s, closed)
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						if obj := lw.info.Defs[id]; obj != nil {
							delete(closed, obj)
						}
					}
				}
			}
		}
		return false
	case *ast.ExprStmt:
		lw.checkUses(s, closed)
		if obj := lw.closeTarget(s); obj != nil {
			closed[obj] = s.Pos()
		}
		return terminatesPath(s)
	case *ast.BlockStmt:
		return lw.walkStmts(s.List, closed)
	case *ast.IfStmt:
		if s.Init != nil {
			lw.walkStmt(s.Init, closed)
		}
		lw.checkUses(s.Cond, closed)
		thenClosed := copyClosed(closed)
		thenTerm := lw.walkStmts(s.Body.List, thenClosed)
		elseClosed := copyClosed(closed)
		elseTerm := false
		if s.Else != nil {
			elseTerm = lw.walkStmt(s.Else, elseClosed)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replaceClosed(closed, elseClosed)
		case elseTerm:
			replaceClosed(closed, thenClosed)
		default:
			// Union: a pool closed on either fall-through arm may be
			// closed afterwards.
			replaceClosed(closed, thenClosed)
			for k, v := range elseClosed {
				if _, ok := closed[k]; !ok {
					closed[k] = v
				}
			}
		}
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			lw.walkStmt(s.Init, closed)
		}
		lw.checkUses(s.Cond, closed)
		lw.walkStmts(s.Body.List, closed)
		if s.Post != nil {
			lw.walkStmt(s.Post, closed)
		}
		return false
	case *ast.RangeStmt:
		lw.checkUses(s.X, closed)
		lw.walkStmts(s.Body.List, closed)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				lw.walkStmt(sw.Init, closed)
			}
			lw.checkUses(sw.Tag, closed)
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		for _, c := range clauses {
			armClosed := copyClosed(closed)
			var armTerm bool
			switch cc := c.(type) {
			case *ast.CaseClause:
				armTerm = lw.walkStmts(cc.Body, armClosed)
			case *ast.CommClause:
				armTerm = lw.walkStmts(cc.Body, armClosed)
			}
			if !armTerm {
				for k, v := range armClosed {
					if _, ok := closed[k]; !ok {
						closed[k] = v
					}
				}
			}
		}
		return false
	case *ast.LabeledStmt:
		return lw.walkStmt(s.Stmt, closed)
	default:
		lw.checkUses(s, closed)
		return terminatesPath(s)
	}
}

func replaceClosed(dst, src map[types.Object]token.Pos) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// checkLoopCapture flags iteration state stranded in a reused task: a
// loop assigns its iteration variables into a task struct's field, the
// loop body never hands the task to anything, and the task is only Run
// after the loop — so every iteration but the last is silently dropped.
func checkLoopCapture(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	// Pool.Run call sites in this body, by task-argument root object.
	type runSite struct {
		pos token.Pos
		obj types.Object
	}
	var runs []runSite
	shallowInspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isMethodOn(info, call, parPath, "Pool", "Run") && len(call.Args) == 1 {
			if obj := rootIdentObj(info, call.Args[0]); obj != nil {
				runs = append(runs, runSite{call.Pos(), obj})
			}
		}
		return true
	})
	if len(runs) == 0 {
		return
	}
	shallowInspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		var loopEnd token.Pos
		iter := map[types.Object]bool{}
		switch l := n.(type) {
		case *ast.RangeStmt:
			loopBody, loopEnd = l.Body, l.End()
			for _, e := range []ast.Expr{l.Key, l.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						iter[obj] = true
					}
				}
			}
		case *ast.ForStmt:
			loopBody, loopEnd = l.Body, l.End()
			if a, ok := l.Init.(*ast.AssignStmt); ok {
				for _, lhs := range a.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							iter[obj] = true
						}
					}
				}
			}
		default:
			return true
		}
		if len(iter) == 0 {
			return true
		}
		shallowInspect(loopBody, func(m ast.Node) bool {
			a, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range a.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || i >= len(a.Rhs) || !mentionsAny(info, a.Rhs[i], iter) {
					continue
				}
				tObj := rootIdentObj(info, sel.X)
				if tObj == nil {
					continue
				}
				// Consumed inside the loop (any call handed the task after
				// the assignment) → the iteration state is used per-pass.
				consumed := false
				tSet := map[types.Object]bool{tObj: true}
				shallowInspect(loopBody, func(c ast.Node) bool {
					if call, ok := c.(*ast.CallExpr); ok && call.Pos() > a.Pos() {
						for _, arg := range call.Args {
							if mentionsAny(info, arg, tSet) {
								consumed = true
							}
						}
						if cs, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && mentionsAny(info, cs.X, tSet) {
							consumed = true
						}
					}
					return !consumed
				})
				if consumed {
					continue
				}
				for _, r := range runs {
					if r.obj == tObj && r.pos >= loopEnd {
						pass.ReportSuppressiblef(r.pos, "pool-ok",
							"task %s runs after the loop that assigned %s.%s from iteration state; only the last iteration's value is seen — Run inside the loop or hoist the assignment", tObj.Name(), tObj.Name(), sel.Sel.Name)
						return false
					}
				}
			}
			return true
		})
		return true
	})
}
