package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// TagConst keeps the message-tag namespace centralized: every tag
// handed to Send/ISend/Recv/IRecv must trace back to the exported
// registry constants in internal/mpi (mpi.Tag consts: TagPlan,
// TagHalo, ...). Ad-hoc literals, arithmetic, and runtime conversions
// are how two subsystems end up claiming the same tag value — on this
// fabric a mismatch does not error cleanly, it poisons the pair's
// ordered stream and corrupts every later payload (see mpi.Recv).
//
// Rules, per analyzed package:
//
//   - a tag argument must be a registry constant or a Tag-typed
//     variable/field/parameter (plumbing, assumed filled from the
//     registry where it was bound);
//   - declaring new mpi.Tag constants outside internal/mpi is a
//     finding — the registry is the single namespace authority;
//   - a registry constant used directly by sends but never by receives
//     in the package (or vice versa) is a finding: asymmetric use means
//     the matching side lives somewhere this package cannot see, which
//     is exactly how protocol drift starts. Passing the constant to a
//     plan constructor (newHalo-style plumbing) counts as a symmetric
//     use, since the plan owns both directions.
//
// Deliberate exceptions carry //lint:tag-ok <reason>.
var TagConst = &Analyzer{
	Name:      "tagconst",
	Doc:       "message tags come from the mpi tag registry and are used symmetrically",
	Invariant: "Message matching is by design, not accident: tags come from the `internal/mpi/tags.go` registry and each is used by both send and receive sites.",
	Run:       runTagConst,
}

// isTagType reports whether t is (or points to) mpi.Tag.
func isTagType(t types.Type) bool {
	return t != nil && isNamedType(t, mpiPath, "Tag")
}

// registryConst returns the mpi.Tag constant the expression names, if
// it is a direct reference to one declared in the registry package.
func registryConst(info *types.Info, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || !isTagType(c.Type()) {
		return nil
	}
	if c.Pkg() == nil || c.Pkg().Path() != mpiPath {
		return nil
	}
	return c
}

// tagUse tallies how one registry constant is used in a package.
type tagUse struct {
	send, recv, other int
	first             token.Pos
}

func runTagConst(pass *Pass) {
	if pass.Pkg.Path == mpiPath {
		return // the registry package defines the namespace
	}
	info := pass.Pkg.Info

	uses := map[*types.Const]*tagUse{}
	note := func(c *types.Const, pos token.Pos) *tagUse {
		u := uses[c]
		if u == nil {
			u = &tagUse{first: pos}
			uses[c] = u
		}
		return u
	}
	// Idents consumed as direct tag arguments, so the second walk can
	// count every remaining reference as plumbing ("other") use.
	consumed := map[*ast.Ident]bool{}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				send := isMethodOn(info, n, mpiPath, "Comm", "Send") ||
					isMethodOn(info, n, mpiPath, "Comm", "ISend")
				recv := isMethodOn(info, n, mpiPath, "Comm", "Recv") ||
					isMethodOn(info, n, mpiPath, "Comm", "IRecv")
				if (!send && !recv) || len(n.Args) < 2 {
					return true
				}
				arg := ast.Unparen(n.Args[1]) // (to|from, tag, ...)
				if c := registryConst(info, arg); c != nil {
					u := note(c, arg.Pos())
					if send {
						u.send++
					} else {
						u.recv++
					}
					markConsumed(arg, consumed)
					return true
				}
				checkTagExpr(pass, arg)
			case *ast.GenDecl:
				if n.Tok != token.CONST {
					return true
				}
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						c, ok := info.Defs[name].(*types.Const)
						if ok && isTagType(c.Type()) {
							pass.ReportSuppressiblef(name.Pos(), "tag-ok",
								"mpi.Tag constant %s declared outside the registry; add it to %s/tags.go so the namespace stays collision-free", name.Name, mpiPath)
						}
					}
				}
			}
			return true
		})
	}

	// Second walk: any reference to a registry constant that was not a
	// direct tag argument is plumbing (stored in a plan, passed to a
	// constructor) and satisfies both directions.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || consumed[id] {
				return true
			}
			c, ok := info.Uses[id].(*types.Const)
			if !ok || !isTagType(c.Type()) || c.Pkg() == nil || c.Pkg().Path() != mpiPath {
				return true
			}
			note(c, id.Pos()).other++
			return true
		})
	}

	// Symmetry: deterministic order for stable output.
	consts := make([]*types.Const, 0, len(uses))
	for c := range uses {
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].Name() < consts[j].Name() })
	for _, c := range consts {
		u := uses[c]
		if u.other > 0 {
			continue
		}
		switch {
		case u.send > 0 && u.recv == 0:
			pass.ReportSuppressiblef(u.first, "tag-ok",
				"tag %s is used by sends but never by receives in this package; the unmatched side invites a poisoned pair stream", c.Name())
		case u.recv > 0 && u.send == 0:
			pass.ReportSuppressiblef(u.first, "tag-ok",
				"tag %s is used by receives but never by sends in this package; the unmatched side invites a poisoned pair stream", c.Name())
		}
	}
}

// markConsumed records the ident (or selector's Sel) of a direct tag
// argument so the plumbing walk does not double-count it.
func markConsumed(e ast.Expr, consumed map[*ast.Ident]bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		consumed[x] = true
	case *ast.SelectorExpr:
		consumed[x.Sel] = true
	}
}

// checkTagExpr flags tag expressions that are not registry constants
// and not Tag-typed plumbing.
func checkTagExpr(pass *Pass, arg ast.Expr) {
	info := pass.Pkg.Info
	switch x := ast.Unparen(arg).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && isTagType(v.Type()) {
			return // plumbing variable/parameter
		}
		if c, ok := info.Uses[x].(*types.Const); ok && isTagType(c.Type()) {
			// A Tag const from outside the registry; the declaration
			// is flagged where it appears, report the use too.
			pass.ReportSuppressiblef(arg.Pos(), "tag-ok",
				"tag %s is not a registry constant; use one from %s/tags.go", x.Name, mpiPath)
			return
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && isTagType(v.Type()) {
			return // plumbing field (h.tag)
		}
	case *ast.CallExpr:
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && isTagType(tv.Type) {
			pass.ReportSuppressiblef(arg.Pos(), "tag-ok",
				"runtime conversion to mpi.Tag defeats the registry; use a constant from %s/tags.go", mpiPath)
			return
		}
	case *ast.BinaryExpr:
		pass.ReportSuppressiblef(arg.Pos(), "tag-ok",
			"arithmetic on message tags defeats the registry; use a constant from %s/tags.go", mpiPath)
		return
	}
	pass.ReportSuppressiblef(arg.Pos(), "tag-ok",
		"message tag does not trace to the %s/tags.go registry", mpiPath)
}
