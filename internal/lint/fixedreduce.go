package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FixedReduce extends detorder's fixed-order reduction discipline into
// the parallel domain. The pool's determinism contract (identical bits
// at every worker count) holds only if floating-point accumulation
// inside a task flows through fixed-shape primitives — par.Dot,
// par.Norm2, or a Segments-shaped partial buffer whose cut depends on
// the problem size alone. Two ad-hoc shapes break it:
//
//   - a per-worker partial (parts[w] += ...): the partial set has one
//     entry per worker, so the grouping — and the rounding — changes
//     with the worker count;
//   - an accumulator declared outside the shard's worker-dependent
//     loop: it sums exactly the shard's index range, so its grouping
//     is again a function of the worker count. Declaring (or
//     resetting) the accumulator inside the loop over fixed segments
//     keeps every partial's extent worker-independent — the blessed
//     dotSegments pattern.
//
// Integer accumulation is exact and exempt; accumulation into shared
// storage is ownwrite's province. Deliberate exceptions (tolerated
// rounding documented at the call site) carry //lint:reduce-ok <reason>.
var FixedReduce = &Analyzer{
	Name:      "fixedreduce",
	Doc:       "pool-task FP accumulation flows through fixed-shape reduction primitives",
	Invariant: "Parallel reductions are order-fixed: FP accumulation in pool tasks uses fixed-shape partials (par.Dot/Norm2, Segments buffers), never groupings that change with worker count.",
	Run:       runFixedReduce,
}

func runFixedReduce(pass *Pass) {
	info := pass.Pkg.Info
	for _, sc := range collectShards(pass) {
		checkShardReductions(pass, info, sc)
	}
}

// loopRange is one loop statement in a shard body, with whether its
// header depends on the worker index (directly or through owned
// values) — the loops whose trip extent changes with the worker count.
type loopRange struct {
	pos, end token.Pos
	wdep     bool
}

func checkShardReductions(pass *Pass, info *types.Info, sc *shardCtx) {
	var loops []loopRange
	resets := map[types.Object][]token.Pos{}
	ast.Inspect(sc.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			wdep := false
			for _, part := range []ast.Node{n.Init, n.Cond, n.Post} {
				if part == nil {
					continue
				}
				ast.Inspect(part, func(m ast.Node) bool {
					if e, ok := m.(ast.Expr); ok && mentionsAny(info, e, sc.owned) {
						wdep = true
					}
					return !wdep
				})
			}
			loops = append(loops, loopRange{n.Pos(), n.End(), wdep})
		case *ast.RangeStmt:
			loops = append(loops, loopRange{n.Pos(), n.End(), mentionsAny(info, n.X, sc.owned)})
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN {
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							resets[obj] = append(resets[obj], n.Pos())
						}
					}
				}
			}
		}
		return true
	})

	// outermostWdep returns the outermost worker-dependent loop enclosing
	// pos, or a zero range if none does.
	outermostWdep := func(pos token.Pos) (loopRange, bool) {
		best := loopRange{}
		found := false
		for _, l := range loops {
			if !l.wdep || pos < l.pos || pos >= l.end {
				continue
			}
			if !found || l.pos < best.pos {
				best, found = l, true
			}
		}
		return best, found
	}

	ast.Inspect(sc.body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || !isAccumOp(a.Tok) || len(a.Lhs) != 1 {
			return true
		}
		lhs := ast.Unparen(a.Lhs[0])
		tv, ok := info.Types[lhs]
		if !ok || !isFloat(tv.Type) {
			return true
		}
		switch t := lhs.(type) {
		case *ast.IndexExpr:
			if sc.indexIsWorker(info, t.Index) {
				pass.ReportSuppressiblef(a.Pos(), "reduce-ok",
					"per-worker FP partial (index is the worker): one partial per worker regroups the sum when the worker count changes; use par.Dot/par.Norm2 or a fixed Segments-shaped buffer")
			}
		case *ast.Ident:
			obj := info.Uses[t]
			if obj == nil || sc.sharedRoot(obj) {
				return true // shared accumulation is ownwrite's finding
			}
			l, inWdep := outermostWdep(a.Pos())
			if !inWdep {
				return true
			}
			if obj.Pos() >= l.pos && obj.Pos() < l.end {
				return true // declared inside the worker-dependent extent
			}
			for _, rp := range resets[obj] {
				if rp >= l.pos && rp < l.end {
					return true // reset at the top of the extent: per-iteration partial
				}
			}
			pass.ReportSuppressiblef(a.Pos(), "reduce-ok",
				"accumulator %s sums a worker-dependent index range: its grouping changes with the worker count; accumulate per fixed segment (declare or reset it inside the loop) or route through par.Dot/par.Norm2", t.Name)
		}
		return true
	})
}

// isAccumOp reports whether tok is a compound assignment whose FP
// result depends on grouping.
func isAccumOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

// indexIsWorker reports whether e is the worker index or a constant
// offset of it (w, w-1, w+1, ...) — the signature of one-partial-per-
// worker storage.
func (sc *shardCtx) indexIsWorker(info *types.Info, e ast.Expr) bool {
	if sc.worker == nil {
		return false
	}
	isW := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == sc.worker
	}
	if isW(e) {
		return true
	}
	b, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || (b.Op != token.ADD && b.Op != token.SUB) {
		return false
	}
	isConst := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && tv.Value != nil
	}
	return (isW(b.X) && isConst(b.Y)) || (isW(b.Y) && isConst(b.X) && b.Op == token.ADD)
}
