package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// CostSync cross-checks the cost formulas against the kernels they
// describe. costconst (already in the suite) guarantees every profiler
// span charges through a shared formula; CostSync closes the remaining
// gap — a formula that no longer matches the loop it models. It walks a
// kernel's innermost loop bodies, counts floating-point multiply/add
// (or load/store) operations symbolically per iteration, and verifies
// the formula's leading coefficient — the finite difference of the
// formula in its count variable — equals the counted per-iteration
// work times the declared iteration multiplicity.
//
// The registry below declares, for each audited kernel, which innermost
// loops (by source order) and which known vector calls (Dot/Axpy/Norm2)
// carry the count variable's marginal work. It also pins the kernel's
// total innermost-loop count, so restructuring a kernel (adding or
// removing a loop) forces the registry — and with it the formula review
// — to be revisited. Equivalence entries additionally pin pairs of
// formulas that must agree (a split sweep must charge exactly what the
// full sweep charges), which is what keeps the overlap path's
// interior+boundary accounting conservative.
//
// Findings are not suppressible: a mismatch means either the kernel or
// the formula is wrong, and both are this package's to fix.
var CostSync = &Analyzer{
	Name:      "costsync",
	Doc:       "cost formula coefficients match the kernel loops they model",
	Invariant: "The cost formulas count what the kernels do: symbolic per-iteration op counts of the loop bodies match the formulas' leading coefficients.",
	Run:       runCostSync,
}

// loopTerm attributes per-iteration kernel work to the count variable:
// innermost loop `index` (source order) runs `mult` iterations per unit
// of the formula's count variable.
type loopTerm struct {
	index int
	mult  int64
}

// callTerm attributes a known O(n) vector call (Dot/Axpy/Norm2/Scale)
// to the count variable: the `occurrence`-th call (source order) to
// `name` contributes its per-element flops times `mult`.
type callTerm struct {
	name       string
	occurrence int
	mult       int64
}

// knownCallFlops is the per-element flop cost of the shared vector
// kernels the audited code calls instead of open-coding.
var knownCallFlops = map[string]int64{
	"Dot":   2, // multiply + add per element
	"Axpy":  2, // multiply + add per element
	"Norm2": 2, // multiply + add per element
	"Scale": 1, // multiply per element
	"MDot":  2, // multiply + add per element PER BATCHED VECTOR — the callTerm mult carries k
	"MAxpy": 2, // multiply + add per element PER APPLIED VECTOR — the callTerm mult carries k
}

// knownCallBytes is the per-element memory traffic of the same calls:
// Dot/Norm2 stream two vectors (16), Axpy streams two and writes one
// back (24), Scale is a read-modify-write of one (16). The fused
// multi-vector kernels are charged 8 bytes per stream with the stream
// count in the callTerm mult: MDot moves k+1 streams (the shared vector
// once plus each basis vector), MAxpy k+2 (each applied vector plus a
// read-modify-write of the target) — the traffic collapse that makes
// the fusion worth pinning.
var knownCallBytes = map[string]int64{
	"Dot":   16,
	"Axpy":  24,
	"Norm2": 16,
	"Scale": 16,
	"MDot":  8,
	"MAxpy": 8,
}

// coefCheck is one kernel-vs-formula coefficient verification.
type coefCheck struct {
	pkg        string // import path the kernel and formula live in
	kernel     string // "Func" or "Type.Method"
	totalLoops int    // expected innermost-loop count (structure pin)
	loops      []loopTerm
	calls      []callTerm
	formula    string // "Func" or "Type.Method" in the same package
	countVar   string // formula variable to differentiate
	env        map[string]int64
	bytes      bool // count 8-byte float loads/stores instead of flops
}

// equivCheck pins two formulas to the same value under matched
// assignments (e.g. a full sweep vs. the subset sweep covering it).
type equivCheck struct {
	pkg  string
	fnA  string
	envA map[string]int64
	fnB  string
	envB map[string]int64
}

// costChecks is the registry. Coefficients below are hand-derived from
// the kernels; the analyzer re-derives the kernel side on every run, so
// an edit to either side that changes the count breaks the build's lint
// gate until the other side (and this registry) agrees.
var costChecks = []coefCheck{
	// sparse: one multiply and one add per stored scalar. The unrolled
	// B=4 kernel does 32 flops per stored block (innermost k-loop);
	// MulVecFlops' marginal per ColIdx entry is 2*B*B.
	{pkg: "petscfun3d/internal/sparse", kernel: "BCSR.mulVec4", totalLoops: 1,
		loops: []loopTerm{{0, 1}}, formula: "BCSR.MulVecFlops",
		countVar: "ColIdx", env: map[string]int64{"B": 4}},
	{pkg: "petscfun3d/internal/sparse", kernel: "BCSR.mulVec5", totalLoops: 1,
		loops: []loopTerm{{0, 1}}, formula: "BCSR.MulVecFlops",
		countVar: "ColIdx", env: map[string]int64{"B": 5}},
	{pkg: "petscfun3d/internal/sparse", kernel: "BCSR.mulVecRows4", totalLoops: 1,
		loops: []loopTerm{{0, 1}}, formula: "MulVecRowsFlops",
		countVar: "nnzBlocks", env: map[string]int64{"b": 4}},
	{pkg: "petscfun3d/internal/sparse", kernel: "BCSR.mulVecRows5", totalLoops: 1,
		loops: []loopTerm{{0, 1}}, formula: "MulVecRowsFlops",
		countVar: "nnzBlocks", env: map[string]int64{"b": 5}},

	// dist: the reduce-phase dot delegates its local product to the
	// shared fixed-shape par.Dot — 2 flops and 2 float loads (16 bytes)
	// per scalar, charged through the known-call table.
	{pkg: "petscfun3d/internal/dist", kernel: "Matrix.Dot", totalLoops: 0,
		calls: []callTerm{{"Dot", 0, 1}}, formula: "dotFlops",
		countVar: "n", env: map[string]int64{}},
	{pkg: "petscfun3d/internal/dist", kernel: "Matrix.Dot", totalLoops: 0,
		calls: []callTerm{{"Dot", 0, 1}}, formula: "dotBytes",
		countVar: "n", env: map[string]int64{}, bytes: true},
	// dist Matrix.MDot: the batched reduce-phase multi-dot delegates
	// its local products to the fused par.MDot — 2 flops per element per
	// batched vector, one shared-vector stream plus one per basis vector
	// (the callTerm mult carries k and k+1 at the pinned env k=1).
	{pkg: "petscfun3d/internal/dist", kernel: "Matrix.MDot", totalLoops: 0,
		calls: []callTerm{{"MDot", 0, 1}}, formula: "mdotFlops",
		countVar: "n", env: map[string]int64{"k": 1}},
	{pkg: "petscfun3d/internal/dist", kernel: "Matrix.MDot", totalLoops: 0,
		calls: []callTerm{{"MDot", 0, 2}}, formula: "mdotBytes",
		countVar: "n", env: map[string]int64{"k": 1}, bytes: true},
	// dist Matrix.orthoReduce: the fused k-vector batch plus the one
	// extra basis-norm Dot of a Gram-Schmidt step's single
	// synchronization round, pinned at k=1.
	{pkg: "petscfun3d/internal/dist", kernel: "Matrix.orthoReduce", totalLoops: 0,
		calls: []callTerm{{"MDot", 0, 1}, {"Dot", 0, 1}}, formula: "orthoReduceFlops",
		countVar: "n", env: map[string]int64{"k": 1}},
	{pkg: "petscfun3d/internal/dist", kernel: "Matrix.orthoReduce", totalLoops: 0,
		calls: []callTerm{{"MDot", 0, 2}, {"Dot", 0, 1}}, formula: "orthoReduceBytes",
		countVar: "n", env: map[string]int64{"k": 1}, bytes: true},
	// dist GMRES orthogonalization at step j=0: the fused MAxpy
	// subtraction sweep (2 flops per element per applied vector, the
	// callTerm mult carrying j+1) plus the basis scale (loop 5, 1 flop);
	// the batched projections inside are charged to the reduce phase by
	// orthoReduce itself, so they do not appear in orthoFlops. The
	// O(restart) Hessenberg copy loop (loop 4) carries no n-marginal.
	{pkg: "petscfun3d/internal/dist", kernel: "GMRES", totalLoops: 12,
		loops: []loopTerm{{5, 1}}, calls: []callTerm{{"MAxpy", 0, 1}},
		formula: "orthoFlops", countVar: "n", env: map[string]int64{"j": 0}},
	// The same step's traffic: MAxpy moves j+3 streams of 8 bytes (j+1
	// applied vectors plus the read-modify-write of w) and the scale
	// streams 16 — (8(j+1)+32)n in total.
	{pkg: "petscfun3d/internal/dist", kernel: "GMRES", totalLoops: 12,
		loops: []loopTerm{{5, 1}}, calls: []callTerm{{"MAxpy", 0, 3}},
		formula: "orthoBytes", countVar: "n", env: map[string]int64{"j": 0}, bytes: true},

	// ilu: two flops per stored factor scalar. The forward c-loop
	// (loop 0) runs B*B iterations of 2 flops per stored block — the
	// forward and backward sweeps partition the blocks and run the same
	// per-block arithmetic, so loop 0 carries the ColIdx marginal. The
	// diagonal-inverse c-loop (loop 2) carries the per-row marginal.
	{pkg: "petscfun3d/internal/ilu", kernel: "Factorization.Solve", totalLoops: 3,
		loops: []loopTerm{{0, 16}}, formula: "Factorization.SolveFlops",
		countVar: "ColIdx", env: map[string]int64{"B": 4, "NB": 50}},
	{pkg: "petscfun3d/internal/ilu", kernel: "Factorization.Solve", totalLoops: 3,
		loops: []loopTerm{{2, 16}}, formula: "Factorization.SolveFlops",
		countVar: "NB", env: map[string]int64{"B": 4, "ColIdx": 500}},

	// ilu level-scheduled solve kernels: the same per-block arithmetic
	// as the sequential Solve, partitioned into the forward and backward
	// level sweeps. forwardRows' innermost c-loop carries the ColIdx
	// marginal (2*B*B flops per stored block); backwardRows' second
	// innermost loop (the diagonal-inverse c-loop) carries the NB
	// marginal.
	{pkg: "petscfun3d/internal/ilu", kernel: "Factorization.forwardRows", totalLoops: 1,
		loops: []loopTerm{{0, 16}}, formula: "Factorization.SolveFlops",
		countVar: "ColIdx", env: map[string]int64{"B": 4, "NB": 50}},
	{pkg: "petscfun3d/internal/ilu", kernel: "Factorization.backwardRows", totalLoops: 2,
		loops: []loopTerm{{1, 16}}, formula: "Factorization.SolveFlops",
		countVar: "NB", env: map[string]int64{"B": 4, "ColIdx": 500}},
	{pkg: "petscfun3d/internal/ilu", kernel: "Factorization.forwardRows32", totalLoops: 1,
		loops: []loopTerm{{0, 16}}, formula: "Factorization.SolveFlops",
		countVar: "ColIdx", env: map[string]int64{"B": 4, "NB": 50}},
	{pkg: "petscfun3d/internal/ilu", kernel: "Factorization.backwardRows32", totalLoops: 2,
		loops: []loopTerm{{1, 16}}, formula: "Factorization.SolveFlops",
		countVar: "NB", env: map[string]int64{"B": 4, "ColIdx": 500}},

	// krylov orthogonalization at step j=0, per mechanism. Innermost
	// loop 10 is the basis-scale sweep (1 flop, 16 bytes per element);
	// the O(restart) Hessenberg copy loops (7-9) carry no n-marginal.
	// Norm2's third occurrence is the post-projection norm (the first
	// two normalize restart residuals); its fourth is the cgs2
	// reorthogonalization recompute. MDot/MAxpy occurrences 0/1/2 are
	// the cgs, cgs2, and reorthogonalization passes in order; the
	// callTerm mult carries the batch width (flops) and stream count
	// (bytes) at the pinned j=0.
	//
	// mgs: one Dot (2) + one Axpy (2) per projection, the Norm2 (2),
	// and the scale (1).
	{pkg: "petscfun3d/internal/krylov", kernel: "Solve", totalLoops: 15,
		loops:    []loopTerm{{10, 1}},
		calls:    []callTerm{{"Dot", 0, 1}, {"Axpy", 0, 1}, {"Norm2", 2, 1}},
		formula:  "orthoFlops",
		countVar: "n", env: map[string]int64{"j": 0}},
	// cgs: one fused MDot pass (2 per vector), one fused MAxpy sweep
	// (2 per vector), the Norm2, and the scale.
	{pkg: "petscfun3d/internal/krylov", kernel: "Solve", totalLoops: 15,
		loops:    []loopTerm{{10, 1}},
		calls:    []callTerm{{"MDot", 0, 1}, {"MAxpy", 0, 1}, {"Norm2", 2, 1}},
		formula:  "orthoFlopsCGS",
		countVar: "n", env: map[string]int64{"j": 0}},
	{pkg: "petscfun3d/internal/krylov", kernel: "Solve", totalLoops: 15,
		loops:    []loopTerm{{10, 1}},
		calls:    []callTerm{{"MDot", 0, 2}, {"MAxpy", 0, 3}, {"Norm2", 2, 1}},
		formula:  "orthoBytesCGS",
		countVar: "n", env: map[string]int64{"j": 0}, bytes: true},
	// cgs2: the MDot batch carries w itself as one extra vector (the
	// pre-projection norm for the reorthogonalization decision).
	{pkg: "petscfun3d/internal/krylov", kernel: "Solve", totalLoops: 15,
		loops:    []loopTerm{{10, 1}},
		calls:    []callTerm{{"MDot", 1, 2}, {"MAxpy", 1, 1}, {"Norm2", 2, 1}},
		formula:  "orthoFlopsCGS2",
		countVar: "n", env: map[string]int64{"j": 0}},
	{pkg: "petscfun3d/internal/krylov", kernel: "Solve", totalLoops: 15,
		loops:    []loopTerm{{10, 1}},
		calls:    []callTerm{{"MDot", 1, 3}, {"MAxpy", 1, 3}, {"Norm2", 2, 1}},
		formula:  "orthoBytesCGS2",
		countVar: "n", env: map[string]int64{"j": 0}, bytes: true},
	// The selective reorthogonalization pass: a second MDot/MAxpy round
	// and the norm recompute (no scale — the caller normalizes once).
	{pkg: "petscfun3d/internal/krylov", kernel: "Solve", totalLoops: 15,
		calls:    []callTerm{{"MDot", 2, 1}, {"MAxpy", 2, 1}, {"Norm2", 3, 1}},
		formula:  "reorthFlops",
		countVar: "n", env: map[string]int64{"j": 0}},
	{pkg: "petscfun3d/internal/krylov", kernel: "Solve", totalLoops: 15,
		calls:    []callTerm{{"MDot", 2, 2}, {"MAxpy", 2, 3}, {"Norm2", 3, 1}},
		formula:  "reorthBytes",
		countVar: "n", env: map[string]int64{"j": 0}, bytes: true},

	// par fused multi-vector group-of-4 kernels: MDotFlops/MDotBytes'
	// per-element marginals at k=4 are exactly mdotSeg4's loop body
	// (8 flops; 40 bytes — the shared segment plus four basis streams),
	// and the k=1 remainder kernel mdotSeg1 carries the 2-flop/16-byte
	// marginal. maxpy4 pins MAxpyFlops/MAxpyBytes at k=4: four fused
	// compound multiply-adds (8 flops) over four streamed vectors plus
	// one read-modify-write of the target (48 bytes).
	{pkg: "petscfun3d/internal/par", kernel: "mdotSeg4", totalLoops: 1,
		loops: []loopTerm{{0, 1}}, formula: "MDotFlops",
		countVar: "n", env: map[string]int64{"k": 4}},
	{pkg: "petscfun3d/internal/par", kernel: "mdotSeg4", totalLoops: 1,
		loops: []loopTerm{{0, 1}}, formula: "MDotBytes",
		countVar: "n", env: map[string]int64{"k": 4}, bytes: true},
	{pkg: "petscfun3d/internal/par", kernel: "mdotSeg1", totalLoops: 1,
		loops: []loopTerm{{0, 1}}, formula: "MDotFlops",
		countVar: "n", env: map[string]int64{"k": 1}},
	{pkg: "petscfun3d/internal/par", kernel: "mdotSeg1", totalLoops: 1,
		loops: []loopTerm{{0, 1}}, formula: "MDotBytes",
		countVar: "n", env: map[string]int64{"k": 1}, bytes: true},
	{pkg: "petscfun3d/internal/par", kernel: "maxpy4", totalLoops: 1,
		loops: []loopTerm{{0, 1}}, formula: "MAxpyFlops",
		countVar: "n", env: map[string]int64{"k": 4}},
	{pkg: "petscfun3d/internal/par", kernel: "maxpy4", totalLoops: 1,
		loops: []loopTerm{{0, 1}}, formula: "MAxpyBytes",
		countVar: "n", env: map[string]int64{"k": 4}, bytes: true},

	// euler: structure pin only — the split-sweep kernel is one edge
	// loop over shared flux calls; its accounting is tied to the full
	// sweep by the equivalence check below.
	{pkg: "petscfun3d/internal/euler", kernel: "Discretization.ResidualEdges", totalLoops: 1},
	// The pooled flux shard is one zeroing loop plus one edge loop over
	// the same shared flux calls (structure pin; the sweep's accounting
	// rides the equivalence check above).
	{pkg: "petscfun3d/internal/euler", kernel: "fluxTask.RunShard", totalLoops: 2},
	// The redundant-work-array gather of the threaded sweep: one add
	// per entry per extra private array (flops), and a read-modify-write
	// of the shared residual plus a streaming read of the private copy —
	// 24 bytes, the undercharge the 16-byte model hid.
	{pkg: "petscfun3d/internal/euler", kernel: "gatherPrivate", totalLoops: 1,
		loops: []loopTerm{{0, 1}}, formula: "PrivateGatherFlops",
		countVar: "n", env: map[string]int64{"extra": 1}},
	{pkg: "petscfun3d/internal/euler", kernel: "gatherPrivate", totalLoops: 1,
		loops: []loopTerm{{0, 1}}, formula: "PrivateGatherBytes",
		countVar: "n", env: map[string]int64{"extra": 1}, bytes: true},

	// Fixture package exercising the analyzer's positive and negative
	// paths (internal/lint/testdata/src/costsync).
	{pkg: "fixture/costsync", kernel: "Dot", totalLoops: 1,
		loops: []loopTerm{{0, 1}}, formula: "dotFlops",
		countVar: "n", env: map[string]int64{}},
	{pkg: "fixture/costsync", kernel: "Axpy", totalLoops: 1,
		loops: []loopTerm{{0, 1}}, formula: "axpyFlops",
		countVar: "n", env: map[string]int64{}},
}

var equivChecks = []equivCheck{
	// The split residual sweep must charge exactly what one full sweep
	// charges — the conservation law behind the overlap path's
	// interior+boundary phase decomposition.
	{pkg: "petscfun3d/internal/euler",
		fnA: "Discretization.SweepFlops", envA: map[string]int64{"edges": 7, "B": 5},
		fnB: "EdgeSubsetFlops", envB: map[string]int64{"nEdges": 7, "b": 5}},
	// Likewise the row-subset matvec against the full matvec.
	{pkg: "petscfun3d/internal/sparse",
		fnA: "BCSR.MulVecFlops", envA: map[string]int64{"ColIdx": 123, "B": 4},
		fnB: "MulVecRowsFlops", envB: map[string]int64{"nnzBlocks": 123, "b": 4}},
	{pkg: "fixture/costsync",
		fnA: "fullFlops", envA: map[string]int64{"edges": 7},
		fnB: "subsetFlops", envB: map[string]int64{"nEdges": 7}},
}

func runCostSync(pass *Pass) {
	for _, c := range costChecks {
		if c.pkg == pass.Pkg.Path {
			runCoefCheck(pass, c)
		}
	}
	for _, e := range equivChecks {
		if e.pkg == pass.Pkg.Path {
			runEquivCheck(pass, e)
		}
	}
}

func runCoefCheck(pass *Pass, c coefCheck) {
	fd := findFuncDecl(pass.Pkg, c.kernel)
	if fd == nil {
		pass.Reportf(pass.Pkg.Files[0].Pos(),
			"costsync registry names kernel %s.%s which no longer exists; update internal/lint/costsync.go", c.pkg, c.kernel)
		return
	}
	loops := innermostLoops(fd.Body)
	if len(loops) != c.totalLoops {
		pass.Reportf(fd.Pos(),
			"kernel %s has %d innermost loops, the costsync registry expects %d; the loop structure changed — re-derive the cost coefficients and update internal/lint/costsync.go",
			c.kernel, len(loops), c.totalLoops)
		return
	}
	if c.formula == "" {
		return // structure pin only
	}
	var kernelCoef int64
	for _, lt := range c.loops {
		if lt.index >= len(loops) {
			pass.Reportf(fd.Pos(), "costsync registry references loop %d of %s, which has %d", lt.index, c.kernel, len(loops))
			return
		}
		kernelCoef += lt.mult * loopWork(pass.Pkg.Info, loops[lt.index], c.bytes)
	}
	for _, ct := range c.calls {
		call := nthCall(pass.Pkg.Info, fd.Body, ct.name, ct.occurrence)
		if call == nil {
			pass.Reportf(fd.Pos(), "costsync registry references call %s #%d in %s, not found", ct.name, ct.occurrence, c.kernel)
			return
		}
		if c.bytes {
			kernelCoef += ct.mult * knownCallBytes[ct.name]
		} else {
			kernelCoef += ct.mult * knownCallFlops[ct.name]
		}
	}
	const base = 1000
	env := map[string]int64{}
	for k, v := range c.env {
		env[k] = v
	}
	env[c.countVar] = base
	f0, err := evalFormula(pass.Pkg, c.formula, env)
	if err == nil {
		env[c.countVar] = base + 1
		var f1 int64
		f1, err = evalFormula(pass.Pkg, c.formula, env)
		if err == nil {
			if marginal := f1 - f0; marginal != kernelCoef {
				kind := "flops"
				if c.bytes {
					kind = "bytes"
				}
				pass.Reportf(fd.Pos(),
					"kernel %s does %d %s per unit of %s (counted from its loops) but formula %s charges %d; the profiler's roofline accounting is drifting from the code",
					c.kernel, kernelCoef, kind, c.countVar, c.formula, marginal)
			}
			return
		}
	}
	pass.Reportf(fd.Pos(), "costsync cannot evaluate formula %s.%s: %v", c.pkg, c.formula, err)
}

func runEquivCheck(pass *Pass, e equivCheck) {
	a, errA := evalFormula(pass.Pkg, e.fnA, e.envA)
	if errA != nil {
		pass.Reportf(pass.Pkg.Files[0].Pos(), "costsync cannot evaluate formula %s.%s: %v", e.pkg, e.fnA, errA)
		return
	}
	b, errB := evalFormula(pass.Pkg, e.fnB, e.envB)
	if errB != nil {
		pass.Reportf(pass.Pkg.Files[0].Pos(), "costsync cannot evaluate formula %s.%s: %v", e.pkg, e.fnB, errB)
		return
	}
	if a != b {
		fd := findFuncDecl(pass.Pkg, e.fnB)
		pos := pass.Pkg.Files[0].Pos()
		if fd != nil {
			pos = fd.Pos()
		}
		pass.Reportf(pos,
			"formulas %s (= %d) and %s (= %d) disagree under matched assignments; the split sweep no longer charges what the full sweep charges",
			e.fnA, a, e.fnB, b)
	}
}

// findFuncDecl locates "Func" or "Type.Method" in the package.
func findFuncDecl(pkg *Package, name string) *ast.FuncDecl {
	typ, fn := "", name
	for i := range name {
		if name[i] == '.' {
			typ, fn = name[:i], name[i+1:]
			break
		}
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fn {
				continue
			}
			if (typ != "") != (fd.Recv != nil) {
				continue
			}
			if typ != "" && recvTypeName(fd) != typ {
				continue
			}
			return fd
		}
	}
	return nil
}

// recvTypeName returns the receiver's type name, stripping a pointer.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// innermostLoops returns the kernel's innermost for/range statements in
// source order: loops containing no nested loop. Function literals are
// opaque (their loops belong to the literal, as in the other analyzers).
func innermostLoops(body *ast.BlockStmt) []ast.Node {
	var out []ast.Node
	shallowInspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if !containsLoop(loopBody(n)) {
				out = append(out, n)
			}
		}
		return true
	})
	return out
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

func containsLoop(body *ast.BlockStmt) bool {
	found := false
	shallowInspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// loopWork counts one iteration of the loop body symbolically: in flops
// mode, floating-point binary multiply/divide/add/subtract operations
// plus compound assignments; in bytes mode, 8 bytes per floating-point
// index load or store.
func loopWork(info *types.Info, loop ast.Node, bytes bool) int64 {
	var work int64
	shallowInspect(loopBody(loop), func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if !bytes && isFloatOp(info, n.Op) && exprIsFloat(info, n.X) {
				work++
			}
		case *ast.AssignStmt:
			if isFloatAssignOp(n.Tok) && len(n.Lhs) == 1 && exprIsFloat(info, n.Lhs[0]) {
				if !bytes {
					work++
				} else if _, idx := n.Lhs[0].(*ast.IndexExpr); idx {
					// A compound assignment to an element is a load and
					// a store; the IndexExpr case counts the load, this
					// adds the write-back.
					work += 8
				}
			}
		case *ast.IndexExpr:
			if bytes && exprIsFloat(info, n) {
				work += 8
			}
		}
		return true
	})
	return work
}

func isFloatOp(info *types.Info, op token.Token) bool {
	switch op {
	case token.MUL, token.QUO, token.ADD, token.SUB:
		return true
	}
	return false
}

func isFloatAssignOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

func exprIsFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isFloat(tv.Type)
}

// nthCall returns the n-th (source order) call in body whose callee is
// named `name`, or nil.
func nthCall(info *types.Info, body *ast.BlockStmt, name string, n int) *ast.CallExpr {
	var out *ast.CallExpr
	seen := 0
	shallowInspect(body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(info, call)
		if obj == nil || obj.Name() != name {
			return true
		}
		if seen == n {
			out = call
		}
		seen++
		return out == nil
	})
	return out
}

// evalFormula interprets a cost function symbolically: the body may be
// a sequence of simple assignments followed by one return. Identifiers,
// field selections (f.NB), len() of a field (len(a.ColIdx)), and 0-arg
// method calls (d.Sys.B()) resolve through env by their last name;
// integer conversions pass through; same-package calls recurse.
func evalFormula(pkg *Package, name string, env map[string]int64) (int64, error) {
	fd := findFuncDecl(pkg, name)
	if fd == nil {
		return 0, fmt.Errorf("formula %s not found", name)
	}
	locals := map[string]int64{}
	for k, v := range env {
		locals[k] = v
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, pn := range field.Names {
				if _, ok := locals[pn.Name]; !ok {
					return 0, fmt.Errorf("formula %s: parameter %s not assigned", name, pn.Name)
				}
			}
		}
	}
	for _, st := range fd.Body.List {
		switch st := st.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return 0, fmt.Errorf("formula %s: unsupported assignment shape", name)
			}
			id, ok := st.Lhs[0].(*ast.Ident)
			if !ok {
				return 0, fmt.Errorf("formula %s: unsupported assignment target", name)
			}
			v, err := evalExpr(pkg, st.Rhs[0], locals, env)
			if err != nil {
				return 0, err
			}
			locals[id.Name] = v
		case *ast.ReturnStmt:
			if len(st.Results) != 1 {
				return 0, fmt.Errorf("formula %s: want a single return value", name)
			}
			return evalExpr(pkg, st.Results[0], locals, env)
		default:
			return 0, fmt.Errorf("formula %s: unsupported statement %T", name, st)
		}
	}
	return 0, fmt.Errorf("formula %s: no return", name)
}

func evalExpr(pkg *Package, e ast.Expr, locals, env map[string]int64) (int64, error) {
	info := pkg.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if tv, ok := info.Types[e]; ok && tv.Value != nil {
			var v int64
			if _, err := fmt.Sscan(tv.Value.ExactString(), &v); err == nil {
				return v, nil
			}
		}
		return 0, fmt.Errorf("unsupported literal %s", e.Value)
	case *ast.Ident:
		if v, ok := locals[e.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("unbound variable %s", e.Name)
	case *ast.SelectorExpr:
		if v, ok := locals[e.Sel.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("unbound field %s", e.Sel.Name)
	case *ast.UnaryExpr:
		v, err := evalExpr(pkg, e.X, locals, env)
		if err != nil {
			return 0, err
		}
		if e.Op == token.SUB {
			return -v, nil
		}
		return 0, fmt.Errorf("unsupported unary op %v", e.Op)
	case *ast.BinaryExpr:
		x, err := evalExpr(pkg, e.X, locals, env)
		if err != nil {
			return 0, err
		}
		y, err := evalExpr(pkg, e.Y, locals, env)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case token.ADD:
			return x + y, nil
		case token.SUB:
			return x - y, nil
		case token.MUL:
			return x * y, nil
		case token.QUO:
			if y == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return x / y, nil
		}
		return 0, fmt.Errorf("unsupported binary op %v", e.Op)
	case *ast.CallExpr:
		// len(x.F) → the count bound to F.
		if isBuiltinCall(info, e, "len") {
			return evalExpr(pkg, lenArgName(e.Args[0]), locals, env)
		}
		// Integer conversions pass through.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			return evalExpr(pkg, e.Args[0], locals, env)
		}
		obj := calleeObject(info, e)
		if fn, ok := obj.(*types.Func); ok {
			// 0-arg method call (d.Sys.B()): resolve by method name.
			if sig := fn.Type().(*types.Signature); sig.Recv() != nil && len(e.Args) == 0 {
				if v, ok := locals[fn.Name()]; ok {
					return v, nil
				}
				return 0, fmt.Errorf("unbound method value %s()", fn.Name())
			}
			// Same-package function call: recurse.
			if callee := findFuncDecl(pkg, fn.Name()); callee != nil && callee.Recv == nil {
				sub := map[string]int64{}
				i := 0
				for _, field := range callee.Type.Params.List {
					for _, pn := range field.Names {
						if i >= len(e.Args) {
							return 0, fmt.Errorf("call %s: argument count mismatch", fn.Name())
						}
						v, err := evalExpr(pkg, e.Args[i], locals, env)
						if err != nil {
							return 0, err
						}
						sub[pn.Name] = v
						i++
					}
				}
				return evalFormula(pkg, fn.Name(), sub)
			}
		}
		return 0, fmt.Errorf("unsupported call")
	}
	return 0, fmt.Errorf("unsupported expression %T", e)
}

// lenArgName reduces a len() argument to the ident carrying its count:
// len(a.ColIdx) → ColIdx, len(edges) → edges.
func lenArgName(e ast.Expr) ast.Expr {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		return sel.Sel
	}
	return ast.Unparen(e)
}
