package lint

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"petscfun3d/internal/codegen"
)

// Codegen enforces the compiler-codegen conformance budget
// (codegen.budget.json at the module root): the compiled form of every
// hot kernel must match what the cost formulas price. Three rules, all
// derived from the compiler's own -m=2 / check_bce diagnostics:
//
//  1. No stack variable of a hot function may be moved to the heap
//     (anywhere in the function — the diagnostic points at the
//     declaration, but the loops pay for the allocation), and no
//     allocation site inside a hot function's loops may escape.
//  2. No bounds check may survive in a hot function's innermost loops:
//     an IsInBounds in a loop modeled as pure streaming adds a branch
//     and a length load per iteration the roofline bytes do not price.
//  3. Every helper on the budget's must-inline list must be reported
//     inlinable: the per-iteration coefficients assume those calls are
//     flattened.
//
// Hot functions are the union of the costsync registry's kernels for
// the package (anything with pinned cost coefficients is hot by
// definition) and the manifest's per-package hot list. Packages absent
// from the manifest are not compiled or checked. Irreducible sites —
// a gather through a data-dependent index can never prove its bounds —
// are waived in the source with audited //lint:escape-ok / //lint:bce-ok
// pragmas. The manifest pins the toolchain version it was recorded
// against; on mismatch the analyzer reports the version skew instead of
// checking against a compiler with different heuristics (re-record with
// `fun3dlint -update-budget` after reviewing the new diagnostics).
var Codegen = &Analyzer{
	Name:      "codegen",
	Doc:       "compiled hot kernels meet the codegen budget: no escapes, no inner-loop bounds checks, helpers inline",
	Invariant: "The compiled kernels are what the model prices: the compiler's own diagnostics show no heap escapes and no surviving innermost-loop bounds checks in hot kernels, and the per-edge helpers inline (`codegen.budget.json`, toolchain-pinned).",
	Run:       runCodegen,
}

func runCodegen(pass *Pass) {
	root, err := FindModuleRoot(pass.Pkg.Dir)
	if err != nil {
		return // outside any module: nothing to enforce
	}
	budgetPath := filepath.Join(root, codegen.BudgetFile)
	budget, err := codegen.LoadBudget(budgetPath)
	if os.IsNotExist(err) {
		return // no manifest, no policy (keeps unrelated fixtures cheap)
	}
	if err != nil {
		pass.Reportf(pass.Pkg.Files[0].Pos(), "codegen budget unreadable: %v", err)
		return
	}
	pb, ok := budget.Packages[pass.Pkg.Path]
	if !ok {
		return // package not under the conformance policy
	}

	hot := map[string]bool{}
	for _, c := range costChecks {
		if c.pkg == pass.Pkg.Path {
			hot[c.kernel] = true
		}
	}
	for _, name := range pb.Hot {
		hot[name] = true
	}
	if len(hot) == 0 && len(pb.MustInline) == 0 {
		return
	}

	if budget.GoVersion != runtime.Version() {
		pass.Reportf(pass.Pkg.Files[0].Pos(),
			"codegen budget %s was recorded against %s but this toolchain is %s; escape/inline/BCE heuristics are compiler-version-specific — review `fun3dlint -only codegen` under the new toolchain, sweep or waive what changed, then re-record the pin with `fun3dlint -update-budget`",
			codegen.BudgetFile, budget.GoVersion, runtime.Version())
		return
	}

	rep, err := codegen.Analyze(pass.Pkg.Dir)
	if err != nil {
		pass.Reportf(pass.Pkg.Files[0].Pos(), "codegen: %v", err)
		return
	}

	spans := hotFunctionSpans(pass, hot)
	canInline := map[string]bool{}
	cannotInline := map[string]codegen.Diagnostic{}
	for _, d := range rep.Diagnostics {
		switch d.Kind {
		case codegen.KindCanInline:
			canInline[d.Symbol] = true
		case codegen.KindCannotInline:
			cannotInline[d.Symbol] = d
		case codegen.KindMoved:
			if fs := enclosingHotFunction(spans, d); fs != nil {
				pass.ReportAtf(diagPosition(d), "escape-ok",
					"hot kernel %s: %s — a stack variable forced to the heap adds allocator traffic the roofline bytes do not price%s",
					fs.name, d.Message, chainSuffix(d))
			}
		case codegen.KindEscape:
			if fs := enclosingHotFunction(spans, d); fs != nil && fs.inLoop(d.Line) {
				pass.ReportAtf(diagPosition(d), "escape-ok",
					"hot kernel %s: %s inside its loop — a per-iteration heap allocation in a kernel modeled as pure streaming%s",
					fs.name, d.Message, chainSuffix(d))
			}
		case codegen.KindBoundsCheck:
			if fs := enclosingHotFunction(spans, d); fs != nil && fs.inInnermostLoop(d.Line) {
				pass.ReportAtf(diagPosition(d), "bce-ok",
					"hot kernel %s: bounds check survives in an innermost loop (%s) — an unmodeled branch and length load per iteration; add a slice-length hint or hoist the bound",
					fs.name, d.Message)
			}
		}
	}

	for _, name := range pb.MustInline {
		if canInline[name] {
			continue
		}
		if d, ok := cannotInline[name]; ok {
			pass.ReportAtf(diagPosition(d), "",
				"must-inline helper %s: %s — the per-iteration cost coefficients assume this call is flattened",
				name, d.Message)
			continue
		}
		pos := pass.Pkg.Files[0].Pos()
		if fd := findFuncDecl(pass.Pkg, name); fd != nil {
			pos = fd.Pos()
		}
		pass.Reportf(pos,
			"codegen budget lists must-inline helper %s but the compiler emitted no inlining decision for it (renamed or removed?); update %s",
			name, codegen.BudgetFile)
	}
}

// lineSpan is a [start, end] line interval within one file.
type lineSpan struct{ start, end int }

func (s lineSpan) contains(line int) bool { return line >= s.start && line <= s.end }

// funcSpan is the textual extent of one hot function plus its loop
// intervals, the geometry compiler diagnostics are matched against.
type funcSpan struct {
	name  string
	file  string
	body  lineSpan
	loops []lineSpan // every for/range statement, nested included
	inner []lineSpan // loops containing no other loop
}

func (f *funcSpan) inLoop(line int) bool {
	for _, s := range f.loops {
		if s.contains(line) {
			return true
		}
	}
	return false
}

func (f *funcSpan) inInnermostLoop(line int) bool {
	for _, s := range f.inner {
		if s.contains(line) {
			return true
		}
	}
	return false
}

// hotFunctionSpans maps every budgeted hot function to its file/line
// geometry; a hot name with no declaration is itself a finding (the
// budget rotted).
func hotFunctionSpans(pass *Pass, hot map[string]bool) []*funcSpan {
	names := make([]string, 0, len(hot))
	for n := range hot {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []*funcSpan
	for _, name := range names {
		fd := findFuncDecl(pass.Pkg, name)
		if fd == nil {
			pass.Reportf(pass.Pkg.Files[0].Pos(),
				"codegen budget names hot function %s which no longer exists in %s; update %s or the costsync registry",
				name, pass.Pkg.Path, codegen.BudgetFile)
			continue
		}
		start := pass.Fset.Position(fd.Pos())
		end := pass.Fset.Position(fd.End())
		fs := &funcSpan{
			name: name,
			file: filepath.Clean(start.Filename),
			body: lineSpan{start.Line, end.Line},
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			body := loopBody(n)
			if body == nil {
				return true
			}
			s := lineSpan{pass.Fset.Position(n.Pos()).Line, pass.Fset.Position(n.End()).Line}
			fs.loops = append(fs.loops, s)
			if !containsLoopDeep(body) {
				fs.inner = append(fs.inner, s)
			}
			return true
		})
		out = append(out, fs)
	}
	return out
}

// containsLoopDeep reports whether body contains any for/range
// statement, descending into function literals too: the matching here
// is textual (compiler diagnostics carry positions, not scopes), so a
// loop inside a closure still makes the enclosing loop non-innermost.
func containsLoopDeep(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

func enclosingHotFunction(spans []*funcSpan, d codegen.Diagnostic) *funcSpan {
	file := filepath.Clean(d.File)
	for _, fs := range spans {
		if fs.file == file && fs.body.contains(d.Line) {
			return fs
		}
	}
	return nil
}

func diagPosition(d codegen.Diagnostic) token.Position {
	return token.Position{Filename: filepath.Clean(d.File), Line: d.Line, Column: d.Col}
}

func chainSuffix(d codegen.Diagnostic) string {
	if len(d.Chain) == 0 {
		return ""
	}
	return " (" + d.Chain[0] + ")"
}
