package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const distPath = "petscfun3d/internal/dist"

// OverlapRegion protects the communication/computation overlap window —
// the span between posting a nonblocking exchange and waiting on it,
// which is where the paper's scatter fix earns its speedup. Inside a
// window the code must only compute on data it owns:
//
//   - no blocking point-to-point call (Comm.Send/Recv), no collective
//     (AllReduceSum/AllReduceMax/Barrier), no blocking Halo.Exchange,
//     and no raw channel operation — any of these serializes the
//     exchange the window exists to hide, or deadlocks outright when
//     the peer is inside its own window;
//   - no write to a buffer that is posted in the window: the fabric
//     here copies eagerly, but MPI_Isend does not, so touching a posted
//     buffer is the exact portability bug the analyzer exists to stop;
//   - a staging buffer declared outside a posting loop but written
//     inside it needs a Wait in the same iteration — otherwise
//     iteration i+1 overwrites the buffer iteration i still has posted.
//     Rebinding per iteration (buf := plan.bufs[i]) is the sanctioned
//     idiom and is exempt.
//
// Windows are function-local: Halo.Start to the matching Finish on the
// same receiver, and a local ISend/IRecv to the matching Wait. A post
// whose wait lives in another function (the persistent-plan field
// idiom) opens a window to the end of the body. Deliberate exceptions
// carry //lint:overlap-ok <reason>.
var OverlapRegion = &Analyzer{
	Name:      "overlapregion",
	Doc:       "no blocking ops or posted-buffer writes inside nonblocking overlap windows",
	Invariant: "The overlap window actually overlaps (Table 3): nothing blocking, and no posted-buffer writes, between posting an exchange and waiting on it.",
	Run:       runOverlapRegion,
}

// window is one open nonblocking region within a function body.
type window struct {
	lo, hi  token.Pos             // (post end, wait begin]; hi == body end if unmatched
	bufs    map[types.Object]bool // buffers posted and not yet waited
	openPos token.Pos             // the post, for finding context
}

func runOverlapRegion(pass *Pass) {
	if pass.Pkg.Path == mpiPath {
		return // the fabric's own internals are the implementation, not a user
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		eachFuncBody(f, func(body *ast.BlockStmt) {
			checkOverlapBody(pass, info, body)
		})
	}
}

// haloCall reports whether call invokes the named method on dist.Halo
// and returns the receiver's base object.
func haloCall(info *types.Info, call *ast.CallExpr, method string) (types.Object, bool) {
	if !isMethodOn(info, call, distPath, "Halo", method) {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	obj, _ := lvalueBase(info, sel.X)
	return obj, obj != nil
}

func checkOverlapBody(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	var windows []window

	// Halo windows: Start(prof, x) → Finish on the same receiver.
	shallowInspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, ok := haloCall(info, call, "Start")
		if !ok || len(call.Args) < 2 {
			return true
		}
		w := window{lo: call.End(), hi: body.End(), openPos: call.Pos(), bufs: map[types.Object]bool{}}
		if obj, _ := lvalueBase(info, call.Args[1]); obj != nil {
			w.bufs[obj] = true
		}
		shallowInspect(body, func(m ast.Node) bool {
			fc, ok := m.(*ast.CallExpr)
			if !ok || fc.Pos() <= call.End() || fc.Pos() >= w.hi {
				return true
			}
			if fr, ok := haloCall(info, fc, "Finish"); ok && fr == recv {
				w.hi = fc.Pos()
			}
			return true
		})
		windows = append(windows, w)
		return true
	})

	// Local request windows: obj := c.ISend/IRecv(...) → first Wait on
	// obj after the post. Field-stored posts open to the end of body.
	shallowInspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPostCall(info, call) {
			return true
		}
		if chainedWait(body, call) {
			return true // c.ISend(...).Wait(): the window is empty
		}
		w := window{lo: call.End(), hi: body.End(), openPos: call.Pos(), bufs: map[types.Object]bool{}}
		// ISend(to, tag, data): the posted buffer is arg 2.
		if len(call.Args) == 3 {
			if obj, _ := lvalueBase(info, call.Args[2]); obj != nil {
				w.bufs[obj] = true
			}
		}
		// The bound request, when local, closes the window at its Wait.
		if obj := postBinding(info, body, call); obj != nil {
			objs := map[types.Object]bool{obj: true}
			shallowInspect(body, func(m ast.Node) bool {
				wc, ok := m.(*ast.CallExpr)
				if !ok || wc.Pos() <= call.End() || wc.Pos() >= w.hi {
					return true
				}
				if waitReceiverMatches(info, wc, objs) {
					w.hi = wc.Pos()
				}
				return true
			})
		}
		windows = append(windows, w)
		checkLoopStaging(pass, info, body, call, w.bufs)
		return true
	})

	for _, w := range windows {
		flagWindowViolations(pass, info, body, w)
	}
}

// chainedWait reports whether the post call is immediately completed
// with a chained .Wait().
func chainedWait(body *ast.BlockStmt, post *ast.CallExpr) bool {
	found := false
	shallowInspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if ok && ast.Unparen(sel.X) == ast.Expr(post) && sel.Sel.Name == "Wait" {
			found = true
		}
		return !found
	})
	return found
}

// postBinding returns the object a post call's result is bound to, when
// the binding is a simple local identifier (req := c.ISend(...)).
func postBinding(info *types.Info, body *ast.BlockStmt, post *ast.CallExpr) types.Object {
	var out types.Object
	shallowInspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || ast.Unparen(as.Rhs[0]) != ast.Expr(post) {
			return true
		}
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				out = obj
			} else if obj := info.Uses[id]; obj != nil {
				out = obj
			}
		}
		return out == nil
	})
	return out
}

// flagWindowViolations reports blocking operations and posted-buffer
// writes whose position falls inside the window.
func flagWindowViolations(pass *Pass, info *types.Info, body *ast.BlockStmt, w window) {
	openLine := pass.Fset.Position(w.openPos).Line
	shallowInspect(body, func(n ast.Node) bool {
		if n.Pos() <= w.lo || n.Pos() >= w.hi {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isMethodOn(info, n, mpiPath, "Comm", "Send"),
				isMethodOn(info, n, mpiPath, "Comm", "Recv"):
				pass.ReportSuppressiblef(n.Pos(), "overlap-ok",
					"blocking point-to-point call inside the overlap window opened at line %d serializes the exchange it should hide", openLine)
			case isMethodOn(info, n, mpiPath, "Comm", "AllReduceSum"),
				isMethodOn(info, n, mpiPath, "Comm", "AllReduceMax"),
				isMethodOn(info, n, mpiPath, "Comm", "Barrier"):
				pass.ReportSuppressiblef(n.Pos(), "overlap-ok",
					"collective inside the overlap window opened at line %d synchronizes all ranks mid-exchange", openLine)
			case isMethodOn(info, n, distPath, "Halo", "Exchange"):
				pass.ReportSuppressiblef(n.Pos(), "overlap-ok",
					"blocking Halo.Exchange inside the overlap window opened at line %d", openLine)
			case isBuiltinCall(info, n, "copy"):
				if obj, _ := lvalueBase(info, n.Args[0]); obj != nil && w.bufs[obj] {
					pass.ReportSuppressiblef(n.Pos(), "overlap-ok",
						"copy into buffer posted at line %d while the exchange is in flight; MPI_Isend buffers are off-limits until Wait", openLine)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj, _ := lvalueBase(info, lhs); obj != nil && w.bufs[obj] {
					pass.ReportSuppressiblef(n.Pos(), "overlap-ok",
						"write to buffer posted at line %d while the exchange is in flight; MPI_Isend buffers are off-limits until Wait", openLine)
				}
			}
		case *ast.SendStmt:
			pass.ReportSuppressiblef(n.Pos(), "overlap-ok",
				"raw channel send inside the overlap window opened at line %d", openLine)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.ReportSuppressiblef(n.Pos(), "overlap-ok",
					"raw channel receive inside the overlap window opened at line %d", openLine)
			}
		case *ast.SelectStmt:
			pass.ReportSuppressiblef(n.Pos(), "overlap-ok",
				"select inside the overlap window opened at line %d", openLine)
		}
		return true
	})
}

// checkLoopStaging flags the shared-staging-buffer hazard: a post
// inside a loop whose buffer is declared outside the loop and written
// inside it, with no matching wait in the loop — iteration i+1 then
// overwrites the buffer iteration i still has posted.
func checkLoopStaging(pass *Pass, info *types.Info, body *ast.BlockStmt, post *ast.CallExpr, bufs map[types.Object]bool) {
	loop := innermostLoop(body, post.Pos())
	if loop == nil || len(bufs) == 0 {
		return
	}
	for obj := range bufs {
		if obj.Pos() >= loop.Pos() && obj.Pos() < loop.End() {
			continue // rebound per iteration: each post owns a distinct buffer
		}
		written, waited := false, false
		ast.Inspect(loop, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if o, _ := lvalueBase(info, lhs); o == obj {
						written = true
					}
				}
			case *ast.CallExpr:
				if isBuiltinCall(info, n, "copy") {
					if o, _ := lvalueBase(info, n.Args[0]); o == obj {
						written = true
					}
				}
				if isWaitCall(info, n) {
					waited = true
				}
			}
			return true
		})
		if written && !waited {
			pass.ReportSuppressiblef(post.Pos(), "overlap-ok",
				"buffer %s is shared across loop iterations and repacked while a previous iteration's post may still be in flight; rebind a per-iteration buffer or Wait inside the loop", obj.Name())
		}
	}
}

// innermostLoop returns the smallest for/range statement in body whose
// extent contains pos, or nil.
func innermostLoop(body *ast.BlockStmt, pos token.Pos) ast.Node {
	var best ast.Node
	shallowInspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n.Pos() <= pos && pos < n.End() {
				if best == nil || (n.Pos() >= best.Pos() && n.End() <= best.End()) {
					best = n
				}
			}
		}
		return true
	})
	return best
}
