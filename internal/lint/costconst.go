package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

const machinePath = "petscfun3d/internal/machine"

// CostConst keeps the roofline accounting honest: flop and byte counts
// fed to the profiler (prof.Span.End) and to the virtual machine's cost
// charges (machine.Compute, machine.ComputeTimeDirect) must come from
// the central cost formulas — functions named *Flops/*Bytes (optionally
// *FlopsFor/*BytesFor), e.g. euler.EdgeFluxFlops, ilu.FactorFlopsFor,
// sparse.MulVecFlops — never from hand-rolled literals or ad-hoc
// arithmetic. A literal that drifts from the kernel it describes
// silently falsifies every Mflop/s and STREAM-fraction column in the
// measured tables; a formula is shared with the model and tested once.
// Zero is always allowed ("counts unknown; nested spans carry them").
var CostConst = &Analyzer{
	Name:      "costconst",
	Doc:       "flop/byte counts come from central *Flops/*Bytes cost formulas",
	Invariant: "Flop/byte counts are provenance-tracked: spans and the machine model charge named `*Flops`/`*Bytes` formulas, never hand-rolled literals.",
	Run:       runCostConst,
}

// costFormulaName matches the shared cost-formula naming convention.
var costFormulaName = regexp.MustCompile(`(Flops|Bytes)(For)?$`)

func runCostConst(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// The monitored cost sinks and their flop/byte argument
			// positions.
			var args []ast.Expr
			switch {
			case isMethodOn(info, call, profPath, "Span", "End") && len(call.Args) == 2:
				args = call.Args[0:2]
			case isMethodOn(info, call, machinePath, "Machine", "Compute") && len(call.Args) == 4:
				args = call.Args[1:3]
			case isMethodOn(info, call, machinePath, "Machine", "ComputeTimeDirect") && len(call.Args) == 3:
				args = call.Args[2:3]
			default:
				return true
			}
			for _, arg := range args {
				checkCostArg(pass, arg)
			}
			return true
		})
	}
}

func checkCostArg(pass *Pass, arg ast.Expr) {
	info := pass.Pkg.Info
	if tv, ok := info.Types[arg]; ok && tv.Value != nil {
		// Compile-time constant: only zero is an honest literal.
		if v, exact := constant.Int64Val(tv.Value); exact && v == 0 {
			return
		}
		pass.Reportf(arg.Pos(),
			"hand-rolled constant %s fed to a cost sink; derive it from a *Flops/*Bytes cost formula", tv.Value)
		return
	}
	// Non-constant: the expression must involve at least one call to a
	// cost formula so the count has a single tested source of truth.
	found := false
	ast.Inspect(arg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := calleeObject(info, call).(*types.Func); ok && costFormulaName.MatchString(fn.Name()) {
			found = true
		}
		return !found
	})
	if !found {
		pass.Reportf(arg.Pos(),
			"cost expression has no *Flops/*Bytes formula call; centralize the count in a cost function shared with the model")
	}
}
