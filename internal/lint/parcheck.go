package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const parPath = "petscfun3d/internal/par"

// The parcheck family (ownwrite, fixedreduce, poollife) analyzes the
// bodies dispatched through the par.Pool worker runtime. A pool task is
// a method
//
//	func (t *T) RunShard(worker, nworkers int)
//
// (the par.Task interface); its body runs concurrently on every worker,
// so the analyzers reason about two flow-insensitive facts per local
// object:
//
//   - owned: the value derives (transitively, through assignments,
//     range statements, and call results) from the worker-index
//     parameter — indices and subslices computed from it are the
//     shard's owned domain;
//   - shared: the value aliases storage reachable by every shard — the
//     task receiver's fields, package-level variables, and anything
//     re-sliced from them. Call results are deliberately not treated
//     as aliases (helpers like pooled-workspace getters return
//     per-worker storage the analysis cannot see into).
//
// shardCtx carries one RunShard body with both sets computed.
type shardCtx struct {
	decl   *ast.FuncDecl
	body   *ast.BlockStmt
	worker types.Object // the worker-index parameter
	recv   types.Object // the task receiver
	scope  *types.Scope // package scope: package-level vars are shared
	owned  map[types.Object]bool
	shared map[types.Object]bool
	// guards are source ranges under a worker-pinning condition
	// (if w == 0 { ... }, switch w { case 1: ... }): writes inside have
	// a unique owner even without an owned index.
	guards [][2]token.Pos
}

// collectShards finds every pool-task body in the package: method
// declarations named RunShard taking exactly two ints and returning
// nothing. Matching by shape rather than by interface satisfaction
// keeps fixtures self-contained and catches tasks that are built for
// the pool but not yet wired to it.
func collectShards(pass *Pass) []*shardCtx {
	info := pass.Pkg.Info
	var out []*shardCtx
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || fd.Name.Name != "RunShard" {
				continue
			}
			if fd.Type.Results != nil && len(fd.Type.Results.List) > 0 {
				continue
			}
			var params []*ast.Ident
			for _, fld := range fd.Type.Params.List {
				if b, ok := fld.Type.(*ast.Ident); !ok || b.Name != "int" {
					params = nil
					break
				}
				params = append(params, fld.Names...)
			}
			if len(params) != 2 {
				continue
			}
			sc := &shardCtx{decl: fd, body: fd.Body, scope: pass.Pkg.Types.Scope()}
			if params[0].Name != "_" {
				sc.worker = info.Defs[params[0]]
			}
			if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				sc.recv = info.Defs[fd.Recv.List[0].Names[0]]
			}
			sc.computeSets(info)
			sc.collectGuards(info)
			out = append(out, sc)
		}
	}
	return out
}

// rootIdentObj unwraps parens, indexing, slicing, field selection,
// dereference, and address-taking down to the identifier that names the
// storage an lvalue (or alias expression) is rooted at. It deliberately
// stops at calls: a call result is a fresh value, not an alias the
// analysis can track.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}

// mentionsAny reports whether e contains an identifier bound to any
// object in set.
func mentionsAny(info *types.Info, e ast.Expr, set map[types.Object]bool) bool {
	if e == nil || len(set) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && set[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isRefType reports whether t can alias other storage: slices, maps,
// pointers, and channels. Value copies (ints, floats, structs) sever
// sharing.
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	}
	return false
}

// sharedRoot reports whether obj names storage every shard can reach:
// the receiver, a package-level variable, or a local the shared set has
// absorbed.
func (sc *shardCtx) sharedRoot(obj types.Object) bool {
	if obj == nil {
		return false
	}
	if sc.shared[obj] {
		return true
	}
	if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Parent() == sc.scope {
		return true
	}
	return false
}

// computeSets runs the owned/shared fixpoint over every assignment,
// declaration, and range binding in the body (nested function literals
// included — they execute inline within the shard).
func (sc *shardCtx) computeSets(info *types.Info) {
	sc.owned = map[types.Object]bool{}
	sc.shared = map[types.Object]bool{}
	if sc.worker != nil {
		sc.owned[sc.worker] = true
	}
	if sc.recv != nil {
		sc.shared[sc.recv] = true
	}
	defObj := func(id *ast.Ident) types.Object {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	// propagate one binding lhs := rhs; returns true on set growth.
	bind := func(lhs *ast.Ident, rhs ast.Expr) bool {
		obj := defObj(lhs)
		if obj == nil || lhs.Name == "_" {
			return false
		}
		grew := false
		if !sc.owned[obj] && mentionsAny(info, rhs, sc.owned) {
			sc.owned[obj] = true
			grew = true
		}
		if !sc.shared[obj] && isRefType(obj.Type()) {
			if _, isCall := ast.Unparen(rhs).(*ast.CallExpr); !isCall {
				if root := rootIdentObj(info, rhs); sc.sharedRoot(root) {
					sc.shared[obj] = true
					grew = true
				}
			}
		}
		return grew
	}
	for grew := true; grew; {
		grew = false
		ast.Inspect(sc.body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && bind(id, n.Rhs[i]) {
							grew = true
						}
					}
				} else if len(n.Rhs) == 1 {
					// tuple from a call or comma-ok: owned flows, aliases don't.
					for _, lhs := range n.Lhs {
						id, ok := ast.Unparen(lhs).(*ast.Ident)
						if !ok || id.Name == "_" {
							continue
						}
						obj := defObj(id)
						if obj != nil && !sc.owned[obj] && mentionsAny(info, n.Rhs[0], sc.owned) {
							sc.owned[obj] = true
							grew = true
						}
					}
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != len(vs.Values) {
						continue
					}
					for i, id := range vs.Names {
						if bind(id, vs.Values[i]) {
							grew = true
						}
					}
				}
			case *ast.RangeStmt:
				xOwned := mentionsAny(info, n.X, sc.owned)
				xShared := sc.sharedRoot(rootIdentObj(info, n.X))
				for _, bound := range []ast.Expr{n.Key, n.Value} {
					id, ok := bound.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := defObj(id)
					if obj == nil {
						continue
					}
					if xOwned && !sc.owned[obj] {
						sc.owned[obj] = true
						grew = true
					}
					// Only the value variable of a range can alias, and only
					// when the elements themselves are references.
					if bound == n.Value && xShared && isRefType(obj.Type()) && !sc.shared[obj] {
						sc.shared[obj] = true
						grew = true
					}
				}
			}
			return true
		})
	}
}

// collectGuards records the ranges pinned to a single worker by an
// equality test on the worker parameter.
func (sc *shardCtx) collectGuards(info *types.Info) {
	if sc.worker == nil {
		return
	}
	isWorkerIdent := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == sc.worker
	}
	var condPins func(e ast.Expr) bool
	condPins = func(e ast.Expr) bool {
		switch b := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			switch b.Op {
			case token.LAND:
				return condPins(b.X) || condPins(b.Y)
			case token.EQL:
				return isWorkerIdent(b.X) || isWorkerIdent(b.Y)
			}
		}
		return false
	}
	ast.Inspect(sc.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if condPins(n.Cond) {
				sc.guards = append(sc.guards, [2]token.Pos{n.Body.Pos(), n.Body.End()})
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && isWorkerIdent(n.Tag) {
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok && cc.List != nil {
						sc.guards = append(sc.guards, [2]token.Pos{cc.Pos(), cc.End()})
					}
				}
			}
		}
		return true
	})
}

// guarded reports whether pos sits inside a worker-pinned range.
func (sc *shardCtx) guarded(pos token.Pos) bool {
	for _, g := range sc.guards {
		if g[0] <= pos && pos < g[1] {
			return true
		}
	}
	return false
}

// ownedAt reports whether the write expressed by e at pos is inside the
// shard's owned domain: some part of the lvalue derives from the worker
// index, or the write is pinned to a single worker by a guard.
func (sc *shardCtx) ownedAt(info *types.Info, e ast.Expr, pos token.Pos) bool {
	return mentionsAny(info, e, sc.owned) || sc.guarded(pos)
}
