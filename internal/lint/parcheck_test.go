package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// copySparseTo copies internal/sparse's non-test sources into dir,
// applying edit to each file's contents.
func copySparseTo(t *testing.T, root, dir string, edit func(string) string) {
	t.Helper()
	src := filepath.Join(root, "internal", "sparse")
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(edit(string(data))), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSeededMutationOwnWrite guards the ownwrite analyzer against
// silently going blind: it copies the real internal/sparse package,
// injects an out-of-stripe write into the pool task that the repository
// sweep certifies clean, and asserts the analyzer reports exactly that
// mutation. The pristine copy is checked first so a pass cannot come
// from the analyzer flagging everything.
func TestSeededMutationOwnWrite(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	ownwriteOnly := func(fs []Finding) []Finding {
		var out []Finding
		for _, f := range fs {
			if f.Analyzer == "ownwrite" {
				out = append(out, f)
			}
		}
		return out
	}

	pristineDir := t.TempDir()
	copySparseTo(t, root, pristineDir, func(s string) string { return s })
	pristine, err := l.LoadDir(pristineDir, "pristine/sparse")
	if err != nil {
		t.Fatal(err)
	}
	if fs := ownwriteOnly(Run(l.Fset, pristine, Config{}, Analyzers())); len(fs) > 0 {
		t.Fatalf("pristine sparse copy has ownwrite findings (control failed): %v", fs)
	}

	const shardHeader = "func (t *csrMulTask) RunShard(w, nw int) {"
	mutantDir := t.TempDir()
	mutated := false
	copySparseTo(t, root, mutantDir, func(s string) string {
		if strings.Contains(s, shardHeader) {
			mutated = true
			return strings.Replace(s, shardHeader, shardHeader+"\n\tt.y[0] = 0", 1)
		}
		return s
	})
	if !mutated {
		t.Fatalf("mutation site %q not found in internal/sparse; update the seeded-mutation test", shardHeader)
	}
	mutant, err := l.LoadDir(mutantDir, "mutant/sparse")
	if err != nil {
		t.Fatal(err)
	}
	fs := ownwriteOnly(Run(l.Fset, mutant, Config{}, Analyzers()))
	if len(fs) != 1 {
		t.Fatalf("seeded out-of-stripe write: got %d ownwrite findings, want 1: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Message, "outside the shard's owned index domain") {
		t.Errorf("seeded mutation reported as %q; want the out-of-stripe message", fs[0].Message)
	}
}

// TestParcheckFixturesFailAlone pins the exit-1 half of the CLI
// contract for the new family: on each negative fixture, the named
// analyzer itself produces findings, so `fun3dlint -only <analyzer>`
// would exit 1 there (the exit-0 half over the repository is
// TestRepositoryLintsClean).
func TestParcheckFixturesFailAlone(t *testing.T) {
	for _, name := range []string{"ownwrite", "fixedreduce", "poollife"} {
		t.Run(name, func(t *testing.T) {
			n := 0
			for _, f := range runFixture(t, name, false) {
				if f.Analyzer == name {
					n++
				}
			}
			if n == 0 {
				t.Fatalf("fixture %s produced no %s findings; fun3dlint -only %s would exit 0 on its negative fixture", name, name, name)
			}
		})
	}
}

// lintWallBudget is the generous ceiling on one whole-suite source
// analysis of the repository (codegen's compiler replay excluded — it
// is budgeted by its own CI job). The suite currently runs in a few
// seconds; the ceiling exists so analyzer growth cannot quietly bloat
// the verify gate.
const lintWallBudget = 120 * time.Second

// TestLintSuiteWallTime is the wall-time guard on the static gate.
func TestLintSuiteWallTime(t *testing.T) {
	if testing.Short() {
		t.Skip("times a whole-repository analysis; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := RunPatterns(root, []string{"./..."}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > lintWallBudget {
		t.Fatalf("whole-suite lint took %v, over the %v budget; an analyzer has gotten pathologically slow", d, lintWallBudget)
	}
}
