package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const profPath = "petscfun3d/internal/prof"

// ProfSpan keeps the measured phase profile honest: every prof span
// opened with Begin must be closed with End on all paths (a leaked span
// corrupts the nesting stack, so every ancestor phase's self-time
// silently vanishes from the report), and the phase argument must be
// one of the canonical prof.Phase constants, whose names and
// compute/scatter/reduce categories are the single taxonomy shared with
// the internal/machine cost model. Because phases can only be named by
// those constants, the modeled-vs-measured tables cannot drift.
var ProfSpan = &Analyzer{
	Name:      "profspan",
	Doc:       "prof spans close on all paths and use canonical phase constants",
	Invariant: "The phase decomposition is a partition: every `prof.Begin` reaches `End` on all paths and names a canonical phase, so self/cumulative times add up.",
	Run:       runProfSpan,
}

func runProfSpan(pass *Pass) {
	if pass.Pkg.Path == profPath {
		return // the instrumentation layer itself
	}
	for _, f := range pass.Pkg.Files {
		eachFuncBody(f, func(body *ast.BlockStmt) {
			checkSpans(pass, body)
		})
	}
}

// isBeginCall reports whether call is prof.(*Profiler).Begin or the
// package-level prof.Begin (anything returning a prof.Span from a
// callee named Begin).
func isBeginCall(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Expr(call)]
	if !ok || !isNamedType(tv.Type, profPath, "Span") {
		return false
	}
	fn, ok := calleeObject(info, call).(*types.Func)
	return ok && fn.Name() == "Begin"
}

func checkSpans(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Span variables bound directly in this function (literals nested in
	// the body are analyzed as their own functions).
	type span struct {
		obj types.Object
		pos token.Pos
	}
	var spans []span
	bound := map[*ast.CallExpr]bool{}
	shallowInspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isBeginCall(info, call) {
			return true
		}
		bound[call] = true
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			pass.Reportf(call.Pos(), "prof span must be bound to a local variable so Begin/End pairing can be checked")
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			spans = append(spans, span{obj: obj, pos: call.Pos()})
		}
		return true
	})

	// Any Begin in this function not bound above (dropped on the floor,
	// passed as an argument, chained) defeats pairing analysis.
	shallowInspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBeginCall(info, call) && !bound[call] {
			pass.Reportf(call.Pos(), "prof span must be bound to a local variable so Begin/End pairing can be checked")
		}
		return true
	})

	// Canonical-phase check on every Begin argument.
	shallowInspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBeginCall(info, call) || len(call.Args) != 1 {
			return true
		}
		if !isCanonicalPhase(info, call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(),
				"phase must be a canonical prof.Phase constant (the taxonomy shared with internal/machine), not an ad-hoc expression")
		}
		return true
	})

	for _, sp := range spans {
		checkSpanClosure(pass, body, sp.obj, sp.pos)
	}
}

// isCanonicalPhase reports whether e names one of the prof.Phase
// constants.
func isCanonicalPhase(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := info.Uses[id].(*types.Const)
	return ok && c.Pkg() != nil && c.Pkg().Path() == profPath && isNamedType(c.Type(), profPath, "Phase")
}

// checkSpanClosure verifies that the span variable obj, opened at
// beginPos, is closed on all paths out of body: either an End reached
// through a defer, or an End with no early return between Begin and End
// (a return directly preceded by the End call is paired).
func checkSpanClosure(pass *Pass, body *ast.BlockStmt, obj types.Object, beginPos token.Pos) {
	info := pass.Pkg.Info
	isEndCall := func(n ast.Node) *ast.CallExpr {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return nil
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return nil
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return nil
		}
		return call
	}

	// Deep walk (into literals: `defer func() { sp.End(...) }()` is a
	// valid closure over the span) classifying End calls by whether a
	// defer guards them.
	var deferred bool
	var lastEnd token.Pos
	found := false
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		if n == nil {
			return
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			walk(d.Call, true)
			return
		}
		if call := isEndCall(n); call != nil {
			found = true
			if inDefer {
				deferred = true
			}
			if call.End() > lastEnd {
				lastEnd = call.End()
			}
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n || m == nil {
				return m == n
			}
			walk(m, inDefer)
			return false
		})
	}
	walk(body, false)

	if !found {
		pass.Reportf(beginPos, "prof span is never closed with End; the phase profile will leak this span")
		return
	}
	if deferred {
		return
	}
	// No defer: any return between Begin and the final End escapes with
	// the span open, unless the End call directly precedes it.
	shallowInspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= beginPos || ret.Pos() >= lastEnd {
			return true
		}
		if returnPrecededByEnd(body, ret, isEndCall) {
			return true
		}
		pass.Reportf(ret.Pos(), "return may leave prof span opened at line %d unclosed; call End before returning or use defer",
			pass.Fset.Position(beginPos).Line)
		return true
	})
}

// returnPrecededByEnd reports whether the statement immediately before
// ret in its enclosing statement list is a call to the span's End.
func returnPrecededByEnd(body *ast.BlockStmt, ret *ast.ReturnStmt, isEndCall func(ast.Node) *ast.CallExpr) bool {
	ok := false
	shallowInspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, st := range list {
			if st == ast.Stmt(ret) && i > 0 {
				if es, isExpr := list[i-1].(*ast.ExprStmt); isExpr && isEndCall(es.X) != nil {
					ok = true
				}
			}
		}
		return true
	})
	return ok
}
