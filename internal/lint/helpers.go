package lint

import (
	"go/ast"
	"go/types"
)

// eachFuncBody invokes fn once per function body in the file: every
// declared function or method and every function literal. Bodies are
// analyzed independently — a literal's statements belong to the
// literal, not to its enclosing function.
func eachFuncBody(f *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Body)
			}
		case *ast.FuncLit:
			fn(n.Body)
		}
		return true
	})
}

// shallowInspect walks the subtree rooted at n like ast.Inspect but
// does not descend into nested function literals: the *ast.FuncLit node
// itself is visited, its body is not.
func shallowInspect(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if !f(m) {
			return false
		}
		if _, isLit := m.(*ast.FuncLit); isLit && m != n {
			return false
		}
		return true
	})
}

// calleeObject resolves the object a call expression invokes (function,
// method, or builtin), or nil for type conversions and indirect calls
// through expressions.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	b, ok := calleeObject(info, call).(*types.Builtin)
	return ok && b.Name() == name
}

// isNamedType reports whether t (or the type it points to) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isMethodOn reports whether call invokes a method with the given name
// whose receiver is the named type pkgPath.recvName.
func isMethodOn(info *types.Info, call *ast.CallExpr, pkgPath, recvName, method string) bool {
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != method {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedType(sig.Recv().Type(), pkgPath, recvName)
}

// isFloat reports whether t's underlying type is a floating-point
// scalar.
func isFloat(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
