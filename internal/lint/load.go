package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit the analyzers
// run over. Test files (_test.go) are excluded — tests are allowed to
// allocate, panic, and hand-roll counts.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages using only the standard
// library: module-internal imports are resolved from source against the
// module root, everything else through the stdlib source importer
// (GOROOT). No network, no go command, no external dependencies — the
// loader works in the same offline sandbox the build does.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleRoot string

	std       types.ImporterFrom
	pkgs      map[string]*Package       // fully loaded module packages
	typecache map[string]*types.Package // all successfully imported packages
	loading   map[string]bool           // cycle detection
}

// NewLoader creates a loader for the module rooted at root (the
// directory containing go.mod).
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:       fset,
		ModulePath: mod,
		ModuleRoot: root,
		std:        std,
		pkgs:       map[string]*Package{},
		typecache:  map[string]*types.Package{},
		loading:    map[string]bool{},
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load loads the module package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return l.LoadDir(filepath.Join(l.ModuleRoot, rel), path)
}

// LoadDir parses and type-checks the non-test Go files of dir as the
// package with the given import path (used both for module packages and
// for test fixtures outside the module tree).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	l.typecache[path] = tpkg
	return p, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from source under the module root, all others through the stdlib
// source importer.
func (l *Loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if t, ok := l.typecache[path]; ok {
		return t, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	t, err := l.std.ImportFrom(path, srcDir, 0)
	if err != nil {
		return nil, err
	}
	l.typecache[path] = t
	return t, nil
}

// ExpandPatterns resolves package patterns relative to the module root:
// "./..." (everything), "dir/..." (a subtree), or a plain package
// directory. Directories named testdata, vendor, or starting with "." or
// "_" are skipped, matching the go tool's convention.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := filepath.Join(l.ModuleRoot, strings.TrimPrefix(rest, "./"))
			err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != base && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(p) {
					add(p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := filepath.Join(l.ModuleRoot, strings.TrimPrefix(pat, "./"))
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		add(dir)
	}
	sort.Strings(dirs)
	paths := make([]string, len(dirs))
	for i, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			paths[i] = l.ModulePath
		} else {
			paths[i] = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
	}
	return paths, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
