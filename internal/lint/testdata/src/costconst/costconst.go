// Package costconst is a lint fixture: flop/byte counts fed to the
// profiler must come from named cost formulas.
package costconst

import "petscfun3d/internal/prof"

func sweepFlops(n int) int64 { return 2 * int64(n) }
func sweepBytes(n int) int64 { return 16 * int64(n) }

func formulas(n int) {
	sp := prof.Begin(prof.PhaseTriSolve)
	sp.End(sweepFlops(n), sweepBytes(n))
}

func zeroIsHonest() {
	sp := prof.Begin(prof.PhaseScatter)
	sp.End(0, 0)
}

func scaledFormulaIsFine(n, reps int) {
	sp := prof.Begin(prof.PhaseMatVec)
	sp.End(int64(reps)*sweepFlops(n), int64(reps)*sweepBytes(n))
}

func handRolledExpression(n int) {
	sp := prof.Begin(prof.PhaseMatVec)
	sp.End(int64(2*n), sweepBytes(n)) // want "no .Flops/.Bytes formula call"
}

func handRolledLiteral(n int) {
	sp := prof.Begin(prof.PhaseReduce)
	sp.End(100, sweepBytes(n)) // want "hand-rolled constant 100"
}
