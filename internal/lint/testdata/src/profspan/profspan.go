// Package profspan is a lint fixture: prof span Begin/End pairing and
// canonical phase names.
package profspan

import "petscfun3d/internal/prof"

func deferred() {
	sp := prof.Begin(prof.PhaseFlux)
	defer sp.End(0, 0)
}

func deferredInLiteral() {
	sp := prof.Begin(prof.PhaseJacobian)
	defer func() { sp.End(0, 0) }()
}

func sequential(n int) int {
	sp := prof.Begin(prof.PhaseOrtho)
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	sp.End(0, 0)
	return s
}

func endDirectlyBeforeReturn(cond bool) int {
	sp := prof.Begin(prof.PhaseKrylov)
	if cond {
		sp.End(0, 0)
		return 1
	}
	sp.End(0, 0)
	return 0
}

func leakyEarlyReturn(err error) error {
	sp := prof.Begin(prof.PhaseKrylov)
	if err != nil {
		return err // want "return may leave prof span"
	}
	sp.End(0, 0)
	return nil
}

func neverClosed() {
	sp := prof.Begin(prof.PhaseFlux) // want "never closed"
	_ = sp
}

func unbound() {
	prof.Begin(prof.PhaseFlux) // want "must be bound to a local variable"
}

func adHocPhase() {
	sp := prof.Begin(prof.Phase(42)) // want "canonical prof.Phase constant"
	sp.End(0, 0)
}
