// Package tagconst exercises the tagconst analyzer: message tags must
// come from the mpi registry and be used symmetrically per package.
package tagconst

import "petscfun3d/internal/mpi"

// localTag is an ad-hoc tag outside the registry namespace.
const localTag mpi.Tag = 7 // want "declared outside the registry"

// literal: an untyped constant tag bypasses the registry.
func literal(c *mpi.Comm, buf []float64) {
	c.Send(1, 3, buf) // want "does not trace to the"
}

// converted: a runtime conversion bypasses the registry.
func converted(c *mpi.Comm, buf []float64, k int) {
	c.Send(1, mpi.Tag(k), buf) // want "runtime conversion to mpi.Tag"
}

// arithmetic on a registry constant is still ad-hoc.
func arithmetic(c *mpi.Comm) ([]float64, error) {
	return c.Recv(0, mpi.TagPlan+1) // want "arithmetic on message tags"
}

// adHoc uses the constant declared outside the registry.
func adHoc(c *mpi.Comm, buf []float64) {
	c.Send(1, localTag, buf) // want "not a registry constant"
}

// asymmetric: TagHalo is sent but never received in this package and
// never plumbed anywhere else.
func asymmetric(c *mpi.Comm, buf []float64) {
	c.Send(1, mpi.TagHalo, buf) // want "used by sends but never by receives"
}

// symmetric: TagPlan appears on both sides, so no finding (the
// arithmetic use above also counts as plumbing).
func symmetric(c *mpi.Comm, buf []float64) ([]float64, error) {
	c.Send(1, mpi.TagPlan, buf)
	return c.Recv(1, mpi.TagPlan)
}

// xplan plumbs its tag through a field — the sanctioned pattern for
// persistent plans; a field read is not a registry violation.
type xplan struct {
	tag mpi.Tag
}

func newXPlan(tag mpi.Tag) *xplan { return &xplan{tag: tag} }

func (x *xplan) roundTrip(c *mpi.Comm, buf []float64) ([]float64, error) {
	c.Send(1, x.tag, buf)
	return c.Recv(1, x.tag)
}

// param plumbing is equally fine.
func viaParam(c *mpi.Comm, tag mpi.Tag, buf []float64) ([]float64, error) {
	c.Send(1, tag, buf)
	return c.Recv(1, tag)
}

// suppressed: a deliberate ad-hoc tag carries the pragma.
func suppressed(c *mpi.Comm, buf []float64) {
	c.Send(1, 99, buf) //lint:tag-ok fixture: deliberate ad-hoc tag to test suppression
}
