// Package pragmahygiene is a lint fixture: every pragma defect is a
// finding (expected findings are asserted by TestPragmaHygiene).
package pragmahygiene

//lint:frobnicate this key does not exist
func unknownKey() {}

func missingReason(n int) {
	if n < 0 {
		//lint:panic-ok
		panic("negative")
	}
}

//lint:alloc-ok this pragma sits on a line that has no finding
func unusedPragma() {}
