// Package hotalloc is a lint fixture: allocation discipline in a hot
// package. Lines carry want-comment expectations.
package hotalloc

func loops(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)                             // want "append growth in a hot loop body"
		buf := make([]float64, n)                        // want "make in a hot loop body"
		m := map[int]bool{i: true}                       // want "map literal allocated in a hot loop body"
		f := func() int { return i + len(buf) + len(m) } // want "closure allocated in a hot loop body"
		_ = f()
	}
	for range out {
		_ = make([]int, 1) // want "make in a hot loop body"
	}
	return out
}

func setupIsFine(n int) []int {
	pre := make([]int, 0, n) // allocation outside any loop: fine
	for i := 0; i < n; i++ {
		pre = append(pre, i) //lint:alloc-ok fixture: grown once at setup, exercised by the suppression test
	}
	return pre
}

func literalLoopIsItsOwnFunction(n int) func() []int {
	// The literal's loop belongs to the literal, not to this function.
	return func() []int {
		var out []int
		for i := 0; i < n; i++ {
			out = append(out, i) // want "append growth in a hot loop body"
		}
		return out
	}
}
