// Package ownwrite exercises the ownwrite analyzer: inside a pool
// task (a RunShard method), every store to shared storage must be
// indexed through the shard's owned range. The task types are
// self-contained — the analyzer matches RunShard by shape.
package ownwrite

// striped is the sanctioned owner-computes shape: stripe bounds derive
// from the worker index, so every write lands in the shard's own rows.
type striped struct {
	bounds []int32
	x, y   []float64
}

func (t *striped) RunShard(w, nw int) {
	lo, hi := int(t.bounds[w]), int(t.bounds[w+1])
	for i := lo; i < hi; i++ {
		t.y[i] = 2 * t.x[i]
	}
}

// outOfStripe writes a fixed element of the shared output from every
// worker.
type outOfStripe struct {
	y []float64
}

func (t *outOfStripe) RunShard(w, nw int) {
	t.y[0] = 1 // want "write to shared t outside the shard's owned index domain"
}

// sharedScalar bumps a field every shard can reach.
type sharedScalar struct {
	count int
	done  bool
}

func (t *sharedScalar) RunShard(w, nw int) {
	t.count++ // want "write to shared field t.count races across shards"
	if w == 0 {
		t.done = true // pinned to one worker: ok
	}
}

// sharedMap mutates a map; maps tolerate no concurrent writers, owned
// keys or not.
type sharedMap struct {
	m    map[int]float64
	keys []int
}

func (t *sharedMap) RunShard(w, nw int) {
	t.m[t.keys[w]] = 1 // want "mutation of shared map t inside a pool task"
	delete(t.m, w)     // want "delete from shared map t inside a pool task"
}

// appender grows shared storage mid-sweep.
type appender struct {
	out []float64
}

func (t *appender) RunShard(w, nw int) {
	t.out = append(t.out, float64(w)) // want "append to shared slice t inside a pool task"
}

// copies: copy must target a shard-derived subslice.
type copies struct {
	src, dst []float64
}

func (t *copies) RunShard(w, nw int) {
	n := len(t.src)
	lo, hi := n*w/nw, n*(w+1)/nw
	copy(t.dst[lo:hi], t.src[lo:hi])
	copy(t.dst, t.src) // want "copy into shared t outside the shard's owned index domain"
}

func fill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// callee: handing shared storage to a helper without any shard-derived
// argument gives the callee no owned range to stay inside.
type callee struct {
	y []float64
}

func (t *callee) RunShard(w, nw int) {
	n := len(t.y)
	fill(t.y[n*w/nw:n*(w+1)/nw], 1)
	fill(t.y, 0) // want "shared t passed to a callee with no shard-derived argument"
	if w == 0 {
		fill(t.y, 0) // pinned to one worker: ok
	}
}

func maxpyStripe(alphas []float64, vs [][]float64, y []float64, lo, hi int) {
	for k, v := range vs {
		a := alphas[k]
		for i := lo; i < hi; i++ {
			y[i] += a * v[i]
		}
	}
}

// fusedAxpy is the MAxpy shape: one read-modify-write sweep of shared y
// applying every vector, element-striped through shard-derived bounds.
// Handing the callee the whole of y with no shard-derived argument
// gives it no owned range to stay inside.
type fusedAxpy struct {
	alphas []float64
	vs     [][]float64
	y      []float64
}

func (t *fusedAxpy) RunShard(w, nw int) {
	n := len(t.y)
	maxpyStripe(t.alphas, t.vs, t.y, n*w/nw, n*(w+1)/nw)
	maxpyStripe(t.alphas, t.vs, t.y, 0, n) // want "shared t passed to a callee with no shard-derived argument"
}

// scratch: a call result is fresh per-worker storage, not an alias of
// anything shared — writing through it is fine.
type scratch struct {
	bounds []int32
}

func (t *scratch) getBuf() []float64 { return make([]float64, 8) }

func (t *scratch) RunShard(w, nw int) {
	buf := t.getBuf()
	buf[0] = float64(w)
	fill(buf, 1)
}

// suppressed: a deliberate shared write carries the pragma.
type suppressed struct {
	probe []float64
}

func (t *suppressed) RunShard(w, nw int) {
	t.probe[0] = 1 //lint:own-ok fixture: deliberate shared probe write to test suppression
}
