// Package errcheck is a lint fixture: dropped errors and library
// panics.
package errcheck

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func drops() {
	mayFail() // want "error return silently dropped"
}

func acknowledged() {
	_ = mayFail() // explicit discard: fine
}

func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

func errorFreeWriters() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "x=%d\n", 1) // strings.Builder never fails: fine
	sb.WriteString("y\n")
	return sb.String()
}

func panics() {
	panic("no") // want "panic in library code"
}

func justifiedPanic(n int) {
	if n < 0 {
		//lint:panic-ok fixture: documented precondition, exercised by the suppression test
		panic("negative n")
	}
}
