// Package rangegenerics exercises the loader against the post-go1.21
// language surface the repo is allowed to adopt: go1.22 range-over-int
// loops and aliases of instantiated generic types. A toolchain bump
// that broke the offline source importer on either would take all the
// analyzers down with it; the loader test pins that it keeps working.
package rangegenerics

// Pair is a generic type with methods, instantiated through an alias.
type Pair[T any] struct {
	a, b T
}

// First returns the first element.
func (p Pair[T]) First() T { return p.a }

// Second returns the second element.
func (p Pair[T]) Second() T { return p.b }

// IntPair aliases the int instantiation: the importer must resolve the
// alias to the same instantiated named type everywhere it appears.
type IntPair = Pair[int]

// FloatPair aliases the float64 instantiation.
type FloatPair = Pair[float64]

// Iota builds n pairs with a go1.22 range-over-int loop (the loop
// variable ranges over 0..n-1 with no slice in sight).
func Iota(n int) []IntPair {
	out := make([]IntPair, n)
	for i := range n {
		out[i] = IntPair{a: i, b: i * i}
	}
	return out
}

// SumFirsts reduces through the alias; the loop is another
// range-over-int so the type checker sees both forms in one package.
func SumFirsts(ps []IntPair) int {
	var s int
	for i := range len(ps) {
		s += ps[i].First()
	}
	return s
}

// Swap is a generic function returning the aliased type, so the
// instantiation flows through a type argument inferred at an aliased
// call site.
func Swap[T any](p Pair[T]) Pair[T] {
	return Pair[T]{a: p.b, b: p.a}
}

// swapped forces an instantiation of Swap at the alias type.
var swapped = Swap(FloatPair{a: 1.5, b: 2.5})
