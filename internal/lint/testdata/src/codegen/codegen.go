// Package codegen is the fixture for the codegen conformance analyzer:
// HotKernel carries one injected heap escape, one stack variable forced
// to the heap, and one bounds check surviving in an innermost loop;
// bigHelper is on the must-inline list but cannot inline (recursive);
// tinyHelper satisfies its must-inline entry. The data-dependent gather
// loop carries an audited bce-ok pragma and must stay silent.
package codegen // want "codegen budget names hot function vanished which no longer exists"

var (
	sinkSlice []float64
	sinkPtr   *[4]float64
	sinkFloat float64
)

// HotKernel is the budgeted hot function.
func HotKernel(xs, ys []float64, idx []int32, n int) {
	var scratch [4]float64 // want "hot kernel HotKernel: moved to heap: scratch"
	scratch[0] = 1
	sinkPtr = &scratch

	for pass := 0; pass < 2; pass++ {
		buf := make([]float64, 4) // want "hot kernel HotKernel: make..]float64, 4. escapes to heap inside its loop"
		buf[0] = float64(pass)
		sinkSlice = buf
	}

	var s float64
	for i := 0; i < n; i++ {
		s += xs[i] // want "hot kernel HotKernel: bounds check survives in an innermost loop"
	}

	for i := 0; i < n && i < len(xs); i++ {
		s += ys[idx[i]] //lint:bce-ok data-dependent gather through the edge index; no length relation is provable
	}
	sinkFloat = s + tinyHelper(s, s) + bigHelper(3)
}

// tinyHelper inlines; its must-inline entry is satisfied.
func tinyHelper(a, b float64) float64 { return a*b + b }

// bigHelper is recursive, so the compiler refuses to inline it.
func bigHelper(n int) float64 { // want "must-inline helper bigHelper"
	if n <= 0 {
		return 1
	}
	return 1.5 * bigHelper(n-1)
}
