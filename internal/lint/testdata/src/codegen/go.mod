module fixture/codegen

go 1.22
