// Package costsync exercises the costsync analyzer: the registry in
// internal/lint/costsync.go pins Dot to dotFlops (which deliberately
// overcharges — a finding), Axpy to axpyFlops (correct — silent), and
// fullFlops to subsetFlops (deliberately unequal — a finding).
package costsync

// Dot does 2 flops per element; dotFlops below claims 3.
func Dot(x, y []float64) float64 { // want "does 2 flops per unit of n .* charges 3"
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// dotFlops deliberately disagrees with the kernel above.
func dotFlops(n int) int64 { return 3 * int64(n) }

// Axpy does 2 flops per element; axpyFlops agrees.
func Axpy(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

func axpyFlops(n int) int64 { return 2 * int64(n) }

// fullFlops and subsetFlops model a full sweep and the subset sweep
// covering it; they must agree, and deliberately do not.
func fullFlops(edges int) int64 { return 10 * int64(edges) }

func subsetFlops(nEdges int) int64 { return 12 * int64(nEdges) } // want "disagree under matched assignments"
