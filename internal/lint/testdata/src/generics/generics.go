// Package generics exercises the loader: type parameters, constraint
// interfaces, instantiation, and the sync/atomic claim pattern the mpi
// Request uses — all must type-check through the offline source
// importer and produce complete type info for the analyzers.
package generics

import "sync/atomic"

// number is a constraint interface with a union of underlying types.
type number interface {
	~int | ~int64 | ~float64
}

// Sum is a generic reduction; the analyzers must see through the
// instantiated types without misclassifying the type parameter as a
// float.
func Sum[T number](xs []T) T {
	var s T
	for _, x := range xs {
		s += x
	}
	return s
}

// pair is a generic type with a method.
type pair[K comparable, V any] struct {
	key K
	val V
}

func (p pair[K, V]) Key() K { return p.key }

// request mirrors mpi.Request's lock-free claim: exactly one of the
// helper goroutine and Wait wins the CAS.
type request struct {
	claimed int32
	done    chan struct{}
}

func (r *request) claim() bool {
	return atomic.CompareAndSwapInt32(&r.claimed, 0, 1)
}

func (r *request) wait() {
	if r.claim() {
		close(r.done)
	}
	<-r.done
}

// use instantiates everything so the loader records Instances.
func use() (int, float64, string) {
	a := Sum([]int{1, 2, 3})
	b := Sum([]float64{1.5, 2.5})
	p := pair[string, int]{key: "k", val: 1}
	r := &request{done: make(chan struct{})}
	r.wait()
	return a, b, p.Key()
}
