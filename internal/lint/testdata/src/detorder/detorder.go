// Package detorder is a lint fixture: floating-point accumulation
// ordered by map iteration.
package detorder

import "sort"

func nondeterministic(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "nondeterministic"
	}
	return sum
}

func nondeterministicInClosure(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		func(x float64) {
			sum -= x // want "nondeterministic"
		}(v)
	}
	return sum
}

func integerCountIsFine(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func sortedKeysAreFine(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}
