// Package reqwait exercises the reqwait analyzer: every nonblocking
// mpi request must reach a Wait on all paths. Tags are plumbed through
// parameters so the tagconst analyzer stays silent.
package reqwait

import "petscfun3d/internal/mpi"

// dropped: the request never binds to anything.
func dropped(c *mpi.Comm, tag mpi.Tag, buf []float64) {
	c.ISend(1, tag, buf) // want "dropped or passed through an untracked expression"
}

// blanked: an explicit discard is still a leak.
func blanked(c *mpi.Comm, tag mpi.Tag, buf []float64) {
	_ = c.ISend(1, tag, buf) // want "discarded to blank"
}

// neverWaited: bound but never completed.
func neverWaited(c *mpi.Comm, tag mpi.Tag) *mpi.Request {
	req := c.IRecv(0, tag) // want "never Waited"
	other := c.IRecv(2, tag)
	_ = req
	return other // returning hands the obligation to the caller: ok
}

// escapes: an early return leaves the request outstanding.
func escapes(c *mpi.Comm, tag mpi.Tag, buf []float64, bail bool) {
	req := c.ISend(1, tag, buf)
	if bail {
		return // want "may leave the mpi request posted"
	}
	_, _ = req.Wait()
}

// guardedReturn: a Wait directly before the return closes the path.
func guardedReturn(c *mpi.Comm, tag mpi.Tag, buf []float64, bail bool) {
	req := c.ISend(1, tag, buf)
	if bail {
		_, _ = req.Wait()
		return
	}
	_, _ = req.Wait()
}

// deferred: a deferred Wait closes every path.
func deferred(c *mpi.Comm, tag mpi.Tag, bail bool) {
	req := c.IRecv(0, tag)
	defer req.Wait()
	if bail {
		return
	}
}

// chained: immediate completion.
func chained(c *mpi.Comm, tag mpi.Tag) ([]float64, error) {
	return c.IRecv(0, tag).Wait()
}

// drained: requests collected in a local slice and drained before
// returning.
func drained(c *mpi.Comm, tag mpi.Tag, peers []int, buf []float64) {
	var reqs []*mpi.Request
	for _, q := range peers {
		reqs = append(reqs, c.ISend(q, tag, buf))
	}
	for _, r := range reqs {
		_, _ = r.Wait()
	}
}

// undrained: the container is filled but never emptied.
func undrained(c *mpi.Comm, tag mpi.Tag, peers []int, buf []float64) {
	var reqs []*mpi.Request
	for _, q := range peers {
		reqs = append(reqs, c.ISend(q, tag, buf)) // want "never Waited in this function"
	}
}

// plan mimics the persistent-exchange idiom: requests stored in struct
// fields must be Waited somewhere in the package.
type plan struct {
	recv *mpi.Request
	send *mpi.Request
}

func (p *plan) post(c *mpi.Comm, tag mpi.Tag, buf []float64) {
	p.recv = c.IRecv(0, tag)
	p.send = c.ISend(1, tag, buf) // want "stored in field send is never Waited anywhere"
}

func (p *plan) finish() ([]float64, error) {
	return p.recv.Wait()
}

// abortBail: the cancellation path — a failed Wait (the world was
// cancelled under the exchange) bails while the peer request is still
// posted. The runtime now reports the rank as leaking a request in
// flight, so the analyzer must catch the shape statically too.
func abortBail(c *mpi.Comm, tag mpi.Tag) error {
	r1 := c.IRecv(0, tag)
	r2 := c.IRecv(2, tag)
	if _, err := r1.Wait(); err != nil {
		return err // want "may leave the mpi request posted"
	}
	_, _ = r2.Wait()
	return nil
}

// abortDeferDrain: the sanctioned cancellation idiom — a deferred Wait
// drains the peer request even when the first Wait propagates the
// abort. Wait on a cancelled world returns immediately, so the defer
// cannot hang.
func abortDeferDrain(c *mpi.Comm, tag mpi.Tag) error {
	r1 := c.IRecv(0, tag)
	r2 := c.IRecv(2, tag)
	defer r2.Wait()
	if _, err := r1.Wait(); err != nil {
		return err
	}
	return nil
}

// abortDrainAll: drain-then-report — every request is Waited before the
// first abort error propagates, so nothing stays posted.
func abortDrainAll(c *mpi.Comm, tag mpi.Tag, peers []int, buf []float64) error {
	var reqs []*mpi.Request
	for _, q := range peers {
		reqs = append(reqs, c.ISend(q, tag, buf))
	}
	var firstErr error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// suppressed: a deliberate fire-and-forget carries the pragma.
func suppressed(c *mpi.Comm, tag mpi.Tag, buf []float64) {
	c.ISend(1, tag, buf) //lint:wait-ok fixture: deliberate fire-and-forget to test suppression
}
