// Package overlapregion exercises the overlapregion analyzer: the
// window between posting a nonblocking exchange and waiting on it must
// stay free of blocking operations and posted-buffer writes.
package overlapregion

import (
	"petscfun3d/internal/dist"
	"petscfun3d/internal/mpi"
	"petscfun3d/internal/prof"
)

// blockingSend serializes the exchange the window should hide.
func blockingSend(c *mpi.Comm, h *dist.Halo, p *prof.Profiler, tag mpi.Tag, x, buf []float64) error {
	if err := h.Start(p, x); err != nil {
		return err
	}
	c.Send(1, tag, buf) // want "blocking point-to-point call inside the overlap window"
	return h.Finish(p, x)
}

// collective synchronizes all ranks mid-exchange.
func collective(c *mpi.Comm, h *dist.Halo, p *prof.Profiler, x []float64) error {
	if err := h.Start(p, x); err != nil {
		return err
	}
	_ = c.AllReduceSum(1) // want "collective inside the overlap window"
	return h.Finish(p, x)
}

// postedWrite touches the vector the halo is filling.
func postedWrite(h *dist.Halo, p *prof.Profiler, x []float64) error {
	if err := h.Start(p, x); err != nil {
		return err
	}
	x[0] = 1 // want "write to buffer posted"
	return h.Finish(p, x)
}

// interiorCompute is the sanctioned overlap: work on other data only.
func interiorCompute(h *dist.Halo, p *prof.Profiler, x, y []float64) error {
	if err := h.Start(p, x); err != nil {
		return err
	}
	for i := range y {
		y[i] = 2 * y[i]
	}
	return h.Finish(p, x)
}

// channelOp: raw channel traffic can deadlock against the fabric.
func channelOp(c *mpi.Comm, tag mpi.Tag, buf []float64, ch chan int) {
	req := c.ISend(1, tag, buf)
	ch <- 1 // want "raw channel send inside the overlap window"
	_, _ = req.Wait()
}

// isendBufferWrite: MPI_Isend buffers are off-limits until Wait.
func isendBufferWrite(c *mpi.Comm, tag mpi.Tag, buf []float64) {
	req := c.ISend(1, tag, buf)
	buf[0] = 2 // want "write to buffer posted"
	_, _ = req.Wait()
}

// afterWait: once the request completes the buffer is free again.
func afterWait(c *mpi.Comm, tag mpi.Tag, buf []float64) {
	req := c.ISend(1, tag, buf)
	_, _ = req.Wait()
	buf[0] = 2
	c.Send(1, tag, buf)
	_, _ = c.Recv(1, tag)
}

// sharedStaging repacks one buffer while a previous iteration's post
// may still be in flight.
func sharedStaging(c *mpi.Comm, tag mpi.Tag, peers []int, buf []float64) {
	var reqs []*mpi.Request
	for _, q := range peers {
		buf[0] = float64(q)
		reqs = append(reqs, c.ISend(q, tag, buf)) // want "shared across loop iterations"
	}
	for _, r := range reqs {
		_, _ = r.Wait()
	}
}

// reboundStaging is the sanctioned idiom: a per-iteration buffer.
func reboundStaging(c *mpi.Comm, tag mpi.Tag, peers []int, bufs [][]float64) {
	var reqs []*mpi.Request
	for i, q := range peers {
		b := bufs[i]
		b[0] = float64(q)
		reqs = append(reqs, c.ISend(q, tag, b))
	}
	for _, r := range reqs {
		_, _ = r.Wait()
	}
}

// waitInLoop also resolves the shared-staging hazard.
func waitInLoop(c *mpi.Comm, tag mpi.Tag, peers []int, buf []float64) {
	for _, q := range peers {
		buf[0] = float64(q)
		_, _ = c.ISend(q, tag, buf).Wait()
	}
}

// cancelledFinish: the hardened drivers' error path — Start and Finish
// both propagate the world's cancellation; the window itself holds only
// owned-data compute, so the shape is clean.
func cancelledFinish(h *dist.Halo, p *prof.Profiler, x, y []float64) error {
	if err := h.Start(p, x); err != nil {
		return err
	}
	for i := range y {
		y[i] = 2 * y[i]
	}
	if err := h.Finish(p, x); err != nil {
		return err
	}
	return nil
}

// cancelVote: agreeing on an error mid-window is still a collective
// inside the overlap window — under cancellation it deadlocks against
// ranks that already bailed. Finish first, vote after.
func cancelVote(c *mpi.Comm, h *dist.Halo, p *prof.Profiler, x []float64, failed bool) error {
	if err := h.Start(p, x); err != nil {
		return err
	}
	flag := 0.0
	if failed {
		flag = 1
	}
	if c.AllReduceMax(flag) > 0 { // want "collective inside the overlap window"
		return h.Finish(p, x)
	}
	return h.Finish(p, x)
}

// suppressed: a deliberate blocking call carries the pragma.
func suppressed(c *mpi.Comm, h *dist.Halo, p *prof.Profiler, tag mpi.Tag, x, buf []float64) error {
	if err := h.Start(p, x); err != nil {
		return err
	}
	c.Send(1, tag, buf) //lint:overlap-ok fixture: deliberate blocking call to test suppression
	return h.Finish(p, x)
}
