// Package poollife exercises the poollife analyzer: pool lifecycle
// (no use after Close), barrier discipline (no Run/Close/reductions
// from inside a task), scheduling purity (no goroutines, channels, or
// blocking MPI inside tasks), and reused-task hygiene (no stale
// iteration state). The want patterns quote the runtime's named panic
// messages, so the static findings and the dynamic panics agree.
package poollife

import (
	"petscfun3d/internal/dist"
	"petscfun3d/internal/mpi"
	"petscfun3d/internal/par"
)

type noop struct{}

func (t *noop) RunShard(w, nw int) {}

// runAfterClose: the straight-line use-after-Close the runtime panics
// on.
func runAfterClose(t *noop) {
	p := par.New(2)
	p.Run(t)
	p.Close()
	p.Run(t) // want "pool p used after Close on this path; the runtime panics with .par: Run on closed Pool."
}

// dotAfterClose: the reduction primitives re-enter Run, so they are
// uses too.
func dotAfterClose(x, y []float64) float64 {
	p := par.New(2)
	p.Close()
	return par.Dot(p, x, y) // want "pool p used after Close on this path"
}

// setPoolAfterClose: attaching a closed pool to a rank's kernels.
func setPoolAfterClose(m *dist.Matrix) {
	p := par.New(2)
	p.Close()
	m.SetPool(p) // want "pool p used after Close on this path"
}

// errorBranchClose: Close on an early-return error path does not
// poison the fall-through path.
func errorBranchClose(t *noop, fail bool) {
	p := par.New(2)
	if fail {
		p.Close()
		return
	}
	p.Run(t)
	p.Close()
}

// deferredClose: the sanctioned shape — Close runs at exit, after
// every use.
func deferredClose(t *noop) {
	p := par.New(2)
	defer p.Close()
	p.Run(t)
}

// rebound: a fresh pool revives the variable.
func rebound(t *noop) {
	p := par.New(2)
	p.Close()
	p = par.New(4)
	p.Run(t)
	p.Close()
}

// nested re-enters the barrier from inside a task: the workers are
// parked in the outer Run, so the inner one can never complete.
type nested struct {
	p     *par.Pool
	inner par.Task
	x, y  []float64
}

func (t *nested) RunShard(w, nw int) {
	t.p.Run(t.inner) // want "nested Run from inside a pool task.*par: nested Run on Pool"
	// The reduction primitive draws both findings: the barrier re-entry
	// and the shared vectors handed over without a shard-derived range.
	_ = par.Dot(t.p, t.x, t.y) // want "par.Dot re-enters Run on its pool from inside a task" // want "shared t passed to a callee with no shard-derived argument"
	t.p.Close()                // want "Close from inside a pool task.*par: Close during Run"
}

// scheduler spawns and blocks inside a task.
type scheduler struct {
	ch   chan int
	done chan struct{}
}

func (t *scheduler) RunShard(w, nw int) {
	go func() {}() // want "goroutine spawned inside a pool task"
	t.ch <- w      // want "channel send inside a pool task"
	<-t.done       // want "channel receive inside a pool task"
	close(t.ch)    // want "channel close inside a pool task"
}

// blocking holds MPI communication inside a task; every worker stalls
// at the barrier while one shard waits on the network.
type blocking struct {
	c *mpi.Comm
}

func (t *blocking) RunShard(w, nw int) {
	t.c.Barrier()             // want "blocking Comm.Barrier inside a pool task"
	_ = t.c.AllReduceSum(1.5) // want "blocking Comm.AllReduceSum inside a pool task"
}

// chunkTask is reused across Run calls; hot paths repoint its fields.
type chunkTask struct {
	rows []int32
}

func (t *chunkTask) RunShard(w, nw int) {}

// staleCapture assigns iteration state into the reused task but only
// runs it after the loop: every chunk but the last is silently
// dropped.
func staleCapture(p *par.Pool, chunks [][]int32) {
	t := &chunkTask{}
	for _, c := range chunks {
		t.rows = c
	}
	p.Run(t) // want "only the last iteration's value is seen"
}

// perChunkRun is the sanctioned reuse shape: the task is handed to the
// pool inside the loop, so each iteration's state is consumed.
func perChunkRun(p *par.Pool, chunks [][]int32) {
	t := &chunkTask{}
	for _, c := range chunks {
		t.rows = c
		p.Run(t)
	}
}

// suppressed: a deliberate single-worker barrier re-entry carries the
// pragma (e.g. a task that runs a nested pool it owns exclusively).
type suppressed struct {
	other *par.Pool
	inner par.Task
}

func (t *suppressed) RunShard(w, nw int) {
	if w == 0 {
		t.other.Run(t.inner) //lint:pool-ok fixture: distinct pool owned by worker 0, to test suppression
	}
}
