// Package fixedreduce exercises the fixedreduce analyzer: FP
// accumulation inside a pool task must flow through fixed-shape
// partials (a Segments-style buffer whose cut depends on the problem
// size alone), never groupings that change with the worker count.
package fixedreduce

const segments = 64

// blessed is the dotSegments shape: workers own fixed segments, each
// segment's accumulator is declared inside the worker-dependent loop,
// so every partial's extent is worker-independent.
type blessed struct {
	x, y  []float64
	parts []float64
}

func (t *blessed) RunShard(w, nw int) {
	n := len(t.x)
	for s := w; s < segments; s += nw {
		lo, hi := n*s/segments, n*(s+1)/segments
		var sum float64
		for i := lo; i < hi; i++ {
			sum += t.x[i] * t.y[i]
		}
		t.parts[s] = sum
	}
}

// resetPerSegment is the same shape with the accumulator hoisted but
// reset inside the worker-dependent extent: still a fixed-shape
// partial per segment.
type resetPerSegment struct {
	x     []float64
	parts []float64
}

func (t *resetPerSegment) RunShard(w, nw int) {
	n := len(t.x)
	var sum float64
	for s := w; s < segments; s += nw {
		sum = 0
		for i := n * s / segments; i < n*(s+1)/segments; i++ {
			sum += t.x[i]
		}
		t.parts[s] = sum
	}
}

// mdotBlessed is the fused MDot shape: workers own fixed segments, each
// vector's segment accumulator is declared inside the worker-dependent
// segment loop, and the partials land at parts[k*segments+s] — a layout
// cut by the problem size and vector count alone, never the worker
// count.
type mdotBlessed struct {
	x     []float64
	vs    [][]float64
	parts []float64
}

func (t *mdotBlessed) RunShard(w, nw int) {
	n := len(t.x)
	for s := w * segments / nw; s < (w+1)*segments/nw; s++ {
		lo, hi := n*s/segments, n*(s+1)/segments
		for k, v := range t.vs {
			var sum float64
			for i := lo; i < hi; i++ {
				sum += t.x[i] * v[i]
			}
			t.parts[k*segments+s] = sum
		}
	}
}

// mdotPerWorker batches the same dots but keeps one running partial per
// worker: the partial set — and the rounding of the final combine —
// changes shape with the worker count.
type mdotPerWorker struct {
	x     []float64
	vs    [][]float64
	parts []float64
}

func (t *mdotPerWorker) RunShard(w, nw int) {
	n := len(t.x)
	for _, v := range t.vs {
		for i := n * w / nw; i < n*(w+1)/nw; i++ {
			t.parts[w] += t.x[i] * v[i] // want "per-worker FP partial"
		}
	}
}

// perWorkerPartial keeps one partial per worker: the partial set — and
// the rounding of the final combine — changes shape with the worker
// count.
type perWorkerPartial struct {
	x     []float64
	parts []float64
}

func (t *perWorkerPartial) RunShard(w, nw int) {
	n := len(t.x)
	for i := n * w / nw; i < n*(w+1)/nw; i++ {
		t.parts[w] += t.x[i] // want "per-worker FP partial"
	}
}

// strideAccum sums a whole worker stripe into one local: the
// accumulator's extent is the stripe, a function of the worker count.
type strideAccum struct {
	x, y  []float64
	parts []float64
}

func (t *strideAccum) RunShard(w, nw int) {
	n := len(t.x)
	lo, hi := n*w/nw, n*(w+1)/nw
	sum := 0.0
	for i := lo; i < hi; i++ {
		sum += t.x[i] * t.y[i] // want "accumulator sum sums a worker-dependent index range"
	}
	t.parts[w] = sum
}

// intCount: integer accumulation is exact at any grouping and exempt.
type intCount struct {
	rows  []int32
	hits  []int
	level int32
}

func (t *intCount) RunShard(w, nw int) {
	n := len(t.rows)
	cnt := 0
	for i := n * w / nw; i < n*(w+1)/nw; i++ {
		if t.rows[i] > t.level {
			cnt++
		}
	}
	t.hits[w] = cnt
}

// suppressed: a tolerated-rounding accumulation carries the pragma.
type suppressed struct {
	x     []float64
	parts []float64
}

func (t *suppressed) RunShard(w, nw int) {
	n := len(t.x)
	acc := 0.0
	for i := n * w / nw; i < n*(w+1)/nw; i++ {
		acc += t.x[i] //lint:reduce-ok fixture: deliberate stripe accumulation to test suppression
	}
	t.parts[w] = acc
}
