// Package lint is a domain-aware static-analysis suite for this
// repository, built on the stdlib go/parser + go/types toolchain (the
// module is offline; no analysis framework dependency). The analyzers
// enforce the invariants the paper's performance argument rests on:
// kernels at the STREAM limit must not allocate in hot loops
// (hotalloc), every profiler span must close on all paths so the
// measured phase profile stays balanced (profspan), flop/byte counts
// fed to the profiler must come from the shared cost formulas so the
// roofline tables cannot drift from the model (costconst), errors must
// not be dropped and library code must not panic (errcheck), and
// floating-point reductions must not depend on Go's randomized map
// iteration order, which would break bit-for-bit parallel-vs-serial
// validation (detorder).
//
// The commcheck family guards the communication protocol and the
// overlap path specifically: every nonblocking mpi request must reach a
// Wait on all paths (reqwait), message tags must come from the mpi tag
// registry and be used symmetrically (tagconst), the window between
// posting an exchange and waiting on it must stay free of blocking
// operations and posted-buffer writes (overlapregion), and the cost
// formulas the profiler charges must match the kernel loops they model,
// coefficient by coefficient (costsync).
//
// The codegen analyzer closes the last gap between the model and the
// machine: it replays the compiler's own escape-analysis, inlining, and
// bounds-check-elimination diagnostics over the hot packages and holds
// the kernels to the checked-in budget manifest (codegen.budget.json) —
// no heap escapes, no bounds checks surviving in innermost loops, and
// the small per-edge/per-row helpers must inline.
//
// The parcheck family makes the worker-pool runtime's determinism
// contract (internal/par, Table 5's threading axis) a compile-time
// guarantee: pool-task writes to shared storage must stay inside the
// shard's owned index domain (ownwrite), floating-point accumulation in
// tasks must flow through fixed-shape reduction primitives so the bits
// cannot depend on the worker count (fixedreduce), and pool lifecycle
// and scheduling stay structured — no use after Close, no barrier
// re-entry, no blocking or spawning inside tasks, no stale iteration
// state in reused tasks (poollife).
//
// Findings can be suppressed by a pragma comment on the offending line
// or the line directly above:
//
//	//lint:alloc-ok <reason>     (hotalloc)
//	//lint:panic-ok <reason>     (errcheck's panic rule)
//	//lint:wait-ok <reason>      (reqwait)
//	//lint:tag-ok <reason>       (tagconst)
//	//lint:overlap-ok <reason>   (overlapregion)
//	//lint:escape-ok <reason>    (codegen's escape rules)
//	//lint:bce-ok <reason>       (codegen's bounds-check rule)
//	//lint:own-ok <reason>       (ownwrite)
//	//lint:reduce-ok <reason>    (fixedreduce)
//	//lint:pool-ok <reason>      (poollife)
//
// The reason is mandatory, and a pragma that suppresses nothing is
// itself a finding, so escape hatches cannot rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`

	// suppressKey names the pragma kind ("alloc-ok", "panic-ok") that
	// may suppress this finding; empty means not suppressible.
	suppressKey string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Config selects which packages are subject to the allocation
// discipline.
type Config struct {
	// HotPackages are the import paths whose loop bodies must not
	// allocate (the paper's bandwidth-limited kernels live here).
	HotPackages []string
	// NoPanicExemptPrefixes are import-path prefixes where panic is
	// tolerated (command mains; tests are exempt because test files are
	// never loaded).
	NoPanicExemptPrefixes []string
}

// DefaultConfig returns the repository's lint policy.
func DefaultConfig() Config {
	return Config{
		HotPackages: []string{
			"petscfun3d/internal/dist",
			"petscfun3d/internal/euler",
			"petscfun3d/internal/ilu",
			"petscfun3d/internal/krylov",
			"petscfun3d/internal/mpi",
			"petscfun3d/internal/par",
			"petscfun3d/internal/sparse",
			"petscfun3d/internal/schwarz",
		},
		NoPanicExemptPrefixes: []string{
			"petscfun3d/cmd/",
			"petscfun3d/examples/",
		},
	}
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	// Invariant is the one-line paper invariant the analyzer defends —
	// the exact string the README's analyzer table carries (a test
	// asserts the two never drift) and `fun3dlint -list` prints.
	Invariant string
	Run       func(*Pass)
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		HotAlloc,
		ProfSpan,
		CostConst,
		ErrCheck,
		DetOrder,
		ReqWait,
		TagConst,
		OverlapRegion,
		CostSync,
		Codegen,
		OwnWrite,
		FixedReduce,
		PoolLife,
	}
}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	Cfg  Config

	analyzer *Analyzer
	findings *[]Finding
}

// Hot reports whether the package is subject to hot-loop allocation
// discipline.
func (p *Pass) Hot() bool {
	for _, h := range p.Cfg.HotPackages {
		if p.Pkg.Path == h {
			return true
		}
	}
	return false
}

// PanicExempt reports whether panic is tolerated in this package.
func (p *Pass) PanicExempt() bool {
	for _, pre := range p.Cfg.NoPanicExemptPrefixes {
		if strings.HasPrefix(p.Pkg.Path, pre) {
			return true
		}
	}
	return false
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, "", format, args...)
}

// ReportSuppressiblef records a finding that a //lint:<key> pragma may
// suppress.
func (p *Pass) ReportSuppressiblef(pos token.Pos, key, format string, args ...any) {
	p.report(pos, key, format, args...)
}

// ReportAtf records a finding at an explicit source position — for
// analyzers whose evidence arrives from outside the parsed FileSet (the
// codegen analyzer reports at compiler-diagnostic positions). key names
// the pragma that may suppress it; empty means not suppressible.
func (p *Pass) ReportAtf(position token.Position, key, format string, args ...any) {
	p.record(position, key, format, args...)
}

func (p *Pass) report(pos token.Pos, key, format string, args ...any) {
	p.record(p.Fset.Position(pos), key, format, args...)
}

func (p *Pass) record(position token.Position, key, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:         position,
		File:        position.Filename,
		Line:        position.Line,
		Col:         position.Column,
		Analyzer:    p.analyzer.Name,
		Message:     fmt.Sprintf(format, args...),
		suppressKey: key,
	})
}

// pragma is one //lint:<key> <reason> comment.
type pragma struct {
	file   string
	line   int
	key    string
	reason string
	used   bool
}

var pragmaRe = regexp.MustCompile(`^//lint:([a-z-]+)(?:\s+(.*))?$`)

// knownPragmaKeys are the escape hatches the suite honors.
var knownPragmaKeys = map[string]bool{
	"alloc-ok":   true,
	"panic-ok":   true,
	"wait-ok":    true,
	"tag-ok":     true,
	"overlap-ok": true,
	"escape-ok":  true,
	"bce-ok":     true,
	"own-ok":     true,
	"reduce-ok":  true,
	"pool-ok":    true,
}

func collectPragmas(fset *token.FileSet, files []*ast.File) []*pragma {
	var out []*pragma
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := pragmaRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, &pragma{
					file:   pos.Filename,
					line:   pos.Line,
					key:    m[1],
					reason: strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return out
}

// Run applies the analyzers to one package and returns the surviving
// findings, sorted by position: pragma-suppressed findings are removed,
// and pragma hygiene violations (unknown key, missing reason, pragma
// that suppresses nothing) are appended as findings of the synthetic
// "pragma" analyzer.
func Run(fset *token.FileSet, pkg *Package, cfg Config, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		pass := &Pass{Fset: fset, Pkg: pkg, Cfg: cfg, analyzer: a, findings: &raw}
		a.Run(pass)
	}
	pragmas := collectPragmas(fset, pkg.Files)

	var out []Finding
	for _, f := range raw {
		suppressed := false
		if f.suppressKey != "" {
			for _, pr := range pragmas {
				if pr.key == f.suppressKey && pr.file == f.File &&
					(pr.line == f.Line || pr.line == f.Line-1) {
					pr.used = true
					if pr.reason != "" {
						suppressed = true
					}
				}
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	pragmaAnalyzer := &Analyzer{Name: "pragma"}
	for _, pr := range pragmas {
		report := func(format string, args ...any) {
			out = append(out, Finding{
				Pos:      token.Position{Filename: pr.file, Line: pr.line, Column: 1},
				File:     pr.file,
				Line:     pr.line,
				Col:      1,
				Analyzer: pragmaAnalyzer.Name,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		switch {
		case !knownPragmaKeys[pr.key]:
			report("unknown pragma //lint:%s", pr.key)
		case pr.reason == "":
			report("pragma //lint:%s needs a reason", pr.key)
		case !pr.used:
			report("unused pragma //lint:%s suppresses nothing", pr.key)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// RunPatterns loads the packages matching patterns under the module
// rooted at root and runs the full suite with the default config —
// the programmatic equivalent of `fun3dlint ./...`.
func RunPatterns(root string, patterns []string) ([]Finding, error) {
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	paths, err := l.ExpandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	cfg := DefaultConfig()
	var all []Finding
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		all = append(all, Run(l.Fset, pkg, cfg, Analyzers())...)
	}
	return all, nil
}
