package lint

import (
	"go/types"
	"path/filepath"
	"testing"
)

// TestLoaderGenericsAndAtomics pins the offline loader against the
// language features the analyzed code actually uses: type parameters
// with union constraints, generic instantiation, and the sync/atomic
// compare-and-swap idiom (the mpi.Request.claim pattern). The loader
// must produce a fully type-checked package — no missing objects, no
// half-populated info maps — and the full suite must run over it
// without findings or panics.
func TestLoaderGenericsAndAtomics(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "generics"), "fixture/generics")
	if err != nil {
		t.Fatal(err)
	}

	// The generic function and its constraint type-checked.
	sum := pkg.Types.Scope().Lookup("Sum")
	if sum == nil {
		t.Fatal("Sum not found in package scope")
	}
	sig, ok := sum.Type().(*types.Signature)
	if !ok || sig.TypeParams().Len() != 1 {
		t.Fatalf("Sum signature = %v, want one type parameter", sum.Type())
	}

	// The atomic CAS resolved to sync/atomic through the source importer.
	foundCAS := false
	for _, obj := range pkg.Info.Uses {
		if fn, ok := obj.(*types.Func); ok && fn.Name() == "CompareAndSwapInt32" &&
			fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
			foundCAS = true
		}
	}
	if !foundCAS {
		t.Error("atomic.CompareAndSwapInt32 did not resolve to sync/atomic")
	}

	// Every identifier use has an object: the info maps are complete
	// enough for the analyzers' object-identity matching.
	for _, f := range pkg.Files {
		if f.Name == nil {
			t.Fatal("file without package clause")
		}
	}

	// The suite runs clean over it (and, in particular, does not
	// misclassify the type parameter T as a float in cost counting).
	if findings := Run(l.Fset, pkg, Config{HotPackages: []string{"fixture/generics"}}, Analyzers()); len(findings) > 0 {
		t.Errorf("suite reported findings on the generics fixture:\n%v", findings)
	}
}

// TestAnalyzerSuite pins the suite roster: the commcheck family joined
// the original five, then codegen, then the parcheck family over the
// worker-pool runtime — and the pragma keys cover every suppressible
// analyzer.
func TestAnalyzerSuite(t *testing.T) {
	want := []string{
		"hotalloc", "profspan", "costconst", "errcheck", "detorder",
		"reqwait", "tagconst", "overlapregion", "costsync", "codegen",
		"ownwrite", "fixedreduce", "poollife",
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %s, want %s", i, a.Name, want[i])
		}
	}
	for _, key := range []string{"alloc-ok", "panic-ok", "wait-ok", "tag-ok", "overlap-ok", "escape-ok", "bce-ok", "own-ok", "reduce-ok", "pool-ok"} {
		if !knownPragmaKeys[key] {
			t.Errorf("pragma key %s not registered", key)
		}
	}
	for _, a := range got {
		if a.Invariant == "" {
			t.Errorf("analyzer %s has no one-line invariant (the README table and -list source it)", a.Name)
		}
	}
}

// TestLoaderRangeOverIntAndAliasedGenerics pins the offline importer
// against the go1.22 range-over-int statement and aliases of
// instantiated generic types. These are exactly the constructs a
// toolchain bump is most likely to move under the loader's feet; if
// this fails after a bump, every analyzer is silently running on
// half-checked packages.
func TestLoaderRangeOverIntAndAliasedGenerics(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "rangegenerics"), "fixture/rangegenerics")
	if err != nil {
		t.Fatal(err)
	}

	// The alias resolved to the instantiated generic type: IntPair's
	// underlying type is the struct of Pair[int], and methods through
	// the alias carry int signatures.
	obj := pkg.Types.Scope().Lookup("IntPair")
	if obj == nil {
		t.Fatal("IntPair not found in package scope")
	}
	alias, ok := obj.(*types.TypeName)
	if !ok {
		t.Fatalf("IntPair object %T, want *types.TypeName", obj)
	}
	if !alias.IsAlias() {
		t.Fatalf("IntPair is not an alias: %v", alias)
	}
	named, ok := alias.Type().(*types.Named)
	if !ok {
		t.Fatalf("IntPair aliases %v, want an instantiated named type", alias.Type())
	}
	if named.Obj().Name() != "Pair" || named.TypeArgs().Len() != 1 {
		t.Fatalf("IntPair aliases %v, want Pair[int]", named)
	}
	if b, ok := named.TypeArgs().At(0).(*types.Basic); !ok || b.Kind() != types.Int {
		t.Fatalf("IntPair type argument %v, want int", named.TypeArgs().At(0))
	}

	// The range-over-int loops type-checked: Iota's loop variable is a
	// plain int, visible in the info maps.
	iota := pkg.Types.Scope().Lookup("Iota")
	if iota == nil {
		t.Fatal("Iota not found in package scope")
	}
	foundIntLoopVar := false
	for ident, obj := range pkg.Info.Defs {
		if ident.Name == "i" && obj != nil {
			if b, ok := obj.Type().(*types.Basic); ok && b.Kind() == types.Int {
				foundIntLoopVar = true
			}
		}
	}
	if !foundIntLoopVar {
		t.Error("no int-typed range-over-int loop variable in the info maps")
	}

	// The full suite runs clean over the fixture.
	if findings := Run(l.Fset, pkg, Config{HotPackages: []string{"fixture/rangegenerics"}}, Analyzers()); len(findings) > 0 {
		t.Errorf("suite reported findings on the rangegenerics fixture:\n%v", findings)
	}
}
