package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture packages under testdata/src/<name> carry `// want "regex"`
// comments on the lines where findings are expected; the suite must
// report exactly those findings and nothing else.

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type wantKey struct {
	file string // base name
	line int
}

func fixtureWants(t *testing.T, dir string) map[wantKey][]string {
	t.Helper()
	wants := map[wantKey][]string{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				k := wantKey{file: e.Name(), line: i + 1}
				wants[k] = append(wants[k], m[1])
			}
		}
	}
	return wants
}

func runFixture(t *testing.T, name string, hot bool) []Finding {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	path := "fixture/" + name
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}
	if hot {
		cfg.HotPackages = []string{path}
	}
	return Run(l.Fset, pkg, cfg, Analyzers())
}

func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		name string
		hot  bool
	}{
		{"hotalloc", true},
		{"profspan", false},
		{"costconst", false},
		{"errcheck", false},
		{"detorder", false},
		{"reqwait", false},
		{"tagconst", false},
		{"overlapregion", false},
		{"costsync", false},
		{"codegen", false},
		{"ownwrite", false},
		{"fixedreduce", false},
		{"poollife", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			findings := runFixture(t, c.name, c.hot)
			wants := fixtureWants(t, filepath.Join("testdata", "src", c.name))
			for _, f := range findings {
				k := wantKey{file: filepath.Base(f.File), line: f.Line}
				matched := false
				for i, w := range wants[k] {
					if regexp.MustCompile(w).MatchString(f.Message) {
						wants[k] = append(wants[k][:i], wants[k][i+1:]...)
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for k, ws := range wants {
				for _, w := range ws {
					t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, w)
				}
			}
		})
	}
}

// TestPragmaHygiene pins the synthetic pragma analyzer: unknown keys,
// missing reasons, and pragmas that suppress nothing are all findings,
// so the escape hatches cannot rot silently.
func TestPragmaHygiene(t *testing.T) {
	findings := runFixture(t, "pragmahygiene", false)
	expect := []struct {
		line     int
		analyzer string
		substr   string
	}{
		{5, "pragma", "unknown pragma //lint:frobnicate"},
		{10, "pragma", "needs a reason"},
		{11, "errcheck", "panic in library code"},
		{15, "pragma", "unused pragma //lint:alloc-ok"},
	}
	if len(findings) != len(expect) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(expect), findings)
	}
	for i, e := range expect {
		f := findings[i]
		if f.Line != e.line || f.Analyzer != e.analyzer || !strings.Contains(f.Message, e.substr) {
			t.Errorf("finding %d = %s; want line %d [%s] ~%q", i, f, e.line, e.analyzer, e.substr)
		}
	}
}
