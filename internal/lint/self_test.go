package lint

import (
	"strings"
	"testing"
)

// TestRepositoryLintsClean is the acceptance gate: the full suite over
// the whole module (what `fun3dlint ./...` and `make lint` run) must
// report nothing. A finding here means either new code broke a
// discipline or an analyzer regressed into a false positive — both are
// failures.
func TestRepositoryLintsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) > 0 {
		var sb strings.Builder
		for _, f := range findings {
			sb.WriteString("  ")
			sb.WriteString(f.String())
			sb.WriteString("\n")
		}
		t.Fatalf("repository does not lint clean (%d findings):\n%s", len(findings), sb.String())
	}
}
