package lint

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"petscfun3d/internal/codegen"
)

// TestRepositoryLintsClean is the acceptance gate: the full suite over
// the whole module (what `fun3dlint ./...` and `make lint` run) must
// report nothing. A finding here means either new code broke a
// discipline or an analyzer regressed into a false positive — both are
// failures.
func TestRepositoryLintsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) > 0 {
		var sb strings.Builder
		for _, f := range findings {
			sb.WriteString("  ")
			sb.WriteString(f.String())
			sb.WriteString("\n")
		}
		t.Fatalf("repository does not lint clean (%d findings):\n%s", len(findings), sb.String())
	}
}

// TestRepositoryCodegenClean is the codegen-conformance acceptance
// gate, the explicit companion to TestRepositoryLintsClean: the budget
// manifest at the module root must parse, pin the running toolchain,
// and cover every costsync-registered hot package, and `fun3dlint -only
// codegen ./...` must report nothing — the swept kernels compile with
// no heap escapes, no surviving innermost-loop bounds checks, and every
// must-inline helper inlining.
func TestRepositoryCodegenClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	budget, err := codegen.LoadBudget(filepath.Join(root, codegen.BudgetFile))
	if err != nil {
		t.Fatalf("budget manifest: %v", err)
	}
	if budget.GoVersion != runtime.Version() {
		t.Fatalf("budget pins toolchain %s but this is %s; review `fun3dlint -only codegen` and re-record with `fun3dlint -update-budget`",
			budget.GoVersion, runtime.Version())
	}
	for _, c := range costChecks {
		if !strings.HasPrefix(c.pkg, "petscfun3d/") {
			continue
		}
		if _, ok := budget.Packages[c.pkg]; !ok {
			t.Errorf("costsync registry pins %s in %s, but the codegen budget does not cover that package", c.kernel, c.pkg)
		}
	}
	findings, err := RunPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var bad []string
	for _, f := range findings {
		if f.Analyzer == "codegen" {
			bad = append(bad, "  "+f.String())
		}
	}
	if len(bad) > 0 {
		t.Fatalf("codegen conformance findings (%d):\n%s", len(bad), strings.Join(bad, "\n"))
	}
}
