package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc forbids allocations inside loop bodies of the designated hot
// packages: the paper's kernels run at the STREAM bandwidth limit, so a
// stray make/append/map/closure allocation in a sweep both costs time
// the roofline model does not account for and invalidates the measured
// phase profile. One-time setup allocations carry a
// //lint:alloc-ok <reason> pragma.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "no make/append/map/closure allocations in loop bodies of hot packages",
	Invariant: "The sweeps are bandwidth-limited (§3): no allocation inside hot kernel loops, or the roofline times stop explaining the measurements.",
	Run:       runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	if !pass.Hot() {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		eachFuncBody(f, func(body *ast.BlockStmt) {
			// Collect this function's own loop bodies (literals nested in
			// the body are separate functions with their own loops).
			var loops []*ast.BlockStmt
			shallowInspect(body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ForStmt:
					loops = append(loops, n.Body)
				case *ast.RangeStmt:
					loops = append(loops, n.Body)
				}
				return true
			})
			inLoop := func(n ast.Node) bool {
				for _, l := range loops {
					if n.Pos() >= l.Lbrace && n.End() <= l.Rbrace {
						return true
					}
				}
				return false
			}
			shallowInspect(body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if !inLoop(n) {
						return true
					}
					if isBuiltinCall(info, n, "make") {
						pass.ReportSuppressiblef(n.Pos(), "alloc-ok",
							"make in a hot loop body; hoist it or mark one-time setup with //lint:alloc-ok <reason>")
					}
					if isBuiltinCall(info, n, "append") {
						pass.ReportSuppressiblef(n.Pos(), "alloc-ok",
							"append growth in a hot loop body; preallocate or mark one-time setup with //lint:alloc-ok <reason>")
					}
				case *ast.CompositeLit:
					if !inLoop(n) {
						return true
					}
					if tv, ok := info.Types[ast.Expr(n)]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							pass.ReportSuppressiblef(n.Pos(), "alloc-ok",
								"map literal allocated in a hot loop body")
						}
					}
				case *ast.FuncLit:
					if inLoop(n) {
						pass.ReportSuppressiblef(n.Pos(), "alloc-ok",
							"closure allocated in a hot loop body")
					}
				}
				return true
			})
		})
	}
}
