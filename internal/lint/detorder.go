package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetOrder guards the repo's bit-for-bit reproducibility: Go randomizes
// map iteration order, and floating-point addition is not associative,
// so accumulating floats while ranging over a map yields run-to-run
// different last bits. The parallel-vs-serial validation tests (and the
// paper's deterministic virtual-machine replays) compare residuals
// exactly, so a nondeterministic reduction order is a real bug, not a
// style nit. Iterate a sorted key slice instead.
var DetOrder = &Analyzer{
	Name:      "detorder",
	Doc:       "no floating-point accumulation ordered by map iteration",
	Invariant: "Parallel-vs-serial validation is bitwise: no float accumulation over map iteration order.",
	Run:       runDetOrder,
}

func runDetOrder(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			// Flag float accumulations in the loop body; a closure in the
			// body still runs per iteration, so descend into literals too.
			ast.Inspect(rng.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok {
					return true
				}
				if as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN && as.Tok != token.MUL_ASSIGN {
					return true
				}
				for _, lhs := range as.Lhs {
					if tv, ok := info.Types[lhs]; ok && isFloat(tv.Type) {
						pass.Reportf(as.Pos(),
							"floating-point accumulation ordered by map iteration is nondeterministic; range over sorted keys")
					}
				}
				return true
			})
			return true
		})
	}
}
