package newton

import (
	"fmt"
	"strings"
	"testing"

	"petscfun3d/internal/euler"
	"petscfun3d/internal/krylov"
	"petscfun3d/internal/sparse"
)

// flakyPC wraps the ILU factory, failing selected build calls, to
// exercise the bounded step retry without touching the numerics of the
// attempts that do run.
func flakyPC(failCall func(n int) bool) PCFactory {
	inner := iluPC(0)
	n := 0
	return func(a *sparse.BCSR) (krylov.Preconditioner, error) {
		n++
		if failCall(n) {
			return nil, fmt.Errorf("injected preconditioner failure (build %d)", n)
		}
		return inner(a)
	}
}

// TestStepRetryRecovers: a transient preconditioner failure must be
// retried within the step (refreshing from a clean assembly) and leave
// the solve's convergence untouched; OnStepError observes the attempt.
func TestStepRetryRecovers(t *testing.T) {
	opts := DefaultOptions()
	opts.RelTol = 1e-6
	opts.MaxSteps = 60
	opts.StepRetries = 1
	s, q := buildSolver(t, 6, 5, 4, euler.NewIncompressible(), opts)
	s.PC = flakyPC(func(n int) bool { return n == 2 }) // step 1's first build
	var seen []string
	s.Hooks = &Hooks{OnStepError: func(step, attempt int, err error) {
		seen = append(seen, fmt.Sprintf("step=%d attempt=%d", step, attempt))
	}}
	res, err := s.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("retry run did not converge (final %g)", res.FinalRnorm)
	}
	if len(seen) != 1 || seen[0] != "step=1 attempt=0" {
		t.Fatalf("OnStepError observed %v, want one failure at step 1 attempt 0", seen)
	}
}

// TestStepRetriesExhaustedReturnPartialResult: a persistent failure
// must abort gracefully — the completed steps stay in the Result next
// to the error, and the error reports the attempts consumed.
func TestStepRetriesExhaustedReturnPartialResult(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxSteps = 60
	opts.StepRetries = 1
	s, q := buildSolver(t, 6, 5, 4, euler.NewIncompressible(), opts)
	s.PC = flakyPC(func(n int) bool { return n >= 3 }) // steps 0 and 1 work, step 2 never does
	res, err := s.Solve(q)
	if err == nil {
		t.Fatal("persistent failure did not abort the solve")
	}
	if !strings.Contains(err.Error(), "after 2 attempt(s)") {
		t.Fatalf("abort error does not report the attempts: %v", err)
	}
	if res == nil {
		t.Fatal("no partial result on graceful abort")
	}
	if len(res.Steps) != 2 {
		t.Fatalf("partial result kept %d steps, want the 2 completed ones", len(res.Steps))
	}
	if res.FinalRnorm <= 0 || res.InitialRnorm <= 0 {
		t.Fatalf("partial result lost its norms: initial %g final %g", res.InitialRnorm, res.FinalRnorm)
	}
}
