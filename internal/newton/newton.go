// Package newton implements the pseudo-transient Newton-Krylov (ψNK)
// solver that drives the application to steady state: local pseudo-
// timesteps grown by the switched evolution/relaxation (SER) power law on
// the CFL number, an inexact Newton correction solved by preconditioned
// GMRES with a matrix-free Jacobian-vector product, a lagged first-order
// analytical preconditioner Jacobian, and optional discretization-order
// continuation (first-order flux early, second-order after a residual
// reduction), exactly the tuning knobs catalogued in section 2.4 of the
// paper.
package newton

import (
	"fmt"
	"math"

	"petscfun3d/internal/euler"
	"petscfun3d/internal/krylov"
	"petscfun3d/internal/prof"
	"petscfun3d/internal/sparse"
)

// Options are the ψNKS algorithmic parameters (section 2.4).
type Options struct {
	// CFL0 is the initial CFL number (Figure 5 sweeps it).
	CFL0 float64
	// SERExponent is the power p of the SER law
	// CFL_l = CFL0 (||f0||/||f_{l-1}||)^p; near 1, damped to 0.75 for
	// shocked flows, up to 1.5 for first-order discretizations.
	SERExponent float64
	// CFLMax caps the CFL growth (the paper lets it reach ~1e5).
	CFLMax float64
	// MaxSteps bounds the pseudo-timesteps.
	MaxSteps int
	// RelTol is the required residual reduction ||f||/||f0||.
	RelTol float64
	// Krylov configures the inner GMRES solves.
	Krylov krylov.Options
	// JacobianLag refreshes the preconditioner Jacobian every lag steps
	// (1 = every step).
	JacobianLag int
	// SwitchOrderAt switches the flux evaluation from first to second
	// order once ||f||/||f0|| falls below it; 0 disables switching (the
	// active discretization is used throughout).
	SwitchOrderAt float64
	// LineSearch enables backtracking on residual increase.
	LineSearch bool
	// AssembledOperator applies the assembled (first-order,
	// time-augmented) Jacobian in the Krylov solve instead of the
	// matrix-free finite-difference product. The paper's implementation
	// is matrix-free; the assembled option trades flux evaluations for
	// matrix storage and is exact only for first-order discretizations.
	AssembledOperator bool
	// StepRetries bounds how many times one step's fallible section
	// (Jacobian assembly, preconditioner build, Krylov solve) is
	// re-attempted before Solve aborts gracefully, returning the partial
	// Result — the steps completed so far — alongside the error. 0
	// (the default) fails on the first error.
	StepRetries int
}

// DefaultOptions returns settings that converge the incompressible wing
// problem robustly.
func DefaultOptions() Options {
	return Options{
		CFL0:        10,
		SERExponent: 1.0,
		CFLMax:      1e5,
		MaxSteps:    100,
		RelTol:      1e-8,
		Krylov:      krylov.Options{Restart: 20, MaxIters: 40, RelTol: 1e-2},
		JacobianLag: 1,
		LineSearch:  true,
	}
}

// PCFactory builds a preconditioner from the (time-augmented) Jacobian.
type PCFactory func(a *sparse.BCSR) (krylov.Preconditioner, error)

// Hooks lets a caller observe and wrap the solver's numerical phases —
// the attachment point for the virtual machine's cost accounting. All
// fields are optional.
type Hooks struct {
	// AfterResidual fires after every direct residual evaluation in the
	// Newton loop (initial evaluation, line-search trials).
	AfterResidual func()
	// AfterJacobian fires after each preconditioner Jacobian refresh
	// (assembly + factorization).
	AfterJacobian func()
	// WrapOperator wraps the matrix-free Jacobian operator handed to
	// GMRES (each Apply is one matvec: halo exchange + flux evaluation).
	WrapOperator func(krylov.Operator) krylov.Operator
	// WrapPreconditioner wraps the preconditioner handed to GMRES.
	WrapPreconditioner func(krylov.Preconditioner) krylov.Preconditioner
	// OnStepError fires after each failed step attempt, before the
	// retry decision: attempt is 0-based, and Options.StepRetries
	// decides whether the step is re-attempted or the solve aborts with
	// the partial Result.
	OnStepError func(step, attempt int, err error)
}

// Step records one pseudo-timestep for convergence histories (Figure 5)
// and efficiency decompositions (Table 3).
type Step struct {
	Index     int
	Rnorm     float64
	CFL       float64
	LinearIts int
	FluxEvals int
	Order     int
}

// Result is the outcome of a steady-state solve.
type Result struct {
	Steps          []Step
	Converged      bool
	FinalRnorm     float64
	InitialRnorm   float64
	TotalLinearIts int
	TotalFluxEvals int
}

// Solver drives a discretization to steady state.
type Solver struct {
	// Disc evaluates the operative residual (its Opts.Order is the
	// "current" discretization order; order continuation switches to
	// Disc2).
	Disc *euler.Discretization
	// Disc2, when non-nil, is the second-order discretization activated
	// by Options.SwitchOrderAt.
	Disc2 *euler.Discretization
	// PC builds the preconditioner each time the Jacobian is refreshed;
	// nil means global ILU(0) is a caller bug — supply one.
	PC   PCFactory
	Opts Options
	// Hooks, when non-nil, instruments the solve (see Hooks).
	Hooks *Hooks
}

// Solve advances q (in place, interlaced layout) to steady state.
func (s *Solver) Solve(q []float64) (*Result, error) {
	if s.PC == nil {
		return nil, fmt.Errorf("newton: no preconditioner factory")
	}
	if s.Opts.CFL0 <= 0 || s.Opts.MaxSteps < 1 {
		return nil, fmt.Errorf("newton: nonpositive CFL0 or MaxSteps")
	}
	d := s.Disc
	n := d.N()
	if len(q) != n {
		return nil, fmt.Errorf("newton: state length %d, want %d", len(q), n)
	}
	// Root profiling span: its self time is the Newton loop's own work
	// (pseudo-timestep scales, line-search bookkeeping, state updates)
	// not claimed by a nested phase.
	nsp := prof.Begin(prof.PhaseNewton)
	defer nsp.End(0, 0)
	res := &Result{}
	r := make([]float64, n)
	rhs := make([]float64, n)
	dq := make([]float64, n)
	qTrial := make([]float64, n)
	jac := d.JacobianPattern()
	var pc krylov.Preconditioner
	fluxEvals := 0

	active := d
	d.Residual(q, r)
	fluxEvals++
	s.fireResidual()
	r0 := sparse.Norm2(r)
	if r0 == 0 {
		res.Converged = true
		return res, nil
	}
	res.InitialRnorm = r0
	rnorm := r0

	for step := 0; step < s.Opts.MaxSteps; step++ {
		// Order continuation.
		if s.Disc2 != nil && active == d && s.Opts.SwitchOrderAt > 0 && rnorm/r0 < s.Opts.SwitchOrderAt {
			active = s.Disc2
			active.Residual(q, r)
			fluxEvals++
			s.fireResidual()
			rnorm = sparse.Norm2(r)
		}
		// SER: grow the CFL with residual reduction.
		cfl := s.Opts.CFL0 * math.Pow(r0/rnorm, s.Opts.SERExponent)
		if cfl > s.Opts.CFLMax {
			cfl = s.Opts.CFLMax
		}
		// Pseudo-time augmentation: V/Δt = TimeScales/CFL per vertex.
		ts := d.TimeScales(q)
		// Matrix-free operator: Jv = (R(q+εv) − R(q))/ε + (V/Δt) v.
		stepFlux := 0
		assembled := krylov.OperatorFunc(func(v, y []float64) {
			// Striped owner-computes product: bitwise identical to the
			// sequential MulVec at every worker count, so the assembled
			// path's residual history is thread-count invariant too.
			prof.NoteThreads(prof.PhaseMatVec, s.Opts.Krylov.Pool.Workers())
			jac.MulVecPar(s.Opts.Krylov.Pool, v, y)
		})
		op := krylov.OperatorFunc(func(v, y []float64) {
			vn := sparse.Norm2(v)
			if vn == 0 {
				for i := range y {
					y[i] = 0
				}
				return
			}
			eps := 1e-8 * (1 + sparse.Norm2(q)) / vn
			for i := range qTrial {
				qTrial[i] = q[i] + eps*v[i]
			}
			active.Residual(qTrial, y)
			stepFlux++
			inv := 1 / eps
			b := d.Sys.B()
			for vtx := 0; vtx < d.M.NumVertices(); vtx++ {
				td := ts[vtx] / cfl
				for c := 0; c < b; c++ {
					i := vtx*b + c
					y[i] = (y[i]-r[i])*inv + td*v[i]
				}
			}
		})
		// The fallible section — preconditioner refresh from the lagged
		// first-order Jacobian, then the inexact Newton correction — runs
		// under bounded retry: a failed attempt is re-run from a clean
		// assembly (AssembleJacobian zero-fills, so no partial time
		// diagonal survives), and when Options.StepRetries is exhausted
		// the solve aborts gracefully with the partial Result.
		var kst krylov.Stats
		attempts := 0
		for {
			attempts++
			err := func() error {
				if pc == nil || (s.Opts.JacobianLag > 0 && step%s.Opts.JacobianLag == 0) {
					if err := d.AssembleJacobian(q, jac); err != nil {
						return err
					}
					AddTimeDiagonal(jac, ts, cfl)
					var err error
					pc, err = s.PC(jac)
					if err != nil {
						return err
					}
					if s.Hooks != nil && s.Hooks.AfterJacobian != nil {
						s.Hooks.AfterJacobian()
					}
				}
				for i := range rhs {
					rhs[i] = -r[i]
					dq[i] = 0
				}
				var kop krylov.Operator = op
				if s.Opts.AssembledOperator {
					kop = assembled
				}
				kpc := pc
				if s.Hooks != nil {
					if s.Hooks.WrapOperator != nil {
						kop = s.Hooks.WrapOperator(kop)
					}
					if s.Hooks.WrapPreconditioner != nil {
						kpc = s.Hooks.WrapPreconditioner(kpc)
					}
				}
				var err error
				kst, err = krylov.Solve(kop, kpc, rhs, dq, s.Opts.Krylov)
				return err
			}()
			if err == nil {
				break
			}
			if s.Hooks != nil && s.Hooks.OnStepError != nil {
				s.Hooks.OnStepError(step, attempts-1, err)
			}
			if attempts > s.Opts.StepRetries {
				res.FinalRnorm = rnorm
				res.TotalFluxEvals = fluxEvals + stepFlux
				return res, fmt.Errorf("newton: step %d failed after %d attempt(s): %w", step, attempts, err)
			}
			// Force a clean refresh on the retry: a preconditioner built
			// by a half-finished attempt must not be trusted.
			pc = nil
		}
		// Line search (backtracking) on the residual norm.
		lambda := 1.0
		var newNorm float64
		for attempt := 0; ; attempt++ {
			for i := range qTrial {
				qTrial[i] = q[i] + lambda*dq[i]
			}
			active.Residual(qTrial, rhs)
			stepFlux++
			s.fireResidual()
			newNorm = sparse.Norm2(rhs)
			if !s.Opts.LineSearch || newNorm <= rnorm*(1+1e-10) || attempt >= 5 {
				break
			}
			lambda *= 0.5
		}
		copy(q, qTrial)
		copy(r, rhs)
		rnorm = newNorm
		fluxEvals += stepFlux
		res.TotalLinearIts += kst.Iterations
		res.Steps = append(res.Steps, Step{
			Index: step, Rnorm: rnorm, CFL: cfl,
			LinearIts: kst.Iterations, FluxEvals: stepFlux,
			Order: active.Opts.Order,
		})
		if rnorm/r0 <= s.Opts.RelTol {
			res.Converged = true
			break
		}
		if math.IsNaN(rnorm) || math.IsInf(rnorm, 0) {
			return res, fmt.Errorf("newton: diverged at step %d (residual %g)", step, rnorm)
		}
	}
	res.FinalRnorm = rnorm
	res.TotalFluxEvals = fluxEvals
	return res, nil
}

// AddTimeDiagonal adds ts[v]/cfl to the diagonal of every diagonal
// block — the pseudo-transient augmentation V/Δt of the Jacobian.
// Exported so fun3d can build the same shifted operator for its
// measured distributed-efficiency sweep.
func AddTimeDiagonal(a *sparse.BCSR, ts []float64, cfl float64) {
	b := a.B
	for v := 0; v < a.NB; v++ {
		blk, ok := a.BlockAt(v, v)
		if !ok {
			continue
		}
		td := ts[v] / cfl
		for c := 0; c < b; c++ {
			blk[c*b+c] += td
		}
	}
}

// fireResidual invokes the AfterResidual hook when installed.
func (s *Solver) fireResidual() {
	if s.Hooks != nil && s.Hooks.AfterResidual != nil {
		s.Hooks.AfterResidual()
	}
}
