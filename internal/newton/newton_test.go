package newton

import (
	"math"
	"testing"

	"petscfun3d/internal/euler"
	"petscfun3d/internal/ilu"
	"petscfun3d/internal/krylov"
	"petscfun3d/internal/mesh"
	"petscfun3d/internal/sparse"
)

func iluPC(level int) PCFactory {
	return func(a *sparse.BCSR) (krylov.Preconditioner, error) {
		f, err := ilu.Factor(a, ilu.Options{Level: level})
		if err != nil {
			return nil, err
		}
		return krylov.PrecondFunc(f.Solve), nil
	}
}

func buildSolver(t testing.TB, nx, ny, nz int, sys euler.System, opts Options) (*Solver, []float64) {
	t.Helper()
	m, err := mesh.GenerateWing(mesh.DefaultWingSpec(nx, ny, nz))
	if err != nil {
		t.Fatal(err)
	}
	d, err := euler.NewDiscretization(m, nil, sys, euler.Options{Order: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := &Solver{Disc: d, PC: iluPC(0), Opts: opts}
	return s, d.FreestreamVector()
}

func TestSolveIncompressibleConverges(t *testing.T) {
	opts := DefaultOptions()
	opts.RelTol = 1e-7
	opts.MaxSteps = 60
	s, q := buildSolver(t, 7, 6, 5, euler.NewIncompressible(), opts)
	res, err := s.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: final %g of initial %g in %d steps",
			res.FinalRnorm, res.InitialRnorm, len(res.Steps))
	}
	// The steady state is a genuinely converged residual: re-evaluate.
	r := make([]float64, s.Disc.N())
	s.Disc.Residual(q, r)
	if got := sparse.Norm2(r); got > 1e-6*res.InitialRnorm {
		t.Errorf("re-evaluated residual %g not small", got)
	}
	// And the flow is nontrivial: velocity differs from freestream
	// somewhere.
	var maxDev float64
	inf := s.Disc.Sys.Freestream()
	b := s.Disc.Sys.B()
	for v := 0; v < s.Disc.M.NumVertices(); v++ {
		for c := 0; c < b; c++ {
			if d := math.Abs(q[v*b+c] - inf[c]); d > maxDev {
				maxDev = d
			}
		}
	}
	if maxDev < 1e-3 {
		t.Errorf("converged state deviates only %g from freestream; problem trivial", maxDev)
	}
}

func TestSolveCompressibleConverges(t *testing.T) {
	opts := DefaultOptions()
	opts.RelTol = 1e-6
	opts.MaxSteps = 80
	opts.CFL0 = 5
	s, q := buildSolver(t, 6, 5, 4, euler.NewCompressible(), opts)
	res, err := s.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("compressible did not converge: %g -> %g", res.InitialRnorm, res.FinalRnorm)
	}
}

func TestSERGrowsCFL(t *testing.T) {
	opts := DefaultOptions()
	opts.RelTol = 1e-7
	s, q := buildSolver(t, 6, 5, 4, euler.NewIncompressible(), opts)
	res, err := s.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) < 2 {
		t.Skip("converged too fast to observe CFL growth")
	}
	first := res.Steps[0].CFL
	last := res.Steps[len(res.Steps)-1].CFL
	if last <= first {
		t.Errorf("CFL did not grow: %g -> %g", first, last)
	}
	if first != opts.CFL0 {
		t.Errorf("first CFL %g, want CFL0 %g", first, opts.CFL0)
	}
}

func TestLargerCFL0FewerSteps(t *testing.T) {
	// Figure 5's effect: for this smooth flow, a more aggressive initial
	// CFL converges in fewer pseudo-timesteps.
	run := func(cfl0 float64) int {
		opts := DefaultOptions()
		opts.CFL0 = cfl0
		opts.RelTol = 1e-7
		opts.MaxSteps = 200
		s, q := buildSolver(t, 6, 5, 4, euler.NewIncompressible(), opts)
		res, err := s.Solve(q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("CFL0=%g did not converge", cfl0)
		}
		return len(res.Steps)
	}
	small, large := run(1), run(50)
	if large >= small {
		t.Errorf("CFL0=50 took %d steps, CFL0=1 took %d; expected aggressive CFL to win", large, small)
	}
}

func TestJacobianLagStillConverges(t *testing.T) {
	opts := DefaultOptions()
	opts.JacobianLag = 3
	opts.RelTol = 1e-6
	s, q := buildSolver(t, 6, 5, 4, euler.NewIncompressible(), opts)
	res, err := s.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("lagged-Jacobian solve did not converge")
	}
}

func TestOrderContinuation(t *testing.T) {
	m, err := mesh.GenerateWing(mesh.DefaultWingSpec(6, 5, 4))
	if err != nil {
		t.Fatal(err)
	}
	sys := euler.NewIncompressible()
	d1, err := euler.NewDiscretization(m, nil, sys, euler.Options{Order: 1})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := euler.NewDiscretization(m, d1.Geo, sys, euler.Options{Order: 2})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.SwitchOrderAt = 1e-2
	opts.RelTol = 1e-6
	opts.MaxSteps = 150
	s := &Solver{Disc: d1, Disc2: d2, PC: iluPC(0), Opts: opts}
	q := d1.FreestreamVector()
	res, err := s.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("order-continuation solve did not converge: %g -> %g in %d steps",
			res.InitialRnorm, res.FinalRnorm, len(res.Steps))
	}
	sawFirst, sawSecond := false, false
	for _, st := range res.Steps {
		switch st.Order {
		case 1:
			sawFirst = true
		case 2:
			sawSecond = true
		}
	}
	if !sawFirst || !sawSecond {
		t.Errorf("order continuation did not use both orders (first=%v second=%v)", sawFirst, sawSecond)
	}
}

func TestSolveValidation(t *testing.T) {
	s, q := buildSolver(t, 4, 3, 3, euler.NewIncompressible(), DefaultOptions())
	s.PC = nil
	if _, err := s.Solve(q); err == nil {
		t.Error("nil PC accepted")
	}
	s.PC = iluPC(0)
	if _, err := s.Solve(q[:5]); err == nil {
		t.Error("short state accepted")
	}
	s.Opts.CFL0 = 0
	if _, err := s.Solve(q); err == nil {
		t.Error("zero CFL0 accepted")
	}
}

func TestStepsRecordLinearIterations(t *testing.T) {
	opts := DefaultOptions()
	opts.RelTol = 1e-5
	s, q := buildSolver(t, 5, 4, 4, euler.NewIncompressible(), opts)
	res, err := s.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, st := range res.Steps {
		total += st.LinearIts
		if st.FluxEvals < 1 {
			t.Errorf("step %d recorded no flux evaluations", st.Index)
		}
	}
	if total != res.TotalLinearIts {
		t.Errorf("step linear its sum %d != total %d", total, res.TotalLinearIts)
	}
	if total == 0 {
		t.Error("no linear iterations recorded")
	}
}

func TestAssembledOperatorConverges(t *testing.T) {
	opts := DefaultOptions()
	opts.AssembledOperator = true
	opts.RelTol = 1e-6
	s, q := buildSolver(t, 6, 5, 4, euler.NewIncompressible(), opts)
	res, err := s.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("assembled-operator solve did not converge: %g -> %g",
			res.InitialRnorm, res.FinalRnorm)
	}
	// The assembled operator performs no flux evaluations inside GMRES,
	// so total flux evaluations are far below the matrix-free run's.
	opts2 := DefaultOptions()
	opts2.RelTol = 1e-6
	s2, q2 := buildSolver(t, 6, 5, 4, euler.NewIncompressible(), opts2)
	res2, err := s2.Solve(q2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFluxEvals >= res2.TotalFluxEvals {
		t.Errorf("assembled operator flux evals %d not below matrix-free %d",
			res.TotalFluxEvals, res2.TotalFluxEvals)
	}
}
