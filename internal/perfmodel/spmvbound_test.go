package perfmodel

import "testing"

func TestSpMVShapes(t *testing.T) {
	c := CSRShape(1000, 15000)
	if c.Flops() != 30000 {
		t.Errorf("CSR flops %d", c.Flops())
	}
	b := BCSRShape(250, 3750, 4) // same scalar size/nnz as c, blocked
	if b.N != 1000 || b.NNZ != 60000 {
		t.Errorf("BCSR shape wrong: %+v", b)
	}
	if b.Traffic() >= CSRShape(1000, 60000).Traffic() {
		t.Error("blocking did not reduce traffic")
	}
	if b.Loads() >= CSRShape(1000, 60000).Loads() {
		t.Error("blocking did not reduce loads")
	}
}

func TestSpMVBoundsOrdering(t *testing.T) {
	// On every era profile, scalar CSR SpMV is memory-bandwidth bound —
	// the paper's central observation about the sparse kernels.
	w := CSRShape(90708, 90708*60)
	for _, p := range Profiles() {
		rate, memBound := p.SpMVBound(w)
		if rate <= 0 {
			t.Errorf("%s: nonpositive bound", p.Name)
		}
		if !memBound {
			t.Errorf("%s: scalar SpMV not memory bound (bw %0.f vs instr %.0f)",
				p.Name, p.SpMVBandwidthBound(w), p.SpMVInstructionBound(w))
		}
		// The bound is far below peak — the "low computational
		// intensity" of sparse PDE kernels.
		if rate > p.PeakFlops/2 {
			t.Errorf("%s: SpMV bound %.0f implausibly close to peak %.0f", p.Name, rate, p.PeakFlops)
		}
	}
}

func TestBlockingRaisesBounds(t *testing.T) {
	nb := 22677
	deg := 15
	scalar := CSRShape(nb*4, nb*4*deg*4)
	blocked := BCSRShape(nb, nb*deg, 4)
	if scalar.NNZ != blocked.NNZ {
		t.Fatalf("shapes disagree: %d vs %d scalar nnz", scalar.NNZ, blocked.NNZ)
	}
	p := Origin2000
	if p.SpMVBandwidthBound(blocked) <= p.SpMVBandwidthBound(scalar) {
		t.Error("blocking did not raise the bandwidth bound")
	}
	if p.SpMVInstructionBound(blocked) <= p.SpMVInstructionBound(scalar) {
		t.Error("blocking did not raise the instruction bound")
	}
}

func TestSinglePrecisionRaisesBandwidthBound(t *testing.T) {
	w64 := SpMVShape{N: 4000, NNZ: 60000, NNZBlocks: 3750, ValBytes: 8}
	w32 := SpMVShape{N: 4000, NNZ: 60000, NNZBlocks: 3750, ValBytes: 4}
	p := Origin2000
	r64 := p.SpMVBandwidthBound(w64)
	r32 := p.SpMVBandwidthBound(w32)
	if r32 <= r64 {
		t.Errorf("float32 storage bound %.0f not above float64 %.0f", r32, r64)
	}
	// Value traffic dominates, so the gain approaches 2x.
	if r32/r64 < 1.5 {
		t.Errorf("float32 gain %.2f below 1.5", r32/r64)
	}
}
