package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConflictMissBoundBelowCapacity(t *testing.T) {
	if got := ConflictMissBound(1000, 100, 200, 16); got != 0 {
		t.Errorf("span < capacity should give 0, got %g", got)
	}
	if got := ConflictMissBound(1000, 200, 200, 16); got != 0 {
		t.Errorf("span == capacity gives (span-c)=0, got %g", got)
	}
}

func TestConflictMissBoundFormula(t *testing.T) {
	// N=10, span=132, c=100, w=16: ceil(32/16)=2 -> 20.
	if got := ConflictMissBound(10, 132, 100, 16); got != 20 {
		t.Errorf("got %g, want 20", got)
	}
	// Non-divisible remainder rounds up: span-c=33 -> ceil=3 -> 30.
	if got := ConflictMissBound(10, 133, 100, 16); got != 30 {
		t.Errorf("got %g, want 30", got)
	}
}

func TestInterlacedBoundBeatsNoninterlaced(t *testing.T) {
	// The central comparison of section 2.1.1: for the same N, the
	// interlaced bound (span = beta << N) is far below the noninterlaced
	// bound (span = N).
	n, beta, c, w := 100000, 2000, 65536, 16
	ni := ConflictMissBound(n, n, c, w)
	il := ConflictMissBound(n, beta, c, w)
	if il != 0 {
		t.Errorf("interlaced bound should be 0 when beta < C_sc, got %g", il)
	}
	if ni <= 0 {
		t.Errorf("noninterlaced bound should be positive, got %g", ni)
	}
	// And when beta slightly exceeds capacity, still much smaller than
	// the N-span bound.
	il2 := ConflictMissBound(n, c+1600, c, w)
	if il2 <= 0 || il2 >= ni {
		t.Errorf("interlaced bound %g not in (0, %g)", il2, ni)
	}
}

func TestTLBMissBound(t *testing.T) {
	// 64 entries x 2048 doublewords/page (16KB pages).
	got := TLBMissBound(1000, 64*2048+2048, 64, 2048)
	if got != 1000 {
		t.Errorf("one extra page over capacity: got %g, want 1000", got)
	}
	if TLBMissBound(1000, 1000, 64, 2048) != 0 {
		t.Error("small span should give 0 TLB bound")
	}
}

func TestConflictMissBoundMonotone(t *testing.T) {
	f := func(spanDelta uint16) bool {
		base := ConflictMissBound(5000, 70000, 65536, 16)
		grown := ConflictMissBound(5000, 70000+int(spanDelta), 65536, 16)
		return grown >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConflictMissBoundPanicsOnBadLine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ConflictMissBound(10, 10, 10, 0)
}

func TestSpMVTraffic(t *testing.T) {
	// Scalar CSR, n=100, nnz=1500: 1500*8 + 1500*4 + 101*4 + 800 + 800.
	want := int64(1500*8 + 1500*4 + 101*4 + 100*8 + 100*8)
	if got := SpMVTraffic(100, 1500, 1500, 8); got != want {
		t.Errorf("traffic = %d, want %d", got, want)
	}
	// Blocking with b=4 cuts index traffic 16x.
	scalar := SpMVTraffic(400, 6400, 6400, 8)
	blocked := SpMVTraffic(400, 6400, 400, 8)
	if blocked >= scalar {
		t.Errorf("blocked traffic %d not < scalar %d", blocked, scalar)
	}
	// Single precision cuts value traffic 2x.
	single := SpMVTraffic(400, 6400, 400, 4)
	if single >= blocked {
		t.Errorf("single traffic %d not < double %d", single, blocked)
	}
	if SpMVFlops(1500) != 3000 {
		t.Error("SpMVFlops wrong")
	}
}

func TestBandwidthLimitedTime(t *testing.T) {
	if got := BandwidthLimitedTime(1e8, 1e8); got != 1 {
		t.Errorf("got %g, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero bandwidth")
		}
	}()
	BandwidthLimitedTime(1, 0)
}

func TestProfileLookup(t *testing.T) {
	for _, want := range []string{"ASCI Red", "Cray T3E", "Blue Pacific", "Origin 2000"} {
		p, err := ProfileByName(want)
		if err != nil || p.Name != want {
			t.Errorf("ProfileByName(%q) = %v, %v", want, p.Name, err)
		}
		if p.StreamBW <= 0 || p.PeakFlops <= 0 || p.ProcsPerNode < 1 {
			t.Errorf("%s: nonsensical profile numbers", want)
		}
		if p.FluxFlopRate >= p.PeakFlops {
			t.Errorf("%s: flux rate above peak", want)
		}
	}
	if _, err := ProfileByName("Connection Machine"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestComputeTimeRoofline(t *testing.T) {
	p := Profile{PeakFlops: 1e9, StreamBW: 1e8}
	// Memory bound: 1e8 bytes at 1e8 B/s = 1s >> 1e6 flops at 1e9.
	if got := p.ComputeTime(1e6, 1e8, 0); got != 1 {
		t.Errorf("memory-bound time = %g, want 1", got)
	}
	// Compute bound: 1e9 flops at 1e9 = 1s >> tiny traffic.
	if got := p.ComputeTime(1e9, 8, 0); got != 1 {
		t.Errorf("compute-bound time = %g, want 1", got)
	}
	// Custom sustained rate.
	if got := p.ComputeTime(1e9, 8, 5e8); got != 2 {
		t.Errorf("custom-rate time = %g, want 2", got)
	}
}

func TestMessageAndReduceTimes(t *testing.T) {
	p := Profile{NetLatency: 1e-5, NetBW: 1e8, ReduceLatency: 1e-6}
	if got := p.MessageTime(1e6); math.Abs(got-(1e-5+1e-2)) > 1e-12 {
		t.Errorf("MessageTime = %g", got)
	}
	if p.ReduceTime(1) != 0 {
		t.Error("ReduceTime(1) should be 0")
	}
	// 1024 ranks: 10 tree levels.
	r1024 := p.ReduceTime(1024)
	r2 := p.ReduceTime(2)
	if r1024 <= r2 || math.Abs(r1024/r2-10) > 1e-9 {
		t.Errorf("ReduceTime scaling wrong: %g vs %g", r1024, r2)
	}
}

func TestDecompose(t *testing.T) {
	// Mirror Table 3's structure: base 128 procs.
	procs := []int{128, 256, 512, 1024}
	its := []int{22, 24, 26, 29}
	times := []float64{2039, 1144, 638, 362}
	eff, err := Decompose(procs, its, times)
	if err != nil {
		t.Fatal(err)
	}
	if eff[0].Speedup != 1 || eff[0].Overall != 1 || eff[0].Alg != 1 || eff[0].Impl != 1 {
		t.Errorf("base row not unity: %+v", eff[0])
	}
	// Table 3's published values: speedup 5.63, overall 0.70, alg 0.76.
	if math.Abs(eff[3].Speedup-5.63) > 0.01 {
		t.Errorf("speedup = %g, want 5.63", eff[3].Speedup)
	}
	if math.Abs(eff[3].Overall-0.70) > 0.01 {
		t.Errorf("overall = %g, want 0.70", eff[3].Overall)
	}
	if math.Abs(eff[3].Alg-22.0/29.0) > 1e-9 {
		t.Errorf("alg = %g", eff[3].Alg)
	}
	if math.Abs(eff[3].Impl-eff[3].Overall/eff[3].Alg) > 1e-12 {
		t.Errorf("impl != overall/alg")
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose([]int{1, 2}, []int{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Decompose(nil, nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Decompose([]int{1}, []int{0}, []float64{1}); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestDecomposeProperty(t *testing.T) {
	// Property: overall = alg * impl exactly, for arbitrary valid inputs.
	f := func(a, b, c uint8) bool {
		procs := []int{16, 32}
		its := []int{int(a%50) + 1, int(b%50) + 1}
		times := []float64{float64(c%100) + 1, float64(a%70) + 1}
		eff, err := Decompose(procs, its, times)
		if err != nil {
			return false
		}
		return math.Abs(eff[1].Overall-eff[1].Alg*eff[1].Impl) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
