package perfmodel

// Achievable-performance bounds for sparse matrix-vector product,
// following the companion paper the text leans on for its analysis
// (Gropp, Kaushik, Keyes, Smith, "Toward realistic performance bounds
// for implicit CFD codes", Parallel CFD'99 — reference [10]): the
// sustained flop rate of SpMV is capped both by the memory bandwidth
// needed to stream the matrix and by the instruction-issue cost of the
// loads and stores, and on every machine of the era the memory bound
// bites first. Structural blocking raises both bounds — fewer index
// loads and fewer load instructions per flop.

// SpMVShape describes one SpMV workload for the bounds.
type SpMVShape struct {
	N         int // scalar dimension
	NNZ       int // scalar nonzeros
	NNZBlocks int // stored blocks (== NNZ for scalar CSR)
	ValBytes  int // bytes per stored value (8 float64, 4 float32)
}

// CSRShape returns the shape of a scalar CSR matrix.
func CSRShape(n, nnz int) SpMVShape { return SpMVShape{N: n, NNZ: nnz, NNZBlocks: nnz, ValBytes: 8} }

// BCSRShape returns the shape of a block CSR matrix with b×b blocks.
func BCSRShape(nb, nnzBlocks, b int) SpMVShape {
	return SpMVShape{N: nb * b, NNZ: nnzBlocks * b * b, NNZBlocks: nnzBlocks, ValBytes: 8}
}

// Flops returns the floating-point work.
func (w SpMVShape) Flops() int64 { return SpMVFlops(w.NNZ) }

// Traffic returns the minimum memory traffic in bytes.
func (w SpMVShape) Traffic() int64 { return SpMVTraffic(w.N, w.NNZ, w.NNZBlocks, w.ValBytes) }

// Loads returns the number of load instructions with perfect register
// reuse within a block: every value once, one index per block, one
// x-load per block column entry (b values per block amortize to one
// load each of the b x's reused across the block's rows), plus row
// pointers.
func (w SpMVShape) Loads() int64 {
	b := 1
	if w.NNZBlocks > 0 {
		b = w.NNZ / w.NNZBlocks // b*b scalars per block
	}
	xLoads := int64(w.NNZ)
	if b > 1 {
		// For b×b blocks, the b x-values load once per block, not once
		// per scalar entry.
		xLoads = int64(w.NNZBlocks) * int64(isqrt(b))
	}
	return int64(w.NNZ) + // matrix values
		int64(w.NNZBlocks) + // column indices
		int64(w.N+1) + // row pointers
		xLoads
}

func isqrt(bb int) int {
	r := 1
	for r*r < bb {
		r++
	}
	return r
}

// Stores returns the store instructions (the result vector).
func (w SpMVShape) Stores() int64 { return int64(w.N) }

// SpMVBandwidthBound returns the flop/s rate permitted by the machine's
// sustainable memory bandwidth.
func (p Profile) SpMVBandwidthBound(w SpMVShape) float64 {
	return float64(w.Flops()) * p.StreamBW / float64(w.Traffic())
}

// SpMVInstructionBound returns the flop/s rate permitted by instruction
// issue, assuming one load/store unit (one memory operation per cycle)
// and floating-point units that keep pace — the reference's
// issue-limited bound.
func (p Profile) SpMVInstructionBound(w SpMVShape) float64 {
	memOps := w.Loads() + w.Stores()
	cycles := float64(memOps)
	return float64(w.Flops()) / cycles * p.ClockHz
}

// SpMVBound returns the achievable flop/s (the smaller of the two
// bounds) and which one binds.
func (p Profile) SpMVBound(w SpMVShape) (rate float64, memoryBound bool) {
	bw := p.SpMVBandwidthBound(w)
	in := p.SpMVInstructionBound(w)
	if bw <= in {
		return bw, true
	}
	return in, false
}
