package perfmodel

import (
	"fmt"
	"sort"
)

// Measured parallel-efficiency decomposition (Table 3 of the paper,
// from real per-rank phase timings instead of the virtual-machine
// model). The paper splits the overall efficiency at p processors
// relative to a base run as
//
//	η_overall = η_alg · η_impl
//
// where η_alg = its_base / its_p charges efficiency lost to the
// preconditioner weakening as subdomains shrink (more linear iterations
// for the same nonlinear progress), and η_impl = η_overall / η_alg is
// what the implementation loses per iteration — in this repository's
// measured runs, dominated by the scatter_wait phase (the paper's
// "implicit synchronization" column) and the scatter pack/unpack
// traffic (its "scatter" column).

// RankPhases is one rank's measured seconds by phase name (as reported
// by prof.Report; self times, so phases do not double-count).
type RankPhases map[string]float64

// MeasuredRun is one solve at a given rank count: the per-rank phase
// timings plus the linear iteration count the solve needed.
type MeasuredRun struct {
	Procs     int
	LinearIts int
	Ranks     []RankPhases
}

// EfficiencyRow is one line of the measured Table 3.
type EfficiencyRow struct {
	Procs      int     `json:"procs"`
	Seconds    float64 `json:"seconds"`      // slowest rank's total phase time
	LinearIts  int     `json:"linear_its"`   // iterations to converge
	Speedup    float64 `json:"speedup"`      // vs the base run
	EffOverall float64 `json:"eff_overall"`  // speedup / (p / p_base)
	EffAlg     float64 `json:"eff_alg"`      // its_base / its_p
	EffImpl    float64 `json:"eff_impl"`     // eff_overall / eff_alg
	WaitMaxSec float64 `json:"wait_max_sec"` // max over ranks of scatter_wait
	WaitAvgSec float64 `json:"wait_avg_sec"` // mean over ranks of scatter_wait
	PackMaxSec float64 `json:"pack_max_sec"` // max over ranks of scatter_pack (+legacy scatter)
	Imbalance  float64 `json:"imbalance"`    // max/avg of per-rank total time
}

// Seconds sums one rank's phase self-times (in sorted phase order, so
// the float accumulation is deterministic).
func (r RankPhases) Seconds() float64 {
	keys := make([]string, 0, len(r))
	for ph := range r {
		keys = append(keys, ph)
	}
	sort.Strings(keys)
	var s float64
	for _, ph := range keys {
		s += r[ph]
	}
	return s
}

// DecomposeEfficiency reduces measured runs (ascending rank counts;
// the first is the base) into the paper's Table 3 columns. A run's
// time is its slowest rank's total phase time — the synchronized
// solve finishes when the last rank does — and the max-vs-avg ratio of
// the per-rank totals is reported as the load imbalance the
// implicit-synchronization wait absorbs.
func DecomposeEfficiency(runs []MeasuredRun) ([]EfficiencyRow, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("perfmodel: no measured runs")
	}
	rows := make([]EfficiencyRow, 0, len(runs))
	var base EfficiencyRow
	for i, run := range runs {
		if run.Procs < 1 || len(run.Ranks) != run.Procs {
			return nil, fmt.Errorf("perfmodel: run %d has %d rank profiles for %d procs", i, len(run.Ranks), run.Procs)
		}
		if run.LinearIts < 1 {
			return nil, fmt.Errorf("perfmodel: run %d has no linear iterations", i)
		}
		if i > 0 && run.Procs <= runs[i-1].Procs {
			return nil, fmt.Errorf("perfmodel: rank counts must ascend, got %d after %d", run.Procs, runs[i-1].Procs)
		}
		var maxT, sumT float64
		row := EfficiencyRow{Procs: run.Procs, LinearIts: run.LinearIts}
		for _, r := range run.Ranks {
			t := r.Seconds()
			sumT += t
			if t > maxT {
				maxT = t
			}
			w := r["scatter_wait"]
			row.WaitAvgSec += w
			if w > row.WaitMaxSec {
				row.WaitMaxSec = w
			}
			// The blocking baseline folds pack and wait into "scatter";
			// count it with the pack column so pre-overlap runs decompose
			// too.
			if p := r["scatter_pack"] + r["scatter"]; p > row.PackMaxSec {
				row.PackMaxSec = p
			}
		}
		row.Seconds = maxT
		row.WaitAvgSec /= float64(run.Procs)
		if avg := sumT / float64(run.Procs); avg > 0 {
			row.Imbalance = maxT / avg
		}
		if i == 0 {
			base = row
		}
		if row.Seconds <= 0 || base.Seconds <= 0 {
			return nil, fmt.Errorf("perfmodel: run %d measured no time", i)
		}
		row.Speedup = base.Seconds / row.Seconds
		row.EffOverall = row.Speedup / (float64(row.Procs) / float64(base.Procs))
		row.EffAlg = float64(base.LinearIts) / float64(row.LinearIts)
		row.EffImpl = row.EffOverall / row.EffAlg
		rows = append(rows, row)
	}
	return rows, nil
}
