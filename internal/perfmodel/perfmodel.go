// Package perfmodel implements the paper's analytical performance
// models: the conflict-miss bounds for sparse matrix-vector product under
// interlaced and noninterlaced layouts (equations (1) and (2), with the
// TLB reinterpretation), STREAM-bandwidth-limited time estimates for the
// memory-bound sparse kernels, machine profiles for the platforms of the
// paper, and the parallel-efficiency decomposition
// η_overall = η_alg · η_impl used in Table 3.
package perfmodel

import "fmt"

// ConflictMissBound evaluates the paper's equation (1)/(2): for a sparse
// matrix-vector product whose working set per row spans `span` doublewords
// (span = N for the noninterlaced layout, span = β (the matrix bandwidth)
// for the interlaced layout), with a cache of capacity c doublewords and
// lines of w doublewords, the number of conflict misses over N rows is
// bounded by
//
//	N * ceil((span - c) / w)   when span >= c, else 0.
func ConflictMissBound(n, span, c, w int) float64 {
	if w <= 0 {
		//lint:panic-ok documented precondition: the cache line size must be positive
		panic("perfmodel: nonpositive cache line size")
	}
	if span < c {
		return 0
	}
	return float64(n) * ceilDiv(span-c, w)
}

// TLBMissBound is the TLB reading of the same bound: capacity is the
// number of page-table entries times the page size in doublewords, and
// the "line" is one page.
func TLBMissBound(n, span, entries, pageDoubleWords int) float64 {
	return ConflictMissBound(n, span, entries*pageDoubleWords, pageDoubleWords)
}

func ceilDiv(a, b int) float64 {
	if a <= 0 {
		return 0
	}
	return float64((a + b - 1) / b)
}

// SpMVTraffic returns the minimum memory traffic in bytes of one sparse
// matrix-vector product y = A x, following the analysis of the companion
// paper [10]: every matrix value and column index is read once, the row
// pointer array is read once, and with perfect cache reuse x is read once
// and y written once.
//
// n is the scalar dimension, nnz the scalar nonzeros, nnzBlocks the
// number of stored blocks (equal to nnz for scalar CSR), and valBytes the
// bytes per stored value (8 for float64, 4 for float32).
func SpMVTraffic(n, nnz, nnzBlocks, valBytes int) int64 {
	const idxBytes = 4
	return int64(nnz)*int64(valBytes) + // matrix values
		int64(nnzBlocks)*idxBytes + // column indices (one per block)
		int64(n+1)*idxBytes + // row pointers
		int64(n)*8 + // x read
		int64(n)*8 // y written
}

// SpMVFlops returns the floating-point operations of one SpMV.
func SpMVFlops(nnz int) int64 { return 2 * int64(nnz) }

// BandwidthLimitedTime returns the time in seconds to move `bytes` at the
// sustainable memory bandwidth bw (bytes/s) — the paper's model for the
// sparse linear-algebra phases, which run at the STREAM limit.
func BandwidthLimitedTime(bytes int64, bw float64) float64 {
	if bw <= 0 {
		//lint:panic-ok documented precondition: the bandwidth must be positive
		panic("perfmodel: nonpositive bandwidth")
	}
	return float64(bytes) / bw
}

// Profile describes a machine node for the virtual-machine timing model.
// Numbers are order-of-magnitude faithful to the published platforms; the
// reproduction targets the *shape* of the scaling curves, not absolute
// times.
type Profile struct {
	Name          string
	ClockHz       float64 // processor clock
	PeakFlops     float64 // per processor, flop/s
	StreamBW      float64 // sustainable memory bandwidth per processor, bytes/s
	NodeStreamBW  float64 // aggregate bandwidth of one node (shared by its processors)
	ProcsPerNode  int
	NetLatency    float64 // point-to-point message latency, seconds
	NetBW         float64 // point-to-point bandwidth per node, bytes/s
	ReduceLatency float64 // per-tree-level latency of a reduction, seconds
	// FluxFlopRate is the sustained flop/s of the instruction-scheduling-
	// limited flux kernel (not memory bound; a fraction of peak).
	FluxFlopRate float64
}

// The paper's platforms.
var (
	// ASCIRed: Intel ASCI Red, 333 MHz Pentium Pro, two processors per
	// node sharing one memory bus.
	ASCIRed = Profile{
		Name: "ASCI Red", ClockHz: 333e6, PeakFlops: 333e6,
		StreamBW: 140e6, NodeStreamBW: 200e6, ProcsPerNode: 2,
		NetLatency: 18e-6, NetBW: 310e6, ReduceLatency: 12e-6,
		FluxFlopRate: 90e6,
	}
	// CrayT3E: 600 MHz Alpha 21164 (EV5), one processor per node, fast
	// E-register network.
	CrayT3E = Profile{
		Name: "Cray T3E", ClockHz: 600e6, PeakFlops: 1200e6,
		StreamBW: 380e6, NodeStreamBW: 380e6, ProcsPerNode: 1,
		NetLatency: 10e-6, NetBW: 340e6, ReduceLatency: 8e-6,
		FluxFlopRate: 160e6,
	}
	// BluePacific: IBM ASCI Blue Pacific, 332 MHz PowerPC 604e, four
	// processors per node.
	BluePacific = Profile{
		Name: "Blue Pacific", ClockHz: 332e6, PeakFlops: 664e6,
		StreamBW: 150e6, NodeStreamBW: 420e6, ProcsPerNode: 4,
		NetLatency: 30e-6, NetBW: 150e6, ReduceLatency: 20e-6,
		FluxFlopRate: 110e6,
	}
	// Origin2000: SGI Origin 2000, 250 MHz MIPS R10000 — the platform of
	// Tables 1 and 2 and Figure 3.
	Origin2000 = Profile{
		Name: "Origin 2000", ClockHz: 250e6, PeakFlops: 500e6,
		StreamBW: 300e6, NodeStreamBW: 300e6, ProcsPerNode: 1,
		NetLatency: 5e-6, NetBW: 600e6, ReduceLatency: 5e-6,
		FluxFlopRate: 140e6,
	}
)

// Profiles returns the built-in platform profiles.
func Profiles() []Profile { return []Profile{ASCIRed, CrayT3E, BluePacific, Origin2000} }

// ProfileByName looks a built-in profile up by name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("perfmodel: unknown profile %q", name)
}

// ComputeTime models the execution time of a kernel performing `flops`
// floating-point operations while moving `bytes` to and from memory on
// one processor: the maximum of the compute-bound and bandwidth-bound
// times (a two-parameter roofline).
func (p Profile) ComputeTime(flops, bytes int64, rate float64) float64 {
	if rate <= 0 {
		rate = p.PeakFlops
	}
	tc := float64(flops) / rate
	tm := float64(bytes) / p.StreamBW
	if tc > tm {
		return tc
	}
	return tm
}

// MessageTime models a point-to-point message of n bytes.
func (p Profile) MessageTime(bytes int64) float64 {
	return p.NetLatency + float64(bytes)/p.NetBW
}

// ReduceTime models a global reduction of one scalar across n ranks
// (binary-tree: ceil(log2 n) levels each costing ReduceLatency plus a
// small wire time).
func (p Profile) ReduceTime(ranks int) float64 {
	if ranks <= 1 {
		return 0
	}
	levels := 0
	for n := ranks - 1; n > 0; n >>= 1 {
		levels++
	}
	return float64(levels) * (p.ReduceLatency + 64/p.NetBW)
}

// Efficiency is one row of the paper's Table 3 efficiency decomposition.
type Efficiency struct {
	Procs   int
	Speedup float64 // t_base * 1 / t_p, relative to the base row
	Overall float64 // speedup / (p / p_base)
	Alg     float64 // its_base / its_p : degradation from iteration growth
	Impl    float64 // overall / alg   : all other nonscalable factors
}

// Decompose computes the efficiency decomposition relative to the first
// entry: procs[0] is the base processor count. its[i] is the total linear
// iteration count at procs[i]; times[i] the execution time.
func Decompose(procs []int, its []int, times []float64) ([]Efficiency, error) {
	if len(procs) == 0 || len(procs) != len(its) || len(procs) != len(times) {
		return nil, fmt.Errorf("perfmodel: mismatched decomposition inputs")
	}
	base := 0
	out := make([]Efficiency, len(procs))
	for i := range procs {
		if times[i] <= 0 || its[i] <= 0 || procs[i] <= 0 {
			return nil, fmt.Errorf("perfmodel: nonpositive input at %d", i)
		}
		sp := times[base] / times[i]
		overall := sp / (float64(procs[i]) / float64(procs[base]))
		alg := float64(its[base]) / float64(its[i])
		out[i] = Efficiency{
			Procs:   procs[i],
			Speedup: sp,
			Overall: overall,
			Alg:     alg,
			Impl:    overall / alg,
		}
	}
	return out, nil
}
