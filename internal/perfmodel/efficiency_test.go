package perfmodel

import (
	"math"
	"testing"
)

func TestDecomposeEfficiencyIdentityBase(t *testing.T) {
	runs := []MeasuredRun{
		{Procs: 2, LinearIts: 10, Ranks: []RankPhases{
			{"interior": 4, "boundary": 1, "scatter_wait": 0.5, "scatter_pack": 0.2},
			{"interior": 4, "boundary": 1, "scatter_wait": 0.3, "scatter_pack": 0.2},
		}},
		{Procs: 4, LinearIts: 12, Ranks: []RankPhases{
			{"interior": 2, "scatter_wait": 0.4},
			{"interior": 2, "scatter_wait": 0.2},
			{"interior": 2.2, "scatter_wait": 0.4},
			{"interior": 2, "scatter_wait": 0.2},
		}},
	}
	rows, err := DecomposeEfficiency(runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	b := rows[0]
	if b.Speedup != 1 || b.EffOverall != 1 || b.EffAlg != 1 || math.Abs(b.EffImpl-1) > 1e-15 {
		t.Errorf("base row not identity: %+v", b)
	}
	// Base time = slowest rank = 4+1+0.5+0.2 = 5.7.
	if math.Abs(b.Seconds-5.7) > 1e-12 {
		t.Errorf("base seconds %g, want 5.7", b.Seconds)
	}
	if math.Abs(b.WaitMaxSec-0.5) > 1e-12 || math.Abs(b.WaitAvgSec-0.4) > 1e-12 {
		t.Errorf("wait columns %g/%g, want 0.5/0.4", b.WaitMaxSec, b.WaitAvgSec)
	}
	r := rows[1]
	// 4-proc time = 2.6; speedup 5.7/2.6; eff_overall = speedup/2.
	wantSpeed := 5.7 / 2.6
	if math.Abs(r.Speedup-wantSpeed) > 1e-12 {
		t.Errorf("speedup %g, want %g", r.Speedup, wantSpeed)
	}
	if math.Abs(r.EffOverall-wantSpeed/2) > 1e-12 {
		t.Errorf("eff_overall %g, want %g", r.EffOverall, wantSpeed/2)
	}
	if math.Abs(r.EffAlg-10.0/12.0) > 1e-12 {
		t.Errorf("eff_alg %g, want %g", r.EffAlg, 10.0/12.0)
	}
	// The decomposition must close: eff_overall = eff_alg * eff_impl.
	if math.Abs(r.EffAlg*r.EffImpl-r.EffOverall) > 1e-12 {
		t.Errorf("decomposition does not close: %g * %g != %g", r.EffAlg, r.EffImpl, r.EffOverall)
	}
	if r.Imbalance < 1 {
		t.Errorf("imbalance %g < 1", r.Imbalance)
	}
}

func TestDecomposeEfficiencyLegacyScatterCountsAsPack(t *testing.T) {
	rows, err := DecomposeEfficiency([]MeasuredRun{
		{Procs: 1, LinearIts: 5, Ranks: []RankPhases{{"matvec": 1, "scatter": 0.25}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rows[0].PackMaxSec-0.25) > 1e-15 {
		t.Errorf("blocking scatter not folded into pack column: %g", rows[0].PackMaxSec)
	}
}

func TestDecomposeEfficiencyValidation(t *testing.T) {
	if _, err := DecomposeEfficiency(nil); err == nil {
		t.Error("empty runs accepted")
	}
	if _, err := DecomposeEfficiency([]MeasuredRun{{Procs: 2, LinearIts: 1, Ranks: []RankPhases{{}}}}); err == nil {
		t.Error("mismatched rank count accepted")
	}
	if _, err := DecomposeEfficiency([]MeasuredRun{{Procs: 1, LinearIts: 0, Ranks: []RankPhases{{"a": 1}}}}); err == nil {
		t.Error("zero iterations accepted")
	}
	ok := MeasuredRun{Procs: 2, LinearIts: 1, Ranks: []RankPhases{{"a": 1}, {"a": 1}}}
	if _, err := DecomposeEfficiency([]MeasuredRun{ok, {Procs: 2, LinearIts: 1, Ranks: ok.Ranks}}); err == nil {
		t.Error("non-ascending rank counts accepted")
	}
}
