package ilu

import (
	"testing"

	"petscfun3d/internal/par"
)

// levelFixture factors a wing matrix for the schedule tests.
func levelFixture(t testing.TB, b, level int, single bool) *Factorization {
	t.Helper()
	a := wingBlockMatrix(t, 8, 5, 4, b, 42)
	f, err := Factor(a, Options{Level: level, SinglePrecision: single})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestLevelSetsAreAValidSchedule: every row appears exactly once per
// direction, and every dependency lands in a strictly earlier level.
func TestLevelSetsAreAValidSchedule(t *testing.T) {
	for _, level := range []int{0, 1, 2} {
		f := levelFixture(t, 4, level, false)
		for dir, sched := range map[string]struct{ rows, ptr []int32 }{
			"fwd": {f.fwdRows, f.fwdPtr},
			"bwd": {f.bwdRows, f.bwdPtr},
		} {
			if len(sched.rows) != f.NB {
				t.Fatalf("level=%d %s: %d scheduled rows, want %d", level, dir, len(sched.rows), f.NB)
			}
			levelOf := make([]int, f.NB)
			seen := make([]bool, f.NB)
			for l := 0; l+1 < len(sched.ptr); l++ {
				for _, i := range sched.rows[sched.ptr[l]:sched.ptr[l+1]] {
					if seen[i] {
						t.Fatalf("level=%d %s: row %d scheduled twice", level, dir, i)
					}
					seen[i] = true
					levelOf[i] = l
				}
			}
			for i := 0; i < f.NB; i++ {
				if !seen[i] {
					t.Fatalf("level=%d %s: row %d never scheduled", level, dir, i)
				}
				lo, hi := f.RowPtr[i], f.diagK[i]
				if dir == "bwd" {
					lo, hi = f.diagK[i]+1, f.RowPtr[i+1]
				}
				for k := lo; k < hi; k++ {
					j := f.ColIdx[k]
					if levelOf[j] >= levelOf[i] {
						t.Fatalf("level=%d %s: row %d (level %d) depends on row %d (level %d)",
							level, dir, i, levelOf[i], j, levelOf[j])
					}
				}
			}
		}
	}
}

// TestSolveParBitwiseIdentical: the level-scheduled solve matches the
// sequential solve bit for bit at every worker count, for both storage
// precisions and several fill levels, across repeated runs.
func TestSolveParBitwiseIdentical(t *testing.T) {
	for _, single := range []bool{false, true} {
		for _, level := range []int{0, 1} {
			f := levelFixture(t, 4, level, single)
			n := f.NB * f.B
			b := make([]float64, n)
			for i := range b {
				b[i] = float64(i%13) - 6.0
			}
			want := make([]float64, n)
			f.Solve(b, want)
			for _, nw := range []int{1, 2, 4, 8} {
				p := par.New(nw)
				got := make([]float64, n)
				for rep := 0; rep < 3; rep++ {
					f.SolvePar(p, b, got)
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("single=%v level=%d nw=%d rep=%d: x[%d]=%x, want %x",
								single, level, nw, rep, i, got[i], want[i])
						}
					}
				}
				p.Close()
			}
		}
	}
}

// TestSolveParNilPool: a nil pool falls back to the sequential solve.
func TestSolveParNilPool(t *testing.T) {
	f := levelFixture(t, 4, 0, false)
	n := f.NB * f.B
	b := make([]float64, n)
	for i := range b {
		b[i] = 1.0 / float64(i+1)
	}
	want := make([]float64, n)
	got := make([]float64, n)
	f.Solve(b, want)
	f.SolvePar(nil, b, got)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("x[%d]=%x, want %x", i, got[i], want[i])
		}
	}
}

// TestLevelStats: the schedule statistics are internally consistent and
// show real parallelism on a mesh-derived pattern.
func TestLevelStats(t *testing.T) {
	f := levelFixture(t, 4, 1, false)
	st := f.LevelStats()
	if st.Rows != f.NB {
		t.Fatalf("Rows=%d, want %d", st.Rows, f.NB)
	}
	if st.FwdLevels < 1 || st.FwdLevels > f.NB || st.BwdLevels < 1 || st.BwdLevels > f.NB {
		t.Fatalf("level counts out of range: fwd=%d bwd=%d NB=%d", st.FwdLevels, st.BwdLevels, f.NB)
	}
	if st.MaxWidth < 1 || st.MaxWidth > f.NB {
		t.Fatalf("MaxWidth=%d out of range", st.MaxWidth)
	}
	if st.AvgWidth <= 1 {
		t.Fatalf("AvgWidth=%.2f: a wing mesh schedule should expose parallelism", st.AvgWidth)
	}
}

// TestSolveParSteadyStateAllocs: after a warm-up solve sizes the
// per-worker scratch, repeated threaded solves do not allocate.
func TestSolveParSteadyStateAllocs(t *testing.T) {
	f := levelFixture(t, 4, 1, false)
	n := f.NB * f.B
	b := make([]float64, n)
	x := make([]float64, n)
	for i := range b {
		b[i] = float64(i % 7)
	}
	p := par.New(4)
	defer p.Close()
	f.SolvePar(p, b, x) // warm up scratch
	if avg := testing.AllocsPerRun(20, func() { f.SolvePar(p, b, x) }); avg > 0 {
		t.Fatalf("SolvePar allocates %.1f objects per solve", avg)
	}
}
