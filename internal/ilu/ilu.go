// Package ilu implements block incomplete LU factorization with level-of-
// fill control — ILU(k) — on block CSR matrices, the subdomain solver of
// the paper's additive Schwarz preconditioner (Tables 1, 3, 4), plus the
// single-precision storage variant whose bandwidth savings Table 2
// measures. Factorization and solves operate on B×B blocks; all
// arithmetic is float64 even when storage is float32.
package ilu

import (
	"fmt"
	"math"

	"petscfun3d/internal/prof"
	"petscfun3d/internal/sparse"
)

// Factorization holds the combined L\U factors of a block ILU(k)
// factorization. L has implicit identity diagonal blocks; U's diagonal
// blocks are stored inverted for fast triangular solves.
type Factorization struct {
	NB     int
	B      int
	Level  int
	RowPtr []int32
	ColIdx []int32 // sorted within each row; includes the diagonal
	diagK  []int32 // index (block slot) of the diagonal in each row

	// Exactly one of val64/val32 is non-nil, per the storage precision.
	val64 []float64
	val32 []float32
	// invDiag stores the inverted U diagonal blocks (always float64 in
	// the double path, float32 in the single path).
	invDiag64 []float64
	invDiag32 []float32

	// Level-set schedule of the triangular solves (levels.go): block
	// rows grouped by dependency depth in the L (forward) and U
	// (backward) DAGs, computed once per factorization from the symbolic
	// pattern. Level l's rows are fwdRows[fwdPtr[l]:fwdPtr[l+1]]
	// (ascending within each level); rows of one level depend only on
	// rows of earlier levels, so a level can run on the worker pool.
	fwdRows, bwdRows []int32
	fwdPtr, bwdPtr   []int32

	// Solve scratch, hoisted out of the bandwidth-bound sweeps: seqTmp
	// is the sequential diagonal-multiply temporary for block sizes the
	// stack array cannot hold (B > 5); parScratch holds one such
	// temporary per pool worker.
	seqTmp     []float64
	parScratch []float64
	task       triTask
}

// Options configures a factorization.
type Options struct {
	// Level is the fill level k of ILU(k): 0 keeps the sparsity of A.
	Level int
	// SinglePrecision stores the factors in float32 (half the memory
	// traffic in the bandwidth-bound triangular solves).
	SinglePrecision bool
}

// NNZBlocks returns the number of stored blocks in the factors.
func (f *Factorization) NNZBlocks() int { return len(f.ColIdx) }

// BytesPerValue returns 4 or 8 according to the storage precision.
func (f *Factorization) BytesPerValue() int {
	if f.val32 != nil {
		return 4
	}
	return 8
}

// FactorFlopsFor estimates the floating-point work of factoring nnzb
// stored blocks of size b: each block participates in O(1) block-block
// multiplies of 2b³ flops. Shared between the measured profiler and the
// virtual-machine cost model (internal/core).
func FactorFlopsFor(nnzb, b int) int64 {
	return 2 * int64(nnzb) * int64(b) * int64(b) * int64(b)
}

// FactorBytesFor estimates factorization traffic: each stored block read
// and written a small constant number of times at valBytes per scalar.
func FactorBytesFor(nnzb, b, valBytes int) int64 {
	return 3 * int64(nnzb) * int64(b) * int64(b) * int64(valBytes)
}

// FactorFlops estimates the floating-point work of this factorization.
func (f *Factorization) FactorFlops() int64 {
	return FactorFlopsFor(len(f.ColIdx), f.B)
}

// FactorBytes estimates this factorization's memory traffic.
func (f *Factorization) FactorBytes() int64 {
	return FactorBytesFor(len(f.ColIdx), f.B, f.BytesPerValue())
}

// Factor computes the block ILU(k) factorization of a.
func Factor(a *sparse.BCSR, opts Options) (*Factorization, error) {
	if opts.Level < 0 {
		return nil, fmt.Errorf("ilu: negative fill level %d", opts.Level)
	}
	sp := prof.Begin(prof.PhaseILUFactor)
	f := &Factorization{NB: a.NB, B: a.B, Level: opts.Level}
	defer func() { sp.End(f.FactorFlops(), f.FactorBytes()) }()
	if err := f.symbolic(a, opts.Level); err != nil {
		return nil, err
	}
	f.buildLevels()
	if err := f.numeric(a); err != nil {
		return nil, err
	}
	if opts.SinglePrecision {
		f.val32 = make([]float32, len(f.val64))
		for i, v := range f.val64 {
			f.val32[i] = float32(v)
		}
		f.invDiag32 = make([]float32, len(f.invDiag64))
		for i, v := range f.invDiag64 {
			f.invDiag32[i] = float32(v)
		}
		f.val64 = nil
		f.invDiag64 = nil
	}
	return f, nil
}

// symbolic computes the ILU(k) fill pattern by the standard level-of-fill
// recurrence: lev(i,j) = min over pivots p of lev(i,p)+lev(p,j)+1, kept
// when ≤ k. Row patterns are computed in ascending row order so that
// earlier (already-final) rows drive fill in later ones.
func (f *Factorization) symbolic(a *sparse.BCSR, level int) error {
	nb := a.NB
	rowCols := make([][]int32, nb)
	rowLevs := make([][]int32, nb)
	// Dense workspace for the current row.
	lev := make([]int32, nb)
	inRow := make([]bool, nb)
	for i := 0; i < nb; i++ {
		// Seed with A's row i (level 0) plus the diagonal.
		cols := make([]int32, 0, int(a.RowPtr[i+1]-a.RowPtr[i])+1) //lint:alloc-ok per-factorization symbolic analysis; the fill pattern is being discovered
		for _, j := range a.ColIdx[a.RowPtr[i]:a.RowPtr[i+1]] {
			cols = append(cols, j) //lint:alloc-ok per-factorization symbolic fill discovery
			lev[j] = 0
			inRow[j] = true
		}
		if !inRow[i] {
			cols = append(cols, int32(i)) //lint:alloc-ok per-factorization symbolic fill discovery
			lev[i] = 0
			inRow[i] = true
		}
		// Eliminate pivots p < i in ascending order: collect the current
		// lower-diagonal columns, sort, and process each once. Fill
		// columns discovered during processing that are still below the
		// diagonal are inserted into the pending list in order, so every
		// pivot is processed exactly once, ascending.
		lower := make([]int32, 0, len(cols)) //lint:alloc-ok per-factorization symbolic pivot list
		for _, j := range cols {
			if j < int32(i) {
				lower = append(lower, j) //lint:alloc-ok per-factorization symbolic pivot list
			}
		}
		sortInt32(lower)
		for li := 0; li < len(lower); li++ {
			p := lower[li]
			levIP := lev[p]
			for t, j := range rowCols[p] {
				if j <= p {
					continue
				}
				through := levIP + rowLevs[p][t] + 1
				if through > int32(level) {
					continue
				}
				if !inRow[j] {
					inRow[j] = true
					lev[j] = through
					cols = append(cols, j) //lint:alloc-ok per-factorization symbolic fill discovery
					if j < int32(i) {
						// Insert into the pending pivot list, keeping order.
						lower = insertSorted(lower, li+1, j)
					}
				} else if through < lev[j] {
					lev[j] = through
				}
			}
		}
		sortInt32(cols)
		levs := make([]int32, len(cols)) //lint:alloc-ok per-factorization symbolic row levels
		for t, j := range cols {
			levs[t] = lev[j]
			inRow[j] = false
		}
		rowCols[i] = cols
		rowLevs[i] = levs
	}
	// Assemble CSR-ish structure.
	f.RowPtr = make([]int32, nb+1)
	total := 0
	for i := 0; i < nb; i++ {
		total += len(rowCols[i])
	}
	f.ColIdx = make([]int32, 0, total)
	f.diagK = make([]int32, nb)
	for i := 0; i < nb; i++ {
		found := false
		for t, j := range rowCols[i] {
			if j == int32(i) {
				f.diagK[i] = f.RowPtr[i] + int32(t)
				found = true
			}
		}
		if !found {
			return fmt.Errorf("ilu: row %d lost its diagonal", i)
		}
		f.ColIdx = append(f.ColIdx, rowCols[i]...) //lint:alloc-ok appends into capacity preallocated to the exact total
		f.RowPtr[i+1] = int32(len(f.ColIdx))
	}
	return nil
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}

// insertSorted inserts v into s keeping positions >= from sorted.
func insertSorted(s []int32, from int, v int32) []int32 {
	s = append(s, 0)
	k := len(s) - 1
	for k > from && s[k-1] > v {
		s[k] = s[k-1]
		k--
	}
	s[k] = v
	return s
}

// numeric performs the block IKJ elimination on the symbolic pattern.
func (f *Factorization) numeric(a *sparse.BCSR) error {
	b := f.B
	bb := b * b
	f.val64 = make([]float64, len(f.ColIdx)*bb)
	f.invDiag64 = make([]float64, f.NB*bb)
	// Copy A into the fill pattern.
	pos := make(map[int64]int32, len(f.ColIdx))
	key := func(i int, j int32) int64 { return int64(i)<<32 | int64(j) }
	for i := 0; i < f.NB; i++ {
		for k := f.RowPtr[i]; k < f.RowPtr[i+1]; k++ {
			pos[key(i, f.ColIdx[k])] = k
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			dst, ok := pos[key(i, a.ColIdx[k])]
			if !ok {
				return fmt.Errorf("ilu: pattern lost entry (%d,%d)", i, a.ColIdx[k])
			}
			copy(f.val64[int(dst)*bb:(int(dst)+1)*bb], a.Val[int(k)*bb:(int(k)+1)*bb])
		}
	}
	factor := make([]float64, bb)
	tmp := make([]float64, bb)
	for i := 0; i < f.NB; i++ {
		row := f.ColIdx[f.RowPtr[i]:f.RowPtr[i+1]]
		for t, p := range row {
			if p >= int32(i) {
				break
			}
			kip := int(f.RowPtr[i]) + t
			// factor = A_ip * invU_pp
			matMul(f.val64[kip*bb:(kip+1)*bb], f.invDiag64[int(p)*bb:(int(p)+1)*bb], factor, b)
			copy(f.val64[kip*bb:(kip+1)*bb], factor)
			// Row update: A_ij -= factor * U_pj for j > p in row p.
			for kp := f.RowPtr[p]; kp < f.RowPtr[p+1]; kp++ {
				j := f.ColIdx[kp]
				if j <= p {
					continue
				}
				dst, ok := pos[key(i, j)]
				if !ok {
					continue // fill dropped by the level rule
				}
				matMul(factor, f.val64[int(kp)*bb:(int(kp)+1)*bb], tmp, b)
				blk := f.val64[int(dst)*bb : (int(dst)+1)*bb]
				for z := 0; z < bb; z++ {
					blk[z] -= tmp[z]
				}
			}
		}
		// Invert the diagonal block.
		kd := int(f.diagK[i])
		if err := invertBlock(f.val64[kd*bb:(kd+1)*bb], f.invDiag64[i*bb:(i+1)*bb], b); err != nil {
			return fmt.Errorf("ilu: singular pivot block at row %d: %w", i, err)
		}
	}
	return nil
}

// matMul computes c = a*b for row-major b×b blocks.
func matMul(a, b, c []float64, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// invertBlock inverts the row-major n×n block src into dst using
// Gauss-Jordan with partial pivoting.
func invertBlock(src, dst []float64, n int) error {
	var work [2 * 5 * 5]float64 // augmented [A | I], n <= 5 typical; fall back below
	var aug []float64
	if 2*n*n <= len(work) {
		aug = work[:2*n*n]
	} else {
		aug = make([]float64, 2*n*n)
	}
	w := 2 * n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			aug[i*w+j] = src[i*n+j]
			aug[i*w+n+j] = 0
		}
		aug[i*w+n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r*w+col]) > math.Abs(aug[piv*w+col]) {
				piv = r
			}
		}
		if math.Abs(aug[piv*w+col]) < 1e-300 {
			return fmt.Errorf("zero pivot in column %d", col)
		}
		if piv != col {
			for j := 0; j < w; j++ {
				aug[col*w+j], aug[piv*w+j] = aug[piv*w+j], aug[col*w+j]
			}
		}
		inv := 1 / aug[col*w+col]
		for j := 0; j < w; j++ {
			aug[col*w+j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			fac := aug[r*w+col]
			if fac == 0 {
				continue
			}
			for j := 0; j < w; j++ {
				aug[r*w+j] -= fac * aug[col*w+j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dst[i*n+j] = aug[i*w+n+j]
		}
	}
	return nil
}
