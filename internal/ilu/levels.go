package ilu

import (
	"petscfun3d/internal/par"
	"petscfun3d/internal/prof"
)

// Level-set scheduling of the block triangular solves. The forward
// substitution's row i depends on every row j < i with a stored L block
// (i, j); the backward substitution's row i on every row j > i with a
// stored U block. Grouping rows by their depth in that dependency DAG —
// level(i) = 1 + max over dependencies of level(j) — yields a schedule
// where all rows of one level are independent: a level can be
// partitioned across pool workers while each row's own accumulation
// (ascending k over its stored blocks) stays exactly the sequential
// order. The parallel solve is therefore bitwise identical to Solve at
// every worker count. The level sets are a pure function of the
// symbolic pattern, computed once per factorization.

// buildLevels computes the forward and backward level-set schedules
// from the symbolic pattern (called before the numeric phase; levels
// depend only on the structure).
func (f *Factorization) buildLevels() {
	nb := f.NB
	lev := make([]int32, nb)
	// Forward: ascending rows, L dependencies are k < diagK[i].
	depth := 0
	for i := 0; i < nb; i++ {
		var l int32
		for k := f.RowPtr[i]; k < f.diagK[i]; k++ {
			if d := lev[f.ColIdx[k]] + 1; d > l {
				l = d
			}
		}
		lev[i] = l
		if int(l)+1 > depth {
			depth = int(l) + 1
		}
	}
	f.fwdRows, f.fwdPtr = bucketLevels(lev, depth)
	// Backward: descending rows, U dependencies are k > diagK[i].
	for i := range lev {
		lev[i] = 0
	}
	depth = 0
	for i := nb - 1; i >= 0; i-- {
		var l int32
		for k := f.diagK[i] + 1; k < f.RowPtr[i+1]; k++ {
			if d := lev[f.ColIdx[k]] + 1; d > l {
				l = d
			}
		}
		lev[i] = l
		if int(l)+1 > depth {
			depth = int(l) + 1
		}
	}
	f.bwdRows, f.bwdPtr = bucketLevels(lev, depth)
}

// bucketLevels groups rows by level via a counting sort that keeps rows
// ascending within each level.
func bucketLevels(lev []int32, depth int) (rows, ptr []int32) {
	ptr = make([]int32, depth+1)
	for _, l := range lev {
		ptr[l+1]++
	}
	for l := 0; l < depth; l++ {
		ptr[l+1] += ptr[l]
	}
	rows = make([]int32, len(lev))
	next := append([]int32(nil), ptr...)
	for i, l := range lev {
		rows[next[l]] = int32(i)
		next[l]++
	}
	return rows, ptr
}

// LevelStats summarizes a factorization's level-set schedule — the
// available node-level parallelism of its triangular solves (reported
// in the thread-scaling experiment and EXPERIMENTS.md).
type LevelStats struct {
	Rows      int // block rows (NB)
	FwdLevels int // forward-substitution DAG depth
	BwdLevels int // backward-substitution DAG depth
	// MaxWidth and AvgWidth describe the level populations across both
	// directions: the widest level, and rows per level on average — the
	// upper bound on useful workers per barrier.
	MaxWidth int
	AvgWidth float64
}

// LevelStats returns the schedule statistics.
func (f *Factorization) LevelStats() LevelStats {
	st := LevelStats{
		Rows:      f.NB,
		FwdLevels: len(f.fwdPtr) - 1,
		BwdLevels: len(f.bwdPtr) - 1,
	}
	if st.FwdLevels < 0 {
		st.FwdLevels = 0
	}
	if st.BwdLevels < 0 {
		st.BwdLevels = 0
	}
	for l := 0; l+1 < len(f.fwdPtr); l++ {
		if w := int(f.fwdPtr[l+1] - f.fwdPtr[l]); w > st.MaxWidth {
			st.MaxWidth = w
		}
	}
	for l := 0; l+1 < len(f.bwdPtr); l++ {
		if w := int(f.bwdPtr[l+1] - f.bwdPtr[l]); w > st.MaxWidth {
			st.MaxWidth = w
		}
	}
	if levels := st.FwdLevels + st.BwdLevels; levels > 0 {
		st.AvgWidth = float64(2*st.Rows) / float64(levels)
	}
	return st
}

// minLevelRows gates the pool per level: a level narrower than this
// many rows per worker runs inline on the caller — the barrier would
// cost more than the rows. Either path computes identical values.
const minLevelRows = 8

// SolvePar applies the factorization like Solve — x = (LU)⁻¹ b — with
// each level of the dependency DAG executed across the pool's workers.
// Per-row accumulation order is identical to the sequential solve, so
// the result is bitwise identical to Solve at every worker count. Like
// Solve, concurrent calls on the same Factorization are not allowed.
func (f *Factorization) SolvePar(p *par.Pool, b, x []float64) {
	nw := p.Workers()
	if nw <= 1 || len(f.fwdPtr) == 0 {
		f.Solve(b, x)
		return
	}
	sp := prof.Begin(prof.PhaseTriSolve)
	prof.NoteThreads(prof.PhaseTriSolve, nw)
	if len(f.parScratch) < nw*f.B {
		f.parScratch = make([]float64, nw*f.B)
	}
	t := &f.task
	t.f, t.b, t.x = f, b, x
	t.backward = false
	for l := 0; l+1 < len(f.fwdPtr); l++ {
		t.rows = f.fwdRows[f.fwdPtr[l]:f.fwdPtr[l+1]]
		runLevel(p, t, nw)
	}
	t.backward = true
	for l := 0; l+1 < len(f.bwdPtr); l++ {
		t.rows = f.bwdRows[f.bwdPtr[l]:f.bwdPtr[l+1]]
		runLevel(p, t, nw)
	}
	t.b, t.x, t.rows = nil, nil, nil
	sp.End(f.SolveFlops(), f.SolveBytes())
}

// runLevel executes one level: narrow levels inline on the caller, wide
// ones on the pool.
func runLevel(p *par.Pool, t *triTask, nw int) {
	if len(t.rows) < minLevelRows*nw {
		t.RunShard(0, 1)
		return
	}
	p.Run(t)
}

// triTask is the reusable pool task of SolvePar: one level's rows,
// partitioned contiguously across the workers.
type triTask struct {
	f        *Factorization
	rows     []int32
	b, x     []float64
	backward bool
}

// RunShard implements par.Task.
func (t *triTask) RunShard(w, nw int) {
	rows := t.rows[len(t.rows)*w/nw : len(t.rows)*(w+1)/nw]
	if len(rows) == 0 {
		return
	}
	f := t.f
	if t.backward {
		tmp := f.parScratch[w*f.B : w*f.B+f.B]
		if f.val32 != nil {
			f.backwardRows32(rows, t.x, tmp)
		} else {
			f.backwardRows(rows, t.x, tmp)
		}
		return
	}
	if f.val32 != nil {
		f.forwardRows32(rows, t.b, t.x)
	} else {
		f.forwardRows(rows, t.b, t.x)
	}
}

// forwardRows runs the forward substitution's body for the listed rows:
// y_i = b_i - Σ_{j<i} L_ij y_j, stored into x. Identical arithmetic and
// accumulation order to the corresponding rows of Solve.
func (f *Factorization) forwardRows(rows []int32, b, x []float64) {
	n := f.B
	bb := n * n
	for _, i := range rows {
		xi := x[int(i)*n : int(i)*n+n]
		copy(xi, b[int(i)*n:int(i)*n+n])
		for k := int(f.RowPtr[i]); k < int(f.diagK[i]); k++ {
			j := int(f.ColIdx[k]) * n
			blk := f.val64[k*bb : k*bb+bb]
			xs := x[j : j+n]
			for r := 0; r < n; r++ {
				row := blk[r*n:]
				row = row[:len(xs)] // bce: ties len(row) to len(xs); the c index needs one range check, not two
				var s float64
				for c, w := range row {
					s += w * xs[c]
				}
				xi[r] -= s
			}
		}
	}
}

// backwardRows runs the backward substitution's body for the listed
// rows: x_i = invU_ii (y_i - Σ_{j>i} U_ij x_j), with the caller-owned
// tmp holding the diagonal multiply.
func (f *Factorization) backwardRows(rows []int32, x, tmp []float64) {
	n := f.B
	bb := n * n
	for _, i := range rows {
		xi := x[int(i)*n : int(i)*n+n]
		for k := int(f.diagK[i]) + 1; k < int(f.RowPtr[i+1]); k++ {
			j := int(f.ColIdx[k]) * n
			blk := f.val64[k*bb : k*bb+bb]
			xs := x[j : j+n]
			for r := 0; r < n; r++ {
				row := blk[r*n:]
				row = row[:len(xs)] // bce: ties len(row) to len(xs); the c index needs one range check, not two
				var s float64
				for c, w := range row {
					s += w * xs[c]
				}
				xi[r] -= s
			}
		}
		inv := f.invDiag64[int(i)*bb : int(i)*bb+bb]
		for r := 0; r < n; r++ {
			row := inv[r*n:]
			row = row[:len(xi)] // bce: ties len(row) to len(xi); the c index needs one range check, not two
			var s float64
			for c, w := range row {
				s += w * xi[c]
			}
			tmp[r] = s
		}
		copy(xi, tmp)
	}
}

// forwardRows32 is forwardRows for single-precision factor storage;
// arithmetic stays in float64.
func (f *Factorization) forwardRows32(rows []int32, b, x []float64) {
	n := f.B
	bb := n * n
	for _, i := range rows {
		xi := x[int(i)*n : int(i)*n+n]
		copy(xi, b[int(i)*n:int(i)*n+n])
		for k := int(f.RowPtr[i]); k < int(f.diagK[i]); k++ {
			j := int(f.ColIdx[k]) * n
			blk := f.val32[k*bb : k*bb+bb]
			xs := x[j : j+n]
			for r := 0; r < n; r++ {
				row := blk[r*n:]
				row = row[:len(xs)] // bce: ties len(row) to len(xs); the c index needs one range check, not two
				var s float64
				for c, w := range row {
					s += float64(w) * xs[c]
				}
				xi[r] -= s
			}
		}
	}
}

// backwardRows32 is backwardRows for single-precision factor storage.
func (f *Factorization) backwardRows32(rows []int32, x, tmp []float64) {
	n := f.B
	bb := n * n
	for _, i := range rows {
		xi := x[int(i)*n : int(i)*n+n]
		for k := int(f.diagK[i]) + 1; k < int(f.RowPtr[i+1]); k++ {
			j := int(f.ColIdx[k]) * n
			blk := f.val32[k*bb : k*bb+bb]
			xs := x[j : j+n]
			for r := 0; r < n; r++ {
				row := blk[r*n:]
				row = row[:len(xs)] // bce: ties len(row) to len(xs); the c index needs one range check, not two
				var s float64
				for c, w := range row {
					s += float64(w) * xs[c]
				}
				xi[r] -= s
			}
		}
		inv := f.invDiag32[int(i)*bb : int(i)*bb+bb]
		for r := 0; r < n; r++ {
			row := inv[r*n:]
			row = row[:len(xi)] // bce: ties len(row) to len(xi); the c index needs one range check, not two
			var s float64
			for c, w := range row {
				s += float64(w) * xi[c]
			}
			tmp[r] = s
		}
		copy(xi, tmp)
	}
}
