package ilu

import "petscfun3d/internal/prof"

// Solve applies the factorization: x = (LU)⁻¹ b, via a block forward
// substitution (unit-diagonal L) followed by a block backward
// substitution using the pre-inverted U diagonal blocks. b and x must
// have length NB*B and may not alias. This triangular solve is the
// memory-bandwidth-bound kernel of the paper's Table 2: each stored
// factor value is touched exactly once per solve.
func (f *Factorization) Solve(b, x []float64) {
	sp := prof.Begin(prof.PhaseTriSolve)
	defer sp.End(f.SolveFlops(), f.SolveBytes())
	if f.val32 != nil {
		f.solve32(b, x)
		return
	}
	n := f.B
	bb := n * n
	// Forward: y_i = b_i - Σ_{j<i} L_ij y_j, stored into x.
	for i := 0; i < f.NB; i++ {
		xi := x[i*n : i*n+n]
		copy(xi, b[i*n:i*n+n])
		for k := int(f.RowPtr[i]); k < int(f.diagK[i]); k++ {
			j := int(f.ColIdx[k]) * n
			blk := f.val64[k*bb : k*bb+bb]
			xs := x[j : j+n]
			for r := 0; r < n; r++ {
				row := blk[r*n:]
				row = row[:len(xs)] // bce: ties len(row) to len(xs); the c index needs one range check, not two
				var s float64
				for c, w := range row {
					s += w * xs[c]
				}
				xi[r] -= s
			}
		}
	}
	// Backward: x_i = invU_ii (y_i - Σ_{j>i} U_ij x_j).
	var t [5]float64
	tmp := t[:n]
	if n > 5 {
		if len(f.seqTmp) < n {
			f.seqTmp = make([]float64, n)
		}
		tmp = f.seqTmp[:n] // factorization-owned scratch: no allocation inside the solver's tightest loop for B > 5
	}
	for i := f.NB - 1; i >= 0; i-- {
		xi := x[i*n : i*n+n]
		for k := int(f.diagK[i]) + 1; k < int(f.RowPtr[i+1]); k++ {
			j := int(f.ColIdx[k]) * n
			blk := f.val64[k*bb : k*bb+bb]
			xs := x[j : j+n]
			for r := 0; r < n; r++ {
				row := blk[r*n:]
				row = row[:len(xs)] // bce: ties len(row) to len(xs); the c index needs one range check, not two
				var s float64
				for c, w := range row {
					s += w * xs[c]
				}
				xi[r] -= s
			}
		}
		inv := f.invDiag64[i*bb : (i+1)*bb]
		for r := 0; r < n; r++ {
			row := inv[r*n:]
			row = row[:len(xi)] // bce: ties len(row) to len(xi); the c index needs one range check, not two
			var s float64
			for c, w := range row {
				s += w * xi[c]
			}
			tmp[r] = s
		}
		copy(xi, tmp)
	}
}

// solve32 is Solve for single-precision factor storage; arithmetic stays
// in float64.
func (f *Factorization) solve32(b, x []float64) {
	n := f.B
	bb := n * n
	for i := 0; i < f.NB; i++ {
		xi := x[i*n : i*n+n]
		copy(xi, b[i*n:i*n+n])
		for k := int(f.RowPtr[i]); k < int(f.diagK[i]); k++ {
			j := int(f.ColIdx[k]) * n
			blk := f.val32[k*bb : k*bb+bb]
			xs := x[j : j+n]
			for r := 0; r < n; r++ {
				row := blk[r*n:]
				row = row[:len(xs)] // bce: ties len(row) to len(xs); the c index needs one range check, not two
				var s float64
				for c, w := range row {
					s += float64(w) * xs[c]
				}
				xi[r] -= s
			}
		}
	}
	var t [5]float64
	tmp := t[:n]
	if n > 5 {
		if len(f.seqTmp) < n {
			f.seqTmp = make([]float64, n)
		}
		tmp = f.seqTmp[:n] // factorization-owned scratch: no allocation inside the solver's tightest loop for B > 5
	}
	for i := f.NB - 1; i >= 0; i-- {
		xi := x[i*n : i*n+n]
		for k := int(f.diagK[i]) + 1; k < int(f.RowPtr[i+1]); k++ {
			j := int(f.ColIdx[k]) * n
			blk := f.val32[k*bb : k*bb+bb]
			xs := x[j : j+n]
			for r := 0; r < n; r++ {
				row := blk[r*n:]
				row = row[:len(xs)] // bce: ties len(row) to len(xs); the c index needs one range check, not two
				var s float64
				for c, w := range row {
					s += float64(w) * xs[c]
				}
				xi[r] -= s
			}
		}
		inv := f.invDiag32[i*bb : (i+1)*bb]
		for r := 0; r < n; r++ {
			row := inv[r*n:]
			row = row[:len(xi)] // bce: ties len(row) to len(xi); the c index needs one range check, not two
			var s float64
			for c, w := range row {
				s += float64(w) * xi[c]
			}
			tmp[r] = s
		}
		copy(xi, tmp)
	}
}

// SolveFlops returns the floating-point work of one Solve: two flops per
// stored scalar in the off-diagonal blocks plus the diagonal-inverse
// multiplies.
func (f *Factorization) SolveFlops() int64 {
	bb := int64(f.B) * int64(f.B)
	return 2*int64(len(f.ColIdx))*bb + 2*int64(f.NB)*bb
}

// SolveBytes returns the memory traffic of one Solve given the storage
// precision: every factor value read once, plus index and vector
// traffic.
func (f *Factorization) SolveBytes() int64 {
	bb := int64(f.B) * int64(f.B)
	valBytes := int64(f.BytesPerValue())
	return int64(len(f.ColIdx))*(bb*valBytes+4) + // blocks + column indices
		int64(f.NB)*bb*valBytes + // inverted diagonals
		3*int64(f.NB)*int64(f.B)*8 // b read, x written twice
}
