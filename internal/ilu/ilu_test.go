package ilu

import (
	"math"
	"testing"
	"testing/quick"

	"petscfun3d/internal/mesh"
	"petscfun3d/internal/sparse"
)

func wingBlockMatrix(t testing.TB, nx, ny, nz, b int, seed uint64) *sparse.BCSR {
	t.Helper()
	m, err := mesh.GenerateWing(mesh.DefaultWingSpec(nx, ny, nz))
	if err != nil {
		t.Fatal(err)
	}
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	a := sparse.BlockPattern(g, b)
	a.FillDeterministic(seed)
	return a
}

func TestInvertBlock(t *testing.T) {
	src := []float64{4, 1, 0, 2, 5, 1, 0, 3, 6}
	dst := make([]float64, 9)
	if err := invertBlock(src, dst, 3); err != nil {
		t.Fatal(err)
	}
	// src * dst == I.
	prod := make([]float64, 9)
	matMul(src, dst, prod, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod[i*3+j]-want) > 1e-12 {
				t.Fatalf("A*inv(A) not identity at (%d,%d): %g", i, j, prod[i*3+j])
			}
		}
	}
	singular := []float64{1, 2, 2, 4}
	if err := invertBlock(singular, make([]float64, 4), 2); err == nil {
		t.Error("singular block inverted")
	}
}

func TestInvertBlockNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position requires a row swap.
	src := []float64{0, 1, 1, 0}
	dst := make([]float64, 4)
	if err := invertBlock(src, dst, 2); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0 || dst[1] != 1 || dst[2] != 1 || dst[3] != 0 {
		t.Errorf("inverse of swap = %v", dst)
	}
}

func TestILU0PatternMatchesA(t *testing.T) {
	a := wingBlockMatrix(t, 5, 4, 4, 2, 3)
	f, err := Factor(a, Options{Level: 0})
	if err != nil {
		t.Fatal(err)
	}
	if f.NNZBlocks() != a.NNZBlocks() {
		t.Errorf("ILU(0) has %d blocks, matrix has %d", f.NNZBlocks(), a.NNZBlocks())
	}
}

func TestFillGrowsWithLevel(t *testing.T) {
	a := wingBlockMatrix(t, 6, 5, 4, 1, 5)
	var prev int
	for k := 0; k <= 3; k++ {
		f, err := Factor(a, Options{Level: k})
		if err != nil {
			t.Fatalf("level %d: %v", k, err)
		}
		if k > 0 && f.NNZBlocks() <= prev {
			t.Errorf("fill did not grow from level %d to %d: %d vs %d", k-1, k, prev, f.NNZBlocks())
		}
		prev = f.NNZBlocks()
	}
}

// residualReduction measures ||b - A M^{-1} b|| / ||b||: how well one
// application of the preconditioner inverts A.
func residualReduction(a *sparse.BCSR, f *Factorization) float64 {
	n := a.N()
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i)*0.7) + 1.1
	}
	x := make([]float64, n)
	f.Solve(b, x)
	ax := make([]float64, n)
	a.MulVec(x, ax)
	var num, den float64
	for i := range b {
		d := b[i] - ax[i]
		num += d * d
		den += b[i] * b[i]
	}
	return math.Sqrt(num / den)
}

func TestILUQualityImprovesWithFill(t *testing.T) {
	a := wingBlockMatrix(t, 6, 5, 4, 4, 7)
	var prev float64 = math.Inf(1)
	for k := 0; k <= 2; k++ {
		f, err := Factor(a, Options{Level: k})
		if err != nil {
			t.Fatalf("level %d: %v", k, err)
		}
		r := residualReduction(a, f)
		if r >= 1 {
			t.Errorf("ILU(%d) reduction %g not < 1", k, r)
		}
		if r > prev*1.05 {
			t.Errorf("ILU(%d) reduction %g worse than ILU(%d) %g", k, r, k-1, prev)
		}
		prev = r
	}
}

func TestILUExactOnTriangularCases(t *testing.T) {
	// For a (block) diagonal matrix, ILU(0) is exact: Solve(b) == A^{-1} b.
	rows := [][]int32{{0}, {1}, {2}}
	a := sparse.NewBCSRPattern(3, 2, rows)
	vals := [][]float64{{2, 0, 0, 4}, {1, 1, 0, 3}, {5, 2, 1, 1}}
	for i := 0; i < 3; i++ {
		blk, _ := a.BlockAt(i, i)
		copy(blk, vals[i])
	}
	f, err := Factor(a, Options{Level: 0})
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{2, 4, 4, 6, 8, 3}
	x := make([]float64, 6)
	f.Solve(b, x)
	ax := make([]float64, 6)
	a.MulVec(x, ax)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-12 {
			t.Fatalf("block-diagonal solve inexact at %d: %g vs %g", i, ax[i], b[i])
		}
	}
}

func TestILUFullFillIsExact(t *testing.T) {
	// With enough fill levels on a small matrix, ILU == LU and the solve
	// is a direct solve.
	a := wingBlockMatrix(t, 3, 3, 3, 1, 9)
	f, err := Factor(a, Options{Level: 30})
	if err != nil {
		t.Fatal(err)
	}
	if r := residualReduction(a, f); r > 1e-10 {
		t.Errorf("full-fill ILU reduction %g, want ~0", r)
	}
}

func TestSinglePrecisionStorage(t *testing.T) {
	a := wingBlockMatrix(t, 5, 4, 4, 4, 11)
	fd, err := Factor(a, Options{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Factor(a, Options{Level: 1, SinglePrecision: true})
	if err != nil {
		t.Fatal(err)
	}
	if fd.BytesPerValue() != 8 || fs.BytesPerValue() != 4 {
		t.Error("BytesPerValue wrong")
	}
	if fs.SolveBytes() >= fd.SolveBytes() {
		t.Errorf("single SolveBytes %d not < double %d", fs.SolveBytes(), fd.SolveBytes())
	}
	n := a.N()
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Cos(float64(i) * 0.3)
	}
	xd := make([]float64, n)
	xs := make([]float64, n)
	fd.Solve(b, xd)
	fs.Solve(b, xs)
	var worst float64
	for i := range xd {
		if d := math.Abs(xd[i] - xs[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-3 {
		t.Errorf("single-precision solve too far from double: %g", worst)
	}
	if worst == 0 {
		t.Error("single-precision solve bitwise identical; storage not actually float32?")
	}
}

func TestFactorRejectsNegativeLevel(t *testing.T) {
	a := wingBlockMatrix(t, 3, 3, 3, 1, 1)
	if _, err := Factor(a, Options{Level: -1}); err == nil {
		t.Error("negative level accepted")
	}
}

func TestSolveFlopsPositive(t *testing.T) {
	a := wingBlockMatrix(t, 4, 3, 3, 3, 13)
	f, err := Factor(a, Options{Level: 0})
	if err != nil {
		t.Fatal(err)
	}
	if f.SolveFlops() <= 0 || f.SolveBytes() <= 0 {
		t.Error("nonpositive work estimates")
	}
}

func BenchmarkFactorILU1(b *testing.B) {
	a := wingBlockMatrix(b, 10, 8, 7, 4, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(a, Options{Level: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTriSolveDouble(b *testing.B) {
	a := wingBlockMatrix(b, 10, 8, 7, 4, 17)
	f, err := Factor(a, Options{Level: 1})
	if err != nil {
		b.Fatal(err)
	}
	n := a.N()
	rhs := make([]float64, n)
	x := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	b.SetBytes(f.SolveBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Solve(rhs, x)
	}
}

func BenchmarkTriSolveSingle(b *testing.B) {
	a := wingBlockMatrix(b, 10, 8, 7, 4, 17)
	f, err := Factor(a, Options{Level: 1, SinglePrecision: true})
	if err != nil {
		b.Fatal(err)
	}
	n := a.N()
	rhs := make([]float64, n)
	x := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	b.SetBytes(f.SolveBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Solve(rhs, x)
	}
}

func TestILUImprovesResidualProperty(t *testing.T) {
	// Property: for any seed, one application of ILU(0) on a diagonally
	// dominant wing matrix reduces the residual (reduction factor < 1).
	a := wingBlockMatrix(t, 5, 4, 4, 3, 1)
	f := func(seed uint16) bool {
		a.FillDeterministic(uint64(seed) + 1)
		fac, err := Factor(a, Options{Level: 0})
		if err != nil {
			return false
		}
		return residualReduction(a, fac) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
