// Package prof is a lightweight wall-clock phase profiler for the real
// solver paths — the measured counterpart of the virtual machine's
// modeled accounting (internal/machine). Solver packages open a Span
// around each kernel (flux sweep, triangular solve, matvec, halo
// exchange, ...) and close it with the kernel's flop and byte counts;
// the report then gives, per phase, wall seconds, achieved Mflop/s and
// MB/s, and the fraction of the host's STREAM bandwidth the phase
// sustained — the paper's Table 2/3 roofline bookkeeping ("the
// triangular solves run at the memory-bandwidth limit") as a measurable
// assertion.
//
// Phases carry the same taxonomy as machine.Report (compute, ghost-point
// scatter, global reduction), so one table can compare the modeled and
// the measured phase mix of the same run.
//
// The profiler is disabled by default: a disabled Begin/End pair costs
// one atomic load and a branch, so instrumentation can stay in the hot
// paths permanently. Nesting accounting (self vs cumulative time)
// assumes spans are opened and closed on one goroutine while enabled;
// worker goroutines inside an instrumented region (e.g. the threaded
// flux sweep) must not open spans of their own — the caller's span
// covers them.
package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one instrumented kernel or algorithm stage.
type Phase uint8

// The phase taxonomy. Compute phases mirror the cost-model charges in
// internal/core; Scatter and Reduce mirror machine.Report's
// communication buckets (measured on the real message-passing solver in
// internal/dist, where wait time is part of the blocking receive).
const (
	// PhaseNewton is the whole nonlinear solve (the root span); its self
	// time holds the Newton-loop overheads not claimed by a child phase
	// (pseudo-timestep scales, state updates, line-search bookkeeping).
	PhaseNewton Phase = iota
	// PhaseFlux is one residual evaluation's edge sweep (plus boundary
	// closure) — the paper's "function evaluation" phase.
	PhaseFlux
	// PhaseGradient is the least-squares gradient + limiter pass of the
	// second-order flux (a child of PhaseFlux).
	PhaseGradient
	// PhaseJacobian is the first-order preconditioner Jacobian assembly.
	PhaseJacobian
	// PhasePCSetup is Schwarz preconditioner construction: subdomain
	// extraction (its self time) plus the nested ILU factorizations.
	PhasePCSetup
	// PhaseILUFactor is the block ILU(k) numeric+symbolic factorization.
	PhaseILUFactor
	// PhaseKrylov is one GMRES solve; its self time is the vector work
	// (basis scaling, solution update) not inside matvec/ortho/precond.
	PhaseKrylov
	// PhaseMatVec is one operator application inside GMRES (for the
	// matrix-free operator the nested PhaseFlux holds the real work).
	PhaseMatVec
	// PhaseOrtho is the Gram-Schmidt orthogonalization of one iteration.
	PhaseOrtho
	// PhasePCApply is one preconditioner application (restrict/prolong
	// self time; the triangular solves are the nested PhaseTriSolve).
	PhasePCApply
	// PhaseTriSolve is the ILU forward/backward triangular solve — the
	// phase the paper pins at the STREAM limit.
	PhaseTriSolve
	// PhaseScatter is a *blocking* ghost-point halo exchange in
	// internal/dist: send/recv time including the
	// implicit-synchronization wait for the partner to arrive, folded
	// into one number. The overlapped exchange splits this bucket into
	// PhaseScatterPack and PhaseScatterWait.
	PhaseScatter
	// PhaseReduce is a global reduction in internal/dist (including the
	// wait for the last rank).
	PhaseReduce
	// PhaseScatterPack is the pack/unpack half of an overlapped halo
	// exchange: staging owned values into per-peer send buffers, posting
	// the nonblocking sends/receives, and copying arrived values into the
	// ghost region. Pure local memory traffic — no waiting.
	PhaseScatterPack
	// PhaseScatterWait is the wait half of an overlapped halo exchange:
	// the time a rank blocks for ghost values still in flight after its
	// interior work ran out. This is the paper's implicit-synchronization
	// sink, measured separately from the scatter's data motion.
	PhaseScatterWait
	// PhaseInterior is the ghost-independent share of an overlapped
	// kernel (matrix rows or flux edges with no ghost dependence),
	// computed while the halo exchange is in flight.
	PhaseInterior
	// PhaseBoundary is the ghost-dependent remainder of an overlapped
	// kernel, computed after the halo exchange completes.
	PhaseBoundary
	numPhases
)

var phaseNames = [numPhases]string{
	"newton", "flux", "gradient", "jacobian", "pc_setup", "ilu_factor",
	"krylov", "matvec", "ortho", "pc_apply", "tri_solve",
	"scatter", "reduce",
	"scatter_pack", "scatter_wait", "interior", "boundary",
}

// String returns the phase's stable JSON/report name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// PhaseNames returns the canonical phase taxonomy — the only names that
// can appear in reports and profile JSON. Tests assert emitted profiles
// stay within it.
func PhaseNames() []string {
	names := make([]string, numPhases)
	copy(names, phaseNames[:])
	return names
}

// IsPhaseName reports whether name belongs to the canonical taxonomy.
func IsPhaseName(name string) bool {
	for _, n := range phaseNames {
		if n == name {
			return true
		}
	}
	return false
}

// Category returns the machine.Report bucket the phase belongs to:
// "compute", "scatter" (ghost-point scatter data motion), "reduce"
// (global reductions), or "wait" (implicit synchronization — the time a
// rank blocks for in-flight ghost values). The blocking scatter phase
// folds its wait into "scatter"; the overlapped exchange separates the
// two, so the measured "wait" bucket lines up with machine.Report's
// implicit-synchronization column.
func (p Phase) Category() string {
	switch p {
	case PhaseScatter, PhaseScatterPack:
		return "scatter"
	case PhaseReduce:
		return "reduce"
	case PhaseScatterWait:
		return "wait"
	default:
		return "compute"
	}
}

// counters accumulates one phase's totals.
type counters struct {
	calls  int64
	cumNS  int64 // inclusive wall time
	selfNS int64 // exclusive wall time (children subtracted)
	flops  int64
	bytes  int64
	// threads is the largest worker count a span of this phase reported
	// via NoteThreads (0 when the phase never ran threaded).
	threads int64
}

// frame is one open span on the nesting stack.
type frame struct {
	phase   Phase
	start   time.Time
	childNS int64
}

// Profiler accumulates phase timings. The zero value is a valid,
// disabled profiler.
type Profiler struct {
	enabled atomic.Bool

	mu    sync.Mutex
	stack []frame
	ph    [numPhases]counters
	// rootNS is the total wall time covered by top-level spans — the
	// denominator of phase-share percentages and (exactly) the sum of
	// all phases' self time.
	rootNS int64
}

// Default is the process-wide profiler the solver packages report to.
// Enable it around a run, then read Default.Report.
var Default = &Profiler{}

// New returns a fresh, disabled profiler (internal/dist gives each rank
// its own and merges them afterwards).
func New() *Profiler { return &Profiler{} }

// Enable starts accepting spans.
func (p *Profiler) Enable() { p.enabled.Store(true) }

// Disable stops accepting spans; open spans are dropped.
func (p *Profiler) Disable() {
	p.enabled.Store(false)
	p.mu.Lock()
	p.stack = p.stack[:0]
	p.mu.Unlock()
}

// Enabled reports whether spans are being recorded.
func (p *Profiler) Enabled() bool { return p.enabled.Load() }

// Reset clears all accumulated counters (and any open spans).
func (p *Profiler) Reset() {
	p.mu.Lock()
	p.stack = p.stack[:0]
	p.ph = [numPhases]counters{}
	p.rootNS = 0
	p.mu.Unlock()
}

// Span is an open phase measurement. The zero Span (returned when the
// profiler is disabled or nil) is inert: End on it does nothing.
type Span struct {
	p     *Profiler
	phase Phase
}

// Begin opens a span for phase. Close it with End. When the profiler is
// disabled the cost is one atomic load.
func (p *Profiler) Begin(phase Phase) Span {
	if p == nil || !p.enabled.Load() {
		return Span{}
	}
	p.mu.Lock()
	p.stack = append(p.stack, frame{phase: phase, start: time.Now()})
	p.mu.Unlock()
	return Span{p: p, phase: phase}
}

// End closes the span, charging the elapsed wall time to its phase
// (inclusive, and exclusive of any nested spans) together with the
// kernel's floating-point operation and memory-traffic counts (pass
// zeros when unknown; nested spans carry the real work's counts).
func (s Span) End(flops, bytes int64) {
	p := s.p
	if p == nil {
		return
	}
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	// Find this span's frame. Normally it is the top of the stack; if a
	// nested span leaked (opened but never closed — the bug the profspan
	// analyzer exists to prevent), unwind past the leaked frames so one
	// leak does not silently discard this End and corrupt every ancestor
	// phase's accounting. Leaked frames are dropped uncharged (their
	// counts never arrived); their wall time folds into this span's self
	// time. Searching from the top finds the innermost frame, so nested
	// same-phase spans (recursion) still pair correctly.
	idx := -1
	for i := len(p.stack) - 1; i >= 0; i-- {
		if p.stack[i].phase == s.phase {
			idx = i
			break
		}
	}
	if idx < 0 {
		return // no live Begin: disabled while open, or misuse
	}
	top := p.stack[idx]
	p.stack = p.stack[:idx]
	elapsed := now.Sub(top.start).Nanoseconds()
	if elapsed < 0 {
		elapsed = 0
	}
	c := &p.ph[s.phase]
	c.calls++
	c.cumNS += elapsed
	self := elapsed - top.childNS
	if self < 0 {
		self = 0
	}
	c.selfNS += self
	c.flops += flops
	c.bytes += bytes
	if len(p.stack) > 0 {
		p.stack[len(p.stack)-1].childNS += elapsed
	} else {
		p.rootNS += elapsed
	}
}

// NoteThreads records that phase's kernel ran on n pool workers, so the
// report can attribute thread counts to the phases the worker pool
// accelerates. Workers themselves never open spans (the caller's span
// covers them — see the package comment); the caller notes the worker
// count alongside its span instead. The per-phase value is the maximum
// seen, surviving Merge across rank profilers.
func (p *Profiler) NoteThreads(phase Phase, n int) {
	if p == nil || !p.enabled.Load() || int(phase) >= len(p.ph) {
		return
	}
	p.mu.Lock()
	if int64(n) > p.ph[phase].threads {
		p.ph[phase].threads = int64(n)
	}
	p.mu.Unlock()
}

// Merge adds o's accumulated counters into p (used to combine the
// per-rank profilers of a distributed run). Open spans in o are ignored.
func (p *Profiler) Merge(o *Profiler) {
	if o == nil || o == p {
		return
	}
	o.mu.Lock()
	ph := o.ph
	rootNS := o.rootNS
	o.mu.Unlock()
	p.mu.Lock()
	for i := range p.ph {
		p.ph[i].calls += ph[i].calls
		p.ph[i].cumNS += ph[i].cumNS
		p.ph[i].selfNS += ph[i].selfNS
		p.ph[i].flops += ph[i].flops
		p.ph[i].bytes += ph[i].bytes
		if ph[i].threads > p.ph[i].threads {
			p.ph[i].threads = ph[i].threads
		}
	}
	p.rootNS += rootNS
	p.mu.Unlock()
}

// PhaseStat is one phase's row of the report. Seconds is exclusive
// (self) time — the time the phase's own kernel ran, with nested phases
// subtracted — so the Seconds of all phases sum to TotalSeconds.
// CumulativeSeconds is inclusive. The bandwidth/flop rates are computed
// against self time, since the flop/byte counts describe the phase's
// own kernel.
type PhaseStat struct {
	Phase             string  `json:"phase"`
	Category          string  `json:"category"`
	Calls             int64   `json:"calls"`
	Seconds           float64 `json:"seconds"`
	CumulativeSeconds float64 `json:"cumulative_seconds"`
	Flops             int64   `json:"flops"`
	Bytes             int64   `json:"bytes"`
	Mflops            float64 `json:"mflops"`
	MBps              float64 `json:"mbps"`
	// StreamFraction is achieved bandwidth over the host's measured
	// STREAM Triad bandwidth (0 when no STREAM number was supplied).
	// The paper's roofline check: a value near 1 for tri_solve means
	// the triangular solve runs at the memory-bandwidth limit.
	StreamFraction float64 `json:"stream_fraction"`
	// Threads is the largest worker-pool size this phase's kernel ran on
	// (0 when the phase never ran threaded) — the node-level parallelism
	// attribution of the hybrid ranks×threads runs.
	Threads int64 `json:"threads,omitempty"`
}

// Report is the stable-schema profile ("petscfun3d-profile/1") written
// by the -profile-json flags and the bench baseline.
type Report struct {
	Schema string `json:"schema"`
	// TotalSeconds is the wall time covered by top-level spans (the
	// whole solve when PhaseNewton wraps it); phase Seconds sum to it
	// exactly.
	TotalSeconds float64 `json:"total_seconds"`
	// StreamMBps is the host STREAM Triad bandwidth used for the
	// roofline fractions (0 if not measured).
	StreamMBps float64     `json:"stream_mbps"`
	Phases     []PhaseStat `json:"phases"`
}

// Report summarizes the accumulated phases. streamBps is the host's
// STREAM Triad bandwidth in bytes/s (pass 0 to skip roofline
// fractions); phases with no recorded calls are omitted.
func (p *Profiler) Report(streamBps float64) Report {
	p.mu.Lock()
	ph := p.ph
	rootNS := p.rootNS
	p.mu.Unlock()
	rep := Report{
		Schema:       "petscfun3d-profile/1",
		TotalSeconds: float64(rootNS) / 1e9,
		StreamMBps:   streamBps / 1e6,
	}
	for i := Phase(0); i < numPhases; i++ {
		c := ph[i]
		if c.calls == 0 {
			continue
		}
		st := PhaseStat{
			Phase:             i.String(),
			Category:          i.Category(),
			Calls:             c.calls,
			Seconds:           float64(c.selfNS) / 1e9,
			CumulativeSeconds: float64(c.cumNS) / 1e9,
			Flops:             c.flops,
			Bytes:             c.bytes,
			Threads:           c.threads,
		}
		if c.selfNS > 0 {
			sec := float64(c.selfNS) / 1e9
			st.Mflops = float64(c.flops) / sec / 1e6
			st.MBps = float64(c.bytes) / sec / 1e6
			if streamBps > 0 {
				st.StreamFraction = float64(c.bytes) / sec / streamBps
			}
		}
		rep.Phases = append(rep.Phases, st)
	}
	return rep
}

// CategorySeconds sums self time per machine.Report bucket — the
// measured side of a modeled-vs-measured phase-mix table.
func (p *Profiler) CategorySeconds() map[string]float64 {
	out := map[string]float64{}
	for _, st := range p.Report(0).Phases {
		out[st.Category] += st.Seconds
	}
	return out
}

// WriteJSON writes the report as indented JSON.
func (p *Profiler) WriteJSON(w io.Writer, streamBps float64) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Report(streamBps))
}

// BaselineSchema names the layout WriteBaselineJSON emits.
const BaselineSchema = "petscfun3d-phase-baseline/1"

// roundSig rounds v to n significant decimal digits.
func roundSig(v float64, n int) float64 {
	f, _ := strconv.ParseFloat(strconv.FormatFloat(v, 'g', n, 64), 64)
	return f
}

func jsonNum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteBaselineJSON writes the report in the checked-in bench-baseline
// layout (BaselineSchema). A re-recorded baseline should diff only
// where a measurement really moved, so the writer is deterministic in
// everything but the samples: phases are sorted by name, each phase's
// stable identity fields (name, category, call count, and the modeled
// flop and byte totals) sit on one line, and the measured samples
// (seconds and the rates derived from them) sit on the next, rounded to
// three significant digits so timer jitter below the rounding grain
// leaves the line untouched. The interactive -profile-json reports keep
// the full-precision petscfun3d-profile/1 schema; the field names here
// match it, so profile readers parse both.
func WriteBaselineJSON(w io.Writer, rep Report) error {
	phases := append([]PhaseStat(nil), rep.Phases...)
	sort.Slice(phases, func(i, j int) bool { return phases[i].Phase < phases[j].Phase })
	var b []byte
	b = append(b, "{\n"...)
	b = append(b, `  "schema": `+strconv.Quote(BaselineSchema)+",\n"...)
	b = append(b, `  "total_seconds": `+jsonNum(roundSig(rep.TotalSeconds, 3))+",\n"...)
	b = append(b, `  "stream_mbps": `+jsonNum(roundSig(rep.StreamMBps, 3))+",\n"...)
	b = append(b, `  "phases": [`...)
	for i, st := range phases {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, "\n    {\n"...)
		b = append(b, `      "phase": `+strconv.Quote(st.Phase)+`, "category": `+strconv.Quote(st.Category)+
			`, "calls": `+strconv.FormatInt(st.Calls, 10)+
			`, "flops": `+strconv.FormatInt(st.Flops, 10)+
			`, "bytes": `+strconv.FormatInt(st.Bytes, 10)+
			`, "threads": `+strconv.FormatInt(st.Threads, 10)+",\n"...)
		b = append(b, `      "seconds": `+jsonNum(roundSig(st.Seconds, 3))+
			`, "cumulative_seconds": `+jsonNum(roundSig(st.CumulativeSeconds, 3))+
			`, "mflops": `+jsonNum(roundSig(st.Mflops, 3))+
			`, "mbps": `+jsonNum(roundSig(st.MBps, 3))+
			`, "stream_fraction": `+jsonNum(roundSig(st.StreamFraction, 3))+"\n"...)
		b = append(b, "    }"...)
	}
	b = append(b, "\n  ]\n}\n"...)
	if !json.Valid(b) {
		return fmt.Errorf("prof: baseline writer produced invalid JSON")
	}
	_, err := w.Write(b)
	return err
}

// Package-level conveniences over Default.

// Begin opens a span on the default profiler.
func Begin(phase Phase) Span { return Default.Begin(phase) }

// NoteThreads records a phase's worker count on the default profiler.
func NoteThreads(phase Phase, n int) { Default.NoteThreads(phase, n) }

// Enabled reports whether the default profiler records spans.
func Enabled() bool { return Default.Enabled() }
