package prof

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestDisabledProfilerIsInert(t *testing.T) {
	p := New()
	if p.Enabled() {
		t.Fatal("fresh profiler enabled")
	}
	sp := p.Begin(PhaseFlux)
	sp.End(100, 200)
	if rep := p.Report(0); len(rep.Phases) != 0 || rep.TotalSeconds != 0 {
		t.Fatalf("disabled profiler recorded %+v", rep)
	}
	// A nil profiler must also be safe (dist matrices without one).
	var np *Profiler
	np.Begin(PhaseScatter).End(1, 2)
}

func TestNestingSelfAndCumulative(t *testing.T) {
	p := New()
	p.Enable()
	outer := p.Begin(PhaseKrylov)
	inner := p.Begin(PhaseTriSolve)
	time.Sleep(2 * time.Millisecond)
	inner.End(10, 20)
	inner2 := p.Begin(PhaseTriSolve)
	time.Sleep(time.Millisecond)
	inner2.End(30, 40)
	outer.End(0, 0)
	p.Disable()

	rep := p.Report(0)
	stats := map[string]PhaseStat{}
	for _, st := range rep.Phases {
		if st.Seconds < 0 || st.CumulativeSeconds < 0 {
			t.Fatalf("negative time in %+v", st)
		}
		if st.Seconds > st.CumulativeSeconds {
			t.Fatalf("self %g exceeds cumulative %g for %s", st.Seconds, st.CumulativeSeconds, st.Phase)
		}
		stats[st.Phase] = st
	}
	tri, ok := stats["tri_solve"]
	if !ok || tri.Calls != 2 || tri.Flops != 40 || tri.Bytes != 60 {
		t.Fatalf("tri_solve stats wrong: %+v", tri)
	}
	kry := stats["krylov"]
	// The child's cumulative time is bounded by the parent's cumulative
	// time, and the parent's self time excludes it.
	if tri.CumulativeSeconds > kry.CumulativeSeconds {
		t.Fatalf("child cumulative %g exceeds parent cumulative %g", tri.CumulativeSeconds, kry.CumulativeSeconds)
	}
	if got := kry.Seconds + tri.Seconds; !almostEq(got, kry.CumulativeSeconds) {
		t.Fatalf("self times %g don't sum to root cumulative %g", got, kry.CumulativeSeconds)
	}
	// The invariant the reports rely on: self seconds across all phases
	// sum exactly to the tracked total.
	var sum float64
	for _, st := range rep.Phases {
		sum += st.Seconds
	}
	if !almostEq(sum, rep.TotalSeconds) {
		t.Fatalf("phase self sum %g != total %g", sum, rep.TotalSeconds)
	}
}

// almostEq compares durations accumulated through the same integer-nanosecond
// arithmetic: they must agree to float rounding.
func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}

func TestResetAndReuse(t *testing.T) {
	p := New()
	p.Enable()
	p.Begin(PhaseFlux).End(5, 5)
	p.Reset()
	if rep := p.Report(0); len(rep.Phases) != 0 {
		t.Fatalf("reset kept phases: %+v", rep.Phases)
	}
	p.Begin(PhaseFlux).End(7, 7)
	rep := p.Report(0)
	if len(rep.Phases) != 1 || rep.Phases[0].Flops != 7 {
		t.Fatalf("post-reset recording wrong: %+v", rep.Phases)
	}
}

func TestMergeCombinesRanks(t *testing.T) {
	a, b := New(), New()
	a.Enable()
	b.Enable()
	a.Begin(PhaseScatter).End(0, 100)
	b.Begin(PhaseScatter).End(0, 50)
	b.Begin(PhaseReduce).End(10, 0)
	a.Merge(b)
	rep := a.Report(0)
	got := map[string]PhaseStat{}
	for _, st := range rep.Phases {
		got[st.Phase] = st
	}
	if st := got["scatter"]; st.Calls != 2 || st.Bytes != 150 {
		t.Fatalf("merged scatter wrong: %+v", st)
	}
	if st := got["reduce"]; st.Calls != 1 || st.Flops != 10 {
		t.Fatalf("merged reduce wrong: %+v", st)
	}
	// Self-merge is a no-op, not a doubling.
	before := a.Report(0)
	a.Merge(a)
	after := a.Report(0)
	if before.TotalSeconds != after.TotalSeconds {
		t.Fatal("self-merge changed totals")
	}
}

func TestReportJSONSchema(t *testing.T) {
	p := New()
	p.Enable()
	sp := p.Begin(PhaseTriSolve)
	time.Sleep(time.Millisecond)
	sp.End(1000, 8000)
	p.Disable()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf, 1e9); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "petscfun3d-profile/1" {
		t.Fatalf("schema %q", rep.Schema)
	}
	if rep.StreamMBps != 1000 {
		t.Fatalf("stream MB/s %g", rep.StreamMBps)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Phase != "tri_solve" || rep.Phases[0].Category != "compute" {
		t.Fatalf("phases %+v", rep.Phases)
	}
	if rep.Phases[0].StreamFraction <= 0 {
		t.Fatal("stream fraction not computed")
	}
}

func TestCategorySeconds(t *testing.T) {
	p := New()
	p.Enable()
	p.Begin(PhaseFlux).End(0, 0)
	p.Begin(PhaseScatter).End(0, 0)
	p.Begin(PhaseReduce).End(0, 0)
	p.Disable()
	cat := p.CategorySeconds()
	for _, k := range []string{"compute", "scatter", "reduce"} {
		if _, ok := cat[k]; !ok {
			t.Fatalf("category %q missing from %v", k, cat)
		}
	}
}

func TestDisableDropsOpenSpans(t *testing.T) {
	p := New()
	p.Enable()
	sp := p.Begin(PhaseFlux)
	p.Disable()
	sp.End(1, 1) // stack was cleared; must not record or panic
	if rep := p.Report(0); len(rep.Phases) != 0 {
		t.Fatalf("dropped span recorded: %+v", rep.Phases)
	}
}

// BenchmarkDisabledSpan measures the permanent cost of instrumentation
// left in a hot path: one atomic load and a branch per Begin/End pair.
func BenchmarkDisabledSpan(b *testing.B) {
	p := New()
	for i := 0; i < b.N; i++ {
		p.Begin(PhaseFlux).End(0, 0)
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	p := New()
	p.Enable()
	for i := 0; i < b.N; i++ {
		p.Begin(PhaseFlux).End(0, 0)
	}
}

func TestEndUnwindsLeakedSpans(t *testing.T) {
	p := New()
	p.Enable()
	outer := p.Begin(PhaseKrylov)
	p.Begin(PhaseOrtho) // leaked: never closed (an early-return bug)
	time.Sleep(time.Millisecond)
	outer.End(7, 9)
	p.Disable()

	rep := p.Report(0)
	stats := map[string]PhaseStat{}
	for _, st := range rep.Phases {
		stats[st.Phase] = st
	}
	// The leaked ortho span must not swallow the outer End: krylov is
	// still charged, with the leaked frame's time in its self time.
	k, ok := stats["krylov"]
	if !ok {
		t.Fatal("leaked nested span discarded the outer phase entirely")
	}
	if k.Calls != 1 || k.Flops != 7 || k.Bytes != 9 {
		t.Fatalf("outer span miscounted after unwind: %+v", k)
	}
	if k.Seconds <= 0 {
		t.Fatalf("outer span lost its wall time: %+v", k)
	}
	// The leaked span itself is dropped uncharged.
	if o, ok := stats["ortho"]; ok && o.Calls != 0 {
		t.Fatalf("leaked span was charged: %+v", o)
	}
	if rep.TotalSeconds <= 0 {
		t.Fatal("root time lost after unwind")
	}
}

func TestPhaseNamesTaxonomy(t *testing.T) {
	names := PhaseNames()
	if len(names) != int(numPhases) {
		t.Fatalf("PhaseNames returned %d names, want %d", len(names), int(numPhases))
	}
	for _, n := range names {
		if !IsPhaseName(n) {
			t.Fatalf("IsPhaseName(%q) = false for a canonical name", n)
		}
	}
	if IsPhaseName("warp_drive") {
		t.Fatal("IsPhaseName accepted a name outside the taxonomy")
	}
}

func TestBaselineJSONStable(t *testing.T) {
	rep := Report{
		Schema:       "petscfun3d-profile/1",
		TotalSeconds: 0.61331207,
		Phases: []PhaseStat{
			{Phase: "flux", Category: "compute", Calls: 130, Seconds: 0.12498475,
				CumulativeSeconds: 0.12498475, Flops: 343405140, Bytes: 90083760,
				Mflops: 2747.5763, MBps: 720.75802},
			{Phase: "boundary", Category: "compute", Calls: 18, Seconds: 0.00031433,
				CumulativeSeconds: 0.00031433, Flops: 100, Bytes: 200},
		},
	}
	var one, two bytes.Buffer
	if err := WriteBaselineJSON(&one, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteBaselineJSON(&two, rep); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatal("baseline writer is not deterministic")
	}
	// The layout parses as ordinary JSON with the profile field names.
	var out Report
	if err := json.Unmarshal(one.Bytes(), &out); err != nil {
		t.Fatalf("baseline does not parse: %v\n%s", err, one.String())
	}
	if out.Schema != BaselineSchema {
		t.Fatalf("schema %q, want %q", out.Schema, BaselineSchema)
	}
	// Phases are sorted by name regardless of input order.
	if len(out.Phases) != 2 || out.Phases[0].Phase != "boundary" || out.Phases[1].Phase != "flux" {
		t.Fatalf("phases not sorted: %+v", out.Phases)
	}
	// Identity fields survive exactly; samples are rounded to three
	// significant digits so jitter below the grain cannot churn lines.
	if out.Phases[1].Calls != 130 || out.Phases[1].Flops != 343405140 || out.Phases[1].Bytes != 90083760 {
		t.Fatalf("identity fields changed: %+v", out.Phases[1])
	}
	if out.Phases[1].Seconds != 0.125 || out.Phases[1].Mflops != 2750 {
		t.Fatalf("samples not rounded: %+v", out.Phases[1])
	}
	// A sub-grain perturbation of the measurement rewrites nothing.
	rep.Phases[0].Seconds *= 1.0001
	var three bytes.Buffer
	if err := WriteBaselineJSON(&three, rep); err != nil {
		t.Fatal(err)
	}
	if one.String() != three.String() {
		t.Fatal("sub-grain jitter churned the baseline")
	}
}
