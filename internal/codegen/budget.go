package codegen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BudgetSchema versions the manifest shape so a consumer can detect an
// incompatible change instead of misreading it.
const BudgetSchema = "petscfun3d-codegen-budget/1"

// BudgetFile is the manifest's name at the module root.
const BudgetFile = "codegen.budget.json"

// PackageBudget is the per-package conformance policy. The hot-function
// set a package is held to is the union of the costsync registry's
// kernels for that package (automatic: anything whose cost coefficients
// are pinned is hot by definition) and the Hot list here. The budget
// for every hot function is zero: no heap escapes, no bounds checks in
// its innermost loops. Individual irreducible sites are waived in the
// source with audited //lint:escape-ok / //lint:bce-ok pragmas, not
// here, so every waiver carries a reason next to the code it excuses.
type PackageBudget struct {
	// Hot names functions ("Func" or "Type.Method") held to the
	// zero-escape / zero-bounds-check discipline in addition to the
	// costsync registry kernels.
	Hot []string `json:"hot,omitempty"`
	// MustInline names small helpers the cost formulas assume are
	// flattened into their callers; the compiler must report each as
	// inlinable.
	MustInline []string `json:"must_inline,omitempty"`
}

// Budget is the checked-in manifest. Packages not listed are not
// compiled or checked, so test fixtures and cold packages cost nothing.
type Budget struct {
	Schema string `json:"schema"`
	// GoVersion pins the toolchain the budget was recorded against
	// (runtime.Version() form, e.g. "go1.24.0"). Escape analysis,
	// inlining heuristics, and prove all move between releases, so a
	// mismatch is reported instead of silently checking against a
	// different compiler. Re-record with `fun3dlint -update-budget`.
	GoVersion string                   `json:"go_version"`
	Packages  map[string]PackageBudget `json:"packages"`
}

// LoadBudget reads and validates a manifest. A missing file is returned
// as the underlying *PathError so callers can distinguish "no policy
// here" (os.IsNotExist) from a broken manifest.
func LoadBudget(path string) (*Budget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Budget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("codegen: %s: %v", path, err)
	}
	if b.Schema != BudgetSchema {
		return nil, fmt.Errorf("codegen: %s: schema %q, want %q", path, b.Schema, BudgetSchema)
	}
	if b.GoVersion == "" {
		return nil, fmt.Errorf("codegen: %s: missing go_version pin", path)
	}
	return &b, nil
}

// Save writes the manifest with sorted lists and stable formatting, so
// re-recording is a minimal diff.
func (b *Budget) Save(path string) error {
	for name, pb := range b.Packages {
		sort.Strings(pb.Hot)
		sort.Strings(pb.MustInline)
		b.Packages[name] = pb
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
