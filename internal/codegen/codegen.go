// Package codegen turns the Go compiler's own optimization diagnostics
// into a checkable artifact. The paper's performance argument prices
// every hot loop iteration in flops and bytes; that accounting is only
// honest if the compiled code moves exactly those bytes. A scratch
// array escaping to the heap adds allocator traffic the roofline never
// sees, an un-eliminated bounds check adds a branch and a length load
// per iteration to a loop modeled as pure streaming, and a per-edge
// helper that fails to inline adds call overhead the per-iteration
// coefficients assume away.
//
// The package invokes the toolchain with
//
//	go build -gcflags='-m=2 -d=ssa/check_bce/debug=1' .
//
// on one package directory, parses the escape-analysis, inlining, and
// bounds-check diagnostics into a structured model (kind, symbol,
// position, reason chain), and loads/saves the checked-in budget
// manifest (codegen.budget.json) that internal/lint's codegen analyzer
// enforces. Repeat builds replay the diagnostics from the build cache,
// so the pass costs one compile per hot package, once per toolchain.
package codegen

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Kind classifies one compiler diagnostic.
type Kind string

const (
	// KindEscape is an allocation site: "<expr> escapes to heap".
	KindEscape Kind = "escape"
	// KindMoved is a stack variable forced to the heap:
	// "moved to heap: <name>". The position is the declaration, which
	// may sit outside the loops whose iterations pay for it.
	KindMoved Kind = "moved-to-heap"
	// KindBoundsCheck is an un-eliminated bounds check:
	// "Found IsInBounds" / "Found IsSliceInBounds".
	KindBoundsCheck Kind = "bounds-check"
	// KindCanInline records a positive inlining decision.
	KindCanInline Kind = "can-inline"
	// KindCannotInline records a refusal, with the compiler's reason.
	KindCannotInline Kind = "cannot-inline"
)

// Diagnostic is one parsed compiler message.
type Diagnostic struct {
	Kind Kind
	// File is the source file, joined onto the package directory the
	// compiler ran in (so it compares equal to positions from a
	// FileSet that parsed the same directory).
	File string
	Line int
	Col  int
	// Symbol is the function an inlining diagnostic is about,
	// normalized to "Func" or "Type.Method" (pointer receivers and
	// generic instantiation brackets stripped). Empty for other kinds.
	Symbol string
	// Message is the compiler's first line, verbatim (e.g.
	// "moved to heap: qa", "Found IsInBounds",
	// "cannot inline gather: function too complex: ...").
	Message string
	// Chain is the -m=2 escape reason chain ("flow: ..." / "from ..."
	// lines), indentation stripped, when the compiler printed one.
	Chain []string
}

// Report is the parsed diagnostic set of one package directory.
type Report struct {
	Dir         string
	GoVersion   string // runtime.Version() of the invoking toolchain
	Diagnostics []Diagnostic
}

// Analyze compiles the package in dir with diagnostic flags and parses
// the output. The build must succeed; a failing build is returned as an
// error carrying the compiler output. Diagnostic file names arrive
// relative to the enclosing module root (that is how the go command
// prints positions), so they are joined onto it, not onto dir.
func Analyze(dir string) (*Report, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m=2 -d=ssa/check_bce/debug=1", ".")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("codegen: go build in %s failed: %v\n%s", dir, err, out.String())
	}
	return &Report{
		Dir:         dir,
		GoVersion:   runtime.Version(),
		Diagnostics: ParseDiagnostics(out.String(), dir),
	}, nil
}

// moduleRoot walks up from dir to the nearest directory holding a
// go.mod; dir itself if none is found.
func moduleRoot(dir string) string {
	d := filepath.Clean(dir)
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return filepath.Clean(dir)
		}
		d = parent
	}
}

// diagLine matches "file:line:col: message". The message part keeps its
// leading spaces so continuation (reason-chain) lines are recognizable.
var diagLine = regexp.MustCompile(`^(.+?):(\d+):(\d+): (.*)$`)

// ParseDiagnostics parses compiler output into diagnostics, resolving
// relative file names against dir or its module root (the go command
// prints positions relative to its own working directory on a fresh
// compile, but replays cached diagnostics verbatim from whichever
// directory filled the cache — both bases occur in practice). Lines the
// conformance policy has no use for (leaking-param summaries, "does not
// escape", inlined call sites) are dropped; -m=2 flow chains attach to
// the escape they explain.
func ParseDiagnostics(text, dir string) []Diagnostic {
	root := moduleRoot(dir)
	var out []Diagnostic
	var last *Diagnostic // most recent escape/moved diagnostic, for chain lines
	type diagKey struct {
		kind      Kind
		file      string
		line, col int
		message   string
	}
	seen := map[diagKey]bool{}
	for _, line := range strings.Split(text, "\n") {
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if strings.HasPrefix(msg, " ") {
			// Indented continuation: the escape reason chain.
			if last != nil {
				last.Chain = append(last.Chain, strings.TrimSpace(msg))
			}
			continue
		}
		d := Diagnostic{
			File: joinDiagFile(root, dir, m[1]),
			Line: atoi(m[2]),
			Col:  atoi(m[3]),
		}
		switch {
		case strings.HasPrefix(msg, "can inline "):
			d.Kind = KindCanInline
			sym := strings.TrimPrefix(msg, "can inline ")
			if i := strings.Index(sym, " with cost "); i >= 0 {
				sym = sym[:i]
			}
			d.Symbol = NormalizeSymbol(sym)
			d.Message = msg
		case strings.HasPrefix(msg, "cannot inline "):
			d.Kind = KindCannotInline
			rest := strings.TrimPrefix(msg, "cannot inline ")
			sym := rest
			if i := strings.Index(rest, ":"); i >= 0 {
				sym = rest[:i]
			}
			d.Symbol = NormalizeSymbol(sym)
			d.Message = msg
		case strings.HasPrefix(msg, "moved to heap: "):
			d.Kind = KindMoved
			d.Message = msg
		case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
			d.Kind = KindBoundsCheck
			d.Message = msg
		case strings.HasSuffix(msg, "escapes to heap") || strings.HasSuffix(msg, "escapes to heap:"):
			d.Kind = KindEscape
			d.Message = strings.TrimSuffix(msg, ":")
		default:
			// "leaking param", "does not escape", "inlining call to",
			// and anything future toolchains add that the policy does
			// not price.
			continue
		}
		// -m=2 reports each escape twice: once in the explain pass
		// (with its flow chain) and once as a bare summary line.
		key := diagKey{d.Kind, d.File, d.Line, d.Col, d.Message}
		if seen[key] {
			last = nil
			continue
		}
		seen[key] = true
		out = append(out, d)
		if d.Kind == KindEscape || d.Kind == KindMoved {
			last = &out[len(out)-1]
		} else {
			last = nil
		}
	}
	return out
}

// NormalizeSymbol reduces a compiler function symbol to the "Func" /
// "Type.Method" form the budget manifest uses: "(*CSR).MulVec" →
// "CSR.MulVec", generic instantiation brackets stripped.
func NormalizeSymbol(sym string) string {
	sym = strings.TrimSpace(sym)
	if i := strings.IndexByte(sym, '['); i >= 0 {
		j := strings.LastIndexByte(sym, ']')
		if j > i {
			sym = sym[:i] + sym[j+1:]
		} else {
			sym = sym[:i]
		}
	}
	sym = strings.ReplaceAll(sym, "(*", "")
	sym = strings.ReplaceAll(sym, "(", "")
	sym = strings.ReplaceAll(sym, ")", "")
	return sym
}

// joinDiagFile resolves a compiler-diagnostic file name. A "./"-prefixed
// name points into the package directory (fresh compile there); a bare
// relative name is usually module-root-relative (compile or replay from
// the root). Whichever preferred candidate does not exist on disk yields
// to the one that does.
func joinDiagFile(root, dir, file string) string {
	if filepath.IsAbs(file) {
		return filepath.Clean(file)
	}
	first, second := root, dir
	if strings.HasPrefix(file, "./") {
		first, second = dir, root
	}
	p := filepath.Clean(filepath.Join(first, file))
	if _, err := os.Stat(p); err == nil {
		return p
	}
	if q := filepath.Clean(filepath.Join(second, file)); fileExists(q) {
		return q
	}
	return p
}

func fileExists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}

func atoi(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}
