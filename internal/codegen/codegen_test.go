package codegen

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

const sampleOutput = `# fixture/sample
./csr.go:25:6: can inline (*CSR).NNZ with cost 4 as: method(*CSR) func() int { return len(a.ColIdx) }
./csr.go:46:6: cannot inline (*CSR).MulVec: function too complex: cost 176 exceeds budget 80
./csr.go:49:28: ... argument does not escape
./csr.go:49:28: fmt.Sprintf("dim %d", a.N) escapes to heap:
./csr.go:49:28:   flow: {storage for ... argument} = &{storage for fmt.Sprintf("dim %d", a.N)}:
./csr.go:49:28:     from fmt.Sprintf("dim %d", a.N) (spill) at ./csr.go:49:28
./csr.go:46:20: leaking param: x
./csr.go:54:14: Found IsInBounds
./csr.go:54:24: Found IsSliceInBounds
./disc.go:184:6: moved to heap: qa
./disc.go:190:13: inlining call to gather
./bcsr.go:80:6: can inline mulVecGeneric[go.shape.int32] with cost 70 as: ...
`

func TestParseDiagnostics(t *testing.T) {
	diags := ParseDiagnostics(sampleOutput, "pkg")
	want := []struct {
		kind   Kind
		line   int
		symbol string
	}{
		{KindCanInline, 25, "CSR.NNZ"},
		{KindCannotInline, 46, "CSR.MulVec"},
		{KindEscape, 49, ""},
		{KindBoundsCheck, 54, ""},
		{KindBoundsCheck, 54, ""},
		{KindMoved, 184, ""},
		{KindCanInline, 80, "mulVecGeneric"},
	}
	if len(diags) != len(want) {
		t.Fatalf("parsed %d diagnostics, want %d:\n%v", len(diags), len(want), diags)
	}
	for i, w := range want {
		d := diags[i]
		if d.Kind != w.kind || d.Line != w.line || d.Symbol != w.symbol {
			t.Errorf("diag %d = %v %d %q, want %v %d %q", i, d.Kind, d.Line, d.Symbol, w.kind, w.line, w.symbol)
		}
		if d.File != filepath.Clean(filepath.Join("pkg", "csr.go")) &&
			d.File != filepath.Clean(filepath.Join("pkg", "disc.go")) &&
			d.File != filepath.Clean(filepath.Join("pkg", "bcsr.go")) {
			t.Errorf("diag %d file = %q, not joined onto the package dir", i, d.File)
		}
	}
	// The -m=2 flow chain attached to the escape, indentation stripped.
	esc := diags[2]
	if len(esc.Chain) != 2 || esc.Chain[0] != "flow: {storage for ... argument} = &{storage for fmt.Sprintf(\"dim %d\", a.N)}:" {
		t.Errorf("escape chain = %q, want the two flow lines", esc.Chain)
	}
	if esc.Message != `fmt.Sprintf("dim %d", a.N) escapes to heap` {
		t.Errorf("escape message = %q, want the trailing colon stripped", esc.Message)
	}
}

func TestNormalizeSymbol(t *testing.T) {
	cases := map[string]string{
		"(*CSR).MulVec":                 "CSR.MulVec",
		"CSR.NNZ":                       "CSR.NNZ",
		"Dot":                           "Dot",
		"mulVecGeneric[go.shape.int32]": "mulVecGeneric",
		"(*BCSR).mulVec4":               "BCSR.mulVec4",
	}
	for in, want := range cases {
		if got := NormalizeSymbol(in); got != want {
			t.Errorf("NormalizeSymbol(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBudgetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, BudgetFile)
	b := &Budget{
		Schema:    BudgetSchema,
		GoVersion: runtime.Version(),
		Packages: map[string]PackageBudget{
			"example/pkg": {Hot: []string{"Z", "A"}, MustInline: []string{"tiny"}},
		},
	}
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GoVersion != runtime.Version() || got.Schema != BudgetSchema {
		t.Errorf("round trip lost header: %+v", got)
	}
	pb := got.Packages["example/pkg"]
	if len(pb.Hot) != 2 || pb.Hot[0] != "A" || pb.Hot[1] != "Z" {
		t.Errorf("hot list not sorted on save: %v", pb.Hot)
	}
	if _, err := LoadBudget(filepath.Join(dir, "absent.json")); !os.IsNotExist(err) {
		t.Errorf("missing manifest: err = %v, want os.IsNotExist", err)
	}
}

func TestBudgetRejectsBadHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, BudgetFile)
	if err := os.WriteFile(path, []byte(`{"schema":"other/9","go_version":"go1.0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBudget(path); err == nil {
		t.Error("wrong schema accepted")
	}
	if err := os.WriteFile(path, []byte(`{"schema":"`+BudgetSchema+`"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBudget(path); err == nil {
		t.Error("missing go_version accepted")
	}
}

// TestAnalyzeLive compiles a small throwaway module and checks the
// parsed diagnostics include a deliberate escape, a deliberate bounds
// check, and both inlining decisions — the live end of what
// TestParseDiagnostics pins on canned output.
func TestAnalyzeLive(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module codegenlive\n\ngo 1.22\n")
	writeFile("live.go", `package codegenlive

var sink *int

// Escape forces x to the heap.
func Escape() *int {
	x := 42
	sink = &x
	return sink
}

// Bounds cannot prove len(xs) covers n.
func Bounds(xs []float64, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += xs[i]
	}
	return s
}

// Tiny inlines.
func Tiny(a, b float64) float64 { return a*b + b }
`)
	rep, err := Analyze(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoVersion != runtime.Version() {
		t.Errorf("report GoVersion = %q, want %q", rep.GoVersion, runtime.Version())
	}
	var sawMoved, sawBounds, sawTiny bool
	for _, d := range rep.Diagnostics {
		switch {
		case d.Kind == KindMoved && d.Message == "moved to heap: x":
			sawMoved = true
		case d.Kind == KindBoundsCheck:
			sawBounds = true
		case d.Kind == KindCanInline && d.Symbol == "Tiny":
			sawTiny = true
		}
	}
	if !sawMoved || !sawBounds || !sawTiny {
		t.Errorf("live diagnostics missing moved=%v bounds=%v inline=%v:\n%v",
			sawMoved, sawBounds, sawTiny, rep.Diagnostics)
	}
}
