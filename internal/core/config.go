// Package core is the PETSc-FUN3D facade: it assembles the mesh,
// discretization, partitioner, Schwarz-preconditioned ψNKS solver, and —
// for parallel studies — the virtual machine cost model, behind a single
// Config. The benchmark harness (cmd/benchtables) and the examples drive
// everything through this package.
package core

import (
	"fmt"
	"os"

	"petscfun3d/internal/euler"
	"petscfun3d/internal/ilu"
	"petscfun3d/internal/krylov"
	"petscfun3d/internal/mesh"
	"petscfun3d/internal/newton"
	"petscfun3d/internal/par"
	"petscfun3d/internal/partition"
	"petscfun3d/internal/perfmodel"
	"petscfun3d/internal/schwarz"
	"petscfun3d/internal/sparse"
)

// Config selects a complete solver setup. Zero values get defaults from
// DefaultConfig.
type Config struct {
	// Mesh: a mesh file (see mesh.Read) when MeshFile is set; otherwise
	// explicit lattice dimensions, or a target vertex count when NX==0.
	MeshFile       string
	NX, NY, NZ     int
	TargetVertices int

	// System is "incompressible" (4 unknowns/vertex) or "compressible"
	// (5 unknowns/vertex).
	System string

	// Order is the flux discretization order (1 or 2); SwitchOrderAt>0
	// runs first-order until that residual reduction, then second.
	Order         int
	Limit         bool
	SwitchOrderAt float64
	// Viscosity adds Galerkin-type momentum diffusion (laminar
	// Navier-Stokes); 0 solves the Euler equations.
	Viscosity float64

	// RCM renumbers vertices by Reverse Cuthill-McKee (the paper's
	// locality ordering); EdgeOrdering is "sorted" or "colored".
	RCM          bool
	EdgeOrdering string

	// Newton configures the pseudo-transient Newton-Krylov driver.
	Newton newton.Options

	// Schwarz preconditioner: subdomain overlap, ILU fill level, and
	// single-precision factor storage.
	Overlap         int
	FillLevel       int
	SinglePrecision bool

	// Parallel setup: rank count, partitioner ("kway" or "pway"), and
	// the machine profile for the cost model. The Newton options carry
	// the remaining algorithmic switches (assembled vs matrix-free
	// operator, orthogonalization, SER law, ...).
	Ranks       int
	Partitioner string
	Profile     perfmodel.Profile

	// Threads is the node-level worker count for the threaded kernels
	// (flux sweeps, triangular solves, SpMV, Krylov reductions). 0 or 1
	// runs everything sequentially. The threaded kernels are bitwise
	// identical to sequential at every thread count.
	Threads int
}

// DefaultConfig returns a small incompressible problem on one rank.
func DefaultConfig() Config {
	return Config{
		TargetVertices: 2000,
		System:         "incompressible",
		Order:          1,
		RCM:            true,
		EdgeOrdering:   "sorted",
		Newton:         newton.DefaultOptions(),
		Overlap:        0,
		FillLevel:      0,
		Ranks:          1,
		Threads:        1,
		Partitioner:    "kway",
		Profile:        perfmodel.ASCIRed,
	}
}

// Validate rejects configurations Build cannot honor, with errors that
// name the offending field. Build calls it first, so a bad knob fails
// fast instead of surfacing as a confusing downstream error (or
// silently running a different discretization than asked for).
func (cfg Config) Validate() error {
	if cfg.Order != 0 && cfg.Order != 1 && cfg.Order != 2 {
		return fmt.Errorf("core: invalid Order %d (want 1 or 2)", cfg.Order)
	}
	switch cfg.EdgeOrdering {
	case "", "sorted", "colored":
	default:
		return fmt.Errorf("core: unknown EdgeOrdering %q (want \"sorted\" or \"colored\")", cfg.EdgeOrdering)
	}
	if cfg.Overlap < 0 {
		return fmt.Errorf("core: negative Overlap %d", cfg.Overlap)
	}
	if cfg.FillLevel < 0 {
		return fmt.Errorf("core: negative FillLevel %d", cfg.FillLevel)
	}
	if cfg.Ranks < 1 {
		return fmt.Errorf("core: nonpositive Ranks %d", cfg.Ranks)
	}
	if cfg.Threads < 0 {
		return fmt.Errorf("core: negative Threads %d", cfg.Threads)
	}
	if cfg.MeshFile == "" && cfg.NX <= 0 && cfg.TargetVertices <= 0 {
		return fmt.Errorf("core: nonpositive TargetVertices %d with no MeshFile or lattice dimensions", cfg.TargetVertices)
	}
	if cfg.NX > 0 && (cfg.NY <= 0 || cfg.NZ <= 0) {
		return fmt.Errorf("core: lattice dimensions %dx%dx%d need all of NX, NY, NZ positive", cfg.NX, cfg.NY, cfg.NZ)
	}
	return nil
}

// Problem holds everything Build assembles from a Config.
type Problem struct {
	Cfg   Config
	Mesh  *mesh.Mesh
	Sys   euler.System
	Graph sparse.Graph
	Disc  *euler.Discretization // active-order discretization
	Disc2 *euler.Discretization // second-order (when continuation is on)
	Part  *partition.Partition
	Halos []partition.Halo
	// Pool is the node-level worker pool (nil when Cfg.Threads <= 1);
	// Close releases it.
	Pool *par.Pool
}

// Close releases the problem's worker pool (safe on nil pools).
func (p *Problem) Close() { p.Pool.Close() }

// Build assembles a problem.
func Build(cfg Config) (*Problem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var m *mesh.Mesh
	var err error
	switch {
	case cfg.MeshFile != "":
		f, ferr := os.Open(cfg.MeshFile)
		if ferr != nil {
			return nil, fmt.Errorf("core: %w", ferr)
		}
		m, err = mesh.Read(f)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("core: %w", cerr)
		}
	case cfg.NX > 0:
		m, err = mesh.GenerateWing(mesh.DefaultWingSpec(cfg.NX, cfg.NY, cfg.NZ))
	default:
		m, err = mesh.GenerateWingN(cfg.TargetVertices)
	}
	if err != nil {
		return nil, err
	}
	if cfg.RCM {
		m = m.Renumber(mesh.RCM(m))
	}
	var sys euler.System
	switch cfg.System {
	case "", "incompressible":
		sys = euler.NewIncompressible()
	case "compressible":
		sys = euler.NewCompressible()
	default:
		return nil, fmt.Errorf("core: unknown system %q", cfg.System)
	}
	p := &Problem{Cfg: cfg, Mesh: m, Sys: sys}
	if cfg.Threads > 1 {
		p.Pool = par.New(cfg.Threads)
	}
	p.Graph = sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}

	order := cfg.Order
	if order == 0 {
		order = 1
	}
	baseOrder := order
	if cfg.SwitchOrderAt > 0 {
		baseOrder = 1
	}
	p.Disc, err = euler.NewDiscretization(m, nil, sys, euler.Options{
		Order: baseOrder, EdgeOrdering: cfg.EdgeOrdering, Limit: cfg.Limit && baseOrder == 2,
		Viscosity: cfg.Viscosity,
	})
	if err != nil {
		return nil, err
	}
	if cfg.SwitchOrderAt > 0 {
		p.Disc2, err = euler.NewDiscretization(m, p.Disc.Geo, sys, euler.Options{
			Order: 2, EdgeOrdering: cfg.EdgeOrdering, Limit: cfg.Limit,
			Viscosity: cfg.Viscosity,
		})
		if err != nil {
			return nil, err
		}
	}
	if cfg.Ranks > 1 {
		switch cfg.Partitioner {
		case "", "kway":
			p.Part, err = partition.KWay(p.Graph, cfg.Ranks)
		case "pway":
			p.Part, err = partition.PWay(p.Graph, cfg.Ranks)
		default:
			return nil, fmt.Errorf("core: unknown partitioner %q", cfg.Partitioner)
		}
		if err != nil {
			return nil, err
		}
		p.Halos = partition.BuildHalos(p.Graph, p.Part)
	} else {
		p.Part = &partition.Partition{NParts: 1, Part: make([]int32, m.NumVertices())}
		p.Halos = partition.BuildHalos(p.Graph, p.Part)
	}
	return p, nil
}

// PCFactory returns the Schwarz preconditioner factory for the problem's
// partition and Config, remembering the last-built preconditioner so the
// parallel cost model can read per-subdomain work.
func (p *Problem) PCFactory(last **schwarz.Preconditioner) newton.PCFactory {
	return func(a *sparse.BCSR) (krylov.Preconditioner, error) {
		pc, err := schwarz.New(a, p.Part.Part, p.Part.NParts, schwarz.Options{
			Overlap: p.Cfg.Overlap,
			ILU:     ilu.Options{Level: p.Cfg.FillLevel, SinglePrecision: p.Cfg.SinglePrecision},
			Pool:    p.Pool,
		})
		if err != nil {
			return nil, err
		}
		if last != nil {
			*last = pc
		}
		return pc, nil
	}
}
