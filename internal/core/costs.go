package core

// Kernel cost estimates feeding the virtual-machine model. The formulas
// live next to the kernels they describe (internal/euler, internal/ilu)
// so the modeled accounting here and the measured profiler
// (internal/prof) charge the same work with the same constants; this
// file only adapts them to the model's per-rank bookkeeping.

import (
	"petscfun3d/internal/euler"
	"petscfun3d/internal/ilu"
)

// edgeFluxFlops is euler.EdgeFluxFlops: per-edge work of one flux
// evaluation.
func edgeFluxFlops(b int) int64 { return euler.EdgeFluxFlops(b) }

// fluxTrafficBytes is euler.FluxTrafficBytes: memory traffic of one flux
// evaluation over a subdomain.
func fluxTrafficBytes(nvLocal, b int, edgesLocal int64) int64 {
	return euler.FluxTrafficBytes(nvLocal, b, edgesLocal)
}

// vecSweepBytes is the traffic of one pass over a local vector of n
// scalars (read + write); vecSweepFlops the multiply-add work of the
// same pass.
func vecSweepBytes(n int) int64 { return int64(16 * n) }
func vecSweepFlops(n int) int64 { return int64(2 * n) }

// krylovVecSweeps is the average number of local-vector passes per GMRES
// iteration (orthogonalization axpys/dots, basis scaling, solution
// update amortized over the restart cycle).
const krylovVecSweeps = 8

// jacobianAssemblyFlops is euler.JacobianAssemblyFlops: per-edge work of
// the analytical first-order Jacobian.
func jacobianAssemblyFlops(b int) int64 { return euler.JacobianAssemblyFlops(b) }

// jacobianAssemblyBytes is euler.JacobianAssemblyBytes: per-edge traffic
// of assembly.
func jacobianAssemblyBytes(b int) int64 { return euler.JacobianAssemblyBytes(b) }

// iluFactorFlops is ilu.FactorFlopsFor: work of factoring nnzb blocks of
// size b.
func iluFactorFlops(nnzb, b int) int64 { return ilu.FactorFlopsFor(nnzb, b) }

// iluFactorBytes is ilu.FactorBytesFor: factorization memory traffic.
func iluFactorBytes(nnzb, b, valBytes int) int64 { return ilu.FactorBytesFor(nnzb, b, valBytes) }

// privateGatherBytes is euler.PrivateGatherBytes: traffic of summing the
// extra threads' private residual copies into the shared residual (a
// read-modify-write of the shared array plus a streaming read of each
// private copy — 24 bytes per entry per extra thread, not 16).
func privateGatherBytes(extra, n int64) int64 { return euler.PrivateGatherBytes(extra, n) }
