package core

// Kernel cost estimates feeding the virtual-machine model. The constants
// are operation counts of the kernels in internal/euler and internal/ilu;
// they need only be right to first order — the scaling *shapes* the model
// reproduces come from how the counts distribute over ranks (partition
// sizes, halo sizes, iteration counts), not from the constants.

// edgeFluxFlops estimates floating-point operations per edge of one flux
// evaluation: two physical flux evaluations, two spectral radii, and the
// dissipation/accumulation arithmetic, all O(b).
func edgeFluxFlops(b int) int64 { return int64(24*b + 50) }

// fluxTrafficBytes estimates the memory traffic of one flux evaluation
// over a subdomain with nvLocal vertices and edgesLocal edges: with the
// cache-friendly (interlaced, edge-sorted) layouts the paper's code
// uses, vertex state/residual/coordinate data is read from cache after
// its first touch, so traffic is one sweep over the vertex arrays plus
// the streaming read of the edge normals. This keeps the modeled flux
// phase instruction-bound rather than memory-bound — the paper's
// explicit observation, and the premise of its hybrid-threading study.
func fluxTrafficBytes(nvLocal, b int, edgesLocal int64) int64 {
	return int64(nvLocal)*int64(8*(2*b+3)) + edgesLocal*24
}

// vecSweepBytes is the traffic of one pass over a local vector of n
// scalars (read + write).
func vecSweepBytes(n int) int64 { return int64(16 * n) }

// krylovVecSweeps is the average number of local-vector passes per GMRES
// iteration (orthogonalization axpys/dots, basis scaling, solution
// update amortized over the restart cycle).
const krylovVecSweeps = 8

// jacobianAssemblyFlops estimates per-edge work of the analytical
// first-order Jacobian: two b×b physical Jacobians plus block
// accumulation.
func jacobianAssemblyFlops(b int) int64 { return int64(12 * b * b) }

// jacobianAssemblyBytes estimates per-edge traffic of assembly: four
// b×b block read-modify-writes.
func jacobianAssemblyBytes(b int) int64 { return int64(4 * 2 * 8 * b * b) }

// iluFactorFlops estimates the work of factoring nnzb blocks of size b:
// each block participates in O(1) block-block multiplies of 2b³ flops.
func iluFactorFlops(nnzb, b int) int64 { return 2 * int64(nnzb) * int64(b) * int64(b) * int64(b) }

// iluFactorBytes estimates factorization traffic: each stored block
// read and written a small constant number of times.
func iluFactorBytes(nnzb, b, valBytes int) int64 {
	return 3 * int64(nnzb) * int64(b) * int64(b) * int64(valBytes)
}
