package core

import (
	"fmt"
	"sort"

	"petscfun3d/internal/krylov"
	"petscfun3d/internal/machine"
	"petscfun3d/internal/newton"
	"petscfun3d/internal/schwarz"
)

// ParallelResult reports a domain-decomposed solve: real convergence
// history plus the virtual machine's modeled execution profile.
type ParallelResult struct {
	Problem *Problem
	Newton  *newton.Result
	Report  machine.Report
	// HaloBytesPerExchange is the total data (bytes, all ranks) moved by
	// one ghost-point scatter — Table 3's "total data sent per
	// iteration" grows with rank count through this number.
	HaloBytesPerExchange int64
	// MaxVerticesPerRank and MinVerticesPerRank describe the partition.
	MaxVerticesPerRank int
	MinVerticesPerRank int
	// LinearSolveSeconds is the mean per-rank modeled time spent in the
	// Krylov solve phases (Table 2's "Linear Solve" column).
	LinearSolveSeconds float64
}

// rankLoads precomputes per-rank workload for the cost model.
type rankLoads struct {
	ranks     int
	b         int
	localN    []int   // owned scalar unknowns
	edges     []int64 // flux edges computed by the rank (cut edges count twice: redundant work)
	partners  [][]int
	sendBytes [][]int64 // bytes of one b-vector halo exchange
	haloTotal int64
}

func buildLoads(p *Problem) *rankLoads {
	ranks := p.Part.NParts
	b := p.Sys.B()
	l := &rankLoads{
		ranks:     ranks,
		b:         b,
		localN:    make([]int, ranks),
		edges:     make([]int64, ranks),
		partners:  make([][]int, ranks),
		sendBytes: make([][]int64, ranks),
	}
	for _, q := range p.Part.Part {
		l.localN[q] += b
	}
	for _, e := range p.Mesh.Edges {
		pa, pb := p.Part.Part[e.A], p.Part.Part[e.B]
		l.edges[pa]++
		if pb != pa {
			// Cut edges are computed by both owners — the redundant
			// work whose fraction grows with rank count.
			l.edges[pb]++
		}
	}
	for r := 0; r < ranks; r++ {
		h := &p.Halos[r]
		qs := make([]int32, 0, len(h.Sends))
		for q := range h.Sends {
			qs = append(qs, q)
		}
		sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
		for _, q := range qs {
			l.partners[r] = append(l.partners[r], int(q))
			bytes := int64(len(h.Sends[q])) * int64(b) * 8
			l.sendBytes[r] = append(l.sendBytes[r], bytes)
			l.haloTotal += bytes
		}
	}
	return l
}

// RunParallel builds the problem, runs the real ψNKS solve, and models
// its execution on cfg.Ranks ranks of cfg.Profile nodes.
func RunParallel(cfg Config) (*ParallelResult, error) {
	if cfg.Ranks < 2 {
		return nil, fmt.Errorf("core: RunParallel needs Ranks >= 2, got %d", cfg.Ranks)
	}
	p, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	loads := buildLoads(p)
	mach, err := machine.New(cfg.Ranks, cfg.Profile)
	if err != nil {
		return nil, err
	}
	var lastPC *schwarz.Preconditioner
	b := p.Sys.B()

	// The hooks below run deep inside the Newton solve and cannot return
	// errors through it; the first failure is latched here and reported
	// after Solve returns instead of panicking mid-solve.
	var hookErr error
	chargeHalo := func() {
		if hookErr != nil {
			return
		}
		if err := mach.Exchange(loads.partners, loads.sendBytes); err != nil {
			hookErr = fmt.Errorf("core: modeled halo exchange: %w", err)
		}
	}
	chargeFlux := func() {
		for r := 0; r < cfg.Ranks; r++ {
			mach.Compute(r,
				loads.edges[r]*edgeFluxFlops(b),
				fluxTrafficBytes(loads.localN[r]/b, b, loads.edges[r]),
				cfg.Profile.FluxFlopRate)
		}
	}
	chargeVecOps := func(sweeps int) {
		for r := 0; r < cfg.Ranks; r++ {
			mach.Compute(r,
				int64(sweeps)*vecSweepFlops(loads.localN[r]),
				int64(sweeps)*vecSweepBytes(loads.localN[r]),
				0)
		}
	}

	hooks := &newton.Hooks{
		// A Newton-level residual evaluation: ghost update, flux sweep,
		// norm reduction.
		AfterResidual: func() {
			chargeHalo()
			chargeFlux()
			mach.AllReduce(1)
		},
		// Preconditioner refresh: Jacobian assembly plus subdomain ILU
		// factorization; with overlap, also the exchange of overlapped
		// matrix rows.
		AfterJacobian: func() {
			for r := 0; r < cfg.Ranks; r++ {
				edges := loads.edges[r]
				mach.Compute(r, edges*jacobianAssemblyFlops(b), edges*jacobianAssemblyBytes(b), 0)
			}
			if lastPC != nil {
				for r, sub := range lastPC.Subs {
					nnzb := sub.Factor.NNZBlocks()
					vb := sub.Factor.BytesPerValue()
					mach.Compute(r, iluFactorFlops(nnzb, b), iluFactorBytes(nnzb, b, vb), 0)
					if ghost := sub.GhostRows(); ghost > 0 {
						// Overlapped matrix rows communicated once per
						// refresh: approximate as extra bytes in a halo
						// exchange pattern.
						mach.ComputeTimeDirect(r,
							float64(ghost*b*b*8*16)/cfg.Profile.NetBW, 0)
					}
				}
			}
		},
		// One GMRES matvec: ghost update, matrix-free flux evaluation,
		// the iteration's vector work, and the orthogonalization/norm
		// reductions. The synchronization count follows the configured
		// mechanism — krylov.Stats.Reductions draws the same distinction
		// in the real solve: per-vector mgs pays one single-word round
		// per basis vector plus the norm (half the restart length on
		// average), where the fused cgs/cgs2 paths batch the whole
		// projection column into ONE multi-word round plus the norm.
		WrapOperator: func(op krylov.Operator) krylov.Operator {
			return krylov.OperatorFunc(func(v, y []float64) {
				op.Apply(v, y)
				mach.SetTag("linear")
				chargeHalo()
				chargeFlux()
				chargeVecOps(krylovVecSweeps)
				meanCol := cfg.Newton.Krylov.Restart/2 + 1
				switch cfg.Newton.Krylov.Orthogonalization {
				case "cgs":
					mach.AllReduce(meanCol)
					mach.AllReduce(1)
				case "cgs2":
					// The batch carries the pre-projection norm too.
					mach.AllReduce(meanCol + 1)
					mach.AllReduce(1)
				default: // mgs
					for i := 0; i < meanCol; i++ {
						mach.AllReduce(1)
					}
					mach.AllReduce(1)
				}
				mach.SetTag("")
			})
		},
		// One preconditioner application: subdomain triangular solves
		// (memory-bandwidth-bound), plus the RASM ghost update when
		// overlapped.
		WrapPreconditioner: func(pc krylov.Preconditioner) krylov.Preconditioner {
			return krylov.PrecondFunc(func(rv, z []float64) {
				pc.Apply(rv, z)
				mach.SetTag("linear")
				if cfg.Overlap > 0 {
					chargeHalo()
				}
				if lastPC != nil {
					for r, sub := range lastPC.Subs {
						mach.Compute(r, sub.SolveFlops(), sub.SolveBytes(), 0)
					}
				}
				mach.SetTag("")
			})
		},
	}

	nopts := cfg.Newton
	nopts.Krylov.Pool = p.Pool
	s := &newton.Solver{
		Disc:  p.Disc,
		Disc2: p.Disc2,
		PC:    p.PCFactory(&lastPC),
		Opts:  nopts,
		Hooks: hooks,
	}
	q := p.Disc.FreestreamVector()
	res, err := s.Solve(q)
	if hookErr != nil {
		return nil, hookErr
	}
	if err != nil {
		return nil, err
	}
	sizes := p.Part.Sizes()
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return &ParallelResult{
		Problem:              p,
		Newton:               res,
		Report:               mach.Report(),
		LinearSolveSeconds:   mach.TagSeconds("linear"),
		HaloBytesPerExchange: loads.haloTotal,
		MaxVerticesPerRank:   max,
		MinVerticesPerRank:   min,
	}, nil
}
