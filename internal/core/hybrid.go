package core

import (
	"fmt"

	"petscfun3d/internal/machine"
)

// FluxPhaseTime models the Table 5 experiment: the flux (function
// evaluation) phase only, on `nodes` nodes, exploiting each node's
// second processor either with a second MPI rank (procsPerNode=2,
// threads=1) or with a second thread (procsPerNode=1, threads=2).
//
// The two mechanisms trade differently, as in the paper:
//   - MPI ranks double the subdomain count: more cut edges mean more
//     redundant flux work and more/smaller messages (surface-to-volume
//     worsens with rank count).
//   - Threads split the edge loop inside one subdomain with no halo
//     growth, but pay a memory-bandwidth-bound gather of the private
//     residual arrays (OpenMP 1's missing vector-reduce).
//
// Returns the modeled seconds for `evals` function evaluations.
func FluxPhaseTime(cfg Config, nodes, procsPerNode, threads, evals int) (float64, error) {
	if nodes < 2 || procsPerNode < 1 || procsPerNode > 2 || threads < 1 || threads > 2 {
		return 0, fmt.Errorf("core: FluxPhaseTime nodes=%d procsPerNode=%d threads=%d unsupported",
			nodes, procsPerNode, threads)
	}
	if procsPerNode == 2 && threads == 2 {
		return 0, fmt.Errorf("core: cannot use both two ranks and two threads per node")
	}
	ranks := nodes * procsPerNode
	cfg.Ranks = ranks
	p, err := Build(cfg)
	if err != nil {
		return 0, err
	}
	loads := buildLoads(p)
	mach, err := machine.New(ranks, cfg.Profile)
	if err != nil {
		return 0, err
	}
	b := p.Sys.B()
	// The flux kernel is instruction-scheduling bound (not memory bound),
	// so a second thread on the node nearly doubles the sustained rate.
	rate := cfg.Profile.FluxFlopRate * float64(threads)
	for e := 0; e < evals; e++ {
		if err := mach.Exchange(loads.partners, loads.sendBytes); err != nil {
			return 0, err
		}
		for r := 0; r < ranks; r++ {
			mach.Compute(r,
				loads.edges[r]*edgeFluxFlops(b),
				fluxTrafficBytes(loads.localN[r]/b, b, loads.edges[r]),
				rate)
			if threads > 1 {
				// Gather of the private residual copies: a read-modify-write
				// sweep of the shared residual plus a streaming read of each
				// private copy per extra thread, bandwidth-bound on the
				// node's shared memory bus. Charged through the same formula
				// the measured kernel (euler.ResidualParallel) reports, so
				// model and profiler agree on the 24 bytes per entry.
				gatherBytes := float64(privateGatherBytes(int64(threads-1), int64(loads.localN[r])))
				mach.ComputeTimeDirect(r, gatherBytes/cfg.Profile.NodeStreamBW, 0)
			}
		}
	}
	return mach.Elapsed(), nil
}
