package core

import (
	"time"

	"petscfun3d/internal/newton"
	"petscfun3d/internal/schwarz"
)

// SequentialResult reports a single-address-space solve with real wall
// times (the Table 1 style of measurement).
type SequentialResult struct {
	Problem  *Problem
	Newton   *newton.Result
	WallTime time.Duration
	PerStep  time.Duration
	FinalQ   []float64
	Precond  *schwarz.Preconditioner
}

// RunSequential builds the problem and solves it in one address space,
// measuring real wall-clock time.
func RunSequential(cfg Config) (*SequentialResult, error) {
	p, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	var lastPC *schwarz.Preconditioner
	nopts := cfg.Newton
	nopts.Krylov.Pool = p.Pool
	s := &newton.Solver{
		Disc:  p.Disc,
		Disc2: p.Disc2,
		PC:    p.PCFactory(&lastPC),
		Opts:  nopts,
	}
	q := p.Disc.FreestreamVector()
	start := time.Now()
	res, err := s.Solve(q)
	wall := time.Since(start)
	if err != nil {
		return nil, err
	}
	out := &SequentialResult{
		Problem:  p,
		Newton:   res,
		WallTime: wall,
		FinalQ:   q,
		Precond:  lastPC,
	}
	if n := len(res.Steps); n > 0 {
		out.PerStep = wall / time.Duration(n)
	}
	return out, nil
}
