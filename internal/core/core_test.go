package core

import (
	"testing"

	"petscfun3d/internal/perfmodel"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NX, cfg.NY, cfg.NZ = 7, 6, 5
	cfg.Newton.RelTol = 1e-6
	cfg.Newton.MaxSteps = 60
	return cfg
}

func TestBuildValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.System = "magnetohydrodynamic"
	if _, err := Build(cfg); err == nil {
		t.Error("unknown system accepted")
	}
	cfg = smallConfig()
	cfg.Ranks = 4
	cfg.Partitioner = "metis"
	if _, err := Build(cfg); err == nil {
		t.Error("unknown partitioner accepted")
	}
}

func TestBuildOrderContinuationPair(t *testing.T) {
	cfg := smallConfig()
	cfg.SwitchOrderAt = 1e-2
	p, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Disc.Opts.Order != 1 || p.Disc2 == nil || p.Disc2.Opts.Order != 2 {
		t.Error("order continuation pair not built")
	}
}

func TestRunSequentialConverges(t *testing.T) {
	res, err := RunSequential(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Newton.Converged {
		t.Fatalf("sequential run did not converge: %g -> %g",
			res.Newton.InitialRnorm, res.Newton.FinalRnorm)
	}
	if res.WallTime <= 0 || res.PerStep <= 0 {
		t.Error("no wall time measured")
	}
	if res.Precond == nil {
		t.Error("preconditioner not captured")
	}
}

func TestRunSequentialCompressible(t *testing.T) {
	cfg := smallConfig()
	cfg.System = "compressible"
	cfg.Newton.CFL0 = 5
	cfg.Newton.MaxSteps = 90
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Newton.Converged {
		t.Error("compressible run did not converge")
	}
}

func TestRunParallelBasics(t *testing.T) {
	cfg := smallConfig()
	cfg.Ranks = 4
	res, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Newton.Converged {
		t.Fatal("parallel run did not converge")
	}
	rep := res.Report
	if rep.Elapsed <= 0 || rep.Compute <= 0 {
		t.Errorf("no modeled time: %+v", rep)
	}
	if rep.Scatter <= 0 {
		t.Error("no scatter time modeled")
	}
	if rep.Reduce <= 0 {
		t.Error("no reduction time modeled")
	}
	if res.HaloBytesPerExchange <= 0 {
		t.Error("no halo volume")
	}
	if res.MaxVerticesPerRank < res.MinVerticesPerRank || res.MinVerticesPerRank < 1 {
		t.Error("partition size stats wrong")
	}
	if rep.Gflops <= 0 {
		t.Error("no Gflop/s rating")
	}
}

func TestRunParallelRejectsOneRank(t *testing.T) {
	cfg := smallConfig()
	cfg.Ranks = 1
	if _, err := RunParallel(cfg); err == nil {
		t.Error("1-rank parallel run accepted")
	}
}

func TestParallelIterationsGrowWithRanks(t *testing.T) {
	// The η_alg mechanism of Table 3: same problem, more subdomains,
	// more total linear iterations.
	cfg := smallConfig()
	cfg.NX, cfg.NY, cfg.NZ = 9, 8, 6
	its := func(ranks int) int {
		c := cfg
		c.Ranks = ranks
		res, err := RunParallel(c)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Newton.Converged {
			t.Fatalf("ranks=%d did not converge", ranks)
		}
		return res.Newton.TotalLinearIts
	}
	i2, i16 := its(2), its(16)
	if i16 <= i2 {
		t.Errorf("iterations did not grow with ranks: %d (2) vs %d (16)", i2, i16)
	}
}

func TestParallelModeledSpeedup(t *testing.T) {
	// Modeled elapsed time must drop substantially from 2 to 8 ranks on
	// a balanced problem (not necessarily ideally — communication and
	// iteration growth eat some).
	cfg := smallConfig()
	cfg.NX, cfg.NY, cfg.NZ = 10, 8, 7
	elapsed := func(ranks int) float64 {
		c := cfg
		c.Ranks = ranks
		res, err := RunParallel(c)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.Elapsed
	}
	t2, t8 := elapsed(2), elapsed(8)
	if t8 >= t2 {
		t.Errorf("no modeled speedup: %g (2 ranks) vs %g (8 ranks)", t2, t8)
	}
	if t2/t8 > 4.5 {
		t.Errorf("speedup %g exceeds ideal 4x by too much", t2/t8)
	}
}

func TestParallelProfilesDiffer(t *testing.T) {
	cfg := smallConfig()
	cfg.Ranks = 4
	run := func(p perfmodel.Profile) float64 {
		c := cfg
		c.Profile = p
		res, err := RunParallel(c)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.Elapsed
	}
	tRed := run(perfmodel.ASCIRed)
	tT3E := run(perfmodel.CrayT3E)
	if tRed == tT3E {
		t.Error("machine profiles produce identical modeled times")
	}
	if tT3E >= tRed {
		t.Errorf("T3E (faster nodes) modeled slower than ASCI Red: %g vs %g", tT3E, tRed)
	}
}

func TestPWayPartitionerRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.Ranks = 8
	cfg.Partitioner = "pway"
	res, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Newton.Converged {
		t.Error("pway run did not converge")
	}
	// Near-perfect balance by construction.
	if res.MaxVerticesPerRank-res.MinVerticesPerRank > 1 {
		t.Errorf("pway imbalance: %d..%d", res.MinVerticesPerRank, res.MaxVerticesPerRank)
	}
}

func TestRunSequentialViscous(t *testing.T) {
	cfg := smallConfig()
	cfg.Viscosity = 0.02
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Newton.Converged {
		t.Fatalf("viscous run did not converge: %g -> %g",
			res.Newton.InitialRnorm, res.Newton.FinalRnorm)
	}
}
