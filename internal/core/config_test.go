package core

import (
	"strings"
	"testing"
)

func TestConfigValidateRejections(t *testing.T) {
	base := func() Config {
		c := DefaultConfig()
		c.TargetVertices = 500
		return c
	}
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"order 3", func(c *Config) { c.Order = 3 }, "Order"},
		{"order negative", func(c *Config) { c.Order = -1 }, "Order"},
		{"unknown edge ordering", func(c *Config) { c.EdgeOrdering = "zigzag" }, "EdgeOrdering"},
		{"negative overlap", func(c *Config) { c.Overlap = -1 }, "Overlap"},
		{"negative fill", func(c *Config) { c.FillLevel = -2 }, "FillLevel"},
		{"zero ranks", func(c *Config) { c.Ranks = 0 }, "Ranks"},
		{"negative ranks", func(c *Config) { c.Ranks = -4 }, "Ranks"},
		{"no mesh source", func(c *Config) { c.TargetVertices = 0 }, "TargetVertices"},
		{"negative target vertices", func(c *Config) { c.TargetVertices = -10 }, "TargetVertices"},
		{"partial lattice", func(c *Config) { c.NX = 5; c.NY = 0; c.NZ = 4 }, "lattice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name %q", err, tc.wantErr)
			}
			// Build must reject it identically.
			if _, berr := Build(cfg); berr == nil {
				t.Fatalf("Build accepted %s", tc.name)
			}
		})
	}
}

func TestConfigValidateAccepts(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"defaults", func(c *Config) {}},
		{"order zero means default", func(c *Config) { c.Order = 0 }},
		{"second order limited", func(c *Config) { c.Order = 2; c.Limit = true }},
		{"colored edges", func(c *Config) { c.EdgeOrdering = "colored" }},
		{"empty edge ordering", func(c *Config) { c.EdgeOrdering = "" }},
		{"lattice dims without target", func(c *Config) { c.NX, c.NY, c.NZ = 5, 4, 3; c.TargetVertices = 0 }},
		{"mesh file without target", func(c *Config) { c.MeshFile = "wing.mesh"; c.TargetVertices = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.TargetVertices = 500
			tc.mutate(&cfg)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("Validate rejected %s: %v", tc.name, err)
			}
		})
	}
}
