package machine

import (
	"math"
	"testing"

	"petscfun3d/internal/perfmodel"
)

func prof() perfmodel.Profile {
	return perfmodel.Profile{
		Name: "test", PeakFlops: 1e9, StreamBW: 1e8,
		NetLatency: 1e-5, NetBW: 1e8, ReduceLatency: 1e-6,
		ProcsPerNode: 1, FluxFlopRate: 5e8,
	}
}

func TestNewRejectsZeroRanks(t *testing.T) {
	if _, err := New(0, prof()); err == nil {
		t.Error("0 ranks accepted")
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	m, _ := New(2, prof())
	m.Compute(0, 1e9, 8, 0) // compute-bound: 1s
	m.Compute(1, 8, 1e8, 0) // memory-bound: 1s
	if got := m.Elapsed(); math.Abs(got-1) > 1e-12 {
		t.Errorf("elapsed = %g, want 1", got)
	}
	rep := m.Report()
	if math.Abs(rep.Compute-1) > 1e-12 {
		t.Errorf("mean compute = %g, want 1", rep.Compute)
	}
	if rep.TotalFlops != 1e9+8 {
		t.Errorf("flops = %g", rep.TotalFlops)
	}
}

func TestAllReduceSynchronizes(t *testing.T) {
	m, _ := New(4, prof())
	m.Compute(2, 2e9, 0, 0) // rank 2 takes 2s, others 0
	m.AllReduce(1)
	rep := m.Report()
	// Ranks 0,1,3 waited 2s each; rank 2 waited 0: mean 1.5s.
	if math.Abs(rep.Wait-1.5) > 1e-9 {
		t.Errorf("mean wait = %g, want 1.5", rep.Wait)
	}
	if rep.Reduce <= 0 {
		t.Error("no reduce time charged")
	}
	// All clocks equal after the reduction.
	for r := 1; r < 4; r++ {
		if m.clock[r] != m.clock[0] {
			t.Error("clocks not synchronized after AllReduce")
		}
	}
}

func TestExchangeNeighborSemantics(t *testing.T) {
	// Ring of 4: rank 1 is slow; only its neighbors 0 and 2 wait, rank 3
	// does not (no global synchronization at a halo exchange).
	m, _ := New(4, prof())
	m.Compute(1, 1e9, 0, 0) // 1s
	partners := [][]int{{1, 3}, {0, 2}, {1, 3}, {2, 0}}
	bytes := [][]int64{{100, 100}, {100, 100}, {100, 100}, {100, 100}}
	if err := m.Exchange(partners, bytes); err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	if rep.Wait <= 0 {
		t.Error("no implicit-sync wait recorded despite imbalance")
	}
	// Rank 3's wait must be zero: its partners (0 and 2) had clock 0 at
	// arrival time.
	if m.waitTime[3] != 0 {
		t.Errorf("rank 3 waited %g; neighbor semantics broken", m.waitTime[3])
	}
	if m.waitTime[0] <= 0 || m.waitTime[2] <= 0 {
		t.Error("neighbors of the slow rank did not wait")
	}
	if rep.Scatter <= 0 || rep.TotalSentBytes != 800 {
		t.Errorf("scatter accounting wrong: %+v", rep)
	}
	if rep.EffectiveBandwidth <= 0 {
		t.Error("effective bandwidth not computed")
	}
}

func TestExchangeValidation(t *testing.T) {
	m, _ := New(2, prof())
	if err := m.Exchange([][]int{{1}}, [][]int64{{1}}); err == nil {
		t.Error("short partner list accepted")
	}
	if err := m.Exchange([][]int{{1}, {0}}, [][]int64{{1, 2}, {1}}); err == nil {
		t.Error("mismatched byte counts accepted")
	}
	if err := m.Exchange([][]int{{0}, {0}}, [][]int64{{1}, {1}}); err == nil {
		t.Error("self-partner accepted")
	}
	if err := m.Exchange([][]int{{5}, {0}}, [][]int64{{1}, {1}}); err == nil {
		t.Error("out-of-range partner accepted")
	}
}

func TestPerfectScalingWhenBalanced(t *testing.T) {
	// A balanced, communication-free workload must scale perfectly.
	elapsed := func(p int) float64 {
		m, _ := New(p, prof())
		total := int64(8e9)
		for r := 0; r < p; r++ {
			m.Compute(r, total/int64(p), 0, 0)
		}
		return m.Elapsed()
	}
	t1, t8 := elapsed(1), elapsed(8)
	if math.Abs(t1/t8-8) > 1e-9 {
		t.Errorf("speedup = %g, want 8", t1/t8)
	}
}

func TestImbalanceDegradesScaling(t *testing.T) {
	// 10% overload on one rank must stretch elapsed time by ~10% once a
	// reduction synchronizes the ranks.
	m, _ := New(8, prof())
	for r := 0; r < 8; r++ {
		w := int64(1e9)
		if r == 0 {
			w += 1e8
		}
		m.Compute(r, w, 0, 0)
	}
	m.AllReduce(1)
	if m.Elapsed() < 1.1 {
		t.Errorf("elapsed %g < 1.1 despite overload", m.Elapsed())
	}
	rep := m.Report()
	if rep.PctWait <= 0 {
		t.Error("no wait percentage under imbalance")
	}
}

func TestResetClearsEverything(t *testing.T) {
	m, _ := New(2, prof())
	m.Compute(0, 1e9, 0, 0)
	m.AllReduce(1)
	m.Reset()
	if m.Elapsed() != 0 {
		t.Error("Reset left clock state")
	}
	rep := m.Report()
	if rep.Compute != 0 || rep.Wait != 0 || rep.TotalFlops != 0 {
		t.Error("Reset left counters")
	}
}

func TestComputeTimeDirect(t *testing.T) {
	m, _ := New(1, prof())
	m.ComputeTimeDirect(0, 2.5, 1000)
	if m.Elapsed() != 2.5 {
		t.Errorf("elapsed = %g", m.Elapsed())
	}
	if m.Report().TotalFlops != 1000 {
		t.Error("flops not recorded")
	}
}

func TestGflopsRating(t *testing.T) {
	m, _ := New(4, prof())
	for r := 0; r < 4; r++ {
		m.Compute(r, 1e9, 0, 0) // 1s each at 1 Gflop/s
	}
	rep := m.Report()
	if math.Abs(rep.Gflops-4) > 1e-9 {
		t.Errorf("aggregate Gflop/s = %g, want 4", rep.Gflops)
	}
}

func TestTagAccounting(t *testing.T) {
	m, _ := New(2, prof())
	m.SetTag("linear")
	m.Compute(0, 1e9, 0, 0) // 1s on rank 0
	m.Compute(1, 1e9, 0, 0) // 1s on rank 1
	m.SetTag("")
	m.Compute(0, 1e9, 0, 0) // untagged
	if got := m.TagSeconds("linear"); math.Abs(got-1) > 1e-12 {
		t.Errorf("TagSeconds(linear) = %g, want 1 (mean per rank)", got)
	}
	if m.TagSeconds("nonexistent") != 0 {
		t.Error("unknown tag should read 0")
	}
	// Waits at a tagged reduction are charged to the tag.
	m.SetTag("linear")
	m.AllReduce(1)
	if m.TagSeconds("linear") <= 1 {
		t.Error("reduction wait not charged to tag")
	}
	m.Reset()
	if m.TagSeconds("linear") != 0 {
		t.Error("Reset did not clear tags")
	}
}
