// Package machine simulates a distributed-memory parallel machine for
// performance modeling: P ranks with virtual clocks, advanced by modeled
// compute costs (roofline over a perfmodel.Profile), nearest-neighbor
// exchanges, and global reductions. Numerical results come from the real
// solver running deterministically; only *time* is simulated, which is
// what lets the repo reproduce 1024-node ASCI Red scaling studies
// (Tables 3-5, Figures 1, 2, 4) on a single host.
//
// The accounting mirrors the paper's taxonomy: wait time accumulated at
// communication events because ranks arrive at different times is the
// paper's "implicit synchronization"; transfer time at halo exchanges is
// "ghost point scatter"; tree-reduction time is "global reduction".
package machine

import (
	"fmt"

	"petscfun3d/internal/perfmodel"
)

// Machine is a virtual distributed machine of P ranks.
type Machine struct {
	P       int
	Profile perfmodel.Profile

	clock []float64 // per-rank virtual time, seconds

	computeTime []float64 // local work
	waitTime    []float64 // implicit synchronization (load-imbalance wait)
	scatterTime []float64 // nearest-neighbor transfer
	reduceTime  []float64 // global reductions

	flops     []float64 // per-rank flop count, for Gflop/s ratings
	bytesSent []float64 // per-rank bytes sent in exchanges

	curTag string
	tagSec map[string]float64 // total charged seconds (all ranks) per tag
}

// New creates a machine of p ranks with the given node profile.
func New(p int, prof perfmodel.Profile) (*Machine, error) {
	if p < 1 {
		return nil, fmt.Errorf("machine: need at least one rank, got %d", p)
	}
	return &Machine{
		P:           p,
		Profile:     prof,
		clock:       make([]float64, p),
		computeTime: make([]float64, p),
		waitTime:    make([]float64, p),
		scatterTime: make([]float64, p),
		reduceTime:  make([]float64, p),
		flops:       make([]float64, p),
		bytesSent:   make([]float64, p),
		tagSec:      make(map[string]float64),
	}, nil
}

// Compute advances rank's clock by the roofline time of a kernel doing
// flops floating-point operations over bytes of memory traffic at
// sustained rate (0 = profile peak).
func (m *Machine) Compute(rank int, flops, bytes int64, rate float64) {
	t := m.Profile.ComputeTime(flops, bytes, rate)
	m.clock[rank] += t
	m.computeTime[rank] += t
	m.flops[rank] += float64(flops)
	m.tag(t)
}

// ComputeTimeDirect advances rank's clock by an explicit duration of
// local work (for costs computed outside the roofline model).
func (m *Machine) ComputeTimeDirect(rank int, seconds float64, flops int64) {
	m.clock[rank] += seconds
	m.computeTime[rank] += seconds
	m.flops[rank] += float64(flops)
	m.tag(seconds)
}

// Exchange performs a nearest-neighbor halo exchange: partners[r] lists
// the ranks r communicates with, sendBytes[r][i] the bytes r sends to
// partners[r][i]. Every rank first waits for all its partners to arrive
// (the wait is charged as implicit synchronization), then pays latency
// per message plus volume over the node's network bandwidth (charged as
// scatter time).
func (m *Machine) Exchange(partners [][]int, sendBytes [][]int64) error {
	if len(partners) != m.P || len(sendBytes) != m.P {
		return fmt.Errorf("machine: exchange arguments must cover all %d ranks", m.P)
	}
	// Receive volumes: bytes sent to r from each partner.
	recvBytes := make([]int64, m.P)
	for r := 0; r < m.P; r++ {
		if len(partners[r]) != len(sendBytes[r]) {
			return fmt.Errorf("machine: rank %d has %d partners but %d byte counts", r, len(partners[r]), len(sendBytes[r]))
		}
		for i, p := range partners[r] {
			if p < 0 || p >= m.P || p == r {
				return fmt.Errorf("machine: rank %d has invalid partner %d", r, p)
			}
			recvBytes[p] += sendBytes[r][i]
		}
	}
	// Arrival: wait for the latest partner.
	arrive := make([]float64, m.P)
	for r := 0; r < m.P; r++ {
		a := m.clock[r]
		for _, p := range partners[r] {
			if m.clock[p] > a {
				a = m.clock[p]
			}
		}
		arrive[r] = a
	}
	for r := 0; r < m.P; r++ {
		wait := arrive[r] - m.clock[r]
		m.waitTime[r] += wait
		var sent int64
		for _, b := range sendBytes[r] {
			sent += b
		}
		xfer := float64(len(partners[r]))*m.Profile.NetLatency +
			float64(sent+recvBytes[r])/m.Profile.NetBW
		m.clock[r] = arrive[r] + xfer
		m.scatterTime[r] += xfer
		m.bytesSent[r] += float64(sent)
		m.tag(wait + xfer)
	}
	return nil
}

// AllReduce performs a global reduction of words scalars: all ranks
// synchronize to the latest arrival (wait charged as implicit
// synchronization) and then pay the tree-reduction cost (charged as
// global reduction time).
func (m *Machine) AllReduce(words int) {
	latest := m.clock[0]
	for _, c := range m.clock {
		if c > latest {
			latest = c
		}
	}
	cost := m.Profile.ReduceTime(m.P)
	if words > 1 {
		cost += float64(words-1) * 8 / m.Profile.NetBW
	}
	for r := 0; r < m.P; r++ {
		m.tag(latest - m.clock[r] + cost)
		m.waitTime[r] += latest - m.clock[r]
		m.clock[r] = latest + cost
		m.reduceTime[r] += cost
	}
}

// SetTag directs subsequent charges into a named accounting bucket
// ("" disables tagging). Buckets let callers split the modeled time by
// algorithm phase — e.g. Table 2's linear-solve vs. overall times.
func (m *Machine) SetTag(tag string) { m.curTag = tag }

// TagSeconds returns the mean per-rank seconds charged under tag.
func (m *Machine) TagSeconds(tag string) float64 {
	return m.tagSec[tag] / float64(m.P)
}

func (m *Machine) tag(seconds float64) {
	if m.curTag != "" {
		m.tagSec[m.curTag] += seconds
	}
}

// Elapsed returns the current virtual execution time (latest rank).
func (m *Machine) Elapsed() float64 {
	max := m.clock[0]
	for _, c := range m.clock {
		if c > max {
			max = c
		}
	}
	return max
}

// Report summarizes the run in the paper's Table 3 vocabulary.
type Report struct {
	Ranks   int
	Elapsed float64 // seconds (virtual)

	// Mean per-rank seconds by phase.
	Compute float64
	Wait    float64 // implicit synchronizations
	Scatter float64 // ghost point scatters
	Reduce  float64 // global reductions

	// Percentages of elapsed time (mean rank).
	PctWait    float64
	PctScatter float64
	PctReduce  float64

	TotalFlops     float64
	Gflops         float64 // aggregate Gflop/s
	TotalSentBytes float64
	// EffectiveBandwidth is the application-level per-rank bandwidth
	// through the scatter phases, bytes/s (Table 3's final column).
	EffectiveBandwidth float64
}

// Report computes the summary.
func (m *Machine) Report() Report {
	rep := Report{Ranks: m.P, Elapsed: m.Elapsed()}
	var scatterSec float64
	for r := 0; r < m.P; r++ {
		rep.Compute += m.computeTime[r]
		rep.Wait += m.waitTime[r]
		rep.Scatter += m.scatterTime[r]
		rep.Reduce += m.reduceTime[r]
		rep.TotalFlops += m.flops[r]
		rep.TotalSentBytes += m.bytesSent[r]
		scatterSec += m.scatterTime[r]
	}
	n := float64(m.P)
	rep.Compute /= n
	rep.Wait /= n
	rep.Scatter /= n
	rep.Reduce /= n
	if rep.Elapsed > 0 {
		rep.PctWait = 100 * rep.Wait / rep.Elapsed
		rep.PctScatter = 100 * rep.Scatter / rep.Elapsed
		rep.PctReduce = 100 * rep.Reduce / rep.Elapsed
		rep.Gflops = rep.TotalFlops / rep.Elapsed / 1e9
	}
	if scatterSec > 0 {
		// Bytes cross the wire twice (send + matching receive): count
		// sent volume against per-rank scatter seconds.
		rep.EffectiveBandwidth = 2 * rep.TotalSentBytes / scatterSec
	}
	return rep
}

// Reset clears clocks and counters.
func (m *Machine) Reset() {
	for r := 0; r < m.P; r++ {
		m.clock[r] = 0
		m.computeTime[r] = 0
		m.waitTime[r] = 0
		m.scatterTime[r] = 0
		m.reduceTime[r] = 0
		m.flops[r] = 0
		m.bytesSent[r] = 0
	}
	m.curTag = ""
	for k := range m.tagSec {
		delete(m.tagSec, k)
	}
}
