package dist

// Cost formulas for the measured phase profiler. Every Begin/End span
// in this package charges its flops and bytes through these functions
// (the costconst analyzer enforces it), so the counts the profiler
// reports cannot drift from the formulas the roofline accounting and
// the virtual-machine model assume.

// haloWireBytes is the wire traffic of one ghost scatter: each send and
// receive index list crossing this rank's boundary moves B doublewords
// per block row, counted in both directions.
func (h *Halo) haloWireBytes() int64 {
	var wire int64
	for pi := range h.peers {
		wire += int64(len(h.sendIdx[pi])+len(h.recvIdx[pi])) * int64(h.b) * 8
	}
	return wire
}

// haloPackBytes is the local memory traffic of packing the outgoing
// boundary values into the staging buffers: one read of the source rows
// and one write of the staging copy per sent block row.
func (h *Halo) haloPackBytes() int64 {
	var rows int64
	for pi := range h.peers {
		rows += int64(len(h.sendIdx[pi]))
	}
	return rows * int64(h.b) * 16
}

// haloUnpackBytes is the local memory traffic of unpacking received
// payloads into the ghost region: one read of the payload and one write
// of the ghost rows per received block row.
func (h *Halo) haloUnpackBytes() int64 {
	var rows int64
	for pi := range h.peers {
		rows += int64(len(h.recvIdx[pi]))
	}
	return rows * int64(h.b) * 16
}

// dotFlops and dotBytes: one multiply-add pass over two local vectors
// of n scalars.
func dotFlops(n int) int64 { return 2 * int64(n) }
func dotBytes(n int) int64 { return 16 * int64(n) }

// mdotFlops and mdotBytes: k fused local inner products against one
// shared vector of n local scalars — 2k flops per element; one pass
// over the shared vector plus one load per basis vector. The batched
// global combine rides the same span (reduce phase), like Dot's.
func mdotFlops(k, n int) int64 { return 2 * int64(k) * int64(n) }
func mdotBytes(k, n int) int64 { return 8 * int64(k+1) * int64(n) }

// orthoReduceFlops and orthoReduceBytes: the k-vector fused batch plus
// the one extra basis-norm product of a Gram-Schmidt step's single
// synchronization round.
func orthoReduceFlops(k, n int) int64 { return 2 * int64(k+1) * int64(n) }
func orthoReduceBytes(k, n int) int64 { return (8*int64(k) + 24) * int64(n) }

// orthoFlops and orthoBytes: fused classical Gram-Schmidt step j
// (0-based) of distributed GMRES over vectors of n local scalars — one
// MAxpy subtraction sweep (2(j+1)n flops, (8(j+1)+16)n bytes) plus the
// basis normalization (n flops, 16n bytes). The batched projections
// nested inside are charged to the reduce phase by MDot itself, and the
// post-projection norm is derived from the same batch — no extra
// n-length sweep, no second synchronization.
func orthoFlops(j, n int) int64 { return (2*int64(j+1) + 1) * int64(n) }
func orthoBytes(j, n int) int64 { return (8*int64(j+1) + 32) * int64(n) }
