package dist

import (
	"fmt"
	"math"

	"petscfun3d/internal/prof"
)

// GMRESOptions configures the distributed solve.
type GMRESOptions struct {
	Restart  int
	MaxIters int
	RelTol   float64
}

// GMRESStats reports the distributed solve's outcome.
type GMRESStats struct {
	Iterations   int
	Converged    bool
	ResidualNorm float64
}

// GMRES runs right-preconditioned restarted GMRES on the distributed
// system A x = b. b and x are this rank's owned parts; pc is the local
// preconditioner solve (e.g. from Matrix.BlockJacobi). Every rank calls
// it collectively; inner products synchronize through the communicator,
// so all ranks see identical iteration decisions.
func GMRES(a *Matrix, pc func(r, z []float64), b, x []float64, opts GMRESOptions) (GMRESStats, error) {
	n := a.LocalN()
	if len(b) != n || len(x) != n {
		return GMRESStats{}, fmt.Errorf("dist: local vector lengths %d/%d, want %d", len(b), len(x), n)
	}
	if opts.Restart < 1 || opts.MaxIters < 1 {
		return GMRESStats{}, fmt.Errorf("dist: need positive Restart and MaxIters")
	}
	if pc == nil {
		pc = func(r, z []float64) { copy(z, r) }
	}
	ksp := a.Prof.Begin(prof.PhaseKrylov)
	defer ksp.End(0, 0)
	mr := opts.Restart
	var st GMRESStats

	// One contiguous slab per matrix keeps the setup allocations out of
	// the fill loops (no per-row make escaping from a hot-kernel loop)
	// and the basis rows adjacent in memory.
	v := make([][]float64, mr+1)
	vbuf := make([]float64, (mr+1)*n)
	for i := range v {
		v[i] = vbuf[i*n : (i+1)*n] //lint:bce-ok slab carve-up at solve setup runs mr+1 times per solve, not per sweep iteration; prove cannot reason about the i*n products
	}
	h := make([][]float64, mr+1)
	hbuf := make([]float64, (mr+1)*mr)
	for i := range h {
		h[i] = hbuf[i*mr : (i+1)*mr] //lint:bce-ok slab carve-up at solve setup runs mr+1 times per solve, not per sweep iteration; prove cannot reason about the i*mr products
	}
	cs := make([]float64, mr)
	sn := make([]float64, mr)
	g := make([]float64, mr+1)
	y := make([]float64, mr)
	z := make([]float64, n)
	w := make([]float64, n)
	r := make([]float64, n)

	residual := func() (float64, error) {
		if err := a.MulVec(x, r); err != nil {
			return 0, err
		}
		bs := b[:len(r)] // bce: ties len(bs) to len(r); the range index serves both unchecked
		for i := range r {
			r[i] = bs[i] - r[i]
		}
		return a.Norm2(r), nil
	}
	beta, err := residual()
	if err != nil {
		return st, err
	}
	target := opts.RelTol * beta
	st.ResidualNorm = beta
	if beta <= target || beta == 0 {
		st.Converged = true
		return st, nil
	}
	for st.Iterations < opts.MaxIters {
		if st.Iterations > 0 {
			if beta, err = residual(); err != nil {
				return st, err
			}
			if beta <= target {
				st.ResidualNorm = beta
				st.Converged = true
				return st, nil
			}
		}
		inv := 1 / beta
		v0 := v[0][:len(r)] // bce: ties len(v0) to len(r); the range index serves both unchecked
		for i := range r {
			v0[i] = r[i] * inv
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = beta
		j := 0
		for ; j < mr && st.Iterations < opts.MaxIters; j++ {
			st.Iterations++
			pc(v[j], z)
			if err := a.MulVec(z, w); err != nil {
				return st, err
			}
			osp := a.Prof.Begin(prof.PhaseOrtho)
			for i := 0; i <= j; i++ {
				hij := a.Dot(w, v[i])
				h[i][j] = hij
				vi := v[i][:len(w)] // bce: ties len(vi) to len(w); the range index serves both unchecked
				for k := range w {
					w[k] -= hij * vi[k]
				}
			}
			h[j+1][j] = a.Norm2(w)
			if h[j+1][j] > 1e-300 {
				inv := 1 / h[j+1][j]
				vj := v[j+1][:len(w)] // bce: ties len(vj) to len(w); the range index serves both unchecked
				for k := range w {
					vj[k] = w[k] * inv
				}
			} else {
				for k := range v[j+1] {
					v[j+1][k] = 0
				}
			}
			// Local axpy/scale sweeps; the global dot products inside are
			// the nested reduce phase.
			osp.End(orthoFlops(j, n), orthoBytes(j, n))
			for i := 0; i < j; i++ {
				t := cs[i]*h[i][j] + sn[i]*h[i+1][j] //lint:bce-ok O(restart) Givens update down the Hessenberg column; row lengths are not provable and the loop is negligible next to the n-length sweeps
				h[i+1][j] = -sn[i]*h[i][j] + cs[i]*h[i+1][j]
				h[i][j] = t //lint:bce-ok O(restart) Givens update down the Hessenberg column; row lengths are not provable and the loop is negligible next to the n-length sweeps
			}
			denom := math.Hypot(h[j][j], h[j+1][j])
			if denom < 1e-300 {
				cs[j], sn[j] = 1, 0
			} else {
				cs[j] = h[j][j] / denom
				sn[j] = h[j+1][j] / denom
			}
			h[j][j] = cs[j]*h[j][j] + sn[j]*h[j+1][j]
			h[j+1][j] = 0
			g[j+1] = -sn[j] * g[j]
			g[j] = cs[j] * g[j]
			st.ResidualNorm = math.Abs(g[j+1])
			if st.ResidualNorm <= target {
				j++
				break
			}
		}
		yj := y[:j] // bce: j never exceeds mr; one check here serves the back-substitution loops
		for i := range yj {
			yj[i] = 0
		}
		for i := j - 1; i >= 0; i-- {
			s := g[i]
			hi := h[i][:j] // bce: ties the row extent to j; prove then erases both checks in the k loop
			for k := i + 1; k < j; k++ {
				s -= hi[k] * yj[k]
			}
			if math.Abs(h[i][i]) >= 1e-300 {
				y[i] = s / h[i][i]
			}
		}
		for i := range z {
			z[i] = 0
		}
		for k := 0; k < j; k++ {
			yk := y[k]
			vk := v[k][:len(z)] // bce: ties len(vk) to len(z); the range index serves both unchecked
			for i := range z {
				z[i] += yk * vk[i]
			}
		}
		pc(z, w)
		for i := range x {
			x[i] += w[i]
		}
		if st.ResidualNorm <= target {
			st.Converged = true
			return st, nil
		}
	}
	return st, nil
}
