package dist

import (
	"fmt"
	"math"

	"petscfun3d/internal/par"
	"petscfun3d/internal/prof"
)

// GMRESOptions configures the distributed solve.
type GMRESOptions struct {
	Restart  int
	MaxIters int
	RelTol   float64
}

// GMRESStats reports the distributed solve's outcome. Reductions
// counts the global synchronization rounds the solve performed (every
// collective: the batched per-iteration projection reduce and each
// residual norm) — the quantity the fused orthogonalization minimizes:
// exactly ONE round per inner iteration, where per-vector Gram-Schmidt
// pays j+2.
type GMRESStats struct {
	Iterations   int
	Restarts     int
	Reductions   int
	Converged    bool
	ResidualNorm float64
}

// GMRES runs right-preconditioned restarted GMRES on the distributed
// system A x = b. b and x are this rank's owned parts; pc is the local
// preconditioner solve (e.g. from Matrix.BlockJacobi). Every rank calls
// it collectively; inner products synchronize through the communicator,
// so all ranks see identical iteration decisions.
func GMRES(a *Matrix, pc func(r, z []float64), b, x []float64, opts GMRESOptions) (GMRESStats, error) {
	n := a.LocalN()
	if len(b) != n || len(x) != n {
		return GMRESStats{}, fmt.Errorf("dist: local vector lengths %d/%d, want %d", len(b), len(x), n)
	}
	if opts.Restart < 1 || opts.MaxIters < 1 {
		return GMRESStats{}, fmt.Errorf("dist: need positive Restart and MaxIters")
	}
	if pc == nil {
		pc = func(r, z []float64) { copy(z, r) }
	}
	ksp := a.Prof.Begin(prof.PhaseKrylov)
	defer ksp.End(0, 0)
	mr := opts.Restart
	var st GMRESStats

	// One contiguous slab per matrix keeps the setup allocations out of
	// the fill loops (no per-row make escaping from a hot-kernel loop)
	// and the basis rows adjacent in memory.
	v := make([][]float64, mr+1)
	vbuf := make([]float64, (mr+1)*n)
	for i := range v {
		v[i] = vbuf[i*n : (i+1)*n] //lint:bce-ok slab carve-up at solve setup runs mr+1 times per solve, not per sweep iteration; prove cannot reason about the i*n products
	}
	h := make([][]float64, mr+1)
	hbuf := make([]float64, (mr+1)*mr)
	for i := range h {
		h[i] = hbuf[i*mr : (i+1)*mr] //lint:bce-ok slab carve-up at solve setup runs mr+1 times per solve, not per sweep iteration; prove cannot reason about the i*mr products
	}
	cs := make([]float64, mr)
	sn := make([]float64, mr)
	g := make([]float64, mr+1)
	y := make([]float64, mr)
	z := make([]float64, n)
	w := make([]float64, n)
	r := make([]float64, n)
	// Fused-orthogonalization workspace: the batched reduction carries
	// the whole Hessenberg column, the pre-projection ‖w‖² (w itself
	// rides the batch as its last vector), and the true squared norm of
	// the newest basis vector (vnrm below); MAxpy subtracts with the
	// negated coefficients.
	hcol := make([]float64, mr+3)
	hneg := make([]float64, mr+1)
	vlist := make([][]float64, mr+2)
	// vnrm[i] is the measured global ‖v_i‖². v_{j+1} is normalized by a
	// norm DERIVED from the batch (no second synchronization), so its
	// true norm is 1 only to the derivation's accuracy; the next
	// iteration measures it in the same batched round and the projection
	// divides by it. Without this, the normalization error would feed
	// back through the derived norm at the projection's cancellation
	// ratio per iteration and grow geometrically.
	vnrm := make([]float64, mr+1)

	residual := func() (float64, error) {
		if err := a.MulVec(x, r); err != nil {
			return 0, err
		}
		bs := b[:len(r)] // bce: ties len(bs) to len(r); the range index serves both unchecked
		for i := range r {
			r[i] = bs[i] - r[i]
		}
		st.Reductions++
		return a.Norm2(r), nil
	}
	beta, err := residual()
	if err != nil {
		return st, err
	}
	target := opts.RelTol * beta
	st.ResidualNorm = beta
	if beta <= target || beta == 0 {
		st.Converged = true
		return st, nil
	}
	for st.Iterations < opts.MaxIters {
		if st.Iterations > 0 {
			st.Restarts++
			if beta, err = residual(); err != nil {
				return st, err
			}
			if beta <= target {
				st.ResidualNorm = beta
				st.Converged = true
				return st, nil
			}
		}
		inv := 1 / beta
		v0 := v[0][:len(r)] // bce: ties len(v0) to len(r); the range index serves both unchecked
		for i := range r {
			v0[i] = r[i] * inv
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = beta
		j := 0
		for ; j < mr && st.Iterations < opts.MaxIters; j++ {
			st.Iterations++
			pc(v[j], z)
			if err := a.MulVec(z, w); err != nil {
				return st, err
			}
			osp := a.Prof.Begin(prof.PhaseOrtho)
			a.Prof.NoteThreads(prof.PhaseOrtho, a.pool.Workers())
			// One-pass classical Gram-Schmidt with a batched reduction:
			// every projection coefficient AND the pre-projection ‖w‖²
			// (w rides the batch as its last vector) arrive from a single
			// global synchronization round — the per-iteration latency
			// term collapses from j+2 rounds to 1.
			vl := vlist[:j+2]
			copy(vl, v[:j+1])
			vl[j+1] = w
			a.orthoReduce(w, vl, v[j], hcol)
			st.Reductions++
			ww := hcol[j+1]
			vnrm[j] = hcol[j+2]
			// The post-projection norm is derived, not recomputed:
			// ‖w − Vh‖² = ‖w‖² − Σ hᵢ·(w·vᵢ) because the projections came
			// from this same w, with hᵢ = (w·vᵢ)/‖vᵢ‖² projecting against
			// the MEASURED basis norms (the batch carries ‖v_j‖² one step
			// after its derived normalization). Every rank derives the
			// same values from the identical reduced batch, so every rank
			// takes identical branches; the clamp at 0 covers cancellation
			// at breakdown.
			t := ww
			hc := hcol[:j+1]
			hn := hneg[:len(hc)] // bce: ties len(hn) to len(hc); the range index serves both unchecked
			for i, di := range hc {
				hij := di / vnrm[i] //lint:bce-ok O(1) Hessenberg-column arithmetic per O(n) projection sweep; the extents are not provable
				h[i][j] = hij       //lint:bce-ok one O(1) Hessenberg store per O(n) projection sweep; the row lengths are not provable
				hn[i] = -hij
				t -= hij * di
			}
			par.MAxpy(a.pool, hneg, v[:j+1], w)
			if t < 0 {
				t = 0
			}
			h[j+1][j] = math.Sqrt(t)
			if h[j+1][j] > 1e-300 {
				inv := 1 / h[j+1][j]
				vj := v[j+1][:len(w)] // bce: ties len(vj) to len(w); the range index serves both unchecked
				for k := range w {
					vj[k] = w[k] * inv
				}
			} else {
				for k := range v[j+1] {
					v[j+1][k] = 0
				}
			}
			// The fused local subtraction and scale sweeps; the batched
			// projections inside are the nested reduce phase.
			osp.End(orthoFlops(j, n), orthoBytes(j, n))
			for i := 0; i < j; i++ {
				t := cs[i]*h[i][j] + sn[i]*h[i+1][j] //lint:bce-ok O(restart) Givens update down the Hessenberg column; row lengths are not provable and the loop is negligible next to the n-length sweeps
				h[i+1][j] = -sn[i]*h[i][j] + cs[i]*h[i+1][j]
				h[i][j] = t //lint:bce-ok O(restart) Givens update down the Hessenberg column; row lengths are not provable and the loop is negligible next to the n-length sweeps
			}
			denom := math.Hypot(h[j][j], h[j+1][j])
			if denom < 1e-300 {
				cs[j], sn[j] = 1, 0
			} else {
				cs[j] = h[j][j] / denom
				sn[j] = h[j+1][j] / denom
			}
			h[j][j] = cs[j]*h[j][j] + sn[j]*h[j+1][j]
			h[j+1][j] = 0
			g[j+1] = -sn[j] * g[j]
			g[j] = cs[j] * g[j]
			st.ResidualNorm = math.Abs(g[j+1])
			if st.ResidualNorm <= target {
				j++
				break
			}
		}
		yj := y[:j] // bce: j never exceeds mr; one check here serves the back-substitution loops
		for i := range yj {
			yj[i] = 0
		}
		for i := j - 1; i >= 0; i-- {
			s := g[i]
			hi := h[i][:j] // bce: ties the row extent to j; prove then erases both checks in the k loop
			for k := i + 1; k < j; k++ {
				s -= hi[k] * yj[k]
			}
			if math.Abs(h[i][i]) >= 1e-300 {
				y[i] = s / h[i][i]
			}
		}
		for i := range z {
			z[i] = 0
		}
		// z = V y in one fused read-modify-write sweep (bitwise identical
		// to the per-vector accumulation it replaces).
		par.MAxpy(a.pool, yj, v[:j], z)
		pc(z, w)
		for i := range x {
			x[i] += w[i]
		}
		if st.ResidualNorm <= target {
			st.Converged = true
			return st, nil
		}
	}
	return st, nil
}
