package dist

import (
	"fmt"
	"math"
	"testing"

	"petscfun3d/internal/euler"
	"petscfun3d/internal/mesh"
	"petscfun3d/internal/mpi"
	"petscfun3d/internal/partition"
	"petscfun3d/internal/prof"
	"petscfun3d/internal/sparse"
)

func buildResidualProblem(t testing.TB, nx, ny, nz, nparts int) (*euler.Discretization, *partition.Partition, []float64) {
	t.Helper()
	m, err := mesh.GenerateWing(mesh.DefaultWingSpec(nx, ny, nz))
	if err != nil {
		t.Fatal(err)
	}
	d, err := euler.NewDiscretization(m, nil, euler.NewIncompressible(), euler.Options{Order: 1, Layout: sparse.Interlaced})
	if err != nil {
		t.Fatal(err)
	}
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	p, err := partition.KWay(g, nparts)
	if err != nil {
		t.Fatal(err)
	}
	// A smooth non-freestream state so every flux term is exercised.
	q := d.FreestreamVector()
	for i := range q {
		q[i] += 0.05 * math.Sin(float64(i)*0.13)
	}
	return d, p, q
}

// TestDistributedResidualMatchesSequential: the overlapped
// interior/frontier edge split must reproduce the sequential residual
// on every owned vertex. Each rank's state holds garbage (NaN) at
// every vertex it neither owns nor receives as a ghost, proving the
// halo supplies exactly the state the frontier edges read.
func TestDistributedResidualMatchesSequential(t *testing.T) {
	const nranks = 4
	d, p, q := buildResidualProblem(t, 7, 6, 5, nranks)
	b := 4
	want := make([]float64, d.N())
	d.Residual(q, want)

	err := mpi.Run(nranks, func(c *mpi.Comm) error {
		rd, err := NewResidual(c, d, p.Part)
		if err != nil {
			return err
		}
		lq := make([]float64, d.N())
		res := make([]float64, d.N())
		for i := range lq {
			lq[i] = math.NaN()
		}
		for v := int32(0); v < int32(d.M.NumVertices()); v++ {
			if rd.Owned(v) {
				copy(lq[int(v)*b:(int(v)+1)*b], q[int(v)*b:(int(v)+1)*b])
			}
		}
		if err := rd.Eval(lq, res); err != nil {
			return err
		}
		for v := int32(0); v < int32(d.M.NumVertices()); v++ {
			if !rd.Owned(v) {
				continue
			}
			for cpt := 0; cpt < b; cpt++ {
				got, ref := res[int(v)*b+cpt], want[int(v)*b+cpt]
				if math.IsNaN(got) || math.Abs(got-ref) > 1e-12 {
					return fmt.Errorf("rank %d vertex %d comp %d: %g vs %g", c.Rank(), v, cpt, got, ref)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDistributedResidualPhases: the overlapped Eval must charge the
// flux, scatter_pack, scatter_wait, interior, and boundary phases.
func TestDistributedResidualPhases(t *testing.T) {
	const nranks = 3
	d, p, q := buildResidualProblem(t, 6, 5, 4, nranks)
	b := 4
	profs := make([]*prof.Profiler, nranks)
	for i := range profs {
		profs[i] = prof.New()
		profs[i].Enable()
	}
	err := mpi.Run(nranks, func(c *mpi.Comm) error {
		rd, err := NewResidual(c, d, p.Part)
		if err != nil {
			return err
		}
		rd.Prof = profs[c.Rank()]
		lq := make([]float64, d.N())
		res := make([]float64, d.N())
		for v := int32(0); v < int32(d.M.NumVertices()); v++ {
			if rd.Owned(v) {
				copy(lq[int(v)*b:(int(v)+1)*b], q[int(v)*b:(int(v)+1)*b])
			}
		}
		return rd.Eval(lq, res)
	})
	if err != nil {
		t.Fatal(err)
	}
	merged := prof.New()
	for _, pp := range profs {
		merged.Merge(pp)
	}
	got := map[string]prof.PhaseStat{}
	for _, st := range merged.Report(0).Phases {
		got[st.Phase] = st
	}
	for _, want := range []string{"flux", "scatter_pack", "scatter_wait", "interior", "boundary"} {
		st, ok := got[want]
		if !ok {
			t.Fatalf("phase %q missing from residual profile", want)
		}
		if st.Calls <= 0 {
			t.Fatalf("phase %q recorded no calls", want)
		}
	}
	if got["interior"].Flops <= 0 || got["boundary"].Flops <= 0 {
		t.Error("edge subsets recorded no flops")
	}
}

func TestNewResidualValidation(t *testing.T) {
	d, p, _ := buildResidualProblem(t, 5, 4, 4, 2)
	// Second-order discretizations are rejected before any communication.
	d2, err := euler.NewDiscretization(d.M, d.Geo, d.Sys, euler.Options{Order: 2, Layout: sparse.Interlaced})
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := NewResidual(c, d2, p.Part); err == nil {
			return fmt.Errorf("second-order discretization accepted")
		}
		if _, err := NewResidual(c, d, p.Part[:3]); err == nil {
			return fmt.Errorf("short partition accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
