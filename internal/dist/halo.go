package dist

import (
	"fmt"

	"petscfun3d/internal/mpi"
	"petscfun3d/internal/prof"
)

// Halo is the persistent exchange plan for one ghost scatter: for each
// peer, the indices to pack from the source vector, the indices to fill
// in the destination vector, and staging buffers allocated once at plan
// time (the solver's innermost loop must not allocate — the hotalloc
// analyzer enforces it for this package).
//
// Indices are block-row indices into whatever numbering the vectors
// use: dist.Matrix builds a halo over extended-local numbering, the
// distributed residual over global vertex numbering. A profiler is
// passed per call rather than stored, because each rank goroutine binds
// its own profiler after construction.
type Halo struct {
	comm *mpi.Comm
	b    int
	tag  mpi.Tag

	peers   []int     // sorted peer ranks
	sendIdx [][]int32 // per peer: block rows to pack from the source
	recvIdx [][]int32 // per peer: block rows to fill in the destination

	sendBuf  [][]float64    // per peer: persistent pack staging
	sendReq  []*mpi.Request // per peer: in-flight sends (nil when idle)
	recvReq  []*mpi.Request // per peer: in-flight receives
	recvData [][]float64    // per peer: payloads stashed between wait and unpack

	// inFlight guards the Start/Finish protocol: a second Start before
	// Finish would silently overwrite the in-flight requests, leaking
	// their progress goroutines and misaligning every later message on
	// the pair streams.
	inFlight bool
}

// newHalo builds the persistent plan from per-peer index lists.
// sendTo[q] lists the source block rows to ship to rank q; recvFrom[q]
// the destination block rows rank q fills here.
func newHalo(c *mpi.Comm, b int, tag mpi.Tag, sendTo, recvFrom map[int][]int32) *Halo {
	h := &Halo{comm: c, b: b, tag: tag}
	seen := map[int]bool{}
	for q := range sendTo {
		seen[q] = true
	}
	for q := range recvFrom {
		seen[q] = true
	}
	for q := 0; q < c.Size(); q++ {
		if !seen[q] {
			continue
		}
		h.peers = append(h.peers, q)                                     //lint:alloc-ok one-time plan construction
		h.sendIdx = append(h.sendIdx, sendTo[q])                         //lint:alloc-ok one-time plan construction
		h.recvIdx = append(h.recvIdx, recvFrom[q])                       //lint:alloc-ok one-time plan construction
		h.sendBuf = append(h.sendBuf, make([]float64, len(sendTo[q])*b)) //lint:alloc-ok persistent staging buffers allocated once at plan time
	}
	h.sendReq = make([]*mpi.Request, len(h.peers))
	h.recvReq = make([]*mpi.Request, len(h.peers))
	h.recvData = make([][]float64, len(h.peers))
	return h
}

// negotiateHalo exchanges need-lists over the communicator: needFrom[q]
// lists the global block rows this rank must receive from rank q. The
// return maps each peer to the global rows it asked this rank for, in
// the order it asked (which fixes the pack order on the wire). Every
// rank must call it collectively.
//
// Need *counts* are announced first with an AllGather, and only
// non-empty need-lists travel point-to-point afterwards: a rank with no
// boundary neighbors (a disconnected partition component) posts no
// sends at all, rather than spraying zero-length TagPlan messages at
// every other rank — messages the watchdog would count as fabric
// traffic and the tag-symmetry audit would have to special-case.
func negotiateHalo(c *mpi.Comm, needFrom map[int][]int32) (map[int][]int32, error) {
	counts := make([]float64, c.Size())
	for q, req := range needFrom {
		if q < 0 || q >= c.Size() || q == c.Rank() {
			return nil, fmt.Errorf("dist: rank %d needs rows from invalid rank %d", c.Rank(), q)
		}
		counts[q] = float64(len(req))
	}
	all := c.AllGather(counts)
	for q := 0; q < c.Size(); q++ {
		req := needFrom[q]
		if len(req) == 0 {
			continue
		}
		enc := make([]float64, len(req)) //lint:alloc-ok one-time plan negotiation
		for i, g := range req {
			enc[i] = float64(g)
		}
		c.Send(q, mpi.TagPlan, enc)
	}
	asked := map[int][]int32{}
	for q := 0; q < c.Size(); q++ {
		if q == c.Rank() {
			continue
		}
		want := int(all[q][c.Rank()])
		if want == 0 {
			continue
		}
		enc, err := c.Recv(q, mpi.TagPlan)
		if err != nil {
			return nil, err
		}
		if len(enc) != want {
			return nil, fmt.Errorf("dist: rank %d announced %d needed rows but asked for %d", q, want, len(enc))
		}
		rows := make([]int32, len(enc)) //lint:alloc-ok one-time plan negotiation
		for i, f := range enc {
			rows[i] = int32(f)
		}
		asked[q] = rows
	}
	return asked, nil
}

// Start packs the boundary values out of x and posts the nonblocking
// exchange (receives first, then sends). Only local memory traffic and
// posting happen here — the time is the paper's scatter cost with the
// wait stripped out; the wait is measured separately in Finish. A
// second Start before Finish is a protocol error: the in-flight
// requests would be overwritten (leaked) and every later message on
// the pair streams would misalign.
func (h *Halo) Start(p *prof.Profiler, x []float64) error {
	if h.inFlight {
		return fmt.Errorf("dist: halo Start while a previous exchange is still in flight; Finish it first")
	}
	h.inFlight = true
	sp := p.Begin(prof.PhaseScatterPack)
	defer sp.End(0, h.haloPackBytes())
	b := h.b
	for pi, q := range h.peers {
		if len(h.recvIdx[pi]) > 0 {
			h.recvReq[pi] = h.comm.IRecv(q, h.tag)
		}
	}
	for pi, q := range h.peers {
		idx := h.sendIdx[pi]
		if len(idx) == 0 {
			continue
		}
		buf := h.sendBuf[pi]
		for i, li := range idx {
			copy(buf[i*b:(i+1)*b], x[int(li)*b:int(li)*b+b])
		}
		h.sendReq[pi] = h.comm.ISend(q, h.tag, buf)
	}
	return nil
}

// Finish blocks until the exchange posted by Start completes and
// unpacks the ghost values into x. The blocking is charged to
// scatter_wait — the measured implicit-synchronization sink — and the
// unpack to scatter_pack.
func (h *Halo) Finish(p *prof.Profiler, x []float64) error {
	if err := h.wait(p); err != nil {
		return err
	}
	sp := p.Begin(prof.PhaseScatterPack)
	defer sp.End(0, h.haloUnpackBytes())
	b := h.b
	for pi, q := range h.peers {
		idx := h.recvIdx[pi]
		if len(idx) == 0 {
			continue
		}
		buf := h.recvData[pi]
		h.recvData[pi] = nil
		if len(buf) != len(idx)*b {
			return fmt.Errorf("dist: halo from %d has %d values, want %d", q, len(buf), len(idx)*b)
		}
		for i, li := range idx {
			copy(x[int(li)*b:int(li)*b+b], buf[i*b:(i+1)*b])
		}
	}
	return nil
}

// wait drains every in-flight request, stashing receive payloads for
// the unpack. All requests are completed even on error, so the plan is
// reusable after a failed exchange surfaces.
func (h *Halo) wait(p *prof.Profiler) error {
	sp := p.Begin(prof.PhaseScatterWait)
	defer sp.End(0, h.haloWireBytes())
	h.inFlight = false
	var firstErr error
	for pi := range h.peers {
		if h.recvReq[pi] == nil {
			continue
		}
		data, err := h.recvReq[pi].Wait()
		h.recvReq[pi] = nil
		h.recvData[pi] = data
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for pi := range h.peers {
		if h.sendReq[pi] == nil {
			continue
		}
		if _, err := h.sendReq[pi].Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
		h.sendReq[pi] = nil
	}
	return firstErr
}

// Exchange runs the whole scatter blocking — pack, send, receive,
// unpack under one scatter span, with the implicit-synchronization wait
// folded in. This is the pre-overlap baseline the paper's Table 3
// analysis starts from; Matrix.NoOverlap selects it.
func (h *Halo) Exchange(p *prof.Profiler, x []float64) error {
	sp := p.Begin(prof.PhaseScatter)
	defer sp.End(0, h.haloWireBytes())
	b := h.b
	for pi, q := range h.peers {
		idx := h.sendIdx[pi]
		if len(idx) == 0 {
			continue
		}
		buf := h.sendBuf[pi]
		for i, li := range idx {
			copy(buf[i*b:(i+1)*b], x[int(li)*b:int(li)*b+b])
		}
		h.comm.Send(q, h.tag, buf)
	}
	for pi, q := range h.peers {
		idx := h.recvIdx[pi]
		if len(idx) == 0 {
			continue
		}
		buf, err := h.comm.Recv(q, h.tag)
		if err != nil {
			return err
		}
		if len(buf) != len(idx)*b {
			return fmt.Errorf("dist: halo from %d has %d values, want %d", q, len(buf), len(idx)*b)
		}
		for i, li := range idx {
			copy(x[int(li)*b:int(li)*b+b], buf[i*b:(i+1)*b])
		}
	}
	return nil
}
