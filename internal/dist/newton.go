package dist

import (
	"errors"
	"fmt"
	"math"

	"petscfun3d/internal/euler"
	"petscfun3d/internal/ilu"
	"petscfun3d/internal/mpi"
	"petscfun3d/internal/newton"
	"petscfun3d/internal/par"
	"petscfun3d/internal/prof"
	"petscfun3d/internal/sparse"
)

// NewtonOptions configures the distributed ψNK solve. Every decision a
// step takes (CFL growth, line-search acceptance, retry) derives from
// globally reduced quantities, so all ranks move in lockstep.
type NewtonOptions struct {
	// CFL0, SERExponent, CFLMax drive the SER pseudo-timestep law
	// CFL_l = CFL0 (||f0||/||f_{l-1}||)^p, capped at CFLMax.
	CFL0        float64
	SERExponent float64
	CFLMax      float64
	// MaxSteps bounds the pseudo-timesteps; RelTol is the required
	// residual reduction ||f||/||f0||.
	MaxSteps int
	RelTol   float64
	// Krylov configures the inner distributed GMRES solves; ILU the
	// block Jacobi subdomain factorization.
	Krylov GMRESOptions
	ILU    ilu.Options
	// Threads is the node-level worker count per rank (hybrid
	// ranks×threads). Every threaded kernel is bitwise identical to
	// sequential, so the residual history does not depend on it. 0 or 1
	// runs each rank sequentially.
	Threads int
	// LineSearch enables backtracking on residual increase (the λ
	// decisions reduce globally, so every rank halves together).
	LineSearch bool
	// StepRetries bounds how many times one failed step is re-attempted
	// before the solve aborts gracefully with the partial result. A
	// failure that is the world's cancellation (mpi.ErrAborted — the
	// watchdog fired, a peer died) is never retried: the fabric is gone.
	// Other failures are SPMD-deterministic — every rank sees the same
	// error at the same point — so the ranks retry in lockstep.
	StepRetries int
	// BeforeStep, when non-nil, fires at the start of every step
	// attempt; a non-nil return fails the attempt before it touches the
	// fabric. It must behave identically on every rank. The chaos tests
	// use it to exercise the bounded-retry path deterministically.
	BeforeStep func(step, attempt int) error
}

// DefaultNewtonOptions converges the first-order wing problem robustly
// at test sizes.
func DefaultNewtonOptions() NewtonOptions {
	return NewtonOptions{
		CFL0:        10,
		SERExponent: 1.0,
		CFLMax:      1e5,
		MaxSteps:    30,
		RelTol:      1e-8,
		Krylov:      GMRESOptions{Restart: 30, MaxIters: 200, RelTol: 1e-3},
		ILU:         ilu.Options{Level: 0},
		LineSearch:  true,
		StepRetries: 1,
	}
}

// NewtonStep records one pseudo-timestep of the distributed solve. The
// Rnorm sequence is the solve's residual history — the quantity the
// chaos soak asserts is bitwise identical under injected timing faults.
type NewtonStep struct {
	Index     int
	Rnorm     float64
	CFL       float64
	LinearIts int
	Attempts  int // 1 + retries this step consumed
}

// NewtonResult is the outcome of a distributed solve. On a graceful
// abort (step retries exhausted, world cancelled) NewtonSolve returns
// the partial result alongside the error: the steps completed so far
// remain valid, and the caller's profiler still holds every closed
// phase.
type NewtonResult struct {
	Steps          []NewtonStep
	Converged      bool
	InitialRnorm   float64
	FinalRnorm     float64
	TotalLinearIts int
}

// ResidualHistory returns the initial norm followed by each step's
// norm — the bitwise-comparable trajectory.
func (r *NewtonResult) ResidualHistory() []float64 {
	out := make([]float64, 0, len(r.Steps)+1)
	out = append(out, r.InitialRnorm)
	for _, s := range r.Steps {
		out = append(out, s.Rnorm) //lint:alloc-ok preallocated report helper, not solver hot path
	}
	return out
}

// NewtonSolve advances q to steady state with the distributed ψNK
// iteration: the overlapped distributed residual (Residual), a
// per-step first-order Jacobian partitioned by NewMatrix, block Jacobi
// ILU subdomain preconditioning, and the distributed GMRES. Every rank
// calls it collectively with the same discretization, partition, and
// options (SPMD); q is a global-length interlaced state of which this
// rank advances its owned entries (ghost entries are maintained by the
// halo; far entries stay at their initial values and are never read
// into owned results).
//
// The solve is hardened for chaos runs: a failed step (halo exchange
// error, factorization failure, a BeforeStep veto) is retried up to
// StepRetries times, and when retries are exhausted — or the world
// itself is cancelled under it — NewtonSolve closes its profiler
// phases and returns the partial result with the error, never a
// half-updated state: q only changes when a step is accepted.
func NewtonSolve(c *mpi.Comm, d *euler.Discretization, part []int32, q []float64, opts NewtonOptions, p *prof.Profiler) (*NewtonResult, error) {
	if opts.CFL0 <= 0 || opts.MaxSteps < 1 {
		return nil, fmt.Errorf("dist: nonpositive CFL0 or MaxSteps")
	}
	if opts.StepRetries < 0 {
		return nil, fmt.Errorf("dist: negative StepRetries")
	}
	n := d.N()
	if len(q) != n {
		return nil, fmt.Errorf("dist: state length %d, want %d", len(q), n)
	}
	nsp := p.Begin(prof.PhaseNewton)
	defer nsp.End(0, 0)
	// Per-rank worker pool: each rank goroutine owns its own pool for
	// the hybrid ranks×threads mode, released when the solve returns.
	var pool *par.Pool
	if opts.Threads > 1 {
		pool = par.New(opts.Threads)
		defer pool.Close()
	}
	res := &NewtonResult{}
	var rsd *Residual
	if err := c.Protect(func() error {
		var e error
		rsd, e = NewResidual(c, d, part)
		return e
	}); err != nil {
		return res, err
	}
	rsd.Prof = p
	r := make([]float64, n)
	rTrial := make([]float64, n)
	qTrial := make([]float64, n)
	dq := make([]float64, n)
	jac := d.JacobianPattern()

	var rnorm float64
	if err := c.Protect(func() error {
		if err := rsd.Eval(q, r); err != nil {
			return err
		}
		rnorm = rsd.OwnedNorm2(r)
		return nil
	}); err != nil {
		return res, err
	}
	res.InitialRnorm = rnorm
	res.FinalRnorm = rnorm
	r0 := rnorm
	if r0 == 0 {
		res.Converged = true
		return res, nil
	}

	for step := 0; step < opts.MaxSteps; step++ {
		cfl := opts.CFL0 * math.Pow(r0/rnorm, opts.SERExponent)
		if cfl > opts.CFLMax {
			cfl = opts.CFLMax
		}
		var st GMRESStats
		var newNorm float64
		attempts := 0
		for {
			attempts++
			err := c.Protect(func() error { //lint:alloc-ok one closure per step attempt; the hot path is the GMRES inside
				return newtonStep(c, rsd, d, part, q, r, rnorm, cfl, opts, p, pool,
					jac, qTrial, rTrial, dq, step, attempts-1, &st, &newNorm)
			})
			if err == nil {
				break
			}
			if errors.Is(err, mpi.ErrAborted) || attempts > opts.StepRetries {
				res.FinalRnorm = rnorm
				return res, fmt.Errorf("dist: newton step %d failed after %d attempt(s): %w", step, attempts, err)
			}
		}
		// Accept: the trial state's ghosts were filled by its residual
		// evaluation, so the whole buffer is consistent.
		copy(q, qTrial)
		copy(r, rTrial)
		rnorm = newNorm
		res.TotalLinearIts += st.Iterations
		res.Steps = append(res.Steps, NewtonStep{ //lint:alloc-ok one history record per pseudo-timestep
			Index: step, Rnorm: rnorm, CFL: cfl,
			LinearIts: st.Iterations, Attempts: attempts,
		})
		res.FinalRnorm = rnorm
		if rnorm/r0 <= opts.RelTol {
			res.Converged = true
			break
		}
		if math.IsNaN(rnorm) || math.IsInf(rnorm, 0) {
			return res, fmt.Errorf("dist: newton diverged at step %d (residual %g)", step, rnorm)
		}
	}
	return res, nil
}

// newtonStep runs one pseudo-timestep attempt: Jacobian refresh,
// partitioned extraction, block Jacobi setup, distributed GMRES, and
// the globally synchronized line search. On success *st and *newNorm
// hold the step's outcome and qTrial/rTrial the accepted trial state;
// on error the caller's q and r are untouched, so the attempt can be
// retried or the solve aborted with a consistent partial result.
func newtonStep(c *mpi.Comm, rsd *Residual, d *euler.Discretization, part []int32,
	q, r []float64, rnorm, cfl float64, opts NewtonOptions, p *prof.Profiler, pool *par.Pool,
	jac *sparse.BCSR, qTrial, rTrial, dq []float64, step, attempt int,
	st *GMRESStats, newNorm *float64) error {
	if opts.BeforeStep != nil {
		if err := opts.BeforeStep(step, attempt); err != nil {
			return err
		}
	}
	b := d.Sys.B()
	// Pseudo-time-augmented first-order Jacobian, assembled SPMD (every
	// rank assembles from the same q, so the partitioned extraction
	// below sees identical global values; blocks in far rows derive from
	// stale far state, but NewMatrix copies only this rank's owned rows,
	// whose columns are all owned-or-ghost — maintained by the halo).
	jsp := p.Begin(prof.PhaseJacobian)
	err := d.AssembleJacobian(q, jac)
	if err == nil {
		newton.AddTimeDiagonal(jac, d.TimeScales(q), cfl)
	}
	jsp.End(0, 0)
	if err != nil {
		return err
	}
	am, err := NewMatrix(c, jac, part)
	if err != nil {
		return err
	}
	am.Prof = p
	am.SetPool(pool)
	psp := p.Begin(prof.PhasePCSetup)
	pcSolve, err := am.BlockJacobi(opts.ILU)
	psp.End(0, 0)
	if err != nil {
		return err
	}
	lb := make([]float64, am.LocalN())
	lx := make([]float64, am.LocalN())
	for li, gr := range am.Owned {
		for k := 0; k < b; k++ {
			lb[li*b+k] = -r[int(gr)*b+k]
		}
	}
	gst, err := GMRES(am, pcSolve, lb, lx, opts.Krylov)
	if err != nil {
		return err
	}
	for i := range dq {
		dq[i] = 0
	}
	for li, gr := range am.Owned {
		copy(dq[int(gr)*b:(int(gr)+1)*b], lx[li*b:(li+1)*b])
	}
	// Backtracking on the globally reduced trial norm: every rank
	// computes the same norms, so every rank halves λ together.
	lambda := 1.0
	for try := 0; ; try++ {
		copy(qTrial, q)
		for _, gr := range am.Owned {
			for k := 0; k < b; k++ {
				i := int(gr)*b + k
				qTrial[i] = q[i] + lambda*dq[i]
			}
		}
		if err := rsd.Eval(qTrial, rTrial); err != nil {
			return err
		}
		*newNorm = rsd.OwnedNorm2(rTrial)
		if !opts.LineSearch || *newNorm <= rnorm*(1+1e-10) || try >= 5 {
			break
		}
		lambda *= 0.5
	}
	*st = gst
	return nil
}
