package dist

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"petscfun3d/internal/ilu"
	"petscfun3d/internal/krylov"
	"petscfun3d/internal/mesh"
	"petscfun3d/internal/mpi"
	"petscfun3d/internal/par"
	"petscfun3d/internal/partition"
	"petscfun3d/internal/prof"
	"petscfun3d/internal/schwarz"
	"petscfun3d/internal/sparse"
)

type testProblem struct {
	a    *sparse.BCSR
	g    sparse.Graph
	part *partition.Partition
	rhs  []float64
}

func buildTestProblem(t testing.TB, nx, ny, nz, b, nparts int) *testProblem {
	t.Helper()
	m, err := mesh.GenerateWing(mesh.DefaultWingSpec(nx, ny, nz))
	if err != nil {
		t.Fatal(err)
	}
	g := sparse.Graph{NV: m.NumVertices(), XAdj: m.XAdj, Adj: m.Adj}
	a := sparse.BlockPattern(g, b)
	a.FillDeterministic(101)
	p, err := partition.KWay(g, nparts)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, a.N())
	for i := range rhs {
		rhs[i] = math.Sin(float64(i) * 0.19)
	}
	return &testProblem{a: a, g: g, part: p, rhs: rhs}
}

// gather assembles per-rank owned vectors into a global vector.
type gatherBoard struct {
	mu   sync.Mutex
	vals map[int32][]float64 // global block row -> values
}

func TestDistributedMatVecMatchesSequential(t *testing.T) {
	pr := buildTestProblem(t, 7, 6, 5, 4, 5)
	b := 4
	x := make([]float64, pr.a.N())
	for i := range x {
		x[i] = math.Cos(float64(i) * 0.23)
	}
	want := make([]float64, pr.a.N())
	pr.a.MulVec(x, want)

	board := &gatherBoard{vals: map[int32][]float64{}}
	err := mpi.Run(5, func(c *mpi.Comm) error {
		dm, err := NewMatrix(c, pr.a, pr.part.Part)
		if err != nil {
			return err
		}
		lx := make([]float64, dm.LocalN())
		ly := make([]float64, dm.LocalN())
		for li, gr := range dm.Owned {
			copy(lx[li*b:(li+1)*b], x[int(gr)*b:(int(gr)+1)*b])
		}
		if err := dm.MulVec(lx, ly); err != nil {
			return err
		}
		board.mu.Lock()
		for li, gr := range dm.Owned {
			board.vals[gr] = append([]float64(nil), ly[li*b:(li+1)*b]...)
		}
		board.mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for gr, vals := range board.vals {
		for cpt, got := range vals {
			if math.Abs(got-want[int(gr)*b+cpt]) > 1e-12 {
				t.Fatalf("row %d comp %d: %g vs %g", gr, cpt, got, want[int(gr)*b+cpt])
			}
		}
	}
	if len(board.vals) != pr.a.NB {
		t.Fatalf("gathered %d rows, want %d", len(board.vals), pr.a.NB)
	}
}

func TestDistributedDotAndNorm(t *testing.T) {
	pr := buildTestProblem(t, 6, 5, 4, 2, 4)
	b := 2
	x := make([]float64, pr.a.N())
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	var want float64
	for _, v := range x {
		want += v * v
	}
	err := mpi.Run(4, func(c *mpi.Comm) error {
		dm, err := NewMatrix(c, pr.a, pr.part.Part)
		if err != nil {
			return err
		}
		lx := make([]float64, dm.LocalN())
		for li, gr := range dm.Owned {
			copy(lx[li*b:(li+1)*b], x[int(gr)*b:(int(gr)+1)*b])
		}
		got := dm.Dot(lx, lx)
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			return fmt.Errorf("rank %d: dot %g, want %g", c.Rank(), got, want)
		}
		if math.Abs(dm.Norm2(lx)-math.Sqrt(want)) > 1e-9 {
			return fmt.Errorf("norm mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDistributedMDotBitwise: the batched global multi-dot must be
// bitwise identical to the per-vector Dot collective — same fixed-shape
// local partials, same rank-ordered combine per element — at every
// worker count, while paying one synchronization round for the batch.
func TestDistributedMDotBitwise(t *testing.T) {
	pr := buildTestProblem(t, 6, 5, 4, 2, 4)
	b := 2
	const nvec = 5
	err := mpi.Run(4, func(c *mpi.Comm) error {
		dm, err := NewMatrix(c, pr.a, pr.part.Part)
		if err != nil {
			return err
		}
		lx := make([]float64, dm.LocalN())
		vs := make([][]float64, nvec)
		for li, gr := range dm.Owned {
			for cpt := 0; cpt < b; cpt++ {
				lx[li*b+cpt] = math.Sin(float64(int(gr)*b+cpt) * 0.31)
			}
		}
		for k := range vs {
			vs[k] = make([]float64, dm.LocalN())
			for li, gr := range dm.Owned {
				for cpt := 0; cpt < b; cpt++ {
					vs[k][li*b+cpt] = math.Cos(float64(int(gr)*b+cpt)*0.17 + float64(k))
				}
			}
		}
		want := make([]float64, nvec)
		for k := range vs {
			want[k] = dm.Dot(lx, vs[k])
		}
		for _, nw := range []int{1, 2, 4} {
			p := par.New(nw)
			dm.SetPool(p)
			got := make([]float64, nvec)
			dm.MDot(lx, vs, got)
			for k := range want {
				if got[k] != want[k] {
					p.Close()
					return fmt.Errorf("rank %d nw=%d: MDot[%d]=%x, want %x", c.Rank(), nw, k, got[k], want[k])
				}
			}
			dm.SetPool(nil)
			p.Close()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGMRESReductionRounds pins the batched solve's synchronization
// arithmetic: ONE global reduction round per inner iteration (the fused
// projection batch, which also carries the norm scalars) plus one
// residual norm at startup and one per restart — where the per-vector
// Gram-Schmidt formulation pays j+2 rounds at inner step j.
func TestGMRESReductionRounds(t *testing.T) {
	pr := buildTestProblem(t, 8, 7, 5, 4, 6)
	b := 4
	err := mpi.Run(6, func(c *mpi.Comm) error {
		dm, err := NewMatrix(c, pr.a, pr.part.Part)
		if err != nil {
			return err
		}
		solve, err := dm.BlockJacobi(ilu.Options{Level: 0})
		if err != nil {
			return err
		}
		lb := make([]float64, dm.LocalN())
		lx := make([]float64, dm.LocalN())
		for li, gr := range dm.Owned {
			copy(lb[li*b:(li+1)*b], pr.rhs[int(gr)*b:(int(gr)+1)*b])
		}
		// A small restart forces multiple cycles, exercising the restart
		// residual rounds too.
		st, err := GMRES(dm, solve, lb, lx, GMRESOptions{Restart: 4, MaxIters: 60, RelTol: 1e-8})
		if err != nil {
			return err
		}
		if !st.Converged {
			return fmt.Errorf("rank %d: not converged (res %g)", c.Rank(), st.ResidualNorm)
		}
		if st.Restarts == 0 {
			return fmt.Errorf("rank %d: expected restarts at Restart=4 (iters=%d)", c.Rank(), st.Iterations)
		}
		if want := 1 + st.Restarts + st.Iterations; st.Reductions != want {
			return fmt.Errorf("rank %d: %d reduction rounds, want %d (1 startup + %d restarts + %d iterations)",
				c.Rank(), st.Reductions, want, st.Restarts, st.Iterations)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistributedGMRESMatchesSequentialSchwarz(t *testing.T) {
	// The distributed block-Jacobi GMRES must converge to the same
	// solution (and essentially the same iteration count) as the
	// sequential GMRES with the schwarz package's block Jacobi over the
	// same partition: they are the same algorithm.
	pr := buildTestProblem(t, 8, 7, 5, 4, 6)
	b := 4

	pc, err := schwarz.New(pr.a, pr.part.Part, 6, schwarz.Options{ILU: ilu.Options{Level: 0}})
	if err != nil {
		t.Fatal(err)
	}
	xSeq := make([]float64, pr.a.N())
	seqStats, err := krylov.Solve(krylov.OperatorFunc(pr.a.MulVec), pc, pr.rhs, xSeq,
		krylov.Options{Restart: 25, MaxIters: 400, RelTol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !seqStats.Converged {
		t.Fatal("sequential reference did not converge")
	}

	board := &gatherBoard{vals: map[int32][]float64{}}
	var distIts int
	var itsMu sync.Mutex
	err = mpi.Run(6, func(c *mpi.Comm) error {
		dm, err := NewMatrix(c, pr.a, pr.part.Part)
		if err != nil {
			return err
		}
		solve, err := dm.BlockJacobi(ilu.Options{Level: 0})
		if err != nil {
			return err
		}
		lb := make([]float64, dm.LocalN())
		lx := make([]float64, dm.LocalN())
		for li, gr := range dm.Owned {
			copy(lb[li*b:(li+1)*b], pr.rhs[int(gr)*b:(int(gr)+1)*b])
		}
		st, err := GMRES(dm, solve, lb, lx, GMRESOptions{Restart: 25, MaxIters: 400, RelTol: 1e-9})
		if err != nil {
			return err
		}
		if !st.Converged {
			return fmt.Errorf("rank %d: distributed GMRES did not converge (res %g)", c.Rank(), st.ResidualNorm)
		}
		itsMu.Lock()
		distIts = st.Iterations
		itsMu.Unlock()
		board.mu.Lock()
		for li, gr := range dm.Owned {
			board.vals[gr] = append([]float64(nil), lx[li*b:(li+1)*b]...)
		}
		board.mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Solutions agree (both solve to 1e-9 of the same system).
	var worst float64
	for gr, vals := range board.vals {
		for cpt, got := range vals {
			if d := math.Abs(got - xSeq[int(gr)*b+cpt]); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-5 {
		t.Errorf("distributed and sequential solutions differ by %g", worst)
	}
	// Same algorithm: iteration counts agree to a small margin (inner
	// products are summed in different orders).
	if diff := distIts - seqStats.Iterations; diff < -3 || diff > 3 {
		t.Errorf("iteration counts diverge: distributed %d vs sequential %d", distIts, seqStats.Iterations)
	}
}

// TestDistributedProfileMeasuresCommunication gives each rank its own
// profiler, solves, and merges them: the merged report must show the
// message-passing phases (scatter, reduce) with real time and byte
// counts alongside the compute phases — the measured counterpart of
// machine.Report's communication buckets.
func TestDistributedProfileMeasuresCommunication(t *testing.T) {
	const nranks = 4
	pr := buildTestProblem(t, 7, 6, 5, 4, nranks)
	b := 4
	profs := make([]*prof.Profiler, nranks)
	for i := range profs {
		profs[i] = prof.New()
		profs[i].Enable()
	}
	err := mpi.Run(nranks, func(c *mpi.Comm) error {
		dm, err := NewMatrix(c, pr.a, pr.part.Part)
		if err != nil {
			return err
		}
		dm.Prof = profs[c.Rank()]
		solve, err := dm.BlockJacobi(ilu.Options{Level: 0})
		if err != nil {
			return err
		}
		lb := make([]float64, dm.LocalN())
		lx := make([]float64, dm.LocalN())
		for li, gr := range dm.Owned {
			copy(lb[li*b:(li+1)*b], pr.rhs[int(gr)*b:(int(gr)+1)*b])
		}
		_, err = GMRES(dm, solve, lb, lx, GMRESOptions{Restart: 20, MaxIters: 60, RelTol: 1e-6})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	merged := prof.New()
	for _, p := range profs {
		merged.Merge(p)
	}
	rep := merged.Report(0)
	got := map[string]prof.PhaseStat{}
	for _, st := range rep.Phases {
		got[st.Phase] = st
	}
	for _, want := range []string{"krylov", "matvec", "scatter_pack", "scatter_wait", "interior", "boundary", "reduce", "tri_solve", "ortho"} {
		st, ok := got[want]
		if !ok {
			t.Fatalf("phase %q missing from merged report %v", want, rep.Phases)
		}
		if st.Calls <= 0 || st.Seconds < 0 {
			t.Fatalf("phase %q has calls=%d seconds=%g", want, st.Calls, st.Seconds)
		}
	}
	if got["scatter_pack"].Bytes <= 0 || got["scatter_wait"].Bytes <= 0 {
		t.Error("scatter phases recorded no bytes")
	}
	if got["scatter_pack"].Category != "scatter" || got["scatter_wait"].Category != "wait" || got["reduce"].Category != "reduce" {
		t.Error("communication phases not in their machine.Report buckets")
	}
	if got["tri_solve"].Flops <= 0 || got["interior"].Flops <= 0 || got["boundary"].Flops <= 0 {
		t.Error("compute phases recorded no flops")
	}
	// The interior/boundary split's flop accounting must equal one full
	// MulVec per call: the two subsets partition the stored blocks.
	if got["interior"].Flops+got["boundary"].Flops <= 0 {
		t.Error("split matvec recorded no flops")
	}
	// Every rank's halo phases happen inside its matvecs: cumulative
	// child time cannot exceed cumulative parent time.
	for _, child := range []string{"scatter_pack", "scatter_wait", "interior", "boundary"} {
		if got[child].CumulativeSeconds > got["matvec"].CumulativeSeconds {
			t.Errorf("%s cumulative %g exceeds matvec cumulative %g",
				child, got[child].CumulativeSeconds, got["matvec"].CumulativeSeconds)
		}
	}
}

// TestOverlappedMatVecBitwiseIdentical: the overlapped interior/boundary
// split must reproduce the blocking path bit for bit on the same
// partition — same per-row kernels, same accumulation order per row.
func TestOverlappedMatVecBitwiseIdentical(t *testing.T) {
	pr := buildTestProblem(t, 7, 6, 5, 4, 5)
	b := 4
	x := make([]float64, pr.a.N())
	for i := range x {
		x[i] = math.Cos(float64(i)*0.37) * math.Exp(math.Sin(float64(i)))
	}
	want := make([]float64, pr.a.N())
	pr.a.MulVec(x, want)
	err := mpi.Run(5, func(c *mpi.Comm) error {
		dm, err := NewMatrix(c, pr.a, pr.part.Part)
		if err != nil {
			return err
		}
		lx := make([]float64, dm.LocalN())
		yOver := make([]float64, dm.LocalN())
		yBlock := make([]float64, dm.LocalN())
		for li, gr := range dm.Owned {
			copy(lx[li*b:(li+1)*b], x[int(gr)*b:(int(gr)+1)*b])
		}
		if err := dm.MulVec(lx, yOver); err != nil {
			return err
		}
		dm.NoOverlap = true
		if err := dm.MulVec(lx, yBlock); err != nil {
			return err
		}
		for i := range yOver {
			if yOver[i] != yBlock[i] {
				return fmt.Errorf("rank %d entry %d: overlapped %x vs blocking %x", c.Rank(), i, yOver[i], yBlock[i])
			}
		}
		// Both agree with the sequential kernel to rounding (the ghost
		// renumbering may permute a boundary row's column order, so the
		// cross-code comparison is not bitwise).
		for li, gr := range dm.Owned {
			for cpt := 0; cpt < b; cpt++ {
				if math.Abs(yOver[li*b+cpt]-want[int(gr)*b+cpt]) > 1e-12 {
					return fmt.Errorf("row %d comp %d: %g vs sequential %g", gr, cpt, yOver[li*b+cpt], want[int(gr)*b+cpt])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAsymmetricPartitionZeroGhosts drives the overlapped MulVec on a
// block-diagonal matrix whose components are split across ranks: some
// ranks have no ghosts at all (pure interior, no exchange posted), and
// the result must still match the sequential kernel. Run under -race
// this also exercises the no-traffic edge of the request plumbing.
func TestAsymmetricPartitionZeroGhosts(t *testing.T) {
	// Two disconnected 4-row components: ranks 0/1 split the first
	// (ghosts across the cut), rank 2 owns the second outright (zero
	// ghosts).
	const nb, b = 8, 4
	rows := make([][]int32, nb)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			rows[i] = append(rows[i], int32(j))
			rows[4+i] = append(rows[4+i], int32(4+j))
		}
	}
	a := sparse.NewBCSRPattern(nb, b, rows)
	a.FillDeterministic(7)
	part := []int32{0, 0, 1, 1, 2, 2, 2, 2}
	x := make([]float64, a.N())
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.7)
	}
	want := make([]float64, a.N())
	a.MulVec(x, want)
	err := mpi.Run(3, func(c *mpi.Comm) error {
		dm, err := NewMatrix(c, a, part)
		if err != nil {
			return err
		}
		if c.Rank() == 2 && len(dm.Ghosts) != 0 {
			return fmt.Errorf("rank 2 should have zero ghosts, has %d", len(dm.Ghosts))
		}
		lx := make([]float64, dm.LocalN())
		ly := make([]float64, dm.LocalN())
		yBlock := make([]float64, dm.LocalN())
		for li, gr := range dm.Owned {
			copy(lx[li*b:(li+1)*b], x[int(gr)*b:(int(gr)+1)*b])
		}
		if err := dm.MulVec(lx, ly); err != nil {
			return err
		}
		dm.NoOverlap = true
		if err := dm.MulVec(lx, yBlock); err != nil {
			return err
		}
		for i := range ly {
			if ly[i] != yBlock[i] {
				return fmt.Errorf("rank %d entry %d: overlapped %x vs blocking %x", c.Rank(), i, ly[i], yBlock[i])
			}
		}
		// The ghost renumbering permutes some rows' column order on this
		// partition, so sequential agreement is to rounding, not bitwise.
		for li, gr := range dm.Owned {
			for cpt := 0; cpt < b; cpt++ {
				if math.Abs(ly[li*b+cpt]-want[int(gr)*b+cpt]) > 1e-12 {
					return fmt.Errorf("rank %d row %d: %g vs %g", c.Rank(), gr, ly[li*b+cpt], want[int(gr)*b+cpt])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAsymmetricPartitionAllBoundaryRows gives one rank a share whose
// every row touches a ghost column (empty interior set): the overlapped
// path degenerates to post-wait-compute and must still be exact.
func TestAsymmetricPartitionAllBoundaryRows(t *testing.T) {
	// Dense 5-block-row coupling, rank 1 owning a single row: each of
	// rank 1's rows (and several of rank 0's) reads ghost columns.
	const nb, b = 5, 4
	rows := make([][]int32, nb)
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			rows[i] = append(rows[i], int32(j))
		}
	}
	a := sparse.NewBCSRPattern(nb, b, rows)
	a.FillDeterministic(23)
	part := []int32{0, 0, 1, 0, 0}
	x := make([]float64, a.N())
	for i := range x {
		x[i] = math.Cos(float64(i) * 1.3)
	}
	want := make([]float64, a.N())
	a.MulVec(x, want)
	err := mpi.Run(2, func(c *mpi.Comm) error {
		dm, err := NewMatrix(c, a, part)
		if err != nil {
			return err
		}
		if len(dm.interior) != 0 {
			return fmt.Errorf("rank %d expected all-boundary rows, got %d interior", c.Rank(), len(dm.interior))
		}
		lx := make([]float64, dm.LocalN())
		ly := make([]float64, dm.LocalN())
		yBlock := make([]float64, dm.LocalN())
		for li, gr := range dm.Owned {
			copy(lx[li*b:(li+1)*b], x[int(gr)*b:(int(gr)+1)*b])
		}
		if err := dm.MulVec(lx, ly); err != nil {
			return err
		}
		dm.NoOverlap = true
		if err := dm.MulVec(lx, yBlock); err != nil {
			return err
		}
		for i := range ly {
			if ly[i] != yBlock[i] {
				return fmt.Errorf("rank %d entry %d: overlapped %x vs blocking %x", c.Rank(), i, ly[i], yBlock[i])
			}
		}
		// The ghost renumbering permutes some rows' column order on this
		// partition, so sequential agreement is to rounding, not bitwise.
		for li, gr := range dm.Owned {
			for cpt := 0; cpt < b; cpt++ {
				if math.Abs(ly[li*b+cpt]-want[int(gr)*b+cpt]) > 1e-12 {
					return fmt.Errorf("rank %d row %d: %g vs %g", c.Rank(), gr, ly[li*b+cpt], want[int(gr)*b+cpt])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewMatrixValidation(t *testing.T) {
	pr := buildTestProblem(t, 4, 3, 3, 2, 2)
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := NewMatrix(c, pr.a, pr.part.Part[:5]); err == nil {
			return fmt.Errorf("short partition accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// A partition leaving any rank empty is rejected by every rank
	// (before communication, so no deadlock).
	allZero := make([]int32, pr.a.NB)
	err = mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := NewMatrix(c, pr.a, allZero); err == nil {
			return fmt.Errorf("empty rank accepted on rank %d", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGMRESOptionValidation(t *testing.T) {
	pr := buildTestProblem(t, 4, 3, 3, 2, 2)
	err := mpi.Run(2, func(c *mpi.Comm) error {
		dm, err := NewMatrix(c, pr.a, pr.part.Part)
		if err != nil {
			return err
		}
		lb := make([]float64, dm.LocalN())
		lx := make([]float64, dm.LocalN())
		if _, err := GMRES(dm, nil, lb, lx, GMRESOptions{Restart: 0, MaxIters: 1}); err == nil {
			return fmt.Errorf("restart 0 accepted")
		}
		if _, err := GMRES(dm, nil, lb[:1], lx, GMRESOptions{Restart: 5, MaxIters: 5}); err == nil {
			return fmt.Errorf("short vector accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestHaloDoubleStartRejected pins the Start/Finish protocol guard: a
// second Start while an exchange is in flight must fail loudly instead
// of silently overwriting the posted requests (which would leak them
// and misalign every later message on the pair streams). After Finish
// the plan must be reusable.
func TestHaloDoubleStartRejected(t *testing.T) {
	pr := buildTestProblem(t, 6, 5, 4, 4, 3)
	err := mpi.Run(3, func(c *mpi.Comm) error {
		dm, err := NewMatrix(c, pr.a, pr.part.Part)
		if err != nil {
			return err
		}
		ext := make([]float64, dm.LocalN()+len(dm.Ghosts)*dm.B)
		if err := dm.halo.Start(dm.Prof, ext); err != nil {
			return fmt.Errorf("rank %d first Start: %v", c.Rank(), err)
		}
		if err := dm.halo.Start(dm.Prof, ext); err == nil {
			return fmt.Errorf("rank %d: second Start before Finish succeeded, want in-flight error", c.Rank())
		}
		if err := dm.halo.Finish(dm.Prof, ext); err != nil {
			return fmt.Errorf("rank %d Finish: %v", c.Rank(), err)
		}
		// The guard resets: the plan is reusable after Finish.
		if err := dm.halo.Exchange(dm.Prof, ext); err != nil {
			return fmt.Errorf("rank %d reuse after Finish: %v", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
