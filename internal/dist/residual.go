package dist

import (
	"fmt"
	"math"

	"petscfun3d/internal/euler"
	"petscfun3d/internal/mpi"
	"petscfun3d/internal/prof"
	"petscfun3d/internal/sparse"
)

// Residual is one rank's share of the distributed first-order euler
// residual: the flux edge loop split into interior edges (both
// endpoints owned) computed while the ghost-state exchange is in
// flight, and frontier edges (one ghost endpoint) computed after it —
// the same overlap structure as Matrix.MulVec, applied to the
// function-evaluation side of the solver.
//
// State and residual vectors are full global-length interlaced arrays
// of which each rank maintains only its owned entries (plus, inside
// Eval, the ghost entries the halo fills). The plan is built
// collectively; Eval must also be called collectively.
type Residual struct {
	Comm *mpi.Comm
	D    *euler.Discretization

	// Prof, when non-nil, receives this rank's measured phase timings.
	// Each rank runs on its own goroutine, so each rank needs its own
	// profiler (see Matrix.Prof).
	Prof *prof.Profiler

	ownedMask []bool
	nOwned    int
	interior  []int32 // edge indices, both endpoints owned
	frontier  []int32 // edge indices, exactly one endpoint owned
	halo      *Halo   // ghost-state exchange in global vertex numbering
}

// NewResidual builds rank c.Rank()'s share of the distributed residual
// under the vertex partition part (length NumVertices). The
// discretization must be first-order, inviscid, and interlaced — the
// configuration the paper's parallel preconditioner path uses.
func NewResidual(c *mpi.Comm, d *euler.Discretization, part []int32) (*Residual, error) {
	if d.Opts.Order != 1 {
		return nil, fmt.Errorf("dist: distributed residual requires a first-order discretization, got order %d", d.Opts.Order)
	}
	if d.Opts.Viscosity != 0 {
		return nil, fmt.Errorf("dist: distributed residual does not support viscosity")
	}
	if d.Opts.Layout != sparse.Interlaced {
		return nil, fmt.Errorf("dist: distributed residual requires the interlaced layout")
	}
	nv := d.M.NumVertices()
	if len(part) != nv {
		return nil, fmt.Errorf("dist: partition length %d for %d vertices", len(part), nv)
	}
	me := int32(c.Rank())
	counts := make([]int, c.Size())
	for v, q := range part {
		if q < 0 || int(q) >= c.Size() {
			return nil, fmt.Errorf("dist: vertex %d assigned to invalid rank %d", v, q)
		}
		counts[q]++
	}
	for q, n := range counts {
		if n == 0 {
			return nil, fmt.Errorf("dist: rank %d owns no vertices", q)
		}
	}
	r := &Residual{Comm: c, D: d, ownedMask: make([]bool, nv)}
	for v := int32(0); v < int32(nv); v++ {
		if part[v] == me {
			r.ownedMask[v] = true
			r.nOwned++
		}
	}
	r.interior, r.frontier = d.SplitEdges(func(v int32) bool { return r.ownedMask[v] })
	// Ghosts: the unowned endpoint of every frontier edge, deduplicated
	// and grouped by owning rank in ascending global order (vertex
	// iteration order fixes the wire order deterministically).
	ghost := make([]bool, nv)
	for _, ei := range r.frontier {
		a, b := d.EdgeEndpoints(ei)
		if !r.ownedMask[a] {
			ghost[a] = true
		}
		if !r.ownedMask[b] {
			ghost[b] = true
		}
	}
	needFrom := map[int][]int32{}
	for v := int32(0); v < int32(nv); v++ {
		if ghost[v] {
			needFrom[int(part[v])] = append(needFrom[int(part[v])], v) //lint:alloc-ok one-time plan negotiation at partition setup
		}
	}
	asked, err := negotiateHalo(c, needFrom)
	if err != nil {
		return nil, err
	}
	for q, rows := range asked {
		for _, v := range rows {
			if !r.ownedMask[v] {
				return nil, fmt.Errorf("dist: rank %d asked rank %d for vertex %d it does not own", q, me, v)
			}
		}
	}
	// Global numbering on both sides: pack straight out of q, unpack
	// straight into q.
	r.halo = newHalo(c, d.Sys.B(), mpi.TagHalo, asked, needFrom)
	return r, nil
}

// Eval computes the owned entries of the steady first-order residual
// res(q), overlapping the ghost-state exchange with the interior edges.
// q must hold this rank's owned values; its ghost entries are filled
// (overwritten) from the owning ranks. res is zeroed in full first —
// frontier edges also accumulate into their ghost endpoint, and those
// entries are meaningless here (the owning rank computes them).
func (r *Residual) Eval(q, res []float64) error {
	sp := r.Prof.Begin(prof.PhaseFlux)
	defer sp.End(0, 0) // the work is charged by the nested interior/boundary spans
	for i := range res {
		res[i] = 0
	}
	b := r.D.Sys.B()
	if err := r.halo.Start(r.Prof, q); err != nil {
		return err
	}
	isp := r.Prof.Begin(prof.PhaseInterior)
	r.D.ResidualEdges(q, res, r.interior)
	isp.End(euler.EdgeSubsetFlops(len(r.interior), b), euler.EdgeSubsetBytes(len(r.interior), b))
	if err := r.halo.Finish(r.Prof, q); err != nil {
		return err
	}
	bsp := r.Prof.Begin(prof.PhaseBoundary)
	r.D.ResidualEdges(q, res, r.frontier)
	r.D.BoundaryResidualMasked(q, res, r.ownedMask)
	bsp.End(euler.EdgeSubsetFlops(len(r.frontier), b), euler.EdgeSubsetBytes(len(r.frontier), b))
	return nil
}

// OwnedNorm2 returns the global Euclidean norm of a distributed
// global-length vector, summing only owned entries on each rank (ghost
// and far entries are other ranks' responsibility — counting them would
// double-count). A collective: the local sums meet in one reduction,
// charged to the reduce phase like Matrix.Dot.
func (r *Residual) OwnedNorm2(x []float64) float64 {
	b := r.D.Sys.B()
	sp := r.Prof.Begin(prof.PhaseReduce)
	defer sp.End(dotFlops(r.nOwned*b), dotBytes(r.nOwned*b))
	var s float64
	for v, owned := range r.ownedMask {
		if !owned {
			continue
		}
		for k := 0; k < b; k++ {
			xi := x[v*b+k]
			s += xi * xi
		}
	}
	return math.Sqrt(r.Comm.AllReduceSum(s))
}

// Owned reports whether this rank owns vertex v.
func (r *Residual) Owned(v int32) bool { return r.ownedMask[v] }

// NumOwned returns the number of owned vertices.
func (r *Residual) NumOwned() int { return r.nOwned }
