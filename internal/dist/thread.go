package dist

import (
	"petscfun3d/internal/par"
	"petscfun3d/internal/sparse"
)

// Node-level threading of the rank-local kernels: the interior and
// boundary row sets of the overlapped SpMV are cut into one contiguous
// stripe per worker, with stripe boundaries balanced by stored-block
// count so skewed boundary rows do not serialize the sweep. Each owned
// row is written by exactly one worker with the sequential per-row
// kernel, so the product — and therefore the whole hybrid
// ranks×threads residual history — is bitwise identical to the
// sequential run.

// SetPool attaches a node-level worker pool to this rank's kernels
// (SpMV stripes, triangular solves, reductions) and precomputes the
// nonzero-balanced stripe bounds. A nil pool restores sequential
// execution. The pool serves one rank: in a multi-rank world each rank
// goroutine needs its own pool.
func (m *Matrix) SetPool(p *par.Pool) {
	m.pool = p
	nw := p.Workers()
	if nw == 1 {
		m.intBounds, m.bndBounds = nil, nil
		return
	}
	m.intBounds = stripeRows(m.local, m.interior, nw)
	m.bndBounds = stripeRows(m.local, m.boundary, nw)
}

// stripeRows cuts a row list into nw contiguous stripes balanced by the
// rows' stored-block counts.
func stripeRows(a *sparse.BCSR, rows []int32, nw int) []int32 {
	prefix := make([]int32, len(rows)+1)
	for i, r := range rows {
		prefix[i+1] = prefix[i] + (a.RowPtr[r+1] - a.RowPtr[r])
	}
	bounds := make([]int32, nw+1)
	par.Stripes(prefix, nw, bounds)
	return bounds
}

// mulRows runs one row set of the overlapped product — striped over the
// pool when one is attached, sequentially otherwise.
func (m *Matrix) mulRows(rows []int32, bounds []int32, x, y []float64) {
	if m.pool.Workers() == 1 || len(bounds) == 0 {
		m.local.MulVecRows(rows, x, y)
		return
	}
	t := &m.rowsT
	t.m, t.rows, t.bounds, t.x, t.y = m, rows, bounds, x, y
	m.pool.Run(t)
	t.rows, t.bounds, t.x, t.y = nil, nil, nil, nil
}

// rowsTask is the reusable pool task of mulRows: one nonzero-balanced
// stripe of the row list per worker.
type rowsTask struct {
	m      *Matrix
	rows   []int32
	bounds []int32
	x, y   []float64
}

// RunShard implements par.Task.
func (t *rowsTask) RunShard(w, nw int) {
	lo, hi := t.bounds[w], t.bounds[w+1]
	if lo < hi {
		t.m.local.MulVecRows(t.rows[lo:hi], t.x, t.y)
	}
}
