package dist

import (
	"testing"
	"time"

	"petscfun3d/internal/faults"
	"petscfun3d/internal/mpi"
	"petscfun3d/internal/par"
)

// TestMatVecThreadedBitwiseIdentical: the striped rank-local SpMV
// matches the sequential rank-local SpMV bit for bit at every worker
// count, including the overlapped interior/boundary split.
func TestMatVecThreadedBitwiseIdentical(t *testing.T) {
	pr := buildTestProblem(t, 7, 6, 5, 4, 4)
	const nranks = 4
	err := mpi.Run(nranks, func(c *mpi.Comm) error {
		dm, err := NewMatrix(c, pr.a, pr.part.Part)
		if err != nil {
			return err
		}
		lx := make([]float64, dm.LocalN())
		for li := range lx {
			lx[li] = float64((li%17)-8) / 3.0
		}
		want := make([]float64, dm.LocalN())
		if err := dm.MulVec(lx, want); err != nil {
			return err
		}
		for _, nw := range []int{2, 4, 8} {
			p := par.New(nw)
			dm.SetPool(p)
			got := make([]float64, dm.LocalN())
			for rep := 0; rep < 2; rep++ {
				if err := dm.MulVec(lx, got); err != nil {
					p.Close()
					return err
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("rank %d nw=%d rep=%d: y[%d]=%x, want %x", c.Rank(), nw, rep, i, got[i], want[i])
						p.Close()
						return nil
					}
				}
			}
			dm.SetPool(nil)
			p.Close()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// runHybridNewton solves the distributed Newton problem at nranks with
// threads workers per rank (under an optional fault plan) and returns
// the residual history, asserting every rank observed the same one.
func runHybridNewton(t *testing.T, nranks, threads int, plan *faults.Plan) []float64 {
	t.Helper()
	d, p, q0 := buildResidualProblem(t, 6, 5, 4, nranks)
	opts := soakNewtonOptions()
	opts.Threads = threads
	hists := make([][]float64, nranks)
	mopts := mpi.Options{WatchdogTimeout: 60 * time.Second, Faults: plan}
	err := mpi.Run(nranks, func(c *mpi.Comm) error {
		q := append([]float64(nil), q0...)
		res, err := NewtonSolve(c, d, p.Part, q, opts, nil)
		if err != nil {
			return err
		}
		hists[c.Rank()] = res.ResidualHistory()
		return nil
	}, mopts)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < nranks; r++ {
		for i := range hists[r] {
			if hists[r][i] != hists[0][i] {
				t.Fatalf("rank %d step %d: %v vs rank 0's %v (ranks disagree)", r, i, hists[r][i], hists[0][i])
			}
		}
	}
	return hists[0]
}

// TestHybridThreadsBitwiseIdentical: the hybrid ranks×threads Newton
// solve produces a residual history bitwise identical to the
// threads=1 run at every thread count — level-scheduled solves,
// striped SpMV, and fixed-shape reductions change the schedule, never
// the arithmetic.
func TestHybridThreadsBitwiseIdentical(t *testing.T) {
	for _, nranks := range []int{2, 4} {
		clean := runHybridNewton(t, nranks, 1, nil)
		if len(clean) < 2 {
			t.Fatalf("%d ranks: degenerate history %v", nranks, clean)
		}
		for _, threads := range []int{2, 4} {
			hist := runHybridNewton(t, nranks, threads, nil)
			if len(hist) != len(clean) {
				t.Fatalf("%d ranks %d threads: %d steps vs %d", nranks, threads, len(hist), len(clean))
			}
			for i := range hist {
				if hist[i] != clean[i] {
					t.Fatalf("%d ranks %d threads step %d: residual %v vs threads=1 %v",
						nranks, threads, i, hist[i], clean[i])
				}
			}
		}
	}
}

// TestHybridChaosSoakBitwise: hybrid ranks×threads under injected
// timing faults still reproduces the fault-free sequential residual
// history bit for bit — the worker pools add intra-rank concurrency on
// top of the chaos fabric's inter-rank skew, and neither may touch the
// numerics. The solve's inner GMRES routes every orthogonalization
// through the fused MDot/MAxpy kernels and the batched vector
// AllReduce, so this soak exercises the single-round reduction under
// stalls, jitter, and reordering at every seed.
func TestHybridChaosSoakBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a long test")
	}
	const nranks = 4
	clean := runHybridNewton(t, nranks, 1, nil)
	for _, seed := range chaosSeeds(t) {
		plan := faults.NewPlan(seed, faults.ProfileMixed)
		plan.StallLen = 2 * time.Millisecond
		hist := runHybridNewton(t, nranks, 4, plan)
		if len(hist) != len(clean) {
			t.Fatalf("seed %d: %d steps vs fault-free %d", seed, len(hist), len(clean))
		}
		for i := range hist {
			if hist[i] != clean[i] {
				t.Fatalf("seed %d step %d: residual %v vs fault-free threads=1 %v (threading or faults changed numerics)",
					seed, i, hist[i], clean[i])
			}
		}
	}
}
