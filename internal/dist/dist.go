// Package dist implements a genuinely distributed sparse solver on the
// goroutine message-passing runtime (internal/mpi): partitioned block
// matrices with ghost-column halos, distributed vector operations with
// global reductions, and a distributed right-preconditioned GMRES with
// block Jacobi ILU(k) subdomain solves. It executes the same
// decomposed algorithm that internal/core models on the virtual
// machine, and the tests validate it against the sequential solver —
// closing the loop on the "MPI substrate" substitution.
package dist

import (
	"fmt"
	"math"
	"sort"

	"petscfun3d/internal/ilu"
	"petscfun3d/internal/mpi"
	"petscfun3d/internal/par"
	"petscfun3d/internal/prof"
	"petscfun3d/internal/sparse"
)

// Matrix is one rank's share of a partitioned BCSR matrix: the owned
// block rows, with column indices renumbered into local-extended space
// (owned rows first in ascending global order, then ghosts in ascending
// global order).
type Matrix struct {
	Comm *mpi.Comm
	B    int

	Owned  []int32 // ascending global block rows owned by this rank
	Ghosts []int32 // ascending global block rows read but not owned

	local *sparse.BCSR // NB = len(Owned), cols in extended numbering

	// Interior/boundary row split, fixed at plan time: interior rows
	// reference only owned columns, so they can be computed while the
	// ghost exchange is in flight; boundary rows need ghost values and
	// run after it. innerNNZB/bndNNZB count each set's stored blocks
	// (they sum to the local matrix's total, so the split's flop
	// accounting matches one full MulVec exactly).
	interior  []int32
	boundary  []int32
	innerNNZB int
	bndNNZB   int

	// Halo exchange plan with persistent staging buffers.
	halo *Halo

	// extBuf is the persistent extended vector (owned prefix + ghost
	// tail) reused by every MulVec — the hot path must not allocate.
	extBuf []float64

	// NoOverlap selects the pre-overlap blocking scatter (one
	// PhaseScatter span folding the synchronization wait into the
	// exchange) instead of the default overlapped path. The two paths
	// are bitwise identical; the blocking one exists as the measured
	// baseline the paper's Table 3 analysis starts from.
	NoOverlap bool

	// Diagonal block (owned x owned) for the block Jacobi factorization.
	diag *sparse.BCSR

	// Node-level worker pool (SetPool) with precomputed
	// nonzero-balanced stripe bounds for the interior/boundary row sets
	// and the reusable SpMV task.
	pool                 *par.Pool
	intBounds, bndBounds []int32
	rowsT                rowsTask

	// Prof, when non-nil, receives this rank's measured phase timings
	// (scatter, matvec, reduce, tri_solve). Each rank runs on its own
	// goroutine, so each rank must have its own profiler; merge them
	// with prof.Merge after mpi.Run returns. The process-wide
	// prof.Default is NOT used here — it assumes single-goroutine
	// nesting.
	Prof *prof.Profiler
}

// NewMatrix extracts rank c.Rank()'s share of the global matrix a under
// the block-row partition part (len a.NB). Every rank calls it with the
// same a and part (SPMD); the halo plan is negotiated over the
// communicator.
func NewMatrix(c *mpi.Comm, a *sparse.BCSR, part []int32) (*Matrix, error) {
	if len(part) != a.NB {
		return nil, fmt.Errorf("dist: partition length %d for %d block rows", len(part), a.NB)
	}
	me := int32(c.Rank())
	// Validate every rank's ownership locally (the partition is SPMD
	// data), so all ranks reject a bad partition before any
	// communication — a rank erroring mid-handshake would deadlock its
	// peers.
	counts := make([]int, c.Size())
	for i, q := range part {
		if q < 0 || int(q) >= c.Size() {
			return nil, fmt.Errorf("dist: row %d assigned to invalid rank %d", i, q)
		}
		counts[q]++
	}
	for q, n := range counts {
		if n == 0 {
			return nil, fmt.Errorf("dist: rank %d owns no rows", q)
		}
	}
	m := &Matrix{Comm: c, B: a.B}
	for i := int32(0); i < int32(a.NB); i++ {
		if part[i] == me {
			m.Owned = append(m.Owned, i) //lint:alloc-ok one-time plan construction at partition setup
		}
	}
	ghostSet := map[int32]bool{}
	for _, gr := range m.Owned {
		for _, j := range a.ColIdx[a.RowPtr[gr]:a.RowPtr[gr+1]] {
			if part[j] != me {
				ghostSet[j] = true
			}
		}
	}
	for g := range ghostSet {
		m.Ghosts = append(m.Ghosts, g) //lint:alloc-ok one-time plan construction at partition setup
	}
	sort.Slice(m.Ghosts, func(i, j int) bool { return m.Ghosts[i] < m.Ghosts[j] })

	// Extended-local numbering.
	ext := make(map[int32]int32, len(m.Owned)+len(m.Ghosts))
	for li, gr := range m.Owned {
		ext[gr] = int32(li)
	}
	for li, gr := range m.Ghosts {
		ext[gr] = int32(len(m.Owned) + li)
	}
	// Local rows (owned rows, all columns) and the diagonal block
	// (owned columns only).
	rows := make([][]int32, len(m.Owned))
	diagRows := make([][]int32, len(m.Owned))
	for li, gr := range m.Owned {
		for _, j := range a.ColIdx[a.RowPtr[gr]:a.RowPtr[gr+1]] {
			rows[li] = append(rows[li], ext[j]) //lint:alloc-ok one-time plan construction at partition setup
			if part[j] == me {
				diagRows[li] = append(diagRows[li], ext[j]) //lint:alloc-ok one-time plan construction at partition setup
			}
		}
	}
	m.local = sparse.NewBCSRPattern(len(m.Owned), a.B, rows)
	m.diag = sparse.NewBCSRPattern(len(m.Owned), a.B, diagRows)
	bb := a.B * a.B
	for li, gr := range m.Owned {
		for k := a.RowPtr[gr]; k < a.RowPtr[gr+1]; k++ {
			j := a.ColIdx[k]
			src := a.Val[int(k)*bb : (int(k)+1)*bb]
			dst, ok := m.local.BlockAt(li, int(ext[j]))
			if !ok {
				return nil, fmt.Errorf("dist: lost local block")
			}
			copy(dst, src)
			if part[j] == me {
				d, ok := m.diag.BlockAt(li, int(ext[j]))
				if !ok {
					return nil, fmt.Errorf("dist: lost diagonal block")
				}
				copy(d, src)
			}
		}
	}
	// Interior/boundary split: a row whose columns are all owned
	// (extended-local index below len(Owned)) never reads the ghost
	// tail, so it can be computed while the exchange is in flight.
	nOwned := int32(len(m.Owned))
	for li := 0; li < m.local.NB; li++ {
		inner := true
		for _, j := range m.local.ColIdx[m.local.RowPtr[li]:m.local.RowPtr[li+1]] {
			if j >= nOwned {
				inner = false
				break
			}
		}
		nnzb := int(m.local.RowPtr[li+1] - m.local.RowPtr[li])
		if inner {
			m.interior = append(m.interior, int32(li)) //lint:alloc-ok one-time plan construction at partition setup
			m.innerNNZB += nnzb
		} else {
			m.boundary = append(m.boundary, int32(li)) //lint:alloc-ok one-time plan construction at partition setup
			m.bndNNZB += nnzb
		}
	}
	m.extBuf = make([]float64, (len(m.Owned)+len(m.Ghosts))*a.B)
	// Halo negotiation: send each rank the list of its rows we need,
	// then translate both directions into extended-local numbering.
	needFrom := map[int][]int32{}
	for _, g := range m.Ghosts {
		needFrom[int(part[g])] = append(needFrom[int(part[g])], g) //lint:alloc-ok one-time plan negotiation at partition setup
	}
	asked, err := negotiateHalo(c, needFrom)
	if err != nil {
		return nil, err
	}
	sendTo := map[int][]int32{}
	for q, rows := range asked {
		locs := make([]int32, len(rows)) //lint:alloc-ok one-time plan negotiation at partition setup
		for i, gr := range rows {
			li, ok := ext[gr]
			if !ok || int(li) >= len(m.Owned) {
				return nil, fmt.Errorf("dist: rank %d asked rank %d for row %d it does not own", q, me, gr)
			}
			locs[i] = li
		}
		sendTo[q] = locs
	}
	recvFrom := map[int][]int32{}
	for q, rows := range needFrom {
		if len(rows) == 0 {
			continue
		}
		locs := make([]int32, len(rows)) //lint:alloc-ok one-time plan negotiation at partition setup
		for i, gr := range rows {
			locs[i] = ext[gr]
		}
		recvFrom[q] = locs
	}
	m.halo = newHalo(c, a.B, mpi.TagHalo, sendTo, recvFrom)
	return m, nil
}

// LocalN returns the number of owned scalar unknowns.
func (m *Matrix) LocalN() int { return len(m.Owned) * m.B }

// Scatter fills the ghost region of the extended vector xExt (length
// LocalN()+len(Ghosts)*B) from the owning ranks, blocking until done;
// the owned prefix must already hold this rank's values. The wait is
// folded into the scatter phase — use the overlapped MulVec to measure
// it separately.
func (m *Matrix) Scatter(xExt []float64) error {
	return m.halo.Exchange(m.Prof, xExt)
}

// MulVec computes the owned part of y = A x, where x and y are local
// owned vectors (length LocalN()); one halo exchange per call. By
// default the exchange is overlapped with the interior rows (post,
// compute interior, wait, compute boundary — the paper's first-order
// scatter fix); NoOverlap selects the blocking baseline. Both paths
// produce bitwise-identical y: they run the same per-row kernels, and
// each row's dot product is independent of the order rows are visited.
func (m *Matrix) MulVec(x, y []float64) error {
	if m.NoOverlap {
		return m.mulVecBlocking(x, y)
	}
	sp := m.Prof.Begin(prof.PhaseMatVec)
	defer sp.End(0, 0) // the work is charged by the nested interior/boundary spans
	ext := m.extBuf
	copy(ext, x[:m.LocalN()])
	if err := m.halo.Start(m.Prof, ext); err != nil {
		return err
	}
	m.Prof.NoteThreads(prof.PhaseMatVec, m.pool.Workers())
	isp := m.Prof.Begin(prof.PhaseInterior)
	m.mulRows(m.interior, m.intBounds, ext, y)
	isp.End(sparse.MulVecRowsFlops(m.innerNNZB, m.B), sparse.MulVecRowsBytes(m.innerNNZB, len(m.interior), m.B))
	if err := m.halo.Finish(m.Prof, ext); err != nil {
		return err
	}
	bsp := m.Prof.Begin(prof.PhaseBoundary)
	m.mulRows(m.boundary, m.bndBounds, ext, y)
	bsp.End(sparse.MulVecRowsFlops(m.bndNNZB, m.B), sparse.MulVecRowsBytes(m.bndNNZB, len(m.boundary), m.B))
	return nil
}

// mulVecBlocking is the pre-overlap baseline: one blocking scatter,
// then the full local product.
func (m *Matrix) mulVecBlocking(x, y []float64) error {
	sp := m.Prof.Begin(prof.PhaseMatVec)
	defer sp.End(m.local.MulVecFlops(), m.local.MulVecBytes())
	ext := m.extBuf
	copy(ext, x[:m.LocalN()])
	if err := m.Scatter(ext); err != nil {
		return err
	}
	m.local.MulVec(ext, y)
	return nil
}

// Dot returns the global inner product of two distributed vectors. The
// whole call is charged to the reduce phase: the local products are a
// vanishing fraction of it next to the wait for the last rank.
func (m *Matrix) Dot(x, y []float64) float64 {
	n := m.LocalN()
	sp := m.Prof.Begin(prof.PhaseReduce)
	m.Prof.NoteThreads(prof.PhaseReduce, m.pool.Workers())
	defer sp.End(dotFlops(n), dotBytes(n))
	// The fixed-shape segmented local product is bitwise identical at
	// every worker count, so the global sum is too.
	s := par.Dot(m.pool, x[:n], y[:n])
	return m.Comm.AllReduceSum(s)
}

// MDot fills out[i] with the global inner product of x against every
// vector of vs — ONE fused local pass over x (par.MDot) and ONE batched
// vector AllReduce, where per-vector Dot calls would pay len(vs) global
// synchronization rounds. Both halves are deterministic (fixed-shape
// segmented local partials, rank-ordered elementwise combine), so each
// out[i] is bitwise identical to Dot(x, vs[i]). out must hold at least
// len(vs) entries; every vector of vs must span this rank's owned part.
// The whole call is charged to the reduce phase, like Dot.
func (m *Matrix) MDot(x []float64, vs [][]float64, out []float64) {
	k := len(vs)
	if k == 0 {
		return
	}
	n := m.LocalN()
	sp := m.Prof.Begin(prof.PhaseReduce)
	m.Prof.NoteThreads(prof.PhaseReduce, m.pool.Workers())
	defer sp.End(mdotFlops(k, n), mdotBytes(k, n))
	par.MDot(m.pool, x[:n], vs, out)
	m.Comm.AllReduceSumVec(out[:k], out[:k])
}

// orthoReduce is the one batched synchronization round of a fused
// Gram-Schmidt step: out[i] = global w·vs[i] for the len(vs) batch
// vectors (the basis plus w itself, for the pre-projection ‖w‖²) and
// out[len(vs)] = global ‖vj‖² — every scalar the step needs from a
// single rendezvous, where the per-vector path pays one round each.
// Deterministic like MDot; charged to the reduce phase like Dot.
func (m *Matrix) orthoReduce(w []float64, vs [][]float64, vj []float64, out []float64) {
	k := len(vs)
	n := m.LocalN()
	sp := m.Prof.Begin(prof.PhaseReduce)
	m.Prof.NoteThreads(prof.PhaseReduce, m.pool.Workers())
	defer sp.End(orthoReduceFlops(k, n), orthoReduceBytes(k, n))
	par.MDot(m.pool, w[:n], vs, out)
	out[k] = par.Dot(m.pool, vj[:n], vj[:n])
	m.Comm.AllReduceSumVec(out[:k+1], out[:k+1])
}

// Norm2 returns the global Euclidean norm.
func (m *Matrix) Norm2(x []float64) float64 { return math.Sqrt(m.Dot(x, x)) }

// BlockJacobi factors this rank's diagonal block with ILU(k) and
// returns the local preconditioner solve.
func (m *Matrix) BlockJacobi(opts ilu.Options) (func(r, z []float64), error) {
	f, err := ilu.Factor(m.diag, opts)
	if err != nil {
		return nil, err
	}
	return func(r, z []float64) {
		sp := m.Prof.Begin(prof.PhaseTriSolve)
		m.Prof.NoteThreads(prof.PhaseTriSolve, m.pool.Workers())
		f.SolvePar(m.pool, r, z)
		sp.End(f.SolveFlops(), f.SolveBytes())
	}, nil
}
