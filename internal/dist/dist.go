// Package dist implements a genuinely distributed sparse solver on the
// goroutine message-passing runtime (internal/mpi): partitioned block
// matrices with ghost-column halos, distributed vector operations with
// global reductions, and a distributed right-preconditioned GMRES with
// block Jacobi ILU(k) subdomain solves. It executes the same
// decomposed algorithm that internal/core models on the virtual
// machine, and the tests validate it against the sequential solver —
// closing the loop on the "MPI substrate" substitution.
package dist

import (
	"fmt"
	"math"
	"sort"

	"petscfun3d/internal/ilu"
	"petscfun3d/internal/mpi"
	"petscfun3d/internal/prof"
	"petscfun3d/internal/sparse"
)

// Matrix is one rank's share of a partitioned BCSR matrix: the owned
// block rows, with column indices renumbered into local-extended space
// (owned rows first in ascending global order, then ghosts in ascending
// global order).
type Matrix struct {
	Comm *mpi.Comm
	B    int

	Owned  []int32 // ascending global block rows owned by this rank
	Ghosts []int32 // ascending global block rows read but not owned

	local *sparse.BCSR // NB = len(Owned), cols in extended numbering

	// Halo exchange plan.
	sendTo   map[int]([]int32) // peer -> local owned indices to send
	recvFrom map[int]([]int32) // peer -> extended-local ghost indices to fill
	peers    []int             // sorted peer ranks

	// Diagonal block (owned x owned) for the block Jacobi factorization.
	diag *sparse.BCSR

	// Prof, when non-nil, receives this rank's measured phase timings
	// (scatter, matvec, reduce, tri_solve). Each rank runs on its own
	// goroutine, so each rank must have its own profiler; merge them
	// with prof.Merge after mpi.Run returns. The process-wide
	// prof.Default is NOT used here — it assumes single-goroutine
	// nesting.
	Prof *prof.Profiler
}

// NewMatrix extracts rank c.Rank()'s share of the global matrix a under
// the block-row partition part (len a.NB). Every rank calls it with the
// same a and part (SPMD); the halo plan is negotiated over the
// communicator.
func NewMatrix(c *mpi.Comm, a *sparse.BCSR, part []int32) (*Matrix, error) {
	if len(part) != a.NB {
		return nil, fmt.Errorf("dist: partition length %d for %d block rows", len(part), a.NB)
	}
	me := int32(c.Rank())
	// Validate every rank's ownership locally (the partition is SPMD
	// data), so all ranks reject a bad partition before any
	// communication — a rank erroring mid-handshake would deadlock its
	// peers.
	counts := make([]int, c.Size())
	for i, q := range part {
		if q < 0 || int(q) >= c.Size() {
			return nil, fmt.Errorf("dist: row %d assigned to invalid rank %d", i, q)
		}
		counts[q]++
	}
	for q, n := range counts {
		if n == 0 {
			return nil, fmt.Errorf("dist: rank %d owns no rows", q)
		}
	}
	m := &Matrix{Comm: c, B: a.B}
	for i := int32(0); i < int32(a.NB); i++ {
		if part[i] == me {
			m.Owned = append(m.Owned, i)
		}
	}
	ghostSet := map[int32]bool{}
	for _, gr := range m.Owned {
		for _, j := range a.ColIdx[a.RowPtr[gr]:a.RowPtr[gr+1]] {
			if part[j] != me {
				ghostSet[j] = true
			}
		}
	}
	for g := range ghostSet {
		m.Ghosts = append(m.Ghosts, g)
	}
	sort.Slice(m.Ghosts, func(i, j int) bool { return m.Ghosts[i] < m.Ghosts[j] })

	// Extended-local numbering.
	ext := make(map[int32]int32, len(m.Owned)+len(m.Ghosts))
	for li, gr := range m.Owned {
		ext[gr] = int32(li)
	}
	for li, gr := range m.Ghosts {
		ext[gr] = int32(len(m.Owned) + li)
	}
	// Local rows (owned rows, all columns) and the diagonal block
	// (owned columns only).
	rows := make([][]int32, len(m.Owned))
	diagRows := make([][]int32, len(m.Owned))
	for li, gr := range m.Owned {
		for _, j := range a.ColIdx[a.RowPtr[gr]:a.RowPtr[gr+1]] {
			rows[li] = append(rows[li], ext[j])
			if part[j] == me {
				diagRows[li] = append(diagRows[li], ext[j])
			}
		}
	}
	m.local = sparse.NewBCSRPattern(len(m.Owned), a.B, rows)
	m.diag = sparse.NewBCSRPattern(len(m.Owned), a.B, diagRows)
	bb := a.B * a.B
	for li, gr := range m.Owned {
		for k := a.RowPtr[gr]; k < a.RowPtr[gr+1]; k++ {
			j := a.ColIdx[k]
			src := a.Val[int(k)*bb : (int(k)+1)*bb]
			dst, ok := m.local.BlockAt(li, int(ext[j]))
			if !ok {
				return nil, fmt.Errorf("dist: lost local block")
			}
			copy(dst, src)
			if part[j] == me {
				d, ok := m.diag.BlockAt(li, int(ext[j]))
				if !ok {
					return nil, fmt.Errorf("dist: lost diagonal block")
				}
				copy(d, src)
			}
		}
	}
	// Halo negotiation: send each rank the list of its rows we need.
	needFrom := map[int][]int32{}
	for _, g := range m.Ghosts {
		needFrom[int(part[g])] = append(needFrom[int(part[g])], g)
	}
	m.sendTo = map[int][]int32{}
	m.recvFrom = map[int][]int32{}
	for q := 0; q < c.Size(); q++ {
		if q == c.Rank() {
			continue
		}
		req := needFrom[q]
		enc := make([]float64, len(req))
		for i, g := range req {
			enc[i] = float64(g)
		}
		c.Send(q, tagPlan, enc)
		if len(req) > 0 {
			locs := make([]int32, len(req))
			for i, g := range req {
				locs[i] = ext[g]
			}
			m.recvFrom[q] = locs
		}
	}
	for q := 0; q < c.Size(); q++ {
		if q == c.Rank() {
			continue
		}
		enc, err := c.Recv(q, tagPlan)
		if err != nil {
			return nil, err
		}
		if len(enc) == 0 {
			continue
		}
		locs := make([]int32, len(enc))
		for i, f := range enc {
			gr := int32(f)
			li, ok := ext[gr]
			if !ok || int(li) >= len(m.Owned) {
				return nil, fmt.Errorf("dist: rank %d asked rank %d for row %d it does not own", q, me, gr)
			}
			locs[i] = li
		}
		m.sendTo[q] = locs
	}
	peerSet := map[int]bool{}
	for q := range m.sendTo {
		peerSet[q] = true
	}
	for q := range m.recvFrom {
		peerSet[q] = true
	}
	for q := range peerSet {
		m.peers = append(m.peers, q)
	}
	sort.Ints(m.peers)
	return m, nil
}

const (
	tagPlan = iota + 1
	tagHalo
)

// LocalN returns the number of owned scalar unknowns.
func (m *Matrix) LocalN() int { return len(m.Owned) * m.B }

// Scatter fills the ghost region of the extended vector xExt (length
// LocalN()+len(Ghosts)*B) from the owning ranks; the owned prefix must
// already hold this rank's values.
func (m *Matrix) Scatter(xExt []float64) error {
	b := m.B
	sp := m.Prof.Begin(prof.PhaseScatter)
	// Wire bytes both ways; the blocking receives fold the implicit
	// synchronization wait into this phase's time.
	defer sp.End(0, m.haloWireBytes())
	for _, q := range m.peers {
		locs := m.sendTo[q]
		if len(locs) == 0 {
			continue
		}
		buf := make([]float64, len(locs)*b)
		for i, li := range locs {
			copy(buf[i*b:(i+1)*b], xExt[int(li)*b:int(li)*b+b])
		}
		m.Comm.Send(q, tagHalo, buf)
	}
	for _, q := range m.peers {
		locs := m.recvFrom[q]
		if len(locs) == 0 {
			continue
		}
		buf, err := m.Comm.Recv(q, tagHalo)
		if err != nil {
			return err
		}
		if len(buf) != len(locs)*b {
			return fmt.Errorf("dist: halo from %d has %d values, want %d", q, len(buf), len(locs)*b)
		}
		for i, li := range locs {
			copy(xExt[int(li)*b:int(li)*b+b], buf[i*b:(i+1)*b])
		}
	}
	return nil
}

// MulVec computes the owned part of y = A x, where x and y are local
// owned vectors (length LocalN()); one halo exchange per call.
func (m *Matrix) MulVec(x, y []float64) error {
	sp := m.Prof.Begin(prof.PhaseMatVec)
	defer sp.End(m.local.MulVecFlops(), m.local.MulVecBytes())
	ext := make([]float64, (len(m.Owned)+len(m.Ghosts))*m.B)
	copy(ext, x[:m.LocalN()])
	if err := m.Scatter(ext); err != nil {
		return err
	}
	m.local.MulVec(ext, y)
	return nil
}

// Dot returns the global inner product of two distributed vectors. The
// whole call is charged to the reduce phase: the local products are a
// vanishing fraction of it next to the wait for the last rank.
func (m *Matrix) Dot(x, y []float64) float64 {
	n := m.LocalN()
	sp := m.Prof.Begin(prof.PhaseReduce)
	defer sp.End(dotFlops(n), dotBytes(n))
	var s float64
	for i := 0; i < n; i++ {
		s += x[i] * y[i]
	}
	return m.Comm.AllReduceSum(s)
}

// Norm2 returns the global Euclidean norm.
func (m *Matrix) Norm2(x []float64) float64 { return math.Sqrt(m.Dot(x, x)) }

// BlockJacobi factors this rank's diagonal block with ILU(k) and
// returns the local preconditioner solve.
func (m *Matrix) BlockJacobi(opts ilu.Options) (func(r, z []float64), error) {
	f, err := ilu.Factor(m.diag, opts)
	if err != nil {
		return nil, err
	}
	return func(r, z []float64) {
		sp := m.Prof.Begin(prof.PhaseTriSolve)
		f.Solve(r, z)
		sp.End(f.SolveFlops(), f.SolveBytes())
	}, nil
}
