package dist

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"petscfun3d/internal/faults"
	"petscfun3d/internal/mpi"
)

// chaosSeeds returns the fault-seed grid for the soak. CI runs the
// small default grid; FUN3D_CHAOS_SEEDS="1,2,3,4" widens it (make chaos
// sets it).
func chaosSeeds(t *testing.T) []int64 {
	env := os.Getenv("FUN3D_CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 2}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("FUN3D_CHAOS_SEEDS: %v", err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// soakNewtonOptions keeps the soak's solves short: enough steps that
// the SER law, line search, and per-step Jacobian refresh all run, not
// so many that the seed grid times out under -race.
func soakNewtonOptions() NewtonOptions {
	opts := DefaultNewtonOptions()
	opts.MaxSteps = 6
	opts.RelTol = 1e-10 // never triggers in 6 steps: every run takes all 6
	return opts
}

// runChaosNewton solves the distributed Newton problem at nranks under
// the given fault plan (nil = fault-free) and returns the residual
// history, asserting every rank observed the identical one.
func runChaosNewton(t *testing.T, nranks int, plan *faults.Plan) []float64 {
	t.Helper()
	d, p, q0 := buildResidualProblem(t, 6, 5, 4, nranks)
	hists := make([][]float64, nranks)
	mopts := mpi.Options{WatchdogTimeout: 60 * time.Second, Faults: plan}
	err := mpi.Run(nranks, func(c *mpi.Comm) error {
		q := append([]float64(nil), q0...)
		res, err := NewtonSolve(c, d, p.Part, q, soakNewtonOptions(), nil)
		if err != nil {
			return err
		}
		hists[c.Rank()] = res.ResidualHistory()
		return nil
	}, mopts)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < nranks; r++ {
		if len(hists[r]) != len(hists[0]) {
			t.Fatalf("rank %d history length %d vs rank 0's %d", r, len(hists[r]), len(hists[0]))
		}
		for i := range hists[r] {
			if hists[r][i] != hists[0][i] {
				t.Fatalf("rank %d step %d: %v vs rank 0's %v (ranks disagree)", r, i, hists[r][i], hists[0][i])
			}
		}
	}
	return hists[0]
}

// TestChaosSoakNewtonBitwise is the soak the issue demands: the
// distributed Newton solve at 2, 4, and 8 ranks, under every seed in
// the grid with the mixed fault profile (jitter + wire delays + a
// stall), must produce a residual history bitwise identical to the
// fault-free run. Faults move the ranks' clocks, never the numerics:
// per-pair FIFO matching and rank-ordered reduction combines make the
// arithmetic schedule-independent, and this test (under -race via make
// verify/chaos) is the proof.
func TestChaosSoakNewtonBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a long test")
	}
	seeds := chaosSeeds(t)
	for _, nranks := range []int{2, 4, 8} {
		clean := runChaosNewton(t, nranks, nil)
		if len(clean) < 2 {
			t.Fatalf("%d ranks: degenerate history %v", nranks, clean)
		}
		for _, seed := range seeds {
			plan := faults.NewPlan(seed, faults.ProfileMixed)
			plan.StallLen = 2 * time.Millisecond // keep the soak quick; the regime, not the length, is the test
			chaos := runChaosNewton(t, nranks, plan)
			if len(chaos) != len(clean) {
				t.Fatalf("%d ranks seed %d: %d steps vs fault-free %d", nranks, seed, len(chaos), len(clean))
			}
			for i := range chaos {
				if chaos[i] != clean[i] {
					t.Fatalf("%d ranks seed %d step %d: residual %v vs fault-free %v (timing faults changed numerics)",
						nranks, seed, i, chaos[i], clean[i])
				}
			}
			var skew float64
			for _, s := range plan.SkewSeconds() {
				skew += s
			}
			if skew <= 0 {
				t.Errorf("%d ranks seed %d: plan injected no skew", nranks, seed)
			}
		}
	}
}

// TestNewtonStepRetrySucceeds: a step attempt failing with an
// SPMD-deterministic error must be retried in lockstep and succeed,
// recording the extra attempt in the step history.
func TestNewtonStepRetrySucceeds(t *testing.T) {
	const nranks = 2
	d, p, q0 := buildResidualProblem(t, 6, 5, 4, nranks)
	opts := soakNewtonOptions()
	opts.MaxSteps = 3
	opts.StepRetries = 1
	opts.BeforeStep = func(step, attempt int) error {
		if step == 1 && attempt == 0 {
			return fmt.Errorf("injected transient step failure")
		}
		return nil
	}
	err := mpi.Run(nranks, func(c *mpi.Comm) error {
		q := append([]float64(nil), q0...)
		res, err := NewtonSolve(c, d, p.Part, q, opts, nil)
		if err != nil {
			return err
		}
		if len(res.Steps) != 3 {
			return fmt.Errorf("completed %d steps, want 3", len(res.Steps))
		}
		if res.Steps[0].Attempts != 1 || res.Steps[1].Attempts != 2 || res.Steps[2].Attempts != 1 {
			return fmt.Errorf("attempt counts %d/%d/%d, want 1/2/1",
				res.Steps[0].Attempts, res.Steps[1].Attempts, res.Steps[2].Attempts)
		}
		return nil
	}, mpi.Options{WatchdogTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNewtonRetriesExhaustedAbortsGracefully: when a step keeps
// failing, the solve must return the partial result — the completed
// steps stay valid — along with the step's error, not panic or hang.
func TestNewtonRetriesExhaustedAbortsGracefully(t *testing.T) {
	const nranks = 2
	d, p, q0 := buildResidualProblem(t, 6, 5, 4, nranks)
	opts := soakNewtonOptions()
	opts.StepRetries = 1
	opts.BeforeStep = func(step, attempt int) error {
		if step == 1 {
			return fmt.Errorf("injected persistent step failure")
		}
		return nil
	}
	partialSteps := make([]int, nranks)
	err := mpi.Run(nranks, func(c *mpi.Comm) error {
		q := append([]float64(nil), q0...)
		res, err := NewtonSolve(c, d, p.Part, q, opts, nil)
		if err == nil {
			return fmt.Errorf("persistent failure did not abort the solve")
		}
		if !strings.Contains(err.Error(), "after 2 attempt(s)") {
			return fmt.Errorf("abort error does not show the attempts: %v", err)
		}
		if res == nil || res.InitialRnorm <= 0 {
			return fmt.Errorf("no partial result on graceful abort")
		}
		partialSteps[c.Rank()] = len(res.Steps)
		return nil
	}, mpi.Options{WatchdogTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for r, n := range partialSteps {
		if n != 1 {
			t.Errorf("rank %d kept %d completed steps in the partial result, want 1", r, n)
		}
	}
}

// TestNewtonUnderInjectedPanic: a seed-chosen rank panicking mid-solve
// must surface as a structured world error naming the rank — never a
// hung test — with the surviving ranks' blocked operations unwound.
func TestNewtonUnderInjectedPanic(t *testing.T) {
	const nranks = 4
	d, p, q0 := buildResidualProblem(t, 6, 5, 4, nranks)
	for seed := int64(1); seed <= 2; seed++ {
		plan := faults.NewPlan(seed, faults.ProfilePanic)
		err := mpi.Run(nranks, func(c *mpi.Comm) error {
			q := append([]float64(nil), q0...)
			_, err := NewtonSolve(c, d, p.Part, q, soakNewtonOptions(), nil)
			return err
		}, mpi.Options{Faults: plan, WatchdogTimeout: 60 * time.Second})
		var we *mpi.WorldError
		if !errors.As(err, &we) {
			t.Fatalf("seed %d: want *mpi.WorldError, got %v", seed, err)
		}
		if _, ok := we.PanicValue.(faults.InjectedPanic); !ok {
			t.Fatalf("seed %d: panic value %T, want faults.InjectedPanic", seed, we.PanicValue)
		}
	}
}

// TestNewtonNonParticipantTripsWatchdog: a rank that never joins the
// collective solve starves its peers in the first rendezvous; the
// watchdog must convert that hang into a structured report.
func TestNewtonNonParticipantTripsWatchdog(t *testing.T) {
	const nranks = 3
	d, p, q0 := buildResidualProblem(t, 6, 5, 4, nranks)
	err := mpi.Run(nranks, func(c *mpi.Comm) error {
		if c.Rank() == 2 {
			return nil // never shows up for the solve
		}
		q := append([]float64(nil), q0...)
		_, err := NewtonSolve(c, d, p.Part, q, soakNewtonOptions(), nil)
		return err
	}, mpi.Options{WatchdogTimeout: 300 * time.Millisecond})
	var we *mpi.WorldError
	if !errors.As(err, &we) {
		t.Fatalf("want *mpi.WorldError, got %v", err)
	}
	if !strings.Contains(we.Error(), "watchdog") {
		t.Fatalf("error does not name the watchdog: %v", we)
	}
}

// TestNegotiateHaloZeroNeighbors is the satellite-3 regression: a rank
// with no boundary neighbors must post no plan messages at all (the old
// protocol sprayed zero-length sends at every rank), and the need-count
// announcement must still route every non-empty list correctly.
func TestNegotiateHaloZeroNeighbors(t *testing.T) {
	err := mpi.Run(3, func(c *mpi.Comm) error {
		var need map[int][]int32
		switch c.Rank() {
		case 0:
			need = map[int][]int32{1: {5, 7}}
		case 1:
			need = map[int][]int32{0: {2}}
		case 2:
			need = nil // disconnected component: needs nothing, posts nothing
		}
		asked, err := negotiateHalo(c, need)
		if err != nil {
			return err
		}
		switch c.Rank() {
		case 0:
			if len(asked) != 1 || len(asked[1]) != 1 || asked[1][0] != 2 {
				return fmt.Errorf("rank 0 asked = %v", asked)
			}
		case 1:
			if len(asked) != 1 || len(asked[0]) != 2 || asked[0][0] != 5 || asked[0][1] != 7 {
				return fmt.Errorf("rank 1 asked = %v", asked)
			}
		case 2:
			if len(asked) != 0 {
				return fmt.Errorf("rank 2 asked = %v, want none", asked)
			}
		}
		return nil
	}, mpi.Options{WatchdogTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNegotiateHaloRejectsInvalidPeer: a need-list keyed by an invalid
// rank must fail before any communication (every rank fails locally, so
// no peer is left blocked mid-handshake).
func TestNegotiateHaloRejectsInvalidPeer(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if _, err := negotiateHalo(c, map[int][]int32{c.Rank(): {1}}); err == nil {
			return fmt.Errorf("self-need accepted")
		}
		if _, err := negotiateHalo(c, map[int][]int32{7: {1}}); err == nil {
			return fmt.Errorf("out-of-range peer accepted")
		}
		return nil
	}, mpi.Options{WatchdogTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
}
