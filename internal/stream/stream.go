// Package stream implements McCalpin's STREAM benchmark (Copy, Scale,
// Add, Triad), which the paper uses as the definition of a machine's
// sustainable memory bandwidth: the sparse linear-algebra phases of
// PETSc-FUN3D run at close to this limit. The measured Triad bandwidth
// calibrates the host-machine profile in EXPERIMENTS.md.
package stream

import (
	"fmt"
	"time"
)

// Result reports one kernel's measured bandwidth.
type Result struct {
	Kernel    string
	Bytes     int64         // bytes moved per iteration
	Best      time.Duration // fastest of the trials
	Bandwidth float64       // bytes/second at the fastest trial
}

// String formats the result in STREAM's customary MB/s.
func (r Result) String() string {
	return fmt.Sprintf("%-6s %10.1f MB/s (best %v)", r.Kernel, r.Bandwidth/1e6, r.Best)
}

// Copy runs c[i] = a[i].
func Copy(a, c []float64) {
	copy(c, a)
}

// Scale runs b[i] = s*c[i].
func Scale(s float64, c, b []float64) {
	for i := range b {
		b[i] = s * c[i]
	}
}

// Add runs c[i] = a[i] + b[i].
func Add(a, b, c []float64) {
	for i := range c {
		c[i] = a[i] + b[i]
	}
}

// Triad runs a[i] = b[i] + s*c[i].
func Triad(s float64, b, c, a []float64) {
	for i := range a {
		a[i] = b[i] + s*c[i]
	}
}

// Run measures all four kernels on arrays of n doubles, taking the best
// of trials runs of each, in STREAM's convention (Copy/Scale move 16
// bytes per element, Add/Triad 24).
func Run(n, trials int) ([]Result, error) {
	if n < 1 || trials < 1 {
		return nil, fmt.Errorf("stream: need positive n and trials, got %d, %d", n, trials)
	}
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = 1.0
		b[i] = 2.0
		c[i] = 0.0
	}
	const s = 3.0
	type kernel struct {
		name  string
		bytes int64
		run   func()
	}
	kernels := []kernel{
		{"Copy", int64(16 * n), func() { Copy(a, c) }},
		{"Scale", int64(16 * n), func() { Scale(s, c, b) }},
		{"Add", int64(24 * n), func() { Add(a, b, c) }},
		{"Triad", int64(24 * n), func() { Triad(s, b, c, a) }},
	}
	results := make([]Result, 0, len(kernels))
	for _, k := range kernels {
		best := time.Duration(1<<63 - 1)
		for t := 0; t < trials; t++ {
			start := time.Now()
			k.run()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		if best <= 0 {
			best = time.Nanosecond
		}
		results = append(results, Result{
			Kernel:    k.name,
			Bytes:     k.bytes,
			Best:      best,
			Bandwidth: float64(k.bytes) / best.Seconds(),
		})
	}
	return results, nil
}

// TriadBandwidth runs a quick measurement and returns the Triad
// bandwidth in bytes/s, the number the paper's bandwidth-limited time
// model wants.
func TriadBandwidth() float64 {
	res, err := Run(2<<20, 3)
	if err != nil {
		return 0
	}
	return res[3].Bandwidth
}
