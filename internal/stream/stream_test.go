package stream

import "testing"

func TestKernelsCorrect(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{0, 0, 0}
	c := []float64{0, 0, 0}
	Copy(a, c)
	if c[0] != 1 || c[2] != 3 {
		t.Errorf("Copy: %v", c)
	}
	Scale(2, c, b)
	if b[0] != 2 || b[2] != 6 {
		t.Errorf("Scale: %v", b)
	}
	Add(a, b, c)
	if c[0] != 3 || c[2] != 9 {
		t.Errorf("Add: %v", c)
	}
	Triad(10, b, c, a)
	if a[0] != 32 || a[2] != 96 {
		t.Errorf("Triad: %v", a)
	}
}

func TestRun(t *testing.T) {
	res, err := Run(1<<16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
	names := []string{"Copy", "Scale", "Add", "Triad"}
	for i, r := range res {
		if r.Kernel != names[i] {
			t.Errorf("kernel %d = %s, want %s", i, r.Kernel, names[i])
		}
		if r.Bandwidth <= 0 {
			t.Errorf("%s: nonpositive bandwidth", r.Kernel)
		}
		if r.String() == "" {
			t.Errorf("%s: empty String()", r.Kernel)
		}
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if _, err := Run(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Run(10, 0); err == nil {
		t.Error("trials=0 accepted")
	}
}

func TestTriadBandwidthPositive(t *testing.T) {
	if bw := TriadBandwidth(); bw <= 0 {
		t.Errorf("TriadBandwidth = %g", bw)
	}
}

func BenchmarkTriad(b *testing.B) {
	n := 1 << 20
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	b.SetBytes(int64(24 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Triad(3.0, y, z, x)
	}
}
