package sparse

import (
	"testing"

	"petscfun3d/internal/par"
)

// TestBCSRMulVecParBitwiseIdentical: the striped product matches the
// sequential MulVec bit for bit at every worker count, for every
// block-size kernel specialization.
func TestBCSRMulVecParBitwiseIdentical(t *testing.T) {
	for _, b := range []int{1, 3, 4, 5} {
		g := bandGraph(60)
		a := BlockPattern(g, b)
		a.FillDeterministic(17)
		n := a.N()
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i%11) - 5.0
		}
		want := make([]float64, n)
		a.MulVec(x, want)
		for _, nw := range []int{1, 2, 4, 8} {
			p := par.New(nw)
			got := make([]float64, n)
			for rep := 0; rep < 3; rep++ {
				a.MulVecPar(p, x, got)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("b=%d nw=%d rep=%d: y[%d]=%x, want %x", b, nw, rep, i, got[i], want[i])
					}
				}
			}
			p.Close()
		}
	}
}

// TestCSRMulVecParBitwiseIdentical mirrors the BCSR test for the scalar
// format.
func TestCSRMulVecParBitwiseIdentical(t *testing.T) {
	g := bandGraph(90)
	a := ScalarPattern(g, 1, Interlaced)
	a.FillDeterministic(23)
	n := a.N
	x := make([]float64, n)
	for i := range x {
		x[i] = 1.0 / float64(i+2)
	}
	want := make([]float64, n)
	a.MulVec(x, want)
	for _, nw := range []int{1, 2, 4, 8} {
		p := par.New(nw)
		got := make([]float64, n)
		for rep := 0; rep < 3; rep++ {
			a.MulVecPar(p, x, got)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("nw=%d rep=%d: y[%d]=%x, want %x", nw, rep, i, got[i], want[i])
				}
			}
		}
		p.Close()
	}
}

// TestMulVecParNilPool: a nil pool runs the sequential kernel.
func TestMulVecParNilPool(t *testing.T) {
	a := BlockPattern(bandGraph(30), 4)
	a.FillDeterministic(3)
	n := a.N()
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
	}
	want := make([]float64, n)
	got := make([]float64, n)
	a.MulVec(x, want)
	a.MulVecPar(nil, x, got)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("y[%d]=%x, want %x", i, got[i], want[i])
		}
	}
}

// TestMulVecParSteadyStateAllocs: after the first call sizes the stripe
// bounds, repeated threaded products do not allocate.
func TestMulVecParSteadyStateAllocs(t *testing.T) {
	a := BlockPattern(bandGraph(48), 5)
	a.FillDeterministic(7)
	n := a.N()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 9)
	}
	p := par.New(4)
	defer p.Close()
	a.MulVecPar(p, x, y) // warm up stripe bounds
	if avg := testing.AllocsPerRun(20, func() { a.MulVecPar(p, x, y) }); avg > 0 {
		t.Fatalf("MulVecPar allocates %.1f objects per product", avg)
	}
}
