// Package sparse implements the sparse-matrix storage formats and kernels
// the paper studies: scalar compressed-sparse-row (CSR, PETSc's AIJ) and
// block CSR (BCSR, PETSc's BAIJ) matrices, interlaced and noninterlaced
// multicomponent vector layouts, sparse matrix-vector products for each
// combination, and reduced-precision (float32) value storage for
// bandwidth-limited preconditioner kernels.
package sparse

import (
	"fmt"
	"sort"
)

// CSR is a scalar sparse matrix in compressed-sparse-row format: row i's
// entries are Val[RowPtr[i]:RowPtr[i+1]] in columns
// ColIdx[RowPtr[i]:RowPtr[i+1]] (sorted ascending within each row).
type CSR struct {
	N      int // square dimension
	RowPtr []int32
	ColIdx []int32
	Val    []float64

	// Worker-pool state of MulVecPar (see BCSR): nonzero-balanced row
	// stripe boundaries and the reusable task.
	parBounds []int32
	parTask   csrMulTask
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.ColIdx) }

// Bandwidth returns max |i - j| over stored entries — the β of the
// paper's conflict-miss bound (equation (2)).
func (a *CSR) Bandwidth() int {
	bw := 0
	for i := 0; i < a.N; i++ {
		for _, j := range a.ColIdx[a.RowPtr[i]:a.RowPtr[i+1]] {
			d := i - int(j)
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// MulVec computes y = A x.
func (a *CSR) MulVec(x, y []float64) {
	if len(x) < a.N || len(y) < a.N {
		//lint:panic-ok kernel precondition: a dimension mismatch is caller misuse caught before the bandwidth-limited sweep
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: N=%d len(x)=%d len(y)=%d", a.N, len(x), len(y)))
	}
	a.mulVecRange(0, a.N, x, y)
}

func (a *CSR) mulVecRange(lo, hi int, x, y []float64) {
	for i := lo; i < hi; i++ {
		start, end := a.RowPtr[i], a.RowPtr[i+1]
		vals := a.Val[start:end]
		cols := a.ColIdx[start:end]
		cols = cols[:len(vals)] // bce: ties len(cols) to len(vals); one range check serves both row slices
		var sum float64
		for k, v := range vals {
			sum += v * x[cols[k]] //lint:bce-ok gather through the column index is data-dependent; no slice-length relation is provable
		}
		y[i] = sum
	}
}

// At returns A[i,j], zero when the entry is not stored.
func (a *CSR) At(i, j int) float64 {
	row := a.ColIdx[a.RowPtr[i]:a.RowPtr[i+1]]
	k := sort.Search(len(row), func(p int) bool { return row[p] >= int32(j) })
	if k < len(row) && row[k] == int32(j) {
		return a.Val[int(a.RowPtr[i])+k]
	}
	return 0
}

// Validate checks the structural invariants of the format.
func (a *CSR) Validate() error {
	if len(a.RowPtr) != a.N+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(a.RowPtr), a.N+1)
	}
	if a.RowPtr[0] != 0 || int(a.RowPtr[a.N]) != len(a.ColIdx) || len(a.ColIdx) != len(a.Val) {
		return fmt.Errorf("sparse: inconsistent CSR sizes")
	}
	for i := 0; i < a.N; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		row := a.ColIdx[a.RowPtr[i]:a.RowPtr[i+1]]
		for k, j := range row {
			if j < 0 || int(j) >= a.N {
				return fmt.Errorf("sparse: row %d col %d out of range", i, j)
			}
			if k > 0 && row[k-1] >= j {
				return fmt.Errorf("sparse: row %d columns not strictly ascending", i)
			}
		}
	}
	return nil
}

// CSR32 stores the same structure as CSR with float32 values. The paper
// stores the ILU preconditioner in single precision to halve the memory
// traffic of the bandwidth-bound triangular solves; all arithmetic is
// still performed in float64.
type CSR32 struct {
	N      int
	RowPtr []int32
	ColIdx []int32
	Val    []float32
}

// ToFloat32 converts the matrix values to single-precision storage.
func (a *CSR) ToFloat32() *CSR32 {
	v := make([]float32, len(a.Val))
	for i, x := range a.Val {
		v[i] = float32(x)
	}
	return &CSR32{N: a.N, RowPtr: a.RowPtr, ColIdx: a.ColIdx, Val: v}
}

// MulVec computes y = A x, promoting each stored value to float64.
func (a *CSR32) MulVec(x, y []float64) {
	for i := 0; i < a.N; i++ {
		start, end := a.RowPtr[i], a.RowPtr[i+1]
		vals := a.Val[start:end]
		cols := a.ColIdx[start:end]
		cols = cols[:len(vals)] // bce: ties len(cols) to len(vals); one range check serves both row slices
		var sum float64
		for k, v := range vals {
			sum += float64(v) * x[cols[k]] //lint:bce-ok gather through the column index is data-dependent; no slice-length relation is provable
		}
		y[i] = sum
	}
}

// Builder accumulates entries and produces a CSR with sorted rows.
type Builder struct {
	n    int
	rows []map[int32]float64
}

// NewBuilder returns a builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	rows := make([]map[int32]float64, n)
	for i := range rows {
		rows[i] = make(map[int32]float64, 16) //lint:alloc-ok one-time builder initialization
	}
	return &Builder{n: n, rows: rows}
}

// Add accumulates v into entry (i, j).
func (b *Builder) Add(i, j int, v float64) { b.rows[i][int32(j)] += v }

// Set overwrites entry (i, j).
func (b *Builder) Set(i, j int, v float64) { b.rows[i][int32(j)] = v }

// Build produces the CSR matrix.
func (b *Builder) Build() *CSR {
	a := &CSR{N: b.n, RowPtr: make([]int32, b.n+1)}
	nnz := 0
	for _, r := range b.rows {
		nnz += len(r)
	}
	a.ColIdx = make([]int32, 0, nnz)
	a.Val = make([]float64, 0, nnz)
	cols := make([]int32, 0, 64)
	for i := 0; i < b.n; i++ {
		cols = cols[:0]
		for j := range b.rows[i] {
			cols = append(cols, j) //lint:alloc-ok assembly-time row staging; cols is reused across rows
		}
		sort.Slice(cols, func(p, q int) bool { return cols[p] < cols[q] }) //lint:alloc-ok sort comparator at one-time assembly
		for _, j := range cols {
			a.ColIdx = append(a.ColIdx, j)      //lint:alloc-ok appends into capacity preallocated to the exact nnz
			a.Val = append(a.Val, b.rows[i][j]) //lint:alloc-ok appends into capacity preallocated to the exact nnz
		}
		a.RowPtr[i+1] = int32(len(a.ColIdx))
	}
	return a
}
