package sparse

import (
	"fmt"

	"petscfun3d/internal/par"
)

// Worker-pool SpMV: the matrix's block rows are cut into one contiguous
// stripe per worker, with stripe boundaries balanced by stored-nonzero
// count (a prefix-sum cut of RowPtr via par.Stripes), so skewed row
// populations — boundary rows, reordered meshes — do not serialize the
// sweep. Each row of y is written by exactly one worker with the same
// per-row kernel and accumulation order as the sequential MulVec, so
// the product is bitwise identical to sequential at every worker count.

// MulVecPar computes y = A x on the pool. Bitwise identical to MulVec
// for every worker count (a nil pool runs the sequential kernel).
// Concurrent calls on the same matrix are not allowed.
func (a *BCSR) MulVecPar(p *par.Pool, x, y []float64) {
	nw := p.Workers()
	if nw == 1 {
		a.MulVec(x, y)
		return
	}
	if len(x) < a.N() || len(y) < a.N() {
		//lint:panic-ok kernel precondition: a dimension mismatch is caller misuse caught before the bandwidth-limited sweep
		panic(fmt.Sprintf("sparse: BCSR MulVecPar dimension mismatch: N=%d len(x)=%d len(y)=%d", a.N(), len(x), len(y)))
	}
	if len(a.parBounds) != nw+1 {
		a.parBounds = make([]int32, nw+1)
		par.Stripes(a.RowPtr, nw, a.parBounds)
	}
	t := &a.parTask
	t.a, t.x, t.y = a, x, y
	p.Run(t)
	t.x, t.y = nil, nil
}

type bcsrMulTask struct {
	a    *BCSR
	x, y []float64
}

// RunShard implements par.Task: one nonzero-balanced row stripe through
// the block-size-specialized kernel.
func (t *bcsrMulTask) RunShard(w, nw int) {
	a := t.a
	lo, hi := int(a.parBounds[w]), int(a.parBounds[w+1])
	if lo >= hi {
		return
	}
	switch a.B {
	case 4:
		a.mulVec4(lo, hi, t.x, t.y)
	case 5:
		a.mulVec5(lo, hi, t.x, t.y)
	default:
		a.mulVecGeneric(lo, hi, t.x, t.y)
	}
}

// MulVecPar computes y = A x on the pool; bitwise identical to MulVec
// at every worker count. Concurrent calls on the same matrix are not
// allowed.
func (a *CSR) MulVecPar(p *par.Pool, x, y []float64) {
	nw := p.Workers()
	if nw == 1 {
		a.MulVec(x, y)
		return
	}
	if len(x) < a.N || len(y) < a.N {
		//lint:panic-ok kernel precondition: a dimension mismatch is caller misuse caught before the bandwidth-limited sweep
		panic(fmt.Sprintf("sparse: CSR MulVecPar dimension mismatch: N=%d len(x)=%d len(y)=%d", a.N, len(x), len(y)))
	}
	if len(a.parBounds) != nw+1 {
		a.parBounds = make([]int32, nw+1)
		par.Stripes(a.RowPtr, nw, a.parBounds)
	}
	t := &a.parTask
	t.a, t.x, t.y = a, x, y
	p.Run(t)
	t.x, t.y = nil, nil
}

type csrMulTask struct {
	a    *CSR
	x, y []float64
}

// RunShard implements par.Task.
func (t *csrMulTask) RunShard(w, nw int) {
	a := t.a
	lo, hi := int(a.parBounds[w]), int(a.parBounds[w+1])
	if lo < hi {
		a.mulVecRange(lo, hi, t.x, t.y)
	}
}
