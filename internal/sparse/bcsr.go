package sparse

import (
	"fmt"
	"sort"
)

// BCSR is a block compressed-sparse-row matrix (PETSc's BAIJ): NB block
// rows of B×B dense blocks. Block row i's blocks occupy
// Val[RowPtr[i]*B*B : RowPtr[i+1]*B*B], each block stored row-major, with
// block column indices ColIdx[RowPtr[i]:RowPtr[i+1]] sorted ascending.
//
// This is the "structural blocking" of the paper (section 2.1.2): one
// column index serves B*B values, cutting integer loads by a factor of
// B*B and letting the B values of x used by a block stay in registers.
type BCSR struct {
	NB     int // number of block rows
	B      int // block size (number of unknowns per mesh point)
	RowPtr []int32
	ColIdx []int32
	Val    []float64

	// Worker-pool state of MulVecPar, cached on the matrix: row-stripe
	// boundaries balanced by nonzero count (par.Stripes over RowPtr,
	// recomputed when the worker count changes) and the reusable task.
	// Like the kernels themselves, concurrent MulVecPar calls on the
	// same matrix are not allowed.
	parBounds []int32
	parTask   bcsrMulTask
}

// N returns the scalar dimension NB*B.
func (a *BCSR) N() int { return a.NB * a.B }

// NNZBlocks returns the number of stored blocks.
func (a *BCSR) NNZBlocks() int { return len(a.ColIdx) }

// NNZ returns the number of stored scalar entries.
func (a *BCSR) NNZ() int { return len(a.ColIdx) * a.B * a.B }

// Block returns the storage of the k-th block (row-major B×B), aliasing
// the matrix's value array.
func (a *BCSR) Block(k int) []float64 {
	bb := a.B * a.B
	return a.Val[k*bb : (k+1)*bb]
}

// BlockAt returns (the storage of) block (i, j) and true when present.
func (a *BCSR) BlockAt(i, j int) ([]float64, bool) {
	row := a.ColIdx[a.RowPtr[i]:a.RowPtr[i+1]]
	k := sort.Search(len(row), func(p int) bool { return row[p] >= int32(j) })
	if k < len(row) && row[k] == int32(j) {
		return a.Block(int(a.RowPtr[i]) + k), true
	}
	return nil, false
}

// MulVecFlops returns the floating-point work of one MulVec: a multiply
// and an add per stored scalar. Shared between the virtual-machine cost
// model and the measured profiler.
func (a *BCSR) MulVecFlops() int64 {
	return 2 * int64(len(a.ColIdx)) * int64(a.B) * int64(a.B)
}

// MulVecBytes returns the memory traffic of one MulVec: every stored
// block and column index read once, plus source and destination vector
// sweeps.
func (a *BCSR) MulVecBytes() int64 {
	bb := int64(a.B) * int64(a.B)
	return int64(len(a.ColIdx))*(bb*8+4) + 2*int64(a.NB)*int64(a.B)*8
}

// MulVec computes y = A x with x, y in interlaced layout (unknowns of a
// mesh point adjacent). Specialized unrolled kernels handle the paper's
// block sizes (4 incompressible, 5 compressible).
func (a *BCSR) MulVec(x, y []float64) {
	if len(x) < a.N() || len(y) < a.N() {
		//lint:panic-ok kernel precondition: a dimension mismatch is caller misuse caught before the bandwidth-limited sweep
		panic(fmt.Sprintf("sparse: BCSR MulVec dimension mismatch: N=%d len(x)=%d len(y)=%d", a.N(), len(x), len(y)))
	}
	switch a.B {
	case 4:
		a.mulVec4(0, a.NB, x, y)
	case 5:
		a.mulVec5(0, a.NB, x, y)
	default:
		a.mulVecGeneric(0, a.NB, x, y)
	}
}

func (a *BCSR) mulVec4(lo, hi int, x, y []float64) {
	for i := lo; i < hi; i++ {
		start, end := int(a.RowPtr[i]), int(a.RowPtr[i+1]) // bce: hoist the row extent; int arithmetic keeps prove in play below
		var s0, s1, s2, s3 float64
		for k := start; k < end; k++ {
			j := int(a.ColIdx[k]) * 4                      //lint:bce-ok k is bounded by RowPtr contents, a relation no slice length expresses
			x0, x1, x2, x3 := x[j], x[j+1], x[j+2], x[j+3] //lint:bce-ok gather through the block column index is data-dependent
			v := a.Val[k*16 : k*16+16 : k*16+16]           //lint:bce-ok block offset is data-dependent through RowPtr; the constant-length slice erases the 16 per-element checks below
			s0 += v[0]*x0 + v[1]*x1 + v[2]*x2 + v[3]*x3
			s1 += v[4]*x0 + v[5]*x1 + v[6]*x2 + v[7]*x3
			s2 += v[8]*x0 + v[9]*x1 + v[10]*x2 + v[11]*x3
			s3 += v[12]*x0 + v[13]*x1 + v[14]*x2 + v[15]*x3
		}
		o := i * 4
		y[o], y[o+1], y[o+2], y[o+3] = s0, s1, s2, s3
	}
}

func (a *BCSR) mulVec5(lo, hi int, x, y []float64) {
	for i := lo; i < hi; i++ {
		start, end := int(a.RowPtr[i]), int(a.RowPtr[i+1]) // bce: hoist the row extent; int arithmetic keeps prove in play below
		var s0, s1, s2, s3, s4 float64
		for k := start; k < end; k++ {
			j := int(a.ColIdx[k]) * 5                                  //lint:bce-ok k is bounded by RowPtr contents, a relation no slice length expresses
			x0, x1, x2, x3, x4 := x[j], x[j+1], x[j+2], x[j+3], x[j+4] //lint:bce-ok gather through the block column index is data-dependent
			v := a.Val[k*25 : k*25+25 : k*25+25]                       //lint:bce-ok block offset is data-dependent through RowPtr; the constant-length slice erases the 25 per-element checks below
			s0 += v[0]*x0 + v[1]*x1 + v[2]*x2 + v[3]*x3 + v[4]*x4
			s1 += v[5]*x0 + v[6]*x1 + v[7]*x2 + v[8]*x3 + v[9]*x4
			s2 += v[10]*x0 + v[11]*x1 + v[12]*x2 + v[13]*x3 + v[14]*x4
			s3 += v[15]*x0 + v[16]*x1 + v[17]*x2 + v[18]*x3 + v[19]*x4
			s4 += v[20]*x0 + v[21]*x1 + v[22]*x2 + v[23]*x3 + v[24]*x4
		}
		o := i * 5
		y[o], y[o+1], y[o+2], y[o+3], y[o+4] = s0, s1, s2, s3, s4
	}
}

// MulVecRows computes y[i] = (A x)[i] for the listed block rows only,
// leaving every other row of y untouched. The per-row arithmetic is the
// same as MulVec's (identical kernels, identical accumulation order),
// so computing a partition of the rows in any order — e.g. interior
// rows during a halo exchange and boundary rows after it — produces
// results bitwise identical to one full MulVec.
func (a *BCSR) MulVecRows(rows []int32, x, y []float64) {
	if len(x) < a.N() || len(y) < a.N() {
		//lint:panic-ok kernel precondition: a dimension mismatch is caller misuse caught before the bandwidth-limited sweep
		panic(fmt.Sprintf("sparse: BCSR MulVecRows dimension mismatch: N=%d len(x)=%d len(y)=%d", a.N(), len(x), len(y)))
	}
	switch a.B {
	case 4:
		a.mulVecRows4(rows, x, y)
	case 5:
		a.mulVecRows5(rows, x, y)
	default:
		a.mulVecRowsGeneric(rows, x, y)
	}
}

func (a *BCSR) mulVecRows4(rows []int32, x, y []float64) {
	for _, i := range rows {
		start, end := int(a.RowPtr[i]), int(a.RowPtr[i+1]) // bce: hoist the row extent; int arithmetic keeps prove in play below
		var s0, s1, s2, s3 float64
		for k := start; k < end; k++ {
			j := int(a.ColIdx[k]) * 4                      //lint:bce-ok k is bounded by RowPtr contents, a relation no slice length expresses
			x0, x1, x2, x3 := x[j], x[j+1], x[j+2], x[j+3] //lint:bce-ok gather through the block column index is data-dependent
			v := a.Val[k*16 : k*16+16 : k*16+16]           //lint:bce-ok block offset is data-dependent through RowPtr; the constant-length slice erases the 16 per-element checks below
			s0 += v[0]*x0 + v[1]*x1 + v[2]*x2 + v[3]*x3
			s1 += v[4]*x0 + v[5]*x1 + v[6]*x2 + v[7]*x3
			s2 += v[8]*x0 + v[9]*x1 + v[10]*x2 + v[11]*x3
			s3 += v[12]*x0 + v[13]*x1 + v[14]*x2 + v[15]*x3
		}
		o := int(i) * 4
		y[o], y[o+1], y[o+2], y[o+3] = s0, s1, s2, s3
	}
}

func (a *BCSR) mulVecRows5(rows []int32, x, y []float64) {
	for _, i := range rows {
		start, end := int(a.RowPtr[i]), int(a.RowPtr[i+1]) // bce: hoist the row extent; int arithmetic keeps prove in play below
		var s0, s1, s2, s3, s4 float64
		for k := start; k < end; k++ {
			j := int(a.ColIdx[k]) * 5                                  //lint:bce-ok k is bounded by RowPtr contents, a relation no slice length expresses
			x0, x1, x2, x3, x4 := x[j], x[j+1], x[j+2], x[j+3], x[j+4] //lint:bce-ok gather through the block column index is data-dependent
			v := a.Val[k*25 : k*25+25 : k*25+25]                       //lint:bce-ok block offset is data-dependent through RowPtr; the constant-length slice erases the 25 per-element checks below
			s0 += v[0]*x0 + v[1]*x1 + v[2]*x2 + v[3]*x3 + v[4]*x4
			s1 += v[5]*x0 + v[6]*x1 + v[7]*x2 + v[8]*x3 + v[9]*x4
			s2 += v[10]*x0 + v[11]*x1 + v[12]*x2 + v[13]*x3 + v[14]*x4
			s3 += v[15]*x0 + v[16]*x1 + v[17]*x2 + v[18]*x3 + v[19]*x4
			s4 += v[20]*x0 + v[21]*x1 + v[22]*x2 + v[23]*x3 + v[24]*x4
		}
		o := int(i) * 5
		y[o], y[o+1], y[o+2], y[o+3], y[o+4] = s0, s1, s2, s3, s4
	}
}

func (a *BCSR) mulVecRowsGeneric(rows []int32, x, y []float64) {
	b := a.B
	bb := b * b
	for _, i := range rows {
		ys := y[int(i)*b : int(i)*b+b]
		for c := range ys {
			ys[c] = 0
		}
		start, end := int(a.RowPtr[i]), int(a.RowPtr[i+1])
		for k := start; k < end; k++ {
			j := int(a.ColIdx[k]) * b
			blk := a.Val[k*bb : k*bb+bb]
			xs := x[j : j+b]
			for r := 0; r < b; r++ {
				row := blk[r*b:]
				row = row[:len(xs)] // bce: ties len(row) to len(xs); the c index needs one range check, not two
				var sum float64
				for c, w := range row {
					sum += w * xs[c]
				}
				ys[r] += sum
			}
		}
	}
}

// MulVecRowsFlops returns the floating-point work of a MulVecRows over
// a row subset holding nnzBlocks stored blocks of size b.
func MulVecRowsFlops(nnzBlocks, b int) int64 {
	return 2 * int64(nnzBlocks) * int64(b) * int64(b)
}

// MulVecRowsBytes returns the memory traffic of a MulVecRows over
// nRows block rows holding nnzBlocks stored blocks of size b: blocks
// and column indices read once, the destination rows written once, and
// one source-vector gather per block (subset sweeps have no reuse
// guarantee across the full source vector).
func MulVecRowsBytes(nnzBlocks, nRows, b int) int64 {
	bb := int64(b) * int64(b)
	return int64(nnzBlocks)*(bb*8+4+int64(b)*8) + int64(nRows)*int64(b)*8
}

func (a *BCSR) mulVecGeneric(lo, hi int, x, y []float64) {
	b := a.B
	bb := b * b
	for i := lo; i < hi; i++ {
		ys := y[i*b : i*b+b]
		for c := range ys {
			ys[c] = 0
		}
		start, end := int(a.RowPtr[i]), int(a.RowPtr[i+1])
		for k := start; k < end; k++ {
			j := int(a.ColIdx[k]) * b
			blk := a.Val[k*bb : k*bb+bb]
			xs := x[j : j+b]
			for r := 0; r < b; r++ {
				row := blk[r*b:]
				row = row[:len(xs)] // bce: ties len(row) to len(xs); the c index needs one range check, not two
				var sum float64
				for c, w := range row {
					sum += w * xs[c]
				}
				ys[r] += sum
			}
		}
	}
}

// Validate checks the structural invariants of the format.
func (a *BCSR) Validate() error {
	if a.B < 1 {
		return fmt.Errorf("sparse: BCSR block size %d", a.B)
	}
	if len(a.RowPtr) != a.NB+1 {
		return fmt.Errorf("sparse: BCSR RowPtr length %d, want %d", len(a.RowPtr), a.NB+1)
	}
	if a.RowPtr[0] != 0 || int(a.RowPtr[a.NB]) != len(a.ColIdx) {
		return fmt.Errorf("sparse: inconsistent BCSR pointers")
	}
	if len(a.Val) != len(a.ColIdx)*a.B*a.B {
		return fmt.Errorf("sparse: BCSR value array length %d, want %d", len(a.Val), len(a.ColIdx)*a.B*a.B)
	}
	for i := 0; i < a.NB; i++ {
		row := a.ColIdx[a.RowPtr[i]:a.RowPtr[i+1]]
		for k, j := range row {
			if j < 0 || int(j) >= a.NB {
				return fmt.Errorf("sparse: block row %d col %d out of range", i, j)
			}
			if k > 0 && row[k-1] >= j {
				return fmt.Errorf("sparse: block row %d columns not strictly ascending", i)
			}
		}
	}
	return nil
}

// ToCSR expands the block matrix to scalar CSR in interlaced numbering
// (scalar row = blockRow*B + component).
func (a *BCSR) ToCSR() *CSR {
	b := a.B
	out := &CSR{N: a.N(), RowPtr: make([]int32, a.N()+1)}
	nnz := a.NNZ()
	out.ColIdx = make([]int32, 0, nnz)
	out.Val = make([]float64, 0, nnz)
	for i := 0; i < a.NB; i++ {
		for r := 0; r < b; r++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := int(a.ColIdx[k]) * b
				blk := a.Block(int(k))
				for c := 0; c < b; c++ {
					out.ColIdx = append(out.ColIdx, int32(j+c)) //lint:alloc-ok appends into capacity preallocated to the exact nnz
					out.Val = append(out.Val, blk[r*b+c])       //lint:alloc-ok appends into capacity preallocated to the exact nnz
				}
			}
			out.RowPtr[i*b+r+1] = int32(len(out.ColIdx))
		}
	}
	return out
}

// ToBCSR1 reinterprets a scalar CSR matrix as a BCSR matrix with 1×1
// blocks (sharing storage), so scalar matrices can use block-only
// algorithms such as the ILU factorization.
func (a *CSR) ToBCSR1() *BCSR {
	return &BCSR{NB: a.N, B: 1, RowPtr: a.RowPtr, ColIdx: a.ColIdx, Val: a.Val}
}

// BCSR32 is BCSR with single-precision value storage.
type BCSR32 struct {
	NB     int
	B      int
	RowPtr []int32
	ColIdx []int32
	Val    []float32
}

// ToFloat32 converts the matrix values to single-precision storage.
func (a *BCSR) ToFloat32() *BCSR32 {
	v := make([]float32, len(a.Val))
	for i, x := range a.Val {
		v[i] = float32(x)
	}
	return &BCSR32{NB: a.NB, B: a.B, RowPtr: a.RowPtr, ColIdx: a.ColIdx, Val: v}
}

// MulVec computes y = A x, promoting stored values to float64.
func (a *BCSR32) MulVec(x, y []float64) {
	b := a.B
	bb := b * b
	for i := 0; i < a.NB; i++ {
		ys := y[i*b : i*b+b]
		for c := range ys {
			ys[c] = 0
		}
		start, end := int(a.RowPtr[i]), int(a.RowPtr[i+1])
		for k := start; k < end; k++ {
			j := int(a.ColIdx[k]) * b
			blk := a.Val[k*bb : k*bb+bb]
			xs := x[j : j+b]
			for r := 0; r < b; r++ {
				row := blk[r*b:]
				row = row[:len(xs)] // bce: ties len(row) to len(xs); the c index needs one range check, not two
				var sum float64
				for c, w := range row {
					sum += float64(w) * xs[c]
				}
				ys[r] += sum
			}
		}
	}
}

// NewBCSRPattern allocates a BCSR matrix with the given block sparsity:
// rows[i] lists the block columns of block row i (need not be sorted; a
// sorted copy is made). Values are zero.
func NewBCSRPattern(nb, b int, rows [][]int32) *BCSR {
	a := &BCSR{NB: nb, B: b, RowPtr: make([]int32, nb+1)}
	nnzb := 0
	for _, r := range rows {
		nnzb += len(r)
	}
	a.ColIdx = make([]int32, 0, nnzb)
	for i := 0; i < nb; i++ {
		cols := append([]int32(nil), rows[i]...)                           //lint:alloc-ok one-time pattern construction; the caller's row must be copied before sorting
		sort.Slice(cols, func(p, q int) bool { return cols[p] < cols[q] }) //lint:alloc-ok sort comparator at one-time pattern construction
		a.ColIdx = append(a.ColIdx, cols...)                               //lint:alloc-ok appends into capacity preallocated to the exact nnzb
		a.RowPtr[i+1] = int32(len(a.ColIdx))
	}
	a.Val = make([]float64, len(a.ColIdx)*b*b)
	return a
}
