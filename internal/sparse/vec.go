package sparse

import "math"

// BLAS-1 style vector kernels used throughout the solver stack.

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	y = y[:len(x)] // bce: ties len(y) to len(x); the range index serves both streams unchecked
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Axpy computes y += a*x.
func Axpy(a float64, x, y []float64) {
	y = y[:len(x)] // bce: ties len(y) to len(x); the range index serves both streams unchecked
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale computes x *= a.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Waxpy computes w = y + a*x.
func Waxpy(a float64, x, y, w []float64) {
	x = x[:len(w)] // bce: ties len(x) and len(y) to len(w); the range index serves all three streams unchecked
	y = y[:len(w)]
	for i := range w {
		w[i] = y[i] + a*x[i]
	}
}

// Permute returns the matrix PAPᵀ for the permutation perm, where
// perm[old] = new: entry (i, j) of a moves to (perm[i], perm[j]). Rows of
// the result are sorted.
func Permute(a *CSR, perm []int32) *CSR {
	b := NewBuilder(a.N)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			b.Set(int(perm[i]), int(perm[a.ColIdx[k]]), a.Val[k])
		}
	}
	return b.Build()
}

// LayoutPerm returns the permutation mapping interlaced scalar indices to
// the given layout's indices: perm[interlaced] = target.
func LayoutPerm(nv, b int, to Layout) []int32 {
	perm := make([]int32, nv*b)
	for v := 0; v < nv; v++ {
		for c := 0; c < b; c++ {
			perm[ScalarIndex(Interlaced, nv, b, v, c)] = int32(ScalarIndex(to, nv, b, v, c))
		}
	}
	return perm
}
