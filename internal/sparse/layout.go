package sparse

import "fmt"

// Layout selects how the b unknowns at each of nv mesh points are laid
// out in a scalar vector of length nv*b.
type Layout int

const (
	// Interlaced stores all unknowns of a mesh point adjacently:
	// u0,v0,w0,p0, u1,v1,w1,p1, ... (PETSc-FUN3D's cache-friendly layout).
	Interlaced Layout = iota
	// NonInterlaced stores each field contiguously:
	// u0,u1,..., v0,v1,..., the original vector-machine-friendly FUN3D
	// layout. A matrix coupling fields then has bandwidth close to N.
	NonInterlaced
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case Interlaced:
		return "interlaced"
	case NonInterlaced:
		return "noninterlaced"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// ScalarIndex maps (mesh point v, component c) to its scalar index under
// layout l, for nv mesh points with b components each.
func ScalarIndex(l Layout, nv, b, v, c int) int {
	if l == Interlaced {
		return v*b + c
	}
	return c*nv + v
}

// ConvertLayout rewrites the vector x (length nv*b) from layout `from`
// into layout `to`, returning a new slice.
func ConvertLayout(x []float64, nv, b int, from, to Layout) []float64 {
	if len(x) != nv*b {
		//lint:panic-ok documented precondition: the vector length must match nv*b
		panic(fmt.Sprintf("sparse: ConvertLayout length %d, want %d", len(x), nv*b))
	}
	out := make([]float64, len(x))
	for v := 0; v < nv; v++ {
		for c := 0; c < b; c++ {
			out[ScalarIndex(to, nv, b, v, c)] = x[ScalarIndex(from, nv, b, v, c)]
		}
	}
	return out
}

// Graph is the vertex adjacency of a mesh in compressed form; neighbors
// of v are Adj[XAdj[v]:XAdj[v+1]]. The diagonal (self) coupling is
// implied and added by the pattern builders.
type Graph struct {
	NV   int
	XAdj []int32
	Adj  []int32
}

// BlockPattern builds the BCSR Jacobian sparsity for a PDE system with b
// unknowns per mesh point on graph g: block row v couples to v and its
// neighbors.
func BlockPattern(g Graph, b int) *BCSR {
	rows := make([][]int32, g.NV)
	for v := 0; v < g.NV; v++ {
		nbrs := g.Adj[g.XAdj[v]:g.XAdj[v+1]]
		row := make([]int32, 0, len(nbrs)+1) //lint:alloc-ok one-time sparsity-pattern construction
		row = append(row, nbrs...)           //lint:alloc-ok one-time sparsity-pattern construction
		row = append(row, int32(v))          //lint:alloc-ok one-time sparsity-pattern construction
		rows[v] = row
	}
	return NewBCSRPattern(g.NV, b, rows)
}

// ScalarPattern builds the scalar CSR Jacobian sparsity for the same
// system under the given vector layout. Every pair of coupled mesh points
// contributes a dense b×b coupling between all their components, so the
// noninterlaced layout produces a matrix of bandwidth close to N = nv*b
// while the interlaced layout keeps bandwidth ≈ b·(graph bandwidth).
func ScalarPattern(g Graph, b int, l Layout) *CSR {
	n := g.NV * b
	a := &CSR{N: n, RowPtr: make([]int32, n+1)}
	// Row of scalar unknown (v, r) has entries at (w, c) for w in
	// {v} ∪ nbrs(v), c in 0..b-1.
	type rowSpec struct {
		v, r int
	}
	rowOf := make([]rowSpec, n)
	for v := 0; v < g.NV; v++ {
		for r := 0; r < b; r++ {
			rowOf[ScalarIndex(l, g.NV, b, v, r)] = rowSpec{v, r}
		}
	}
	cols := make([]int32, 0, 16*b)
	for i := 0; i < n; i++ {
		v := rowOf[i].v
		nbrs := g.Adj[g.XAdj[v]:g.XAdj[v+1]]
		cols = cols[:0]
		for c := 0; c < b; c++ {
			cols = append(cols, int32(ScalarIndex(l, g.NV, b, v, c))) //lint:alloc-ok pattern staging; cols is reused across rows
		}
		for _, w := range nbrs {
			for c := 0; c < b; c++ {
				cols = append(cols, int32(ScalarIndex(l, g.NV, b, int(w), c))) //lint:alloc-ok pattern staging; cols is reused across rows
			}
		}
		insertionSortInt32(cols)
		a.ColIdx = append(a.ColIdx, cols...) //lint:alloc-ok one-time pattern construction
		a.RowPtr[i+1] = int32(len(a.ColIdx))
	}
	a.Val = make([]float64, len(a.ColIdx))
	return a
}

func insertionSortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// FillDeterministic fills the matrix values with a reproducible
// pseudo-random diagonally dominant pattern, useful for kernel benchmarks
// that need realistic (nonzero, nonuniform) values.
func (a *CSR) FillDeterministic(seed uint64) {
	s := seed | 1
	for i := 0; i < a.N; i++ {
		var offdiag float64
		diagK := -1
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if int(a.ColIdx[k]) == i {
				diagK = int(k)
				continue
			}
			s = s*6364136223846793005 + 1442695040888963407
			v := float64(int64(s>>20)%2000)/1000.0 - 1.0 // in [-1, 1)
			a.Val[k] = v
			if v < 0 {
				offdiag -= v
			} else {
				offdiag += v
			}
		}
		if diagK >= 0 {
			a.Val[diagK] = offdiag + 1
		}
	}
}

// FillDeterministic fills the block matrix values with a reproducible
// pseudo-random block-diagonally dominant pattern.
func (a *BCSR) FillDeterministic(seed uint64) {
	s := seed | 1
	b := a.B
	bb := b * b
	rowSums := make([]float64, b)
	for i := 0; i < a.NB; i++ {
		for c := range rowSums {
			rowSums[c] = 0
		}
		diagK := -1
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if int(a.ColIdx[k]) == i {
				diagK = int(k)
				continue
			}
			blk := a.Val[int(k)*bb : int(k+1)*bb]
			for r := 0; r < b; r++ {
				for c := 0; c < b; c++ {
					s = s*6364136223846793005 + 1442695040888963407
					v := float64(int64(s>>20)%2000)/1000.0 - 1.0
					blk[r*b+c] = v
					if v < 0 {
						rowSums[r] -= v
					} else {
						rowSums[r] += v
					}
				}
			}
		}
		if diagK >= 0 {
			blk := a.Block(diagK)
			for r := 0; r < b; r++ {
				for c := 0; c < b; c++ {
					if r == c {
						blk[r*b+c] = rowSums[r] + 1
					} else {
						blk[r*b+c] = 0
					}
				}
			}
		}
	}
}
