package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

// ringGraph builds a cyclic graph of nv vertices where v couples to v±1
// and v±2 (mod nv) — small, known structure for tests.
func ringGraph(nv int) Graph {
	xadj := make([]int32, nv+1)
	adj := make([]int32, 0, 4*nv)
	for v := 0; v < nv; v++ {
		for _, d := range []int{-2, -1, 1, 2} {
			adj = append(adj, int32(((v+d)%nv+nv)%nv))
		}
		xadj[v+1] = int32(len(adj))
	}
	return Graph{NV: nv, XAdj: xadj, Adj: adj}
}

// bandGraph is like ringGraph without the wraparound, so the graph
// bandwidth stays small (2) and layout effects on matrix bandwidth are
// visible.
func bandGraph(nv int) Graph {
	xadj := make([]int32, nv+1)
	adj := make([]int32, 0, 4*nv)
	for v := 0; v < nv; v++ {
		for _, d := range []int{-2, -1, 1, 2} {
			if w := v + d; w >= 0 && w < nv {
				adj = append(adj, int32(w))
			}
		}
		xadj[v+1] = int32(len(adj))
	}
	return Graph{NV: nv, XAdj: xadj, Adj: adj}
}

func denseMulVec(a *CSR, x []float64) []float64 {
	y := make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			y[i] += a.At(i, j) * x[j]
		}
	}
	return y
}

func testVector(n int, seed uint64) []float64 {
	x := make([]float64, n)
	s := seed | 1
	for i := range x {
		s = s*6364136223846793005 + 1442695040888963407
		x[i] = float64(int64(s>>20)%1000) / 250.0
	}
	return x
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	g := ringGraph(13)
	a := ScalarPattern(g, 3, Interlaced)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	a.FillDeterministic(7)
	x := testVector(a.N, 3)
	y := make([]float64, a.N)
	a.MulVec(x, y)
	want := denseMulVec(a, x)
	if d := maxAbsDiff(y, want); d > 1e-12 {
		t.Errorf("CSR MulVec differs from dense by %g", d)
	}
}

func TestBCSRMulVecMatchesCSR(t *testing.T) {
	for _, b := range []int{1, 2, 3, 4, 5, 6} {
		g := ringGraph(17)
		blk := BlockPattern(g, b)
		if err := blk.Validate(); err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
		blk.FillDeterministic(11)
		csr := blk.ToCSR()
		if err := csr.Validate(); err != nil {
			t.Fatalf("b=%d ToCSR: %v", b, err)
		}
		x := testVector(blk.N(), 5)
		yb := make([]float64, blk.N())
		yc := make([]float64, blk.N())
		blk.MulVec(x, yb)
		csr.MulVec(x, yc)
		if d := maxAbsDiff(yb, yc); d > 1e-12 {
			t.Errorf("b=%d: BCSR and CSR MulVec differ by %g", b, d)
		}
	}
}

func TestFloat32StorageClose(t *testing.T) {
	g := ringGraph(19)
	blk := BlockPattern(g, 4)
	blk.FillDeterministic(13)
	x := testVector(blk.N(), 9)
	y64 := make([]float64, blk.N())
	y32 := make([]float64, blk.N())
	blk.MulVec(x, y64)
	blk.ToFloat32().MulVec(x, y32)
	// Single-precision storage: relative error around 1e-7, not 1e-15.
	if d := maxAbsDiff(y64, y32); d > 1e-4 {
		t.Errorf("float32 BCSR too far from float64: %g", d)
	}
	if d := maxAbsDiff(y64, y32); d == 0 {
		t.Log("float32 result exactly equal (unlikely but not wrong)")
	}
	c64 := blk.ToCSR()
	yc := make([]float64, blk.N())
	c64.ToFloat32().MulVec(x, yc)
	if d := maxAbsDiff(y64, yc); d > 1e-4 {
		t.Errorf("float32 CSR too far from float64: %g", d)
	}
}

func TestLayoutBandwidthContrast(t *testing.T) {
	// The central claim behind equations (1) and (2): interlacing keeps
	// matrix bandwidth ~ b*beta while noninterlacing pushes it to ~ N.
	g := bandGraph(100)
	b := 4
	inter := ScalarPattern(g, b, Interlaced)
	non := ScalarPattern(g, b, NonInterlaced)
	if err := inter.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := non.Validate(); err != nil {
		t.Fatal(err)
	}
	if inter.NNZ() != non.NNZ() {
		t.Fatalf("layouts disagree on nnz: %d vs %d", inter.NNZ(), non.NNZ())
	}
	bwI, bwN := inter.Bandwidth(), non.Bandwidth()
	// Graph bandwidth beta = 2, so interlaced matrix bandwidth is about
	// b*(beta+1) while noninterlaced reaches (b-1)*nv + beta ~ N.
	if bwN < (b-1)*g.NV {
		t.Errorf("noninterlaced bandwidth %d < (b-1)*nv = %d", bwN, (b-1)*g.NV)
	}
	if bwI > 2*b*3 {
		t.Errorf("interlaced bandwidth %d larger than expected ~%d", bwI, b*3)
	}
	if bwI*10 >= bwN {
		t.Errorf("interlaced bandwidth %d not << noninterlaced %d", bwI, bwN)
	}
}

func TestScalarPatternLayoutsEquivalent(t *testing.T) {
	// The two layouts must describe the same operator up to the layout
	// permutation: A_non (P x) = P (A_int x).
	g := ringGraph(23)
	b := 4
	inter := ScalarPattern(g, b, Interlaced)
	inter.FillDeterministic(21)
	perm := LayoutPerm(g.NV, b, NonInterlaced)
	non := Permute(inter, perm)

	x := testVector(inter.N, 31)
	yInt := make([]float64, inter.N)
	inter.MulVec(x, yInt)

	px := ConvertLayout(x, g.NV, b, Interlaced, NonInterlaced)
	yNon := make([]float64, non.N)
	non.MulVec(px, yNon)
	pyInt := ConvertLayout(yInt, g.NV, b, Interlaced, NonInterlaced)
	if d := maxAbsDiff(yNon, pyInt); d > 1e-12 {
		t.Errorf("layout-permuted operator differs by %g", d)
	}
}

func TestConvertLayoutRoundTrip(t *testing.T) {
	f := func(seed uint32) bool {
		nv, b := 17, 5
		x := testVector(nv*b, uint64(seed)+1)
		y := ConvertLayout(x, nv, b, Interlaced, NonInterlaced)
		z := ConvertLayout(y, nv, b, NonInterlaced, Interlaced)
		return maxAbsDiff(x, z) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestConvertLayoutPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ConvertLayout(make([]float64, 7), 2, 4, Interlaced, NonInterlaced)
}

func TestBuilderAndAt(t *testing.T) {
	b := NewBuilder(4)
	b.Set(0, 0, 1)
	b.Add(0, 3, 2)
	b.Add(0, 3, 3) // accumulates to 5
	b.Set(2, 1, -1)
	a := b.Build()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 || a.At(0, 3) != 5 || a.At(2, 1) != -1 {
		t.Errorf("unexpected entries: %v %v %v", a.At(0, 0), a.At(0, 3), a.At(2, 1))
	}
	if a.At(1, 1) != 0 || a.At(3, 0) != 0 {
		t.Error("missing entries should read as zero")
	}
	if a.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", a.NNZ())
	}
}

func TestBlockAt(t *testing.T) {
	g := ringGraph(9)
	a := BlockPattern(g, 2)
	a.FillDeterministic(3)
	if _, ok := a.BlockAt(0, 5); ok {
		t.Error("BlockAt(0,5) should be absent in ring(±2) graph")
	}
	blk, ok := a.BlockAt(3, 4)
	if !ok {
		t.Fatal("BlockAt(3,4) should exist")
	}
	csr := a.ToCSR()
	if blk[0*2+1] != csr.At(6, 9) {
		t.Error("BlockAt disagrees with ToCSR")
	}
}

func TestFillDeterministicDiagonallyDominant(t *testing.T) {
	g := ringGraph(15)
	a := ScalarPattern(g, 2, Interlaced)
	a.FillDeterministic(5)
	for i := 0; i < a.N; i++ {
		var off float64
		var diag float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if int(a.ColIdx[k]) == i {
				diag = a.Val[k]
			} else {
				off += math.Abs(a.Val[k])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not diagonally dominant: diag=%g off=%g", i, diag, off)
		}
	}
}

func TestVecKernels(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	w := make([]float64, 3)
	Waxpy(2, x, y, w)
	if w[0] != 6 || w[1] != 9 || w[2] != 12 {
		t.Errorf("Waxpy = %v", w)
	}
	Axpy(-1, x, y)
	if y[0] != 3 || y[1] != 3 || y[2] != 3 {
		t.Errorf("Axpy = %v", y)
	}
	Scale(2, x)
	if x[0] != 2 || x[1] != 4 || x[2] != 6 {
		t.Errorf("Scale = %v", x)
	}
}

func TestMulVecPanicsOnShortVector(t *testing.T) {
	g := ringGraph(5)
	a := ScalarPattern(g, 1, Interlaced)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.MulVec(make([]float64, 2), make([]float64, a.N))
}

func TestPropertySpMVLinear(t *testing.T) {
	// Property: A(ax + by) = a*Ax + b*Ay for random vectors.
	g := ringGraph(11)
	a := BlockPattern(g, 4)
	a.FillDeterministic(17)
	n := a.N()
	f := func(seed uint32, ai, bi int8) bool {
		alpha, beta := float64(ai)/8, float64(bi)/8
		x := testVector(n, uint64(seed)+1)
		y := testVector(n, uint64(seed)+99)
		z := make([]float64, n)
		for i := range z {
			z[i] = alpha*x[i] + beta*y[i]
		}
		az := make([]float64, n)
		ax := make([]float64, n)
		ay := make([]float64, n)
		a.MulVec(z, az)
		a.MulVec(x, ax)
		a.MulVec(y, ay)
		for i := range az {
			if math.Abs(az[i]-(alpha*ax[i]+beta*ay[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestToBCSR1SharesStorageAndMatches(t *testing.T) {
	g := ringGraph(11)
	blk := BlockPattern(g, 3)
	blk.FillDeterministic(23)
	c := blk.ToCSR()
	b1 := c.ToBCSR1()
	if err := b1.Validate(); err != nil {
		t.Fatal(err)
	}
	if b1.NB != c.N || b1.B != 1 {
		t.Fatalf("shape %d/%d", b1.NB, b1.B)
	}
	x := testVector(c.N, 77)
	y1 := make([]float64, c.N)
	y2 := make([]float64, c.N)
	c.MulVec(x, y1)
	b1.MulVec(x, y2)
	if d := maxAbsDiff(y1, y2); d != 0 {
		t.Errorf("ToBCSR1 MulVec differs by %g", d)
	}
	// Shared storage: mutating one mutates the other.
	b1.Val[0] = 123.5
	if c.Val[0] != 123.5 {
		t.Error("storage not shared")
	}
}
