// Command streambench runs McCalpin's STREAM kernels on the host and
// prints the sustainable memory bandwidth — the calibration input of the
// paper's bandwidth-limited performance model.
package main

import (
	"flag"
	"fmt"
	"log"

	"petscfun3d/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streambench: ")
	n := flag.Int("n", 4<<20, "elements per array (doubles)")
	trials := flag.Int("trials", 10, "trials per kernel (best is reported)")
	flag.Parse()
	fmt.Printf("STREAM: 3 arrays of %d doubles (%.1f MB each), best of %d trials\n",
		*n, float64(*n)*8/1e6, *trials)
	results, err := stream.Run(*n, *trials)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Println(r)
	}
}
