// Command benchtables regenerates every table and figure of the paper's
// evaluation section. Each experiment prints the same rows/series the
// paper reports; EXPERIMENTS.md records the comparison against the
// published values.
//
// Usage:
//
//	benchtables [-size small|medium|large] [-experiment all|table1|table2|table3|table3measured|chaos|table4|table5|threads|ortho|figure1|figure2|figure3|figure4|figure5|missmodel|ablation|spmvbound]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"petscfun3d/internal/experiments"
	"petscfun3d/internal/prof"
	"petscfun3d/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtables: ")
	sizeFlag := flag.String("size", "small", "experiment scale: small|medium|large")
	expFlag := flag.String("experiment", "all", "which experiment to run")
	csvDir := flag.String("csv", "", "also write plot-ready CSV data files into this directory")
	profileJSON := flag.String("profile-json", "", "profile the experiments' solver phases and write the report (JSON) to this file")
	flag.Parse()
	if *profileJSON != "" {
		prof.Default.Enable()
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	writeCSV := func(name string, wr func(w io.Writer) error) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			log.Fatal(err)
		}
		if err := wr(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	size, err := experiments.ParseSize(*sizeFlag)
	if err != nil {
		log.Fatal(err)
	}
	runners := map[string]func() (string, error){
		"table1": func() (string, error) {
			inc, err := experiments.Table1(size, "incompressible")
			if err != nil {
				return "", err
			}
			cmp, err := experiments.Table1(size, "compressible")
			if err != nil {
				return "", err
			}
			writeCSV("table1_incompressible", inc.WriteCSV)
			writeCSV("table1_compressible", cmp.WriteCSV)
			return inc.Render() + "\n" + cmp.Render(), nil
		},
		"table2": func() (string, error) {
			r, err := experiments.Table2(size)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"table3": func() (string, error) {
			r, err := experiments.Table3(size)
			if err != nil {
				return "", err
			}
			writeCSV("table3", r.WriteCSV)
			// Figure 1 is the per-step view of the same run; emit both
			// rather than solving twice.
			return r.Render() + "\n" + r.Figure1Render(), nil
		},
		"table3measured": func() (string, error) {
			r, err := experiments.Table3Measured(size)
			if err != nil {
				return "", err
			}
			writeCSV("table3measured", r.WriteCSV)
			return r.Render(), nil
		},
		"chaos": func() (string, error) {
			r, err := experiments.ChaosSweep(size)
			if err != nil {
				return "", err
			}
			writeCSV("chaos", r.WriteCSV)
			return r.Render(), nil
		},
		"table4": func() (string, error) {
			r, err := experiments.Table4(size)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"table5": func() (string, error) {
			r, err := experiments.Table5(size)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"threads": func() (string, error) {
			r, err := experiments.Threads(size)
			if err != nil {
				return "", err
			}
			writeCSV("threads", r.WriteCSV)
			return r.Render(), nil
		},
		"ortho": func() (string, error) {
			r, err := experiments.Ortho(size)
			if err != nil {
				return "", err
			}
			writeCSV("ortho", r.WriteCSV)
			return r.Render(), nil
		},
		"figure1": func() (string, error) {
			r, err := experiments.Table3(size)
			if err != nil {
				return "", err
			}
			return r.Figure1Render(), nil
		},
		"figure2": func() (string, error) {
			r, err := experiments.Figure2(size)
			if err != nil {
				return "", err
			}
			writeCSV("figure2", r.WriteCSV)
			return r.Render(), nil
		},
		"figure3": func() (string, error) {
			r, err := experiments.Figure3(size)
			if err != nil {
				return "", err
			}
			writeCSV("figure3", r.WriteCSV)
			return r.Render(), nil
		},
		"figure4": func() (string, error) {
			r, err := experiments.Figure4(size)
			if err != nil {
				return "", err
			}
			writeCSV("figure4", r.WriteCSV)
			return r.Render(), nil
		},
		"figure5": func() (string, error) {
			r, err := experiments.Figure5(size)
			if err != nil {
				return "", err
			}
			writeCSV("figure5", r.WriteCSV)
			return r.Render(), nil
		},
		"missmodel": func() (string, error) {
			r, err := experiments.MissModel(size)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"ablation": func() (string, error) {
			r, err := experiments.Ablation(size)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"spmvbound": func() (string, error) {
			r, err := experiments.SpMVBounds(size)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	}
	order := []string{
		"table1", "figure3", "missmodel", "spmvbound", "table2", "table3",
		"table3measured", "chaos", "figure2", "figure4", "figure5", "table4",
		"table5", "threads", "ortho", "ablation",
	}
	names := order
	if *expFlag != "all" {
		if _, ok := runners[*expFlag]; !ok {
			log.Fatalf("unknown experiment %q", *expFlag)
		}
		names = []string{*expFlag}
	}
	for _, name := range names {
		start := time.Now()
		out, err := runners[name]()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(out)
		_, _ = fmt.Fprintf(os.Stderr, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if *profileJSON != "" {
		prof.Default.Disable()
		bw := stream.TriadBandwidth()
		f, err := os.Create(*profileJSON)
		if err != nil {
			log.Fatal(err)
		}
		if err := prof.Default.WriteJSON(f, bw); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		rep := prof.Default.Report(bw)
		_, _ = fmt.Fprintf(os.Stderr, "[phase profile: %.2fs in %d phases -> %s]\n",
			rep.TotalSeconds, len(rep.Phases), *profileJSON)
	}
}
