// Command fun3dlint runs the repository's domain-aware static-analysis
// suite (internal/lint): hot-path allocation discipline, profiler
// Begin/End span pairing against the canonical phase taxonomy, cost
// formula provenance for the roofline accounting, dropped errors and
// library panics, map-ordered floating-point reductions, and the
// commcheck family guarding the overlap path — request/Wait pairing,
// tag registry discipline, overlap-window purity, and the flop-count
// cross-checker — plus the codegen conformance budget (the compiler's
// own escape/inline/bounds-check diagnostics held to
// codegen.budget.json) and the parcheck family guarding the worker-pool
// runtime's determinism contract (owner-computes writes, fixed-shape
// reductions, pool lifecycle). It is part of `make verify`; any finding
// fails the build.
//
// Usage:
//
//	fun3dlint [-json] [-only analyzer,...] [-list] [-update-budget] [packages]
//
// Packages are module-relative patterns ("./...", "./internal/...", or
// plain package directories); the default is "./...". With -only (one
// analyzer or a comma-separated list), the
// full suite still runs (so pragma hygiene stays whole-suite) but only
// the named analyzers' findings are reported and counted toward the
// exit status. -list prints the analyzer registry with the one-line
// invariants the README table carries. -update-budget re-records the
// codegen budget's toolchain pin to the running toolchain — an
// intentional act after reviewing the new compiler's diagnostics.
// Exit status is 1 when findings are reported, 2 on load or usage
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"petscfun3d/internal/codegen"
	"petscfun3d/internal/lint"
)

// reportSchemaVersion identifies the JSON output shape so CI consumers
// can detect incompatible changes instead of misparsing them.
const reportSchemaVersion = 1

// report is the -json output: a versioned envelope, not a bare array,
// so fields can be added without breaking consumers.
type report struct {
	Schema   int            `json:"schema"`
	Findings []lint.Finding `json:"findings"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fun3dlint: ")
	asJSON := flag.Bool("json", false, "report findings as a versioned JSON object (for CI)")
	only := flag.String("only", "", "report only these analyzers' findings (comma-separated)")
	list := flag.Bool("list", false, "print the analyzer registry with its one-line invariants and exit")
	updateBudget := flag.Bool("update-budget", false, "re-record the codegen budget's toolchain pin to this toolchain and exit")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		_, _ = fmt.Fprintf(out, "usage: fun3dlint [-json] [-only analyzer,...] [-list] [-update-budget] [packages]\n")
		flag.PrintDefaults()
		_, _ = fmt.Fprintf(out, "\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			_, _ = fmt.Fprintf(out, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Invariant)
		}
		return
	}
	keep := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if !knownAnalyzer(name) {
				os.Exit(fatal(fmt.Errorf("unknown analyzer %q (see fun3dlint -h for the list)", name)))
			}
			keep[name] = true
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		os.Exit(fatal(err))
	}
	if *updateBudget {
		os.Exit(recordBudget(root))
	}
	findings, err := lint.RunPatterns(root, patterns)
	if err != nil {
		os.Exit(fatal(err))
	}
	if len(keep) > 0 {
		kept := findings[:0]
		for _, f := range findings {
			if keep[f.Analyzer] {
				kept = append(kept, f)
			}
		}
		findings = kept
	}
	// Report file paths relative to the module root, the shape CI and
	// editors expect, then re-sort globally: per-package ordering is
	// stable already, but the cross-package order must not depend on
	// package load order.
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].File); err == nil {
			findings[i].File = rel
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(report{Schema: reportSchemaVersion, Findings: findings}); err != nil {
			log.Fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// knownAnalyzer reports whether name is a suite analyzer or the
// synthetic pragma-hygiene analyzer.
func knownAnalyzer(name string) bool {
	if name == "pragma" {
		return true
	}
	for _, a := range lint.Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// recordBudget rewrites the codegen budget's toolchain pin to the
// running toolchain. The zero-escape/zero-bounds-check policy itself
// never changes — only the compiler version the diagnostics were
// reviewed under — so this is the whole of "re-recording": an explicit,
// diffable statement that someone looked at the new toolchain's output.
func recordBudget(root string) int {
	path := filepath.Join(root, codegen.BudgetFile)
	b, err := codegen.LoadBudget(path)
	if err != nil {
		return fatal(fmt.Errorf("cannot update budget: %v", err))
	}
	old := b.GoVersion
	b.GoVersion = runtime.Version()
	if err := b.Save(path); err != nil {
		return fatal(err)
	}
	fmt.Printf("%s: toolchain pin %s -> %s\n", codegen.BudgetFile, old, b.GoVersion)
	return 0
}

func fatal(err error) int {
	log.Print(err)
	return 2
}
